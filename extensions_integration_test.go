package netembed_test

import (
	"fmt"
	"testing"
	"time"

	"netembed"
)

// Facade-level integration tests for the two §VIII/§II extensions added
// on top of the core reproduction: many-to-one node consolidation and
// coordinate-based model completion. Everything here goes through the
// public API only.

func TestFacadeConsolidationEndToEnd(t *testing.T) {
	// Three machines with capacity 3, fully meshed at 10ms.
	host := netembed.NewUndirected()
	for i := 0; i < 3; i++ {
		host.AddNode(fmt.Sprintf("m%d", i), netembed.Attrs{}.SetNum("capacity", 3))
	}
	link := func() netembed.Attrs {
		return netembed.Attrs{}.SetNum("minDelay", 9).SetNum("avgDelay", 10).SetNum("maxDelay", 11)
	}
	host.MustAddEdge(0, 1, link())
	host.MustAddEdge(1, 2, link())
	host.MustAddEdge(0, 2, link())

	// A 7-node ring of unit demands: oversized for injective embedding.
	q := netembed.Ring(7)
	netembed.SetDelayWindow(q, 0, 40)

	constraint := netembed.MustCompile("rEdge.maxDelay <= vEdge.maxDelay")
	if _, err := netembed.NewProblem(q, host, constraint, nil); err == nil {
		t.Fatal("injective constructor accepted an oversized query")
	}
	p, err := netembed.NewConsolidatedProblem(q, host, constraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := netembed.Consolidate(p, netembed.Options{}, netembed.ConsolidateOptions{})
	if len(res.Solutions) == 0 {
		t.Fatalf("no consolidated embedding (status %s)", res.Status)
	}
	for _, m := range res.Solutions {
		if err := p.VerifyConsolidated(m, netembed.ConsolidateOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeModelCompletionEndToEnd(t *testing.T) {
	rng := netembed.NewRand(3)
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 50}, rng)

	// Thin the measured graph to 20%.
	sparse := netembed.NewUndirected()
	for i := 0; i < host.NumNodes(); i++ {
		n := host.Node(netembed.NodeID(i))
		sparse.AddNode(n.Name, n.Attrs.Clone())
	}
	for e := 0; e < host.NumEdges(); e++ {
		if rng.Float64() > 0.2 {
			continue
		}
		ed := host.Edge(netembed.EdgeID(e))
		sparse.MustAddEdge(ed.From, ed.To, ed.Attrs.Clone())
	}
	kept := sparse.NumEdges()

	model := netembed.NewModel(sparse)
	report, err := netembed.CompleteModel(model, netembed.CompletionConfig{
		Embed: netembed.CoordEmbedConfig{
			Rounds: 32,
			Config: netembed.CoordConfig{Heights: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	full := 50 * 49 / 2
	if report.Added != full-kept {
		t.Fatalf("completion added %d edges, want %d", report.Added, full-kept)
	}
	snap, _ := model.Snapshot()
	if snap.NumEdges() != full {
		t.Fatalf("completed model has %d edges, want %d", snap.NumEdges(), full)
	}

	// A query must now be answerable over predicted links, and
	// excludable from them.
	svc := netembed.NewService(model, netembed.ServiceConfig{})
	q := netembed.Star(4)
	netembed.SetDelayWindow(q, 1, 1e6)
	resp, err := svc.Embed(netembed.Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no embedding on the completed model")
	}
}

func TestFacadeCoordsDirect(t *testing.T) {
	rng := netembed.NewRand(5)
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 40}, rng)
	sys, traj, err := netembed.CoordsEmbed(host, netembed.CoordEmbedConfig{Rounds: 24}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 24 {
		t.Fatalf("trajectory has %d rounds", len(traj))
	}
	es := netembed.CoordsErrors(sys, host, "avgDelay")
	if es.Edges == 0 || es.Median <= 0 {
		t.Fatalf("degenerate error stats: %+v", es)
	}
	added, err := netembed.Densify(host, sys, netembed.DensifyConfig{MaxEdges: 10})
	if err != nil {
		t.Fatal(err)
	}
	if added != 10 {
		t.Fatalf("Densify added %d, want 10", added)
	}
}

func TestFacadeServiceConsolidateAlgo(t *testing.T) {
	host := netembed.NewUndirected()
	for i := 0; i < 4; i++ {
		host.AddNode(fmt.Sprintf("m%d", i), netembed.Attrs{}.SetNum("capacity", 2))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			host.MustAddEdge(netembed.NodeID(i), netembed.NodeID(j),
				netembed.Attrs{}.SetNum("maxDelay", 5))
		}
	}
	q := netembed.Line(6)
	netembed.SetDelayWindow(q, 0, 50)
	svc := netembed.NewService(netembed.NewModel(host), netembed.ServiceConfig{})
	resp, err := svc.Embed(netembed.Request{
		Query:          q,
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      netembed.AlgoConsolidate,
		MaxResults:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) != 1 {
		t.Fatalf("%d mappings via AlgoConsolidate", len(resp.Mappings))
	}
}
