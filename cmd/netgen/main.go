// Command netgen generates hosting and query networks in GraphML (or the
// textual all-pairs trace format) for use with netembed and netembedd.
//
// Usage:
//
//	netgen -kind planetlab -out host.graphml
//	netgen -kind planetlab -format trace -out host.trace
//	netgen -kind brite -n 1500 -e 3030 -out brite.graphml
//	netgen -kind clique -n 8 -window 10,100 -out query.graphml
//	netgen -kind composite -root ring -root-size 4 -leaf star -leaf-size 5 -out query.graphml
//	netgen -kind subgraph -host host.graphml -n 40 -e 80 -slack 0.1 -out query.graphml
//	netgen -kind planetlab -capacity 4 -out host.graphml   # consolidation-ready host
//	netgen -kind planetlab -sites 40 -regions west,east -out host.graphml  # federation-ready host
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"netembed"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "", "planetlab | brite | ring | star | clique | line | composite | transit-stub | subgraph")
		out      = flag.String("out", "-", "output file ('-' = stdout)")
		format   = flag.String("format", "graphml", "graphml | trace (trace only for planetlab-style hosts)")
		n        = flag.Int("n", 100, "node count (or clique/ring/star/line size)")
		e        = flag.Int("e", 0, "edge count target (brite, subgraph)")
		seed     = flag.Int64("seed", 1, "random seed")
		sites    = flag.Int("sites", 296, "planetlab: number of sites")
		pairs    = flag.Int("pairs", 0, "planetlab: measured pairs (0 = paper density)")
		window   = flag.String("window", "", "stamp every edge with a delay window 'lo,hi'")
		capacity = flag.Float64("capacity", 0, "stamp every node with this capacity (consolidation hosts)")
		demand   = flag.Float64("demand", 0, "stamp every node with this demand (consolidation queries)")
		rootKind = flag.String("root", "ring", "composite: root structure")
		rootSize = flag.Int("root-size", 4, "composite: root size")
		leafKind = flag.String("leaf", "star", "composite: leaf structure")
		leafSize = flag.Int("leaf-size", 4, "composite: leaf size")
		hostPath = flag.String("host", "", "subgraph: hosting network GraphML to sample from")
		slack    = flag.Float64("slack", 0.1, "subgraph: delay window widening")
		model    = flag.String("model", "ba", "brite: ba | waxman")
		regions  = flag.String("regions", "", "stamp nodes with contiguous region labels 'west,east[,...]' (federated shard hosts)")
		regAttr  = flag.String("region-attr", "region", "attribute name used by -regions")
	)
	flag.Parse()

	g, err := generate(genArgs{
		kind: *kind, n: *n, e: *e, seed: *seed, sites: *sites, pairs: *pairs,
		rootKind: *rootKind, rootSize: *rootSize, leafKind: *leafKind, leafSize: *leafSize,
		hostPath: *hostPath, slack: *slack, model: *model,
	})
	if err == nil && *window != "" {
		err = applyWindow(g, *window)
	}
	if err == nil && *capacity > 0 {
		stampNodes(g, "capacity", *capacity)
	}
	if err == nil && *demand > 0 {
		stampNodes(g, "demand", *demand)
	}
	if err == nil && *regions != "" {
		err = stampRegions(g, *regAttr, *regions)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "netgen:", ferr)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "graphml":
		err = netembed.EncodeGraphML(w, g)
	case "trace":
		err = trace.WriteAllPairs(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

type genArgs struct {
	kind               string
	n, e               int
	seed               int64
	sites, pairs       int
	rootKind, leafKind string
	rootSize, leafSize int
	hostPath           string
	slack              float64
	model              string
}

func generate(a genArgs) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(a.seed))
	switch a.kind {
	case "planetlab":
		return trace.SyntheticPlanetLab(trace.Config{Sites: a.sites, Pairs: a.pairs}, rng), nil
	case "brite":
		m := topo.BarabasiAlbert
		if a.model == "waxman" {
			m = topo.Waxman
		}
		return topo.Brite(topo.BriteConfig{N: a.n, TargetEdges: a.e, Model: m}, rng)
	case "ring", "star", "clique", "line":
		return topo.Regular(topo.Kind(a.kind), a.n)
	case "composite":
		return topo.Composite(topo.Kind(a.rootKind), a.rootSize, topo.Kind(a.leafKind), a.leafSize)
	case "transit-stub":
		return topo.TransitStub(a.n, 2, 4, rng)
	case "subgraph":
		if a.hostPath == "" {
			return nil, fmt.Errorf("subgraph needs -host")
		}
		f, err := os.Open(a.hostPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		host, err := netembed.DecodeGraphML(f)
		if err != nil {
			return nil, err
		}
		edges := a.e
		if edges == 0 {
			edges = 2 * a.n
		}
		q, _, err := topo.Subgraph(host, a.n, edges, rng)
		if err != nil {
			return nil, err
		}
		topo.WidenDelayWindows(q, a.slack)
		return q, nil
	case "":
		return nil, fmt.Errorf("-kind is required")
	}
	return nil, fmt.Errorf("unknown kind %q", a.kind)
}

func applyWindow(g *graph.Graph, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("bad -window %q, want 'lo,hi'", spec)
	}
	lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return err
	}
	hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return err
	}
	topo.SetDelayWindow(g, lo, hi)
	return nil
}

// stampNodes sets a numeric attribute on every node of g.
// stampRegions labels the nodes with contiguous region blocks: node i
// gets labels[i*k/n]. Contiguous blocks keep synthetic site clusters
// intact, so the inter-region boundary stays a small cut instead of a
// striped mesh.
func stampRegions(g *graph.Graph, attr, spec string) error {
	var labels []string
	for _, l := range strings.Split(spec, ",") {
		if l = strings.TrimSpace(l); l != "" {
			labels = append(labels, l)
		}
	}
	if len(labels) == 0 {
		return fmt.Errorf("bad -regions %q, want 'west,east[,...]'", spec)
	}
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		node := g.Node(graph.NodeID(i))
		node.Attrs = node.Attrs.SetStr(attr, labels[i*len(labels)/n])
	}
	return nil
}

func stampNodes(g *graph.Graph, name string, v float64) {
	for i := 0; i < g.NumNodes(); i++ {
		node := g.Node(graph.NodeID(i))
		node.Attrs = node.Attrs.SetNum(name, v)
	}
}
