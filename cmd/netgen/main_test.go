package main

import (
	"os"
	"path/filepath"
	"testing"

	"netembed"
	"netembed/internal/graph"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		name string
		args genArgs
		node int // expected node count, 0 = just non-empty
	}{
		{"planetlab", genArgs{kind: "planetlab", sites: 30, seed: 1}, 30},
		{"brite", genArgs{kind: "brite", n: 50, e: 101, seed: 1, model: "ba"}, 50},
		{"waxman", genArgs{kind: "brite", n: 50, seed: 1, model: "waxman"}, 50},
		{"ring", genArgs{kind: "ring", n: 6}, 6},
		{"star", genArgs{kind: "star", n: 6}, 6},
		{"clique", genArgs{kind: "clique", n: 5}, 5},
		{"line", genArgs{kind: "line", n: 4}, 4},
		{"composite", genArgs{kind: "composite", rootKind: "ring", rootSize: 3, leafKind: "star", leafSize: 4}, 12},
		{"transit-stub", genArgs{kind: "transit-stub", n: 3, seed: 1}, 0},
	}
	for _, c := range cases {
		g, err := generate(c.args)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if c.node != 0 && g.NumNodes() != c.node {
			t.Errorf("%s: nodes = %d, want %d", c.name, g.NumNodes(), c.node)
		}
		if c.node == 0 && g.NumNodes() == 0 {
			t.Errorf("%s: empty graph", c.name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	for _, a := range []genArgs{
		{kind: ""},
		{kind: "heptagon"},
		{kind: "subgraph"}, // missing -host
		{kind: "brite", n: 1},
	} {
		if _, err := generate(a); err == nil {
			t.Errorf("generate(%+v) succeeded, want error", a)
		}
	}
}

func TestGenerateSubgraphFromFile(t *testing.T) {
	dir := t.TempDir()
	hostPath := filepath.Join(dir, "host.graphml")
	host, err := generate(genArgs{kind: "planetlab", sites: 30, seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(hostPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := netembed.EncodeGraphML(f, host); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q, err := generate(genArgs{kind: "subgraph", hostPath: hostPath, n: 6, seed: 3, slack: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 6 {
		t.Errorf("subgraph nodes = %d", q.NumNodes())
	}
}

func TestApplyWindow(t *testing.T) {
	g, _ := generate(genArgs{kind: "ring", n: 4})
	if err := applyWindow(g, "10,100"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumEdges(); i++ {
		lo, _ := g.Edge(graph.EdgeID(i)).Attrs.Float("minDelay")
		hi, _ := g.Edge(graph.EdgeID(i)).Attrs.Float("maxDelay")
		if lo != 10 || hi != 100 {
			t.Fatalf("edge %d window [%v,%v]", i, lo, hi)
		}
	}
	for _, bad := range []string{"10", "a,b", "1,b", ""} {
		if err := applyWindow(g, bad); err == nil {
			t.Errorf("applyWindow(%q) succeeded", bad)
		}
	}
}

func TestStampNodes(t *testing.T) {
	g, err := generate(genArgs{kind: "clique", n: 4})
	if err != nil {
		t.Fatal(err)
	}
	stampNodes(g, "capacity", 4)
	stampNodes(g, "demand", 0.5)
	for i := 0; i < g.NumNodes(); i++ {
		attrs := g.Node(graph.NodeID(i)).Attrs
		if c, ok := attrs.Float("capacity"); !ok || c != 4 {
			t.Fatalf("node %d capacity = %v, %v", i, c, ok)
		}
		if d, ok := attrs.Float("demand"); !ok || d != 0.5 {
			t.Fatalf("node %d demand = %v, %v", i, d, ok)
		}
	}
}
