// Command netembedload is the closed-loop latency harness for a live
// netembedd: it replays a mixed NETEMBED workload over real HTTP at a
// target request rate and reports client-side latency quantiles next to
// the server's own allocation and epoch gauges.
//
// Arrivals are open-loop — request start times follow the configured
// arrival process (Poisson or fixed-interval) at -rps regardless of how
// fast the server answers, so a slow server accumulates queueing delay in
// the measured latency instead of silently throttling the load (the
// coordinated-omission trap closed-loop generators fall into). A worker
// pool executes the arrivals; per-worker log-bucketed histograms merge
// into the final report, so the hot path takes no locks and performs no
// allocation per sample.
//
// The op mix covers the serve surface the paper's service model exposes:
// synchronous /embed, /embed/batch, path-mode embeds, asynchronous
// submit+poll /jobs round trips, and POST /deltas model churn at its mix
// share of the arrival rate. Query workloads are derived from the
// server's own hosting network (GET /model): random connected subgraphs
// with widened delay windows, the same PlanetLab-derived distributions
// internal/trace and internal/topo generate.
//
// Before and after the run the harness snapshots GET /stats and diffs the
// server-side runtime counters: mallocs per completed request is the
// number the CI load gate compares across commits. The report prints
// human-readable text and, with -out, a machine-readable LOAD_*.json.
//
// With -target the harness drives a federated coordinator instead: the
// embed/path/optimize/delta load goes through the coordinator's routing
// tier (batch and jobs, which a coordinator does not serve, fold into
// the embed share), the workload derives from the -host GraphML, and the
// report's server section carries the per-shard routing counts diffed
// from GET /cluster (schema netembedload/3).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/topo"
)

// opKind enumerates the workload operations.
type opKind int

const (
	opEmbed opKind = iota
	opBatch
	opPath
	opJobs
	opDelta
	opOptimize
	numOps
)

var opNames = [numOps]string{"embed", "batch", "path", "jobs", "delta", "optimize"}

// Config shapes one load run. It is exported through flags by main and
// filled directly by tests.
type Config struct {
	Addr     string        // base URL of the netembedd under test
	Duration time.Duration // measurement window
	RPS      float64       // target arrival rate, all ops combined
	Arrival  string        // "poisson" or "fixed"
	Workers  int           // executor pool size
	Mix      string        // op weights, e.g. "embed=55,batch=10,path=10,jobs=20,delta=5"

	QueryVariants int   // distinct query subgraphs to cycle through
	QueryNodes    int   // nodes per query subgraph
	QueryEdges    int   // edges per query subgraph
	MaxResults    int   // maxResults per embed
	TimeoutMs     int   // per-request search timeout
	Seed          int64 // workload derivation seed

	// Target points the harness at a federated coordinator instead of a
	// single daemon: the load goes to the coordinator's /embed and
	// /deltas, batch/jobs ops (which a coordinator does not serve) fold
	// into the embed share, and the report's server section carries
	// per-shard routing counts diffed from GET /cluster.
	Target string
	// HostPath derives the query workload from a GraphML file instead of
	// GET /model. Required with Target — a coordinator holds no model.
	HostPath string

	// Drain bounds how long workers may keep finishing backlogged
	// arrivals after the measurement window closes; whatever is still
	// queued at the deadline is abandoned and reported, so a server
	// slower than the target rate cannot stall the harness. Zero means
	// 10s.
	Drain time.Duration

	Out string // machine-readable report path ("" = none)
}

func defaultConfig() Config {
	return Config{
		Addr:          "http://127.0.0.1:8080",
		Duration:      30 * time.Second,
		RPS:           50,
		Arrival:       "poisson",
		Workers:       16,
		Mix:           "embed=50,batch=10,path=10,jobs=20,delta=5,optimize=5",
		QueryVariants: 8,
		QueryNodes:    8,
		QueryEdges:    12,
		MaxResults:    1,
		TimeoutMs:     2000,
		Seed:          1,
		Drain:         10 * time.Second,
	}
}

// OpReport is one operation's (or the overall) latency summary.
type OpReport struct {
	Count       uint64  `json:"count"`
	Errors      uint64  `json:"errors"`
	Rejected429 uint64  `json:"rejected429"`
	P50Ns       uint64  `json:"p50Ns"`
	P95Ns       uint64  `json:"p95Ns"`
	P99Ns       uint64  `json:"p99Ns"`
	P999Ns      uint64  `json:"p999Ns"`
	MaxNs       uint64  `json:"maxNs"`
	MeanNs      uint64  `json:"meanNs"`
	Throughput  float64 `json:"throughputRps"`
}

// ServerReport diffs the server's GET /stats gauges across the run.
type ServerReport struct {
	CompletedDelta    uint64  `json:"completedDelta"`
	CacheHitsDelta    uint64  `json:"cacheHitsDelta"`
	RejectionsDelta   uint64  `json:"queueFullRejectionsDelta"`
	MallocsDelta      uint64  `json:"mallocsDelta"`
	AllocBytesDelta   uint64  `json:"allocBytesDelta"`
	NumGCDelta        uint32  `json:"numGCDelta"`
	GCPauseDeltaNs    uint64  `json:"gcPauseDeltaNs"`
	AllocsPerRequest  float64 `json:"allocsPerRequest"`
	BytesPerRequest   float64 `json:"bytesPerRequest"`
	QueryCacheHitRate float64 `json:"queryCacheHitRate"`
	ModelVersion      uint64  `json:"modelVersion"`
	RetiredEpochs     uint64  `json:"retiredEpochs"`
	LiveEpochs        int     `json:"liveEpochs"`

	// Shards carries the per-shard routing counts of a -target run,
	// diffed from the coordinator's GET /cluster across the window
	// (schema netembedload/3; absent on single-daemon runs).
	Shards           []ShardLoadReport `json:"shards,omitempty"`
	CrossEmbedsDelta uint64            `json:"crossShardEmbedsDelta,omitempty"`
}

// ShardLoadReport is one shard's slice of a federated run: how much of
// the window's traffic the coordinator routed to it.
type ShardLoadReport struct {
	Name         string `json:"name"`
	Healthy      bool   `json:"healthy"`
	EmbedsDelta  uint64 `json:"embedsDelta"`
	DeltasDelta  uint64 `json:"deltasDelta"`
	ErrorsDelta  uint64 `json:"errorsDelta"`
	NodeCount    int    `json:"nodeCount"`
	ModelVersion uint64 `json:"modelVersion"`
}

// clusterInfo is the slice of the coordinator's GET /cluster the harness
// diffs for the per-shard routing counts.
type clusterInfo struct {
	Shards []struct {
		Name         string `json:"name"`
		Healthy      bool   `json:"healthy"`
		NodeCount    int    `json:"nodeCount"`
		ModelVersion uint64 `json:"modelVersion"`
		Embeds       uint64 `json:"embeds"`
		Deltas       uint64 `json:"deltas"`
		Errors       uint64 `json:"errors"`
	} `json:"shards"`
	CrossEmbeds uint64 `json:"crossShardEmbeds"`
}

// Report is the machine-readable run summary (the LOAD_*.json schema the
// CI load gate compares). Schema "netembedload/2" added the optimize op
// to the mix; "netembedload/3" added the server section's per-shard
// routing counts for -target runs. The gated fields are unchanged across
// /1–/3, so baselines recorded before either bump keep comparing.
type Report struct {
	Schema     string              `json:"schema"` // "netembedload/3"
	Addr       string              `json:"addr"`
	DurationS  float64             `json:"durationS"`
	TargetRPS  float64             `json:"targetRps"`
	Arrival    string              `json:"arrival"`
	Mix        string              `json:"mix"`
	Overall    OpReport            `json:"overall"`
	PerOp      map[string]OpReport `json:"perOp"`
	Server     ServerReport        `json:"server"`
	Overflowed uint64              `json:"arrivalOverflow"` // arrivals dropped: executor backlog full
	Abandoned  uint64              `json:"abandoned"`       // backlog left unexecuted at the drain deadline
}

// serverStats is the subset of GET /stats the harness diffs. The flat
// engine counters stay top-level; runtime/model/api are the nested
// serve-path sections.
type serverStats struct {
	Submitted           uint64 `json:"submitted"`
	Completed           uint64 `json:"completed"`
	CacheHits           uint64 `json:"cacheHits"`
	QueueFullRejections uint64 `json:"queueFullRejections"`
	Runtime             struct {
		HeapAllocBytes  uint64 `json:"heapAllocBytes"`
		TotalAllocBytes uint64 `json:"totalAllocBytes"`
		Mallocs         uint64 `json:"mallocs"`
		NumGC           uint32 `json:"numGC"`
		PauseTotalNs    uint64 `json:"pauseTotalNs"`
	} `json:"runtime"`
	Model struct {
		Version       uint64 `json:"version"`
		LiveEpochs    int    `json:"liveEpochs"`
		RetiredEpochs uint64 `json:"retiredEpochs"`
	} `json:"model"`
	API struct {
		QueryCacheHits   uint64 `json:"queryCacheHits"`
		QueryCacheMisses uint64 `json:"queryCacheMisses"`
	} `json:"api"`
}

// workload holds the request bodies derived from the server's model.
type workload struct {
	embeds    [][]byte // single-query /embed bodies
	batches   [][]byte // /embed/batch bodies
	paths     [][]byte // path-mode /embed bodies
	deltas    [][]byte // /deltas churn bodies
	optimizes [][]byte // optimizing /embed bodies (branch-and-bound)
}

const delayWindowConstraint = "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay"

// deriveWorkload fetches the hosting network and builds the request
// bodies: connected subgraph queries with widened delay windows (so a
// healthy server finds embeddings) and attribute-drift deltas over the
// host's own edges (so churn exercises the copy-on-write patch path
// without reshaping the network).
func deriveWorkload(client *http.Client, cfg Config) (*workload, error) {
	host, err := loadWorkloadHost(client, cfg)
	if err != nil {
		return nil, err
	}
	if host.NumNodes() < cfg.QueryNodes || host.NumEdges() == 0 {
		return nil, fmt.Errorf("model too small for %d-node queries (%d nodes, %d edges)",
			cfg.QueryNodes, host.NumNodes(), host.NumEdges())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &workload{}
	for i := 0; i < cfg.QueryVariants; i++ {
		q, _, err := topo.Subgraph(host, cfg.QueryNodes, cfg.QueryEdges, rng)
		if err != nil {
			return nil, fmt.Errorf("derive query %d: %w", i, err)
		}
		topo.WidenDelayWindows(q, 0.2)
		xml, err := graphml.EncodeString(q)
		if err != nil {
			return nil, err
		}
		embed := map[string]any{
			"query":          xml,
			"edgeConstraint": delayWindowConstraint,
			"maxResults":     cfg.MaxResults,
			"timeoutMs":      cfg.TimeoutMs,
		}
		w.embeds = append(w.embeds, mustJSON(embed))
		// Optimizing variant of the same query: branch-and-bound for the
		// least-loaded placement. load-balance needs no model attributes
		// (missing "slots" reads as 1), so it runs against any host.
		w.optimizes = append(w.optimizes, mustJSON(map[string]any{
			"query":          xml,
			"edgeConstraint": delayWindowConstraint,
			"timeoutMs":      cfg.TimeoutMs,
			"objective":      map[string]any{"kind": "load-balance"},
		}))
		w.paths = append(w.paths, mustJSON(map[string]any{
			"query":      xml,
			"algorithm":  "path",
			"maxResults": cfg.MaxResults,
			"timeoutMs":  cfg.TimeoutMs,
		}))
	}
	for i := 0; i < cfg.QueryVariants; i++ {
		var items []map[string]any
		for j := 0; j < 3; j++ {
			var one map[string]any
			if err := json.Unmarshal(w.embeds[(i+j)%len(w.embeds)], &one); err != nil {
				return nil, err
			}
			items = append(items, one)
		}
		w.batches = append(w.batches, mustJSON(map[string]any{"requests": items}))
	}
	// Delta churn: drift the delay attributes of a few random host edges,
	// the monitoring feed's republish pattern.
	for i := 0; i < cfg.QueryVariants; i++ {
		var sets []map[string]any
		for j := 0; j < 4; j++ {
			e := host.Edge(graph.EdgeID(rng.Intn(host.NumEdges())))
			avg, _ := e.Attrs.Float("avgDelay")
			factor := 1 + (rng.Float64()*2-1)*0.05
			sets = append(sets, map[string]any{
				"source": host.Node(e.From).Name,
				"target": host.Node(e.To).Name,
				"attrs":  map[string]any{"avgDelay": avg * factor},
			})
		}
		w.deltas = append(w.deltas, mustJSON(map[string]any{"setEdgeAttrs": sets}))
	}
	return w, nil
}

// loadWorkloadHost reads the hosting network the workload is derived
// from: -host GraphML when given (the federated case — a coordinator
// serves no /model), GET /model from the daemon under test otherwise.
func loadWorkloadHost(client *http.Client, cfg Config) (*graph.Graph, error) {
	if cfg.HostPath != "" {
		f, err := os.Open(cfg.HostPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		host, err := graphml.Decode(f)
		if err != nil {
			return nil, fmt.Errorf("host %s: %w", cfg.HostPath, err)
		}
		return host, nil
	}
	resp, err := client.Get(cfg.Addr + "/model")
	if err != nil {
		return nil, fmt.Errorf("GET /model: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /model: status %d", resp.StatusCode)
	}
	host, err := graphml.Decode(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	return host, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// mixWeights parses "embed=55,batch=10,..." into per-op weights.
func mixWeights(mix string) ([numOps]float64, error) {
	var w [numOps]float64
	total := 0.0
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return w, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || f < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		idx := -1
		for i, n := range opNames {
			if n == strings.TrimSpace(name) {
				idx = i
			}
		}
		if idx < 0 {
			return w, fmt.Errorf("unknown op %q in mix (have %s)", name, strings.Join(opNames[:], ", "))
		}
		w[idx] += f
		total += f
	}
	if total == 0 {
		return w, fmt.Errorf("mix %q has no positive weights", mix)
	}
	for i := range w {
		w[i] /= total
	}
	return w, nil
}

// executor is one worker's state: its own histograms and counters, merged
// after the run.
type executor struct {
	hists  [numOps]histogram
	errs   [numOps]uint64
	rej429 [numOps]uint64
}

// runOp issues one operation and returns its wall-clock latency.
func (ex *executor) runOp(client *http.Client, cfg Config, w *workload, op opKind, i int) {
	start := time.Now()
	ok, status := doOp(client, cfg, w, op, i)
	lat := time.Since(start)
	if status == http.StatusTooManyRequests {
		ex.rej429[op]++
		return // rejected work is backpressure, not latency
	}
	if !ok {
		ex.errs[op]++
		return
	}
	ex.hists[op].record(lat)
}

func doOp(client *http.Client, cfg Config, w *workload, op opKind, i int) (ok bool, status int) {
	post := func(path string, body []byte) (int, []byte) {
		resp, err := client.Post(cfg.Addr+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	switch op {
	case opEmbed:
		s, _ := post("/embed", w.embeds[i%len(w.embeds)])
		return s == http.StatusOK, s
	case opBatch:
		s, _ := post("/embed/batch", w.batches[i%len(w.batches)])
		return s == http.StatusOK, s
	case opPath:
		s, _ := post("/embed", w.paths[i%len(w.paths)])
		return s == http.StatusOK, s
	case opDelta:
		s, _ := post("/deltas", w.deltas[i%len(w.deltas)])
		return s == http.StatusOK, s
	case opOptimize:
		s, _ := post("/embed", w.optimizes[i%len(w.optimizes)])
		return s == http.StatusOK, s
	case opJobs:
		s, body := post("/jobs", w.embeds[i%len(w.embeds)])
		if s != http.StatusAccepted && s != http.StatusOK {
			return false, s
		}
		var st struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return false, s
		}
		for poll := 0; poll < 10000; poll++ {
			switch st.State {
			case "done":
				return true, http.StatusOK
			case "failed", "canceled":
				return false, http.StatusOK
			}
			time.Sleep(2 * time.Millisecond)
			resp, err := client.Get(cfg.Addr + "/jobs/" + st.ID)
			if err != nil {
				return false, 0
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return false, resp.StatusCode
			}
			if err := json.Unmarshal(b, &st); err != nil {
				return false, resp.StatusCode
			}
		}
		return false, http.StatusOK
	}
	return false, 0
}

// fetchCluster snapshots the coordinator's GET /cluster for the
// per-shard routing diff of a -target run.
func fetchCluster(client *http.Client, addr string) (clusterInfo, error) {
	var ci clusterInfo
	resp, err := client.Get(addr + "/cluster")
	if err != nil {
		return ci, fmt.Errorf("GET /cluster: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ci, fmt.Errorf("GET /cluster: status %d (is -target a federated coordinator?)", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&ci)
	return ci, err
}

// shardDiffs turns two /cluster snapshots into per-shard routing counts
// for the window between them.
func shardDiffs(before, after clusterInfo) []ShardLoadReport {
	prev := make(map[string]struct{ embeds, deltas, errors uint64 }, len(before.Shards))
	for _, s := range before.Shards {
		prev[s.Name] = struct{ embeds, deltas, errors uint64 }{s.Embeds, s.Deltas, s.Errors}
	}
	out := make([]ShardLoadReport, 0, len(after.Shards))
	for _, s := range after.Shards {
		p := prev[s.Name]
		out = append(out, ShardLoadReport{
			Name:         s.Name,
			Healthy:      s.Healthy,
			EmbedsDelta:  s.Embeds - p.embeds,
			DeltasDelta:  s.Deltas - p.deltas,
			ErrorsDelta:  s.Errors - p.errors,
			NodeCount:    s.NodeCount,
			ModelVersion: s.ModelVersion,
		})
	}
	return out
}

func fetchStats(client *http.Client, addr string) (serverStats, error) {
	var st serverStats
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return st, fmt.Errorf("GET /stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// run executes one load run and assembles the report.
func run(cfg Config) (*Report, error) {
	weights, err := mixWeights(cfg.Mix)
	if err != nil {
		return nil, err
	}
	if cfg.Arrival != "poisson" && cfg.Arrival != "fixed" {
		return nil, fmt.Errorf("unknown arrival process %q (want poisson or fixed)", cfg.Arrival)
	}
	if cfg.RPS <= 0 || cfg.Workers <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("rps, workers and duration must be positive")
	}
	if cfg.Target != "" {
		if cfg.HostPath == "" {
			return nil, fmt.Errorf("-target needs -host: a coordinator serves no /model to derive the workload from")
		}
		cfg.Addr = strings.TrimSuffix(cfg.Target, "/")
		// A coordinator serves /embed and /deltas only: the batch and
		// jobs shares fold into embed so the target rate is preserved.
		weights[opEmbed] += weights[opBatch] + weights[opJobs]
		weights[opBatch], weights[opJobs] = 0, 0
	}
	client := &http.Client{
		Timeout: time.Duration(cfg.TimeoutMs)*time.Millisecond + 30*time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		},
	}
	w, err := deriveWorkload(client, cfg)
	if err != nil {
		return nil, err
	}
	var before serverStats
	var clusterBefore clusterInfo
	if cfg.Target == "" {
		if before, err = fetchStats(client, cfg.Addr); err != nil {
			return nil, err
		}
	} else if clusterBefore, err = fetchCluster(client, cfg.Addr); err != nil {
		return nil, err
	}

	// Open-loop arrivals: the generator paces tokens by the arrival
	// process alone; a full backlog means the server (or the pool) fell
	// behind the target rate, counted rather than blocked on.
	type token struct {
		op opKind
		i  int
	}
	tokens := make(chan token, 8192)
	var overflow, abandoned atomic.Uint64
	drained := make(chan struct{}) // closed at the drain deadline
	execs := make([]*executor, cfg.Workers)
	var wg sync.WaitGroup
	for i := range execs {
		execs[i] = &executor{}
		wg.Add(1)
		go func(ex *executor) {
			defer wg.Done()
			for tk := range tokens {
				select {
				case <-drained:
					abandoned.Add(1)
					continue // count the rest of the backlog, don't run it
				default:
				}
				ex.runOp(client, cfg, w, tk.op, tk.i)
			}
		}(execs[i])
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	pick := func() opKind {
		x := rng.Float64()
		for op := opKind(0); op < numOps; op++ {
			if x -= weights[op]; x < 0 {
				return op
			}
		}
		return opEmbed
	}
	gap := func() time.Duration {
		mean := float64(time.Second) / cfg.RPS
		if cfg.Arrival == "fixed" {
			return time.Duration(mean)
		}
		return time.Duration(mean * rng.ExpFloat64())
	}

	start := time.Now()
	next := start
	seq := 0
	for {
		next = next.Add(gap())
		if next.Sub(start) > cfg.Duration {
			break
		}
		time.Sleep(time.Until(next))
		select {
		case tokens <- token{op: pick(), i: seq}:
		default:
			overflow.Add(1)
		}
		seq++
	}
	close(tokens)
	drain := cfg.Drain
	if drain <= 0 {
		drain = 10 * time.Second
	}
	timer := time.AfterFunc(drain, func() { close(drained) })
	wg.Wait()
	timer.Stop()
	elapsed := time.Since(start)

	var after serverStats
	var clusterAfter clusterInfo
	if cfg.Target == "" {
		if after, err = fetchStats(client, cfg.Addr); err != nil {
			return nil, err
		}
	} else if clusterAfter, err = fetchCluster(client, cfg.Addr); err != nil {
		return nil, err
	}

	// Merge per-worker state.
	var overall histogram
	var merged [numOps]histogram
	var errs, rej [numOps]uint64
	for _, ex := range execs {
		for op := 0; op < int(numOps); op++ {
			merged[op].merge(&ex.hists[op])
			overall.merge(&ex.hists[op])
			errs[op] += ex.errs[op]
			rej[op] += ex.rej429[op]
		}
	}
	summarize := func(h *histogram, errs, rej uint64) OpReport {
		return OpReport{
			Count:       h.count,
			Errors:      errs,
			Rejected429: rej,
			P50Ns:       h.quantile(0.50),
			P95Ns:       h.quantile(0.95),
			P99Ns:       h.quantile(0.99),
			P999Ns:      h.quantile(0.999),
			MaxNs:       h.max,
			MeanNs:      h.mean(),
			Throughput:  float64(h.count) / elapsed.Seconds(),
		}
	}
	rep := &Report{
		Schema:     "netembedload/3",
		Addr:       cfg.Addr,
		DurationS:  elapsed.Seconds(),
		TargetRPS:  cfg.RPS,
		Arrival:    cfg.Arrival,
		Mix:        cfg.Mix,
		PerOp:      map[string]OpReport{},
		Overflowed: overflow.Load(),
		Abandoned:  abandoned.Load(),
	}
	var totalErrs, totalRej uint64
	for op := 0; op < int(numOps); op++ {
		if merged[op].count == 0 && errs[op] == 0 && rej[op] == 0 {
			continue
		}
		rep.PerOp[opNames[op]] = summarize(&merged[op], errs[op], rej[op])
		totalErrs += errs[op]
		totalRej += rej[op]
	}
	rep.Overall = summarize(&overall, totalErrs, totalRej)

	if cfg.Target != "" {
		// Federated run: the server section is the routing breakdown —
		// how the coordinator spread the window across its shards.
		rep.Server.Shards = shardDiffs(clusterBefore, clusterAfter)
		rep.Server.CrossEmbedsDelta = clusterAfter.CrossEmbeds - clusterBefore.CrossEmbeds
		for _, s := range rep.Server.Shards {
			rep.Server.CompletedDelta += s.EmbedsDelta + s.DeltasDelta
		}
	} else {
		completed := after.Completed - before.Completed
		rep.Server = ServerReport{
			CompletedDelta:  completed,
			CacheHitsDelta:  after.CacheHits - before.CacheHits,
			RejectionsDelta: after.QueueFullRejections - before.QueueFullRejections,
			MallocsDelta:    after.Runtime.Mallocs - before.Runtime.Mallocs,
			AllocBytesDelta: after.Runtime.TotalAllocBytes - before.Runtime.TotalAllocBytes,
			NumGCDelta:      after.Runtime.NumGC - before.Runtime.NumGC,
			GCPauseDeltaNs:  after.Runtime.PauseTotalNs - before.Runtime.PauseTotalNs,
			ModelVersion:    after.Model.Version,
			RetiredEpochs:   after.Model.RetiredEpochs,
			LiveEpochs:      after.Model.LiveEpochs,
		}
		if completed > 0 {
			rep.Server.AllocsPerRequest = float64(rep.Server.MallocsDelta) / float64(completed)
			rep.Server.BytesPerRequest = float64(rep.Server.AllocBytesDelta) / float64(completed)
		}
		if hm := after.API.QueryCacheHits + after.API.QueryCacheMisses; hm > 0 {
			rep.Server.QueryCacheHitRate = float64(after.API.QueryCacheHits) / float64(hm)
		}
	}
	if cfg.Out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(cfg.Out, append(data, '\n'), 0o644)
		}
		if err != nil {
			return nil, fmt.Errorf("write %s: %w", cfg.Out, err)
		}
	}
	return rep, nil
}

func fmtNs(ns uint64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func printReport(out io.Writer, rep *Report) {
	fmt.Fprintf(out, "netembedload: %s for %.1fs at target %.0f rps (%s arrivals), mix %s\n",
		rep.Addr, rep.DurationS, rep.TargetRPS, rep.Arrival, rep.Mix)
	names := make([]string, 0, len(rep.PerOp))
	for name := range rep.PerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-8s %8s %7s %5s %12s %12s %12s %12s %12s\n",
		"op", "count", "errors", "429", "p50", "p95", "p99", "p99.9", "max")
	row := func(name string, r OpReport) {
		fmt.Fprintf(out, "%-8s %8d %7d %5d %12s %12s %12s %12s %12s\n",
			name, r.Count, r.Errors, r.Rejected429,
			fmtNs(r.P50Ns), fmtNs(r.P95Ns), fmtNs(r.P99Ns), fmtNs(r.P999Ns), fmtNs(r.MaxNs))
	}
	for _, name := range names {
		row(name, rep.PerOp[name])
	}
	row("overall", rep.Overall)
	fmt.Fprintf(out, "throughput %.1f rps; arrival overflow %d; abandoned at drain %d\n",
		rep.Overall.Throughput, rep.Overflowed, rep.Abandoned)
	s := rep.Server
	if len(s.Shards) > 0 {
		fmt.Fprintf(out, "cluster: %d requests routed, %d cross-shard embeds\n",
			s.CompletedDelta, s.CrossEmbedsDelta)
		for _, sh := range s.Shards {
			state := "healthy"
			if !sh.Healthy {
				state = "UNHEALTHY"
			}
			fmt.Fprintf(out, "  shard %-12s %s: %d embeds, %d deltas, %d errors (%d nodes, model v%d)\n",
				sh.Name, state, sh.EmbedsDelta, sh.DeltasDelta, sh.ErrorsDelta, sh.NodeCount, sh.ModelVersion)
		}
		return
	}
	fmt.Fprintf(out, "server: %d completed (%d cache hits, %d rejected), %.0f allocs/req, %.0f B/req, %d GCs (%s pause), epochs retired %d live %d, query-cache hit rate %.0f%%\n",
		s.CompletedDelta, s.CacheHitsDelta, s.RejectionsDelta,
		s.AllocsPerRequest, s.BytesPerRequest, s.NumGCDelta,
		time.Duration(s.GCPauseDeltaNs), s.RetiredEpochs, s.LiveEpochs,
		100*s.QueryCacheHitRate)
}

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.Addr, "addr", cfg.Addr, "base URL of the netembedd under test")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "measurement window")
	flag.Float64Var(&cfg.RPS, "rps", cfg.RPS, "target arrival rate (requests/s, all ops)")
	flag.StringVar(&cfg.Arrival, "arrival", cfg.Arrival, "arrival process: poisson or fixed")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "executor pool size")
	flag.StringVar(&cfg.Mix, "mix", cfg.Mix, "op mix weights (embed, batch, path, jobs, delta)")
	flag.IntVar(&cfg.QueryVariants, "queries", cfg.QueryVariants, "distinct query subgraphs to cycle")
	flag.IntVar(&cfg.QueryNodes, "query-nodes", cfg.QueryNodes, "nodes per query subgraph")
	flag.IntVar(&cfg.QueryEdges, "query-edges", cfg.QueryEdges, "edges per query subgraph")
	flag.IntVar(&cfg.MaxResults, "max-results", cfg.MaxResults, "maxResults per embedding request")
	flag.IntVar(&cfg.TimeoutMs, "timeout-ms", cfg.TimeoutMs, "per-request search timeout (ms)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "workload derivation seed")
	flag.DurationVar(&cfg.Drain, "drain", cfg.Drain, "post-window backlog drain budget")
	flag.StringVar(&cfg.Out, "out", cfg.Out, "write machine-readable report JSON here")
	flag.StringVar(&cfg.Target, "target", cfg.Target, "base URL of a federated coordinator: load its /embed + /deltas, report per-shard routing from /cluster")
	flag.StringVar(&cfg.HostPath, "host", cfg.HostPath, "derive the workload from this GraphML instead of GET /model (required with -target)")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netembedload: %v\n", err)
		os.Exit(1)
	}
	printReport(os.Stdout, rep)
	if cfg.Out != "" {
		fmt.Printf("report written to %s\n", cfg.Out)
	}
	// A run where nothing succeeded is a failed run, exit nonzero so CI
	// catches a half-booted daemon.
	if rep.Overall.Count == 0 {
		fmt.Fprintln(os.Stderr, "netembedload: no request succeeded")
		os.Exit(1)
	}
}
