package main

import (
	"math"
	"math/bits"
	"time"
)

// histogram is an HDR-style log-bucketed latency histogram: values are
// binned by the position of their leading bit (the octave) refined by
// subBits mantissa bits, giving a fixed relative quantile error of at
// most 2^-subBits (~3% at subBits=5) across the full uint64 range with a
// small flat array — no per-sample allocation, O(1) record, mergeable
// across workers by bucket-wise addition. Stdlib only; the layout is the
// standard HdrHistogram bucketing scheme.
type histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

const (
	subBits    = 5
	subBuckets = 1 << subBits // 32 linear sub-buckets per octave
	// Values below subBuckets are recorded exactly; above, each octave
	// e >= subBits contributes subBuckets buckets.
	numBuckets = subBuckets * (65 - subBits)
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v < 2^(e+1), e >= subBits
	m := int(v>>(uint(e)-subBits)) - subBuckets
	return subBuckets + (e-subBits)*subBuckets + m
}

// bucketUpper returns the largest value mapping to bucket b — the
// conservative (upper-bound) representative quantiles report.
func bucketUpper(b int) uint64 {
	if b < subBuckets {
		return uint64(b)
	}
	k := (b - subBuckets) / subBuckets
	m := uint64((b-subBuckets)%subBuckets) + subBuckets
	shift := uint(k)
	return (m << shift) + (1 << shift) - 1
}

func (h *histogram) record(d time.Duration) {
	v := uint64(max(int64(d), 0))
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

func (h *histogram) merge(o *histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// quantile returns the value at quantile q in [0, 1] (upper bucket bound,
// clamped to the observed max). Zero-sample histograms report 0.
func (h *histogram) quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			return min(bucketUpper(b), h.max)
		}
	}
	return h.max
}

func (h *histogram) mean() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}
