package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"netembed/internal/engine"
	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/index"
	"netembed/internal/service"
	"netembed/internal/service/httpapi"
	"netembed/internal/trace"
)

// TestHistogramQuantilesAgainstSort checks the log-bucketed quantiles
// against exact sorted-sample quantiles: every reported quantile must sit
// at or above the true value and within the bucketing scheme's relative
// error (2^-subBits, ~3.2%).
func TestHistogramQuantilesAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		var h histogram
		samples := make([]uint64, 0, 20000)
		for i := 0; i < 20000; i++ {
			// Log-uniform latencies: 1µs .. ~1s, the serve path's range.
			v := uint64(1000 * (1 + rng.ExpFloat64()*float64(rng.Intn(1000))))
			samples = append(samples, v)
			h.record(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			idx := int(q*float64(len(samples))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := samples[idx]
			got := h.quantile(q)
			if got < exact {
				t.Errorf("trial %d q%.3f: histogram %d below exact %d", trial, q, got, exact)
			}
			if maxErr := float64(exact) * (1 + 1.0/subBuckets); float64(got) > maxErr+1 {
				t.Errorf("trial %d q%.3f: histogram %d exceeds exact %d by more than the bucket error", trial, q, got, exact)
			}
		}
		if h.quantile(1.0) != h.max {
			t.Errorf("q1.0 = %d, want max %d", h.quantile(1.0), h.max)
		}
	}
}

// TestHistogramMerge pins that merging per-worker histograms is exactly
// equivalent to recording everything into one.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole histogram
	parts := make([]histogram, 4)
	for i := 0; i < 10000; i++ {
		v := time.Duration(rng.Intn(1_000_000_000))
		whole.record(v)
		parts[i%4].record(v)
	}
	var merged histogram
	for i := range parts {
		merged.merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged histogram differs from whole-stream histogram")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// bucket indices must be monotone in the value.
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		b := bucketOf(v)
		if b < prev {
			t.Errorf("bucketOf(%d) = %d, below previous bucket %d", v, b, prev)
		}
		prev = b
		if up := bucketUpper(b); bucketOf(up) != b {
			t.Errorf("bucketUpper(%d) = %d maps to bucket %d", b, up, bucketOf(up))
		}
		if up := bucketUpper(b); up < v {
			t.Errorf("bucketUpper(%d) = %d < recorded value %d", b, up, v)
		}
	}
}

func TestMixWeights(t *testing.T) {
	w, err := mixWeights("embed=50,jobs=25,delta=25")
	if err != nil {
		t.Fatal(err)
	}
	if w[opEmbed] != 0.5 || w[opJobs] != 0.25 || w[opDelta] != 0.25 || w[opBatch] != 0 {
		t.Fatalf("weights = %v", w)
	}
	for _, bad := range []string{"", "embed", "warp=1", "embed=-1", "embed=0"} {
		if _, err := mixWeights(bad); err == nil {
			t.Errorf("mix %q: expected error", bad)
		}
	}
}

// TestRunEndToEnd drives the full harness against an in-process server:
// every op kind must complete, the report must carry sane quantiles, the
// server section must see the extended /stats gauges, and the JSON
// report must round-trip.
func TestRunEndToEnd(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(1)))
	model := service.NewModel(host)
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	eng := engine.New(svc, engine.Config{Workers: 2, QueueDepth: 64, CacheCapacity: 64})
	defer eng.Close(context.Background())
	ts := httptest.NewServer(httpapi.NewWithEngine(svc, eng))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "LOAD_test.json")
	cfg := defaultConfig()
	cfg.Addr = ts.URL
	cfg.Duration = 1500 * time.Millisecond
	cfg.RPS = 120
	cfg.Arrival = "fixed"
	cfg.Workers = 8
	cfg.QueryVariants = 3
	cfg.QueryNodes = 5
	cfg.QueryEdges = 6
	cfg.Out = out

	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Count == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Overall.Errors > 0 {
		t.Errorf("%d errors against a healthy server: %+v", rep.Overall.Errors, rep.PerOp)
	}
	for _, op := range []string{"embed", "batch", "path", "jobs", "delta", "optimize"} {
		r, ok := rep.PerOp[op]
		if !ok || r.Count == 0 {
			t.Errorf("op %s: no completions (report %+v)", op, rep.PerOp[op])
		}
	}
	o := rep.Overall
	if !(o.P50Ns <= o.P95Ns && o.P95Ns <= o.P99Ns && o.P99Ns <= o.P999Ns && o.P999Ns <= o.MaxNs) {
		t.Errorf("quantiles not monotone: %+v", o)
	}
	if o.P50Ns == 0 {
		t.Error("p50 is zero")
	}
	if rep.Server.CompletedDelta == 0 {
		t.Error("server stats saw no completed jobs — /stats diff broken")
	}
	if rep.Server.MallocsDelta == 0 {
		t.Error("server runtime section missing — mallocs delta is zero")
	}
	if rep.Server.AllocsPerRequest <= 0 {
		t.Errorf("allocsPerRequest = %v, want > 0", rep.Server.AllocsPerRequest)
	}
	// Delta churn must have published new model versions; retirement of a
	// specific epoch depends on a reader straddling a bump (covered
	// deterministically by the service package's epoch soak test), so here
	// only the plumbing of the model section is asserted.
	if rep.Server.ModelVersion <= 1 {
		t.Errorf("model version %d after delta churn, want > 1", rep.Server.ModelVersion)
	}

	// The machine-readable report round-trips and matches what run
	// returned.
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != "netembedload/3" || back.Overall.Count != rep.Overall.Count {
		t.Errorf("report round trip mismatch: %+v vs %+v", back.Overall, rep.Overall)
	}
}

// TestRunAgainstCoordinator drives the harness in -target mode against
// an in-process federated tier: the load flows through the coordinator's
// /embed + /deltas, the workload derives from the -host file, and the
// report's server section must carry the per-shard routing breakdown.
func TestRunAgainstCoordinator(t *testing.T) {
	host := graph.NewUndirected()
	attrs := func(d float64) graph.Attrs {
		return graph.Attrs{}.
			SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.1)
	}
	for i := 0; i < 6; i++ {
		g := "west"
		if i >= 3 {
			g = "east"
		}
		host.AddNode("", graph.Attrs{}.SetStr("region", g))
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			host.MustAddEdge(graph.NodeID(a), graph.NodeID(b), attrs(10))
			host.MustAddEdge(graph.NodeID(3+a), graph.NodeID(3+b), attrs(10))
		}
	}
	host.MustAddEdge(0, 3, attrs(200))

	coord, err := service.NewFederation(host, "region", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewClusterServer(coord))
	defer ts.Close()

	hostML, err := graphml.EncodeString(host)
	if err != nil {
		t.Fatal(err)
	}
	hostPath := filepath.Join(t.TempDir(), "host.graphml")
	if err := os.WriteFile(hostPath, []byte(hostML), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := defaultConfig()
	cfg.Target = ts.URL
	cfg.HostPath = hostPath
	cfg.Duration = 1200 * time.Millisecond
	cfg.RPS = 60
	cfg.Arrival = "fixed"
	cfg.Workers = 4
	cfg.Mix = "embed=70,delta=30"
	cfg.QueryVariants = 3
	cfg.QueryNodes = 3
	cfg.QueryEdges = 3

	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "netembedload/3" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Overall.Count == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Overall.Errors > 0 {
		t.Errorf("%d errors against a healthy tier: %+v", rep.Overall.Errors, rep.PerOp)
	}
	if len(rep.Server.Shards) != 2 {
		t.Fatalf("shard breakdown = %+v, want 2 shards", rep.Server.Shards)
	}
	var embeds uint64
	for _, s := range rep.Server.Shards {
		if !s.Healthy {
			t.Errorf("shard %s unhealthy after the run", s.Name)
		}
		embeds += s.EmbedsDelta
	}
	if embeds == 0 {
		t.Error("no embeds routed to any shard")
	}
	if rep.Server.CompletedDelta == 0 {
		t.Error("completedDelta zero in federated mode")
	}

	// -target without -host cannot derive a workload.
	bad := cfg
	bad.HostPath = ""
	if _, err := run(bad); err == nil {
		t.Error("-target without -host accepted")
	}
}
