// Command netembedsim replays a synthetic stream of arriving and
// departing embedding requests against a NETEMBED service with virtual
// time, reporting acceptance ratio and utilization — the long-run view of
// the service that §VIII's scheduling discussion implies.
//
// Usage:
//
//	netembedsim -host planetlab -requests 500 -interarrival 1m -holding 45m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netembed"
	"netembed/internal/service"
	"netembed/internal/sim"
)

func main() {
	var (
		hostPath     = flag.String("host", "planetlab", "hosting network GraphML file, or 'planetlab'")
		seed         = flag.Int64("seed", 1, "random seed")
		requests     = flag.Int("requests", 200, "number of embedding requests to replay")
		interarrival = flag.Duration("interarrival", 2*time.Minute, "mean virtual time between arrivals")
		holding      = flag.Duration("holding", 30*time.Minute, "mean virtual lease duration")
		minNodes     = flag.Int("min-nodes", 3, "smallest query size")
		maxNodes     = flag.Int("max-nodes", 8, "largest query size")
		algo         = flag.String("algo", "lns", "algorithm: ecf, rwb, lns, parallel-ecf")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request search timeout")
	)
	flag.Parse()

	host, err := loadHost(*hostPath, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netembedsim:", err)
		os.Exit(1)
	}
	fmt.Printf("hosting network: %d nodes, %d links\n", host.NumNodes(), host.NumEdges())
	fmt.Printf("workload: %d requests, 1/λ=%v, hold=%v, sizes %d-%d, algo %s\n\n",
		*requests, *interarrival, *holding, *minNodes, *maxNodes, *algo)

	metrics, err := sim.Run(host, sim.Config{
		Requests:         *requests,
		MeanInterarrival: *interarrival,
		MeanHolding:      *holding,
		QueryNodesMin:    *minNodes,
		QueryNodesMax:    *maxNodes,
		Algorithm:        service.Algorithm(*algo),
		Timeout:          *timeout,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netembedsim:", err)
		os.Exit(1)
	}
	metrics.Report(os.Stdout)
}

func loadHost(path string, seed int64) (*netembed.Graph, error) {
	if path == "planetlab" {
		return netembed.DefaultPlanetLab(seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return netembed.DecodeGraphML(f)
}
