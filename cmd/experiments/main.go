// Command experiments regenerates the paper's evaluation figures (§VII)
// from the reproduction's workloads and algorithms.
//
// Usage:
//
//	experiments -run all                 # everything, full paper sizes
//	experiments -run fig8,fig13 -scale 0.25 -reps 3
//	experiments -run baselines -csv results/
//
// Available experiments: fig8 (implies fig9), fig9, fig10, fig11 (implies
// fig12), fig12, fig13, fig14, fig15, baselines, ablate, coords, all.
//
// Absolute times depend on the machine; the shapes are what reproduce the
// paper (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"netembed/internal/exp"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiments to run")
		scale   = flag.Float64("scale", 1.0, "network size multiplier (1.0 = paper sizes)")
		reps    = flag.Int("reps", 5, "queries per data point")
		timeout = flag.Duration("timeout", 10*time.Second, "per-query timeout")
		seed    = flag.Int64("seed", 1, "base random seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := exp.Config{Scale: *scale, Reps: *reps, Timeout: *timeout, Seed: *seed}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	runners := map[string]func(exp.Config) []*exp.Table{
		"fig8":      exp.Fig8And9,
		"fig9":      exp.Fig8And9,
		"fig10":     exp.Fig10,
		"fig11":     exp.Fig11And12,
		"fig12":     exp.Fig11And12,
		"fig13":     exp.Fig13,
		"fig14":     exp.Fig14,
		"fig15":     exp.Fig15,
		"baselines": exp.Baselines,
		"ablate":    exp.Ablations,
		"coords":    exp.Coords,
	}
	order := []string{"fig8", "fig10", "fig11", "fig13", "fig14", "fig15", "baselines", "ablate", "coords"}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			for _, n := range order {
				want[n] = true
			}
			continue
		}
		// fig9 and fig12 ride along with fig8/fig11.
		switch name {
		case "fig9":
			name = "fig8"
		case "fig12":
			name = "fig11"
		}
		if _, ok := runners[name]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		want[name] = true
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	for _, name := range order {
		if !want[name] {
			continue
		}
		fmt.Printf("=== %s (scale %.2f, %d reps, timeout %v) ===\n\n", name, *scale, *reps, *timeout)
		tables := runners[name](cfg)
		for _, t := range tables {
			t.Render(os.Stdout)
			if *csvDir != "" {
				csvName := t.ID + ".csv"
				f, err := os.Create(filepath.Join(*csvDir, csvName))
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
				t.CSV(f)
				f.Close()
				gp, err := os.Create(filepath.Join(*csvDir, t.ID+".gp"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
				if err := t.WriteGnuplot(gp, csvName); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				}
				gp.Close()
			}
		}
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
