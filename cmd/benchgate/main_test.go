package main

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

const baseRun = `
goos: linux
goarch: amd64
pkg: netembed
BenchmarkRepr_ECF_Search/n512/bitset-8         	     100	   1000000 ns/op
BenchmarkRepr_ECF_Search/n512/bitset-8         	     100	   1100000 ns/op
BenchmarkRepr_ECF_Search/n512/bitset-8         	     100	    900000 ns/op
BenchmarkEngineThroughput/w4/warm-8            	    5000	      2000 ns/op	 120 B/op	       3 allocs/op
BenchmarkEngineThroughput/w4/warm-8            	    5000	      2200 ns/op	 120 B/op	       3 allocs/op
BenchmarkFig08_ECF_PlanetLab-8                 	      50	   5000000 ns/op
BenchmarkGone-8                                	      10	    111111 ns/op
PASS
`

const headRun = `
BenchmarkRepr_ECF_Search/n512/bitset-16        	     100	   1050000 ns/op
BenchmarkRepr_ECF_Search/n512/bitset-16        	     100	   1060000 ns/op
BenchmarkRepr_ECF_Search/n512/bitset-16        	     100	   1040000 ns/op
BenchmarkEngineThroughput/w4/warm-16           	    5000	      3000 ns/op
BenchmarkEngineThroughput/w4/warm-16           	    5000	      3100 ns/op
BenchmarkFig08_ECF_PlanetLab-16                	      50	  50000000 ns/op
BenchmarkNew/sub-16                            	      10	    222222 ns/op
`

func parse(t *testing.T, s string) map[string]*Samples {
	t.Helper()
	m, err := ParseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, baseRun)
	if got := len(m["BenchmarkRepr_ECF_Search/n512/bitset"].NsOp); got != 3 {
		t.Fatalf("got %d samples, want 3 (GOMAXPROCS suffix must be stripped)", got)
	}
	eng := m["BenchmarkEngineThroughput/w4/warm"]
	if len(eng.NsOp) != 2 || eng.NsOp[0] != 2000 {
		t.Fatalf("engine ns samples = %v", eng.NsOp)
	}
	if len(eng.AllocsOp) != 2 || eng.AllocsOp[0] != 3 {
		t.Fatalf("engine allocs samples = %v — -benchmem columns must parse", eng.AllocsOp)
	}
	if _, ok := m["PASS"]; ok {
		t.Fatal("non-benchmark lines leaked into the parse")
	}
}

func TestCompareGate(t *testing.T) {
	gate := regexp.MustCompile(`^BenchmarkRepr_|^BenchmarkEngineThroughput`)
	report := Compare(parse(t, baseRun), parse(t, headRun), gate, 0.10, 0.10)

	byName := map[string]Result{}
	for _, r := range report.Results {
		byName[r.Name] = r
	}

	// Repr: medians 1000000 -> 1050000 = +5%: gated but tolerated.
	repr := byName["BenchmarkRepr_ECF_Search/n512/bitset"]
	if !repr.Gated || repr.Regression {
		t.Fatalf("repr: %+v, want gated and within threshold", repr)
	}
	if repr.BaseNsOp != 1000000 || repr.HeadNsOp != 1050000 {
		t.Fatalf("repr medians = %v -> %v", repr.BaseNsOp, repr.HeadNsOp)
	}

	// Engine: 2100 -> 3050 = +45%: gated regression. The head run carries
	// no -benchmem columns, so allocations must not gate it.
	eng := byName["BenchmarkEngineThroughput/w4/warm"]
	if !eng.Regression {
		t.Fatalf("engine: %+v, want regression", eng)
	}
	if eng.HasAllocs {
		t.Fatalf("engine: %+v, allocs must not compare when one side lacks them", eng)
	}

	// Fig08 regressed 10x but is not gated.
	fig := byName["BenchmarkFig08_ECF_PlanetLab"]
	if fig.Gated || fig.Regression {
		t.Fatalf("fig08: %+v, want ungated and non-failing", fig)
	}

	// One-sided benchmarks are reported but never gate.
	if byName["BenchmarkGone"].OnlyIn != "base" || byName["BenchmarkNew/sub"].OnlyIn != "head" {
		t.Fatal("one-sided benchmarks misreported")
	}

	if len(report.Regressions) != 1 || report.Regressions[0] != "BenchmarkEngineThroughput/w4/warm" {
		t.Fatalf("regressions = %v", report.Regressions)
	}
}

// TestCompareGatesAllocs pins the -benchmem gate: a benchmark whose ns/op
// held steady but whose allocs/op blew past the allocation threshold must
// regress, and allocation deltas within threshold must not.
func TestCompareGatesAllocs(t *testing.T) {
	const base = `
BenchmarkServePath/warm-8	1000	 750000 ns/op	103000 B/op	1957 allocs/op
BenchmarkServePath/cached-8	1000	 620000 ns/op	106000 B/op	 480 allocs/op
`
	const head = `
BenchmarkServePath/warm-8	1000	 760000 ns/op	300000 B/op	4300 allocs/op
BenchmarkServePath/cached-8	1000	 615000 ns/op	106500 B/op	 500 allocs/op
`
	gate := regexp.MustCompile(`^BenchmarkServePath`)
	report := Compare(parse(t, base), parse(t, head), gate, 0.10, 0.10)
	byName := map[string]Result{}
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	warm := byName["BenchmarkServePath/warm"]
	if !warm.HasAllocs || !warm.Regression {
		t.Fatalf("warm: %+v, want allocs-driven regression (+%.0f%% allocs at +1%% ns)",
			warm, warm.AllocsDelta*100)
	}
	cached := byName["BenchmarkServePath/cached"]
	if cached.Regression {
		t.Fatalf("cached: %+v, +4%% allocs is within the 10%% threshold", cached)
	}
	if len(report.Regressions) != 1 || report.Regressions[0] != "BenchmarkServePath/warm" {
		t.Fatalf("regressions = %v", report.Regressions)
	}
}

func TestCompareNoRegression(t *testing.T) {
	gate := regexp.MustCompile(`^BenchmarkRepr_`)
	report := Compare(parse(t, baseRun), parse(t, headRun), gate, 0.10, 0.10)
	if len(report.Regressions) != 0 {
		t.Fatalf("regressions = %v, want none under a Repr-only gate", report.Regressions)
	}
}

// TestWorkflowGateMatchesSubBenchmarks pins the CI workflow's GATE to the
// names benchgate actually compares: full sub-benchmark paths (with the
// GOMAXPROCS suffix stripped). A right-anchored pattern would silently
// gate nothing for benchmarks that only emit sub-benchmark lines.
func TestWorkflowGateMatchesSubBenchmarks(t *testing.T) {
	raw, err := os.ReadFile("../../.github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading workflow: %v", err)
	}
	m := regexp.MustCompile(`(?m)^\s*GATE:\s*'([^']+)'`).FindSubmatch(raw)
	if m == nil {
		t.Fatal("no GATE env var found in ci.yml")
	}
	gate, err := regexp.Compile(string(m[1]))
	if err != nil {
		t.Fatalf("GATE does not compile: %v", err)
	}
	for _, name := range []string{
		"BenchmarkRepr_ECF_Search/n512/bitset",
		"BenchmarkEngineThroughput/workers=4/warm",
		"BenchmarkEngineThroughput/workers=16/cold",
		"BenchmarkSearch_FC_vs_Chrono/dense512/subgraph/fc",
		"BenchmarkSearch_FC_vs_Chrono/dense512/clique/chrono",
		"BenchmarkSearch_FC_vs_Chrono/nomatch512/fc",
		"BenchmarkPathEmbed_FC_vs_Seed/dense512/windowed/fc",
		"BenchmarkPathEmbed_FC_vs_Seed/dense512/windowed/seed",
		"BenchmarkPathEmbed_FC_vs_Seed/nomatch128/fc",
		"BenchmarkRepair_SeededVsScratch/seeded",
		"BenchmarkRepair_SeededVsScratch/scratch",
		"BenchmarkServePath/warm",
		"BenchmarkServePath/cached",
		"BenchmarkOptimize_BnB_vs_Enumerate/n512/bnb",
		"BenchmarkOptimize_BnB_vs_Enumerate/n512/enumerate",
	} {
		if !gate.MatchString(name) {
			t.Errorf("GATE %q does not gate %q", m[1], name)
		}
	}
	for _, name := range []string{
		"BenchmarkFig08_ECF_PlanetLab",
		"BenchmarkIndexDelta/delta-apply",
		"BenchmarkParallelECF_StealVsStatic/steal",
	} {
		if gate.MatchString(name) {
			t.Errorf("GATE %q unexpectedly gates %q", m[1], name)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func loadDocFor(count uint64, p99 uint64, allocs float64) loadDoc {
	var d loadDoc
	d.Schema = "netembedload/2"
	d.Overall.Count = count
	d.Overall.P99Ns = p99
	d.Server.AllocsPerRequest = allocs
	return d
}

// TestReadLoadDocSchemas pins which LOAD_*.json schemas the gate reads:
// netembedload/1 (pre-optimize baselines), /2 (optimize op) and /3
// (per-shard routing counts) all decode to the same gated fields;
// anything else is refused so a harness/gate version skew fails loudly
// instead of comparing garbage.
func TestReadLoadDocSchemas(t *testing.T) {
	const body = `{"schema":%q,"overall":{"count":42,"errors":1,"p50Ns":100,"p99Ns":900},"server":{"allocsPerRequest":7.5}}`
	dir := t.TempDir()
	for _, schema := range []string{"netembedload/1", "netembedload/2", "netembedload/3"} {
		path := dir + "/" + strings.ReplaceAll(schema, "/", "_") + ".json"
		if err := os.WriteFile(path, []byte(fmt.Sprintf(body, schema)), 0o644); err != nil {
			t.Fatal(err)
		}
		doc, err := readLoadDoc(path)
		if err != nil {
			t.Fatalf("schema %s refused: %v", schema, err)
		}
		if doc.Overall.Count != 42 || doc.Overall.P99Ns != 900 || doc.Server.AllocsPerRequest != 7.5 {
			t.Fatalf("schema %s decoded wrong: %+v", schema, doc)
		}
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(fmt.Sprintf(body, "netembedload/4")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readLoadDoc(bad); err == nil {
		t.Fatal("unknown schema netembedload/4 must be refused")
	}
}

// TestCompareLoad pins the load-mode gate: >15% p99 or >10%
// allocs/request fails, improvements and in-threshold drift pass, and a
// head run that completed nothing always fails.
func TestCompareLoad(t *testing.T) {
	base := loadDocFor(1000, 10_000_000, 500)

	ok := CompareLoad(base, loadDocFor(900, 11_000_000, 520), 0.15, 0.10, 0)
	if len(ok.Failures) != 0 {
		t.Fatalf("+10%% p99 / +4%% allocs failed: %v", ok.Failures)
	}

	slow := CompareLoad(base, loadDocFor(900, 12_000_000, 500), 0.15, 0.10, 0)
	if len(slow.Failures) != 1 || !strings.Contains(slow.Failures[0], "p99") {
		t.Fatalf("+20%% p99 should fail the p99 gate: %v", slow.Failures)
	}

	leaky := CompareLoad(base, loadDocFor(900, 10_000_000, 600), 0.15, 0.10, 0)
	if len(leaky.Failures) != 1 || !strings.Contains(leaky.Failures[0], "allocs") {
		t.Fatalf("+20%% allocs should fail the allocation gate: %v", leaky.Failures)
	}

	improved := CompareLoad(base, loadDocFor(900, 5_000_000, 100), 0.15, 0.10, 0)
	if len(improved.Failures) != 0 {
		t.Fatalf("improvement failed the gate: %v", improved.Failures)
	}

	empty := CompareLoad(base, loadDocFor(0, 0, 0), 0.15, 0.10, 0)
	if len(empty.Failures) == 0 {
		t.Fatal("a head run with zero completions must fail")
	}

	// The noise floor mutes tiny-latency jitter: both sides under 1ms.
	quiet := CompareLoad(loadDocFor(1000, 400_000, 100), loadDocFor(1000, 700_000, 100),
		0.15, 0.10, 1_000_000)
	if len(quiet.Failures) != 0 {
		t.Fatalf("sub-floor p99 jitter must not gate: %v", quiet.Failures)
	}
}
