// Command benchgate compares two performance artifacts and fails when a
// gated metric regressed beyond its threshold. CI runs it after
// benchstat: benchstat renders the human-readable comparison, benchgate
// enforces the gate and emits the machine-readable artifact
// (BENCH_pr<N>.json / LOAD_pr<N>.json comparison) the workflow uploads.
//
// Bench mode (default) diffs two `go test -bench -benchmem` output files:
//
//	benchgate -base base.txt -head head.txt -out bench.json \
//	          -gate '^BenchmarkRepr_|^BenchmarkEngineThroughput' \
//	          -threshold 0.10 -allocs-threshold 0.10
//
// Per benchmark the median ns/op across repetitions (-count 5 runs) is
// compared; medians shrug off the one-off scheduling hiccups that make
// means useless on shared CI runners. allocs/op — deterministic, so far
// more sensitive than ns/op — is gated separately when both sides report
// it. Benchmarks present on only one side are reported but never gate
// (new or deleted benchmarks must not fail the pipeline that introduces
// them).
//
// Load mode (-load) diffs two netembedload LOAD_*.json reports:
//
//	benchgate -load -base LOAD_base.json -head LOAD_head.json \
//	          -p99-threshold 0.15 -allocs-threshold 0.10 -out cmp.json
//
// gating the overall p99 latency and the server-side allocations per
// completed request.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		basePath  = flag.String("base", "", "bench output (or LOAD json, with -load) of the base commit")
		headPath  = flag.String("head", "", "bench output (or LOAD json, with -load) of the PR head")
		outPath   = flag.String("out", "", "JSON report path (empty = stdout only)")
		gateExpr  = flag.String("gate", "^BenchmarkRepr_|^BenchmarkEngineThroughput", "regexp of benchmarks that gate the build")
		threshold = flag.Float64("threshold", 0.10, "maximum tolerated relative ns/op regression on gated benchmarks")
		allocsThr = flag.Float64("allocs-threshold", 0.10, "maximum tolerated relative allocs/op (or allocs/request) regression")
		loadMode  = flag.Bool("load", false, "compare netembedload LOAD_*.json reports instead of bench output")
		p99Thr    = flag.Float64("p99-threshold", 0.15, "load mode: maximum tolerated relative overall-p99 regression")
		minP99Ns  = flag.Float64("min-p99-ns", 0, "load mode: ignore p99 regressions when both sides are below this floor")
	)
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}

	if *loadMode {
		runLoadMode(*basePath, *headPath, *outPath, *p99Thr, *allocsThr, *minP99Ns)
		return
	}

	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}

	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	report := Compare(base, head, gate, *threshold, *allocsThr)
	writeOut(*outPath, report)

	for _, r := range report.Results {
		marker := " "
		if r.Regression {
			marker = "!"
		}
		line := fmt.Sprintf("%s %-60s %12.0f -> %12.0f ns/op  %+6.1f%%",
			marker, r.Name, r.BaseNsOp, r.HeadNsOp, r.Delta*100)
		if r.HasAllocs {
			line += fmt.Sprintf("  %8.0f -> %8.0f allocs/op  %+6.1f%%",
				r.BaseAllocsOp, r.HeadAllocsOp, r.AllocsDelta*100)
		}
		fmt.Println(line + gatedSuffix(r.Gated))
	}
	if len(report.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated benchmark(s) regressed (ns/op > %.0f%% or allocs/op > %.0f%%): %s\n",
			len(report.Regressions), *threshold*100, *allocsThr*100, strings.Join(report.Regressions, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchgate: no gated regression beyond %.0f%% ns/op, %.0f%% allocs/op\n",
		*threshold*100, *allocsThr*100)
}

func writeOut(path string, v any) {
	if path == "" {
		return
	}
	raw, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(raw, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
}

func gatedSuffix(gated bool) string {
	if gated {
		return "  [gated]"
	}
	return ""
}

// Report is the JSON artifact uploaded by CI.
type Report struct {
	Gate            string   `json:"gate"`
	Threshold       float64  `json:"threshold"`
	AllocsThreshold float64  `json:"allocsThreshold"`
	Results         []Result `json:"results"`
	Regressions     []string `json:"regressions"`
}

// Result compares one benchmark across the two runs. Deltas are relative:
// (head-base)/base, positive = slower / more allocations.
type Result struct {
	Name         string  `json:"name"`
	BaseNsOp     float64 `json:"baseNsOp"`
	HeadNsOp     float64 `json:"headNsOp"`
	Delta        float64 `json:"delta"`
	HasAllocs    bool    `json:"hasAllocs,omitempty"`
	BaseAllocsOp float64 `json:"baseAllocsOp,omitempty"`
	HeadAllocsOp float64 `json:"headAllocsOp,omitempty"`
	AllocsDelta  float64 `json:"allocsDelta,omitempty"`
	Gated        bool    `json:"gated"`
	Regression   bool    `json:"regression"`
	// OnlyIn marks benchmarks present on a single side ("base"/"head");
	// they never gate.
	OnlyIn string `json:"onlyIn,omitempty"`
}

// Samples holds one benchmark's repetition values from one run.
type Samples struct {
	NsOp     []float64
	AllocsOp []float64
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts ns/op and allocs/op samples per benchmark name from
// `go test -bench -benchmem` output. The trailing -GOMAXPROCS suffix is
// stripped so runs from differently sized machines still line up.
func ParseBench(r io.Reader) (map[string]*Samples, error) {
	out := make(map[string]*Samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Benchmark lines read: Name-P  iterations  value ns/op  [more pairs].
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		s := out[name]
		if s == nil {
			s = &Samples{}
			out[name] = s
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q for %s", fields[i], name)
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsOp = append(s.NsOp, v)
			case "allocs/op":
				s.AllocsOp = append(s.AllocsOp, v)
			}
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]*Samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, err := ParseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return samples, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Compare builds the gate report from two parsed runs. A gated benchmark
// regresses when its median ns/op worsens beyond threshold, or — when
// both runs report allocations — its median allocs/op worsens beyond
// allocsThreshold.
func Compare(base, head map[string]*Samples, gate *regexp.Regexp, threshold, allocsThreshold float64) *Report {
	names := make(map[string]bool, len(base)+len(head))
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	report := &Report{Gate: gate.String(), Threshold: threshold, AllocsThreshold: allocsThreshold}
	for _, name := range ordered {
		res := Result{Name: name, Gated: gate.MatchString(name)}
		bs, inBase := base[name]
		hs, inHead := head[name]
		switch {
		case inBase && inHead:
			res.BaseNsOp = median(bs.NsOp)
			res.HeadNsOp = median(hs.NsOp)
			if res.BaseNsOp > 0 {
				res.Delta = (res.HeadNsOp - res.BaseNsOp) / res.BaseNsOp
			}
			res.Regression = res.Gated && res.Delta > threshold
			if len(bs.AllocsOp) > 0 && len(hs.AllocsOp) > 0 {
				res.HasAllocs = true
				res.BaseAllocsOp = median(bs.AllocsOp)
				res.HeadAllocsOp = median(hs.AllocsOp)
				if res.BaseAllocsOp > 0 {
					res.AllocsDelta = (res.HeadAllocsOp - res.BaseAllocsOp) / res.BaseAllocsOp
				}
				if res.Gated && res.AllocsDelta > allocsThreshold {
					res.Regression = true
				}
			}
		case inBase:
			res.BaseNsOp = median(bs.NsOp)
			res.OnlyIn = "base"
		default:
			res.HeadNsOp = median(hs.NsOp)
			res.OnlyIn = "head"
		}
		if res.Regression {
			report.Regressions = append(report.Regressions, name)
		}
		report.Results = append(report.Results, res)
	}
	return report
}

// loadDoc is the slice of a netembedload LOAD_*.json report the gate
// reads (schemas "netembedload/1" through "netembedload/3" — the /2
// bump only added the optimize op to the mix and /3 only added the
// per-shard routing counts of federated runs; the gated fields are
// unchanged, so old baselines stay comparable).
type loadDoc struct {
	Schema  string `json:"schema"`
	Overall struct {
		Count  uint64 `json:"count"`
		Errors uint64 `json:"errors"`
		P50Ns  uint64 `json:"p50Ns"`
		P99Ns  uint64 `json:"p99Ns"`
	} `json:"overall"`
	Server struct {
		AllocsPerRequest float64 `json:"allocsPerRequest"`
	} `json:"server"`
}

// LoadReport is the load-mode comparison artifact.
type LoadReport struct {
	BaseP99Ns        float64  `json:"baseP99Ns"`
	HeadP99Ns        float64  `json:"headP99Ns"`
	P99Delta         float64  `json:"p99Delta"`
	P99Threshold     float64  `json:"p99Threshold"`
	BaseAllocsPerReq float64  `json:"baseAllocsPerRequest"`
	HeadAllocsPerReq float64  `json:"headAllocsPerRequest"`
	AllocsDelta      float64  `json:"allocsDelta"`
	AllocsThreshold  float64  `json:"allocsThreshold"`
	Failures         []string `json:"failures"`
}

// CompareLoad gates a head load report against the base: overall p99
// latency and server allocations per completed request. minP99Ns mutes
// the latency gate when both sides sit below a noise floor.
func CompareLoad(base, head loadDoc, p99Threshold, allocsThreshold, minP99Ns float64) *LoadReport {
	rep := &LoadReport{
		BaseP99Ns:        float64(base.Overall.P99Ns),
		HeadP99Ns:        float64(head.Overall.P99Ns),
		P99Threshold:     p99Threshold,
		BaseAllocsPerReq: base.Server.AllocsPerRequest,
		HeadAllocsPerReq: head.Server.AllocsPerRequest,
		AllocsThreshold:  allocsThreshold,
	}
	if rep.BaseP99Ns > 0 {
		rep.P99Delta = (rep.HeadP99Ns - rep.BaseP99Ns) / rep.BaseP99Ns
	}
	if rep.BaseAllocsPerReq > 0 {
		rep.AllocsDelta = (rep.HeadAllocsPerReq - rep.BaseAllocsPerReq) / rep.BaseAllocsPerReq
	}
	if head.Overall.Count == 0 {
		rep.Failures = append(rep.Failures, "head run completed no requests")
	}
	aboveFloor := rep.BaseP99Ns >= minP99Ns || rep.HeadP99Ns >= minP99Ns
	if rep.BaseP99Ns > 0 && aboveFloor && rep.P99Delta > p99Threshold {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("overall p99 regressed %.1f%% (%.2fms -> %.2fms, threshold %.0f%%)",
				rep.P99Delta*100, rep.BaseP99Ns/1e6, rep.HeadP99Ns/1e6, p99Threshold*100))
	}
	if rep.BaseAllocsPerReq > 0 && rep.AllocsDelta > allocsThreshold {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("server allocs/request regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
				rep.AllocsDelta*100, rep.BaseAllocsPerReq, rep.HeadAllocsPerReq, allocsThreshold*100))
	}
	return rep
}

func readLoadDoc(path string) (loadDoc, error) {
	var doc loadDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	switch doc.Schema {
	case "netembedload/1", "netembedload/2", "netembedload/3":
	default:
		return doc, fmt.Errorf("%s: unexpected schema %q", path, doc.Schema)
	}
	return doc, nil
}

func runLoadMode(basePath, headPath, outPath string, p99Thr, allocsThr, minP99Ns float64) {
	base, err := readLoadDoc(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := readLoadDoc(headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	rep := CompareLoad(base, head, p99Thr, allocsThr, minP99Ns)
	writeOut(outPath, rep)
	fmt.Printf("load p99: %.2fms -> %.2fms (%+.1f%%, threshold %.0f%%)\n",
		rep.BaseP99Ns/1e6, rep.HeadP99Ns/1e6, rep.P99Delta*100, p99Thr*100)
	fmt.Printf("load allocs/request: %.0f -> %.0f (%+.1f%%, threshold %.0f%%)\n",
		rep.BaseAllocsPerReq, rep.HeadAllocsPerReq, rep.AllocsDelta*100, allocsThr*100)
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "benchgate: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: load gate passed")
}
