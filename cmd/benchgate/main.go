// Command benchgate compares two `go test -bench` output files and fails
// when a gated benchmark regressed beyond a threshold. CI runs it after
// benchstat: benchstat renders the human-readable comparison, benchgate
// enforces the gate and emits the machine-readable artifact
// (BENCH_pr<N>.json) the workflow uploads.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt -out bench.json \
//	          -gate '^BenchmarkRepr_|^BenchmarkEngineThroughput' -threshold 0.10
//
// Per benchmark the median ns/op across repetitions (-count 5 runs) is
// compared; medians shrug off the one-off scheduling hiccups that make
// means useless on shared CI runners. Benchmarks present on only one
// side are reported but never gate (new or deleted benchmarks must not
// fail the pipeline that introduces them).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		basePath  = flag.String("base", "", "bench output of the base commit")
		headPath  = flag.String("head", "", "bench output of the PR head")
		outPath   = flag.String("out", "", "JSON report path (empty = stdout only)")
		gateExpr  = flag.String("gate", "^BenchmarkRepr_|^BenchmarkEngineThroughput", "regexp of benchmarks that gate the build")
		threshold = flag.Float64("threshold", 0.10, "maximum tolerated relative ns/op regression on gated benchmarks")
	)
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}

	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	report := Compare(base, head, gate, *threshold)
	if *outPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	for _, r := range report.Results {
		marker := " "
		if r.Regression {
			marker = "!"
		}
		fmt.Printf("%s %-60s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n",
			marker, r.Name, r.BaseNsOp, r.HeadNsOp, r.Delta*100, gatedSuffix(r.Gated))
	}
	if len(report.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated benchmark(s) regressed beyond %.0f%%: %s\n",
			len(report.Regressions), *threshold*100, strings.Join(report.Regressions, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchgate: no gated regression beyond %.0f%%\n", *threshold*100)
}

func gatedSuffix(gated bool) string {
	if gated {
		return "  [gated]"
	}
	return ""
}

// Report is the JSON artifact uploaded by CI.
type Report struct {
	Gate        string   `json:"gate"`
	Threshold   float64  `json:"threshold"`
	Results     []Result `json:"results"`
	Regressions []string `json:"regressions"`
}

// Result compares one benchmark across the two runs. Delta is relative:
// (head-base)/base, positive = slower.
type Result struct {
	Name       string  `json:"name"`
	BaseNsOp   float64 `json:"baseNsOp"`
	HeadNsOp   float64 `json:"headNsOp"`
	Delta      float64 `json:"delta"`
	Gated      bool    `json:"gated"`
	Regression bool    `json:"regression"`
	// OnlyIn marks benchmarks present on a single side ("base"/"head");
	// they never gate.
	OnlyIn string `json:"onlyIn,omitempty"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts ns/op samples per benchmark name from `go test
// -bench` output. The trailing -GOMAXPROCS suffix is stripped so runs
// from differently sized machines still line up.
func ParseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Benchmark lines read: Name-P  iterations  value ns/op  [more pairs].
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op %q for %s", fields[i], name)
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, err := ParseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return samples, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Compare builds the gate report from two parsed runs.
func Compare(base, head map[string][]float64, gate *regexp.Regexp, threshold float64) *Report {
	names := make(map[string]bool, len(base)+len(head))
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	report := &Report{Gate: gate.String(), Threshold: threshold}
	for _, name := range ordered {
		res := Result{Name: name, Gated: gate.MatchString(name)}
		bs, inBase := base[name]
		hs, inHead := head[name]
		switch {
		case inBase && inHead:
			res.BaseNsOp = median(bs)
			res.HeadNsOp = median(hs)
			if res.BaseNsOp > 0 {
				res.Delta = (res.HeadNsOp - res.BaseNsOp) / res.BaseNsOp
			}
			res.Regression = res.Gated && res.Delta > threshold
		case inBase:
			res.BaseNsOp = median(bs)
			res.OnlyIn = "base"
		default:
			res.HeadNsOp = median(hs)
			res.OnlyIn = "head"
		}
		if res.Regression {
			report.Regressions = append(report.Regressions, name)
		}
		report.Results = append(report.Results, res)
	}
	return report
}
