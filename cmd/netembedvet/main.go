// Command netembedvet is the repo-invariant checker: a multichecker
// over the five netembedvet analyzers (stoppoll, trailbalance,
// cowwrite, keycomplete, statsthread) that mechanically enforce the
// cancellation, trail, COW-snapshot, cache-fingerprint and
// stats-plumbing contracts this codebase's PRs have each shipped a bug
// against at least once.
//
// Usage:
//
//	go run ./cmd/netembedvet ./...
//
// Exit status is 0 when the tree is clean, 1 on any unsuppressed
// finding, 2 on a driver failure (a package that does not load or
// type-check). Findings print as file:line:col: message (analyzer).
//
// Suppressions: a finding is silenced by
//
//	//netembedvet:allow <analyzer> <reason>
//
// on the reported line, the line above it, or in the doc comment of
// the enclosing declaration. The reason is mandatory — a bare allow
// suppresses nothing. Run over ./... (not a sub-package) so analyzers
// that read annotations from defining packages see the whole module.
package main

import (
	"flag"
	"fmt"
	"os"

	"netembed/internal/analysis/driver"
	"netembed/internal/analysis/vet"
)

func main() {
	dir := flag.String("C", ".", "module directory to analyze from")
	list := flag.Bool("list", false, "print the analyzer names and contracts, then exit")
	flag.Parse()

	if *list {
		for _, az := range vet.All() {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.Run(*dir, patterns, vet.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "netembedvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "netembedvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
