// Command netembed embeds a query network into a hosting network, both
// given as GraphML files, and prints the resulting mappings.
//
// Usage:
//
//	netembed -host host.graphml -query query.graphml \
//	    -constraint 'rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay' \
//	    -algo ecf -max 3 -timeout 10s
//
// The hosting network may also be the built-in synthetic PlanetLab trace
// (-host planetlab) or a textual all-pairs trace (-trace file).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"netembed"
	"netembed/internal/graph"
	"netembed/internal/trace"
)

func main() {
	var (
		hostPath   = flag.String("host", "", "hosting network GraphML file, or 'planetlab' for the built-in synthetic trace")
		tracePath  = flag.String("trace", "", "hosting network as a textual all-pairs trace file")
		queryPath  = flag.String("query", "", "query network GraphML file (required)")
		edgeC      = flag.String("constraint", "", "edge constraint expression")
		nodeC      = flag.String("node-constraint", "", "node constraint expression")
		algo       = flag.String("algo", "ecf", "algorithm: ecf, rwb, lns, parallel-ecf")
		maxResults = flag.Int("max", 1, "maximum embeddings to report (0 = all)")
		timeout    = flag.Duration("timeout", 30*time.Second, "search timeout")
		seed       = flag.Int64("seed", 1, "random seed (rwb, planetlab host)")
		verbose    = flag.Bool("v", false, "print search statistics")
	)
	flag.Parse()
	if err := run(*hostPath, *tracePath, *queryPath, *edgeC, *nodeC, *algo, *maxResults, *timeout, *seed, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "netembed:", err)
		os.Exit(1)
	}
}

func run(hostPath, tracePath, queryPath, edgeC, nodeC, algo string, maxResults int, timeout time.Duration, seed int64, verbose bool) error {
	if queryPath == "" {
		return fmt.Errorf("-query is required")
	}
	host, err := loadHost(hostPath, tracePath, seed)
	if err != nil {
		return err
	}
	qf, err := os.Open(queryPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	query, err := netembed.DecodeGraphML(qf)
	if err != nil {
		return fmt.Errorf("query: %v", err)
	}

	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{DefaultTimeout: timeout})
	resp, err := svc.Embed(netembed.Request{
		Query:          query,
		EdgeConstraint: edgeC,
		NodeConstraint: nodeC,
		Algorithm:      netembed.Algorithm(algo),
		Timeout:        timeout,
		MaxResults:     maxResults,
		Seed:           seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("status: %s (%d embedding(s), %.1f ms)\n",
		resp.Status, len(resp.Mappings), float64(resp.Elapsed)/float64(time.Millisecond))
	for i, nm := range resp.Named {
		fmt.Printf("embedding %d:\n", i+1)
		keys := make([]string, 0, len(nm))
		for k := range nm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s -> %s\n", k, nm[k])
		}
	}
	if verbose {
		st := resp.Stats
		fmt.Printf("stats: filter build %v, %d edge-pair evals, %d filter entries,\n",
			st.FilterBuild, st.EdgePairsEval, st.FilterEntries)
		fmt.Printf("       %d tree nodes visited, %d backtracks, first match after %v\n",
			st.NodesVisited, st.Backtracks, st.TimeToFirst)
	}
	return nil
}

func loadHost(hostPath, tracePath string, seed int64) (*graph.Graph, error) {
	switch {
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAllPairs(f)
	case hostPath == "planetlab":
		return netembed.DefaultPlanetLab(seed), nil
	case hostPath != "":
		f, err := os.Open(hostPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := netembed.DecodeGraphML(f)
		if err != nil {
			return nil, fmt.Errorf("host: %v", err)
		}
		return g, nil
	}
	return nil, fmt.Errorf("one of -host or -trace is required")
}
