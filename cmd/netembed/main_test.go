package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"netembed"
	"netembed/internal/trace"
)

// writeQuery produces a feasible query GraphML file against the built-in
// planetlab host for a given seed.
func writeQuery(t *testing.T, dir string, seed int64) string {
	t.Helper()
	host := netembed.DefaultPlanetLab(seed)
	q, _, err := netembed.Subgraph(host, 6, 10, netembed.NewRand(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	netembed.WidenDelayWindows(q, 0.1)
	path := filepath.Join(dir, "query.graphml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := netembed.EncodeGraphML(f, q); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAgainstBuiltinHost(t *testing.T) {
	dir := t.TempDir()
	queryPath := writeQuery(t, dir, 1)
	err := run("planetlab", "", queryPath,
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay",
		"", "lns", 1, 20*time.Second, 1, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAgainstTraceFile(t *testing.T) {
	dir := t.TempDir()
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 30}, netembed.NewRand(2))
	tracePath := filepath.Join(dir, "host.trace")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAllPairs(f, host); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q, _, err := netembed.Subgraph(host, 4, 6, netembed.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	netembed.WidenDelayWindows(q, 0.2)
	queryPath := filepath.Join(dir, "q.graphml")
	qf, err := os.Create(queryPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := netembed.EncodeGraphML(qf, q); err != nil {
		t.Fatal(err)
	}
	qf.Close()

	err = run("", tracePath, queryPath,
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay",
		"", "ecf", 2, 20*time.Second, 1, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	queryPath := writeQuery(t, dir, 4)
	if err := run("planetlab", "", "", "", "", "ecf", 1, time.Second, 1, false); err == nil {
		t.Error("missing query accepted")
	}
	if err := run("", "", queryPath, "", "", "ecf", 1, time.Second, 1, false); err == nil {
		t.Error("missing host accepted")
	}
	if err := run("planetlab", "", queryPath, "", "", "quantum", 1, time.Second, 1, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("planetlab", "", queryPath, "1 +", "", "ecf", 1, time.Second, 1, false); err == nil {
		t.Error("bad constraint accepted")
	}
	if err := run("/nonexistent.graphml", "", queryPath, "", "", "ecf", 1, time.Second, 1, false); err == nil {
		t.Error("missing host file accepted")
	}
	if err := run("planetlab", "", "/nonexistent.graphml", "", "", "ecf", 1, time.Second, 1, false); err == nil {
		t.Error("missing query file accepted")
	}
}
