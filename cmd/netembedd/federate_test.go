package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/topo"
)

const avgDelayWindowSrc = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

// federationHost mirrors the fixture of the service-level federation
// tests: two 5-node cliques (regions west = n0..n4, east = n5..n9) at
// ~10ms intra-region, joined by two ~200ms cut edges n0-n5 and n1-n6.
func federationHost() *graph.Graph {
	g := graph.NewUndirected()
	attrs := func(d float64) graph.Attrs {
		return graph.Attrs{}.
			SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.1)
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "west"))
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "east"))
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), attrs(10))
			g.MustAddEdge(graph.NodeID(5+a), graph.NodeID(5+b), attrs(10))
		}
	}
	g.MustAddEdge(0, 5, attrs(200))
	g.MustAddEdge(1, 6, attrs(200))
	return g
}

// TestFederateE2E boots three real netembedd processes — two region
// shards over partial views of the same host file plus a -federate
// coordinator — and drives the distributed tier end to end over HTTP:
// region-local and cut-spanning embeds, delta propagation to the owning
// shard only, and /cluster convergence. The CI federate-smoke job runs
// exactly this test against real binaries.
func TestFederateE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "netembedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	hostML, err := graphml.EncodeString(federationHost())
	if err != nil {
		t.Fatal(err)
	}
	hostPath := filepath.Join(dir, "host.graphml")
	if err := writeFile(hostPath, hostML); err != nil {
		t.Fatal(err)
	}

	west, east, coord := freeAddr(t), freeAddr(t), freeAddr(t)
	// Every process gets the same full host file: the shards keep only
	// their -shard-region slice, the coordinator only the cut edges.
	startDaemon(t, bin, "-listen", west, "-host", hostPath,
		"-shard-name", "west", "-shard-region", "west", "-workers", "2", "-repair-interval", "0")
	startDaemon(t, bin, "-listen", east, "-host", hostPath,
		"-shard-name", "east", "-shard-region", "east", "-workers", "2", "-repair-interval", "0")
	waitHealthy(t, west)
	waitHealthy(t, east)
	startDaemon(t, bin, "-listen", coord, "-federate", "-peers", "west="+west+",east="+east,
		"-host", hostPath, "-refresh-routes", "250ms", "-timeout", "10s")
	waitHealthy(t, coord)

	// The west daemon restricted itself to its region slice.
	var st struct {
		Name      string   `json:"name"`
		Regions   []string `json:"regions"`
		NodeCount int      `json:"nodeCount"`
	}
	getJSON(t, "http://"+west+"/internal/shard/stats", &st)
	if st.Name != "west" || st.NodeCount != 5 || len(st.Regions) != 1 || st.Regions[0] != "west" {
		t.Fatalf("west shard stats = %+v", st)
	}

	// A region-local triangle is answered wholly by one shard.
	tri := topo.Clique(3)
	topo.SetDelayWindow(tri, 5, 20)
	where, mapping := postEmbed(t, coord, tri)
	if where != "west" && where != "east" {
		t.Fatalf("local query answered by %q", where)
	}
	regions := mappedRegions(t, mapping)
	if len(regions) != 1 {
		t.Fatalf("local answer spans regions %v", regions)
	}

	// A query needing a 150-250ms link only fits on a cut edge, so it
	// must decompose across both shards.
	span := topo.Line(2)
	topo.SetDelayWindow(span, 150, 250)
	where, mapping = postEmbed(t, coord, span)
	if !strings.HasPrefix(where, "cross:") {
		t.Fatalf("spanning query answered by %q, want cross:*", where)
	}
	if regions := mappedRegions(t, mapping); len(regions) != 2 {
		t.Fatalf("spanning answer stayed in regions %v", regions)
	}

	// A delta touching only east nodes reaches only the east shard.
	var dresp struct {
		Versions map[string]uint64 `json:"versions"`
	}
	status := postJSON(t, "http://"+coord+"/deltas",
		`{"setNodeAttrs":[{"node":"n7","attrs":{"load":0.5}}]}`, &dresp)
	if status != http.StatusOK {
		t.Fatalf("delta answered %d", status)
	}
	if len(dresp.Versions) != 1 || dresp.Versions["east"] < 2 {
		t.Fatalf("delta versions = %v, want east only at version >= 2", dresp.Versions)
	}

	// Unknown names answer 409 so the operator knows routing was stale.
	if status := postJSON(t, "http://"+coord+"/deltas",
		`{"setNodeAttrs":[{"node":"ghost","attrs":{"load":1}}]}`, nil); status != http.StatusConflict {
		t.Fatalf("ghost delta answered %d, want 409", status)
	}

	// /cluster converges: both shards healthy, the full routing table,
	// the east delta's version visible, and no coordinator graph copy.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var info struct {
			Shards []struct {
				Name         string `json:"name"`
				Healthy      bool   `json:"healthy"`
				NodeCount    int    `json:"nodeCount"`
				ModelVersion uint64 `json:"modelVersion"`
			} `json:"shards"`
			RoutedNodes      int `json:"routedNodes"`
			BoundaryEdges    int `json:"boundaryEdges"`
			CoordinatorNodes int `json:"coordinatorNodes"`
		}
		getJSON(t, "http://"+coord+"/cluster", &info)
		if info.CoordinatorNodes != 0 {
			t.Fatalf("coordinator models %d nodes, want 0", info.CoordinatorNodes)
		}
		ok := len(info.Shards) == 2 && info.RoutedNodes == 10 && info.BoundaryEdges == 2
		for _, s := range info.Shards {
			ok = ok && s.Healthy && s.NodeCount == 5
			if s.Name == "east" {
				ok = ok && s.ModelVersion >= 2
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: %+v", info)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// mappedRegions reports which regions a named mapping's hosting nodes
// live in (n0..n4 west, n5..n9 east).
func mappedRegions(t *testing.T, mapping map[string]string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for q, r := range mapping {
		i, err := strconv.Atoi(strings.TrimPrefix(r, "n"))
		if err != nil || i < 0 || i > 9 {
			t.Fatalf("query node %s mapped to unknown host node %q", q, r)
		}
		if i < 5 {
			out["west"] = true
		} else {
			out["east"] = true
		}
	}
	return out
}

// postEmbed routes one query through the coordinator and returns the
// answering shard (X-Netembed-Answered-By) and the first named mapping.
func postEmbed(t *testing.T, addr string, q *graph.Graph) (string, map[string]string) {
	t.Helper()
	queryML, err := graphml.EncodeString(q)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]interface{}{
		"query":          queryML,
		"edgeConstraint": avgDelayWindowSrc,
		"timeoutMs":      8000,
	})
	resp, err := http.Post("http://"+addr+"/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status   string              `json:"status"`
		Mappings []map[string]string `json:"mappings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out.Mappings) == 0 {
		t.Fatalf("embed answered %d status %q with %d mappings", resp.StatusCode, out.Status, len(out.Mappings))
	}
	return resp.Header.Get("X-Netembed-Answered-By"), out.Mappings[0]
}

func postJSON(t *testing.T, url, body string, out interface{}) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s answered %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// startDaemon launches one netembedd and registers a SIGTERM + wait
// cleanup; its stderr is dumped when the test fails.
func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var logBuf bytes.Buffer
	cmd.Stdout = &logBuf
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
		if t.Failed() {
			t.Logf("netembedd %v:\n%s", args, logBuf.String())
		}
	})
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("daemon on %s never became healthy", addr)
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
