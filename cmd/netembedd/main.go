// Command netembedd serves the NETEMBED mapping service over HTTP (§III's
// service deployment): it loads (or synthesizes) a hosting network,
// optionally keeps it fresh with a simulated monitoring feed, and exposes
// the JSON/GraphML API of internal/service/httpapi.
//
// Usage:
//
//	netembedd -listen :8080 -host planetlab
//	netembedd -listen :8080 -host infra.graphml -monitor 5s
//
// Endpoints: GET /healthz, GET/PUT /model, POST /embed,
// POST/DELETE /reserve. See internal/service/httpapi.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"netembed"
	"netembed/internal/service"
	"netembed/internal/service/httpapi"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		hostPath = flag.String("host", "planetlab", "hosting network GraphML file, or 'planetlab'")
		seed     = flag.Int64("seed", 1, "seed for the synthetic host")
		monitor  = flag.Duration("monitor", 0, "enable the simulated monitoring feed with this period (0 = off)")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	)
	flag.Parse()

	host, err := loadHost(*hostPath, *seed)
	if err != nil {
		log.Fatalf("netembedd: %v", err)
	}
	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{DefaultTimeout: *timeout})

	if *monitor > 0 {
		mon := netembed.NewMonitor(model, service.MonitorConfig{Interval: *monitor, Seed: *seed})
		stop := make(chan struct{})
		defer close(stop)
		go mon.Run(stop)
		log.Printf("monitoring feed enabled, period %v", *monitor)
	}

	log.Printf("serving NETEMBED on %s (host: %d nodes, %d edges)",
		*listen, host.NumNodes(), host.NumEdges())
	if err := http.ListenAndServe(*listen, httpapi.New(svc)); err != nil {
		log.Fatalf("netembedd: %v", err)
	}
}

func loadHost(path string, seed int64) (*netembed.Graph, error) {
	if path == "planetlab" {
		return netembed.DefaultPlanetLab(seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := netembed.DecodeGraphML(f)
	if err != nil {
		return nil, fmt.Errorf("host %s: %v", path, err)
	}
	return g, nil
}
