// Command netembedd serves the NETEMBED mapping service over HTTP (§III's
// service deployment): it loads (or synthesizes) a hosting network,
// optionally keeps it fresh with a simulated monitoring feed, and exposes
// the JSON/GraphML API of internal/service/httpapi.
//
// Usage:
//
//	netembedd -listen :8080 -host planetlab
//	netembedd -listen :8080 -host infra.graphml -monitor 5s
//	netembedd -listen :8081 -host west.graphml -shard-name west -shard-region west
//	netembedd -listen :8080 -federate -peers west=localhost:8081,east=localhost:8082 \
//	    -host full.graphml -region-attr region
//
// Endpoints: GET /healthz, GET/PUT /model, POST /deltas, POST /embed,
// POST /embed/batch, POST /jobs, GET/DELETE /jobs/{id}, GET /stats,
// POST/DELETE /reserve, POST/GET/DELETE /embeddings. See
// internal/service/httpapi.
//
// Embeddings placed through POST /embeddings are long-lived managed
// objects: the lifecycle manager re-verifies them against every model
// publish, and a background repair pass — paced by -repair-interval and
// budgeted by -max-migration-frac — migrates degraded ones with
// minimal node movement, committing atomically through the ledger.
//
// Path-mode (§VIII link-to-path) queries — algorithm "path" — map query
// edges onto multi-hop hosting paths; -path-hops sets the default
// witness hop bound for requests that carry no maxHops.
//
// Embedding queries that carry an "objective" run as branch-and-bound
// optimizing searches and return the single cheapest embedding with its
// objectiveCost; polling a running optimizing job returns the feasible
// best-so-far mapping and cost. -repair-objective applies the same
// objective as the lifecycle repair planner's tie-break.
//
// Every embedding query runs on the asynchronous job engine: a bounded
// queue (-queue) drained by a worker pool (-workers) with a
// model-versioned result cache (-cache) in front. Saturation answers
// 429 instead of stacking handler goroutines.
//
// With -index (the default) the model maintains a persistent
// host-capability index that the filter construction intersects instead
// of rescanning the host; POST /deltas patches both the model graph and
// the index copy-on-write, so monitor publishes cost what they touch,
// not what the network measures.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, the job engine finishes running jobs and fails
// queued ones, the monitoring goroutine is stopped, and the process
// exits cleanly.
//
// # Distributed tier
//
// -shard-name/-shard-region give a single-process daemon a shard
// identity: it keeps serving the full public API and additionally
// answers the /internal/shard/* peer protocol with that identity, so a
// coordinator can route to it. -shard-region also restricts the loaded
// host to the nodes labeled with those regions, so every member of a
// federation can be pointed at the same full host file.
//
// -federate flips the daemon into coordinator mode: instead of loading a
// model it builds RemoteShard clients for every -peers entry, derives
// the inter-shard cut edges by partitioning the -host description on
// -region-attr, then discards the graph — the coordinator holds no model
// copy. It serves the operator API (POST /embed, POST /deltas,
// GET /cluster) and refreshes its routing table from the peers
// periodically (-refresh-routes) and on stale-delta conflicts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"netembed"
	"netembed/internal/core"
	"netembed/internal/engine"
	"netembed/internal/graph"
	"netembed/internal/lifecycle"
	"netembed/internal/service"
	"netembed/internal/service/httpapi"
)

// parseRepairObjective translates the -repair-objective flag: empty
// disables the tie-break, "attr-cost:<attr>" minimizes the named host
// attribute over repaired placements, "load-balance" and "energy" use
// their built-in attribute defaults (an optional :<attr> overrides).
func parseRepairObjective(s string) (core.Objective, error) {
	if s == "" {
		return core.Objective{}, nil
	}
	kindName, attr, _ := strings.Cut(s, ":")
	var kind core.ObjectiveKind
	switch kindName {
	case "attr-cost":
		if attr == "" {
			return core.Objective{}, fmt.Errorf("-repair-objective attr-cost needs an attribute (attr-cost:<attr>)")
		}
		kind = core.ObjectiveAttrCost
	case "load-balance":
		kind = core.ObjectiveLoadBalance
	case "energy":
		kind = core.ObjectiveEnergy
	default:
		return core.Objective{}, fmt.Errorf("-repair-objective: unknown kind %q (want attr-cost:<attr>, load-balance or energy)", kindName)
	}
	return core.Objective{Kind: kind, Attr: attr}, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatalf("netembedd: %v", err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		hostPath  = flag.String("host", "planetlab", "hosting network GraphML file, or 'planetlab'")
		seed      = flag.Int64("seed", 1, "seed for the synthetic host")
		monitor   = flag.Duration("monitor", 0, "enable the simulated monitoring feed with this period (0 = off)")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight requests")
		hdrLimit  = flag.Duration("header-timeout", 10*time.Second, "ReadHeaderTimeout guarding against slow-loris clients")
		workers   = flag.Int("workers", 0, "job-engine worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 128, "job-engine submission queue depth (full queue answers 429)")
		cache     = flag.Int("cache", 512, "job-engine result cache capacity in entries (negative = disabled)")
		useIndex  = flag.Bool("index", true, "maintain the host-capability index (degree strata, adjacency bitsets, attribute postings); deltas patch it instead of rebuilding")
		pathHops  = flag.Int("path-hops", 3, "default witness hop bound for path-mode (link-to-path) queries that carry no maxHops")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
		repairInt = flag.Duration("repair-interval", 5*time.Second, "pace of the embedding lifecycle's background repair pass (0 = lifecycle disabled)")
		maxMigr   = flag.Float64("max-migration-frac", 1, "repair-plan migration budget as a fraction of each embedding's query nodes (>= 1 = unbounded)")
		repairObj = flag.String("repair-objective", "", "repair-plan tie-break objective: attr-cost:<attr>, load-balance, energy, or empty = first feasible plan")

		federate    = flag.Bool("federate", false, "run as a coordinator over -peers instead of serving a local model")
		peers       = flag.String("peers", "", "federate: comma-separated shard peers, each 'host:port' or 'name=host:port'")
		regionAttr  = flag.String("region-attr", "region", "node attribute that partitions the hosting network into shard regions")
		refreshInt  = flag.Duration("refresh-routes", 10*time.Second, "federate: routing-table refresh period (0 = boot-time only)")
		shardName   = flag.String("shard-name", "", "shard identity this daemon reports to coordinators")
		shardRegion = flag.String("shard-region", "", "comma-separated region labels this shard hosts")
	)
	flag.Parse()

	if *federate {
		return runFederate(federateConfig{
			listen:     *listen,
			peers:      splitList(*peers),
			regionAttr: *regionAttr,
			hostPath:   *hostPath,
			seed:       *seed,
			timeout:    *timeout,
			refresh:    *refreshInt,
			drain:      *drain,
			hdrLimit:   *hdrLimit,
		})
	}

	host, err := loadHost(*hostPath, *seed)
	if err != nil {
		return err
	}
	if regions := splitList(*shardRegion); len(regions) > 0 {
		restricted, err := restrictToRegions(host, *regionAttr, regions)
		if err != nil {
			return err
		}
		if restricted != host {
			log.Printf("restricted host to regions %v: kept %d of %d nodes",
				regions, restricted.NumNodes(), host.NumNodes())
		}
		host = restricted
	}
	model := netembed.NewModel(host)
	if *useIndex {
		model.EnableIndex(netembed.IndexConfig{})
	}
	if *pathHops < 0 {
		return fmt.Errorf("-path-hops %d is negative", *pathHops)
	}
	svc := netembed.NewService(model, netembed.ServiceConfig{
		DefaultTimeout:  *timeout,
		DefaultPathHops: *pathHops,
	})
	eng := engine.New(svc, engine.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCapacity: *cache,
	})

	// The monitor goroutine is joined on every exit path — the stop
	// channel and WaitGroup outlive any serve error.
	var monWG sync.WaitGroup
	monStop := make(chan struct{})
	if *monitor > 0 {
		mon := netembed.NewMonitor(model, service.MonitorConfig{Interval: *monitor, Seed: *seed})
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			mon.Run(monStop)
		}()
		log.Printf("monitoring feed enabled, period %v", *monitor)
	}
	stopMonitor := func() {
		close(monStop)
		monWG.Wait()
	}

	// Profiling stays off the service mux and off by default: search hot
	// spots are CPU-profiled against a running daemon only when the
	// operator opts in, and the debug endpoints never share a port with
	// the public API.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: *hdrLimit}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
		defer psrv.Close()
	}

	api := httpapi.NewWithEngine(svc, eng)
	if *shardName != "" || *shardRegion != "" {
		regions := splitList(*shardRegion)
		api.ConfigureShard(*shardName, regions)
		log.Printf("shard identity %q (regions %v)", *shardName, regions)
	}
	if *maxMigr <= 0 {
		return fmt.Errorf("-max-migration-frac %v is not positive", *maxMigr)
	}
	repairObjective, err := parseRepairObjective(*repairObj)
	if err != nil {
		return err
	}
	if *repairInt > 0 {
		// The lifecycle manager rides the engine's maintenance tick: every
		// model publish triggers a health sweep over the managed
		// embeddings, and degraded ones get minimal-migration repair plans
		// at most once per -repair-interval.
		mgr := lifecycle.NewManager(svc, lifecycle.Config{
			RepairInterval:   *repairInt,
			MaxMigrationFrac: *maxMigr,
			Objective:        repairObjective,
		})
		eng.SetMaintainer(mgr)
		api.AttachLifecycle(mgr)
		log.Printf("embedding lifecycle enabled, repair pass every %v (migration budget %.0f%%)",
			*repairInt, *maxMigr*100)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           api,
		ReadHeaderTimeout: *hdrLimit,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving NETEMBED on %s (host: %d nodes, %d edges)",
			*listen, host.NumNodes(), host.NumEdges())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		drainEngine(eng, *drain)
		stopMonitor()
		return err
	case <-ctx.Done():
		log.Printf("shutdown signal received, draining for up to %v", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting HTTP first, then drain the job engine (running
		// jobs finish, queued ones fail cleanly), then join the monitor.
		err := srv.Shutdown(shutCtx)
		if engErr := eng.Close(shutCtx); engErr != nil {
			log.Printf("engine drain cut short: %v", engErr)
		}
		stopMonitor()
		if err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		log.Print("shutdown complete")
		return nil
	}
}

// federateConfig carries the coordinator-mode flags into runFederate.
type federateConfig struct {
	listen     string
	peers      []string
	regionAttr string
	hostPath   string
	seed       int64
	timeout    time.Duration
	refresh    time.Duration
	drain      time.Duration
	hdrLimit   time.Duration
}

// runFederate boots the coordinator tier: RemoteShard clients for every
// peer, cut edges from partitioning the hosting description, and the
// operator API in front. The hosting graph is loaded only to extract the
// inter-region cut edges and then dropped — the coordinator keeps no
// model copy (GET /cluster reports coordinatorNodes: 0).
func runFederate(cfg federateConfig) error {
	if len(cfg.peers) == 0 {
		return fmt.Errorf("-federate needs -peers host:port[,host:port...]")
	}
	shards := make([]service.Shard, 0, len(cfg.peers))
	for _, peer := range cfg.peers {
		// 'west=host:port' names the peer to match its -shard-name (the
		// key /cluster and delta version maps report it under); a bare
		// address is named after its host:port.
		var rsCfg httpapi.RemoteShardConfig
		addr := peer
		if name, rest, ok := strings.Cut(peer, "="); ok {
			rsCfg.Name = name
			addr = rest
		}
		rs, err := httpapi.NewRemoteShard(addr, rsCfg)
		if err != nil {
			return err
		}
		shards = append(shards, rs)
	}

	host, err := loadHost(cfg.hostPath, cfg.seed)
	if err != nil {
		return err
	}
	part, err := graph.PartitionByAttr(host, cfg.regionAttr, "unassigned", nil)
	if err != nil {
		return err
	}
	cuts := part.Cuts
	directed := host.Directed()
	log.Printf("hosting description: %d nodes across %d regions, %d cut edges (graph discarded)",
		host.NumNodes(), len(part.Parts), len(cuts))

	// Only the cut edges survive past this point; the coordinator below
	// is constructed without any reference to the graph or partition.
	coord, err := service.NewCoordinator(shards, service.CoordinatorConfig{
		RegionAttr:     cfg.regionAttr,
		DefaultTimeout: cfg.timeout,
		Boundary:       cuts,
		Directed:       directed,
	})
	if err != nil {
		return err
	}

	// Peers that were down at boot join on a later refresh; the ticker
	// also keeps /cluster's node counts and versions converging after
	// deltas land directly on shards.
	refreshStop := make(chan struct{})
	var refreshWG sync.WaitGroup
	if cfg.refresh > 0 {
		refreshWG.Add(1)
		go func() {
			defer refreshWG.Done()
			tick := time.NewTicker(cfg.refresh)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					coord.RefreshRoutes()
				case <-refreshStop:
					return
				}
			}
		}()
	}
	stopRefresh := func() {
		close(refreshStop)
		refreshWG.Wait()
	}

	srv := &http.Server{
		Addr:              cfg.listen,
		Handler:           httpapi.NewClusterServer(coord),
		ReadHeaderTimeout: cfg.hdrLimit,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("coordinating %d shards on %s (region attr %q, %d boundary edges)",
			len(shards), cfg.listen, cfg.regionAttr, len(cuts))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		stopRefresh()
		return err
	case <-ctx.Done():
		log.Printf("shutdown signal received, draining for up to %v", cfg.drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		stopRefresh()
		if err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		log.Print("shutdown complete")
		return nil
	}
}

// restrictToRegions cuts the hosting network down to the nodes labeled
// with one of the shard's regions. Every member of a federation can then
// share one full host file: each shard daemon keeps only its slice, and
// the coordinator keeps only the cut edges. A host already reduced to
// the shard's regions passes through untouched.
func restrictToRegions(host *netembed.Graph, attr string, regions []string) (*netembed.Graph, error) {
	want := make(map[string]bool, len(regions))
	for _, r := range regions {
		want[r] = true
	}
	var ids []graph.NodeID
	for i := 0; i < host.NumNodes(); i++ {
		id := graph.NodeID(i)
		if label, ok := host.Node(id).Attrs.Text(attr); ok && want[label] {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-shard-region %v: no host node carries a matching %q attribute", regions, attr)
	}
	if len(ids) == host.NumNodes() {
		return host, nil
	}
	sub, _, err := host.InducedSubgraph(ids)
	return sub, err
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// drainEngine bounds an engine shutdown on the error exit path.
func drainEngine(eng *engine.Engine, window time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	if err := eng.Close(ctx); err != nil {
		log.Printf("engine drain cut short: %v", err)
	}
}

func loadHost(path string, seed int64) (*netembed.Graph, error) {
	if path == "planetlab" {
		return netembed.DefaultPlanetLab(seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := netembed.DecodeGraphML(f)
	if err != nil {
		return nil, fmt.Errorf("host %s: %v", path, err)
	}
	return g, nil
}
