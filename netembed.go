// Package netembed is the public façade of the NETEMBED network resource
// mapping service, a Go reproduction of Londoño & Bestavros, "NETEMBED: A
// Network Resource Mapping Service for Distributed Applications" (Boston
// University CS TR 2006-12-15 / IPPS 2008).
//
// NETEMBED answers the network embedding problem: given a hosting network
// (a real infrastructure annotated with measured link and node metrics)
// and a query network (a virtual topology with constraints), find one or
// all injective node mappings such that every query edge lands on a
// hosting edge satisfying a user-supplied constraint expression.
//
// # Quick start
//
//	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{}, rand.New(rand.NewSource(1)))
//	query, _, _ := netembed.Subgraph(host, 10, 15, rand.New(rand.NewSource(2)))
//	netembed.WidenDelayWindows(query, 0.1)
//
//	constraint := netembed.MustCompile(
//	    "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")
//	problem, _ := netembed.NewProblem(query, host, constraint, nil)
//	result := netembed.ECF(problem, netembed.Options{MaxSolutions: 1})
//
// See examples/ for complete programs covering the paper's §III scenarios
// and internal/exp for the harness regenerating every evaluation figure.
//
// The façade re-exports the stable API of the internal packages so
// downstream code never imports netembed/internal/... directly:
//
//   - graphs and attributes (internal/graph)
//   - GraphML (internal/graphml)
//   - the constraint language (internal/expr)
//   - the ECF/RWB/LNS algorithms and the many-to-one extensions
//     (internal/core)
//   - topology generators and the trace synthesizer (internal/topo, internal/trace)
//   - the embedding service, reservations and scheduling (internal/service)
//   - Vivaldi network coordinates and model completion (internal/coords)
package netembed

import (
	"io"
	"math/rand"
	"time"

	"netembed/internal/coords"
	"netembed/internal/core"
	"netembed/internal/engine"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/index"
	"netembed/internal/service"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// Graph substrate.
type (
	// Graph is an attributed simple graph (hosting or query network).
	Graph = graph.Graph
	// Attrs is a typed attribute bag on nodes and edges.
	Attrs = graph.Attrs
	// Value is one typed attribute value.
	Value = graph.Value
	// NodeID indexes nodes within a Graph.
	NodeID = graph.NodeID
	// EdgeID indexes edges within a Graph.
	EdgeID = graph.EdgeID
	// Delta is an incremental, name-addressed change to a graph — the
	// unit monitors publish via Model.Apply and POST /deltas.
	Delta = graph.Delta
	// NodeSpec / EdgeSpec / EdgeRef / NodeAttrUpdate / EdgeAttrUpdate
	// are the Delta operation records.
	NodeSpec       = graph.NodeSpec
	EdgeSpec       = graph.EdgeSpec
	EdgeRef        = graph.EdgeRef
	NodeAttrUpdate = graph.NodeAttrUpdate
	EdgeAttrUpdate = graph.EdgeAttrUpdate
	// Index is a persistent, version-stamped host-capability snapshot
	// (degree strata, adjacency bitsets, attribute postings) patched
	// copy-on-write by deltas.
	Index = index.Index
	// IndexConfig tunes index construction (strata attributes/levels).
	IndexConfig = index.Config
)

// BuildIndex computes a fresh capability index over a hosting network.
var BuildIndex = index.Build

// Graph constructors.
var (
	// NewGraph returns an empty graph with the given orientation.
	NewGraph = graph.New
	// NewUndirected returns an empty undirected graph.
	NewUndirected = graph.NewUndirected
	// NewDirected returns an empty directed graph.
	NewDirected = graph.NewDirected
	// Num / Str / Bool build attribute values.
	Num  = graph.Num
	Str  = graph.Str
	Bool = graph.BoolVal
)

// Constraint expression language.
type (
	// Program is a compiled constraint expression.
	Program = expr.Program
)

// Expression compilation.
var (
	// Compile parses and compiles a constraint expression.
	Compile = expr.Compile
	// MustCompile is Compile panicking on error.
	MustCompile = expr.MustCompile
)

// Embedding problems and algorithms.
type (
	// Problem pairs a query network with a hosting network under
	// constraints.
	Problem = core.Problem
	// Mapping assigns each query node a hosting node.
	Mapping = core.Mapping
	// Options tunes a search run (timeout, solution cap, heuristics).
	Options = core.Options
	// Result is a search outcome with §VII-E status classification.
	Result = core.Result
	// Status classifies results: complete, partial or inconclusive.
	Status = core.Status
	// Stats carries search effort counters.
	Stats = core.Stats
	// Repr selects the filter tables' candidate-set representation
	// (adaptive, sorted slices, or dense bitsets).
	Repr = core.Repr
	// SearchEngine selects the inner-search implementation for
	// Options.Engine: forward checking with conflict-directed
	// backjumping (default) or the chronological oracle.
	SearchEngine = core.SearchEngine
	// Filters holds prebuilt ECF/RWB filter matrices for reuse across
	// searches.
	Filters = core.Filters
	// PathOptions tunes the link-to-path (many-to-one) extension (§VIII).
	PathOptions = core.PathOptions
	// PathSolution is a many-to-one embedding with witness paths.
	PathSolution = core.PathSolution
	// PathResult reports a PathEmbed run.
	PathResult = core.PathResult
	// ConsolidateOptions tunes the §VIII many-to-one node consolidation
	// (capacity/demand attributes, loopback semantics).
	ConsolidateOptions = core.ConsolidateOptions
	// MetricSpec constrains one composed metric of a witness path
	// (additive delay, bottleneck bandwidth, multiplicative availability).
	MetricSpec = core.MetricSpec
	// Compose names a metric composition rule.
	Compose = core.Compose
)

// Metric composition rules for MetricSpec.
const (
	Additive       = core.Additive
	Bottleneck     = core.Bottleneck
	Multiplicative = core.Multiplicative
)

// Status values.
const (
	StatusComplete     = core.StatusComplete
	StatusPartial      = core.StatusPartial
	StatusInconclusive = core.StatusInconclusive
)

// Candidate-set representations for Options.Repr.
const (
	ReprAuto   = core.ReprAuto
	ReprSlice  = core.ReprSlice
	ReprBitset = core.ReprBitset
)

// Search engines for Options.Engine.
const (
	// SearchFC is the forward-checking + conflict-directed-backjumping
	// engine with work-stealing ParallelECF (the default).
	SearchFC = core.SearchFC
	// SearchChrono is the chronological recompute-per-visit oracle.
	SearchChrono = core.SearchChrono
)

// Algorithms and helpers.
var (
	// NewProblem validates and assembles an embedding problem.
	NewProblem = core.NewProblem
	// ECF is Exhaustive search with Constraint Filtering (§V-A).
	ECF = core.ECF
	// RWB is Random Walk search with Backtracking (§V-B).
	RWB = core.RWB
	// BuildFilters precomputes the §V-A filter matrices for reuse.
	BuildFilters = core.BuildFilters
	// ECFWithFilters / RWBWithFilters search over prebuilt filters,
	// amortizing construction across repeated queries.
	ECFWithFilters = core.ECFWithFilters
	RWBWithFilters = core.RWBWithFilters
	// LNS is Lazy Neighborhood Search (§V-C).
	LNS = core.LNS
	// ParallelECF shards ECF's root level over worker goroutines.
	ParallelECF = core.ParallelECF
	// DynamicECF re-selects the most-constrained node at every level.
	DynamicECF = core.DynamicECF
	// PathEmbed maps query edges onto bounded-hop hosting paths (§VIII).
	PathEmbed = core.PathEmbed
	// VerifyPathSolution independently checks a PathSolution.
	VerifyPathSolution = core.VerifyPathSolution
	// NewConsolidatedProblem assembles a many-to-one problem where the
	// query may outsize the host (§VIII node consolidation).
	NewConsolidatedProblem = core.NewConsolidatedProblem
	// Consolidate searches for capacity-aware many-to-one embeddings:
	// several query nodes may share one hosting node (§VIII).
	Consolidate = core.Consolidate
	// Automorphisms enumerates a query's attribute-preserving symmetries.
	Automorphisms = core.Automorphisms
	// CanonicalSolutions collapses embeddings equivalent up to a query
	// automorphism (Considine-Byers symmetry reduction, §II).
	CanonicalSolutions = core.CanonicalSolutions
)

// Topology generation and traces.
type (
	// TraceConfig sizes the synthetic PlanetLab trace.
	TraceConfig = trace.Config
	// BriteConfig parameterizes the BRITE-style generator.
	BriteConfig = topo.BriteConfig
	// TopoKind names a regular topology family (ring, star, clique, line).
	TopoKind = topo.Kind
)

// Generators.
var (
	// SyntheticPlanetLab builds the paper's hosting network substitute.
	SyntheticPlanetLab = trace.SyntheticPlanetLab
	// Brite generates BRITE-style synthetic Internet topologies.
	Brite = topo.Brite
	// Ring / Star / Clique / Line build regular query topologies.
	Ring   = topo.Ring
	Star   = topo.Star
	Clique = topo.Clique
	Line   = topo.Line
	// Composite builds two-level hierarchical queries (§VII-D).
	Composite = topo.Composite
	// TransitStub builds a GT-ITM-style two-tier hosting topology.
	TransitStub = topo.TransitStub
	// Subgraph samples a random connected subgraph query (§VII-A).
	Subgraph = topo.Subgraph
	// WidenDelayWindows / SetDelayWindow prepare delay constraints.
	WidenDelayWindows = topo.WidenDelayWindows
	SetDelayWindow    = topo.SetDelayWindow
)

// Service layer.
type (
	// Service is the NETEMBED mapping service (Fig. 1).
	Service = service.Service
	// ServiceConfig tunes a Service.
	ServiceConfig = service.Config
	// Model is the copy-on-write hosting-network snapshot holder.
	Model = service.Model
	// Monitor simulates the measurement feed updating a Model.
	Monitor = service.Monitor
	// MonitorConfig shapes the simulated feed.
	MonitorConfig = service.MonitorConfig
	// Request is one embedding query against the service.
	Request = service.Request
	// Response is the service's answer.
	Response = service.Response
	// BatchResult is one EmbedBatch item's outcome.
	BatchResult = service.BatchResult
	// PathRequestOptions shapes an AlgoPathEmbed (link-to-path) request.
	PathRequestOptions = service.PathRequestOptions
	// PathWitness renders one query edge's witness hosting path by names.
	PathWitness = service.PathWitness
	// Algorithm selects a search strategy by name.
	Algorithm = service.Algorithm
	// LeaseID identifies a reservation.
	LeaseID = service.LeaseID
	// ScheduleRequest asks for the earliest feasible time window (§VIII).
	ScheduleRequest = service.ScheduleRequest
	// ScheduleResponse reports the scheduled window, mapping and lease.
	ScheduleResponse = service.ScheduleResponse
	// Coordinator is the distributed embedding tier's routing head: it
	// owns no graph copy, routes deltas to owning shards, and decomposes
	// spanning queries across shards (§VIII).
	Coordinator = service.Coordinator
	// Federation is the legacy name for the hierarchical multi-region
	// deployment (§VIII); it is now the Coordinator.
	Federation = service.Coordinator
	// Shard is one member of the distributed tier — in-process
	// (LocalShard) or a remote netembedd peer (httpapi.RemoteShard).
	Shard = service.Shard
	// LocalShard wraps an in-process Service as a Shard.
	LocalShard = service.LocalShard
	// ShardStats is a shard's routing-relevant summary.
	ShardStats = service.ShardStats
	// CoordinatorConfig tunes a Coordinator built over explicit shards.
	CoordinatorConfig = service.CoordinatorConfig
	// ClusterInfo is the operator-facing cluster summary (GET /cluster).
	ClusterInfo = service.ClusterInfo
	// NegotiateRequest drives the §III constraint-relaxation loop.
	NegotiateRequest = service.NegotiateRequest
	// NegotiateResponse reports the embedding and relaxation applied.
	NegotiateResponse = service.NegotiateResponse
	// CompletionConfig tunes coordinate-based model completion for
	// partially measured (open) hosting networks.
	CompletionConfig = service.CompletionConfig
	// CompletionReport describes a completed model: edges added and fit.
	CompletionReport = service.CompletionReport
	// CoordSystem is a Vivaldi network coordinate system (Dabek et al.,
	// the paper's reference [30]) used for delay prediction.
	CoordSystem = coords.System
	// CoordConfig tunes the Vivaldi system.
	CoordConfig = coords.Config
	// CoordEmbedConfig drives a simulated coordinate deployment over a
	// hosting network.
	CoordEmbedConfig = coords.EmbedConfig
	// DensifyConfig turns coordinate predictions into synthesized edges.
	DensifyConfig = coords.DensifyConfig
)

// Service constructors and algorithm names.
var (
	// NewService builds a mapping service around a model.
	NewService = service.New
	// NewModel wraps an initial hosting network.
	NewModel = service.NewModel
	// NewMonitor builds a simulated monitoring feed.
	NewMonitor = service.NewMonitor
	// NewFederation partitions a host into per-region local shards under
	// a Coordinator (single-process distributed tier).
	NewFederation = service.NewFederation
	// NewCoordinator builds a Coordinator over explicit shards (local,
	// remote, or mixed).
	NewCoordinator = service.NewCoordinator
	// NewLocalShard wraps an in-process Service as a Shard.
	NewLocalShard = service.NewLocalShard
	// SelectBest picks the min-cost embedding among candidates (§VIII).
	SelectBest = service.SelectBest
	// CompleteModel densifies a partially measured model with
	// coordinate-predicted delay windows (Fig. 1 monitoring on open
	// networks).
	CompleteModel = service.Complete
	// CoordsEmbed runs a simulated Vivaldi deployment over a host.
	CoordsEmbed = coords.Embed
	// CoordsErrors reports a coordinate system's fit over measured edges.
	CoordsErrors = coords.Errors
	// Densify synthesizes predicted edges for unmeasured pairs.
	Densify = coords.Densify
	// TotalEdgeAttrCost / MaxEdgeAttrCost / SpreadCost are stock
	// objectives for SelectBest.
	TotalEdgeAttrCost = service.TotalEdgeAttrCost
	MaxEdgeAttrCost   = service.MaxEdgeAttrCost
	SpreadCost        = service.SpreadCost
)

// Service algorithm names.
const (
	AlgoECF         = service.AlgoECF
	AlgoRWB         = service.AlgoRWB
	AlgoLNS         = service.AlgoLNS
	AlgoParallelECF = service.AlgoParallelECF
	AlgoConsolidate = service.AlgoConsolidate
	// AlgoPathEmbed maps query edges onto bounded-hop hosting paths
	// (§VIII link-to-path), tuned by Request.Path.
	AlgoPathEmbed = service.AlgoPathEmbed
)

// Asynchronous job engine (submit/poll/cancel embedding jobs with a
// bounded queue, worker pool, cooperative cancellation and a
// model-versioned result cache).
type (
	// Engine runs embedding jobs asynchronously against a Service.
	Engine = engine.Engine
	// EngineConfig tunes the engine (workers, queue depth, cache).
	EngineConfig = engine.Config
	// EngineStats snapshots the engine counters.
	EngineStats = engine.Stats
	// Job is one asynchronous embedding request.
	Job = engine.Job
	// JobID identifies a submitted job.
	JobID = engine.JobID
	// JobInfo is an immutable job snapshot.
	JobInfo = engine.Info
	// JobState classifies a job's lifecycle position.
	JobState = engine.State
)

// NewEngine builds a job engine over a service and starts its workers.
var NewEngine = engine.New

// Job lifecycle states.
const (
	JobQueued   = engine.StateQueued
	JobRunning  = engine.StateRunning
	JobDone     = engine.StateDone
	JobFailed   = engine.StateFailed
	JobCanceled = engine.StateCanceled
)

// Engine sentinel errors.
var (
	// ErrQueueFull is the engine's backpressure signal (HTTP 429).
	ErrQueueFull = engine.ErrQueueFull
	// ErrJobNotFound reports an unknown job ID.
	ErrJobNotFound = engine.ErrJobNotFound
	// ErrEngineShuttingDown rejects submissions to a draining engine.
	ErrEngineShuttingDown = engine.ErrShuttingDown
	// ErrJobFinished rejects canceling an already-finished job.
	ErrJobFinished = engine.ErrJobFinished
)

// EncodeGraphML writes g as a GraphML document.
func EncodeGraphML(w io.Writer, g *Graph) error { return graphml.Encode(w, g) }

// DecodeGraphML reads a GraphML document.
func DecodeGraphML(r io.Reader) (*Graph, error) { return graphml.Decode(r) }

// DefaultPlanetLab returns the paper-sized synthetic PlanetLab host for a
// seed (296 sites, 28,996 measured pairs).
func DefaultPlanetLab(seed int64) *Graph { return trace.Default(seed) }

// NewRand is a convenience alias for seeding generators.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ScheduleRequestOf wraps an embedding request with scheduling windows for
// Service.Schedule: hold resources for duration, searching up to horizon
// ahead in steps.
func ScheduleRequestOf(req Request, duration, horizon, step time.Duration) ScheduleRequest {
	return ScheduleRequest{Request: req, Duration: duration, Horizon: horizon, Step: step}
}
