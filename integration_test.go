// End-to-end integration tests exercising the public façade the way a
// downstream application would: generate networks, compile constraints,
// search, verify, serialize, reserve, schedule, federate.
package netembed_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"netembed"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

func TestEndToEndEmbedding(t *testing.T) {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 50}, netembed.NewRand(1))
	query, plant, err := netembed.Subgraph(host, 10, 18, netembed.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	netembed.WidenDelayWindows(query, 0.1)

	constraint := netembed.MustCompile(
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")
	problem, err := netembed.NewProblem(query, host, constraint, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The planted witness must verify; all three algorithms must find
	// some embedding; everything they return must verify.
	if err := problem.Verify(netembed.Mapping(plant)); err != nil {
		t.Fatalf("planted mapping invalid: %v", err)
	}
	for name, res := range map[string]*netembed.Result{
		"ECF":      netembed.ECF(problem, netembed.Options{MaxSolutions: 5}),
		"RWB":      netembed.RWB(problem, netembed.Options{Seed: 3}),
		"LNS":      netembed.LNS(problem, netembed.Options{MaxSolutions: 5}),
		"parallel": netembed.ParallelECF(problem, netembed.Options{MaxSolutions: 5}),
	} {
		if len(res.Solutions) == 0 {
			t.Fatalf("%s found nothing", name)
		}
		for _, m := range res.Solutions {
			if err := problem.Verify(m); err != nil {
				t.Fatalf("%s returned invalid mapping: %v", name, err)
			}
		}
	}
}

func TestEndToEndGraphMLRoundTripThroughSearch(t *testing.T) {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 40}, netembed.NewRand(4))
	query, _, err := netembed.Subgraph(host, 6, 9, netembed.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	netembed.WidenDelayWindows(query, 0.1)

	// Serialize both networks, read them back, and solve on the copies:
	// results must match the originals exactly.
	var hostML, queryML strings.Builder
	if err := netembed.EncodeGraphML(&hostML, host); err != nil {
		t.Fatal(err)
	}
	if err := netembed.EncodeGraphML(&queryML, query); err != nil {
		t.Fatal(err)
	}
	host2, err := netembed.DecodeGraphML(strings.NewReader(hostML.String()))
	if err != nil {
		t.Fatal(err)
	}
	query2, err := netembed.DecodeGraphML(strings.NewReader(queryML.String()))
	if err != nil {
		t.Fatal(err)
	}

	constraint := netembed.MustCompile(
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")
	p1, err := netembed.NewProblem(query, host, constraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := netembed.NewProblem(query2, host2, constraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1 := netembed.ECF(p1, netembed.Options{})
	r2 := netembed.ECF(p2, netembed.Options{})
	if len(r1.Solutions) != len(r2.Solutions) {
		t.Fatalf("round-trip changed the solution count: %d vs %d",
			len(r1.Solutions), len(r2.Solutions))
	}
}

func TestEndToEndServiceLifecycle(t *testing.T) {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 40}, netembed.NewRand(6))
	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{DefaultTimeout: 5 * time.Second})
	monitor := netembed.NewMonitor(model, netembed.MonitorConfig{Seed: 7})

	query, _, err := netembed.Subgraph(host, 5, 8, netembed.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	netembed.WidenDelayWindows(query, 0.3)
	req := netembed.Request{
		Query:          query,
		EdgeConstraint: "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay",
		MaxResults:     1,
	}

	// Embed, reserve, embed disjointly, release.
	resp, err := svc.Embed(req)
	if err != nil || len(resp.Mappings) == 0 {
		t.Fatalf("embed: %v (%d mappings)", err, len(resp.Mappings))
	}
	lease, err := svc.Ledger().Allocate(resp.Mappings[0])
	if err != nil {
		t.Fatal(err)
	}
	monitor.Step() // model drifts between requests

	req2 := req
	req2.ExcludeReserved = true
	req2.Algorithm = netembed.AlgoLNS
	resp2, err := svc.Embed(req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ModelVersion <= resp.ModelVersion {
		t.Errorf("monitor step did not advance the model version: %d -> %d",
			resp.ModelVersion, resp2.ModelVersion)
	}
	if len(resp2.Mappings) > 0 {
		used := map[netembed.NodeID]bool{}
		for _, r := range resp.Mappings[0] {
			used[r] = true
		}
		for _, r := range resp2.Mappings[0] {
			if used[r] {
				t.Error("reservation not honored")
			}
		}
	}
	if err := svc.Ledger().Release(lease); err != nil {
		t.Fatal(err)
	}

	// Windowed scheduling on the same service.
	now := time.Date(2026, 6, 11, 10, 0, 0, 0, time.UTC)
	svc.Ledger().SetClock(func() time.Time { return now })
	sched, err := svc.Schedule(netembed.ScheduleRequestOf(req, time.Hour, 4*time.Hour, 30*time.Minute), now)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Start.Before(now) {
		t.Errorf("scheduled in the past: %v", sched.Start)
	}
}

func TestEndToEndFederation(t *testing.T) {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 60}, netembed.NewRand(9))
	fed, err := netembed.NewFederation(host, "region", netembed.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := netembed.Star(3)
	netembed.SetDelayWindow(q, 1, 80)
	resp, where, err := fed.Embed(netembed.Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("federation found nothing")
	}
	if where == "" {
		t.Error("no origin reported")
	}
}

func TestEndToEndSymmetryReduction(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(10)))
	ring := netembed.Ring(4)
	netembed.SetDelayWindow(ring, 1, 500)
	constraint := netembed.MustCompile(
		"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
	p, err := netembed.NewProblem(ring, host, constraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := netembed.ECF(p, netembed.Options{MaxSolutions: 2000, Timeout: 10 * time.Second})
	if len(res.Solutions) < 8 {
		t.Skip("not enough embeddings for a symmetry check")
	}
	autos := netembed.Automorphisms(ring)
	if len(autos) != 8 {
		t.Fatalf("ring4 automorphisms = %d, want 8", len(autos))
	}
	canon := netembed.CanonicalSolutions(res.Solutions, autos)
	if len(canon) >= len(res.Solutions) {
		t.Errorf("symmetry reduction did not shrink: %d -> %d", len(res.Solutions), len(canon))
	}
	for _, m := range canon {
		if err := p.Verify(m); err != nil {
			t.Fatalf("canonical mapping invalid: %v", err)
		}
	}
}

func TestEndToEndPathEmbedding(t *testing.T) {
	host, err := netembed.Brite(netembed.BriteConfig{N: 100, TargetEdges: 202}, netembed.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	pipeline := netembed.Line(3)
	for i := 0; i < pipeline.NumEdges(); i++ {
		pipeline.Edge(netembed.EdgeID(i)).Attrs = netembed.Attrs{}.
			SetNum("minDelay", 0).SetNum("maxDelay", 500)
	}
	p, err := netembed.NewProblem(pipeline, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := netembed.PathEmbed(p, netembed.PathOptions{
		MaxHops: 2, MaxSolutions: 3, Timeout: 10 * time.Second,
	})
	if len(res.Solutions) == 0 {
		t.Fatal("path embedding found nothing")
	}
	for _, sol := range res.Solutions {
		if err := netembed.VerifyPathSolution(p, netembed.PathOptions{MaxHops: 2}, sol); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEndToEndTraceFormats(t *testing.T) {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 25}, netembed.NewRand(12))
	var sb strings.Builder
	if err := trace.WriteAllPairs(&sb, host); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadAllPairs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := topo.Subgraph(back, 4, 6, netembed.NewRand(13))
	if err != nil {
		t.Fatal(err)
	}
	netembed.WidenDelayWindows(q, 0.2)
	constraint := netembed.MustCompile(
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")
	p, err := netembed.NewProblem(q, back, constraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := netembed.LNS(p, netembed.Options{MaxSolutions: 1}); len(res.Solutions) == 0 {
		t.Fatal("no embedding on round-tripped trace")
	}
}
