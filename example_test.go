package netembed_test

import (
	"fmt"
	"sort"

	"netembed"
)

// triangleHost builds a 4-node hosting network: a triangle of 15ms links
// plus a spur node behind a 90ms link.
func triangleHost() *netembed.Graph {
	h := netembed.NewUndirected()
	h.AddNode("paris", nil)
	h.AddNode("berlin", nil)
	h.AddNode("zurich", nil)
	h.AddNode("tokyo", nil)
	fast := func() netembed.Attrs { return netembed.Attrs{}.SetNum("avgDelay", 15) }
	h.MustAddEdge(0, 1, fast())
	h.MustAddEdge(1, 2, fast())
	h.MustAddEdge(0, 2, fast())
	h.MustAddEdge(2, 3, netembed.Attrs{}.SetNum("avgDelay", 90))
	return h
}

// ExampleECF embeds a constrained triangle into a hosting network and
// counts the feasible mappings.
func ExampleECF() {
	host := triangleHost()
	query := netembed.Clique(3)
	netembed.SetDelayWindow(query, 10, 20) // every link must be 10-20ms

	constraint := netembed.MustCompile(
		"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
	problem, err := netembed.NewProblem(query, host, constraint, nil)
	if err != nil {
		panic(err)
	}
	// The fast triangle admits every labeling of the 3 query nodes.
	result := netembed.ECF(problem, netembed.Options{})
	fmt.Println("status:", result.Status)
	fmt.Println("embeddings:", len(result.Solutions))

	// Output:
	// status: complete
	// embeddings: 6
}

// ExampleCompile evaluates a constraint expression against one edge
// pairing.
func ExampleCompile() {
	prog, err := netembed.Compile(
		"vEdge.avgDelay >= 0.9*rEdge.avgDelay && isBoundTo(vSource.osType, rSource.osType)")
	if err != nil {
		panic(err)
	}
	// Introspection: which attributes does the constraint touch?
	for _, ref := range prog.Refs() {
		fmt.Println(ref)
	}
	// Output:
	// vEdge.avgDelay
	// rEdge.avgDelay
	// vSource.osType
	// rSource.osType
}

// ExampleAutomorphisms shows symmetry reduction: a ring has 2n
// automorphisms, so 6·8 raw embeddings collapse to orbit representatives.
func ExampleAutomorphisms() {
	ring := netembed.Ring(4)
	autos := netembed.Automorphisms(ring)
	fmt.Println("ring4 automorphisms:", len(autos)) // dihedral group D4

	host := netembed.Clique(5)
	problem, _ := netembed.NewProblem(ring, host, nil, nil)
	raw := netembed.ECF(problem, netembed.Options{})
	canon := netembed.CanonicalSolutions(raw.Solutions, autos)
	fmt.Println("raw:", len(raw.Solutions), "canonical:", len(canon))
	// Output:
	// ring4 automorphisms: 8
	// raw: 120 canonical: 15
}

// ExamplePathEmbed maps a logical link onto a multi-hop hosting path when
// no single hop satisfies the delay window.
func ExamplePathEmbed() {
	host := netembed.Line(3) // a-b-c, 10ms per hop
	for i := 0; i < host.NumEdges(); i++ {
		host.Edge(netembed.EdgeID(i)).Attrs = netembed.Attrs{}.SetNum("avgDelay", 10)
	}
	link := netembed.Line(2)
	link.Edge(0).Attrs = netembed.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25)

	problem, _ := netembed.NewProblem(link, host, nil, nil)
	res := netembed.PathEmbed(problem, netembed.PathOptions{MaxHops: 2})
	fmt.Println("solutions:", len(res.Solutions))
	fmt.Println("witness hops:", len(res.Solutions[0].Paths[0].Edges))
	// Output:
	// solutions: 2
	// witness hops: 2
}

// ExampleService_Embed runs an end-to-end service request with a node
// constraint and prints the named mapping.
func ExampleService_Embed() {
	host := triangleHost()
	host.Node(0).Attrs = netembed.Attrs{}.SetNum("cpu", 8)
	host.Node(1).Attrs = netembed.Attrs{}.SetNum("cpu", 2)
	host.Node(2).Attrs = netembed.Attrs{}.SetNum("cpu", 8)

	svc := netembed.NewService(netembed.NewModel(host), netembed.ServiceConfig{})
	query := netembed.Line(2)
	netembed.SetDelayWindow(query, 10, 20)
	query.Node(0).Attrs = netembed.Attrs{}.SetNum("cpu", 4)
	query.Node(1).Attrs = netembed.Attrs{}.SetNum("cpu", 4)

	resp, err := svc.Embed(netembed.Request{
		Query:          query,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		NodeConstraint: "vNode.cpu <= rNode.cpu",
		MaxResults:     1,
	})
	if err != nil {
		panic(err)
	}
	// Only paris and zurich have enough CPU, and they share a fast link.
	var lines []string
	for q, r := range resp.Named[0] {
		lines = append(lines, q+" -> "+r)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// n0 -> paris
	// n1 -> zurich
}

func ExampleConsolidate() {
	// Two machines with two capacity slots each; a 10ms link between
	// them. Four unit-demand query nodes in a line must share machines —
	// the §VIII many-to-one extension.
	host := netembed.NewUndirected()
	host.AddNode("left", netembed.Attrs{}.SetNum("capacity", 2))
	host.AddNode("right", netembed.Attrs{}.SetNum("capacity", 2))
	host.MustAddEdge(0, 1, netembed.Attrs{}.SetNum("maxDelay", 10))

	q := netembed.Line(4)
	netembed.SetDelayWindow(q, 0, 50)

	constraint := netembed.MustCompile("rEdge.maxDelay <= vEdge.maxDelay")
	p, err := netembed.NewConsolidatedProblem(q, host, constraint, nil)
	if err != nil {
		panic(err)
	}
	res := netembed.Consolidate(p, netembed.Options{}, netembed.ConsolidateOptions{})
	fmt.Printf("feasible packings: %d (status %s)\n", len(res.Solutions), res.Status)
	for _, m := range res.Solutions {
		if err := p.VerifyConsolidated(m, netembed.ConsolidateOptions{}); err != nil {
			panic(err)
		}
	}
	// Output:
	// feasible packings: 6 (status complete)
}
