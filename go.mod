module netembed

go 1.24
