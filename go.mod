module netembed

go 1.23
