// Multicast: configure an overlay distribution tree subject to QoS
// constraints (§III scenario 1). A two-level tree — wide-area links
// between relay sites, short local links to leaf receivers — is embedded
// into PlanetLab, then the cheapest feasible tree (total delay) is chosen
// among the candidates (§VIII's optimization stage).
//
// Run with: go run ./examples/multicast
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{}, netembed.NewRand(1))
	fmt.Printf("hosting network: %d sites, %d measured pairs\n", host.NumNodes(), host.NumEdges())

	// The distribution tree: a source fanning out to 3 relays over
	// wide-area links (75-350ms), each relay feeding 3 receivers over
	// fast local links (1-75ms).
	tree := netembed.NewUndirected()
	source := tree.AddNode("source", nil)
	wide := netembed.Attrs{}.SetNum("minDelay", 75).SetNum("maxDelay", 350)
	local := netembed.Attrs{}.SetNum("minDelay", 1).SetNum("maxDelay", 75)
	for r := 0; r < 3; r++ {
		relay := tree.AddNode(fmt.Sprintf("relay%d", r), nil)
		if _, err := tree.AddEdge(source, relay, wide.Clone()); err != nil {
			log.Fatal(err)
		}
		for l := 0; l < 3; l++ {
			leaf := tree.AddNode(fmt.Sprintf("recv%d.%d", r, l), nil)
			if _, err := tree.AddEdge(relay, leaf, local.Clone()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("distribution tree: %d nodes, %d links\n\n", tree.NumNodes(), tree.NumEdges())

	constraint := netembed.MustCompile(
		"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
	problem, err := netembed.NewProblem(tree, host, constraint, nil)
	if err != nil {
		log.Fatal(err)
	}

	// LNS excels at under-constrained regular structures like this
	// (§VII-D): gather a pool of candidate trees quickly.
	result := netembed.LNS(problem, netembed.Options{
		MaxSolutions: 200,
		Timeout:      10 * time.Second,
	})
	if len(result.Solutions) == 0 {
		log.Fatalf("no feasible tree (status %s)", result.Status)
	}
	fmt.Printf("found %d candidate trees in %v (status %s)\n",
		len(result.Solutions), result.Stats.Elapsed.Round(time.Millisecond), result.Status)

	// Optimization stage: among feasible trees, minimize total delay.
	best, cost, err := netembed.SelectBest(tree, host, result.Solutions,
		netembed.TotalEdgeAttrCost("avgDelay"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest tree (total path delay %.1f ms):\n", cost)
	for q, r := range best {
		fmt.Printf("  %-9s -> %-9s (region %s)\n",
			tree.Node(netembed.NodeID(q)).Name,
			host.Node(r).Name,
			attrOr(host, r, "region"))
	}
	if err := problem.Verify(best); err != nil {
		log.Fatalf("verifier rejected tree: %v", err)
	}
	fmt.Println("\nbest tree verified ✓")
}

func attrOr(g *netembed.Graph, n netembed.NodeID, attr string) string {
	if s, ok := g.Node(n).Attrs.Text(attr); ok {
		return s
	}
	return "?"
}
