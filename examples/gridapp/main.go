// Gridapp: allocate compute clusters for a grid application (§III
// scenario 5). Two jobs each need a clique of well-connected, beefy nodes
// on a BRITE-style Internet topology; the second job must avoid the first
// job's reservation, and a link-to-path embedding (the §VIII many-to-one
// extension) rescues a job whose latency budget no single overlay hop can
// satisfy.
//
// Run with: go run ./examples/gridapp
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	// An Internet-like hosting network (BRITE BA model, §VII-C sizes
	// scaled down for the example).
	host, err := netembed.Brite(netembed.BriteConfig{N: 300, TargetEdges: 606}, netembed.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hosting network: %d nodes, %d links (BRITE BA)\n\n", host.NumNodes(), host.NumEdges())

	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{DefaultTimeout: 15 * time.Second})

	// Job A: 3 workers, pairwise-adjacent (a triangle in the overlay),
	// every node with at least 4 CPUs.
	job := netembed.Clique(3)
	netembed.SetDelayWindow(job, 0.01, 10000) // any measured link qualifies
	for i := 0; i < job.NumNodes(); i++ {
		job.Node(netembed.NodeID(i)).Attrs = job.Node(netembed.NodeID(i)).Attrs.SetNum("cpu", 4)
	}
	req := netembed.Request{
		Query:          job,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		NodeConstraint: "vNode.cpu <= rNode.cpu",
		MaxResults:     1,
	}
	respA, err := svc.Embed(req)
	if err != nil {
		log.Fatal(err)
	}
	if len(respA.Mappings) == 0 {
		log.Fatalf("job A unplaceable (status %s)", respA.Status)
	}
	fmt.Println("job A placed on:", names(host, respA.Mappings[0]))
	leaseA, err := svc.Ledger().Allocate(respA.Mappings[0])
	if err != nil {
		log.Fatal(err)
	}

	// Job B: same shape, must not share nodes with job A.
	reqB := req
	reqB.ExcludeReserved = true
	respB, err := svc.Embed(reqB)
	if err != nil {
		log.Fatal(err)
	}
	if len(respB.Mappings) == 0 {
		log.Fatalf("job B unplaceable (status %s)", respB.Status)
	}
	fmt.Println("job B placed on:", names(host, respB.Mappings[0]))
	if overlaps(respA.Mappings[0], respB.Mappings[0]) {
		log.Fatal("job B overlapped job A despite the reservation")
	}
	fmt.Println("jobs are node-disjoint ✓")

	// Release job A; its machines become available again.
	if err := svc.Ledger().Release(leaseA); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreleased lease %d; reserved nodes now: %d\n\n",
		leaseA, len(svc.Ledger().ReservedNodes()))

	// Job C wants a latency budget per logical link that no single
	// overlay hop can meet on this sparse graph (a pipeline of 3 stages,
	// each link within [t1, t2] where direct links are too fast or
	// absent). The many-to-one extension maps each logical link onto a
	// short hosting *path* whose accumulated delay fits the window.
	pipeline := netembed.Line(3)
	for i := 0; i < pipeline.NumEdges(); i++ {
		pipeline.Edge(netembed.EdgeID(i)).Attrs = netembed.Attrs{}.
			SetNum("minDelay", 60).SetNum("maxDelay", 220)
	}
	p, err := netembed.NewProblem(pipeline, host, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	pres := netembed.PathEmbed(p, netembed.PathOptions{
		MaxHops:      3,
		MaxSolutions: 1,
		Timeout:      15 * time.Second,
	})
	if len(pres.Solutions) == 0 {
		log.Fatalf("pipeline unplaceable even with path mapping (status %s)", pres.Status)
	}
	sol := pres.Solutions[0]
	fmt.Println("job C (link-to-path embedding):")
	fmt.Println("  stages on:", names(host, sol.Nodes))
	for eid, path := range sol.Paths {
		fmt.Printf("  link %d rides a %d-hop path, accumulated delay %.1f ms\n",
			eid, len(path.Edges), path.Cost)
	}
	if err := netembed.VerifyPathSolution(p, netembed.PathOptions{MaxHops: 3}, sol); err != nil {
		log.Fatalf("path solution invalid: %v", err)
	}
	fmt.Println("path embedding verified ✓")
}

func names(g *netembed.Graph, m netembed.Mapping) []string {
	out := make([]string, len(m))
	for i, r := range m {
		out[i] = g.Node(r).Name
	}
	return out
}

func overlaps(a, b netembed.Mapping) bool {
	used := map[netembed.NodeID]bool{}
	for _, r := range a {
		used[r] = true
	}
	for _, r := range b {
		if used[r] {
			return true
		}
	}
	return false
}
