// Monitoring: select vantage points that watch the network's health
// (§III scenario 3). The monitors must form a clique of links with sane
// delays (so they can cross-check each other), and among all feasible
// placements we prefer the one spanning the most geographic regions —
// a fault-tolerance objective expressed as a §VIII cost function.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{}, netembed.NewRand(1))
	fmt.Printf("hosting network: %d sites, %d measured pairs\n\n", host.NumNodes(), host.NumEdges())

	// 4 monitors, every pair measured and below 400ms: the clique
	// requirement means each pair's delay was actually measured, so the
	// monitors can triangulate failures.
	monitors := netembed.Clique(4)
	netembed.SetDelayWindow(monitors, 1, 400)

	constraint := netembed.MustCompile(
		"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
	problem, err := netembed.NewProblem(monitors, host, constraint, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Collect candidate placements with LNS (the right tool for an
	// under-constrained clique, §VII-D), then maximize region spread.
	result := netembed.LNS(problem, netembed.Options{
		MaxSolutions: 500,
		Timeout:      5 * time.Second,
	})
	if len(result.Solutions) == 0 {
		log.Fatalf("no feasible monitor placement (status %s)", result.Status)
	}
	fmt.Printf("candidate placements: %d (status %s, %v)\n",
		len(result.Solutions), result.Status, result.Stats.Elapsed.Round(time.Millisecond))

	best, negSpread, err := netembed.SelectBest(monitors, host, result.Solutions,
		netembed.SpreadCost("region"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen vantage points (%d distinct regions):\n", int(-negSpread))
	for q, r := range best {
		region, _ := host.Node(r).Attrs.Text("region")
		fmt.Printf("  monitor%d -> %-8s (%s)\n", q, host.Node(r).Name, region)
	}
	if err := problem.Verify(best); err != nil {
		log.Fatalf("verifier rejected placement: %v", err)
	}
	fmt.Println("\nplacement verified ✓")
}
