// Open network: embed queries into a hosting network that was never
// fully measured. NETEMBED's §II point about open infrastructures (the
// Internet, PlanetLab overlays) is that no monitor ever sees an all-pairs
// characterization — so the service first embeds the measured delays into
// a Vivaldi coordinate space (the paper's reference [30]) and completes
// the model with coordinate-predicted delay windows for every unmeasured
// pair. Queries can then match anywhere, and constraint expressions can
// still opt back into measured-only links with !has(rEdge.predicted).
//
// Run with: go run ./examples/opennetwork
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	// A PlanetLab-like host where only 15% of pairs were ever probed:
	// the realistic open-network regime.
	rng := netembed.NewRand(7)
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 80}, rng)
	full := host.NumEdges()
	sparse := thinOut(host, 0.15, rng)
	fmt.Printf("hosting network: %d sites, %d of %d pairs measured (%.0f%%)\n\n",
		sparse.NumNodes(), sparse.NumEdges(), full,
		100*float64(sparse.NumEdges())/float64(full))

	model := netembed.NewModel(sparse)
	svc := netembed.NewService(model, netembed.ServiceConfig{})

	// A 5-clique of sub-300ms links: on the sparse measured graph such
	// cliques are vanishingly rare.
	q := netembed.Clique(5)
	netembed.SetDelayWindow(q, 1, 300)
	req := netembed.Request{
		Query: q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && " +
			"rEdge.avgDelay <= vEdge.maxDelay",
		Algorithm:  netembed.AlgoLNS,
		MaxResults: 1,
		Timeout:    5 * time.Second,
	}
	before, err := svc.Embed(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before completion: %d embeddings (status %s)\n",
		len(before.Mappings), before.Status)

	// Complete the model: simulate a Vivaldi deployment over the
	// measured edges, then synthesize delay windows for every
	// unmeasured pair.
	report, err := netembed.CompleteModel(model, netembed.CompletionConfig{
		Embed: netembed.CoordEmbedConfig{
			Rounds: 48,
			Config: netembed.CoordConfig{Heights: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completion: +%d predicted edges, fit median error %.1f%% (p90 %.1f%%), model v%d\n",
		report.Added, 100*report.Fit.Median, 100*report.Fit.P90, report.Version)

	after, err := svc.Embed(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after completion:  %d embedding(s) (status %s)\n", len(after.Mappings), after.Status)
	if len(after.Mappings) > 0 {
		fmt.Printf("  placement: %v\n", after.Named[0])
	}

	// The predicted mark keeps the sparse semantics one clause away.
	strict := req
	strict.EdgeConstraint += " && !has(rEdge.predicted)"
	measuredOnly, err := svc.Embed(strict)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured-only:     %d embeddings (status %s) — the honest sparse answer\n",
		len(measuredOnly.Mappings), measuredOnly.Status)
}

// thinOut keeps each measured edge with the given probability, returning
// a new graph over the same sites.
func thinOut(host *netembed.Graph, keep float64, rng interface{ Float64() float64 }) *netembed.Graph {
	sparse := netembed.NewUndirected()
	for i := 0; i < host.NumNodes(); i++ {
		n := host.Node(netembed.NodeID(i))
		sparse.AddNode(n.Name, n.Attrs.Clone())
	}
	for e := 0; e < host.NumEdges(); e++ {
		if rng.Float64() > keep {
			continue
		}
		ed := host.Edge(netembed.EdgeID(e))
		sparse.MustAddEdge(ed.From, ed.To, ed.Attrs.Clone())
	}
	return sparse
}
