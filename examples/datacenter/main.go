// Datacenter consolidation: pack a virtual cluster onto fewer machines
// than it has nodes — the §VIII many-to-one extension ("allow
// many-to-one mappings between virtual and real nodes"). Machines
// advertise a capacity, virtual nodes a demand; query links between
// co-located nodes ride the machine's loopback (delay 0), and the
// constraint language decides whether that is acceptable per link.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	host := buildRacks(3, 4) // 3 racks × 4 machines
	fmt.Printf("datacenter: %d machines, %d links\n\n", host.NumNodes(), host.NumEdges())

	// A 3-tier service: 2 load balancers, 6 app servers, 4 cache nodes;
	// 12 virtual nodes on 12 machines would fit injectively, but demands
	// let us pack it onto far fewer.
	q := buildTiers()
	fmt.Printf("virtual cluster: %d nodes, %d links, total demand %.1f\n",
		q.NumNodes(), q.NumEdges(), totalDemand(q))

	svc := netembed.NewService(netembed.NewModel(host), netembed.ServiceConfig{})
	resp, err := svc.Embed(netembed.Request{
		Query: q,
		// App↔cache links tolerate loopback (maxDelay ceilings pass at
		// 0ms); the LB↔app links demand real network separation: a
		// minimum delay of 0.05ms no loopback can provide.
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay && rEdge.minDelay >= vEdge.minDelay",
		Algorithm:      netembed.AlgoConsolidate,
		MaxResults:     200,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(resp.Mappings) == 0 {
		log.Fatalf("no consolidated placement (status %s)", resp.Status)
	}
	fmt.Printf("\nfeasible consolidated placements: %d (status %s, %v)\n",
		len(resp.Mappings), resp.Status, resp.Elapsed.Round(time.Millisecond))

	// Among the feasible packings, prefer the one using fewest machines.
	best, bestMachines := resp.Named[0], machinesUsed(resp.Mappings[0])
	for i, m := range resp.Mappings[1:] {
		if used := machinesUsed(m); used < bestMachines {
			bestMachines = used
			best = resp.Named[i+1]
		}
	}
	fmt.Printf("tightest packing uses %d of %d machines:\n", bestMachines, host.NumNodes())
	byMachine := map[string][]string{}
	for v, r := range best {
		byMachine[r] = append(byMachine[r], v)
	}
	for r, vs := range byMachine {
		fmt.Printf("  %-12s <- %v\n", r, vs)
	}
}

// buildRacks makes racks of machines: intra-rack links at 0.1ms, a
// rack-spine mesh at 0.5ms. Each machine has capacity 4.
func buildRacks(racks, perRack int) *netembed.Graph {
	g := netembed.NewUndirected()
	link := func(delay float64) netembed.Attrs {
		return netembed.Attrs{}.
			SetNum("minDelay", delay).SetNum("avgDelay", delay).SetNum("maxDelay", delay)
	}
	for r := 0; r < racks; r++ {
		for m := 0; m < perRack; m++ {
			g.AddNode(fmt.Sprintf("rack%d-m%d", r, m),
				netembed.Attrs{}.SetNum("capacity", 4).SetStr("rack", fmt.Sprintf("rack%d", r)))
		}
	}
	id := func(r, m int) netembed.NodeID { return netembed.NodeID(r*perRack + m) }
	for r := 0; r < racks; r++ {
		for a := 0; a < perRack; a++ {
			for b := a + 1; b < perRack; b++ {
				g.MustAddEdge(id(r, a), id(r, b), link(0.1))
			}
		}
	}
	for ra := 0; ra < racks; ra++ {
		for rb := ra + 1; rb < racks; rb++ {
			for a := 0; a < perRack; a++ {
				for b := 0; b < perRack; b++ {
					g.MustAddEdge(id(ra, a), id(rb, b), link(0.5))
				}
			}
		}
	}
	return g
}

// buildTiers makes the 3-tier virtual cluster.
func buildTiers() *netembed.Graph {
	g := netembed.NewUndirected()
	demand := func(d float64) netembed.Attrs { return netembed.Attrs{}.SetNum("demand", d) }
	var lbs, apps, caches []netembed.NodeID
	for i := 0; i < 2; i++ {
		lbs = append(lbs, g.AddNode(fmt.Sprintf("lb%d", i), demand(1)))
	}
	for i := 0; i < 6; i++ {
		apps = append(apps, g.AddNode(fmt.Sprintf("app%d", i), demand(1)))
	}
	for i := 0; i < 4; i++ {
		caches = append(caches, g.AddNode(fmt.Sprintf("cache%d", i), demand(0.5)))
	}
	// LB↔app: must cross a real link (minDelay 0.05 excludes loopback).
	separated := netembed.Attrs{}.SetNum("minDelay", 0.05).SetNum("maxDelay", 1)
	// app↔cache: loopback-friendly (minDelay 0 ceiling 1ms).
	colocatable := netembed.Attrs{}.SetNum("minDelay", 0).SetNum("maxDelay", 1)
	for i, a := range apps {
		g.MustAddEdge(lbs[i%2], a, separated.Clone())
		g.MustAddEdge(a, caches[i%4], colocatable.Clone())
	}
	return g
}

func totalDemand(q *netembed.Graph) float64 {
	var sum float64
	for i := 0; i < q.NumNodes(); i++ {
		d, ok := q.Node(netembed.NodeID(i)).Attrs.Float("demand")
		if !ok {
			d = 1
		}
		sum += d
	}
	return sum
}

func machinesUsed(m netembed.Mapping) int {
	set := map[netembed.NodeID]bool{}
	for _, r := range m {
		set[r] = true
	}
	return len(set)
}
