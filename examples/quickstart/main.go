// Quickstart: embed a sampled virtual network into a synthetic PlanetLab
// hosting network and print the first few feasible mappings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"netembed"
)

func main() {
	// 1. A hosting network: the paper's PlanetLab substitute, scaled down
	// so the example runs instantly (60 sites, paper-density delays).
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{Sites: 60}, netembed.NewRand(1))
	fmt.Printf("hosting network: %d sites, %d measured pairs\n", host.NumNodes(), host.NumEdges())

	// 2. A query network: a random connected 8-node subgraph of the host
	// whose edges demand delay ranges within 10% of what was sampled —
	// feasible by construction, like the paper's §VII-A workload.
	query, _, err := netembed.Subgraph(host, 8, 12, netembed.NewRand(2))
	if err != nil {
		log.Fatal(err)
	}
	netembed.WidenDelayWindows(query, 0.10)
	fmt.Printf("query network:   %d nodes, %d links with delay windows\n\n", query.NumNodes(), query.NumEdges())

	// 3. The constraint: a hosting link qualifies when its measured delay
	// range sits inside the window the query link asks for (§VI-B).
	constraint := netembed.MustCompile(
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")

	problem, err := netembed.NewProblem(query, host, constraint, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Search with ECF (§V-A): complete and correct; cap at 3 mappings.
	result := netembed.ECF(problem, netembed.Options{
		MaxSolutions: 3,
		Timeout:      10 * time.Second,
	})
	fmt.Printf("status: %s — %d embedding(s) in %v (first after %v)\n",
		result.Status, len(result.Solutions),
		result.Stats.Elapsed.Round(time.Microsecond),
		result.Stats.TimeToFirst.Round(time.Microsecond))

	for i, m := range result.Solutions {
		fmt.Printf("\nembedding %d:\n", i+1)
		lines := make([]string, 0, len(m))
		for q, r := range m {
			lines = append(lines, fmt.Sprintf("  %-10s -> %s",
				query.Node(netembed.NodeID(q)).Name, host.Node(r).Name))
		}
		sort.Strings(lines)
		for _, ln := range lines {
			fmt.Println(ln)
		}
		// Every reported mapping passes the independent verifier.
		if err := problem.Verify(m); err != nil {
			log.Fatalf("verifier rejected mapping: %v", err)
		}
	}
	fmt.Println("\nall embeddings verified ✓")

	// Going further: as a service, queries run through the asynchronous
	// job engine instead of blocking the caller — submit, poll, cancel,
	// with identical queries served from a model-versioned cache:
	//
	//	svc := netembed.NewService(netembed.NewModel(host), netembed.ServiceConfig{})
	//	eng := netembed.NewEngine(svc, netembed.EngineConfig{})
	//	job, _ := eng.Submit(netembed.Request{Query: query, EdgeConstraint: "..."})
	//	<-job.Done()                  // or poll job.Info().State
	//	info := job.Info()            // .Response holds the mappings
	//	_ = info
	//
	// Over HTTP the same lifecycle is POST /jobs → GET /jobs/{id} →
	// DELETE /jobs/{id}; see cmd/netembedd and the README's job-engine
	// section.
}
