// Sensornet: allocate sensors with specific capabilities (§III scenario
// 4, the SNBENCH setting of §VIII). A transit-stub field network hosts
// nodes with sensing hardware; the query binds each virtual sensor to a
// physical node with the right sensor type via isBoundTo, and the
// embedding is scheduled into a time window using the integrated
// mapping-and-scheduling extension.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	// The field network: 4 transit routers, each with 2 stub domains of 5
	// nodes. Stub leaves get sensing hardware round-robin.
	rng := netembed.NewRand(3)
	host, err := netembed.TransitStub(4, 2, 5, rng)
	if err != nil {
		log.Fatal(err)
	}
	sensorTypes := []string{"temperature", "humidity", "vibration"}
	idx := 0
	for i := 0; i < host.NumNodes(); i++ {
		n := host.Node(netembed.NodeID(i))
		if tier, _ := n.Attrs.Text("tier"); tier == "stub" {
			n.Attrs = n.Attrs.SetStr("sensorType", sensorTypes[idx%len(sensorTypes)])
			idx++
		}
	}
	fmt.Printf("field network: %d nodes, %d links, %d sensor-equipped\n\n",
		host.NumNodes(), host.NumEdges(), idx)

	// The sensing task: a hub aggregating one sensor of each type, links
	// tolerating up to 120ms.
	task := netembed.Star(4)
	netembed.SetDelayWindow(task, 0.1, 120)
	task.Node(1).Attrs = task.Node(1).Attrs.SetStr("needType", "temperature")
	task.Node(2).Attrs = task.Node(2).Attrs.SetStr("needType", "humidity")
	task.Node(3).Attrs = task.Node(3).Attrs.SetStr("needType", "vibration")

	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{DefaultTimeout: 10 * time.Second})

	req := netembed.Request{
		Query:          task,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		// A virtual sensor with a needType must land on hardware of that
		// type; the hub (no needType) is unconstrained.
		NodeConstraint: "isBoundTo(vNode.needType, rNode.sensorType)",
	}

	// First, an immediate placement.
	resp, err := svc.Embed(req)
	if err != nil {
		log.Fatal(err)
	}
	if len(resp.Named) == 0 {
		log.Fatalf("no feasible sensor allocation (status %s)", resp.Status)
	}
	fmt.Println("immediate allocation:")
	printAllocation(task, host, resp.Mappings[0])

	// Occupy those sensors for the next hour, then ask the scheduler for
	// the earliest window for an identical second task: it must either
	// find disjoint hardware now or wait for the lease to expire.
	now := time.Date(2026, 6, 11, 9, 0, 0, 0, time.UTC)
	svc.Ledger().SetClock(func() time.Time { return now })
	if _, err := svc.Ledger().AllocateWindow(resp.Mappings[0], now, now.Add(time.Hour)); err != nil {
		log.Fatal(err)
	}

	sched, err := svc.Schedule(netembed.ScheduleRequestOf(req, 30*time.Minute, 4*time.Hour, 15*time.Minute), now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond task scheduled at %s (%d window(s) examined, lease %d):\n",
		sched.Start.Format("15:04"), sched.WindowsTried, sched.Lease)
	printAllocation(task, host, sched.Mapping)
}

func printAllocation(task, host *netembed.Graph, m netembed.Mapping) {
	for q, r := range m {
		want, _ := task.Node(netembed.NodeID(q)).Attrs.Text("needType")
		got, _ := host.Node(r).Attrs.Text("sensorType")
		if want == "" {
			want, got = "hub", "-"
		}
		fmt.Printf("  %-4s (%-11s) -> %-12s [%s]\n",
			task.Node(netembed.NodeID(q)).Name, want, host.Node(r).Name, got)
	}
}
