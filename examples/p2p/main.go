// P2P: place the directory nodes of a distributed hash table (§III
// scenario 2). The lookup ring needs moderate pairwise delays between
// successive directory nodes and enough CPU on every node; the service
// API is used end to end, including the monitoring feed that keeps the
// model fresh between queries.
//
// Run with: go run ./examples/p2p
package main

import (
	"fmt"
	"log"
	"time"

	"netembed"
)

func main() {
	host := netembed.SyntheticPlanetLab(netembed.TraceConfig{}, netembed.NewRand(1))
	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{DefaultTimeout: 10 * time.Second})

	// A simulated monitoring feed re-measures 10% of the links: queries
	// always run against the newest snapshot (model versions advance).
	monitor := netembed.NewMonitor(model, netembed.MonitorConfig{Seed: 2})
	monitor.Step()
	monitor.Step()

	// The DHT ring: 8 directory nodes, successor links below 175ms so
	// lookups stay fast, and a CPU floor on every node.
	ring := netembed.Ring(8)
	netembed.SetDelayWindow(ring, 25, 175)
	for i := 0; i < ring.NumNodes(); i++ {
		ring.Node(netembed.NodeID(i)).Attrs =
			ring.Node(netembed.NodeID(i)).Attrs.SetNum("cpu", 4)
	}

	resp, err := svc.Embed(netembed.Request{
		Query:          ring,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		NodeConstraint: "vNode.cpu <= rNode.cpu",
		Algorithm:      netembed.AlgoRWB, // any single placement will do
		Seed:           7,
		MaxResults:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(resp.Named) == 0 {
		log.Fatalf("no feasible ring placement (status %s)", resp.Status)
	}

	fmt.Printf("model version answered against: v%d\n", resp.ModelVersion)
	fmt.Printf("status: %s, elapsed %v\n\n", resp.Status, resp.Elapsed.Round(time.Millisecond))
	fmt.Println("DHT directory ring placement:")
	cur, _ := model.Snapshot()
	for i := 0; i < ring.NumNodes(); i++ {
		qName := ring.Node(netembed.NodeID(i)).Name
		rName := resp.Named[0][qName]
		rid, _ := cur.NodeByName(rName)
		cpu, _ := cur.Node(rid).Attrs.Float("cpu")
		region, _ := cur.Node(rid).Attrs.Text("region")
		fmt.Printf("  %-3s -> %-8s (cpu %.0f, %s)\n", qName, rName, cpu, region)
	}

	// Reserve the placement so the next application steers clear of it.
	lease, err := svc.Ledger().Allocate(resp.Mappings[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreserved under lease %d; nodes now reserved: %d\n",
		lease, len(svc.Ledger().ReservedNodes()))

	// A second ring must land on disjoint machines.
	resp2, err := svc.Embed(netembed.Request{
		Query:           ring,
		EdgeConstraint:  "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		NodeConstraint:  "vNode.cpu <= rNode.cpu",
		Algorithm:       netembed.AlgoRWB,
		Seed:            8,
		MaxResults:      1,
		ExcludeReserved: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(resp2.Mappings) == 0 {
		log.Fatalf("no second placement (status %s)", resp2.Status)
	}
	overlap := 0
	used := map[netembed.NodeID]bool{}
	for _, r := range resp.Mappings[0] {
		used[r] = true
	}
	for _, r := range resp2.Mappings[0] {
		if used[r] {
			overlap++
		}
	}
	fmt.Printf("second ring placed on %d nodes, overlap with the first: %d (must be 0)\n",
		len(resp2.Mappings[0]), overlap)
}
