// Package stats provides the summary statistics used by the experiment
// harness: means with 95% confidence intervals (the error bars of the
// paper's figures), percentiles and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	CI95   float64 // half-width of the 95% confidence interval of the mean
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = tCritical(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// tCritical approximates the two-tailed 95% Student-t critical value for
// the given degrees of freedom (exact table for small df, 1.96 beyond).
func tCritical(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
		2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram bins xs into nBins equal-width buckets over [lo, hi]; values
// outside the range clamp to the edge buckets.
func Histogram(xs []float64, lo, hi float64, nBins int) []int {
	bins := make([]int, nBins)
	if nBins == 0 || hi <= lo {
		return bins
	}
	w := (hi - lo) / float64(nBins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		bins[b]++
	}
	return bins
}

// String renders the summary as "mean ± ci [min..max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f..%.2f] (n=%d)", s.Mean, s.CI95, s.Min, s.Max, s.N)
}
