package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEq(s.StdDev, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 not positive")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("singleton = %+v", s)
	}
	c := Summarize([]float64{5, 5, 5, 5})
	if c.StdDev != 0 || c.CI95 != 0 {
		t.Errorf("constant sample = %+v", c)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical(0) != 0 {
		t.Error("df=0")
	}
	if !almostEq(tCritical(1), 12.706, 1e-9) {
		t.Error("df=1")
	}
	if !almostEq(tCritical(4), 2.776, 1e-9) {
		t.Error("df=4")
	}
	if tCritical(1000) != 1.96 {
		t.Error("df large")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must stay unsorted.
	ys := []float64{3, 1, 2}
	Percentile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Percentile sorted its input")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1.5, 2.5, 9.9, -5, 15}
	h := Histogram(xs, 0, 10, 10)
	if h[0] != 3 { // 0, 0.5, -5 (clamped)
		t.Errorf("bin0 = %d", h[0])
	}
	if h[1] != 1 || h[2] != 1 {
		t.Errorf("bins = %v", h)
	}
	if h[9] != 2 { // 9.9 and 15 (clamped)
		t.Errorf("bin9 = %d", h[9])
	}
	if got := Histogram(xs, 5, 5, 4); got[0] != 0 {
		t.Error("degenerate range should yield empty bins")
	}
	if got := Histogram(xs, 0, 1, 0); len(got) != 0 {
		t.Error("zero bins")
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Clamp to keep arithmetic exact enough.
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if s.N == 0 {
			return true
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.StdDev >= 0 && s.CI95 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone at p=%v", p)
			}
			prev = v
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}
