package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"netembed/internal/baseline"
	"netembed/internal/core"
)

// Baselines reproduces the §VII-F comparison: NETEMBED's algorithms
// against the prior techniques' algorithmic cores (simulated annealing /
// assign, genetic / wanassign, SWORD's two-phase matcher) plus the naive
// unpruned DFS ablation, on the subgraph workload. Two tables: time to
// first feasible mapping, and success rate.
func Baselines(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	hostDesc := fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())
	methods := []string{"ECF", "RWB", "LNS", "NaiveDFS", "Annealing", "Genetic", "SWORD", "ZhuAmmar"}

	var sizes []int
	for _, s := range []int{10, 20, 40, 80} {
		v := cfg.scaled(s, 4)
		if v <= host.NumNodes()*3/4 {
			sizes = append(sizes, v)
		}
	}

	timeT := &Table{
		ID:    "baselines-time",
		Title: "Time to first feasible mapping vs prior techniques (" + hostDesc + ")",
		XName: "Nq", Cols: methods,
		Notes: []string{"failed runs excluded from timing; see the success table"},
	}
	successT := &Table{
		ID:    "baselines-success",
		Title: "Success rate (fraction of runs returning a feasible mapping)",
		XName: "Nq", Cols: methods,
		Notes: []string{
			"every instance is feasible by construction (planted subgraph);",
			"annealing/genetic/SWORD may fail anyway — they trade completeness for speed (§II)",
		},
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 600))
	for _, size := range sizes {
		times := map[string][]float64{}
		success := map[string]int{}
		runs := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			q, err := subgraphQuery(host, size, 0, rng)
			if err != nil {
				continue
			}
			p := mustProblem(q, host, DelayWindowConstraint)
			runs++
			record := func(method string, ms float64, found bool) {
				if found {
					success[method]++
					if !math.IsNaN(ms) {
						times[method] = append(times[method], ms)
					}
				}
			}
			for _, algo := range algoNames {
				out := runAlgo(algo, p, core.Options{
					Timeout: cfg.Timeout, MaxSolutions: 1, Seed: int64(rep),
				})
				record(algo, out.FirstMs, out.Solutions > 0)
			}
			nv := baseline.NaiveDFS(p, baseline.NaiveConfig{Timeout: cfg.Timeout, MaxSolutions: 1})
			record("NaiveDFS", float64(nv.Elapsed)/float64(time.Millisecond), len(nv.Solutions) > 0)
			an := baseline.Annealer(p, baseline.AnnealerConfig{Timeout: cfg.Timeout, Seed: int64(rep)})
			record("Annealing", float64(an.Elapsed)/float64(time.Millisecond), an.Found)
			ga := baseline.Genetic(p, baseline.GeneticConfig{Timeout: cfg.Timeout, Seed: int64(rep)})
			record("Genetic", float64(ga.Elapsed)/float64(time.Millisecond), ga.Found)
			sw := baseline.Sword(p, baseline.SwordConfig{PhaseTimeout: cfg.Timeout / 2})
			record("SWORD", float64(sw.Elapsed)/float64(time.Millisecond), sw.Found)
			za := baseline.ZhuAmmar(p, baseline.ZhuAmmarConfig{Timeout: cfg.Timeout})
			record("ZhuAmmar", float64(za.Elapsed)/float64(time.Millisecond), za.Feasible)
		}
		tr := Row{X: fmt.Sprintf("%d", size)}
		sr := Row{X: fmt.Sprintf("%d", size)}
		for _, m := range methods {
			tr.Cells = append(tr.Cells, summCell(times[m]))
			frac := 0.0
			if runs > 0 {
				frac = float64(success[m]) / float64(runs)
			}
			sr.Cells = append(sr.Cells, Cell{Mean: frac, N: runs})
		}
		timeT.Rows = append(timeT.Rows, tr)
		successT.Rows = append(successT.Rows, sr)
		cfg.progressf("baselines: size %d done\n", size)
	}
	return []*Table{timeT, successT}
}

// Ablations isolates the contribution of each design choice called out in
// DESIGN.md on a fixed subgraph workload: Lemma-1 ordering, the tightened
// formula (1), the degree filter, and root-level parallelism.
func Ablations(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	hostDesc := fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())
	size := cfg.scaled(60, 6)

	variants := []struct {
		name string
		run  func(p *core.Problem, seed int64) *core.Result
	}{
		{"default", func(p *core.Problem, seed int64) *core.Result {
			return core.ECF(p, core.Options{Timeout: cfg.Timeout})
		}},
		{"order-natural", func(p *core.Problem, seed int64) *core.Result {
			return core.ECF(p, core.Options{Timeout: cfg.Timeout, Order: core.OrderNatural})
		}},
		{"order-unconnected", func(p *core.Problem, seed int64) *core.Result {
			return core.ECF(p, core.Options{Timeout: cfg.Timeout, Order: core.OrderUnconnected})
		}},
		{"order-desc", func(p *core.Problem, seed int64) *core.Result {
			return core.ECF(p, core.Options{Timeout: cfg.Timeout, Order: core.OrderDescending})
		}},
		{"order-dynamic", func(p *core.Problem, seed int64) *core.Result {
			return core.DynamicECF(p, core.Options{Timeout: cfg.Timeout})
		}},
		{"loose-root", func(p *core.Problem, seed int64) *core.Result {
			return core.ECF(p, core.Options{Timeout: cfg.Timeout, LooseRoot: true})
		}},
		{"no-degree-filter", func(p *core.Problem, seed int64) *core.Result {
			return core.ECF(p, core.Options{Timeout: cfg.Timeout, NoDegreeFilter: true})
		}},
		{"parallel-2", func(p *core.Problem, seed int64) *core.Result {
			return core.ParallelECF(p, core.Options{Timeout: cfg.Timeout, Workers: 2, MaxSolutions: 1 << 20})
		}},
		{"parallel-8", func(p *core.Problem, seed int64) *core.Result {
			return core.ParallelECF(p, core.Options{Timeout: cfg.Timeout, Workers: 8, MaxSolutions: 1 << 20})
		}},
	}

	t := &Table{
		ID:    "ablations",
		Title: fmt.Sprintf("ECF design ablations, %d-node subgraph queries (%s)", size, hostDesc),
		XName: "variant",
		Cols:  []string{"all-ms", "visited"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 700))
	queries := make([]*core.Problem, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		q, err := subgraphQuery(host, size, 0, rng)
		if err != nil {
			continue
		}
		queries = append(queries, mustProblem(q, host, DelayWindowConstraint))
	}
	for _, v := range variants {
		var ms, visited []float64
		for i, p := range queries {
			res := v.run(p, int64(i))
			ms = append(ms, float64(res.Stats.Elapsed)/float64(time.Millisecond))
			visited = append(visited, float64(res.Stats.NodesVisited))
		}
		t.Rows = append(t.Rows, Row{X: v.name, Cells: []Cell{summCell(ms), summCell(visited)}})
		cfg.progressf("ablations: %s done\n", v.name)
	}
	t.Notes = append(t.Notes, "same query set for every variant; visited = permutation-tree nodes expanded")
	return []*Table{t}
}
