// Package exp is the experiment harness that regenerates every figure of
// the paper's evaluation (§VII): workload generators, parameter sweeps,
// per-figure runners and text/CSV reporters. cmd/experiments is its CLI.
//
// Absolute times will differ from the paper's 2006 Xeon measurements; the
// harness exists to reproduce the *shapes*: ECF/RWB growing near-linearly
// in query size on a fixed host, the small all-vs-first gap for ECF, LNS's
// flat time-to-first on under-constrained regular queries, and so on.
// EXPERIMENTS.md records paper-vs-measured per figure.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/stats"
)

// Config shapes a harness run. The zero value is completed by defaults:
// full paper sizes, 5 repetitions per point, 10s per-query timeout.
type Config struct {
	// Scale multiplies every network size (1.0 = the paper's sizes). Use
	// ~0.2 for a quick pass.
	Scale float64
	// Reps is the number of sampled queries per data point (paper: 5).
	Reps int
	// Timeout bounds each individual query run.
	Timeout time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Progress, when non-nil, receives one line per completed data point.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled applies the scale factor to a size, keeping a floor.
func (c Config) scaled(n int, floor int) int {
	v := int(math.Round(float64(n) * c.Scale))
	if v < floor {
		v = floor
	}
	return v
}

func (c Config) progressf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// Cell is one table entry: a mean with confidence interval, or a free-form
// note when N == 0.
type Cell struct {
	Mean float64
	CI   float64
	N    int
	Note string
}

func (c Cell) String() string {
	if c.N == 0 {
		return c.Note
	}
	if c.CI > 0 {
		return fmt.Sprintf("%.1f ±%.1f", c.Mean, c.CI)
	}
	return fmt.Sprintf("%.1f", c.Mean)
}

// Row is one x-position of a figure with one cell per series.
type Row struct {
	X     string
	Cells []Cell
}

// Table is a rendered figure or comparison table.
type Table struct {
	ID    string // e.g. "fig8a"
	Title string
	XName string
	Cols  []string
	Rows  []Row
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Cols)+1)
	widths[0] = len(t.XName)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Cells))
		for j, c := range r.Cells {
			s := c.String()
			cells[i][j] = s
			if j+1 < len(widths) && len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	for j, col := range t.Cols {
		if len(col) > widths[j+1] {
			widths[j+1] = len(col)
		}
	}
	fmt.Fprintf(w, "  %-*s", widths[0], t.XName)
	for j, col := range t.Cols {
		fmt.Fprintf(w, "  %-*s", widths[j+1], col)
	}
	fmt.Fprintln(w)
	for i, r := range t.Rows {
		fmt.Fprintf(w, "  %-*s", widths[0], r.X)
		for j := range r.Cells {
			fmt.Fprintf(w, "  %-*s", widths[j+1], cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (mean and ci columns per
// series).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "%s", t.XName)
	for _, col := range t.Cols {
		fmt.Fprintf(w, ",%s_mean,%s_ci", col, col)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s", r.X)
		for _, c := range r.Cells {
			if c.N == 0 {
				fmt.Fprintf(w, ",%s,", strings.ReplaceAll(c.Note, ",", ";"))
			} else {
				fmt.Fprintf(w, ",%g,%g", c.Mean, c.CI)
			}
		}
		fmt.Fprintln(w)
	}
}

// summCell converts a sample of measurements into a Cell.
func summCell(xs []float64) Cell {
	if len(xs) == 0 {
		return Cell{Note: "-"}
	}
	s := stats.Summarize(xs)
	return Cell{Mean: s.Mean, CI: s.CI95, N: s.N}
}

// The constraint programs shared by the experiments (§VII).
var (
	// DelayWindowConstraint: the hosting link's measured delay range must
	// sit inside the query link's window (subgraph workloads, Figs 8-12).
	DelayWindowConstraint = expr.MustCompile(
		"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")
	// AvgDelayConstraint: the hosting link's average delay must fall in
	// the query window (clique and composite workloads, Figs 13-14).
	AvgDelayConstraint = expr.MustCompile(
		"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
)

// runOutcome is one measured query execution.
type runOutcome struct {
	AllMs     float64 // elapsed until exhaustion/stop (ms)
	FirstMs   float64 // time to first solution (ms); NaN when none found
	Solutions int64
	Status    core.Status
	Exhausted bool
}

// algoNames in presentation order.
var algoNames = []string{"ECF", "RWB", "LNS"}

// runAlgo executes one algorithm over a problem, counting solutions
// without retaining them (clique queries can have millions).
func runAlgo(algo string, p *core.Problem, opt core.Options) runOutcome {
	var count int64
	opt.OnSolution = func(core.Mapping) bool {
		count++
		return true
	}
	var res *core.Result
	switch algo {
	case "ECF":
		res = core.ECF(p, opt)
	case "RWB":
		// The harness measures RWB exhaustively unless the caller caps it
		// (core.RWB alone defaults to first-solution semantics); the
		// exhaustive run yields both the all-matches time and the
		// time-to-first sample.
		if opt.MaxSolutions == 0 {
			opt.MaxSolutions = 1 << 30
		}
		res = core.RWB(p, opt)
	case "LNS":
		res = core.LNS(p, opt)
	case "ParallelECF":
		// The parallel driver retains solutions; cap them for memory.
		popt := opt
		popt.OnSolution = nil
		if popt.MaxSolutions == 0 {
			popt.MaxSolutions = 1 << 20
		}
		res = core.ParallelECF(p, popt)
		count = int64(len(res.Solutions))
	default:
		panic("exp: unknown algorithm " + algo)
	}
	out := runOutcome{
		AllMs:     float64(res.Stats.Elapsed) / float64(time.Millisecond),
		FirstMs:   math.NaN(),
		Solutions: count,
		Status:    res.Status,
		Exhausted: res.Exhausted,
	}
	if count > 0 {
		out.FirstMs = float64(res.Stats.TimeToFirst) / float64(time.Millisecond)
	}
	return out
}
