package exp

import (
	"fmt"
	"math/rand"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// planetLabHost builds the paper's PlanetLab hosting network at the
// configured scale (296 sites, 28,996 measured pairs at scale 1).
func planetLabHost(cfg Config) *graph.Graph {
	sites := cfg.scaled(296, 20)
	return trace.SyntheticPlanetLab(trace.Config{Sites: sites}, rand.New(rand.NewSource(cfg.Seed)))
}

// briteHost builds one of the paper's BRITE hosting networks (§VII-C) at
// the configured scale.
func briteHost(cfg Config, nodes, edges int, seed int64) (*graph.Graph, error) {
	n := cfg.scaled(nodes, 50)
	e := cfg.scaled(edges, n+10)
	return topo.Brite(topo.BriteConfig{N: n, TargetEdges: e}, rand.New(rand.NewSource(seed)))
}

// subgraphQuery samples a feasible query of nNodes from host with delay
// windows widened by slack (§VII-A approach 1).
func subgraphQuery(host *graph.Graph, nNodes int, slack float64, rng *rand.Rand) (*graph.Graph, error) {
	q, _, err := topo.Subgraph(host, nNodes, 2*nNodes, rng)
	if err != nil {
		return nil, err
	}
	topo.WidenDelayWindows(q, slack)
	return q, nil
}

// mustProblem builds a Problem, panicking on programmer error (the
// harness constructs all inputs itself).
func mustProblem(q, host *graph.Graph, edgeC *expr.Program) *core.Problem {
	p, err := core.NewProblem(q, host, edgeC, nil)
	if err != nil {
		panic(err)
	}
	return p
}

// cliqueQuery builds the §VII-D clique workload: a k-clique whose every
// edge demands average delay within [10,100]ms.
func cliqueQuery(k int) *graph.Graph {
	q := topo.Clique(k)
	topo.SetDelayWindow(q, 10, 100)
	return q
}

// compositeSpec names one two-level composite query shape (§VII-D).
type compositeSpec struct {
	root     topo.Kind
	rootSize int
	leaf     topo.Kind
	leafSize int
}

func (cs compositeSpec) String() string {
	return fmt.Sprintf("%s%d×%s%d", cs.root, cs.rootSize, cs.leaf, cs.leafSize)
}

func (cs compositeSpec) size() int { return cs.rootSize * cs.leafSize }

// compositeSpecs spans the paper's composite sweep: root and leaf
// structures drawn from {ring, star, clique}, total sizes ~9..64.
var compositeSpecs = []compositeSpec{
	{topo.KindStar, 3, topo.KindRing, 3},
	{topo.KindRing, 3, topo.KindStar, 4},
	{topo.KindRing, 4, topo.KindRing, 4},
	{topo.KindStar, 4, topo.KindClique, 5},
	{topo.KindClique, 3, topo.KindStar, 8},
	{topo.KindRing, 5, topo.KindRing, 6},
	{topo.KindStar, 6, topo.KindStar, 6},
	{topo.KindRing, 6, topo.KindStar, 7},
	{topo.KindClique, 4, topo.KindRing, 12},
	{topo.KindStar, 8, topo.KindStar, 8},
}

// compositeRegular stamps the §VII-D regular per-level constraints:
// root links expect inter-site delays (75-350ms), leaf links intra-site
// delays (1-75ms).
func compositeRegular(spec compositeSpec) (*graph.Graph, error) {
	q, err := topo.Composite(spec.root, spec.rootSize, spec.leaf, spec.leafSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < q.NumEdges(); i++ {
		e := q.Edge(graph.EdgeID(i))
		if lv, _ := e.Attrs.Text(topo.LevelAttr); lv == "root" {
			e.Attrs = e.Attrs.SetNum(topo.AttrMinDelay, 75).SetNum(topo.AttrMaxDelay, 350)
		} else {
			e.Attrs = e.Attrs.SetNum(topo.AttrMinDelay, 1).SetNum(topo.AttrMaxDelay, 75)
		}
	}
	return q, nil
}

// compositeIrregular stamps the random 25-175ms windows of the second
// composite workload: each edge gets an independent window inside
// [25,175]ms wide enough to keep the query satisfiable in aggregate.
func compositeIrregular(spec compositeSpec, rng *rand.Rand) (*graph.Graph, error) {
	q, err := topo.Composite(spec.root, spec.rootSize, spec.leaf, spec.leafSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < q.NumEdges(); i++ {
		e := q.Edge(graph.EdgeID(i))
		width := 50 + rng.Float64()*60       // 50-110ms wide
		lo := 25 + rng.Float64()*(150-width) // window stays inside [25,175]
		e.Attrs = e.Attrs.SetNum(topo.AttrMinDelay, lo).SetNum(topo.AttrMaxDelay, lo+width)
	}
	return q, nil
}
