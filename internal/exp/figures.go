package exp

import (
	"fmt"
	"math"
	"math/rand"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/topo"
)

// samplePair accumulates all-matches and first-match timings.
type samplePair struct {
	all   []float64
	first []float64
}

// planetlabSweep runs the Fig 8/9 workload once: subgraph queries of
// growing size on the PlanetLab host, each rep measured under every
// algorithm, returning samples[algo][size].
func planetlabSweep(cfg Config) (sizes []int, samples map[string]map[int]*samplePair, hostDesc string) {
	host := planetLabHost(cfg)
	hostDesc = fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())
	maxQ := host.NumNodes() * 3 / 4
	for s := cfg.scaled(20, 4); s <= maxQ; s += cfg.scaled(20, 4) {
		sizes = append(sizes, s)
	}
	samples = map[string]map[int]*samplePair{}
	for _, a := range algoNames {
		samples[a] = map[int]*samplePair{}
		for _, s := range sizes {
			samples[a][s] = &samplePair{}
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	for _, size := range sizes {
		for rep := 0; rep < cfg.Reps; rep++ {
			q, err := subgraphQuery(host, size, 0, rng)
			if err != nil {
				continue
			}
			p := mustProblem(q, host, DelayWindowConstraint)
			for _, algo := range algoNames {
				out := runAlgo(algo, p, core.Options{Timeout: cfg.Timeout})
				sp := samples[algo][size]
				sp.all = append(sp.all, out.AllMs)
				if !math.IsNaN(out.FirstMs) {
					sp.first = append(sp.first, out.FirstMs)
				}
			}
		}
		cfg.progressf("fig8/9: size %d done\n", size)
	}
	return sizes, samples, hostDesc
}

// Fig8And9 produces the five panels of Figs 8 and 9 from one sweep:
// per-algorithm time curves (8a/8b/8c) and the cross-algorithm
// comparisons (9a: all matches, 9b: first match).
func Fig8And9(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	sizes, samples, hostDesc := planetlabSweep(cfg)

	mk := func(id, title string, cols []string, cell func(size int, col string) Cell) *Table {
		t := &Table{ID: id, Title: title + " (" + hostDesc + ")", XName: "Nq", Cols: cols}
		for _, s := range sizes {
			row := Row{X: fmt.Sprintf("%d", s)}
			for _, c := range cols {
				row.Cells = append(row.Cells, cell(s, c))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, "times in ms, mean ± 95% CI over sampled subgraph queries")
		return t
	}

	fig8a := mk("fig8a", "ECF mean search time vs query size", []string{"ECF-all", "ECF-first"},
		func(s int, col string) Cell {
			if col == "ECF-all" {
				return summCell(samples["ECF"][s].all)
			}
			return summCell(samples["ECF"][s].first)
		})
	fig8b := mk("fig8b", "RWB time to first match vs query size", []string{"RWB-first"},
		func(s int, col string) Cell { return summCell(samples["RWB"][s].first) })
	fig8c := mk("fig8c", "LNS search time vs query size", []string{"LNS-all", "LNS-first"},
		func(s int, col string) Cell {
			if col == "LNS-all" {
				return summCell(samples["LNS"][s].all)
			}
			return summCell(samples["LNS"][s].first)
		})
	fig9a := mk("fig9a", "Mean search time, all matches", algoNames,
		func(s int, col string) Cell { return summCell(samples[col][s].all) })
	fig9b := mk("fig9b", "Time to find first match", algoNames,
		func(s int, col string) Cell { return summCell(samples[col][s].first) })
	return []*Table{fig8a, fig8b, fig8c, fig9a, fig9b}
}

// Fig10 compares feasible against infeasible twins of the same queries:
// one panel per algorithm, Match vs NoMatch mean search time.
func Fig10(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	hostDesc := fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())
	var sizes []int
	maxQ := host.NumNodes() * 3 / 4
	for s := cfg.scaled(40, 5); s <= maxQ; s += cfg.scaled(40, 5) {
		sizes = append(sizes, s)
	}
	type key struct {
		algo  string
		size  int
		match bool
	}
	samples := map[key][]float64{}
	rng := rand.New(rand.NewSource(cfg.Seed + 200))
	for _, size := range sizes {
		for rep := 0; rep < cfg.Reps; rep++ {
			q, err := subgraphQuery(host, size, 0, rng)
			if err != nil {
				continue
			}
			bad := q.Clone()
			topo.MakeInfeasible(bad, 3, rng)
			for _, algo := range algoNames {
				pm := mustProblem(q, host, DelayWindowConstraint)
				out := runAlgo(algo, pm, core.Options{Timeout: cfg.Timeout})
				samples[key{algo, size, true}] = append(samples[key{algo, size, true}], out.AllMs)
				pn := mustProblem(bad, host, DelayWindowConstraint)
				outN := runAlgo(algo, pn, core.Options{Timeout: cfg.Timeout})
				samples[key{algo, size, false}] = append(samples[key{algo, size, false}], outN.AllMs)
			}
		}
		cfg.progressf("fig10: size %d done\n", size)
	}
	var tables []*Table
	for _, algo := range algoNames {
		t := &Table{
			ID:    "fig10-" + algo,
			Title: fmt.Sprintf("%s: feasible vs infeasible query search time (%s)", algo, hostDesc),
			XName: "Nq",
			Cols:  []string{"Match", "NoMatch"},
		}
		for _, s := range sizes {
			t.Rows = append(t.Rows, Row{
				X: fmt.Sprintf("%d", s),
				Cells: []Cell{
					summCell(samples[key{algo, s, true}]),
					summCell(samples[key{algo, s, false}]),
				},
			})
		}
		t.Notes = append(t.Notes, "NoMatch twins share the topology; 3 edges get impossible delay windows")
		tables = append(tables, t)
	}
	return tables
}

// briteCases mirrors the paper's three BRITE hosts.
var briteCases = []struct {
	nodes, edges int
}{
	{1500, 3030},
	{2000, 4040},
	{2500, 5020},
}

// Fig11And12 measures subgraph queries on the three BRITE hosts: Fig 11
// reports mean all-matches time, Fig 12 time to first match.
func Fig11And12(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	var tables11, tables12 []*Table
	for ci, bc := range briteCases {
		host, err := briteHost(cfg, bc.nodes, bc.edges, cfg.Seed+int64(ci))
		if err != nil {
			panic(err)
		}
		hostDesc := fmt.Sprintf("BRITE N=%d E=%d", host.NumNodes(), host.NumEdges())
		var sizes []int
		for f := 1; f <= 8; f++ {
			sizes = append(sizes, host.NumNodes()*f/10)
		}
		samples := map[string]map[int]*samplePair{}
		for _, a := range algoNames {
			samples[a] = map[int]*samplePair{}
			for _, s := range sizes {
				samples[a][s] = &samplePair{}
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 300 + int64(ci)))
		for _, size := range sizes {
			for rep := 0; rep < cfg.Reps; rep++ {
				q, err := subgraphQuery(host, size, 0, rng)
				if err != nil {
					continue
				}
				p := mustProblem(q, host, DelayWindowConstraint)
				for _, algo := range algoNames {
					out := runAlgo(algo, p, core.Options{Timeout: cfg.Timeout})
					sp := samples[algo][size]
					sp.all = append(sp.all, out.AllMs)
					if !math.IsNaN(out.FirstMs) {
						sp.first = append(sp.first, out.FirstMs)
					}
				}
			}
			cfg.progressf("fig11/12 %s: size %d done\n", hostDesc, size)
		}
		t11 := &Table{
			ID:    fmt.Sprintf("fig11-%d", bc.nodes),
			Title: "Mean search time (" + hostDesc + ")",
			XName: "Nq", Cols: algoNames,
		}
		t12 := &Table{
			ID:    fmt.Sprintf("fig12-%d", bc.nodes),
			Title: "Time to find first match (" + hostDesc + ")",
			XName: "Nq", Cols: algoNames,
		}
		for _, s := range sizes {
			r11 := Row{X: fmt.Sprintf("%d", s)}
			r12 := Row{X: fmt.Sprintf("%d", s)}
			for _, a := range algoNames {
				r11.Cells = append(r11.Cells, summCell(samples[a][s].all))
				r12.Cells = append(r12.Cells, summCell(samples[a][s].first))
			}
			t11.Rows = append(t11.Rows, r11)
			t12.Rows = append(t12.Rows, r12)
		}
		tables11 = append(tables11, t11)
		tables12 = append(tables12, t12)
	}
	return append(tables11, tables12...)
}

// Fig13 runs the clique workload on PlanetLab: under-constrained k-cliques
// whose edges want average delay in [10,100]ms. Panel (a) is mean time to
// all matches (timeout-capped), panel (b) time to first match, where LNS
// dominates.
func Fig13(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	hostDesc := fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())
	var sizes []int
	for k := 2; k <= cfg.scaled(20, 6); k += 2 {
		sizes = append(sizes, k)
	}
	type key struct {
		algo string
		k    int
	}
	allS := map[key][]float64{}
	firstS := map[key][]float64{}
	for _, k := range sizes {
		q := cliqueQuery(k)
		p := mustProblem(q, host, AvgDelayConstraint)
		for _, algo := range algoNames {
			for rep := 0; rep < cfg.Reps; rep++ {
				out := runAlgo(algo, p, core.Options{Timeout: cfg.Timeout, Seed: int64(rep)})
				if out.Exhausted {
					// Matching the paper: timed-out "all" runs are excluded
					// so the trend reflects completed enumerations.
					allS[key{algo, k}] = append(allS[key{algo, k}], out.AllMs)
				}
				if !math.IsNaN(out.FirstMs) {
					firstS[key{algo, k}] = append(firstS[key{algo, k}], out.FirstMs)
				}
			}
		}
		cfg.progressf("fig13: clique %d done\n", k)
	}
	t13a := &Table{
		ID:    "fig13a",
		Title: "Clique mean search time, all matches (" + hostDesc + ")",
		XName: "k", Cols: algoNames,
		Notes: []string{"delay window [10,100]ms on every edge; timed-out runs excluded (paper-style)"},
	}
	t13b := &Table{
		ID:    "fig13b",
		Title: "Time to find the first clique match (" + hostDesc + ")",
		XName: "k", Cols: algoNames,
	}
	for _, k := range sizes {
		ra := Row{X: fmt.Sprintf("%d", k)}
		rb := Row{X: fmt.Sprintf("%d", k)}
		for _, a := range algoNames {
			ra.Cells = append(ra.Cells, summCell(allS[key{a, k}]))
			rb.Cells = append(rb.Cells, summCell(firstS[key{a, k}]))
		}
		t13a.Rows = append(t13a.Rows, ra)
		t13b.Rows = append(t13b.Rows, rb)
	}
	return []*Table{t13a, t13b}
}

// Fig14 runs the composite two-level workloads: (a) regular per-level
// constraints, (b) randomized 25-175ms windows. Time to first match.
func Fig14(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	hostDesc := fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())
	rng := rand.New(rand.NewSource(cfg.Seed + 400))

	mkTable := func(id, title string) *Table {
		return &Table{ID: id, Title: title + " (" + hostDesc + ")", XName: "shape(size)", Cols: algoNames}
	}
	t14a := mkTable("fig14a", "Composite queries, regular per-level constraints: time to first match")
	t14b := mkTable("fig14b", "Composite queries, random 25-175ms constraints: time to first match")

	for _, spec := range compositeSpecs {
		if spec.size() > host.NumNodes()/2 {
			continue
		}
		rowA := Row{X: fmt.Sprintf("%s(%d)", spec, spec.size())}
		rowB := Row{X: fmt.Sprintf("%s(%d)", spec, spec.size())}
		for _, algo := range algoNames {
			var fa, fb []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				qa, err := compositeRegular(spec)
				if err != nil {
					panic(err)
				}
				out := runAlgo(algo, mustProblem(qa, host, AvgDelayConstraint),
					core.Options{Timeout: cfg.Timeout, MaxSolutions: 1, Seed: int64(rep)})
				if !math.IsNaN(out.FirstMs) {
					fa = append(fa, out.FirstMs)
				}
				qb, err := compositeIrregular(spec, rng)
				if err != nil {
					panic(err)
				}
				outB := runAlgo(algo, mustProblem(qb, host, AvgDelayConstraint),
					core.Options{Timeout: cfg.Timeout, MaxSolutions: 1, Seed: int64(rep)})
				if !math.IsNaN(outB.FirstMs) {
					fb = append(fb, outB.FirstMs)
				}
			}
			rowA.Cells = append(rowA.Cells, summCell(fa))
			rowB.Cells = append(rowB.Cells, summCell(fb))
		}
		t14a.Rows = append(t14a.Rows, rowA)
		t14b.Rows = append(t14b.Rows, rowB)
		cfg.progressf("fig14: %s done\n", spec)
	}
	t14a.Notes = append(t14a.Notes, "root edges want 75-350ms, leaf edges 1-75ms")
	t14b.Notes = append(t14b.Notes, "every edge gets an independent window inside [25,175]ms")
	return []*Table{t14a, t14b}
}

// Fig15 estimates the probability of each §VII-E result quality per query
// class and algorithm under the configured timeout.
func Fig15(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 500))

	type classGen func(rep int) (*graph.Graph, *core.Problem)
	classes := []struct {
		name string
		gen  classGen
	}{
		{"subgraph", func(rep int) (*graph.Graph, *core.Problem) {
			q, err := subgraphQuery(host, cfg.scaled(60, 6), 0, rng)
			if err != nil {
				return nil, nil
			}
			return q, mustProblem(q, host, DelayWindowConstraint)
		}},
		{"subgraph-nomatch", func(rep int) (*graph.Graph, *core.Problem) {
			q, err := subgraphQuery(host, cfg.scaled(60, 6), 0, rng)
			if err != nil {
				return nil, nil
			}
			topo.MakeInfeasible(q, 3, rng)
			return q, mustProblem(q, host, DelayWindowConstraint)
		}},
		{"clique", func(rep int) (*graph.Graph, *core.Problem) {
			q := cliqueQuery(cfg.scaled(8, 4))
			return q, mustProblem(q, host, AvgDelayConstraint)
		}},
		{"composite-reg", func(rep int) (*graph.Graph, *core.Problem) {
			spec := compositeSpecs[rep%len(compositeSpecs)]
			if spec.size() > host.NumNodes()/2 {
				spec = compositeSpecs[0]
			}
			q, err := compositeRegular(spec)
			if err != nil {
				return nil, nil
			}
			return q, mustProblem(q, host, AvgDelayConstraint)
		}},
		{"composite-irr", func(rep int) (*graph.Graph, *core.Problem) {
			spec := compositeSpecs[rep%len(compositeSpecs)]
			if spec.size() > host.NumNodes()/2 {
				spec = compositeSpecs[0]
			}
			q, err := compositeIrregular(spec, rng)
			if err != nil {
				return nil, nil
			}
			return q, mustProblem(q, host, AvgDelayConstraint)
		}},
	}

	var tables []*Table
	for _, algo := range algoNames {
		t := &Table{
			ID:    "fig15-" + algo,
			Title: fmt.Sprintf("%s: probability of result quality per query class (timeout %v)", algo, cfg.Timeout),
			XName: "class",
			Cols:  []string{"all", "some", "none", "inconclusive"},
		}
		for _, cl := range classes {
			counts := map[string]int{}
			total := 0
			for rep := 0; rep < cfg.Reps*2; rep++ {
				_, p := cl.gen(rep)
				if p == nil {
					continue
				}
				out := runAlgo(algo, p, core.Options{Timeout: cfg.Timeout, Seed: int64(rep)})
				total++
				switch {
				case out.Exhausted && out.Solutions > 0:
					counts["all"]++
				case out.Exhausted:
					counts["none"]++
				case out.Solutions > 0:
					counts["some"]++
				default:
					counts["inconclusive"]++
				}
			}
			row := Row{X: cl.name}
			for _, col := range t.Cols {
				frac := 0.0
				if total > 0 {
					frac = float64(counts[col]) / float64(total)
				}
				row.Cells = append(row.Cells, Cell{Mean: frac, N: total})
			}
			t.Rows = append(t.Rows, row)
			cfg.progressf("fig15 %s: class %s done\n", algo, cl.name)
		}
		t.Notes = append(t.Notes,
			"all = exhausted with matches; none = proved infeasible;",
			"some = timed out with matches (RWB stops at the first by design); inconclusive = timed out empty-handed")
		tables = append(tables, t)
	}
	return tables
}
