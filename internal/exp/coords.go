package exp

import (
	"fmt"
	"math/rand"

	"netembed/internal/coords"
	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// Coords is an extension experiment (not a paper figure): it quantifies
// the coordinate-based model completion that lets NETEMBED answer queries
// over open, partially measured hosting networks (§II's open-network
// requirement, realized with the paper's reference [30]).
//
// Two tables: (a) Vivaldi fit error versus gossip rounds on the synthetic
// PlanetLab host, and (b) query success rates on a sparse host before and
// after completion, at several measurement coverage levels.
func Coords(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	host := planetLabHost(cfg)
	hostDesc := fmt.Sprintf("PlanetLab N=%d E=%d", host.NumNodes(), host.NumEdges())

	fit := &Table{
		ID:    "coords-fit",
		Title: "Vivaldi fit vs gossip rounds (" + hostDesc + ")",
		XName: "rounds",
		Cols:  []string{"median err %", "mean err %"},
		Notes: []string{"3D + height coordinates, 4 samples per node per round"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 900))
	sys, traj, err := coords.Embed(host, coords.EmbedConfig{
		Rounds: 64,
		Config: coords.Config{Heights: true, Seed: cfg.Seed},
	}, rng)
	if err != nil {
		panic(err)
	}
	for _, r := range []int{1, 2, 4, 8, 16, 32, 64} {
		if r-1 >= len(traj) {
			break
		}
		fit.Rows = append(fit.Rows, Row{
			X: fmt.Sprintf("%d", r),
			Cells: []Cell{
				{Mean: 100 * traj[r-1].MedianErr, N: 1},
				{Mean: 100 * traj[r-1].MeanErr, N: 1},
			},
		})
	}
	final := coords.Errors(sys, host, "avgDelay")
	fit.Notes = append(fit.Notes,
		fmt.Sprintf("final: median %.1f%%, p90 %.1f%% over %d measured edges",
			100*final.Median, 100*final.P90, final.Edges))
	cfg.progressf("coords: fit table done\n")

	unblock := &Table{
		ID:    "coords-unblock",
		Title: "Clique-query success on a sparse host, before/after completion",
		XName: "coverage",
		Cols:  []string{"before", "after", "predicted edges"},
		Notes: []string{"5-clique queries, avg-delay window 1..300ms, LNS first-match"},
	}
	for _, coverage := range []float64{0.05, 0.10, 0.20, 0.40} {
		sparse := thinHost(host, coverage, rng)
		model := service.NewModel(sparse)
		svc := service.New(model, service.Config{})
		req := service.Request{
			Query:          windowedClique(5, 1, 300),
			EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
			Algorithm:      service.AlgoLNS,
			MaxResults:     1,
			Timeout:        cfg.Timeout,
		}
		okBefore := embedSucceeds(svc, req)
		rep, err := service.Complete(model, service.CompletionConfig{
			Embed: coords.EmbedConfig{
				Rounds: 48,
				Config: coords.Config{Heights: true, Seed: cfg.Seed},
			},
			Seed: cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		okAfter := embedSucceeds(svc, req)
		unblock.Rows = append(unblock.Rows, Row{
			X: fmt.Sprintf("%.0f%%", 100*coverage),
			Cells: []Cell{
				boolCell(okBefore),
				boolCell(okAfter),
				{Mean: float64(rep.Added), N: 1},
			},
		})
		cfg.progressf("coords: coverage %.0f%% done\n", 100*coverage)
	}
	return []*Table{fit, unblock}
}

func windowedClique(n int, lo, hi float64) *graph.Graph {
	q := topo.Clique(n)
	topo.SetDelayWindow(q, lo, hi)
	return q
}

func thinHost(host *graph.Graph, keep float64, rng *rand.Rand) *graph.Graph {
	sparse := graph.NewUndirected()
	for i := 0; i < host.NumNodes(); i++ {
		n := host.Node(graph.NodeID(i))
		sparse.AddNode(n.Name, n.Attrs.Clone())
	}
	for e := 0; e < host.NumEdges(); e++ {
		if rng.Float64() > keep {
			continue
		}
		ed := host.Edge(graph.EdgeID(e))
		sparse.MustAddEdge(ed.From, ed.To, ed.Attrs.Clone())
	}
	return sparse
}

func embedSucceeds(svc *service.Service, req service.Request) bool {
	resp, err := svc.Embed(req)
	if err != nil {
		return false
	}
	return len(resp.Mappings) > 0 && resp.Status != core.StatusInconclusive
}

func boolCell(ok bool) Cell {
	if ok {
		return Cell{Note: "yes"}
	}
	return Cell{Note: "no"}
}
