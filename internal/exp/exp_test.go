package exp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"netembed/internal/core"
)

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func coreOptions(timeout time.Duration) core.Options {
	return core.Options{Timeout: timeout}
}

// quickCfg keeps harness tests fast: tiny networks, 2 reps, short timeout.
func quickCfg() Config {
	return Config{Scale: 0.1, Reps: 2, Timeout: 400 * time.Millisecond, Seed: 1}
}

func checkTable(t *testing.T, tab *Table) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" {
		t.Errorf("table missing metadata: %+v", tab)
	}
	if len(tab.Rows) == 0 {
		t.Errorf("%s: no rows", tab.ID)
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != len(tab.Cols) {
			t.Errorf("%s: row %q has %d cells, want %d", tab.ID, r.X, len(r.Cells), len(tab.Cols))
		}
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), strings.ToUpper(tab.ID)) {
		t.Errorf("%s: Render missing ID header", tab.ID)
	}
	var csv bytes.Buffer
	tab.CSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(tab.Rows)+1 {
		t.Errorf("%s: CSV has %d lines, want %d", tab.ID, len(lines), len(tab.Rows)+1)
	}
	wantCols := 1 + 2*len(tab.Cols)
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Errorf("%s: CSV line %d has %d fields, want %d", tab.ID, i, got, wantCols)
		}
	}
}

func TestFig8And9Quick(t *testing.T) {
	tables := Fig8And9(quickCfg())
	if len(tables) != 5 {
		t.Fatalf("tables = %d, want 5", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
	// Feasible-by-construction workload: ECF must find matches at every
	// size (cells carry samples).
	for _, row := range tables[0].Rows {
		if row.Cells[0].N == 0 {
			t.Errorf("fig8a row %s has no ECF-all samples", row.X)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	tables := Fig10(quickCfg())
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
}

func TestFig11And12Quick(t *testing.T) {
	cfg := quickCfg()
	cfg.Reps = 1 // three hosts × eight sizes × three algorithms is plenty
	tables := Fig11And12(cfg)
	if len(tables) != 6 {
		t.Fatalf("tables = %d, want 6 (3 hosts × 2 figures)", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
}

func TestFig13Quick(t *testing.T) {
	tables := Fig13(quickCfg())
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
}

func TestFig14Quick(t *testing.T) {
	tables := Fig14(quickCfg())
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
}

func TestFig15Quick(t *testing.T) {
	tables := Fig15(quickCfg())
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3 (one per algorithm)", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
		// Fractions must sum to ~1 per class.
		for _, row := range tab.Rows {
			sum := 0.0
			for _, c := range row.Cells {
				sum += c.Mean
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s %s: fractions sum to %v", tab.ID, row.X, sum)
			}
		}
	}
}

func TestBaselinesQuick(t *testing.T) {
	tables := Baselines(quickCfg())
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
	// Complete algorithms must have 100% success on the feasible workload.
	success := tables[1]
	for _, row := range success.Rows {
		for i, col := range success.Cols {
			if col == "ECF" || col == "RWB" || col == "LNS" || col == "NaiveDFS" {
				if row.Cells[i].Mean < 1 {
					t.Errorf("%s at Nq=%s: success %.2f, want 1.0", col, row.X, row.Cells[i].Mean)
				}
			}
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	tables := Ablations(quickCfg())
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	checkTable(t, tables[0])
	if len(tables[0].Rows) != 9 {
		t.Errorf("variants = %d, want 9", len(tables[0].Rows))
	}
}

func TestRunAlgoParallelAndUnknown(t *testing.T) {
	cfg := quickCfg()
	host := planetLabHost(cfg)
	q, err := subgraphQuery(host, 5, 0.1, randFor(1))
	if err != nil {
		t.Fatal(err)
	}
	p := mustProblem(q, host, DelayWindowConstraint)
	out := runAlgo("ParallelECF", p, coreOptions(2*time.Second))
	if out.Solutions == 0 {
		t.Error("ParallelECF found nothing")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm did not panic")
		}
	}()
	runAlgo("quantum", p, coreOptions(time.Second))
}

func TestWriteGnuplot(t *testing.T) {
	tab := &Table{
		ID:    "figX",
		Title: `Demo "quoted" title`,
		XName: "Nq",
		Cols:  []string{"ECF", "RWB"},
		Rows:  []Row{{X: "10", Cells: []Cell{{Mean: 1, N: 1}, {Mean: 2, N: 1}}}},
	}
	var buf bytes.Buffer
	if err := tab.WriteGnuplot(&buf, "figX.csv"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"set output \"figX.png\"",
		"using 1:2:3 with yerrorlines title \"ECF\"",
		"using 1:4:5 with yerrorlines title \"RWB\"",
		"set xlabel \"Nq\"",
		"Demo 'quoted' title", // double quotes escaped for gnuplot
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gnuplot script missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Reps != 5 || c.Timeout != 10*time.Second || c.Seed != 1 {
		t.Errorf("defaults = %+v", c)
	}
	if got := c.scaled(100, 5); got != 100 {
		t.Errorf("scaled(100) = %d", got)
	}
	small := Config{Scale: 0.01}.withDefaults()
	if got := small.scaled(100, 5); got != 5 {
		t.Errorf("floor not applied: %d", got)
	}
}

func TestCellString(t *testing.T) {
	if got := (Cell{Note: "x"}).String(); got != "x" {
		t.Errorf("note cell = %q", got)
	}
	if got := (Cell{Mean: 1.25, CI: 0.5, N: 3}).String(); got != "1.2 ±0.5" {
		t.Errorf("ci cell = %q", got)
	}
	if got := (Cell{Mean: 2, N: 1}).String(); got != "2.0" {
		t.Errorf("plain cell = %q", got)
	}
}

func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg()
	cfg.Progress = &buf
	Fig13(cfg)
	if !strings.Contains(buf.String(), "fig13") {
		t.Error("no progress lines written")
	}
}

func TestCoordsQuick(t *testing.T) {
	tables := Coords(quickCfg())
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab)
	}
	// The fit error must improve monotonically enough that the last
	// sampled round beats the first by a clear margin.
	fit := tables[0]
	first := fit.Rows[0].Cells[0].Mean
	last := fit.Rows[len(fit.Rows)-1].Cells[0].Mean
	if last >= first {
		t.Errorf("fit error did not improve: round1 %.1f%%, final %.1f%%", first, last)
	}
	// Completion must never *reduce* feasibility: any "yes" before stays
	// a "yes" after.
	unblock := tables[1]
	for _, row := range unblock.Rows {
		if row.Cells[0].Note == "yes" && row.Cells[1].Note != "yes" {
			t.Errorf("coverage %s: completion broke a previously feasible query", row.X)
		}
	}
}
