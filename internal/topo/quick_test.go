package topo

import (
	"math/rand"
	"testing"

	"netembed/internal/graph"
)

// Randomized generator invariants: whatever the configuration, the
// generators must deliver exactly the requested sizes, connectivity, and
// positive delay attributes — the properties every downstream experiment
// silently assumes.

func TestQuickBriteInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(180)
		// Targets at or above the BA model's natural output (M=2 yields
		// at most 2(N-2)+1 edges); below that Brite reports an error,
		// which TestBriteTargetBelowModel pins.
		e := 2*n + rng.Intn(n)
		g, err := Brite(BriteConfig{N: n, TargetEdges: e}, rng)
		if err != nil {
			t.Fatalf("trial %d (N=%d E=%d): %v", trial, n, e, err)
		}
		if g.NumNodes() != n {
			t.Fatalf("trial %d: %d nodes, want %d", trial, g.NumNodes(), n)
		}
		if g.NumEdges() != e {
			t.Fatalf("trial %d: %d edges, want exactly %d", trial, g.NumEdges(), e)
		}
		if !g.IsConnected() {
			t.Fatalf("trial %d: disconnected host", trial)
		}
		assertDelaysPositive(t, trial, g)
	}
}

// TestBriteTargetBelowModel pins the explicit-error contract: asking for
// fewer edges than the growth model emits is refused, not rounded.
func TestBriteTargetBelowModel(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	_, err := Brite(BriteConfig{N: 100, TargetEdges: 120}, rng) // BA M=2 ⇒ ~197 edges
	if err == nil {
		t.Fatal("Brite accepted an unreachable sparse target")
	}
}

func TestQuickTransitStubInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		numTransit := 3 + rng.Intn(5)
		stubsPerTransit := 1 + rng.Intn(3)
		stubSize := 2 + rng.Intn(5)
		g, err := TransitStub(numTransit, stubsPerTransit, stubSize, rng)
		if err != nil {
			t.Fatalf("trial %d (%d/%d/%d): %v", trial, numTransit, stubsPerTransit, stubSize, err)
		}
		want := numTransit * (1 + stubsPerTransit*stubSize)
		if g.NumNodes() != want {
			t.Fatalf("trial %d: %d nodes, want %d", trial, g.NumNodes(), want)
		}
		if !g.IsConnected() {
			t.Fatalf("trial %d: disconnected transit-stub topology", trial)
		}
		assertDelaysPositive(t, trial, g)
	}
}

func TestQuickSubgraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	host, err := Brite(BriteConfig{N: 120, TargetEdges: 360}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		e := n - 1 + rng.Intn(n)
		q, planted, err := Subgraph(host, n, e, rng)
		if err != nil {
			// Dense edge requests can be unsatisfiable on a sparse host;
			// that is a legal answer, not an invariant violation.
			continue
		}
		if q.NumNodes() != n {
			t.Fatalf("trial %d: query has %d nodes, want %d", trial, q.NumNodes(), n)
		}
		if !q.IsConnected() {
			t.Fatalf("trial %d: sampled query disconnected", trial)
		}
		if len(planted) != n {
			t.Fatalf("trial %d: planted mapping covers %d nodes", trial, len(planted))
		}
		// The planted identity embedding must preserve adjacency.
		for i := 0; i < q.NumEdges(); i++ {
			qe := q.Edge(graph.EdgeID(i))
			if !host.HasEdge(planted[qe.From], planted[qe.To]) {
				t.Fatalf("trial %d: planted image misses host edge for query edge %d", trial, i)
			}
		}
		// And be injective.
		seen := map[graph.NodeID]bool{}
		for _, r := range planted {
			if seen[r] {
				t.Fatalf("trial %d: planted mapping not injective", trial)
			}
			seen[r] = true
		}
	}
}

func assertDelaysPositive(t *testing.T, trial int, g *graph.Graph) {
	t.Helper()
	for i := 0; i < g.NumEdges(); i++ {
		attrs := g.Edge(graph.EdgeID(i)).Attrs
		for _, name := range []string{"minDelay", "avgDelay", "maxDelay"} {
			if v, ok := attrs.Float(name); ok && v <= 0 {
				t.Fatalf("trial %d: edge %d has non-positive %s = %v", trial, i, name, v)
			}
		}
	}
}
