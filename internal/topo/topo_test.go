package topo

import (
	"math/rand"
	"testing"

	"netembed/internal/graph"
)

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("ring(5) = %v", g)
	}
	for i := 0; i < 5; i++ {
		if g.Degree(graph.NodeID(i)) != 2 {
			t.Errorf("ring degree(%d) = %d", i, g.Degree(graph.NodeID(i)))
		}
	}
	if !g.IsConnected() {
		t.Error("ring disconnected")
	}
	// Degenerate sizes.
	if g := Ring(2); g.NumEdges() != 1 {
		t.Errorf("ring(2) edges = %d, want 1", g.NumEdges())
	}
	if g := Ring(1); g.NumEdges() != 0 {
		t.Errorf("ring(1) edges = %d", g.NumEdges())
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.NumNodes() != 6 || g.NumEdges() != 5 {
		t.Fatalf("star(6) = %v", g)
	}
	if g.Degree(0) != 5 {
		t.Errorf("hub degree = %d", g.Degree(0))
	}
	for i := 1; i < 6; i++ {
		if g.Degree(graph.NodeID(i)) != 1 {
			t.Errorf("leaf degree(%d) = %d", i, g.Degree(graph.NodeID(i)))
		}
	}
}

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.NumEdges() != 15 {
		t.Fatalf("clique(6) edges = %d", g.NumEdges())
	}
	if g.Density() != 1 {
		t.Errorf("clique density = %v", g.Density())
	}
}

func TestLineAndTreeAndGrid(t *testing.T) {
	if g := Line(4); g.NumEdges() != 3 || g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("line(4) wrong: %v", g)
	}
	tr := Tree(2, 3) // 1+2+4+8 = 15 nodes, 14 edges
	if tr.NumNodes() != 15 || tr.NumEdges() != 14 {
		t.Errorf("tree(2,3) = %v", tr)
	}
	if !tr.IsConnected() {
		t.Error("tree disconnected")
	}
	gr := Grid(3, 4)
	if gr.NumNodes() != 12 || gr.NumEdges() != 3*3+2*4 {
		t.Errorf("grid(3,4) = %v", gr)
	}
	if !gr.IsConnected() {
		t.Error("grid disconnected")
	}
}

func TestRegularDispatch(t *testing.T) {
	for _, k := range []Kind{KindRing, KindStar, KindClique, KindLine} {
		g, err := Regular(k, 4)
		if err != nil || g.NumNodes() != 4 {
			t.Errorf("Regular(%s): %v %v", k, g, err)
		}
	}
	if _, err := Regular("moebius", 4); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestComposite(t *testing.T) {
	// Ring of 3 clusters, each a star of 4 nodes.
	g, err := Composite(KindRing, 3, KindStar, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("composite nodes = %d", g.NumNodes())
	}
	// Edges: 3 clusters × 3 star edges + 3 ring edges.
	if g.NumEdges() != 12 {
		t.Fatalf("composite edges = %d", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("composite disconnected")
	}
	root, leaf := 0, 0
	for i := 0; i < g.NumEdges(); i++ {
		switch lv, _ := g.Edge(graph.EdgeID(i)).Attrs.Text(LevelAttr); lv {
		case "root":
			root++
		case "leaf":
			leaf++
		default:
			t.Fatalf("edge %d has no level attr", i)
		}
	}
	if root != 3 || leaf != 9 {
		t.Errorf("root=%d leaf=%d", root, leaf)
	}
	if _, err := Composite("bogus", 3, KindStar, 4); err == nil {
		t.Error("bad root kind accepted")
	}
	if _, err := Composite(KindRing, 3, "bogus", 4); err == nil {
		t.Error("bad leaf kind accepted")
	}
}

func TestBriteBA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := Brite(BriteConfig{N: 1500, TargetEdges: 3030}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1500 || g.NumEdges() != 3030 {
		t.Fatalf("brite = %v, want 1500/3030", g)
	}
	if !g.IsConnected() {
		t.Error("BA graph disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Preferential attachment yields a heavy tail: max degree well above
	// the mean (which is ~4).
	maxDeg := 0
	for i := 0; i < g.NumNodes(); i++ {
		if d := g.Degree(graph.NodeID(i)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 15 {
		t.Errorf("max degree = %d, expected heavy tail", maxDeg)
	}
	// Attributes present and ordered.
	for i := 0; i < g.NumEdges(); i++ {
		a := g.Edge(graph.EdgeID(i)).Attrs
		min, ok1 := a.Float("minDelay")
		avg, ok2 := a.Float("avgDelay")
		max, ok3 := a.Float("maxDelay")
		if !ok1 || !ok2 || !ok3 || min > avg || avg > max || min <= 0 {
			t.Fatalf("edge %d delays bad: %v %v %v", i, min, avg, max)
		}
	}
	for i := 0; i < g.NumNodes(); i++ {
		a := g.Node(graph.NodeID(i)).Attrs
		if !a.Has("x") || !a.Has("y") || !a.Has("cpu") || !a.Has("osType") {
			t.Fatalf("node %d attrs incomplete: %v", i, a)
		}
	}
}

func TestBriteWaxman(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := Brite(BriteConfig{N: 300, Model: Waxman}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Error("waxman graph must be patched to connectivity")
	}
}

func TestBriteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Brite(BriteConfig{N: 1}, rng); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Brite(BriteConfig{N: 10, TargetEdges: 5}, rng); err == nil {
		t.Error("too few edges accepted")
	}
	if _, err := Brite(BriteConfig{N: 10, TargetEdges: 100}, rng); err == nil {
		t.Error("too many edges accepted")
	}
	if _, err := Brite(BriteConfig{N: 10, Model: Model(99)}, rng); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestTransitStub(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := TransitStub(4, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 4 transit + 4*2 gateways + 4*2*2 leaves = 28 nodes.
	if g.NumNodes() != 28 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Error("transit-stub disconnected")
	}
	if _, err := TransitStub(2, 1, 1, rng); err == nil {
		t.Error("tiny transit ring accepted")
	}
}

func TestSubgraphPlantedAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	host, err := Brite(BriteConfig{N: 200, TargetEdges: 404}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		e := n - 1 + rng.Intn(n)
		q, plant, err := Subgraph(host, n, e, rng)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumNodes() != n {
			t.Fatalf("trial %d: nodes = %d, want %d", trial, q.NumNodes(), n)
		}
		if q.NumEdges() < n-1 {
			t.Fatalf("trial %d: %d edges < spanning tree", trial, q.NumEdges())
		}
		if q.NumEdges() > e {
			t.Fatalf("trial %d: %d edges > requested %d", trial, q.NumEdges(), e)
		}
		if !q.IsConnected() {
			t.Fatalf("trial %d: query disconnected", trial)
		}
		if len(plant) != n {
			t.Fatalf("trial %d: plant size %d", trial, len(plant))
		}
		// The planted mapping must be injective and edge-preserving.
		seen := map[graph.NodeID]bool{}
		for _, h := range plant {
			if seen[h] {
				t.Fatalf("trial %d: plant not injective", trial)
			}
			seen[h] = true
		}
		for i := 0; i < q.NumEdges(); i++ {
			qe := q.Edge(graph.EdgeID(i))
			if !host.HasEdge(plant[qe.From], plant[qe.To]) {
				t.Fatalf("trial %d: query edge %d not present in host", trial, i)
			}
		}
	}
}

func TestSubgraphErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	host := Ring(10)
	if _, _, err := Subgraph(host, 11, 10, rng); err == nil {
		t.Error("oversized sample accepted")
	}
	if _, _, err := Subgraph(host, 0, 0, rng); err == nil {
		t.Error("zero sample accepted")
	}
	// Disconnected host: component too small.
	disc := graph.NewUndirected()
	disc.AddNodes(4)
	disc.MustAddEdge(0, 1, nil)
	disc.MustAddEdge(2, 3, nil)
	fails := 0
	for i := 0; i < 20; i++ {
		if _, _, err := Subgraph(disc, 3, 2, rng); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Error("sampling 3 nodes from components of size 2 never failed")
	}
}

func TestWidenDelayWindows(t *testing.T) {
	g := Line(3)
	g.Edge(0).Attrs = graph.Attrs{}.SetNum(AttrMinDelay, 100).SetNum(AttrMaxDelay, 200)
	g.Edge(1).Attrs = graph.Attrs{}.SetNum(AttrAvgDelay, 50) // no window: untouched
	WidenDelayWindows(g, 0.1)
	if lo, _ := g.Edge(0).Attrs.Float(AttrMinDelay); lo != 90 {
		t.Errorf("min = %v, want 90", lo)
	}
	if hi, _ := g.Edge(0).Attrs.Float(AttrMaxDelay); hi != 220.00000000000003 && hi != 220 {
		t.Errorf("max = %v, want 220", hi)
	}
	if g.Edge(1).Attrs.Has(AttrMinDelay) {
		t.Error("windowless edge gained a window")
	}
}

func TestSetDelayWindow(t *testing.T) {
	g := Clique(4)
	SetDelayWindow(g, 10, 100)
	for i := 0; i < g.NumEdges(); i++ {
		lo, _ := g.Edge(graph.EdgeID(i)).Attrs.Float(AttrMinDelay)
		hi, _ := g.Edge(graph.EdgeID(i)).Attrs.Float(AttrMaxDelay)
		if lo != 10 || hi != 100 {
			t.Fatalf("edge %d window = [%v,%v]", i, lo, hi)
		}
	}
}

func TestMakeInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := Clique(5)
	SetDelayWindow(g, 10, 100)
	MakeInfeasible(g, 3, rng)
	negative := 0
	for i := 0; i < g.NumEdges(); i++ {
		if hi, _ := g.Edge(graph.EdgeID(i)).Attrs.Float(AttrMaxDelay); hi < 0 {
			negative++
		}
	}
	if negative != 3 {
		t.Errorf("infeasible edges = %d, want 3", negative)
	}
	// k larger than edge count clamps.
	MakeInfeasible(g, 100, rng)
	for i := 0; i < g.NumEdges(); i++ {
		if hi, _ := g.Edge(graph.EdgeID(i)).Attrs.Float(AttrMaxDelay); hi > 0 {
			t.Fatal("clamped MakeInfeasible left a feasible edge")
		}
	}
	// Edgeless graph: no-op.
	MakeInfeasible(graph.NewUndirected(), 1, rng)
}

func BenchmarkBrite1500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := Brite(BriteConfig{N: 1500, TargetEdges: 3030}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubgraph100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	host, err := Brite(BriteConfig{N: 1500, TargetEdges: 3030}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Subgraph(host, 100, 150, rng); err != nil {
			b.Fatal(err)
		}
	}
}
