package topo

import (
	"fmt"
	"math"
	"math/rand"

	"netembed/internal/graph"
)

// Model selects the growth model of the BRITE-style generator.
type Model int

// Growth models. BarabasiAlbert is BRITE's default incremental
// preferential-attachment model; Waxman wires nodes with a
// distance-decaying probability.
const (
	BarabasiAlbert Model = iota
	Waxman
)

// BriteConfig parameterizes the synthetic Internet topology generator that
// substitutes for the BRITE tool (paper §VII-C). Nodes are placed on a
// PlaneSize×PlaneSize plane and link delays derive from Euclidean distance.
type BriteConfig struct {
	N           int     // number of nodes
	TargetEdges int     // exact edge count; 0 means "whatever the model yields"
	M           int     // BA: links added per new node (default 2)
	Model       Model   // growth model
	Alpha       float64 // Waxman: maximum link probability (default 0.15)
	Beta        float64 // Waxman: distance sensitivity (default 0.2)
	PlaneSize   float64 // coordinate range (default 1000)
	DelayScale  float64 // ms of avg delay per unit distance (default 0.05)
	Jitter      float64 // relative spread of min/max around avg (default 0.25)
}

func (c *BriteConfig) applyDefaults() {
	if c.M == 0 {
		c.M = 2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Beta == 0 {
		c.Beta = 0.2
	}
	if c.PlaneSize == 0 {
		c.PlaneSize = 1000
	}
	if c.DelayScale == 0 {
		c.DelayScale = 0.05
	}
	if c.Jitter == 0 {
		c.Jitter = 0.25
	}
}

// Brite generates a connected host topology per cfg. Nodes carry x/y
// coordinates, cpu, mem and osType attributes; edges carry minDelay,
// avgDelay and maxDelay in milliseconds, so the same delay-window
// constraints used against PlanetLab work against synthetic hosts.
func Brite(cfg BriteConfig, rng *rand.Rand) (*graph.Graph, error) {
	cfg.applyDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("topo: brite needs at least 2 nodes, got %d", cfg.N)
	}
	if cfg.TargetEdges != 0 {
		if min := cfg.N - 1; cfg.TargetEdges < min {
			return nil, fmt.Errorf("topo: %d edges cannot connect %d nodes", cfg.TargetEdges, cfg.N)
		}
		if max := cfg.N * (cfg.N - 1) / 2; cfg.TargetEdges > max {
			return nil, fmt.Errorf("topo: %d edges exceed the %d-node maximum %d", cfg.TargetEdges, cfg.N, max)
		}
	}

	g := graph.NewUndirected()
	xs := make([]float64, cfg.N)
	ys := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		xs[i] = rng.Float64() * cfg.PlaneSize
		ys[i] = rng.Float64() * cfg.PlaneSize
		attrs := graph.Attrs{}.
			SetNum("x", xs[i]).
			SetNum("y", ys[i]).
			SetNum("cpu", float64(1+rng.Intn(8))).
			SetNum("mem", float64(512*(1+rng.Intn(16)))).
			SetStr("osType", []string{"linux", "linux", "linux", "freebsd"}[rng.Intn(4)])
		g.AddNode("", attrs)
	}

	addEdge := func(u, v graph.NodeID) bool {
		if u == v || g.HasEdge(u, v) {
			return false
		}
		d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
		avg := d*cfg.DelayScale + 0.1 + rng.Float64()*0.5
		attrs := graph.Attrs{}.
			SetNum("avgDelay", avg).
			SetNum("minDelay", avg*(1-cfg.Jitter*rng.Float64())).
			SetNum("maxDelay", avg*(1+cfg.Jitter*rng.Float64()))
		g.MustAddEdge(u, v, attrs)
		return true
	}

	switch cfg.Model {
	case BarabasiAlbert:
		briteBA(g, cfg, rng, addEdge)
	case Waxman:
		briteWaxman(g, cfg, rng, xs, ys, addEdge)
	default:
		return nil, fmt.Errorf("topo: unknown model %d", cfg.Model)
	}

	// Top up the exact edge budget with random extra links, as BRITE does
	// when asked for a precise assortativity-neutral density. The growth
	// model only ever adds edges, so a target below the model's natural
	// output is unreachable — report that instead of silently overshooting
	// (lower M, or use Waxman with a smaller Alpha, to get sparser hosts).
	if cfg.TargetEdges != 0 {
		if g.NumEdges() > cfg.TargetEdges {
			return nil, fmt.Errorf("topo: %s model produced %d edges, above the %d target",
				map[Model]string{BarabasiAlbert: "BA", Waxman: "waxman"}[cfg.Model],
				g.NumEdges(), cfg.TargetEdges)
		}
		for g.NumEdges() < cfg.TargetEdges {
			u := graph.NodeID(rng.Intn(cfg.N))
			v := graph.NodeID(rng.Intn(cfg.N))
			addEdge(u, v)
		}
	}
	return g, nil
}

// briteBA grows the graph by preferential attachment: m0 = M+1 seed nodes
// in a path, then every new node attaches M links biased by degree.
func briteBA(g *graph.Graph, cfg BriteConfig, rng *rand.Rand, addEdge func(u, v graph.NodeID) bool) {
	m0 := cfg.M + 1
	if m0 > cfg.N {
		m0 = cfg.N
	}
	// endpoints holds one entry per half-edge, so sampling it uniformly is
	// degree-proportional sampling.
	var endpoints []graph.NodeID
	for i := 1; i < m0; i++ {
		if addEdge(graph.NodeID(i-1), graph.NodeID(i)) {
			endpoints = append(endpoints, graph.NodeID(i-1), graph.NodeID(i))
		}
	}
	for v := m0; v < cfg.N; v++ {
		added := 0
		for tries := 0; added < cfg.M && tries < 50*cfg.M; tries++ {
			var u graph.NodeID
			if len(endpoints) == 0 {
				u = graph.NodeID(rng.Intn(v))
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if addEdge(graph.NodeID(v), u) {
				endpoints = append(endpoints, graph.NodeID(v), u)
				added++
			}
		}
		// Degenerate fallback: connect to the previous node so the graph
		// stays connected even if sampling kept hitting duplicates.
		if added == 0 && addEdge(graph.NodeID(v), graph.NodeID(v-1)) {
			endpoints = append(endpoints, graph.NodeID(v), graph.NodeID(v-1))
		}
	}
}

// briteWaxman wires each pair with probability alpha*exp(-d/(beta*L)) and
// then threads a random spanning path through any disconnected remainder.
func briteWaxman(g *graph.Graph, cfg BriteConfig, rng *rand.Rand, xs, ys []float64, addEdge func(u, v graph.NodeID) bool) {
	L := cfg.PlaneSize * math.Sqrt2
	budget := cfg.TargetEdges
	for u := 0; u < cfg.N && (budget == 0 || g.NumEdges() < budget); u++ {
		for v := u + 1; v < cfg.N; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			p := cfg.Alpha * math.Exp(-d/(cfg.Beta*L))
			if rng.Float64() < p {
				addEdge(graph.NodeID(u), graph.NodeID(v))
				if budget != 0 && g.NumEdges() >= budget {
					break
				}
			}
		}
	}
	// Ensure connectivity by linking successive components.
	comps := g.ConnectedComponents()
	for i := 1; i < len(comps); i++ {
		u := comps[i-1][rng.Intn(len(comps[i-1]))]
		v := comps[i][rng.Intn(len(comps[i]))]
		addEdge(u, v)
	}
}

// TransitStub generates a small GT-ITM-style two-tier topology: a ring of
// transit routers with chords, each transit router sponsoring a stub
// domain (a star of stubSize nodes). It exercises hierarchical hosting
// networks in tests and examples.
func TransitStub(numTransit, stubsPerTransit, stubSize int, rng *rand.Rand) (*graph.Graph, error) {
	if numTransit < 3 {
		return nil, fmt.Errorf("topo: transit ring needs >= 3 routers, got %d", numTransit)
	}
	cfg := BriteConfig{}
	cfg.applyDefaults()
	g := graph.NewUndirected()
	mkAttrs := func(base float64) graph.Attrs {
		avg := base + rng.Float64()*base/2
		return graph.Attrs{}.
			SetNum("avgDelay", avg).
			SetNum("minDelay", avg*0.9).
			SetNum("maxDelay", avg*1.2)
	}
	transit := make([]graph.NodeID, numTransit)
	for i := range transit {
		transit[i] = g.AddNode(fmt.Sprintf("t%d", i), graph.Attrs{}.SetStr("tier", "transit"))
	}
	for i := range transit {
		g.MustAddEdge(transit[i], transit[(i+1)%numTransit], mkAttrs(40))
	}
	for i := 0; i < numTransit/2; i++ { // chords
		u := transit[rng.Intn(numTransit)]
		v := transit[rng.Intn(numTransit)]
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, mkAttrs(40))
		}
	}
	for i, t := range transit {
		for s := 0; s < stubsPerTransit; s++ {
			gw := g.AddNode(fmt.Sprintf("t%d.s%d.gw", i, s), graph.Attrs{}.SetStr("tier", "stub"))
			g.MustAddEdge(t, gw, mkAttrs(10))
			for k := 0; k < stubSize-1; k++ {
				leaf := g.AddNode(fmt.Sprintf("t%d.s%d.n%d", i, s, k), graph.Attrs{}.SetStr("tier", "stub"))
				g.MustAddEdge(gw, leaf, mkAttrs(2))
			}
		}
	}
	return g, nil
}
