package topo

import (
	"fmt"

	"netembed/internal/graph"
)

// This file builds the adversarial search-engine workloads used by the
// FC-vs-chronological property tests and benchmarks: instances whose
// filter matrices look harmless (every query edge individually
// satisfiable, every tight-root base set non-empty) but whose joint
// infeasibility or skewed subtree hardness only surfaces deep in the
// permutations tree — the regime where forward checking's early
// wipeouts, conflict-directed backjumping and work stealing earn their
// keep.

// BackjumpAdversary builds a no-match instance that punishes
// chronological backtracking. The host has four pools — A (roots), M (a
// branchy middle the conflict never touches), X and Y — and is
// triangle-free by construction, while the query chains
// q0–q1–…–q_mid through M and hangs a triangle q0–x, x–y, q0–y off the
// root. Every query edge is satisfiable on many host edges and every
// per-arc union covers its full pool (so the tight-root filter build
// cannot refute the query), but the triangle can close nowhere: a
// chronological searcher re-enumerates the entire middle subtree for
// every root before re-discovering the root–triangle conflict, while
// forward checking wipes the triangle out at its first level and
// conflict-directed backjumping vaults the middle levels.
//
// nA must be a positive multiple of 16 (it also sizes the X and Y
// pools); nM must avoid the circulant/spacing collisions checked below;
// mid ≥ 1 is the number of middle chain nodes. The returned host has
// nA·3 + nM nodes and the query mid+3.
func BackjumpAdversary(nA, nM, mid int) (query, host *graph.Graph, err error) {
	if nA <= 0 || nA%16 != 0 {
		return nil, nil, fmt.Errorf("topo: BackjumpAdversary nA=%d must be a positive multiple of 16", nA)
	}
	if mid < 1 {
		return nil, nil, fmt.Errorf("topo: BackjumpAdversary mid=%d must be >= 1", mid)
	}
	if nM < 6 {
		return nil, nil, fmt.Errorf("topo: BackjumpAdversary nM=%d must be >= 6 (the {1,5} circulant needs it)", nM)
	}
	for k := 1; k <= 7; k++ {
		if d := (7 * k) % nM; d == 1 || d == 5 || d == nM-1 || d == nM-5 {
			return nil, nil, fmt.Errorf("topo: BackjumpAdversary A–M spacing collides with the circulant at nM=%d", nM)
		}
	}
	g := graph.NewUndirected()
	nX, nY := nA, nA
	a0 := 0
	m0 := a0 + nA
	x0 := m0 + nM
	y0 := x0 + nX
	g.AddNodes(y0 + nY)
	// M–M: circulant with offsets {1,5} — no a+b=c over ±{1,5}, so no
	// triangles. A–M: each root reaches 8 middle entries spaced 7 apart,
	// and 7k mod nM never lands in ±{1,5} (checked above), so no A–M–M
	// triangle closes either.
	for j := 0; j < nM; j++ {
		g.AddEdge(graph.NodeID(m0+j), graph.NodeID(m0+(j+1)%nM), nil)
		g.AddEdge(graph.NodeID(m0+j), graph.NodeID(m0+(j+5)%nM), nil)
	}
	for i := 0; i < nA; i++ {
		for k := 0; k < 8; k++ {
			g.AddEdge(graph.NodeID(a0+i), graph.NodeID(m0+(i*11+7*k)%nM), nil)
		}
	}
	// A–X: a_i partners x_j for j ≡ i (mod 16); A–Y: a_i – y_i;
	// X–Y: x_j – y_{j+1 mod nY}. For any root a_i and any of its X
	// partners x_j: {y_i} ∩ {y_{j+1}} requires j+1 ≡ i (mod nY), which
	// with j ≡ i (mod 16) would force i-1 ≡ i (mod 16) — impossible, so
	// no A–X–Y triangle closes, while each union still covers its pool.
	for i := 0; i < nA; i++ {
		for j := i % 16; j < nX; j += 16 {
			g.AddEdge(graph.NodeID(a0+i), graph.NodeID(x0+j), nil)
		}
		g.AddEdge(graph.NodeID(a0+i), graph.NodeID(y0+i), nil)
	}
	for j := 0; j < nX; j++ {
		g.AddEdge(graph.NodeID(x0+j), graph.NodeID(y0+(j+1)%nY), nil)
	}

	q := graph.NewUndirected()
	q.AddNodes(mid + 3) // q0, q1..q_mid, x, y
	for i := 0; i < mid; i++ {
		q.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), nil)
	}
	xq, yq := graph.NodeID(mid+1), graph.NodeID(mid+2)
	q.MustAddEdge(0, xq, nil)
	q.MustAddEdge(xq, yq, nil)
	q.MustAddEdge(0, yq, nil)
	return q, g, nil
}

// SeedAttr marks the hosts a SkewedRing query's seed node may map to.
const SeedAttr = "seed"

// SkewedRing builds a skewed-hardness parallel-search instance: an
// odd-length ring query (ringLen must be odd) whose node 0 carries
// SeedAttr (pair it with the node constraint
// "!has(vNode.seed) || has(rNode.seed)"), and a host where exactly one
// seed-marked root owns a combinatorially large — and entirely
// fruitless — subtree, while the other nDecoys seed candidates die
// after a two-visit probe.
//
// The heavy root g0 fans out (window-compatible) into the L side of a
// complete bipartite K_{m,m} whose cross edges are all in window: the
// search walks every alternating L–R path of length ringLen-1, but an
// odd ring closing back onto g0 would need an odd cycle through a
// bipartite graph, so every branch dies deep with zero solutions — and
// the parity conflict chains through adjacent levels, so
// conflict-directed backjumping cannot shortcut it either: the subtree
// must genuinely be searched. Each decoy's only in-window edge leads to
// a pendant stub whose only in-window continuation is back to the
// decoy, so its subtree dies immediately (out-of-window spokes keep
// every seed in the tight-root base set).
//
// Static first-level sharding pins the heavy root (plus a few dead
// decoys) to one worker while the rest of the pool idles; work stealing
// splits g0's second level — the m-way fan into L — across the pool.
// Ring edges should be constrained to the delay window [40, 60].
func SkewedRing(m, nDecoys, ringLen int) (query, host *graph.Graph) {
	good := graph.Attrs{}.SetNum("minDelay", 45).SetNum("avgDelay", 50).SetNum("maxDelay", 55)
	bad := graph.Attrs{}.SetNum("minDelay", 450).SetNum("avgDelay", 500).SetNum("maxDelay", 550)

	g := graph.NewUndirected()
	g.AddNode("", graph.Attrs{}.SetBool(SeedAttr, true)) // node 0: the heavy root
	l0 := 1
	r0 := l0 + m
	for i := 0; i < 2*m; i++ {
		g.AddNode("", nil)
	}
	for u := 0; u < m; u++ {
		g.MustAddEdge(0, graph.NodeID(l0+u), good) // g0 fans into L only
		for v := 0; v < m; v++ {
			g.MustAddEdge(graph.NodeID(l0+u), graph.NodeID(r0+v), good)
		}
	}
	for d := 0; d < nDecoys; d++ {
		decoy := g.AddNode("", graph.Attrs{}.SetBool(SeedAttr, true))
		stub := g.AddNode("", nil)
		g.MustAddEdge(decoy, stub, good)
		// Out-of-window spokes keep degrees above the ring's degree
		// filter without opening any real subtree.
		g.MustAddEdge(decoy, graph.NodeID(l0+d%m), bad)
		g.MustAddEdge(stub, graph.NodeID(r0+d%m), bad)
	}

	q := graph.NewUndirected()
	q.AddNode("", graph.Attrs{}.SetBool(SeedAttr, true))
	for i := 1; i < ringLen; i++ {
		q.AddNode("", nil)
	}
	win := graph.Attrs{}.SetNum("minDelay", 40).SetNum("maxDelay", 60)
	for i := 0; i < ringLen; i++ {
		q.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%ringLen), win)
	}
	return q, g
}
