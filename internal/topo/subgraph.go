package topo

import (
	"fmt"
	"math/rand"

	"netembed/internal/graph"
)

// Subgraph samples a random connected subgraph of host with nNodes nodes
// and (about) nEdges edges, the paper's primary query workload (§VII-A,
// first approach). The query keeps copies of the sampled nodes' and edges'
// attribute bags, so an identity embedding trivially satisfies
// attribute-window constraints derived from them.
//
// The result's second value is the planted mapping: query node i
// corresponds to host node plant[i], witnessing that at least one feasible
// embedding exists.
//
// nEdges is clamped to [nNodes-1, all induced edges]: the subgraph is
// always connected (a spanning tree of the sampled region is always
// included) and never exceeds the edges the host induces on the sample.
func Subgraph(host *graph.Graph, nNodes, nEdges int, rng *rand.Rand) (*graph.Graph, []graph.NodeID, error) {
	if nNodes < 1 || nNodes > host.NumNodes() {
		return nil, nil, fmt.Errorf("topo: cannot sample %d nodes from %d-node host", nNodes, host.NumNodes())
	}
	// Grow a connected sample by random frontier expansion.
	start := graph.NodeID(rng.Intn(host.NumNodes()))
	selected := map[graph.NodeID]graph.NodeID{} // host -> query
	plant := make([]graph.NodeID, 0, nNodes)
	var frontier []graph.NodeID
	inFrontier := map[graph.NodeID]bool{}

	q := graph.NewUndirected()
	type treeEdge struct {
		qu, qv graph.NodeID
		host   graph.EdgeID
	}
	var tree []treeEdge

	add := func(h graph.NodeID) {
		qid := q.AddNode(host.Node(h).Name, host.Node(h).Attrs.Clone())
		selected[h] = qid
		plant = append(plant, h)
		for _, a := range host.Arcs(h) {
			if _, in := selected[a.To]; !in && !inFrontier[a.To] {
				frontier = append(frontier, a.To)
				inFrontier[a.To] = true
			}
		}
	}
	add(start)
	for len(plant) < nNodes {
		if len(frontier) == 0 {
			return nil, nil, fmt.Errorf("topo: host component around node %d has only %d nodes, need %d",
				start, len(plant), nNodes)
		}
		i := rng.Intn(len(frontier))
		h := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		delete(inFrontier, h)

		// Pick one random already-selected neighbor as the tree parent.
		var parents []graph.Arc
		for _, a := range host.Arcs(h) {
			if _, in := selected[a.To]; in {
				parents = append(parents, a)
			}
		}
		p := parents[rng.Intn(len(parents))]
		add(h)
		tree = append(tree, treeEdge{selected[h], selected[p.To], p.Edge})
	}

	// Spanning tree edges first, then random extra induced edges.
	for _, te := range tree {
		q.MustAddEdge(te.qu, te.qv, host.Edge(te.host).Attrs.Clone())
	}
	var extras []graph.EdgeID
	for qi, h := range plant {
		qu := graph.NodeID(qi)
		for _, a := range host.Arcs(h) {
			if qv, in := selected[a.To]; in && h < a.To && !q.HasEdge(qu, qv) {
				extras = append(extras, a.Edge)
			}
		}
	}
	rng.Shuffle(len(extras), func(i, j int) { extras[i], extras[j] = extras[j], extras[i] })
	for _, he := range extras {
		if q.NumEdges() >= nEdges {
			break
		}
		e := host.Edge(he)
		q.MustAddEdge(selected[e.From], selected[e.To], e.Attrs.Clone())
	}
	return q, plant, nil
}

// Delay attribute names shared by the generators, the trace synthesizer
// and the experiment constraints.
const (
	AttrMinDelay = "minDelay"
	AttrAvgDelay = "avgDelay"
	AttrMaxDelay = "maxDelay"
)

// WidenDelayWindows turns the copied minDelay/maxDelay measurements on the
// edges of a sampled query into acceptance windows, widening them by the
// relative slack. Under the standard window constraint
//
//	rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay
//
// the planted identity embedding remains feasible for any slack >= 0.
func WidenDelayWindows(q *graph.Graph, slack float64) {
	for i := 0; i < q.NumEdges(); i++ {
		attrs := q.Edge(graph.EdgeID(i)).Attrs
		if lo, ok := attrs.Float(AttrMinDelay); ok {
			attrs.SetNum(AttrMinDelay, lo*(1-slack))
		}
		if hi, ok := attrs.Float(AttrMaxDelay); ok {
			attrs.SetNum(AttrMaxDelay, hi*(1+slack))
		}
	}
}

// SetDelayWindow stamps every edge of q with the same [lo, hi] acceptance
// window, the workload used for the clique queries of §VII-D ("end-to-end
// delay between 10 and 100ms").
func SetDelayWindow(q *graph.Graph, lo, hi float64) {
	for i := 0; i < q.NumEdges(); i++ {
		attrs := q.Edge(graph.EdgeID(i)).Attrs
		q.Edge(graph.EdgeID(i)).Attrs = attrs.SetNum(AttrMinDelay, lo).SetNum(AttrMaxDelay, hi)
	}
}

// MakeInfeasible rewrites k random query edges with an impossible delay
// window (negative delays), producing the known-infeasible twins used in
// Fig 10. Topology is unchanged — only constraints move, exactly as the
// paper constructs its no-match workload. k is clamped to the edge count.
func MakeInfeasible(q *graph.Graph, k int, rng *rand.Rand) {
	if q.NumEdges() == 0 {
		return
	}
	if k > q.NumEdges() {
		k = q.NumEdges()
	}
	perm := rng.Perm(q.NumEdges())
	for _, i := range perm[:k] {
		attrs := q.Edge(graph.EdgeID(i)).Attrs
		q.Edge(graph.EdgeID(i)).Attrs = attrs.SetNum(AttrMinDelay, -2).SetNum(AttrMaxDelay, -1)
	}
}
