// Package topo generates the network topologies used throughout the
// paper's evaluation (§VII-A): regular structures (rings, stars, cliques,
// trees, grids and two-level composites of these) used as query networks,
// BRITE-style synthetic Internet topologies used as hosting networks, and
// random connected subgraph sampling used to derive feasible queries from
// a hosting network.
package topo

import (
	"fmt"

	"netembed/internal/graph"
)

// Kind names a regular topology family.
type Kind string

// The regular topology families. Composite queries (§VII-D) combine two
// of these in a two-level hierarchy.
const (
	KindRing   Kind = "ring"
	KindStar   Kind = "star"
	KindClique Kind = "clique"
	KindLine   Kind = "line"
)

// Regular builds a regular topology of the given kind with n nodes. Star
// topologies place the hub at node 0.
func Regular(kind Kind, n int) (*graph.Graph, error) {
	switch kind {
	case KindRing:
		return Ring(n), nil
	case KindStar:
		return Star(n), nil
	case KindClique:
		return Clique(n), nil
	case KindLine:
		return Line(n), nil
	}
	return nil, fmt.Errorf("topo: unknown regular kind %q", kind)
}

// Ring returns the cycle C_n. For n = 2 it degenerates to a single edge.
func Ring(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	if n < 2 {
		return g
	}
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), nil)
	}
	if n > 2 {
		g.MustAddEdge(graph.NodeID(n-1), 0, nil)
	}
	return g
}

// Star returns the star K_{1,n-1} with node 0 as the hub.
func Star(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, graph.NodeID(i), nil)
	}
	return g
}

// Clique returns the complete graph K_n.
func Clique(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), nil)
		}
	}
	return g
}

// Line returns the path P_n.
func Line(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), nil)
	}
	return g
}

// Tree returns the complete arity-ary tree with the given depth (a depth
// of 0 is a single root).
func Tree(arity, depth int) *graph.Graph {
	g := graph.NewUndirected()
	root := g.AddNode("", nil)
	var grow func(parent graph.NodeID, d int)
	grow = func(parent graph.NodeID, d int) {
		if d == 0 {
			return
		}
		for i := 0; i < arity; i++ {
			child := g.AddNode("", nil)
			g.MustAddEdge(parent, child, nil)
			grow(child, d-1)
		}
	}
	grow(root, depth)
	return g
}

// Grid returns the rows×cols lattice.
func Grid(rows, cols int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(rows * cols)
	at := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(at(r, c), at(r, c+1), nil)
			}
			if r+1 < rows {
				g.MustAddEdge(at(r, c), at(r+1, c), nil)
			}
		}
	}
	return g
}

// LevelAttr is the edge attribute distinguishing the two levels of a
// composite topology: "root" for inter-cluster edges, "leaf" for
// intra-cluster edges.
const LevelAttr = "level"

// Composite builds the two-level hierarchical queries of §VII-D: a root
// structure of rootSize clusters, where each cluster is itself a leaf
// structure of leafSize nodes. Each root-level edge connects the first
// nodes of the two clusters and is tagged level="root"; intra-cluster
// edges are tagged level="leaf".
func Composite(root Kind, rootSize int, leaf Kind, leafSize int) (*graph.Graph, error) {
	rootG, err := Regular(root, rootSize)
	if err != nil {
		return nil, err
	}
	leafG, err := Regular(leaf, leafSize)
	if err != nil {
		return nil, err
	}
	g := graph.NewUndirected()
	// first[i] is the representative node of cluster i.
	first := make([]graph.NodeID, rootSize)
	for c := 0; c < rootSize; c++ {
		base := g.AddNodes(leafSize)
		first[c] = base
		for i := 0; i < leafG.NumEdges(); i++ {
			e := leafG.Edge(graph.EdgeID(i))
			g.MustAddEdge(base+e.From, base+e.To, graph.Attrs{}.SetStr(LevelAttr, "leaf"))
		}
	}
	for i := 0; i < rootG.NumEdges(); i++ {
		e := rootG.Edge(graph.EdgeID(i))
		g.MustAddEdge(first[e.From], first[e.To], graph.Attrs{}.SetStr(LevelAttr, "root"))
	}
	return g, nil
}
