package index

import (
	"fmt"
	"math/rand"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// reachOracle computes, by BFS, whether x is reachable from r by a walk
// of 1..k edges (equivalently a simple path of at most k edges when
// x != r, and a cycle through r when x == r).
func reachOracle(g *graph.Graph, r graph.NodeID, k int) map[graph.NodeID]bool {
	n := g.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[r] = 0
	queue := []graph.NodeID{r}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, a := range g.Arcs(at) {
			if dist[a.To] < 0 {
				dist[a.To] = dist[at] + 1
				queue = append(queue, a.To)
			}
		}
	}
	out := map[graph.NodeID]bool{}
	for x := 0; x < n; x++ {
		if x != int(r) && dist[x] >= 1 && dist[x] <= k {
			out[graph.NodeID(x)] = true
		}
	}
	// Self-reachability: a closed walk r -> ... -> t -> r of length
	// dist[t]+1 for any in-neighbor t of r.
	for _, a := range g.InArcs(r) {
		if dist[a.To] >= 0 && dist[a.To]+1 <= k {
			out[r] = true
			break
		}
	}
	return out
}

func checkReachRows(t *testing.T, label string, g *graph.Graph, rows []sets.Bitset, k int, reverse bool) {
	t.Helper()
	probe := g
	if reverse && g.Directed() {
		// Reverse rows on the reversed graph equal forward rows.
		probe = reversed(g)
	}
	for r := 0; r < g.NumNodes(); r++ {
		want := reachOracle(probe, graph.NodeID(r), k)
		for x := 0; x < g.NumNodes(); x++ {
			if rows[r].Has(int32(x)) != want[graph.NodeID(x)] {
				t.Fatalf("%s: k=%d row %d node %d: got %v want %v",
					label, k, r, x, rows[r].Has(int32(x)), want[graph.NodeID(x)])
			}
		}
	}
}

// reversed returns g with every directed edge flipped.
func reversed(g *graph.Graph) *graph.Graph {
	out := graph.NewDirected()
	for i := 0; i < g.NumNodes(); i++ {
		out.AddNode(g.Node(graph.NodeID(i)).Name, g.Node(graph.NodeID(i)).Attrs)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		out.MustAddEdge(e.To, e.From, e.Attrs)
	}
	return out
}

func TestReachWithinMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		directed := trial%2 == 1
		g := randomGraph(rng, directed)
		ix := Build(g, 1, Config{})
		for _, k := range []int{1, 2, 3, 5} {
			checkReachRows(t, fmt.Sprintf("trial %d fwd", trial), g, ix.ReachWithin(k), k, false)
			checkReachRows(t, fmt.Sprintf("trial %d rev", trial), g, ix.ReachWithinRev(k), k, true)
		}
		// Level monotonicity: reach[k] ⊆ reach[k+1].
		lo, hi := ix.ReachWithin(2), ix.ReachWithin(3)
		for r := range lo {
			probe := lo[r].Clone()
			if probe.AndNotWith(&hi[r]) {
				t.Fatalf("trial %d: reach[2][%d] not a subset of reach[3][%d]", trial, r, r)
			}
		}
	}
}

func TestBuildReachMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, trial%2 == 0)
		ix := Build(g, 1, Config{})
		const k = 3
		fwd, rev := BuildReach(g, k)
		ixFwd, ixRev := ix.ReachWithin(k), ix.ReachWithinRev(k)
		for r := range fwd {
			if !fwd[r].Equal(&ixFwd[r]) || !rev[r].Equal(&ixRev[r]) {
				t.Fatalf("trial %d: BuildReach row %d disagrees with Index", trial, r)
			}
		}
	}
}

// TestReachFixedPointConvergence pins the closure early-exit: an
// arbitrarily large hop bound builds at most diameter-many levels and
// answers with the transitive closure.
func TestReachFixedPointConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, trial%2 == 0)
		ix := Build(g, 1, Config{})
		n := g.NumNodes()
		closure := ix.ReachWithin(1 << 30) // must return promptly
		want := ix.ReachWithin(n - 1)      // simple paths top out at n-1 edges
		for r := 0; r < n; r++ {
			if !closure[r].Equal(&want[r]) {
				t.Fatalf("trial %d: huge-bound row %d differs from the n-1 closure", trial, r)
			}
		}
		if built := len(ix.reach.fwd); built > n {
			t.Fatalf("trial %d: %d levels built for an n=%d graph", trial, built, n)
		}
		fwd, rev := BuildReach(g, 1<<30)
		for r := 0; r < n; r++ {
			if !fwd[r].Equal(&closure[r]) {
				t.Fatalf("trial %d: BuildReach huge-bound row %d differs", trial, r)
			}
		}
		_ = rev
	}
}

func TestReachClampsMaxHops(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNodes(3)
	g.MustAddEdge(0, 1, nil)
	ix := Build(g, 1, Config{})
	for _, k := range []int{-3, 0, 1} {
		rows := ix.ReachWithin(k)
		if !rows[0].Has(1) || rows[0].Has(2) {
			t.Fatalf("k=%d rows not clamped to 1-hop adjacency", k)
		}
	}
	fwd, _ := BuildReach(g, -1)
	if !fwd[0].Has(1) || fwd[0].Has(2) {
		t.Fatal("BuildReach did not clamp a negative bound")
	}
}

// TestReachDeltaInvalidation pins the copy-on-write contract: a structural
// delta gives the patched snapshot a fresh cache reflecting the new
// adjacency while the old snapshot keeps its tables, and an attribute-only
// delta shares the previous cache outright.
func TestReachDeltaInvalidation(t *testing.T) {
	g := graph.NewUndirected()
	for i := 0; i < 5; i++ {
		g.AddNode(fmt.Sprintf("h%d", i), nil)
	}
	// Line 0-1-2-3-4.
	for i := 0; i < 4; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), nil)
	}
	ix := Build(g, 1, Config{})
	before := ix.ReachWithin(2)
	if !before[0].Has(2) || before[0].Has(3) {
		t.Fatal("baseline reach rows wrong")
	}

	// Structural delta: shortcut edge 0-3.
	d := &graph.Delta{AddEdges: []graph.EdgeSpec{{Source: "h0", Target: "h3"}}}
	next, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	ix2 := ix.Apply(g, next, d, 2)
	if ix2.reach == ix.reach {
		t.Fatal("structural delta shared the reachability cache")
	}
	after := ix2.ReachWithin(2)
	if !after[0].Has(3) || !after[0].Has(4) {
		t.Fatal("patched snapshot does not see the new edge's reachability")
	}
	checkReachRows(t, "after structural delta", next, after, 2, false)
	// The old snapshot's rows are untouched.
	if before[0].Has(3) {
		t.Fatal("old snapshot's reach rows mutated by Apply")
	}

	// Attribute-only delta: reachability is unchanged, so the cache is
	// shared with the previous snapshot.
	ad := &graph.Delta{SetNodeAttrs: []graph.NodeAttrUpdate{{Node: "h1", Set: graph.Attrs{}.SetNum("slots", 4)}}}
	next2, err := next.ApplyDelta(ad)
	if err != nil {
		t.Fatal(err)
	}
	ix3 := ix2.Apply(next, next2, ad, 3)
	if ix3.reach != ix2.reach {
		t.Fatal("attribute-only delta did not share the reachability cache")
	}
	checkReachRows(t, "after attr delta", next2, ix3.ReachWithin(2), 2, false)
}
