package index

import (
	"sync"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// This file is the hop-bounded reachability oracle backing the path-mode
// (link-to-path, §VIII) search: Reach(k)[r] is the bitset of nodes with a
// walk of 1..k edges from r — equivalently, by walk shortening, the nodes
// with a *simple path* of at most k edges from r, which is exactly the
// necessary condition for a witness hosting path to exist. The path
// searcher AND-prunes candidate domains with these rows the way the FC
// engine prunes with 1-hop filter rows, and rejects witness probes for
// unreachable pairs without ever starting a DFS.
//
// Tables are built lazily, one level at a time, from the recurrence
//
//	reach[1][r] = adj(r)
//	reach[k][r] = reach[k-1][r] ∪ ⋃_{t ∈ adj(r)} reach[k-1][t]
//
// and cached on the Index snapshot behind a mutex, so repeated path
// queries against one model version pay the construction once. The cache
// rides the index's copy-on-write discipline: a structural delta
// (edge/node add/remove) gives the patched snapshot a fresh, empty cache,
// while attribute-only deltas — which cannot change reachability — share
// the previous snapshot's tables.

// reachCache holds one snapshot's lazily-built reachability tables.
// fwd[k-1][r] = nodes reachable from r within k out-hops; rev is the same
// over in-arcs (nodes that reach r), nil until requested and aliased to
// fwd on undirected graphs. The done flags record that the tables
// reached their transitive-closure fixed point — higher hop bounds then
// answer from the last level instead of building identical copies.
type reachCache struct {
	mu      sync.Mutex
	fwd     [][]sets.Bitset
	fwdDone bool
	rev     [][]sets.Bitset
	revDone bool
}

// newReachCache returns an empty cache; Index.Build and structural
// patches install one so stale tables can never leak across versions.
func newReachCache() *reachCache { return &reachCache{} }

// extendReach grows levels toward maxHops using the recurrence above,
// stopping early — and flipping *done — once a level reproduces its
// predecessor: the closure has converged (at most the graph's diameter,
// never past n-1 since a simple path has at most n-1 edges), so an
// arbitrarily large client-supplied hop bound costs diameter-many
// levels, not maxHops allocations.
func extendReach(levels [][]sets.Bitset, done *bool, n, maxHops int, adj func(graph.NodeID) *sets.Bitset) [][]sets.Bitset {
	for k := len(levels); k < maxHops && !*done; k++ {
		rows := sets.MakeBitsets(n, n)
		same := k > 0
		for r := 0; r < n; r++ {
			row := &rows[r]
			if k == 0 {
				row.CopyFrom(adj(graph.NodeID(r)))
				continue
			}
			prev := levels[k-1]
			row.CopyFrom(&prev[r])
			adj(graph.NodeID(r)).ForEach(func(t int32) bool {
				row.UnionWith(&prev[t])
				return true
			})
			if same && !row.Equal(&prev[r]) {
				same = false
			}
		}
		if same {
			*done = true
			break
		}
		levels = append(levels, rows)
	}
	return levels
}

// levelAt returns the closure for the requested bound: the exact level
// when built, the converged last level otherwise.
func levelAt(levels [][]sets.Bitset, maxHops int) []sets.Bitset {
	if maxHops > len(levels) {
		maxHops = len(levels)
	}
	return levels[maxHops-1]
}

// ReachWithin returns the forward reachability rows for the given hop
// bound: row r holds every node with a path of 1..maxHops edges from r
// (out-arcs; all arcs when undirected). maxHops < 1 is treated as 1.
// The rows are cached on the snapshot and must be treated as read-only;
// the call is safe for concurrent use.
func (ix *Index) ReachWithin(maxHops int) []sets.Bitset {
	maxHops = clampHops(maxHops, ix.n)
	c := ix.reach
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fwd = extendReach(c.fwd, &c.fwdDone, ix.n, maxHops, func(r graph.NodeID) *sets.Bitset { return ix.adjOut[r] })
	return levelAt(c.fwd, maxHops)
}

// ReachWithinRev returns the reverse rows: row r holds every node with a
// path of 1..maxHops edges *to* r. On undirected graphs this is
// ReachWithin. Read-only; safe for concurrent use.
func (ix *Index) ReachWithinRev(maxHops int) []sets.Bitset {
	if !ix.directed {
		return ix.ReachWithin(maxHops)
	}
	maxHops = clampHops(maxHops, ix.n)
	c := ix.reach
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rev = extendReach(c.rev, &c.revDone, ix.n, maxHops, func(r graph.NodeID) *sets.Bitset { return ix.adjIn[r] })
	return levelAt(c.rev, maxHops)
}

// clampHops bounds a hop count to [1, n-1]: a negative or zero bound is
// treated as 1, and a simple path can never have more than n-1 edges.
func clampHops(maxHops, n int) int {
	if maxHops < 1 {
		maxHops = 1
	}
	if n > 1 && maxHops > n-1 {
		maxHops = n - 1
	}
	return maxHops
}

// BuildReach computes the forward and reverse hop-bounded reachability
// rows for a graph directly, without an Index — the fallback for path
// searches against unindexed hosts. On undirected graphs rev aliases fwd.
func BuildReach(g *graph.Graph, maxHops int) (fwd, rev []sets.Bitset) {
	n := g.NumNodes()
	maxHops = clampHops(maxHops, n)
	adjFwd := make([]*sets.Bitset, n)
	for r := 0; r < n; r++ {
		adjFwd[r] = adjacencyBits(n, g.Arcs(graph.NodeID(r)))
	}
	var fwdDone bool
	fl := extendReach(nil, &fwdDone, n, maxHops, func(r graph.NodeID) *sets.Bitset { return adjFwd[r] })
	fwd = levelAt(fl, maxHops)
	if !g.Directed() {
		return fwd, fwd
	}
	adjRev := make([]*sets.Bitset, n)
	for r := 0; r < n; r++ {
		adjRev[r] = adjacencyBits(n, g.InArcs(graph.NodeID(r)))
	}
	var revDone bool
	rl := extendReach(nil, &revDone, n, maxHops, func(r graph.NodeID) *sets.Bitset { return adjRev[r] })
	return fwd, levelAt(rl, maxHops)
}
