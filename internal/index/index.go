// Package index maintains a persistent, version-stamped capability index
// over the hosting network: per-node adjacency bitsets, degree strata
// (nodes with degree ≥ d, one bitset per d), capacity-style attribute
// strata, and per-attribute sorted postings over every numeric node
// attribute.
//
// The index exists so that the filter hot path (core.BuildFilters) does
// not rescan the whole hosting network on every query, and — more
// importantly — so that a monitor publishing a *delta* does not force a
// from-scratch recomputation: Apply patches only the structures a delta
// touches, sharing everything else with the previous snapshot
// (copy-on-write). An in-flight search holding the old *Index keeps a
// fully consistent view; Apply never mutates an existing snapshot.
//
// Universe changes (node add/remove) renumber IDs and resize every
// bitset, so those deltas fall back to a full rebuild; edge add/remove
// and attribute edits — the monitoring feed's bread and butter — are
// incremental.
package index

import (
	"sort"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// Config tunes index construction.
type Config struct {
	// StrataAttrs lists numeric node attributes that get bitset strata
	// (node sets with attr ≥ k for k = 1..StrataLevels) in addition to
	// sorted postings. Default: slots, capacity — the service's
	// multi-tenancy and consolidation capacity attributes.
	StrataAttrs []string
	// StrataLevels bounds the per-attribute strata ladder (default 64).
	StrataLevels int
}

func (c *Config) applyDefaults() {
	if c.StrataAttrs == nil {
		c.StrataAttrs = []string{"slots", "capacity"}
	}
	if c.StrataLevels <= 0 {
		c.StrataLevels = 64
	}
}

// Postings is one attribute's sorted posting list: parallel arrays of
// (value, node) pairs ordered by value then node ID. Nodes lacking the
// attribute (or carrying a non-numeric value) are absent.
type Postings struct {
	vals []float64
	ids  []graph.NodeID
}

// Len returns the number of indexed nodes.
func (p *Postings) Len() int { return len(p.vals) }

// ge returns the first position whose (value, id) pair is ≥ (x, minID).
func (p *Postings) ge(x float64, minID graph.NodeID) int {
	return sort.Search(len(p.vals), func(i int) bool {
		if p.vals[i] != x {
			return p.vals[i] > x
		}
		return p.ids[i] >= minID
	})
}

// MinWhere walks the postings in ascending (value, id) order and returns
// the first value whose node satisfies has, together with the number of
// membership probes spent. ok is false when no indexed node satisfies
// has. It is the optimizing search's lower-bound primitive: with a live
// candidate domain as the predicate, the answer is the minimum attribute
// value attainable in that domain, found after as many probes as there
// are cheaper non-members.
func (p *Postings) MinWhere(has func(graph.NodeID) bool) (val float64, probes int, ok bool) {
	for i := range p.ids {
		probes++
		if has(p.ids[i]) {
			return p.vals[i], probes, true
		}
	}
	return 0, probes, false
}

// MaxWhere is MinWhere's descending twin: the largest attribute value
// among the nodes satisfying has.
func (p *Postings) MaxWhere(has func(graph.NodeID) bool) (val float64, probes int, ok bool) {
	for i := len(p.ids) - 1; i >= 0; i-- {
		probes++
		if has(p.ids[i]) {
			return p.vals[i], probes, true
		}
	}
	return 0, probes, false
}

// clone returns a private copy of p safe to splice.
func (p *Postings) clone() *Postings {
	return &Postings{
		vals: append([]float64(nil), p.vals...),
		ids:  append([]graph.NodeID(nil), p.ids...),
	}
}

// splice replaces (id, old) with (id, new) in place. A nil old/new
// pointer means absent on that side. The receiver must be a private
// copy, never a snapshot's shared postings: one clone per attribute,
// then one splice per edited node, keeps a k-node delta at one copy
// instead of k.
func (p *Postings) splice(id graph.NodeID, oldVal, newVal *float64) {
	if oldVal != nil {
		i := p.ge(*oldVal, id)
		if i < len(p.ids) && p.vals[i] == *oldVal && p.ids[i] == id {
			p.vals = append(p.vals[:i], p.vals[i+1:]...)
			p.ids = append(p.ids[:i], p.ids[i+1:]...)
		}
	}
	if newVal != nil {
		i := p.ge(*newVal, id)
		p.vals = append(p.vals, 0)
		copy(p.vals[i+1:], p.vals[i:])
		p.vals[i] = *newVal
		p.ids = append(p.ids, 0)
		copy(p.ids[i+1:], p.ids[i:])
		p.ids[i] = id
	}
}

// Index is one immutable capability snapshot of a hosting network. All
// accessors return structures shared with the index; callers must treat
// them as read-only (Clone before mutating). Building or patching an
// Index never blocks readers of earlier snapshots.
type Index struct {
	cfg      Config
	version  uint64
	directed bool
	n        int

	// adjOut[r] = out-neighbors of r (all neighbors when undirected);
	// adjIn is directed-only (nil otherwise — use adjOut).
	adjOut []*sets.Bitset //cow:shared
	adjIn  []*sets.Bitset //cow:shared

	// degAtLeast[d] = nodes with Degree ≥ d (degAtLeast[0] = everyone);
	// outDegAtLeast is the same ladder over OutDegree. Undirected graphs
	// share one ladder (Degree == OutDegree there).
	degAtLeast    []*sets.Bitset //cow:shared
	outDegAtLeast []*sets.Bitset //cow:shared

	// postings holds sorted postings for every numeric node attribute.
	postings map[string]*Postings //cow:shared
	// strata[attr][k-1] = nodes with attr ≥ k, for the configured
	// capacity-style attributes.
	strata map[string][]*sets.Bitset //cow:shared

	zero *sets.Bitset // shared empty set for out-of-ladder queries

	// reach is the snapshot's lazily-built hop-bounded reachability
	// tables (see reach.go). Never nil. Structural patches install a
	// fresh cache; attribute-only patches share the previous snapshot's,
	// since reachability depends only on adjacency.
	reach *reachCache
}

// Build computes a fresh index over g, stamped with the model version it
// reflects.
func Build(g *graph.Graph, version uint64, cfg Config) *Index {
	cfg.applyDefaults()
	n := g.NumNodes()
	ix := &Index{
		cfg:      cfg,
		version:  version,
		directed: g.Directed(),
		n:        n,
		adjOut:   make([]*sets.Bitset, n),
		postings: make(map[string]*Postings),
		strata:   make(map[string][]*sets.Bitset, len(cfg.StrataAttrs)),
		zero:     sets.NewBitset(n),
		reach:    newReachCache(),
	}
	if ix.directed {
		ix.adjIn = make([]*sets.Bitset, n)
	}
	for r := 0; r < n; r++ {
		ix.adjOut[r] = adjacencyBits(n, g.Arcs(graph.NodeID(r)))
		if ix.directed {
			ix.adjIn[r] = adjacencyBits(n, g.InArcs(graph.NodeID(r)))
		}
	}

	ix.degAtLeast = buildDegreeLadder(n, func(r graph.NodeID) int { return g.Degree(r) })
	if ix.directed {
		ix.outDegAtLeast = buildDegreeLadder(n, func(r graph.NodeID) int { return g.OutDegree(r) })
	} else {
		ix.outDegAtLeast = ix.degAtLeast
	}

	for r := 0; r < n; r++ {
		for name, v := range g.Node(graph.NodeID(r)).Attrs {
			if f, ok := v.Float(); ok {
				pp := ix.postings[name]
				if pp == nil {
					pp = &Postings{}
					ix.postings[name] = pp
				}
				pp.vals = append(pp.vals, f)
				pp.ids = append(pp.ids, graph.NodeID(r))
			}
		}
	}
	for _, pp := range ix.postings {
		sortPostings(pp)
	}

	for _, attr := range cfg.StrataAttrs {
		ix.strata[attr] = ix.buildStrata(attr)
	}
	return ix
}

func adjacencyBits(n int, arcs []graph.Arc) *sets.Bitset {
	b := sets.NewBitset(n)
	for _, a := range arcs {
		b.Set(a.To)
	}
	return b
}

func buildDegreeLadder(n int, deg func(graph.NodeID) int) []*sets.Bitset {
	maxDeg := 0
	for r := 0; r < n; r++ {
		if d := deg(graph.NodeID(r)); d > maxDeg {
			maxDeg = d
		}
	}
	ladder := make([]*sets.Bitset, maxDeg+1)
	for d := range ladder {
		ladder[d] = sets.NewBitset(n)
	}
	for r := 0; r < n; r++ {
		d := deg(graph.NodeID(r))
		for k := 0; k <= d; k++ {
			ladder[k].Set(graph.NodeID(r))
		}
	}
	return ladder
}

func sortPostings(pp *Postings) {
	sort.Sort(postingsOrder{pp})
}

type postingsOrder struct{ p *Postings }

func (o postingsOrder) Len() int { return len(o.p.vals) }
func (o postingsOrder) Less(i, j int) bool {
	if o.p.vals[i] != o.p.vals[j] {
		return o.p.vals[i] < o.p.vals[j]
	}
	return o.p.ids[i] < o.p.ids[j]
}
func (o postingsOrder) Swap(i, j int) {
	o.p.vals[i], o.p.vals[j] = o.p.vals[j], o.p.vals[i]
	o.p.ids[i], o.p.ids[j] = o.p.ids[j], o.p.ids[i]
}

// buildStrata materializes the attr ≥ k bitset ladder from the attribute's
// postings (levels k = 1..StrataLevels, truncated at the attribute's max).
func (ix *Index) buildStrata(attr string) []*sets.Bitset {
	pp := ix.postings[attr]
	if pp == nil || pp.Len() == 0 {
		return nil
	}
	maxVal := pp.vals[len(pp.vals)-1]
	levels := ix.cfg.StrataLevels
	if float64(levels) > maxVal {
		levels = int(maxVal)
	}
	if levels < 1 {
		return nil
	}
	ladder := make([]*sets.Bitset, levels)
	for k := 1; k <= levels; k++ {
		b := sets.NewBitset(ix.n)
		for i := pp.ge(float64(k), -1<<31); i < len(pp.ids); i++ {
			b.Set(pp.ids[i])
		}
		ladder[k-1] = b
	}
	return ladder
}

// Version returns the model version this snapshot reflects.
func (ix *Index) Version() uint64 { return ix.version }

// NumNodes returns the universe size.
func (ix *Index) NumNodes() int { return ix.n }

// Directed reports the indexed graph's orientation.
func (ix *Index) Directed() bool { return ix.directed }

// Neighbors returns r's out-neighbor bitset (all neighbors when
// undirected). Read-only.
func (ix *Index) Neighbors(r graph.NodeID) *sets.Bitset { return ix.adjOut[r] }

// InNeighbors returns r's in-neighbor bitset (== Neighbors when
// undirected). Read-only.
func (ix *Index) InNeighbors(r graph.NodeID) *sets.Bitset {
	if !ix.directed {
		return ix.adjOut[r]
	}
	return ix.adjIn[r]
}

// DegreeAtLeast returns the nodes with Degree ≥ d. Read-only.
func (ix *Index) DegreeAtLeast(d int) *sets.Bitset {
	return ladderAt(ix.degAtLeast, d, ix.zero)
}

// MaxDegree returns the host's largest node degree — the top rung of the
// degree strata ladder (0 on an empty host). The distributed coordinator
// screens shard eligibility with it: a shard whose densest node cannot
// carry the query's sparsest one can never answer.
func (ix *Index) MaxDegree() int {
	if len(ix.degAtLeast) == 0 {
		return 0
	}
	return len(ix.degAtLeast) - 1
}

// OutDegreeAtLeast returns the nodes with OutDegree ≥ d. Read-only.
func (ix *Index) OutDegreeAtLeast(d int) *sets.Bitset {
	return ladderAt(ix.outDegAtLeast, d, ix.zero)
}

func ladderAt(ladder []*sets.Bitset, d int, zero *sets.Bitset) *sets.Bitset {
	if d < 0 {
		d = 0
	}
	if d >= len(ladder) {
		return zero
	}
	return ladder[d]
}

// AttrAtLeast returns a fresh bitset of the nodes whose numeric attribute
// attr is ≥ x. Integral thresholds on strata attributes are answered from
// the precomputed ladder (one clone); everything else walks the postings
// suffix.
func (ix *Index) AttrAtLeast(attr string, x float64) *sets.Bitset {
	if ladder := ix.strata[attr]; ladder != nil {
		k := int(x)
		if float64(k) == x && k >= 1 && k <= len(ladder) {
			return ladder[k-1].Clone()
		}
	}
	out := sets.NewBitset(ix.n)
	if pp := ix.postings[attr]; pp != nil {
		for i := pp.ge(x, -1<<31); i < len(pp.ids); i++ {
			out.Set(pp.ids[i])
		}
	}
	return out
}

// AttrPostings returns the sorted postings for a numeric node attribute
// (nil when no node carries it). Read-only.
func (ix *Index) AttrPostings(attr string) *Postings { return ix.postings[attr] }

// Apply returns a new snapshot reflecting next (= old.ApplyDelta(d)),
// stamped with version. Attribute edits and edge add/remove are patched
// copy-on-write: only the adjacency rows, ladder rungs, postings and
// strata the delta touches are copied, everything else is shared with ix.
// Node add/remove changes the ID universe and falls back to Build. The
// receiver is never modified.
func (ix *Index) Apply(old, next *graph.Graph, d *graph.Delta, version uint64) *Index {
	if d.Empty() {
		out := *ix
		out.version = version
		return &out
	}
	if len(d.AddNodes) > 0 || len(d.RemoveNodes) > 0 || next.NumNodes() != ix.n {
		return Build(next, version, ix.cfg)
	}

	out := *ix // shallow: every slice/map is COW-cloned before writing
	out.version = version

	if len(d.AddEdges) > 0 || len(d.RemoveEdges) > 0 {
		out.patchStructure(old, next, d)
		// Adjacency changed: any cached reachability tables are stale for
		// the new snapshot (the old snapshot keeps its own).
		out.reach = newReachCache()
	}
	if len(d.SetNodeAttrs) > 0 {
		out.patchAttrs(old, next, d)
	}
	return &out
}

// patchStructure re-derives adjacency rows and ladder rungs for the nodes
// whose edge set changed. IDs are stable here: the delta has no node
// add/remove, so ApplyDelta kept the node ordering.
func (out *Index) patchStructure(old, next *graph.Graph, d *graph.Delta) {
	touched := make(map[graph.NodeID]bool, 2*(len(d.AddEdges)+len(d.RemoveEdges)))
	mark := func(g *graph.Graph, source, target string) {
		if u, ok := g.NodeByName(source); ok {
			touched[u] = true
		}
		if v, ok := g.NodeByName(target); ok {
			touched[v] = true
		}
	}
	for _, ref := range d.RemoveEdges {
		mark(old, ref.Source, ref.Target)
	}
	for _, spec := range d.AddEdges {
		mark(next, spec.Source, spec.Target)
	}

	out.adjOut = append([]*sets.Bitset(nil), out.adjOut...)
	if out.directed {
		out.adjIn = append([]*sets.Bitset(nil), out.adjIn...)
	}
	for r := range touched {
		out.adjOut[r] = adjacencyBits(out.n, next.Arcs(r))
		if out.directed {
			out.adjIn[r] = adjacencyBits(out.n, next.InArcs(r))
		}
	}

	out.degAtLeast = patchLadder(out.degAtLeast, out.n, touched,
		func(r graph.NodeID) int { return old.Degree(r) },
		func(r graph.NodeID) int { return next.Degree(r) })
	if out.directed {
		out.outDegAtLeast = patchLadder(out.outDegAtLeast, out.n, touched,
			func(r graph.NodeID) int { return old.OutDegree(r) },
			func(r graph.NodeID) int { return next.OutDegree(r) })
	} else {
		out.outDegAtLeast = out.degAtLeast
	}
}

// patchLadder moves the touched nodes between ladder rungs, cloning only
// the rungs whose membership actually changes.
func patchLadder(ladder []*sets.Bitset, n int, touched map[graph.NodeID]bool, oldDeg, newDeg func(graph.NodeID) int) []*sets.Bitset {
	ladder = append([]*sets.Bitset(nil), ladder...)
	cloned := make(map[int]bool)
	rung := func(d int) *sets.Bitset {
		for len(ladder) <= d {
			ladder = append(ladder, sets.NewBitset(n))
			cloned[len(ladder)-1] = true
		}
		if !cloned[d] {
			ladder[d] = ladder[d].Clone()
			cloned[d] = true
		}
		return ladder[d]
	}
	for r := range touched {
		o, w := oldDeg(r), newDeg(r)
		for d := o + 1; d <= w; d++ {
			rung(d).Set(r)
		}
		for d := w + 1; d <= o; d++ {
			rung(d).Clear(r)
		}
	}
	// Trim rungs that went empty at the top so the ladder length stays
	// the maximum degree + 1.
	for len(ladder) > 1 && !ladder[len(ladder)-1].Any() {
		ladder = ladder[:len(ladder)-1]
	}
	return ladder
}

// patchAttrs re-derives postings and strata for the (node, attribute)
// pairs the delta edits. Within one delta the last write wins, matching
// graph.ApplyDelta's patch order.
//
//netembedvet:allow cowwrite the cloned flag gates every map write below behind clonePostingsMaps, which re-binds both postings and strata to fresh maps before the first write
func (out *Index) patchAttrs(old, next *graph.Graph, d *graph.Delta) {
	// final[attr][id] records each touched pair once, with its final
	// numeric value (nil = absent/non-numeric after the delta).
	final := make(map[string]map[graph.NodeID]*float64)
	record := func(id graph.NodeID, attr string, v *float64) {
		m := final[attr]
		if m == nil {
			m = make(map[graph.NodeID]*float64)
			final[attr] = m
		}
		m[id] = v
	}
	for _, up := range d.SetNodeAttrs {
		id, ok := next.NodeByName(up.Node)
		if !ok {
			continue // ApplyDelta would have rejected the delta
		}
		for attr := range up.Set {
			if f, ok := up.Set[attr].Float(); ok {
				record(id, attr, &f)
			} else {
				record(id, attr, nil)
			}
		}
		for _, attr := range up.Unset {
			record(id, attr, nil)
		}
	}

	cloned := false
	for attr, nodes := range final {
		var patchedPP *Postings
		for id, newVal := range nodes {
			var oldVal *float64
			if f, ok := old.Node(id).Attrs.Float(attr); ok {
				oldVal = &f
			}
			if !floatPtrEq(oldVal, newVal) {
				if patchedPP == nil {
					if pp := out.postings[attr]; pp != nil {
						patchedPP = pp.clone()
					} else {
						patchedPP = &Postings{}
					}
				}
				patchedPP.splice(id, oldVal, newVal)
			}
		}
		if patchedPP == nil {
			continue
		}
		if !cloned {
			out.clonePostingsMaps()
			cloned = true
		}
		if patchedPP.Len() == 0 {
			delete(out.postings, attr)
		} else {
			out.postings[attr] = patchedPP
		}
		if _, isStrata := out.strata[attr]; isStrata || containsAttr(out.cfg.StrataAttrs, attr) {
			out.strata[attr] = out.buildStrata(attr)
		}
	}
}

func (out *Index) clonePostingsMaps() {
	postings := make(map[string]*Postings, len(out.postings))
	for k, v := range out.postings {
		postings[k] = v
	}
	out.postings = postings
	strata := make(map[string][]*sets.Bitset, len(out.strata))
	for k, v := range out.strata {
		strata[k] = v
	}
	out.strata = strata
}

func containsAttr(attrs []string, attr string) bool {
	for _, a := range attrs {
		if a == attr {
			return true
		}
	}
	return false
}

func floatPtrEq(a, b *float64) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}
