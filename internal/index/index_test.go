package index

import (
	"fmt"
	"math/rand"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// randomGraph builds a random attributed graph for index testing.
func randomGraph(rng *rand.Rand, directed bool) *graph.Graph {
	g := graph.New(directed)
	n := 6 + rng.Intn(20)
	for i := 0; i < n; i++ {
		attrs := graph.Attrs{}
		if rng.Float64() < 0.8 {
			attrs = attrs.SetNum("slots", float64(1+rng.Intn(5)))
		}
		if rng.Float64() < 0.6 {
			attrs = attrs.SetNum("cpu", rng.Float64()*16)
		}
		if rng.Float64() < 0.3 {
			attrs = attrs.SetStr("os", "linux") // non-numeric: not indexed
		}
		g.AddNode(fmt.Sprintf("h%d", i), attrs)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if rng.Float64() < 0.25 {
				g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.SetNum("delay", rng.Float64()*100))
			}
		}
	}
	return g
}

// checkAgainstGraph verifies every index query against a direct scan of g.
func checkAgainstGraph(t *testing.T, label string, ix *Index, g *graph.Graph) {
	t.Helper()
	n := g.NumNodes()
	if ix.NumNodes() != n || ix.Directed() != g.Directed() {
		t.Fatalf("%s: shape mismatch", label)
	}
	maxDeg := 0
	for r := 0; r < n; r++ {
		if d := g.Degree(graph.NodeID(r)); d > maxDeg {
			maxDeg = d
		}
	}
	for d := 0; d <= maxDeg+2; d++ {
		got := ix.DegreeAtLeast(d)
		gotOut := ix.OutDegreeAtLeast(d)
		for r := 0; r < n; r++ {
			rid := graph.NodeID(r)
			if got.Has(rid) != (g.Degree(rid) >= d) {
				t.Fatalf("%s: DegreeAtLeast(%d) wrong at node %d", label, d, r)
			}
			if gotOut.Has(rid) != (g.OutDegree(rid) >= d) {
				t.Fatalf("%s: OutDegreeAtLeast(%d) wrong at node %d", label, d, r)
			}
		}
	}
	for r := 0; r < n; r++ {
		rid := graph.NodeID(r)
		nb := ix.Neighbors(rid)
		want := sets.NewBitset(n)
		for _, a := range g.Arcs(rid) {
			want.Set(a.To)
		}
		if !nb.Equal(want) {
			t.Fatalf("%s: Neighbors(%d) mismatch", label, r)
		}
		in := ix.InNeighbors(rid)
		wantIn := sets.NewBitset(n)
		for _, a := range g.InArcs(rid) {
			wantIn.Set(a.To)
		}
		if !in.Equal(wantIn) {
			t.Fatalf("%s: InNeighbors(%d) mismatch", label, r)
		}
	}
	for _, attr := range []string{"slots", "cpu", "missing"} {
		for _, x := range []float64{-1, 0, 0.5, 1, 2, 3, 3.7, 5, 100} {
			got := ix.AttrAtLeast(attr, x)
			for r := 0; r < n; r++ {
				rid := graph.NodeID(r)
				v, ok := g.Node(rid).Attrs.Float(attr)
				want := ok && v >= x
				if got.Has(rid) != want {
					t.Fatalf("%s: AttrAtLeast(%s, %v) wrong at node %d (have %v, ok=%v)",
						label, attr, x, r, v, ok)
				}
			}
		}
	}
}

func TestBuildMatchesGraph(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := randomGraph(rng, directed)
		ix := Build(g, 7, Config{})
		if ix.Version() != 7 {
			t.Fatal("version not stamped")
		}
		checkAgainstGraph(t, fmt.Sprintf("seed %d", seed), ix, g)
	}
}

// randomAttrDelta edits random node attributes (the monitor capacity-
// update shape).
func randomAttrDelta(rng *rand.Rand, g *graph.Graph) *graph.Delta {
	var d graph.Delta
	count := 1 + rng.Intn(4)
	for i := 0; i < count; i++ {
		r := graph.NodeID(rng.Intn(g.NumNodes()))
		up := graph.NodeAttrUpdate{Node: g.Node(r).Name}
		switch rng.Intn(4) {
		case 0:
			up.Set = graph.Attrs{}.SetNum("slots", float64(1+rng.Intn(6)))
		case 1:
			up.Set = graph.Attrs{}.SetNum("cpu", rng.Float64()*20)
		case 2:
			up.Unset = []string{"slots"}
		case 3:
			up.Set = graph.Attrs{}.SetStr("cpu", "busted") // numeric -> string leaves the postings
		}
		d.SetNodeAttrs = append(d.SetNodeAttrs, up)
	}
	return &d
}

// randomStructDelta adds/removes edges between existing nodes.
func randomStructDelta(rng *rand.Rand, g *graph.Graph) *graph.Delta {
	var d graph.Delta
	n := g.NumNodes()
	if g.NumEdges() > 0 && rng.Float64() < 0.7 {
		e := g.Edge(graph.EdgeID(rng.Intn(g.NumEdges())))
		d.RemoveEdges = append(d.RemoveEdges, graph.EdgeRef{
			Source: g.Node(e.From).Name, Target: g.Node(e.To).Name,
		})
	}
	for try := 0; try < 10 && len(d.AddEdges) < 2; try++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		dup := false
		for _, spec := range d.AddEdges {
			su, _ := g.NodeByName(spec.Source)
			sv, _ := g.NodeByName(spec.Target)
			if (su == u && sv == v) || (!g.Directed() && su == v && sv == u) {
				dup = true
			}
		}
		if dup {
			continue
		}
		d.AddEdges = append(d.AddEdges, graph.EdgeSpec{
			Source: g.Node(u).Name, Target: g.Node(v).Name,
			Attrs: graph.Attrs{}.SetNum("delay", rng.Float64()*100),
		})
	}
	return &d
}

// TestApplyMatchesRebuild drives random delta sequences through Apply and
// checks after every step that the patched index answers exactly like a
// from-scratch Build over the new graph — and that the pre-delta snapshot
// still answers like the old graph (persistence).
func TestApplyMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		directed := seed%2 == 0
		g := randomGraph(rng, directed)
		ix := Build(g, 1, Config{})
		for step := 0; step < 8; step++ {
			var d *graph.Delta
			switch rng.Intn(3) {
			case 0:
				d = randomAttrDelta(rng, g)
			case 1:
				d = randomStructDelta(rng, g)
			default:
				d = randomAttrDelta(rng, g)
				sd := randomStructDelta(rng, g)
				d.RemoveEdges, d.AddEdges = sd.RemoveEdges, sd.AddEdges
			}
			next, err := g.ApplyDelta(d)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			patched := ix.Apply(g, next, d, uint64(step+2))
			if patched.Version() != uint64(step+2) {
				t.Fatal("Apply did not stamp the new version")
			}
			label := fmt.Sprintf("seed %d step %d", seed, step)
			checkAgainstGraph(t, label+" (patched)", patched, next)
			// Persistence: the old snapshot still describes the old graph.
			checkAgainstGraph(t, label+" (old snapshot)", ix, g)
			g, ix = next, patched
		}
	}
}

// TestApplyUniverseChangeRebuilds pins the documented fallback: node
// add/remove renumbers the universe, so Apply rebuilds.
func TestApplyUniverseChangeRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, false)
	ix := Build(g, 1, Config{})
	d := &graph.Delta{
		AddNodes: []graph.NodeSpec{{Name: "fresh", Attrs: graph.Attrs{}.SetNum("slots", 9)}},
		AddEdges: []graph.EdgeSpec{{Source: "fresh", Target: g.Node(0).Name}},
	}
	next, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	patched := ix.Apply(g, next, d, 2)
	checkAgainstGraph(t, "after node add", patched, next)

	d2 := &graph.Delta{RemoveNodes: []string{"fresh"}}
	next2, err := next.ApplyDelta(d2)
	if err != nil {
		t.Fatal(err)
	}
	patched2 := patched.Apply(next, next2, d2, 3)
	checkAgainstGraph(t, "after node remove", patched2, next2)
}

func TestAttrAtLeastUsesStrata(t *testing.T) {
	g := graph.NewUndirected()
	for i := 0; i < 10; i++ {
		g.AddNode("", graph.Attrs{}.SetNum("slots", float64(i)))
	}
	ix := Build(g, 1, Config{StrataAttrs: []string{"slots"}, StrataLevels: 4})
	// Integral in-ladder thresholds and beyond-ladder/fractional ones must
	// agree with a scan either way.
	for _, x := range []float64{1, 2, 3, 4, 4.5, 5, 9, 10} {
		got := ix.AttrAtLeast("slots", x)
		if got.Count() != countGE(g, "slots", x) {
			t.Errorf("AttrAtLeast(slots, %v) = %d nodes, want %d", x, got.Count(), countGE(g, "slots", x))
		}
	}
}

func countGE(g *graph.Graph, attr string, x float64) int {
	n := 0
	for r := 0; r < g.NumNodes(); r++ {
		if v, ok := g.Node(graph.NodeID(r)).Attrs.Float(attr); ok && v >= x {
			n++
		}
	}
	return n
}

func TestPostingsSplice(t *testing.T) {
	pp := &Postings{}
	v1, v2, v3 := 1.0, 2.0, 2.0
	pp.splice(5, nil, &v1)
	pp.splice(3, nil, &v2)
	pp.splice(9, nil, &v3)
	if pp.Len() != 3 {
		t.Fatalf("Len = %d, want 3", pp.Len())
	}
	// Sorted by (value, id): (1,5), (2,3), (2,9).
	if pp.vals[0] != 1 || pp.ids[0] != 5 || pp.ids[1] != 3 || pp.ids[2] != 9 {
		t.Fatalf("postings out of order: %v %v", pp.vals, pp.ids)
	}
	// Move node 3 from 2 to 0.5, splicing a clone.
	newV := 0.5
	pp2 := pp.clone()
	pp2.splice(3, &v2, &newV)
	if pp2.vals[0] != 0.5 || pp2.ids[0] != 3 {
		t.Fatalf("spliced postings out of order: %v %v", pp2.vals, pp2.ids)
	}
	// Original untouched.
	if pp.vals[0] != 1 || pp.Len() != 3 {
		t.Error("splice through a clone modified the original postings")
	}
	// Remove node 9 entirely.
	pp2.splice(9, &v3, nil)
	if pp2.Len() != 2 {
		t.Fatalf("Len after removal = %d, want 2", pp2.Len())
	}
}
