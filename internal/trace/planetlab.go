// Package trace synthesizes and (de)serializes the all-pairs delay trace
// that the paper uses as its PlanetLab hosting network (§VII-B).
//
// The original all-sites-pings dataset (296 sites, 28,996 measured pairs
// with min/avg/max delay) is no longer distributed, so SyntheticPlanetLab
// builds a statistically matched substitute: sites are assigned to
// geographic regions, intra- and inter-region delays follow a calibrated
// distance model, and a random subset of pairs of the target size is
// "measured". The three distribution facts the paper's experiments rely on
// are pinned by tests:
//
//   - ≈6,700 edges (23%) have average delay within [10,100]ms — the
//     clique-query constraint of §VII-D;
//   - ≈70% of edges fall within [25,175]ms — the irregular composite
//     constraint range;
//   - links are abundant both in [1,75]ms (intra-site level) and in
//     [75,350]ms (wide-area level) — the regular composite constraints.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"netembed/internal/graph"
)

// Config sizes the synthetic trace. The zero value reproduces the paper's
// hosting network: 296 sites and 28,996 measured pairs.
type Config struct {
	Sites int
	Pairs int
}

func (c *Config) applyDefaults() {
	if c.Sites == 0 {
		c.Sites = 296
	}
	if c.Pairs == 0 {
		// Scale the paper's density (66.4% of all pairs) to the site count.
		allPairs := c.Sites * (c.Sites - 1) / 2
		c.Pairs = allPairs * 28996 / 43660
	}
}

// region is a geographic cluster with a population weight. Inter-region
// base delays live in interBase.
type region struct {
	name   string
	weight float64
}

var regions = []region{
	{"na-east", 0.24},
	{"na-west", 0.18},
	{"europe", 0.30},
	{"asia", 0.16},
	{"south-am", 0.06},
	{"oceania", 0.06},
}

// interBase[i][j] is the mean one-way delay in ms between regions i and j
// (i < j). Values were calibrated so the paper's three distribution facts
// hold; see the package comment and the distribution test.
var interBase = [][]float64{
	//        na-east na-west europe asia south-am oceania
	/*na-east*/ {0, 140, 140, 168, 128, 205},
	/*na-west*/ {0, 0, 138, 125, 158, 155},
	/*europe*/ {0, 0, 0, 162, 188, 275},
	/*asia*/ {0, 0, 0, 0, 265, 138},
	/*south-am*/ {0, 0, 0, 0, 0, 290},
	/*oceania*/ {0, 0, 0, 0, 0, 0},
}

func baseDelay(ri, rj int) float64 {
	if ri > rj {
		ri, rj = rj, ri
	}
	return interBase[ri][rj]
}

// SyntheticPlanetLab generates the substitute hosting network. Node
// attributes: region, osType, cpu, mem. Edge attributes: minDelay,
// avgDelay, maxDelay (milliseconds).
func SyntheticPlanetLab(cfg Config, rng *rand.Rand) *graph.Graph {
	cfg.applyDefaults()
	g := graph.NewUndirected()

	// Assign sites to regions proportionally to the weights.
	regionOf := make([]int, cfg.Sites)
	for i := range regionOf {
		x := rng.Float64()
		acc := 0.0
		for ri, r := range regions {
			acc += r.weight
			if x < acc || ri == len(regions)-1 {
				regionOf[i] = ri
				break
			}
		}
	}
	oses := []string{"linux", "linux", "linux", "linux", "freebsd"}
	for i := 0; i < cfg.Sites; i++ {
		attrs := graph.Attrs{}.
			SetStr("region", regions[regionOf[i]].name).
			SetStr("osType", oses[rng.Intn(len(oses))]).
			SetNum("cpu", float64(1+rng.Intn(8))).
			SetNum("mem", float64(512*(1+rng.Intn(8))))
		g.AddNode(fmt.Sprintf("site%03d", i+1), attrs)
	}

	// Pick exactly cfg.Pairs "measured" pairs. Measurement dropout is not
	// uniform on PlanetLab: nearby (intra-region) pairs almost always have
	// data, while long intercontinental pairs fail more often. Keeping
	// ~95% of intra-region pairs and back-filling with inter-region pairs
	// reproduces the geographic clustering the clique experiment (§VII-D)
	// depends on — without it the [10,100]ms "qualifying graph" has no
	// large cliques at all.
	type pair struct{ u, v int32 }
	var intra, inter []pair
	for u := 0; u < cfg.Sites; u++ {
		for v := u + 1; v < cfg.Sites; v++ {
			if regionOf[u] == regionOf[v] {
				intra = append(intra, pair{int32(u), int32(v)})
			} else {
				inter = append(inter, pair{int32(u), int32(v)})
			}
		}
	}
	rng.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })
	rng.Shuffle(len(inter), func(i, j int) { inter[i], inter[j] = inter[j], inter[i] })
	n := cfg.Pairs
	if max := len(intra) + len(inter); n > max {
		n = max
	}
	nIntra := len(intra) * 95 / 100
	if nIntra > n {
		nIntra = n
	}
	chosen := append(append(make([]pair, 0, n), intra[:nIntra]...), inter...)
	for _, p := range chosen[:n] {
		ru, rv := regionOf[p.u], regionOf[p.v]
		var avg float64
		if ru == rv {
			// Intra-region: shifted exponential, mean ≈ 31ms. The 6ms
			// floor matches reality (distinct sites are rarely closer)
			// and keeps nearby pairs inside the [10,100]ms clique window,
			// preserving the dense low-delay clusters of the real trace.
			avg = 6 + rng.ExpFloat64()*25
			if avg > 130 {
				avg = 130
			}
		} else {
			// Inter-region: base ±27%.
			b := baseDelay(ru, rv)
			avg = b * (0.73 + rng.Float64()*0.54)
		}
		min := avg * (0.82 + 0.13*rng.Float64())
		max := avg * (1.05 + 0.60*rng.Float64())
		attrs := graph.Attrs{}.
			SetNum("minDelay", round2(min)).
			SetNum("avgDelay", round2(avg)).
			SetNum("maxDelay", round2(max))
		g.MustAddEdge(p.u, p.v, attrs)
	}
	return g
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// Default returns the paper-sized synthetic trace for a seed.
func Default(seed int64) *graph.Graph {
	return SyntheticPlanetLab(Config{}, rand.New(rand.NewSource(seed)))
}

// DelayStats summarizes an all-pairs trace for calibration and reporting.
type DelayStats struct {
	Edges         int
	InWindow10100 int // avg delay within [10,100]ms
	InWindow25175 int // avg delay within [25,175]ms
	InWindow1075  int // avg delay within [1,75]ms
	InWindow75350 int // avg delay within [75,350]ms
}

// Stats computes the delay-window statistics the experiments depend on.
func Stats(g *graph.Graph) DelayStats {
	var s DelayStats
	s.Edges = g.NumEdges()
	for i := 0; i < g.NumEdges(); i++ {
		avg, ok := g.Edge(graph.EdgeID(i)).Attrs.Float("avgDelay")
		if !ok {
			continue
		}
		if avg >= 10 && avg <= 100 {
			s.InWindow10100++
		}
		if avg >= 25 && avg <= 175 {
			s.InWindow25175++
		}
		if avg >= 1 && avg <= 75 {
			s.InWindow1075++
		}
		if avg >= 75 && avg <= 350 {
			s.InWindow75350++
		}
	}
	return s
}

// WriteAllPairs serializes g in the textual all-pairs trace format:
//
//	site <name> <region>
//	pair <nameA> <nameB> <min> <avg> <max>
//
// one record per line, '#' comments allowed.
func WriteAllPairs(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# netembed all-pairs delay trace: %d sites, %d pairs\n", g.NumNodes(), g.NumEdges())
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(graph.NodeID(i))
		region, _ := n.Attrs.Text("region")
		if region == "" {
			region = "unknown"
		}
		fmt.Fprintf(bw, "site %s %s\n", n.Name, region)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		min, _ := e.Attrs.Float("minDelay")
		avg, _ := e.Attrs.Float("avgDelay")
		max, _ := e.Attrs.Float("maxDelay")
		fmt.Fprintf(bw, "pair %s %s %g %g %g\n",
			g.Node(e.From).Name, g.Node(e.To).Name, min, avg, max)
	}
	return bw.Flush()
}

// ReadAllPairs parses the textual all-pairs format back into a graph.
func ReadAllPairs(r io.Reader) (*graph.Graph, error) {
	g := graph.NewUndirected()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "site":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want 'site <name> <region>'", lineNo)
			}
			if _, exists := g.NodeByName(fields[1]); exists {
				return nil, fmt.Errorf("trace: line %d: duplicate site %q", lineNo, fields[1])
			}
			g.AddNode(fields[1], graph.Attrs{}.SetStr("region", fields[2]))
		case "pair":
			if len(fields) != 6 {
				return nil, fmt.Errorf("trace: line %d: want 'pair <a> <b> <min> <avg> <max>'", lineNo)
			}
			u, ok := g.NodeByName(fields[1])
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown site %q", lineNo, fields[1])
			}
			v, ok := g.NodeByName(fields[2])
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown site %q", lineNo, fields[2])
			}
			var d [3]float64
			for i := 0; i < 3; i++ {
				f, err := strconv.ParseFloat(fields[3+i], 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad delay %q", lineNo, fields[3+i])
				}
				d[i] = f
			}
			attrs := graph.Attrs{}.
				SetNum("minDelay", d[0]).
				SetNum("avgDelay", d[1]).
				SetNum("maxDelay", d[2])
			if _, err := g.AddEdge(u, v, attrs); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
