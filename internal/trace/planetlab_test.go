package trace

import (
	"math/rand"
	"strings"
	"testing"

	"netembed/internal/graph"
)

func TestDefaultSizeMatchesPaper(t *testing.T) {
	g := Default(1)
	if g.NumNodes() != 296 {
		t.Errorf("sites = %d, want 296", g.NumNodes())
	}
	if got := g.NumEdges(); got != 28996 {
		t.Errorf("edges = %v, want 28996", got)
	}
	if g.Directed() {
		t.Error("trace must be undirected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if !g.IsConnected() {
		t.Error("dense trace should be connected")
	}
}

// TestDelayDistributionMatchesPaper pins the three distribution facts the
// paper's experiments quote (see package comment).
func TestDelayDistributionMatchesPaper(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := Stats(Default(seed))
		frac := func(n int) float64 { return float64(n) / float64(s.Edges) }
		// "about 6,700 edges" fall in the clique window [10,100]ms: 23.1%.
		if f := frac(s.InWindow10100); f < 0.19 || f > 0.29 {
			t.Errorf("seed %d: [10,100]ms fraction = %.3f, want ≈0.23", seed, f)
		}
		// "the 25-175ms range ... contains about 70% of the links"
		// (within a few points here; the clique-supporting geographic
		// clustering trades a little mass out of this window).
		if f := frac(s.InWindow25175); f < 0.62 || f > 0.76 {
			t.Errorf("seed %d: [25,175]ms fraction = %.3f, want ≈0.70", seed, f)
		}
		// "abundant links in both ranges" 1-75ms and 75-350ms.
		if f := frac(s.InWindow1075); f < 0.12 {
			t.Errorf("seed %d: [1,75]ms fraction = %.3f, want abundant", seed, f)
		}
		if f := frac(s.InWindow75350); f < 0.40 {
			t.Errorf("seed %d: [75,350]ms fraction = %.3f, want abundant", seed, f)
		}
	}
}

func TestEdgeAttributesWellFormed(t *testing.T) {
	g := Default(2)
	for i := 0; i < g.NumEdges(); i++ {
		a := g.Edge(graph.EdgeID(i)).Attrs
		min, ok1 := a.Float("minDelay")
		avg, ok2 := a.Float("avgDelay")
		max, ok3 := a.Float("maxDelay")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("edge %d missing delay attrs: %v", i, a)
		}
		if !(min <= avg && avg <= max) {
			t.Fatalf("edge %d: min %v avg %v max %v out of order", i, min, avg, max)
		}
		if min <= 0 {
			t.Fatalf("edge %d: non-positive min delay %v", i, min)
		}
	}
}

func TestNodeAttributes(t *testing.T) {
	g := Default(3)
	regionCount := map[string]int{}
	for i := 0; i < g.NumNodes(); i++ {
		a := g.Node(graph.NodeID(i)).Attrs
		region, ok := a.Text("region")
		if !ok {
			t.Fatalf("node %d missing region", i)
		}
		regionCount[region]++
		if _, ok := a.Float("cpu"); !ok {
			t.Fatalf("node %d missing cpu", i)
		}
		if _, ok := a.Text("osType"); !ok {
			t.Fatalf("node %d missing osType", i)
		}
	}
	if len(regionCount) != len(regions) {
		t.Errorf("regions present = %v, want all %d", regionCount, len(regions))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, b := Default(7), Default(7)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different sizes")
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea, eb := a.Edge(graph.EdgeID(i)), b.Edge(graph.EdgeID(i))
		if ea.From != eb.From || ea.To != eb.To {
			t.Fatal("same seed produced different structure")
		}
		da, _ := ea.Attrs.Float("avgDelay")
		db, _ := eb.Attrs.Float("avgDelay")
		if da != db {
			t.Fatal("same seed produced different delays")
		}
	}
}

func TestCustomConfigScales(t *testing.T) {
	g := SyntheticPlanetLab(Config{Sites: 50}, rand.New(rand.NewSource(1)))
	if g.NumNodes() != 50 {
		t.Errorf("sites = %d", g.NumNodes())
	}
	// Density should track the paper's 66.4%.
	wantPairs := 50 * 49 / 2 * 28996 / 43660
	if g.NumEdges() != wantPairs {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantPairs)
	}
}

func TestAllPairsRoundTrip(t *testing.T) {
	orig := SyntheticPlanetLab(Config{Sites: 40}, rand.New(rand.NewSource(5)))
	var sb strings.Builder
	if err := WriteAllPairs(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllPairs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != orig.NumNodes() || got.NumEdges() != orig.NumEdges() {
		t.Fatalf("round trip size: %v vs %v", got, orig)
	}
	for i := 0; i < orig.NumEdges(); i++ {
		e := orig.Edge(graph.EdgeID(i))
		gu, _ := got.NodeByName(orig.Node(e.From).Name)
		gv, _ := got.NodeByName(orig.Node(e.To).Name)
		ge, ok := got.EdgeBetween(gu, gv)
		if !ok {
			t.Fatalf("edge %d lost", i)
		}
		for _, attr := range []string{"minDelay", "avgDelay", "maxDelay"} {
			wa, _ := e.Attrs.Float(attr)
			ga, _ := got.Edge(ge).Attrs.Float(attr)
			if wa != ga {
				t.Fatalf("edge %d %s: %v vs %v", i, attr, wa, ga)
			}
		}
	}
}

func TestReadAllPairsErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"bad site", "site a\n", "want 'site"},
		{"dup site", "site a x\nsite a y\n", "duplicate site"},
		{"bad pair arity", "site a x\nsite b x\npair a b 1 2\n", "want 'pair"},
		{"unknown site", "site a x\npair a b 1 2 3\n", "unknown site"},
		{"bad delay", "site a x\nsite b x\npair a b 1 two 3\n", "bad delay"},
		{"dup pair", "site a x\nsite b x\npair a b 1 2 3\npair b a 1 2 3\n", "duplicate"},
		{"unknown record", "blah\n", "unknown record"},
	}
	for _, c := range cases {
		_, err := ReadAllPairs(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestReadAllPairsSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nsite a na-east\nsite b europe\n\n# pairs\npair a b 1 2 3\n"
	g, err := ReadAllPairs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("parsed %v", g)
	}
}

func BenchmarkSyntheticPlanetLab(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Default(int64(i))
	}
}
