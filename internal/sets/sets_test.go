package sets

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromUnsorted(t *testing.T) {
	cases := []struct {
		in, want []int32
	}{
		{nil, nil},
		{[]int32{}, []int32{}},
		{[]int32{5}, []int32{5}},
		{[]int32{3, 1, 2}, []int32{1, 2, 3}},
		{[]int32{2, 2, 2}, []int32{2}},
		{[]int32{5, 1, 5, 3, 1}, []int32{1, 3, 5}},
	}
	for _, c := range cases {
		got := FromUnsorted(append([]int32(nil), c.in...))
		if !Equal(got, c.want) {
			t.Errorf("FromUnsorted(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	s := Set{1, 3, 5, 9, 11}
	for _, x := range s {
		if !Contains(s, x) {
			t.Errorf("Contains(%v, %d) = false, want true", s, x)
		}
	}
	for _, x := range []int32{0, 2, 4, 10, 12} {
		if Contains(s, x) {
			t.Errorf("Contains(%v, %d) = true, want false", s, x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains(nil, 1) = true")
	}
}

func TestIndexOf(t *testing.T) {
	s := Set{2, 4, 6}
	if got := IndexOf(s, 4); got != 1 {
		t.Errorf("IndexOf = %d, want 1", got)
	}
	if got := IndexOf(s, 5); got != -1 {
		t.Errorf("IndexOf missing = %d, want -1", got)
	}
}

func TestIntersectBasic(t *testing.T) {
	cases := []struct {
		a, b, want Set
	}{
		{Set{1, 2, 3}, Set{2, 3, 4}, Set{2, 3}},
		{Set{1, 2, 3}, Set{4, 5}, Set{}},
		{Set{}, Set{1}, Set{}},
		{Set{1, 5, 9}, Set{1, 5, 9}, Set{1, 5, 9}},
		{Set{1}, Set{1}, Set{1}},
	}
	for _, c := range cases {
		got := Intersect(c.a, c.b)
		if !Equal(got, c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Intersection must be symmetric.
		if rev := Intersect(c.b, c.a); !Equal(rev, got) {
			t.Errorf("Intersect not symmetric: %v vs %v", got, rev)
		}
	}
}

func TestIntersectGalloping(t *testing.T) {
	// Force the galloping path: |b| >= 16|a|.
	var b Set
	for i := int32(0); i < 400; i += 2 {
		b = append(b, i)
	}
	a := Set{0, 3, 100, 399}
	got := Intersect(a, b)
	want := Set{0, 100}
	if !Equal(got, want) {
		t.Errorf("galloping Intersect = %v, want %v", got, want)
	}
}

func TestIntersectManyInto(t *testing.T) {
	got := IntersectManyInto(nil, nil, Set{1, 2, 3, 4}, Set{2, 3, 4}, Set{0, 2, 4, 8})
	if want := (Set{2, 4}); !Equal(got, want) {
		t.Errorf("IntersectManyInto = %v, want %v", got, want)
	}
	if got := IntersectManyInto(nil, nil); len(got) != 0 {
		t.Errorf("IntersectManyInto() = %v, want empty", got)
	}
	if got := IntersectManyInto(nil, nil, Set{7, 9}); !Equal(got, Set{7, 9}) {
		t.Errorf("single-set intersection = %v", got)
	}
}

func TestUnionSubtract(t *testing.T) {
	a, b := Set{1, 3, 5}, Set{2, 3, 6}
	if got := Union(a, b); !Equal(got, Set{1, 2, 3, 5, 6}) {
		t.Errorf("Union = %v", got)
	}
	if got := Subtract(a, b); !Equal(got, Set{1, 5}) {
		t.Errorf("Subtract = %v", got)
	}
	if got := Subtract(b, a); !Equal(got, Set{2, 6}) {
		t.Errorf("Subtract = %v", got)
	}
	if got := Subtract(a, nil); !Equal(got, a) {
		t.Errorf("Subtract identity = %v", got)
	}
}

func TestInsertRemove(t *testing.T) {
	var s Set
	for _, x := range []int32{5, 1, 3, 3, 2} {
		s = Insert(s, x)
	}
	if !Equal(s, Set{1, 2, 3, 5}) {
		t.Fatalf("after inserts: %v", s)
	}
	s = Remove(s, 3)
	s = Remove(s, 42) // absent: no-op
	if !Equal(s, Set{1, 2, 5}) {
		t.Fatalf("after removes: %v", s)
	}
}

func TestRange(t *testing.T) {
	if got := Range(2, 5); !Equal(got, Set{2, 3, 4}) {
		t.Errorf("Range(2,5) = %v", got)
	}
	if got := Range(3, 3); len(got) != 0 {
		t.Errorf("Range(3,3) = %v", got)
	}
	if got := Range(5, 2); len(got) != 0 {
		t.Errorf("Range(5,2) = %v", got)
	}
}

func TestClone(t *testing.T) {
	s := Set{1, 2}
	c := Clone(s)
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone aliases input")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) != nil")
	}
}

// refSet is a map-based reference implementation for property tests.
type refSet map[int32]bool

func toRef(s Set) refSet {
	m := make(refSet, len(s))
	for _, x := range s {
		m[x] = true
	}
	return m
}

func fromRef(m refSet) Set {
	s := make(Set, 0, len(m))
	for x := range m {
		s = append(s, x)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func randSet(r *rand.Rand, maxVal int32) Set {
	n := r.Intn(40)
	raw := make([]int32, n)
	for i := range raw {
		raw[i] = r.Int31n(maxVal)
	}
	return FromUnsorted(raw)
}

func TestSetAlgebraMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		a, b := randSet(r, 64), randSet(r, 64)
		ra, rb := toRef(a), toRef(b)

		wantInter := make(refSet)
		for x := range ra {
			if rb[x] {
				wantInter[x] = true
			}
		}
		if got := Intersect(a, b); !Equal(got, fromRef(wantInter)) {
			t.Fatalf("Intersect(%v,%v) = %v, want %v", a, b, got, fromRef(wantInter))
		}

		wantUnion := make(refSet)
		for x := range ra {
			wantUnion[x] = true
		}
		for x := range rb {
			wantUnion[x] = true
		}
		if got := Union(a, b); !Equal(got, fromRef(wantUnion)) {
			t.Fatalf("Union(%v,%v) = %v", a, b, got)
		}

		wantSub := make(refSet)
		for x := range ra {
			if !rb[x] {
				wantSub[x] = true
			}
		}
		if got := Subtract(a, b); !Equal(got, fromRef(wantSub)) {
			t.Fatalf("Subtract(%v,%v) = %v", a, b, got)
		}
	}
}

func TestQuickIntersectionProperties(t *testing.T) {
	// Intersection results are always valid sets and subsets of both inputs.
	f := func(rawA, rawB []int32) bool {
		a := FromUnsorted(clip(rawA))
		b := FromUnsorted(clip(rawB))
		got := Intersect(a, b)
		if !IsSet(got) {
			return false
		}
		for _, x := range got {
			if !Contains(a, x) || !Contains(b, x) {
				return false
			}
		}
		// Every common element must appear.
		for _, x := range a {
			if Contains(b, x) && !Contains(got, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutesAndIdempotent(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		a := FromUnsorted(clip(rawA))
		b := FromUnsorted(clip(rawB))
		ab, ba := Union(a, b), Union(b, a)
		return Equal(ab, ba) && Equal(Union(a, a), a) && IsSet(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorganViaSubtract(t *testing.T) {
	// a\(b∪c) == (a\b)∩(a\c)
	f := func(rawA, rawB, rawC []int32) bool {
		a := FromUnsorted(clip(rawA))
		b := FromUnsorted(clip(rawB))
		c := FromUnsorted(clip(rawC))
		left := Subtract(a, Union(b, c))
		right := Intersect(Subtract(a, b), Subtract(a, c))
		return Equal(left, right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// clip bounds quick-generated values into a small domain so collisions are
// frequent enough to exercise the interesting paths.
func clip(raw []int32) []int32 {
	out := make([]int32, len(raw))
	for i, v := range raw {
		if v < 0 {
			v = -v
		}
		out[i] = v % 97
	}
	return out
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, x := range []int32{0, 63, 64, 129} {
		if b.Has(x) {
			t.Errorf("fresh bitmap has %d", x)
		}
		b.Set(x)
		if !b.Has(x) {
			t.Errorf("Set(%d) not visible", x)
		}
	}
	if got := b.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Clear(64) not visible")
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Errorf("Count after Reset = %d", got)
	}
}

func BenchmarkIntersectMerge(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	a := randSetN(r, 200, 1000)
	c := randSetN(r, 200, 1000)
	dst := make(Set, 0, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectInto(dst[:0], a, c)
	}
}

func BenchmarkIntersectGallop(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	a := randSetN(r, 10, 100000)
	c := randSetN(r, 5000, 100000)
	dst := make(Set, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectInto(dst[:0], a, c)
	}
}

func randSetN(r *rand.Rand, n int, maxVal int32) Set {
	raw := make([]int32, n)
	for i := range raw {
		raw[i] = r.Int31n(maxVal)
	}
	return FromUnsorted(raw)
}
