package sets

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The bitset is the dense mirror of the sorted-slice representation, so
// every algebraic operation is property-tested against its slice
// counterpart on randomized inputs: agreement here is what lets the
// search stack swap representations without changing solution sets.

const bitsetUniverse = 200 // spans several words, not word-aligned

// clipU maps arbitrary quick-generated values into [0, bitsetUniverse).
func clipU(raw []int32) []int32 {
	out := make([]int32, len(raw))
	for i, v := range raw {
		if v < 0 {
			v = -v
		}
		out[i] = v % bitsetUniverse
	}
	return out
}

func TestBitsetRoundTrip(t *testing.T) {
	f := func(raw []int32) bool {
		s := FromUnsorted(clipU(raw))
		b := FromSet(bitsetUniverse, s)
		return Equal(b.AppendTo(nil), s) && b.Count() == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsetIntersectMatchesSlice(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		a := FromUnsorted(clipU(rawA))
		b := FromUnsorted(clipU(rawB))
		want := Intersect(a, b)
		ba := FromSet(bitsetUniverse, a)
		nonempty := ba.IntersectWith(FromSet(bitsetUniverse, b))
		return Equal(ba.AppendTo(nil), want) && nonempty == (len(want) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsetAndNotMatchesSlice(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		a := FromUnsorted(clipU(rawA))
		b := FromUnsorted(clipU(rawB))
		want := Subtract(a, b)
		ba := FromSet(bitsetUniverse, a)
		nonempty := ba.AndNotWith(FromSet(bitsetUniverse, b))
		return Equal(ba.AppendTo(nil), want) && nonempty == (len(want) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsetUnionMatchesSlice(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		a := FromUnsorted(clipU(rawA))
		b := FromUnsorted(clipU(rawB))
		want := Union(a, b)
		ba := FromSet(bitsetUniverse, a)
		ba.UnionWith(FromSet(bitsetUniverse, b))
		return Equal(ba.AppendTo(nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsetCardinalityAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		b := NewBitset(n)
		member := make(map[int32]bool)
		for i := 0; i < 2*n; i++ {
			x := int32(rng.Intn(n))
			if rng.Float64() < 0.6 {
				b.Set(x)
				member[x] = true
			} else {
				b.Clear(x)
				delete(member, x)
			}
		}
		if b.Count() != len(member) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, b.Count(), len(member))
		}
		if b.Any() != (len(member) > 0) {
			t.Fatalf("trial %d: Any = %v with %d members", trial, b.Any(), len(member))
		}
		for x := int32(0); int(x) < n; x++ {
			if b.Has(x) != member[x] {
				t.Fatalf("trial %d: Has(%d) = %v, want %v", trial, x, b.Has(x), member[x])
			}
		}
	}
}

func TestBitsetForEachAscendingAndEarlyStop(t *testing.T) {
	s := Set{0, 1, 63, 64, 65, 127, 128, 199}
	b := FromSet(bitsetUniverse, s)
	var got Set
	b.ForEach(func(x int32) bool {
		got = append(got, x)
		return true
	})
	if !Equal(got, s) {
		t.Errorf("ForEach visited %v, want %v", got, s)
	}
	var first Set
	b.ForEach(func(x int32) bool {
		first = append(first, x)
		return len(first) < 3
	})
	if !Equal(first, s[:3]) {
		t.Errorf("early-stopped ForEach visited %v, want %v", first, s[:3])
	}
}

func TestBitsetCopyCloneEqual(t *testing.T) {
	a := FromSet(130, Set{1, 64, 129})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set(2)
	if a.Equal(b) || a.Has(2) {
		t.Fatal("clone shares storage with original")
	}
	c := NewBitset(130)
	c.CopyFrom(b)
	if !c.Equal(b) {
		t.Fatal("CopyFrom result differs")
	}
	c.Reset()
	if c.Any() || c.Count() != 0 {
		t.Fatal("Reset left members behind")
	}
	if a.Equal(NewBitset(131)) {
		t.Fatal("bitsets with different universes reported equal")
	}
}

func TestBitsetIntersectCount(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		sa, sb := FromUnsorted(clipU(rawA)), FromUnsorted(clipU(rawB))
		a, b := FromSet(bitsetUniverse, sa), FromSet(bitsetUniverse, sb)
		want := IntersectInto(nil, sa, sb)
		into := NewBitset(bitsetUniverse)
		if n := IntersectCountInto(into, a, b); n != len(want) || !Equal(into.AppendTo(nil), want) {
			return false
		}
		if n := a.IntersectCount(b); n != len(want) {
			return false
		}
		return Equal(a.AppendTo(nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsetSaveRestoreSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBitset(bitsetUniverse)
	for i := 0; i < 120; i++ {
		b.Set(int32(rng.Intn(bitsetUniverse)))
	}
	before := b.AppendTo(nil)
	// Save a span, mutate inside it, restore, and check byte identity.
	w0, n := 1, 2
	saved := b.SaveSpan(nil, w0, n)
	if len(saved) != n {
		t.Fatalf("SaveSpan returned %d words, want %d", len(saved), n)
	}
	for x := int32(64); x < 192; x++ {
		b.Clear(x)
	}
	b.RestoreSpan(saved, w0)
	if !Equal(b.AppendTo(nil), before) {
		t.Fatal("RestoreSpan did not undo the mutation")
	}
	if WordOf(63) != 0 || WordOf(64) != 1 || WordOf(199) != 3 {
		t.Fatal("WordOf wrong")
	}
}

func TestBitsetMax(t *testing.T) {
	b := NewBitset(bitsetUniverse)
	if b.Max() != -1 {
		t.Fatal("empty Max != -1")
	}
	b.Set(3)
	b.Set(130)
	if b.Max() != 130 {
		t.Fatalf("Max = %d, want 130", b.Max())
	}
	b.Clear(130)
	if b.Max() != 3 {
		t.Fatalf("Max after clear = %d, want 3", b.Max())
	}
}
