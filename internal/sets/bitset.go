package sets

import "math/bits"

// Bitset is the dense candidate-set representation: a fixed-universe
// bitmap over [0, n) packed into 64-bit words. It carries the same set
// algebra as the sorted-slice Set — intersection, subtraction, union,
// cardinality — but every binary operation is word-parallel, costing
// ⌈n/64⌉ machine ops regardless of cardinality. The search inner loops
// use it both for candidate sets (dense filter rows) and for O(1)
// membership marks (hosts in use during a search).
//
// The zero Bitset is empty with universe 0; use NewBitset or FromSet to
// size one. All binary operations require operands with equal universe.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over the universe [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// MakeBitsets returns count empty bitsets over the universe [0, n), all
// backed by a single contiguous words allocation. Table-shaped layouts
// (one row per host node) use this to cut allocator traffic from one
// object per row to two per table; the rows stay independent — writing
// one never touches another's words.
func MakeBitsets(n, count int) []Bitset {
	words := (n + 63) / 64
	backing := make([]uint64, words*count)
	out := make([]Bitset, count)
	for i := range out {
		out[i] = Bitset{words: backing[i*words : (i+1)*words : (i+1)*words], n: n}
	}
	return out
}

// FromSet returns a bitset over [0, n) holding the elements of s.
func FromSet(n int, s Set) *Bitset {
	b := NewBitset(n)
	b.AddSet(s)
	return b
}

// ReuseBitsets is MakeBitsets recycling prior backing storage: rows and
// backing come from an earlier call (or are nil) and are re-sliced into
// count zeroed bitsets over [0, n), allocating only when the recycled
// capacity is too small. It is the allocation-free steady state of the
// pooled search structures — a warm worker re-shapes the same two
// allocations for every query instead of paying MakeBitsets per search.
func ReuseBitsets(rows []Bitset, backing []uint64, n, count int) ([]Bitset, []uint64) {
	words := (n + 63) / 64
	need := words * count
	if cap(backing) < need {
		backing = make([]uint64, need)
	} else {
		backing = backing[:need]
		clear(backing)
	}
	if cap(rows) < count {
		rows = make([]Bitset, count)
	} else {
		rows = rows[:count]
	}
	for i := range rows {
		rows[i] = Bitset{words: backing[i*words : (i+1)*words : (i+1)*words], n: n}
	}
	return rows, backing
}

// ReuseBitset re-shapes b into an empty bitset over [0, n), reusing its
// words when they fit and allocating otherwise. A nil b allocates fresh.
func ReuseBitset(b *Bitset, n int) *Bitset {
	words := (n + 63) / 64
	if b == nil {
		return NewBitset(n)
	}
	if cap(b.words) < words {
		b.words = make([]uint64, words)
	} else {
		b.words = b.words[:words]
		clear(b.words)
	}
	b.n = n
	return b
}

// Len returns the universe size n.
func (b *Bitset) Len() int { return b.n }

// WordOf returns the index of the word holding member x.
func WordOf(x int32) int { return int(x >> 6) }

// SaveSpan appends the words in [w0, w0+n) to dst and returns the
// extended slice. Together with RestoreSpan it is the trail primitive of
// the forward-checking search: before a domain is pruned, the touched
// word span is saved onto a shared arena; backtracking copies it back.
func (b *Bitset) SaveSpan(dst []uint64, w0, n int) []uint64 {
	return append(dst, b.words[w0:w0+n]...)
}

// RestoreSpan copies src back over the words starting at w0, undoing the
// mutations made since the matching SaveSpan.
func (b *Bitset) RestoreSpan(src []uint64, w0 int) {
	copy(b.words[w0:], src)
}

// Set marks x as a member.
func (b *Bitset) Set(x int32) { b.words[x>>6] |= 1 << (uint(x) & 63) }

// Clear removes x.
func (b *Bitset) Clear(x int32) { b.words[x>>6] &^= 1 << (uint(x) & 63) }

// Has reports whether x is a member.
func (b *Bitset) Has(x int32) bool { return b.words[x>>6]&(1<<(uint(x)&63)) != 0 }

// Reset empties the bitset.
func (b *Bitset) Reset() {
	clear(b.words)
}

// Count returns the cardinality by popcount.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the bitset is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AddSet marks every element of the sorted-slice set s.
func (b *Bitset) AddSet(s Set) {
	for _, x := range s {
		b.Set(x)
	}
}

// CopyFrom overwrites b with o's contents. The universes must match.
func (b *Bitset) CopyFrom(o *Bitset) {
	copy(b.words, o.words)
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	out := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// IntersectWith replaces b with b ∩ o and reports whether the result is
// non-empty, so intersection chains can stop at the first empty set.
func (b *Bitset) IntersectWith(o *Bitset) bool {
	var any uint64
	for i, w := range o.words {
		b.words[i] &= w
		any |= b.words[i]
	}
	return any != 0
}

// IntersectCount replaces b with b ∩ o and returns the resulting
// cardinality in the same pass — the forward-checking prune step, where
// the count both detects wipeouts (0) and keeps the live domain sizes
// the dynamic variable ordering reads.
func (b *Bitset) IntersectCount(o *Bitset) int {
	n := 0
	for i, w := range o.words {
		b.words[i] &= w
		n += bits.OnesCount64(b.words[i])
	}
	return n
}

// Intersects reports whether b ∩ o is non-empty, exiting on the first
// overlapping word — the read-only wipeout probe: a prune that would
// empty the domain can reject its assignment without mutating anything,
// and the common non-empty case usually answers from word zero.
func (b *Bitset) Intersects(o *Bitset) bool {
	for i, w := range b.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectSave appends b's current words to arena, then replaces b
// with b ∩ o, reporting the extended arena and whether the result is
// non-empty. Fusing the trail save with the AND reads b's words once —
// the forward-checking prune step at its hottest.
func (b *Bitset) IntersectSave(arena []uint64, o *Bitset) ([]uint64, bool) {
	var any uint64
	for i, w := range b.words {
		arena = append(arena, w)
		b.words[i] = w & o.words[i]
		any |= b.words[i]
	}
	return arena, any != 0
}

// IntersectCountInto sets dst = a ∩ b and returns the resulting
// cardinality. dst may alias a (the in-place prune) or be a separate
// accumulator; all three must share a universe.
func IntersectCountInto(dst, a, b *Bitset) int {
	n := 0
	for i := range dst.words {
		dst.words[i] = a.words[i] & b.words[i]
		n += bits.OnesCount64(dst.words[i])
	}
	return n
}

// Max returns the largest member, or -1 when the bitset is empty — the
// backjump-target computation over conflict sets.
func (b *Bitset) Max() int32 {
	for i := len(b.words) - 1; i >= 0; i-- {
		if w := b.words[i]; w != 0 {
			return int32(i<<6) + int32(63-bits.LeadingZeros64(w))
		}
	}
	return -1
}

// AndNotWith replaces b with b \ o and reports whether the result is
// non-empty.
func (b *Bitset) AndNotWith(o *Bitset) bool {
	var any uint64
	for i, w := range o.words {
		b.words[i] &^= w
		any |= b.words[i]
	}
	return any != 0
}

// UnionWith replaces b with b ∪ o.
func (b *Bitset) UnionWith(o *Bitset) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Equal reports whether b and o hold the same members.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// AppendTo appends b's members to dst in ascending order and returns the
// extended slice — the conversion back to the sorted-slice representation,
// in the package's Into calling convention.
func (b *Bitset) AppendTo(dst Set) Set {
	for i, w := range b.words {
		base := int32(i << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ForEach visits the members in ascending order until visit returns false.
func (b *Bitset) ForEach(visit func(x int32) bool) {
	for i, w := range b.words {
		base := int32(i << 6)
		for w != 0 {
			if !visit(base + int32(bits.TrailingZeros64(w))) {
				return
			}
			w &= w - 1
		}
	}
}

// MinOver returns the minimum of vals[x] over b's members (ok=false for
// the empty set). It is the branch-and-bound lower-bound reduction: with
// vals holding per-host objective terms and b a live candidate domain,
// the answer is the cheapest assignment the domain still admits.
func (b *Bitset) MinOver(vals []float64) (min float64, ok bool) {
	for i, w := range b.words {
		base := int32(i << 6)
		for w != 0 {
			v := vals[base+int32(bits.TrailingZeros64(w))]
			if !ok || v < min {
				min, ok = v, true
			}
			w &= w - 1
		}
	}
	return min, ok
}
