package sets

import "math/bits"

// Bitset is the dense candidate-set representation: a fixed-universe
// bitmap over [0, n) packed into 64-bit words. It carries the same set
// algebra as the sorted-slice Set — intersection, subtraction, union,
// cardinality — but every binary operation is word-parallel, costing
// ⌈n/64⌉ machine ops regardless of cardinality. The search inner loops
// use it both for candidate sets (dense filter rows) and for O(1)
// membership marks (hosts in use during a search).
//
// The zero Bitset is empty with universe 0; use NewBitset or FromSet to
// size one. All binary operations require operands with equal universe.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over the universe [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// MakeBitsets returns count empty bitsets over the universe [0, n), all
// backed by a single contiguous words allocation. Table-shaped layouts
// (one row per host node) use this to cut allocator traffic from one
// object per row to two per table; the rows stay independent — writing
// one never touches another's words.
func MakeBitsets(n, count int) []Bitset {
	words := (n + 63) / 64
	backing := make([]uint64, words*count)
	out := make([]Bitset, count)
	for i := range out {
		out[i] = Bitset{words: backing[i*words : (i+1)*words : (i+1)*words], n: n}
	}
	return out
}

// FromSet returns a bitset over [0, n) holding the elements of s.
func FromSet(n int, s Set) *Bitset {
	b := NewBitset(n)
	b.AddSet(s)
	return b
}

// Len returns the universe size n.
func (b *Bitset) Len() int { return b.n }

// Set marks x as a member.
func (b *Bitset) Set(x int32) { b.words[x>>6] |= 1 << (uint(x) & 63) }

// Clear removes x.
func (b *Bitset) Clear(x int32) { b.words[x>>6] &^= 1 << (uint(x) & 63) }

// Has reports whether x is a member.
func (b *Bitset) Has(x int32) bool { return b.words[x>>6]&(1<<(uint(x)&63)) != 0 }

// Reset empties the bitset.
func (b *Bitset) Reset() {
	clear(b.words)
}

// Count returns the cardinality by popcount.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the bitset is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AddSet marks every element of the sorted-slice set s.
func (b *Bitset) AddSet(s Set) {
	for _, x := range s {
		b.Set(x)
	}
}

// CopyFrom overwrites b with o's contents. The universes must match.
func (b *Bitset) CopyFrom(o *Bitset) {
	copy(b.words, o.words)
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	out := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// IntersectWith replaces b with b ∩ o and reports whether the result is
// non-empty, so intersection chains can stop at the first empty set.
func (b *Bitset) IntersectWith(o *Bitset) bool {
	var any uint64
	for i, w := range o.words {
		b.words[i] &= w
		any |= b.words[i]
	}
	return any != 0
}

// AndNotWith replaces b with b \ o and reports whether the result is
// non-empty.
func (b *Bitset) AndNotWith(o *Bitset) bool {
	var any uint64
	for i, w := range o.words {
		b.words[i] &^= w
		any |= b.words[i]
	}
	return any != 0
}

// UnionWith replaces b with b ∪ o.
func (b *Bitset) UnionWith(o *Bitset) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Equal reports whether b and o hold the same members.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// AppendTo appends b's members to dst in ascending order and returns the
// extended slice — the conversion back to the sorted-slice representation,
// in the package's Into calling convention.
func (b *Bitset) AppendTo(dst Set) Set {
	for i, w := range b.words {
		base := int32(i << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ForEach visits the members in ascending order until visit returns false.
func (b *Bitset) ForEach(visit func(x int32) bool) {
	for i, w := range b.words {
		base := int32(i << 6)
		for w != 0 {
			if !visit(base + int32(bits.TrailingZeros64(w))) {
				return
			}
			w &= w - 1
		}
	}
}
