// Package sets provides the two candidate-set representations used by the
// NETEMBED filter matrices and search inner loops.
//
// The sparse representation is Set, an ascending duplicate-free []int32:
// compact when candidate sets are small relative to the host, with merge-
// or gallop-based intersections costing O(|a|+|b|) or O(|a| log |b|). The
// dense representation is Bitset, a fixed-universe packed bitmap whose
// binary operations are word-parallel: intersections cost ⌈n/64⌉ machine
// ops regardless of cardinality, which wins on small hosts (a row is a
// handful of words) and on dense filter tables where rows hold a sizable
// fraction of the host. core.BuildFilters chooses between the two
// adaptively by host size and adjacency density; Bitset.AppendTo and
// FromSet convert between them.
//
// The search inner loops are dominated by intersections of such sets, so
// the operations here are written to be allocation-conscious: every
// operation has an In-place/Into variant that appends to a caller-provided
// destination slice or overwrites a caller-owned bitset.
package sets

import "sort"

// Set is an ascending, duplicate-free slice of int32 element IDs.
type Set = []int32

// FromUnsorted sorts s in place, removes duplicates, and returns the
// resulting set. The input slice is reused.
func FromUnsorted(s []int32) Set {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether x is an element of s, by binary search.
func Contains(s Set, x int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// IndexOf returns the position of x in s, or -1 if absent.
func IndexOf(s Set, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == x {
		return lo
	}
	return -1
}

// IsSet reports whether s is ascending and duplicate-free.
func IsSet(s Set) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// IntersectInto appends the intersection of a and b to dst and returns the
// extended slice. When the sizes are badly skewed it gallops through the
// longer side with binary searches instead of a linear merge.
func IntersectInto(dst Set, a, b Set) Set {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	// a is the shorter set. Gallop when b is much larger.
	if len(b) >= 16*len(a) {
		lo := 0
		for _, x := range a {
			lo += searchFrom(b[lo:], x)
			if lo < len(b) && b[lo] == x {
				dst = append(dst, x)
				lo++
			}
			if lo >= len(b) {
				break
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// searchFrom returns the smallest index i in s with s[i] >= x (len(s) if none).
func searchFrom(s Set, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Intersect returns the intersection of a and b as a fresh set.
func Intersect(a, b Set) Set {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	return IntersectInto(make(Set, 0, n), a, b)
}

// IntersectManyInto intersects all the given sets into dst, using scratch
// as working space. Both dst and scratch are truncated and reused; the
// returned slice aliases dst's array (possibly regrown). Passing no sets
// yields an empty result.
func IntersectManyInto(dst, scratch Set, ss ...Set) Set {
	dst = dst[:0]
	if len(ss) == 0 {
		return dst
	}
	// Start from the smallest set: intersection size is bounded by it.
	min := 0
	for i, s := range ss {
		if len(s) < len(ss[min]) {
			min = i
		}
	}
	dst = append(dst, ss[min]...)
	for i, s := range ss {
		if i == min || len(dst) == 0 {
			continue
		}
		scratch = IntersectInto(scratch[:0], dst, s)
		dst, scratch = scratch, dst
	}
	return dst
}

// UnionInto appends the union of a and b to dst and returns it.
func UnionInto(dst Set, a, b Set) Set {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Union returns the union of a and b as a fresh set.
func Union(a, b Set) Set {
	return UnionInto(make(Set, 0, len(a)+len(b)), a, b)
}

// SubtractInto appends a\b to dst and returns it.
func SubtractInto(dst Set, a, b Set) Set {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return append(dst, a[i:]...)
}

// Subtract returns a\b as a fresh set.
func Subtract(a, b Set) Set {
	return SubtractInto(make(Set, 0, len(a)), a, b)
}

// Equal reports whether a and b hold the same elements.
func Equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Insert returns s with x added, preserving order. The input slice may be
// reused. Inserting an existing element is a no-op.
func Insert(s Set, x int32) Set {
	i := searchFrom(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// Remove returns s with x removed, preserving order. Removing an absent
// element is a no-op.
func Remove(s Set, x int32) Set {
	i := searchFrom(s, x)
	if i >= len(s) || s[i] != x {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// Clone returns a copy of s.
func Clone(s Set) Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Range returns the set {lo, lo+1, ..., hi-1}.
func Range(lo, hi int32) Set {
	if hi <= lo {
		return Set{}
	}
	s := make(Set, 0, hi-lo)
	for v := lo; v < hi; v++ {
		s = append(s, v)
	}
	return s
}
