// Package engine is the asynchronous embedding job engine: it sits
// between the HTTP API and the mapping service, turning blocking
// Service.Embed calls into a submit/poll/cancel job lifecycle with a
// bounded queue, a fixed worker pool, explicit backpressure, and a
// model-versioned result cache.
//
// The paper frames NETEMBED as a *service* answering mapping queries
// against a continuously re-measured hosting network; a long ECF search
// must not pin an HTTP handler goroutine, a caller that gives up must be
// able to stop the search (not just abandon it), and identical queries
// against an unchanged network snapshot should not recompute. The engine
// provides exactly that:
//
//   - Submit enqueues a job onto a bounded queue and returns immediately;
//     when the queue is full it fails fast with ErrQueueFull so the HTTP
//     layer can answer 429 instead of stacking goroutines.
//   - Jobs move queued → running → done/failed/canceled. Cancel stops a
//     queued job instantly and a running one cooperatively, via the
//     Options.Stop hook threaded through service.Request into every
//     search algorithm's deadline check.
//   - Answers are cached under (request fingerprint, model version);
//     resubmitting an identical query against the same snapshot is O(1),
//     and a monitor publish invalidates automatically because the
//     current version is part of every lookup.
//   - A periodic tick prunes expired ledger leases and sweeps
//     stale-version cache entries.
//   - Close drains gracefully: running jobs finish, queued jobs fail
//     with ErrShuttingDown, workers exit.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/core"
	"netembed/internal/service"
)

// State classifies a job's position in its lifecycle.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobID identifies a submitted job.
type JobID string

// Engine errors.
var (
	// ErrQueueFull is backpressure: the submission queue is at capacity.
	// HTTP maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("engine: submission queue full")
	// ErrShuttingDown rejects submissions to (and fails jobs queued in) a
	// closing engine.
	ErrShuttingDown = errors.New("engine: shutting down")
	// ErrJobNotFound reports an unknown job ID.
	ErrJobNotFound = errors.New("engine: job not found")
	// ErrJobFinished rejects canceling a job that already reached
	// done/failed.
	ErrJobFinished = errors.New("engine: job already finished")
)

// Job is one asynchronous embedding request. All exported accessors are
// safe for concurrent use.
type Job struct {
	id  JobID
	req service.Request

	cancelFlag atomic.Bool   // observed by the search's Stop hook
	done       chan struct{} // closed on the terminal transition

	// cacheKey/cacheable are fixed at submission (requestKey is pure in
	// the request), so workers never rehash the query graph.
	cacheKey  string
	cacheable bool

	mu        sync.Mutex
	state     State
	resp      *service.Response
	err       error
	fromCache bool
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Anytime incumbent of an optimizing job: the best feasible embedding
	// (by names) found so far and its objective cost, streamed in by the
	// search's OnImprove hook so GET /jobs/{id} can answer best-so-far
	// while the optimality proof is still running.
	bestSoFar service.NamedMapping
	bestCost  float64
}

// Info is an immutable snapshot of a job, safe to hand to encoders.
type Info struct {
	ID        JobID
	State     State
	FromCache bool
	Submitted time.Time
	Started   time.Time // zero until the job leaves the queue
	Finished  time.Time // zero until terminal
	Response  *service.Response
	Err       error
	// BestSoFar/BestCost carry an optimizing job's anytime incumbent: nil
	// until the search finds its first feasible embedding, then the best
	// one seen (by names) and its objective cost. Once the job is done,
	// Response is authoritative.
	BestSoFar service.NamedMapping
	BestCost  float64
}

// ID returns the job's identifier.
func (j *Job) ID() JobID { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info snapshots the job.
func (j *Job) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Info{
		ID:        j.id,
		State:     j.state,
		FromCache: j.fromCache,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Response:  j.resp,
		Err:       j.err,
		BestSoFar: j.bestSoFar,
		BestCost:  j.bestCost,
	}
}

// noteBest records an incumbent improvement. Improvements can arrive out
// of order when ParallelECF workers race, so only a strictly better cost
// replaces the stored incumbent.
func (j *Job) noteBest(nm service.NamedMapping, cost float64) {
	j.mu.Lock()
	if j.bestSoFar == nil || cost < j.bestCost {
		j.bestSoFar, j.bestCost = nm, cost
	}
	j.mu.Unlock()
}

// finish performs the terminal transition exactly once; later calls
// (e.g. a worker completing a search that Cancel already marked
// canceled) are no-ops. It reports whether this call won.
func (j *Job) finish(state State, resp *service.Response, err error, fromCache bool) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.resp = resp
	j.err = err
	j.fromCache = fromCache
	j.finished = time.Now()
	close(j.done)
	return true
}

// Config tunes an Engine. The zero value gets sensible defaults.
type Config struct {
	// Workers sizes the pool draining the queue (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many jobs may wait beyond the ones running;
	// submissions past it fail with ErrQueueFull (default 128).
	QueueDepth int
	// CacheCapacity bounds the result cache entry count; negative
	// disables caching (default 512).
	CacheCapacity int
	// TickInterval paces the maintenance tick — ledger lease pruning,
	// stale-version cache sweeping, and finished-job record expiry
	// (default 1s).
	TickInterval time.Duration
	// JobRetention is how long terminal job records stay pollable before
	// the tick forgets them (default 15m).
	JobRetention time.Duration
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 512
	}
	if c.TickInterval <= 0 {
		c.TickInterval = time.Second
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 15 * time.Minute
	}
}

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	Queued    int   `json:"queued"`    // jobs waiting in the queue
	Running   int   `json:"running"`   // jobs currently searching
	Submitted int64 `json:"submitted"` // accepted submissions, ever
	Completed int64 `json:"completed"` // jobs that reached done
	Failed    int64 `json:"failed"`    // jobs that reached failed
	Canceled  int64 `json:"canceled"`  // jobs that reached canceled

	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	CacheEntries int   `json:"cacheEntries"`

	QueueFullRejections int64 `json:"queueFullRejections"`
	LeasesPruned        int64 `json:"leasesPruned"`

	// Cumulative search-effort counters, summed over every job answered
	// by a fresh search (cache hits replay a result without searching,
	// so they add nothing): forward-checking domain prunes,
	// conflict-directed backjumps, and work-stealing task migrations
	// inside ParallelECF. They make the FC-CBJ engine's pruning work
	// observable at the service level without scraping per-job stats.
	SearchPruneOps  int64 `json:"searchPruneOps"`
	SearchBackjumps int64 `json:"searchBackjumps"`
	SearchWipeouts  int64 `json:"searchWipeouts"`
	SearchSteals    int64 `json:"searchSteals"`

	// Volume counters for the same searches: filter-build work
	// (constraint evaluations and stored candidates), tree size
	// (nodes expanded, dead ends), on-demand constraint checks (LNS),
	// and the wipeout-depth sum that turns SearchWipeouts into an
	// average prune depth.
	SearchNodesVisited    int64 `json:"searchNodesVisited"`
	SearchBacktracks      int64 `json:"searchBacktracks"`
	SearchEdgePairsEval   int64 `json:"searchEdgePairsEval"`
	SearchFilterEntries   int64 `json:"searchFilterEntries"`
	SearchConstraintChk   int64 `json:"searchConstraintChk"`
	SearchWipeoutDepthSum int64 `json:"searchWipeoutDepthSum"`

	// Path-mode counters, summed the same way: witness DFS enumerations
	// actually run, witness answers served from the per-run memo, and
	// witness probes rejected by the reachability/bound oracle.
	SearchWitnessProbes int64 `json:"searchWitnessProbes"`
	SearchWitnessHits   int64 `json:"searchWitnessHits"`
	SearchReachPrunes   int64 `json:"searchReachPrunes"`

	// Branch-and-bound counters for optimizing searches: subtrees cut by
	// the incumbent bound, strict incumbent improvements, and lower-bound
	// recomputation probes (postings walks / domain scans).
	SearchBoundCuts        int64 `json:"searchBoundCuts"`
	SearchIncumbentUpdates int64 `json:"searchIncumbentUpdates"`
	SearchBoundProbes      int64 `json:"searchBoundProbes"`
}

// Engine runs embedding jobs asynchronously against a service. Safe for
// concurrent use.
type Engine struct {
	svc   *service.Service
	cfg   Config
	cache *resultCache // nil when disabled

	mu     sync.Mutex // guards closed and sends into queue vs. close(queue)
	closed bool
	queue  chan *Job
	start  sync.Once // lazily spawns workers + tick on first submission

	jobsMu sync.Mutex
	jobs   map[JobID]*Job
	nextID int64

	maintMu    sync.Mutex
	maintainer Maintainer

	workerWG sync.WaitGroup
	tickStop chan struct{}
	tickWG   sync.WaitGroup

	queuedGauge  atomic.Int64
	runningGauge atomic.Int64
	submitted    atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	canceled     atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	rejections   atomic.Int64
	leasesPruned atomic.Int64

	searchPruneOps         atomic.Int64
	searchBackjumps        atomic.Int64
	searchWipeouts         atomic.Int64
	searchSteals           atomic.Int64
	searchWitnessProbes    atomic.Int64
	searchWitnessHits      atomic.Int64
	searchReachPrunes      atomic.Int64
	searchNodesVisited     atomic.Int64
	searchBacktracks       atomic.Int64
	searchEdgePairsEval    atomic.Int64
	searchFilterEntries    atomic.Int64
	searchConstraintChk    atomic.Int64
	searchWipeoutDepthSum  atomic.Int64
	searchBoundCuts        atomic.Int64
	searchIncumbentUpdates atomic.Int64
	searchBoundProbes      atomic.Int64
}

// New builds an engine over svc. The worker pool and maintenance tick
// start lazily on the first submission, so constructing an engine (or an
// httpapi.Server, which embeds one) costs no goroutines until it is
// actually used. Call Close to drain and stop a used engine.
func New(svc *service.Service, cfg Config) *Engine {
	cfg.applyDefaults()
	e := &Engine{
		svc:      svc,
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[JobID]*Job),
		tickStop: make(chan struct{}),
	}
	if cfg.CacheCapacity > 0 {
		e.cache = newResultCache(cfg.CacheCapacity)
	}
	return e
}

// ensureStarted spawns the worker pool and the maintenance tick exactly
// once. The spawned goroutines take e.mu only transiently per job, so
// calling this while holding e.mu is safe.
func (e *Engine) ensureStarted() {
	e.start.Do(func() {
		for i := 0; i < e.cfg.Workers; i++ {
			e.workerWG.Add(1)
			go e.worker()
		}
		e.tickWG.Add(1)
		go e.tick()
	})
}

// Service exposes the underlying mapping service.
func (e *Engine) Service() *service.Service { return e.svc }

// Submit validates and enqueues a request, returning the job handle
// immediately. A cache hit completes the job synchronously (state done,
// FromCache true) without consuming a queue slot. A full queue fails
// with ErrQueueFull; a closing engine with ErrShuttingDown.
func (e *Engine) Submit(req service.Request) (*Job, error) {
	if req.Query == nil {
		return nil, service.ErrNoQuery
	}
	job := &Job{
		req:       req,
		state:     StateQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	if e.cache != nil {
		job.cacheKey, job.cacheable = requestKey(req)
	}

	// Cache fast path: answered in O(1), never touches the queue. The
	// closed check comes first so a drained engine refuses even cached
	// submissions, as Close documents.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrShuttingDown
	}
	e.ensureStarted()
	if job.cacheable {
		if resp, ok := e.cache.get(job.cacheKey, e.svc.Model().Version()); ok {
			e.mu.Unlock()
			e.register(job)
			e.submitted.Add(1)
			e.cacheHits.Add(1)
			job.finish(StateDone, resp, nil, true)
			e.completed.Add(1)
			return job, nil
		}
	}
	// Bump the gauge before the send: the worker's decrement strictly
	// follows its receive, so the gauge can never dip negative.
	e.queuedGauge.Add(1)
	select {
	case e.queue <- job:
		e.mu.Unlock()
	default:
		e.mu.Unlock()
		e.queuedGauge.Add(-1)
		e.rejections.Add(1)
		return nil, ErrQueueFull
	}
	e.register(job)
	e.submitted.Add(1)
	return job, nil
}

// SubmitWait is the synchronous façade the /embed endpoint keeps: submit,
// then wait for the terminal state or ctx expiry. A ctx cancellation
// cancels the job (stopping its search) before returning.
func (e *Engine) SubmitWait(ctx context.Context, req service.Request) (*service.Response, error) {
	job, err := e.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		_, _ = e.Cancel(job.ID())
		return nil, ctx.Err()
	}
	info := job.Info()
	switch info.State {
	case StateDone:
		return info.Response, nil
	case StateCanceled:
		return nil, fmt.Errorf("engine: job %s canceled", job.ID())
	default:
		return nil, info.Err
	}
}

// Job returns the handle for an ID.
func (e *Engine) Job(id JobID) (*Job, bool) {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel stops a job: a queued job transitions to canceled immediately
// (the worker later skips it), a running one has its Stop hook flipped so
// the search halts at the next deadline check — well before any
// wall-clock timeout — and is marked canceled right away. Canceling an
// already-canceled job is an idempotent success; a done or failed job
// returns ErrJobFinished.
func (e *Engine) Cancel(id JobID) (Info, error) {
	job, ok := e.Job(id)
	if !ok {
		return Info{}, ErrJobNotFound
	}
	job.cancelFlag.Store(true)
	if job.finish(StateCanceled, nil, fmt.Errorf("engine: job %s canceled", id), false) {
		e.canceled.Add(1)
		return job.Info(), nil
	}
	info := job.Info()
	if info.State == StateCanceled {
		return info, nil
	}
	return info, ErrJobFinished
}

// Wait blocks until the job is terminal or ctx expires, returning the
// final snapshot.
func (e *Engine) Wait(ctx context.Context, id JobID) (Info, error) {
	job, ok := e.Job(id)
	if !ok {
		return Info{}, ErrJobNotFound
	}
	select {
	case <-job.Done():
		return job.Info(), nil
	case <-ctx.Done():
		return job.Info(), ctx.Err()
	}
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queued:              int(e.queuedGauge.Load()),
		Running:             int(e.runningGauge.Load()),
		Submitted:           e.submitted.Load(),
		Completed:           e.completed.Load(),
		Failed:              e.failed.Load(),
		Canceled:            e.canceled.Load(),
		CacheHits:           e.cacheHits.Load(),
		CacheMisses:         e.cacheMisses.Load(),
		CacheEntries:        e.cache.len(),
		QueueFullRejections: e.rejections.Load(),
		LeasesPruned:        e.leasesPruned.Load(),
		SearchPruneOps:      e.searchPruneOps.Load(),
		SearchBackjumps:     e.searchBackjumps.Load(),
		SearchWipeouts:      e.searchWipeouts.Load(),
		SearchSteals:        e.searchSteals.Load(),
		SearchWitnessProbes: e.searchWitnessProbes.Load(),
		SearchWitnessHits:   e.searchWitnessHits.Load(),
		SearchReachPrunes:   e.searchReachPrunes.Load(),

		SearchNodesVisited:    e.searchNodesVisited.Load(),
		SearchBacktracks:      e.searchBacktracks.Load(),
		SearchEdgePairsEval:   e.searchEdgePairsEval.Load(),
		SearchFilterEntries:   e.searchFilterEntries.Load(),
		SearchConstraintChk:   e.searchConstraintChk.Load(),
		SearchWipeoutDepthSum: e.searchWipeoutDepthSum.Load(),

		SearchBoundCuts:        e.searchBoundCuts.Load(),
		SearchIncumbentUpdates: e.searchIncumbentUpdates.Load(),
		SearchBoundProbes:      e.searchBoundProbes.Load(),
	}
}

// Close drains the engine: no new submissions are accepted, jobs still in
// the queue fail with ErrShuttingDown, running searches are left to
// finish, and the worker pool plus the maintenance tick are joined. The
// ctx bounds how long to wait for running jobs; on expiry their Stop
// hooks are flipped so they wind down soon after, and ctx.Err() is
// returned.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.queue) // workers drain the remainder, failing each job
	e.mu.Unlock()

	close(e.tickStop)
	e.tickWG.Wait()

	workersDone := make(chan struct{})
	go func() {
		e.workerWG.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		// Give up on graceful: cancel whatever is still running.
		e.jobsMu.Lock()
		for _, j := range e.jobs {
			j.cancelFlag.Store(true)
		}
		e.jobsMu.Unlock()
		<-workersDone
		return ctx.Err()
	}
}

func (e *Engine) register(job *Job) {
	e.jobsMu.Lock()
	e.nextID++
	job.id = JobID(strconv.FormatInt(e.nextID, 10))
	e.jobs[job.id] = job
	e.jobsMu.Unlock()
}

// worker drains the queue until it is closed; after Close the remaining
// queued jobs are failed instead of run.
func (e *Engine) worker() {
	defer e.workerWG.Done()
	for job := range e.queue {
		e.queuedGauge.Add(-1)
		e.mu.Lock()
		draining := e.closed
		e.mu.Unlock()
		if draining {
			if job.finish(StateFailed, nil, ErrShuttingDown, false) {
				e.failed.Add(1)
			}
			continue
		}
		e.run(job)
	}
}

// run executes one job: re-check cancellation and the cache, then search
// with the job's Stop hook threaded through the request. Fresh answers
// fold their effort counters into the engine's cumulative totals.
//
//statsthread:fold core.Stats
func (e *Engine) run(job *Job) {
	if job.cancelFlag.Load() {
		// Canceled while queued; Cancel normally finished it already, but
		// settle it regardless so no waiter can hang on the done channel.
		if job.finish(StateCanceled, nil, fmt.Errorf("engine: job %s canceled", job.id), false) {
			e.canceled.Add(1)
		}
		return
	}
	if job.cacheable {
		// Second look: an identical job may have completed, or the model
		// may have changed, since submission.
		if resp, ok := e.cache.get(job.cacheKey, e.svc.Model().Version()); ok {
			if job.finish(StateDone, resp, nil, true) {
				e.cacheHits.Add(1)
				e.completed.Add(1)
			}
			return
		}
		e.cacheMisses.Add(1)
	}

	job.mu.Lock()
	if job.state.Terminal() {
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()
	e.runningGauge.Add(1)
	defer e.runningGauge.Add(-1)

	req := job.req
	prevStop := req.Stop
	req.Stop = func() bool {
		return job.cancelFlag.Load() || (prevStop != nil && prevStop())
	}
	if req.Optimize && req.Objective.Enabled() {
		// Anytime hook, injected here — after the cache key was fixed at
		// Submit, exactly like the Stop wrap above — so polling a running
		// optimize job surfaces its best incumbent.
		prevImprove := req.OnImprove
		req.OnImprove = func(nm service.NamedMapping, cost float64) {
			job.noteBest(nm, cost)
			if prevImprove != nil {
				prevImprove(nm, cost)
			}
		}
	}

	resp, err := e.svc.Embed(req)
	switch {
	case job.cancelFlag.Load():
		// Usually Cancel already marked the job; Close's ctx-expiry path
		// flips the flag without finishing, so settle it here too —
		// otherwise the done channel never closes and waiters hang.
		if job.finish(StateCanceled, nil, fmt.Errorf("engine: job %s canceled", job.id), false) {
			e.canceled.Add(1)
		}
	case err != nil:
		if job.finish(StateFailed, nil, err, false) {
			e.failed.Add(1)
		}
	default:
		e.searchPruneOps.Add(resp.Stats.PruneOps)
		e.searchBackjumps.Add(resp.Stats.Backjumps)
		e.searchWipeouts.Add(resp.Stats.Wipeouts)
		e.searchSteals.Add(resp.Stats.Steals)
		e.searchWitnessProbes.Add(resp.Stats.WitnessProbes)
		e.searchWitnessHits.Add(resp.Stats.WitnessHits)
		e.searchReachPrunes.Add(resp.Stats.ReachPrunes)
		e.searchNodesVisited.Add(resp.Stats.NodesVisited)
		e.searchBacktracks.Add(resp.Stats.Backtracks)
		e.searchEdgePairsEval.Add(resp.Stats.EdgePairsEval)
		e.searchFilterEntries.Add(resp.Stats.FilterEntries)
		e.searchConstraintChk.Add(resp.Stats.ConstraintChk)
		e.searchWipeoutDepthSum.Add(resp.Stats.WipeoutDepthSum)
		e.searchBoundCuts.Add(resp.Stats.BoundCuts)
		e.searchIncumbentUpdates.Add(resp.Stats.IncumbentUpdates)
		e.searchBoundProbes.Add(resp.Stats.BoundProbes)
		if job.cacheable && cacheableResponse(req, resp) {
			e.cache.put(job.cacheKey, resp.ModelVersion, resp)
		}
		if job.finish(StateDone, resp, nil, false) {
			e.completed.Add(1)
		}
	}
}

// cacheableResponse decides whether an answer is deterministic enough to
// replay: complete enumerations always are, and partial ones only when
// they were truncated by the request's own MaxResults quota. Timeout
// truncation depends on machine load at run time, so replaying it would
// freeze a transiently bad answer until the next model publish.
func cacheableResponse(req service.Request, resp *service.Response) bool {
	switch resp.Status {
	case core.StatusComplete:
		return true
	case core.StatusPartial:
		return req.MaxResults > 0 && len(resp.Mappings) >= req.MaxResults
	default:
		return false
	}
}

// Maintainer receives the engine's periodic maintenance tick after the
// engine's own housekeeping ran: the ledger's clock reading for the
// round and the lease IDs the expiry sweep just removed. The embedding
// lifecycle manager hooks in here — expired leases flip their owning
// embeddings to Expired immediately, and the health/repair pass paces
// itself off the tick. Implementations must be safe for concurrent use
// with the rest of their own API; the engine calls them from its tick
// goroutine only.
type Maintainer interface {
	Maintain(now time.Time, prunedLeases []service.LeaseID)
}

// SetMaintainer attaches (or, with nil, detaches) the maintenance hook.
// Safe to call on a live engine; the next tick observes the change.
func (e *Engine) SetMaintainer(m Maintainer) {
	e.maintMu.Lock()
	e.maintainer = m
	e.maintMu.Unlock()
}

func (e *Engine) currentMaintainer() Maintainer {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	return e.maintainer
}

// tick runs the periodic maintenance: prune expired ledger leases, sweep
// cache entries stranded on stale model versions, and hand the round to
// the attached Maintainer (the embedding lifecycle manager) with the
// pruned lease IDs.
func (e *Engine) tick() {
	defer e.tickWG.Done()
	ticker := time.NewTicker(e.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.tickStop:
			return
		case <-ticker.C:
			led := e.svc.Ledger()
			now := led.Now()
			pruned := led.Prune(now)
			e.leasesPruned.Add(int64(len(pruned)))
			e.cache.sweep(e.svc.Model().Version())
			e.expireJobs(time.Now())
			if m := e.currentMaintainer(); m != nil {
				m.Maintain(now, pruned)
			}
		}
	}
}

// expireJobs forgets terminal job records older than the retention
// window so the ID index stays bounded on a long-running daemon.
func (e *Engine) expireJobs(now time.Time) {
	cutoff := now.Add(-e.cfg.JobRetention)
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	for id, j := range e.jobs {
		info := j.Info()
		if info.State.Terminal() && info.Finished.Before(cutoff) {
			delete(e.jobs, id)
		}
	}
}
