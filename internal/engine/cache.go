package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"
	"sort"
	"sync"

	"netembed/internal/graph"
	"netembed/internal/service"
)

// requestKey fingerprints everything that determines a request's answer
// except the hosting network itself: a canonical serialization of the
// query (nodes and edges in ID order, attributes sorted by name — equal
// graphs hash equally), the constraint sources, and every result-shaping
// option. The model version is NOT part of this hash; the cache composes
// it separately so a monitor publish invalidates every entry at once
// without rehashing.
//
// Requests that depend on state outside the model snapshot are not
// cacheable: ExcludeReserved answers change with the ledger, and a
// caller-supplied Stop hook can truncate the search at an arbitrary
// point, so its (partial) answer must never be replayed to other
// callers. Those return ok=false.
//
// The keycomplete analyzer holds this function to the request types it
// serializes: every exported field below must be hashed (or gate
// cacheability) here, so a new request knob cannot silently alias cache
// entries.
//
//keycomplete:fingerprint service.Request
//keycomplete:fingerprint service.PathRequestOptions
//keycomplete:fingerprint core.ConsolidateOptions
//keycomplete:fingerprint core.MetricSpec
//keycomplete:fingerprint core.Objective
func requestKey(req service.Request) (string, bool) {
	if req.Query == nil || req.ExcludeReserved || req.Stop != nil || req.OnImprove != nil {
		return "", false
	}
	h := sha256.New()
	hashGraph(h, req.Query)
	writeString(h, req.EdgeConstraint)
	writeString(h, req.NodeConstraint)
	writeString(h, string(req.Algorithm))
	// Optimizing-search knobs: the objective is a pure value, so it joins
	// the fingerprint field-by-field — two requests differing only in
	// objective kind, attribute or weight must never alias.
	writeUint(h, boolBit(req.Optimize))
	writeUint(h, uint64(req.Objective.Kind))
	writeString(h, req.Objective.Attr)
	writeUint(h, math.Float64bits(req.Objective.Weight))
	writeString(h, req.Consolidate.CapacityAttr)
	writeString(h, req.Consolidate.DemandAttr)
	writeUint(h, uint64(req.Timeout))
	writeUint(h, uint64(req.MaxResults))
	writeUint(h, uint64(req.Seed))
	writeUint(h, boolBit(req.DedupeSymmetric))
	writeUint(h, math.Float64bits(req.Consolidate.DefaultCapacity))
	writeUint(h, boolBit(req.Consolidate.Loopback != nil))
	hashAttrs(h, req.Consolidate.Loopback)
	// Path-mode tuning: two path requests differing in hop bound, window
	// attributes or metric conjunction have different answers, so every
	// field joins the fingerprint.
	writeUint(h, uint64(req.Path.MaxHops))
	writeString(h, req.Path.DelayAttr)
	writeString(h, req.Path.WindowLo)
	writeString(h, req.Path.WindowHi)
	writeUint(h, uint64(len(req.Path.Metrics)))
	for _, spec := range req.Path.Metrics {
		writeString(h, spec.Attr)
		writeUint(h, uint64(spec.Rule))
		writeString(h, spec.LoAttr)
		writeString(h, spec.HiAttr)
		writeUint(h, math.Float64bits(spec.MissingEdge))
		writeUint(h, boolBit(spec.MissingFails))
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// hashGraph feeds a canonical, collision-framed serialization of g into
// h: orientation, then nodes in ID order (name + attrs), then edges in
// ID order (endpoints + attrs). Attribute maps are iterated in sorted
// name order so equal graphs always produce equal bytes (the GraphML
// encoder is canonical the same way since its key IDs were pinned to
// sorted-name order, but hashing the in-memory form stays cheaper than
// serializing).
func hashGraph(h hash.Hash, g *graph.Graph) {
	writeUint(h, boolBit(g.Directed()))
	writeUint(h, uint64(g.NumNodes()))
	writeUint(h, uint64(g.NumEdges()))
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(graph.NodeID(i))
		writeString(h, n.Name)
		hashAttrs(h, n.Attrs)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		writeUint(h, uint64(e.From))
		writeUint(h, uint64(e.To))
		hashAttrs(h, e.Attrs)
	}
}

func hashAttrs(h hash.Hash, a graph.Attrs) {
	names := make([]string, 0, len(a))
	for name := range a {
		if !a.Get(name).IsMissing() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	writeUint(h, uint64(len(names)))
	for _, name := range names {
		writeString(h, name)
		v := a.Get(name)
		writeUint(h, uint64(v.Kind()))
		switch v.Kind() {
		case graph.Number:
			f, _ := v.Float()
			writeUint(h, math.Float64bits(f))
		case graph.String:
			s, _ := v.Text()
			writeString(h, s)
		case graph.Bool:
			b, _ := v.Truth()
			writeUint(h, boolBit(b))
		}
	}
}

// writeString length-prefixes s so adjacent fields cannot alias.
func writeString(h hash.Hash, s string) {
	writeUint(h, uint64(len(s)))
	io.WriteString(h, s)
}

func writeUint(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cacheEntry pairs a cached response with the model version it answered
// against. Responses are shared across callers and must be treated as
// immutable.
type cacheEntry struct {
	key     string
	version uint64
	resp    *service.Response
}

// resultCache is a small LRU of embedding answers keyed by (request
// fingerprint, model version). Entries for stale model versions are
// unreachable by construction (the current version is part of every
// lookup) and are swept out by the engine tick.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	idx map[string]*list.Element
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[string]*list.Element),
	}
}

func (c *resultCache) composite(key string, version uint64) string {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], version)
	return key + hex.EncodeToString(v[:])
}

// get returns the cached response for the request fingerprint at the
// given model version, if any.
func (c *resultCache) get(key string, version uint64) (*service.Response, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[c.composite(key, version)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put stores a response under the request fingerprint and model version,
// evicting the least-recently-used entry when over capacity.
func (c *resultCache) put(key string, version uint64, resp *service.Response) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ck := c.composite(key, version)
	if el, ok := c.idx[ck]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.idx[ck] = c.ll.PushFront(&cacheEntry{key: key, version: version, resp: resp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		delete(c.idx, c.composite(e.key, e.version))
		c.ll.Remove(oldest)
	}
}

// sweep drops every entry whose model version differs from current —
// they can never be hit again once the monitor has published a newer
// snapshot. Returns how many were dropped.
func (c *resultCache) sweep(current uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.version != current {
			delete(c.idx, c.composite(e.key, e.version))
			c.ll.Remove(el)
			n++
		}
		el = next
	}
	return n
}

// len reports the live entry count.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
