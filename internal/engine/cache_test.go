package engine

import (
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/service"
)

func attrQuery() *graph.Graph {
	g := graph.NewUndirected()
	a := g.AddNode("a", graph.Attrs{}.SetNum("cpu", 2).SetStr("os", "linux").SetBool("gpu", true))
	b := g.AddNode("b", graph.Attrs{}.SetNum("cpu", 4))
	g.MustAddEdge(a, b, graph.Attrs{}.SetNum("minDelay", 1.5).SetNum("maxDelay", 9))
	return g
}

// TestRequestKeyDeterministic pins the property the cache depends on:
// equal requests — including attribute-bearing queries, whose attrs live
// in Go maps with randomized iteration order — always produce the same
// fingerprint, across repetitions and across structurally equal clones.
func TestRequestKeyDeterministic(t *testing.T) {
	req := service.Request{
		Query:          attrQuery(),
		EdgeConstraint: "rEdge.minDelay >= vEdge.minDelay",
		Timeout:        5 * time.Second,
		MaxResults:     3,
	}
	base, ok := requestKey(req)
	if !ok {
		t.Fatal("request unexpectedly uncacheable")
	}
	for i := 0; i < 20; i++ {
		if k, _ := requestKey(req); k != base {
			t.Fatalf("fingerprint drifted on repetition %d: %s vs %s", i, k, base)
		}
	}
	clone := req
	clone.Query = attrQuery() // fresh maps, same content
	if k, _ := requestKey(clone); k != base {
		t.Fatal("structurally equal query hashed differently")
	}
}

// TestRequestKeySensitivity checks every answer-shaping knob moves the
// fingerprint, and that ledger-dependent requests opt out entirely.
func TestRequestKeySensitivity(t *testing.T) {
	base := service.Request{Query: attrQuery(), MaxResults: 1}
	baseKey, _ := requestKey(base)

	mutations := map[string]func(*service.Request){
		"edge constraint":  func(r *service.Request) { r.EdgeConstraint = "true" },
		"node constraint":  func(r *service.Request) { r.NodeConstraint = "true" },
		"algorithm":        func(r *service.Request) { r.Algorithm = service.AlgoRWB },
		"timeout":          func(r *service.Request) { r.Timeout = time.Minute },
		"max results":      func(r *service.Request) { r.MaxResults = 2 },
		"seed":             func(r *service.Request) { r.Seed = 42 },
		"dedupe":           func(r *service.Request) { r.DedupeSymmetric = true },
		"consolidate":      func(r *service.Request) { r.Consolidate.CapacityAttr = "slots" },
		"default capacity": func(r *service.Request) { r.Consolidate.DefaultCapacity = 4 },
		"query attrs": func(r *service.Request) {
			r.Query = attrQuery()
			r.Query.Node(0).Attrs = r.Query.Node(0).Attrs.SetNum("cpu", 3)
		},
		"query topology": func(r *service.Request) {
			r.Query = attrQuery()
			r.Query.AddNode("c", nil)
		},
		"path max hops":   func(r *service.Request) { r.Path.MaxHops = 4 },
		"path delay attr": func(r *service.Request) { r.Path.DelayAttr = "p95Delay" },
		"path window lo":  func(r *service.Request) { r.Path.WindowLo = "floorDelay" },
		"path window hi":  func(r *service.Request) { r.Path.WindowHi = "ceilDelay" },
		"path metrics": func(r *service.Request) {
			r.Path.Metrics = []core.MetricSpec{{Attr: "bandwidth", Rule: core.Bottleneck, LoAttr: "minBandwidth"}}
		},
		"path metric rule": func(r *service.Request) {
			r.Path.Metrics = []core.MetricSpec{{Attr: "bandwidth", Rule: core.Multiplicative, LoAttr: "minBandwidth"}}
		},
		"path missing fails": func(r *service.Request) {
			r.Path.Metrics = []core.MetricSpec{{Attr: "bandwidth", Rule: core.Bottleneck, LoAttr: "minBandwidth", MissingFails: true}}
		},
	}
	for name, mutate := range mutations {
		r := base
		mutate(&r)
		k, ok := requestKey(r)
		if !ok {
			t.Fatalf("%s: unexpectedly uncacheable", name)
		}
		if k == baseKey {
			t.Fatalf("%s: fingerprint did not change", name)
		}
	}

	for name, r := range map[string]service.Request{
		"nil query":        {},
		"exclude reserved": {Query: attrQuery(), ExcludeReserved: true},
		"stop hook":        {Query: attrQuery(), Stop: func() bool { return false }},
	} {
		if _, ok := requestKey(r); ok {
			t.Fatalf("%s: must be uncacheable", name)
		}
	}
}

// TestResultCacheLRU pins capacity eviction and version-keyed lookup.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &service.Response{}, &service.Response{}, &service.Response{}
	c.put("a", 1, r1)
	c.put("b", 1, r2)
	if _, ok := c.get("a", 2); ok {
		t.Fatal("lookup at the wrong model version hit")
	}
	if got, ok := c.get("a", 1); !ok || got != r1 {
		t.Fatal("expected hit for (a,1)")
	}
	c.put("c", 1, r3) // evicts b, the least recently used
	if _, ok := c.get("b", 1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if swept := c.sweep(2); swept != 2 {
		t.Fatalf("sweep removed %d entries, want 2", swept)
	}
	if c.len() != 0 {
		t.Fatalf("cache not empty after sweep: %d", c.len())
	}
}
