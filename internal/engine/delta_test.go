package engine

import (
	"context"
	"testing"
	"time"

	"netembed/internal/graph"
)

// TestDeltaInvalidatesCache pins the delta-native invalidation contract:
// the result cache composes the request fingerprint with the model
// version, and Model.Apply bumps the version, so a published delta makes
// every prior answer unreachable without any explicit flush.
func TestDeltaInvalidatesCache(t *testing.T) {
	e, svc := newTestEngine(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	submit := func() Info {
		job, err := e.Submit(fastRequest(77))
		if err != nil {
			t.Fatal(err)
		}
		info, err := e.Wait(ctx, job.ID())
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateDone {
			t.Fatalf("job state %s, err %v", info.State, info.Err)
		}
		return info
	}

	first := submit()
	if first.FromCache {
		t.Fatal("first run must be a fresh search")
	}
	second := submit()
	if !second.FromCache {
		t.Fatal("identical re-run on an unchanged model must hit the cache")
	}
	if second.Response.ModelVersion != first.Response.ModelVersion {
		t.Fatal("cache hit reports a different model version")
	}

	// A monitor delta lands: one attribute nudge on one node.
	host, _ := svc.Model().Snapshot()
	v, err := svc.Model().Apply(&graph.Delta{
		SetNodeAttrs: []graph.NodeAttrUpdate{{
			Node: host.Node(0).Name,
			Set:  graph.Attrs{}.SetNum("weight", 1),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v <= first.Response.ModelVersion {
		t.Fatalf("Apply did not advance the version (%d)", v)
	}

	third := submit()
	if third.FromCache {
		t.Fatal("a published delta must invalidate the cached answer")
	}
	if third.Response.ModelVersion != v {
		t.Fatalf("post-delta answer carries version %d, want %d", third.Response.ModelVersion, v)
	}

	// The new answer is cached under the new version.
	fourth := submit()
	if !fourth.FromCache || fourth.Response.ModelVersion != v {
		t.Fatal("post-delta answer should cache under the new version")
	}
}
