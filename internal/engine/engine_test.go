package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// hardHost returns K_n minus a matching covering every vertex: embedding
// K_{n-2} into it is infeasible but the search space is astronomically
// large, so a job over it runs until canceled (or its generous timeout).
// Memory stays flat because no solutions accumulate.
func hardHost(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	skip := make(map[[2]int]bool)
	for i := 0; i+1 < n; i += 2 {
		skip[[2]int{i, i + 1}] = true
	}
	if n%2 == 1 {
		skip[[2]int{n - 2, n - 1}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if skip[[2]int{i, j}] {
				continue
			}
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), nil)
		}
	}
	return g
}

func newTestEngine(t testing.TB, cfg Config) (*Engine, *service.Service) {
	t.Helper()
	svc := service.New(service.NewModel(hardHost(26)), service.Config{})
	e := New(svc, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = e.Close(ctx)
	})
	return e, svc
}

// slowRequest is a job that cannot finish inside the test: an infeasible
// clique embedding with a deliberately huge search space and a 60s
// timeout. Only cancellation (or engine teardown) ends it early.
func slowRequest() service.Request {
	return service.Request{Query: topo.Clique(14), Timeout: 60 * time.Second}
}

// fastRequest finishes in microseconds: a single edge into a dense host,
// first match only. Seed differentiates cache fingerprints.
func fastRequest(seed int64) service.Request {
	return service.Request{Query: topo.Line(2), MaxResults: 1, Seed: seed}
}

func waitState(t *testing.T, job *Job, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if job.Info().State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (stuck at %s)", job.ID(), want, job.Info().State)
}

func TestSubmitCompletes(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 2})
	job, err := e.Submit(fastRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.Wait(context.Background(), job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("state %s, want done (err: %v)", info.State, info.Err)
	}
	if info.Response == nil || len(info.Response.Mappings) != 1 {
		t.Fatalf("expected one mapping, got %+v", info.Response)
	}
	if info.FromCache {
		t.Fatal("first run of a query must not be a cache hit")
	}
}

func TestSubmitValidates(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1})
	if _, err := e.Submit(service.Request{}); !errors.Is(err, service.ErrNoQuery) {
		t.Fatalf("nil query: got %v, want ErrNoQuery", err)
	}
	job, err := e.Submit(service.Request{Query: topo.Line(2), Algorithm: "no-such-algo"})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := e.Wait(context.Background(), job.ID())
	if info.State != StateFailed || !errors.Is(info.Err, service.ErrUnknownAlgorithm) {
		t.Fatalf("bad algorithm: state %s err %v, want failed ErrUnknownAlgorithm", info.State, info.Err)
	}
	if s := e.Stats(); s.Failed != 1 {
		t.Fatalf("failed counter %d, want 1", s.Failed)
	}
}

// TestCancelRunningStopsSearch is the acceptance-criterion test: cancel
// a running job and require the worker to actually stop searching well
// before the job's 60s timeout, not merely mark the record canceled.
func TestCancelRunningStopsSearch(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1})
	job, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning, 10*time.Second)

	canceledAt := time.Now()
	info, err := e.Cancel(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCanceled {
		t.Fatalf("cancel returned state %s, want canceled", info.State)
	}
	select {
	case <-job.Done():
	case <-time.After(time.Second):
		t.Fatal("Done channel not closed after cancel")
	}

	// The worker must observably stop: the running gauge drains long
	// before the 60s search timeout could fire.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Running != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("search still running %v after cancel; cancellation did not reach the search", time.Since(canceledAt))
		}
		time.Sleep(time.Millisecond)
	}
	if stopped := time.Since(canceledAt); stopped > 10*time.Second {
		t.Fatalf("search took %v to stop after cancel", stopped)
	}
	if s := e.Stats(); s.Canceled != 1 {
		t.Fatalf("canceled counter %d, want 1", s.Canceled)
	}
	// Canceling again is idempotent; a finished job is not cancelable.
	if _, err := e.Cancel(job.ID()); err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
}

func TestCancelQueued(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1, QueueDepth: 4})
	blocker, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 10*time.Second)

	queued, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.Info().State; got != StateQueued {
		t.Fatalf("second job state %s, want queued behind the single worker", got)
	}
	if info, err := e.Cancel(queued.ID()); err != nil || info.State != StateCanceled {
		t.Fatalf("cancel queued: state %v err %v", info.State, err)
	}
	if _, err := e.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cancel("no-such-job"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown id: got %v, want ErrJobNotFound", err)
	}
}

// TestQueueFullBackpressure fills the single-slot queue behind a stuck
// worker and checks the engine refuses — not blocks — the overflow.
func TestQueueFullBackpressure(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1, QueueDepth: 1})
	running, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, 10*time.Second)
	queued, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(slowRequest()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}
	if s := e.Stats(); s.QueueFullRejections != 1 || s.Queued != 1 || s.Running != 1 {
		t.Fatalf("stats after overflow: %+v", s)
	}
	_, _ = e.Cancel(queued.ID())
	_, _ = e.Cancel(running.ID())
}

// TestCacheHitAndModelInvalidation pins the cache contract: an identical
// resubmission at the same model version is served from cache without a
// search, and a model publish invalidates it.
func TestCacheHitAndModelInvalidation(t *testing.T) {
	e, svc := newTestEngine(t, Config{Workers: 2})
	ctx := context.Background()

	job1, err := e.Submit(fastRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	info1, _ := e.Wait(ctx, job1.ID())
	if info1.State != StateDone || info1.FromCache {
		t.Fatalf("first run: state %s fromCache %v", info1.State, info1.FromCache)
	}

	// Identical query, same model version: O(1) cache hit — the job is
	// done at submission, never queued.
	job2, err := e.Submit(fastRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	if info2 := job2.Info(); info2.State != StateDone || !info2.FromCache {
		t.Fatalf("resubmission: state %s fromCache %v, want instant cache hit", info2.State, info2.FromCache)
	}
	if job2.Info().Response != info1.Response {
		t.Fatal("cache hit did not reuse the stored response")
	}
	if s := e.Stats(); s.CacheHits != 1 {
		t.Fatalf("cacheHits %d, want 1", s.CacheHits)
	}

	// A different request is its own cache line.
	job3, err := e.Submit(fastRequest(8))
	if err != nil {
		t.Fatal(err)
	}
	if info3, _ := e.Wait(ctx, job3.ID()); info3.FromCache {
		t.Fatal("distinct request wrongly served from cache")
	}

	// Monitors publish a new snapshot: the old answer must not be reused.
	svc.Model().Update(hardHost(26))
	job4, err := e.Submit(fastRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	info4, _ := e.Wait(ctx, job4.ID())
	if info4.State != StateDone || info4.FromCache {
		t.Fatalf("post-update: state %s fromCache %v, want fresh search", info4.State, info4.FromCache)
	}
	if info4.Response.ModelVersion == info1.Response.ModelVersion {
		t.Fatal("post-update answer carries the stale model version")
	}
}

// TestExcludeReservedNotCached pins that ledger-dependent requests
// bypass the cache: their answers change without a model version bump.
func TestExcludeReservedNotCached(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1})
	req := fastRequest(3)
	req.ExcludeReserved = true
	for i := 0; i < 2; i++ {
		job, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		info, _ := e.Wait(context.Background(), job.ID())
		if info.State != StateDone || info.FromCache {
			t.Fatalf("run %d: state %s fromCache %v, want fresh", i, info.State, info.FromCache)
		}
	}
	if s := e.Stats(); s.CacheHits != 0 || s.CacheEntries != 0 {
		t.Fatalf("ExcludeReserved leaked into the cache: %+v", s)
	}
}

// TestSubmissionStorm hammers the engine from many goroutines — mixed
// fast jobs and mid-flight cancellations — and checks every job reaches
// a terminal state with consistent counters. Run under -race this is the
// engine's concurrency test.
func TestSubmissionStorm(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 4, QueueDepth: 256, CacheCapacity: -1})
	const clients, perClient = 8, 10

	var wg sync.WaitGroup
	jobs := make(chan *Job, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := int64(c*perClient + i)
				job, err := e.Submit(fastRequest(seed))
				if errors.Is(err, ErrQueueFull) {
					continue // backpressure is a legal storm outcome
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if seed%3 == 0 {
					_, _ = e.Cancel(job.ID()) // races the worker on purpose
				}
				jobs <- job
			}
		}(c)
	}
	wg.Wait()
	close(jobs)

	total := 0
	for job := range jobs {
		total++
		info, err := e.Wait(context.Background(), job.ID())
		if err != nil {
			t.Fatal(err)
		}
		switch info.State {
		case StateDone, StateCanceled:
		default:
			t.Fatalf("job %s ended %s (err %v)", info.ID, info.State, info.Err)
		}
	}
	s := e.Stats()
	if s.Submitted != int64(total) {
		t.Fatalf("submitted counter %d, want %d", s.Submitted, total)
	}
	if s.Completed+s.Canceled != int64(total) {
		t.Fatalf("terminal counters %d+%d don't cover %d jobs", s.Completed, s.Canceled, total)
	}
	// Jobs canceled while queued still occupy their slot until a worker
	// pops and skips them, so give the gauges a moment to drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s = e.Stats()
		if s.Queued == 0 && s.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges not drained: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseDrains pins graceful shutdown: the running job finishes on
// its own terms (here: canceled to end it), queued jobs fail with
// ErrShuttingDown, and new submissions are refused.
func TestCloseDrains(t *testing.T) {
	svc := service.New(service.NewModel(hardHost(26)), service.Config{})
	e := New(svc, Config{Workers: 1, QueueDepth: 4})

	// Warm the cache so the post-close refusal below also proves a
	// cached answer does not sneak past a drained engine.
	warm, err := e.Submit(fastRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := e.Wait(context.Background(), warm.ID()); info.State != StateDone {
		t.Fatalf("warm job: %s", info.State)
	}

	running, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, 10*time.Second)
	queued, err := e.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		closed <- e.Close(ctx)
	}()

	// Once Close has taken effect, new submissions are refused.
	refusedBy := time.Now().Add(10 * time.Second)
	for {
		_, err := e.Submit(fastRequest(1))
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		if time.Now().After(refusedBy) {
			t.Fatalf("submit after close: got %v, want ErrShuttingDown", err)
		}
		time.Sleep(time.Millisecond)
	}

	// End the running job; the drained worker must then fail the queued
	// one with ErrShuttingDown instead of running it.
	_, _ = e.Cancel(running.ID())
	info, err := e.Wait(context.Background(), queued.ID())
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateFailed || !errors.Is(info.Err, ErrShuttingDown) {
		t.Fatalf("queued job under shutdown: state %s err %v", info.State, info.Err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestNeverStartedCloseIsClean pins the lazy-start contract: an engine
// that never saw a submission has no goroutines, and Close is an
// instant, clean no-op that still locks out later submissions.
func TestNeverStartedCloseIsClean(t *testing.T) {
	svc := service.New(service.NewModel(hardHost(26)), service.Config{})
	e := New(svc, Config{})
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close of unused engine: %v", err)
	}
	if _, err := e.Submit(fastRequest(1)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after close: got %v, want ErrShuttingDown", err)
	}
}

// TestTimeoutTruncatedNotCached pins that answers cut short by the
// wall-clock timeout — a load-dependent, nondeterministic truncation —
// are never replayed from the cache.
func TestTimeoutTruncatedNotCached(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1})
	req := slowRequest()
	req.Timeout = 100 * time.Millisecond
	for i := 0; i < 2; i++ {
		job, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		info, err := e.Wait(context.Background(), job.ID())
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateDone || info.FromCache {
			t.Fatalf("run %d: state %s fromCache %v, want fresh timed-out run", i, info.State, info.FromCache)
		}
	}
	if s := e.Stats(); s.CacheEntries != 0 || s.CacheHits != 0 {
		t.Fatalf("timeout-truncated answer leaked into the cache: %+v", s)
	}
}

// TestTickPrunesLedgerAndCache wires a fast tick and checks both
// maintenance duties: expired leases vanish and stale-version cache
// entries are swept once the model moves on.
func TestTickPrunesLedgerAndCache(t *testing.T) {
	e, svc := newTestEngine(t, Config{Workers: 1, TickInterval: 5 * time.Millisecond})

	// An already-expired windowed lease.
	start := time.Now().Add(-time.Hour)
	if _, err := svc.Ledger().AllocateWindow(core.Mapping{0}, start, start.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// A cached answer at the current version.
	job, err := e.Submit(fastRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := e.Wait(context.Background(), job.ID()); info.State != StateDone {
		t.Fatalf("seed job: %s", info.State)
	}
	svc.Model().Update(hardHost(26)) // strands the cache entry

	deadline := time.Now().Add(10 * time.Second)
	for {
		s := e.Stats()
		if s.LeasesPruned >= 1 && s.CacheEntries == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tick never cleaned up: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsAccumulateSearchCounters pins that completed searches fold
// their FC-engine effort counters (prunes, wipeouts) into the engine's
// cumulative /stats, and that cache hits add nothing.
func TestStatsAccumulateSearchCounters(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 1})
	req := fastRequest(7)
	if _, err := e.SubmitWait(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SearchPruneOps == 0 {
		t.Errorf("SearchPruneOps = 0 after a completed search, want > 0")
	}
	// A cache-served replay must not inflate the counters.
	if _, err := e.SubmitWait(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.CacheHits == 0 {
		t.Fatalf("expected the identical resubmission to hit the cache")
	}
	if st2.SearchPruneOps != st.SearchPruneOps {
		t.Errorf("cache hit changed SearchPruneOps: %d -> %d", st.SearchPruneOps, st2.SearchPruneOps)
	}
}
