package expr

import (
	"fmt"
	"math"

	"netembed/internal/graph"
)

// parser is a recursive-descent parser over the token stream, following
// Java's operator precedence:
//
//	||  <  &&  <  == !=  <  < > <= >=  <  + -  <  * /  <  unary ! -
//
// It compiles directly to evalFn closures and records which objects the
// expression references.
type parser struct {
	lex  lexer
	tok  token
	uses uint16    // bitmask of referenced Objects
	refs []AttrRef // attribute references in source order
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) error {
	if p.tok.kind != k {
		return p.errf("expected %v, found %v", k, p.tok.kind)
	}
	return p.advance()
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Src: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseExpr() (evalFn, error) { return p.parseOr() }

func (p *parser) parseOr() (evalFn, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = compileOr(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (evalFn, error) {
	left, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		left = compileAnd(left, right)
	}
	return left, nil
}

func (p *parser) parseEquality() (evalFn, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokEq || p.tok.kind == tokNeq {
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = compileEquality(op, left, right)
	}
	return left, nil
}

func (p *parser) parseRelational() (evalFn, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokLt || p.tok.kind == tokGt || p.tok.kind == tokLeq || p.tok.kind == tokGeq {
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = compileCompare(op, left, right)
	}
	return left, nil
}

func (p *parser) parseAdditive() (evalFn, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = compileArith(op, left, right)
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (evalFn, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = compileArith(op, left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (evalFn, error) {
	switch p.tok.kind {
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return compileNot(x), nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return compileNeg(x), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (evalFn, error) {
	switch p.tok.kind {
	case tokNumber:
		v := graph.Num(p.tok.num)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return compileLiteral(v), nil
	case tokString:
		v := graph.Str(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return compileLiteral(v), nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokIdent:
		return p.parseIdent()
	}
	return nil, p.errf("unexpected %v", p.tok.kind)
}

func (p *parser) parseIdent() (evalFn, error) {
	name := p.tok.text
	namePos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch {
	case name == "true":
		return compileLiteral(graph.BoolVal(true)), nil
	case name == "false":
		return compileLiteral(graph.BoolVal(false)), nil
	case p.tok.kind == tokDot:
		obj, ok := objectNames[name]
		if !ok {
			return nil, &SyntaxError{Src: p.lex.src, Pos: namePos,
				Msg: fmt.Sprintf("unknown object %q (want vEdge, rEdge, vSource, vTarget, rSource, rTarget, vNode or rNode)", name)}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected attribute name after %q", name+".")
		}
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		p.uses |= 1 << obj
		p.refs = append(p.refs, AttrRef{Object: obj, Attr: attr})
		return compileAttr(obj, attr), nil
	case p.tok.kind == tokLParen:
		return p.parseCall(name, namePos)
	}
	return nil, &SyntaxError{Src: p.lex.src, Pos: namePos,
		Msg: fmt.Sprintf("bare identifier %q (objects need '.attr', functions need '(...)')", name)}
}

func (p *parser) parseCall(name string, namePos int) (evalFn, error) {
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []evalFn
	if p.tok.kind != tokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	argErr := func(want string) error {
		return &SyntaxError{Src: p.lex.src, Pos: namePos,
			Msg: fmt.Sprintf("%s takes %s, got %d argument(s)", name, want, len(args))}
	}
	switch name {
	case "abs":
		if len(args) != 1 {
			return nil, argErr("1 argument")
		}
		return compileUnaryMath(math.Abs, args[0]), nil
	case "sqrt":
		if len(args) != 1 {
			return nil, argErr("1 argument")
		}
		return compileUnaryMath(math.Sqrt, args[0]), nil
	case "floor":
		if len(args) != 1 {
			return nil, argErr("1 argument")
		}
		return compileUnaryMath(math.Floor, args[0]), nil
	case "ceil":
		if len(args) != 1 {
			return nil, argErr("1 argument")
		}
		return compileUnaryMath(math.Ceil, args[0]), nil
	case "min":
		if len(args) < 2 {
			return nil, argErr("2+ arguments")
		}
		return compileFold(math.Min, args), nil
	case "max":
		if len(args) < 2 {
			return nil, argErr("2+ arguments")
		}
		return compileFold(math.Max, args), nil
	case "isBoundTo":
		if len(args) != 2 {
			return nil, argErr("2 arguments")
		}
		return compileIsBoundTo(args[0], args[1]), nil
	case "has":
		if len(args) != 1 {
			return nil, argErr("1 argument")
		}
		return compileHas(args[0]), nil
	}
	return nil, &SyntaxError{Src: p.lex.src, Pos: namePos,
		Msg: fmt.Sprintf("unknown function %q", name)}
}
