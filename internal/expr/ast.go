package expr

import (
	"math"

	"netembed/internal/graph"
)

// Object identifies one of the bindable graph objects available inside a
// constraint expression (Table I of the paper, plus the node-level
// extension objects vNode/rNode).
type Object uint8

// The bindable objects. Edge-context programs may reference the first six;
// node-context programs the last two.
const (
	ObjVEdge Object = iota
	ObjREdge
	ObjVSource
	ObjVTarget
	ObjRSource
	ObjRTarget
	ObjVNode
	ObjRNode
	numObjects
)

var objectNames = map[string]Object{
	"vEdge":   ObjVEdge,
	"rEdge":   ObjREdge,
	"vSource": ObjVSource,
	"vTarget": ObjVTarget,
	"rSource": ObjRSource,
	"rTarget": ObjRTarget,
	"vNode":   ObjVNode,
	"rNode":   ObjRNode,
}

func (o Object) String() string {
	for name, obj := range objectNames {
		if obj == o {
			return name
		}
	}
	return "object(?)"
}

// env carries the attribute bags bound to each object during evaluation.
type env struct {
	objs [numObjects]graph.Attrs
}

// evalFn is a compiled expression node. Compilation to closures keeps the
// per-pair evaluation cost low: the filter-construction stage evaluates the
// constraint once for every (query edge, hosting edge) pair.
type evalFn func(*env) graph.Value

// Three-valued (Kleene) logic over graph.Value: Missing acts as "unknown".
// A constraint is satisfied only when it evaluates to boolean true, so an
// expression touching an absent attribute rejects the pair — except under
// isBoundTo/has, which test presence explicitly.

func compileLiteral(v graph.Value) evalFn {
	return func(*env) graph.Value { return v }
}

func compileAttr(obj Object, attr string) evalFn {
	return func(e *env) graph.Value { return e.objs[obj].Get(attr) }
}

func compileAnd(l, r evalFn) evalFn {
	return func(e *env) graph.Value {
		lv := l(e)
		if b, ok := lv.Truth(); ok && !b {
			return graph.BoolVal(false) // false && x == false
		}
		rv := r(e)
		if b, ok := rv.Truth(); ok && !b {
			return graph.BoolVal(false) // unknown && false == false
		}
		lb, lok := lv.Truth()
		rb, rok := rv.Truth()
		if lok && rok {
			return graph.BoolVal(lb && rb)
		}
		return graph.Value{}
	}
}

func compileOr(l, r evalFn) evalFn {
	return func(e *env) graph.Value {
		lv := l(e)
		if b, ok := lv.Truth(); ok && b {
			return graph.BoolVal(true) // true || x == true
		}
		rv := r(e)
		if b, ok := rv.Truth(); ok && b {
			return graph.BoolVal(true) // unknown || true == true
		}
		lb, lok := lv.Truth()
		rb, rok := rv.Truth()
		if lok && rok {
			return graph.BoolVal(lb || rb)
		}
		return graph.Value{}
	}
}

func compileNot(x evalFn) evalFn {
	return func(e *env) graph.Value {
		if b, ok := x(e).Truth(); ok {
			return graph.BoolVal(!b)
		}
		return graph.Value{}
	}
}

func compileNeg(x evalFn) evalFn {
	return func(e *env) graph.Value {
		if f, ok := x(e).Float(); ok {
			return graph.Num(-f)
		}
		return graph.Value{}
	}
}

func compileArith(op tokKind, l, r evalFn) evalFn {
	return func(e *env) graph.Value {
		lf, lok := l(e).Float()
		rf, rok := r(e).Float()
		if !lok || !rok {
			return graph.Value{}
		}
		switch op {
		case tokPlus:
			return graph.Num(lf + rf)
		case tokMinus:
			return graph.Num(lf - rf)
		case tokStar:
			return graph.Num(lf * rf)
		default: // tokSlash
			if rf == 0 {
				return graph.Value{} // division by zero is unsatisfiable, not a panic
			}
			return graph.Num(lf / rf)
		}
	}
}

func compileCompare(op tokKind, l, r evalFn) evalFn {
	return func(e *env) graph.Value {
		lv, rv := l(e), r(e)
		if lf, lok := lv.Float(); lok {
			if rf, rok := rv.Float(); rok {
				return graph.BoolVal(cmpFloat(op, lf, rf))
			}
			return graph.Value{}
		}
		if ls, lok := lv.Text(); lok {
			if rs, rok := rv.Text(); rok {
				return graph.BoolVal(cmpString(op, ls, rs))
			}
		}
		return graph.Value{}
	}
}

func cmpFloat(op tokKind, a, b float64) bool {
	switch op {
	case tokLt:
		return a < b
	case tokGt:
		return a > b
	case tokLeq:
		return a <= b
	default: // tokGeq
		return a >= b
	}
}

func cmpString(op tokKind, a, b string) bool {
	switch op {
	case tokLt:
		return a < b
	case tokGt:
		return a > b
	case tokLeq:
		return a <= b
	default: // tokGeq
		return a >= b
	}
}

func compileEquality(op tokKind, l, r evalFn) evalFn {
	return func(e *env) graph.Value {
		lv, rv := l(e), r(e)
		if lv.IsMissing() || rv.IsMissing() {
			return graph.Value{}
		}
		eq := lv.Equal(rv)
		if op == tokNeq {
			eq = !eq
		}
		return graph.BoolVal(eq)
	}
}

// compileIsBoundTo implements the paper's isBoundTo(vAttr, rAttr): a query
// object that does not define the attribute is unconstrained (true); if it
// does, the hosting object must match it exactly.
func compileIsBoundTo(l, r evalFn) evalFn {
	return func(e *env) graph.Value {
		lv := l(e)
		if lv.IsMissing() {
			return graph.BoolVal(true)
		}
		return graph.BoolVal(lv.Equal(r(e)))
	}
}

func compileHas(x evalFn) evalFn {
	return func(e *env) graph.Value {
		return graph.BoolVal(!x(e).IsMissing())
	}
}

func compileUnaryMath(f func(float64) float64, x evalFn) evalFn {
	return func(e *env) graph.Value {
		v, ok := x(e).Float()
		if !ok {
			return graph.Value{}
		}
		r := f(v)
		if math.IsNaN(r) {
			return graph.Value{}
		}
		return graph.Num(r)
	}
}

func compileFold(f func(a, b float64) float64, args []evalFn) evalFn {
	return func(e *env) graph.Value {
		acc, ok := args[0](e).Float()
		if !ok {
			return graph.Value{}
		}
		for _, a := range args[1:] {
			v, ok := a(e).Float()
			if !ok {
				return graph.Value{}
			}
			acc = f(acc, v)
		}
		return graph.Num(acc)
	}
}
