package expr

import (
	"testing"

	"netembed/internal/graph"
)

// FuzzCompile asserts the compiler never panics and that successfully
// compiled programs evaluate without panicking under an arbitrary binding.
// Run with `go test -fuzz=FuzzCompile ./internal/expr` for exploration;
// the seed corpus below runs as a plain test.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"1+2*3",
		"vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay",
		"isBoundTo(vSource.osType, rSource.osType)",
		"sqrt((vSource.x-vTarget.x)*(vSource.x-vTarget.x)) < 100.0",
		"!has(vEdge.bw) || vEdge.bw > 100",
		"min(1,2,3) == max(-1,1)",
		"((((1))))",
		"'str' == \"str\"",
		"1 <",
		"vEdge.",
		"&&",
		"abs(",
		"1e999",
		"\\",
		"vEdge.a.b.c",
		"-(-(-1))",
		"true && false || !true",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	binding := &EdgeBinding{
		VEdge:   graph.Attrs{}.SetNum("avgDelay", 10).SetStr("kind", "x"),
		REdge:   graph.Attrs{}.SetNum("avgDelay", 12).SetBool("up", true),
		VSource: graph.Attrs{}.SetNum("x", 1),
		VTarget: graph.Attrs{}.SetNum("x", 2),
		RSource: graph.Attrs{}.SetStr("osType", "linux"),
		RTarget: graph.Attrs{},
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		_ = p.EvalEdge(binding)
		_ = p.EvalNode(&NodeBinding{})
		_ = p.Refs()
		_ = p.String()
	})
}
