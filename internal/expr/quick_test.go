package expr

import (
	"math"
	"testing"
	"testing/quick"

	"netembed/internal/graph"
)

// Property tests over the constraint language: algebraic identities that
// must hold for every finite attribute valuation. Each property compiles
// fixed source text once and evaluates it under quick-generated bindings,
// so the lexer, parser, precedence rules and evaluator are all on the
// hook together.

// tame maps arbitrary generated floats into a finite, overflow-safe
// range; the language's arithmetic is plain float64, so identities hold
// only away from ±Inf and NaN.
func tame(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e9)
}

func nodeBinding(x, y, z float64) *NodeBinding {
	return &NodeBinding{
		VNode: graph.Attrs{}.SetNum("x", x).SetNum("y", y),
		RNode: graph.Attrs{}.SetNum("z", z),
	}
}

func TestQuickArithmeticCommutes(t *testing.T) {
	add := MustCompile("vNode.x + vNode.y == vNode.y + vNode.x")
	mul := MustCompile("vNode.x * vNode.y == vNode.y * vNode.x")
	prop := func(a, b, c float64) bool {
		bind := nodeBinding(tame(a), tame(b), tame(c))
		return add.EvalNode(bind) && mul.EvalNode(bind)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrecedence(t *testing.T) {
	// Multiplication binds tighter than addition; unary minus tighter
	// than comparison. Each pair must agree on every valuation.
	pairs := [][2]string{
		{"vNode.x + vNode.y * rNode.z", "vNode.x + (vNode.y * rNode.z)"},
		{"vNode.x - vNode.y - rNode.z", "(vNode.x - vNode.y) - rNode.z"},
		{"vNode.x / 2 + vNode.y", "(vNode.x / 2) + vNode.y"},
	}
	for _, pair := range pairs {
		lt := MustCompile(pair[0] + " < " + pair[1])
		gt := MustCompile(pair[0] + " > " + pair[1])
		prop := func(a, b, c float64) bool {
			bind := nodeBinding(tame(a), tame(b), tame(c))
			// Equal on every input: neither strictly less nor greater.
			return !lt.EvalNode(bind) && !gt.EvalNode(bind)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("%q vs %q: %v", pair[0], pair[1], err)
		}
	}
}

func TestQuickDeMorgan(t *testing.T) {
	lhs := MustCompile("!(vNode.x < vNode.y && rNode.z > 0)")
	rhs := MustCompile("!(vNode.x < vNode.y) || !(rNode.z > 0)")
	prop := func(a, b, c float64) bool {
		bind := nodeBinding(tame(a), tame(b), tame(c))
		return lhs.EvalNode(bind) == rhs.EvalNode(bind)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTrichotomy(t *testing.T) {
	lt := MustCompile("vNode.x < vNode.y")
	eq := MustCompile("vNode.x == vNode.y")
	gt := MustCompile("vNode.x > vNode.y")
	prop := func(a, b float64) bool {
		bind := nodeBinding(tame(a), tame(b), 0)
		n := 0
		for _, p := range []*Program{lt, eq, gt} {
			if p.EvalNode(bind) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAbsAndMinMax(t *testing.T) {
	absNonNeg := MustCompile("abs(vNode.x) >= 0")
	minLeMax := MustCompile("min(vNode.x, vNode.y) <= max(vNode.x, vNode.y)")
	absIdent := MustCompile("abs(vNode.x) == max(vNode.x, -vNode.x)")
	prop := func(a, b float64) bool {
		bind := nodeBinding(tame(a), tame(b), 0)
		return absNonNeg.EvalNode(bind) && minLeMax.EvalNode(bind) && absIdent.EvalNode(bind)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMissingAttributeIsNeverTrue(t *testing.T) {
	// Three-valued logic: any comparison touching a missing attribute
	// must evaluate false, and so must its negated comparison — only
	// has() can observe absence.
	ltm := MustCompile("vNode.x < vNode.nope")
	gem := MustCompile("vNode.x >= vNode.nope")
	hasNot := MustCompile("!has(vNode.nope)")
	prop := func(a float64) bool {
		bind := nodeBinding(tame(a), 0, 0)
		return !ltm.EvalNode(bind) && !gem.EvalNode(bind) && hasNot.EvalNode(bind)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShortCircuitGuard(t *testing.T) {
	// The guard idiom "!has(a) || a > k" must equal "has(a) implies
	// a > k" on every valuation, with the attribute present or absent.
	guard := MustCompile("!has(vNode.x) || vNode.x > 10")
	prop := func(a float64, present bool) bool {
		attrs := graph.Attrs{}
		if present {
			attrs = attrs.SetNum("x", tame(a))
		}
		bind := &NodeBinding{VNode: attrs, RNode: graph.Attrs{}}
		want := !present || tame(a) > 10
		return guard.EvalNode(bind) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
