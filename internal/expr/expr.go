// Package expr implements NETEMBED's constraint expression language: a
// Java-like boolean expression evaluated for every pairing of a query
// (virtual) edge with a hosting (real) edge, with the endpoint nodes of
// both edges in scope (paper §VI-B, Table I).
//
// The language provides boolean operators (&&, ||, !), relational
// operators (==, !=, <, >, <=, >=), arithmetic (+, -, *, /), the functions
// abs, sqrt, floor, ceil, min, max, the presence test has, and the
// paper's isBoundTo binding helper. Attribute access uses dot notation on
// the objects of Table I: vEdge, rEdge, vSource, vTarget, rSource,
// rTarget. As an extension, node-level constraints may reference vNode and
// rNode and are evaluated per (query node, hosting node) pair.
//
// Missing attributes follow Kleene three-valued logic: any computation
// over an absent attribute is "unknown", and an unknown constraint is not
// satisfied. isBoundTo(v, r) is the exception: a query object without the
// attribute is unconstrained.
//
// Example (paper §VI-B): accept a hosting link whose average delay is
// within 10% of the requested delay:
//
//	vEdge.avgDelay >= 0.90*rEdge.avgDelay && vEdge.avgDelay <= 1.10*rEdge.avgDelay
package expr

import (
	"errors"

	"netembed/internal/graph"
)

// AttrRef names one attribute access in a program, e.g. rEdge.avgDelay.
type AttrRef struct {
	Object Object
	Attr   string
}

// String renders the reference in source form.
func (r AttrRef) String() string { return r.Object.String() + "." + r.Attr }

// Program is a compiled constraint expression. Programs are immutable and
// safe for concurrent evaluation: each Eval* call uses its own binding.
type Program struct {
	src  string
	fn   evalFn
	uses uint16
	refs []AttrRef
}

// Compile parses and compiles src. The empty expression compiles to a
// program that accepts everything (no constraint beyond topology).
func Compile(src string) (*Program, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokEOF {
		return &Program{src: src, fn: compileLiteral(graph.BoolVal(true))}, nil
	}
	fn, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input starting with %v", p.tok.kind)
	}
	return &Program{src: src, fn: fn, uses: p.uses, refs: dedupRefs(p.refs)}, nil
}

func dedupRefs(refs []AttrRef) []AttrRef {
	seen := make(map[AttrRef]bool, len(refs))
	out := refs[:0]
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// MustCompile is Compile panicking on error, for constant expressions.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the original source text.
func (p *Program) String() string { return p.src }

// Uses reports whether the program references the given object.
func (p *Program) Uses(o Object) bool { return p.uses&(1<<o) != 0 }

// Refs lists the distinct attribute references of the program in source
// order. Service layers use this to warn when a constraint touches an
// attribute the hosting network never defines (a typo would otherwise
// silently reject every pairing under three-valued logic).
func (p *Program) Refs() []AttrRef {
	out := make([]AttrRef, len(p.refs))
	copy(out, p.refs)
	return out
}

const edgeObjMask = 1<<ObjVEdge | 1<<ObjREdge | 1<<ObjVSource | 1<<ObjVTarget | 1<<ObjRSource | 1<<ObjRTarget
const nodeObjMask = 1<<ObjVNode | 1<<ObjRNode

// Errors reported by the context checks.
var (
	ErrNotEdgeProgram = errors.New("expr: program references vNode/rNode and cannot run in edge context")
	ErrNotNodeProgram = errors.New("expr: program references edge objects and cannot run in node context")
)

// CheckEdgeContext verifies the program only references edge-context
// objects (Table I), so it can be evaluated with EvalEdge.
func (p *Program) CheckEdgeContext() error {
	if p.uses&nodeObjMask != 0 {
		return ErrNotEdgeProgram
	}
	return nil
}

// CheckNodeContext verifies the program only references vNode/rNode, so it
// can be evaluated with EvalNode.
func (p *Program) CheckNodeContext() error {
	if p.uses&edgeObjMask != 0 {
		return ErrNotNodeProgram
	}
	return nil
}

// EdgeBinding supplies the six Table-I objects for one evaluation: a query
// edge (with its source/target nodes) paired with a hosting edge (with its
// source/target nodes).
type EdgeBinding struct {
	VEdge, REdge     graph.Attrs
	VSource, VTarget graph.Attrs
	RSource, RTarget graph.Attrs
}

// EvalEdge evaluates the program against an edge pairing. It returns true
// only if the expression evaluates to boolean true.
func (p *Program) EvalEdge(b *EdgeBinding) bool {
	var e env
	e.objs[ObjVEdge] = b.VEdge
	e.objs[ObjREdge] = b.REdge
	e.objs[ObjVSource] = b.VSource
	e.objs[ObjVTarget] = b.VTarget
	e.objs[ObjRSource] = b.RSource
	e.objs[ObjRTarget] = b.RTarget
	v, ok := p.fn(&e).Truth()
	return ok && v
}

// NodeBinding supplies the node-context objects: one query node paired
// with one hosting node.
type NodeBinding struct {
	VNode, RNode graph.Attrs
}

// EvalNode evaluates the program against a node pairing. It returns true
// only if the expression evaluates to boolean true.
func (p *Program) EvalNode(b *NodeBinding) bool {
	var e env
	e.objs[ObjVNode] = b.VNode
	e.objs[ObjRNode] = b.RNode
	v, ok := p.fn(&e).Truth()
	return ok && v
}

// EvalConst evaluates a program with no object references (a constant
// expression), returning its boolean result.
func (p *Program) EvalConst() bool {
	var e env
	v, ok := p.fn(&e).Truth()
	return ok && v
}
