package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokNot   // !
	tokAnd   // &&
	tokOr    // ||
	tokEq    // ==
	tokNeq   // !=
	tokLt    // <
	tokGt    // >
	tokLeq   // <=
	tokGeq   // >=
	tokPlus  // +
	tokMinus // -
	tokStar  // *
	tokSlash // /
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokIdent:
		return "identifier"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokNot:
		return "'!'"
	case tokAnd:
		return "'&&'"
	case tokOr:
		return "'||'"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokGt:
		return "'>'"
	case tokLeq:
		return "'<='"
	case tokGeq:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokKind
	pos  int     // byte offset in the source
	text string  // identifiers and strings
	num  float64 // numbers
}

// SyntaxError describes a lexing or parsing failure with its byte offset.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return &SyntaxError{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case c == '"' || c == '\'':
		return l.lexString(c)
	case isIdentStart(rune(c)):
		return l.lexIdent()
	}
	l.pos++
	two := ""
	if l.pos < len(l.src) {
		two = l.src[start : l.pos+1]
	}
	switch two {
	case "&&":
		l.pos++
		return token{kind: tokAnd, pos: start}, nil
	case "||":
		l.pos++
		return token{kind: tokOr, pos: start}, nil
	case "==":
		l.pos++
		return token{kind: tokEq, pos: start}, nil
	case "!=":
		l.pos++
		return token{kind: tokNeq, pos: start}, nil
	case "<=":
		l.pos++
		return token{kind: tokLeq, pos: start}, nil
	case ">=":
		l.pos++
		return token{kind: tokGeq, pos: start}, nil
	}
	switch c {
	case '(':
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		return token{kind: tokRParen, pos: start}, nil
	case ',':
		return token{kind: tokComma, pos: start}, nil
	case '.':
		return token{kind: tokDot, pos: start}, nil
	case '!':
		return token{kind: tokNot, pos: start}, nil
	case '<':
		return token{kind: tokLt, pos: start}, nil
	case '>':
		return token{kind: tokGt, pos: start}, nil
	case '+':
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		return token{kind: tokMinus, pos: start}, nil
	case '*':
		return token{kind: tokStar, pos: start}, nil
	case '/':
		return token{kind: tokSlash, pos: start}, nil
	case '&', '|':
		return token{}, l.errf(start, "single %q (did you mean %q?)", string(c), string(c)+string(c))
	case '=':
		return token{}, l.errf(start, "single '=' (did you mean '=='?)")
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			// Do not swallow a trailing dot followed by an identifier
			// (there is no attribute access on numbers, but be safe).
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-'):
			seenExp = true
			l.pos += 2
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "bad number %q", text)
	}
	return token{kind: tokNumber, pos: start, num: f}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, pos: start, text: sb.String()}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(start, "unterminated string")
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(e)
			default:
				return token{}, l.errf(l.pos, "bad escape \\%s", string(e))
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return token{kind: tokIdent, pos: start, text: l.src[start:l.pos]}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
