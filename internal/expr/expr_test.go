package expr

import (
	"strings"
	"testing"

	"netembed/internal/graph"
)

// evalConstExpr compiles src (which must not reference any object) and
// returns its value through an empty environment.
func evalConstExpr(t *testing.T, src string) graph.Value {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	var e env
	return p.fn(&e)
}

func wantNum(t *testing.T, src string, want float64) {
	t.Helper()
	v := evalConstExpr(t, src)
	got, ok := v.Float()
	if !ok || got != want {
		t.Errorf("%q = %v, want %v", src, v, want)
	}
}

func wantBool(t *testing.T, src string, want bool) {
	t.Helper()
	v := evalConstExpr(t, src)
	got, ok := v.Truth()
	if !ok || got != want {
		t.Errorf("%q = %v, want %v", src, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantNum(t, "1+2", 3)
	wantNum(t, "1+2*3", 7)       // precedence
	wantNum(t, "(1+2)*3", 9)     // parens
	wantNum(t, "10-4-3", 3)      // left assoc
	wantNum(t, "24/4/2", 3)      // left assoc
	wantNum(t, "-5+2", -3)       // unary minus
	wantNum(t, "--5", 5)         // double negation
	wantNum(t, "2*-3", -6)       // unary in factor
	wantNum(t, "0.5*4", 2)       // decimals
	wantNum(t, ".25*4", 1)       // leading dot
	wantNum(t, "1e2+1", 101)     // exponent
	wantNum(t, "1.5e-1*10", 1.5) // signed exponent
	wantNum(t, "abs(-4)", 4)
	wantNum(t, "sqrt(9)", 3)
	wantNum(t, "floor(2.7)", 2)
	wantNum(t, "ceil(2.2)", 3)
	wantNum(t, "min(3,1,2)", 1)
	wantNum(t, "max(3,1,2)", 3)
	wantNum(t, "min(1+1, 5)", 2)
}

func TestComparisonsAndLogic(t *testing.T) {
	wantBool(t, "1 < 2", true)
	wantBool(t, "2 < 1", false)
	wantBool(t, "2 <= 2", true)
	wantBool(t, "3 >= 4", false)
	wantBool(t, "3 > 2", true)
	wantBool(t, "1 == 1", true)
	wantBool(t, "1 != 1", false)
	wantBool(t, `"a" == "a"`, true)
	wantBool(t, `"a" != "b"`, true)
	wantBool(t, `"abc" < "abd"`, true)
	wantBool(t, `'single' == "single"`, true)
	wantBool(t, "true", true)
	wantBool(t, "false", false)
	wantBool(t, "!false", true)
	wantBool(t, "!!true", true)
	wantBool(t, "true && false", false)
	wantBool(t, "true && true", true)
	wantBool(t, "false || true", true)
	wantBool(t, "false || false", false)
	// Precedence: && binds tighter than ||.
	wantBool(t, "true || false && false", true)
	wantBool(t, "(true || false) && false", false)
	// Comparison binds tighter than &&.
	wantBool(t, "1 < 2 && 3 < 4", true)
	// Arithmetic inside comparison.
	wantBool(t, "2+3 == 5", true)
	// Equality on booleans.
	wantBool(t, "(1<2) == (3<4)", true)
	// Mixed-kind equality is false, not an error.
	wantBool(t, `1 == "1"`, false)
	wantBool(t, `1 != "1"`, true)
}

func TestDivisionByZeroIsUnknown(t *testing.T) {
	v := evalConstExpr(t, "1/0")
	if !v.IsMissing() {
		t.Errorf("1/0 = %v, want missing", v)
	}
	// An unknown inside a conjunction with false still collapses to false.
	wantBool(t, "1/0 > 3 && false", false)
	wantBool(t, "false && 1/0 > 3", false)
	wantBool(t, "true || 1/0 > 3", true)
}

func TestSqrtOfNegativeIsUnknown(t *testing.T) {
	if v := evalConstExpr(t, "sqrt(-1)"); !v.IsMissing() {
		t.Errorf("sqrt(-1) = %v, want missing", v)
	}
}

func edgeBinding() *EdgeBinding {
	return &EdgeBinding{
		VEdge:   graph.Attrs{}.SetNum("avgDelay", 100),
		REdge:   graph.Attrs{}.SetNum("avgDelay", 95).SetNum("minDelay", 90).SetNum("maxDelay", 120),
		VSource: graph.Attrs{}.SetStr("osType", "linux").SetNum("x", 3),
		VTarget: graph.Attrs{}.SetNum("x", 0).SetNum("y", 4),
		RSource: graph.Attrs{}.SetStr("osType", "linux").SetStr("name", "planet1"),
		RTarget: graph.Attrs{}.SetStr("osType", "freebsd"),
	}
}

func TestPaperExamples(t *testing.T) {
	b := edgeBinding()

	// §VI-B example 1: tolerate 10% deviation around the requested delay.
	p := MustCompile("vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay")
	if !p.EvalEdge(b) {
		t.Error("10% deviation example should accept 100 vs 95")
	}

	// §VI-B example 2: requested delay within [min,max] of the real link.
	p = MustCompile("vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay")
	if !p.EvalEdge(b) {
		t.Error("min/max range example should accept 100 in [90,120]")
	}

	// §VI-B example 3: matching OS types via isBoundTo.
	p = MustCompile("isBoundTo(vSource.osType, rSource.osType)")
	if !p.EvalEdge(b) {
		t.Error("osType linux should bind to linux")
	}
	// Target nodes differ in osType, but vTarget has no osType: vacuous.
	p = MustCompile("isBoundTo(vTarget.osType, rTarget.osType)")
	if !p.EvalEdge(b) {
		t.Error("missing query attr must be unconstrained")
	}

	// §VI-B example 4: pinning a node by name.
	p = MustCompile("isBoundTo(vSource.bindTo, rSource.name)")
	if !p.EvalEdge(b) {
		t.Error("absent bindTo must be unconstrained")
	}
	b.VSource = b.VSource.SetStr("bindTo", "planet1")
	if !p.EvalEdge(b) {
		t.Error("bindTo planet1 should match name planet1")
	}
	b.VSource = b.VSource.SetStr("bindTo", "planet2")
	if p.EvalEdge(b) {
		t.Error("bindTo planet2 must not match name planet1")
	}

	// §VI-B example 5: geographic distance bound.
	p = MustCompile("sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + (vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0")
	// vSource.y is missing: constraint is unknown, therefore not satisfied.
	if p.EvalEdge(b) {
		t.Error("distance with missing coordinate must not be satisfied")
	}
	b.VSource = b.VSource.SetNum("y", 0)
	if !p.EvalEdge(b) { // distance = 5 < 100
		t.Error("distance 5 should satisfy < 100")
	}
}

func TestMissingAttributePropagation(t *testing.T) {
	b := &EdgeBinding{} // all bags nil
	p := MustCompile("vEdge.avgDelay >= 10")
	if p.EvalEdge(b) {
		t.Error("comparison with missing attr satisfied")
	}
	p = MustCompile("!(vEdge.avgDelay >= 10)")
	if p.EvalEdge(b) {
		t.Error("negated unknown must stay unknown")
	}
	p = MustCompile("has(vEdge.avgDelay)")
	if p.EvalEdge(b) {
		t.Error("has on missing attr")
	}
	b.VEdge = graph.Attrs{}.SetNum("avgDelay", 5)
	if !p.EvalEdge(b) {
		t.Error("has on present attr")
	}
	// has can gate a comparison to make absence acceptable.
	p = MustCompile("!has(vEdge.bw) || vEdge.bw > 100")
	if !p.EvalEdge(b) {
		t.Error("absent bw should pass the gated constraint")
	}
	b.VEdge = b.VEdge.SetNum("bw", 50)
	if p.EvalEdge(b) {
		t.Error("bw 50 must fail the gated constraint")
	}
}

func TestEmptyProgramAcceptsEverything(t *testing.T) {
	for _, src := range []string{"", "   ", "\t\n"} {
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		if !p.EvalEdge(&EdgeBinding{}) {
			t.Errorf("empty program %q rejected", src)
		}
	}
}

func TestNodeContext(t *testing.T) {
	p := MustCompile("vNode.cpu <= rNode.cpu && isBoundTo(vNode.osType, rNode.osType)")
	if err := p.CheckNodeContext(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckEdgeContext(); err == nil {
		t.Error("node program accepted as edge program")
	}
	b := &NodeBinding{
		VNode: graph.Attrs{}.SetNum("cpu", 2),
		RNode: graph.Attrs{}.SetNum("cpu", 4).SetStr("osType", "linux"),
	}
	if !p.EvalNode(b) {
		t.Error("cpu 2<=4 with unconstrained os should pass")
	}
	b.VNode = b.VNode.SetNum("cpu", 8)
	if p.EvalNode(b) {
		t.Error("cpu 8<=4 should fail")
	}
}

func TestContextChecks(t *testing.T) {
	edge := MustCompile("vEdge.d < rEdge.d")
	if err := edge.CheckEdgeContext(); err != nil {
		t.Error(err)
	}
	if err := edge.CheckNodeContext(); err != ErrNotNodeProgram {
		t.Errorf("CheckNodeContext = %v", err)
	}
	mixed := MustCompile("vEdge.d < 5 && vNode.cpu > 1")
	if err := mixed.CheckEdgeContext(); err != ErrNotEdgeProgram {
		t.Errorf("CheckEdgeContext = %v", err)
	}
	konst := MustCompile("1 < 2")
	if err := konst.CheckEdgeContext(); err != nil {
		t.Error(err)
	}
	if err := konst.CheckNodeContext(); err != nil {
		t.Error(err)
	}
	if !konst.EvalConst() {
		t.Error("EvalConst(1<2) = false")
	}
}

func TestUses(t *testing.T) {
	p := MustCompile("vEdge.d < rEdge.d && rSource.up == true")
	for _, c := range []struct {
		o    Object
		want bool
	}{
		{ObjVEdge, true}, {ObjREdge, true}, {ObjRSource, true},
		{ObjVSource, false}, {ObjVTarget, false}, {ObjRTarget, false},
		{ObjVNode, false}, {ObjRNode, false},
	} {
		if got := p.Uses(c.o); got != c.want {
			t.Errorf("Uses(%v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestRefs(t *testing.T) {
	p := MustCompile("vEdge.d < rEdge.d && rEdge.d > 0 && isBoundTo(vSource.os, rSource.os)")
	refs := p.Refs()
	want := []AttrRef{
		{ObjVEdge, "d"},
		{ObjREdge, "d"}, // deduplicated: appears twice in the source
		{ObjVSource, "os"},
		{ObjRSource, "os"},
	}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
	if got := want[0].String(); got != "vEdge.d" {
		t.Errorf("AttrRef.String = %q", got)
	}
	// Mutating the returned slice must not affect the program.
	refs[0].Attr = "corrupted"
	if p.Refs()[0].Attr != "d" {
		t.Error("Refs returned aliased storage")
	}
	if got := MustCompile("1 < 2").Refs(); len(got) != 0 {
		t.Errorf("constant program refs = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"1 +", "unexpected"},
		{"(1", "expected ')'"},
		{"foo.bar > 1", "unknown object"},
		{"vEdge.", "expected attribute name"},
		{"vEdge", "bare identifier"},
		{"nosuchfn(1)", "unknown function"},
		{"abs()", "1 argument"},
		{"abs(1,2)", "1 argument"},
		{"min(1)", "2+ arguments"},
		{"isBoundTo(vEdge.a)", "2 arguments"},
		{"1 & 2", "single"},
		{"1 | 2", "single"},
		{"1 = 2", "single '='"},
		{"1 2", "trailing input"},
		{`"unterminated`, "unterminated string"},
		{`"bad \q escape"`, "bad escape"},
		{"@", "unexpected character"},
		{"1e+ > 0", "bad number"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile on bad input did not panic")
		}
	}()
	MustCompile("1 +")
}

func TestStringRoundtrip(t *testing.T) {
	src := "vEdge.avgDelay >= 1 && vEdge.avgDelay <= 2"
	if got := MustCompile(src).String(); got != src {
		t.Errorf("String = %q", got)
	}
}

func TestKleeneTruthTable(t *testing.T) {
	// Build unknown via a missing attribute.
	b := &EdgeBinding{VEdge: graph.Attrs{}.SetNum("x", 1)}
	u := "vEdge.nope > 0" // unknown
	cases := []struct {
		src  string
		want bool // satisfied?
	}{
		{"true && " + u, false},
		{u + " && true", false},
		{"false && " + u, false},
		{u + " && false", false},
		{"true || " + u, true},
		{u + " || true", true},
		{"false || " + u, false},
		{u + " || false", false},
		{"!(" + u + ")", false},
	}
	for _, c := range cases {
		if got := MustCompile(c.src).EvalEdge(b); got != c.want {
			t.Errorf("%q satisfied = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestProgramIsConcurrencySafe(t *testing.T) {
	p := MustCompile("vEdge.d >= rEdge.min && vEdge.d <= rEdge.max")
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func(i int) {
			b := &EdgeBinding{
				VEdge: graph.Attrs{}.SetNum("d", float64(i)),
				REdge: graph.Attrs{}.SetNum("min", 0).SetNum("max", 100),
			}
			ok := true
			for j := 0; j < 1000; j++ {
				if !p.EvalEdge(b) {
					ok = false
				}
			}
			done <- ok
		}(i)
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("concurrent evaluation failed")
		}
	}
}

func BenchmarkEvalDelayRange(b *testing.B) {
	p := MustCompile("vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay")
	bind := edgeBindingForBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.EvalEdge(bind) {
			b.Fatal("unexpected reject")
		}
	}
}

func BenchmarkCompileDelayRange(b *testing.B) {
	src := "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay"
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func edgeBindingForBench() *EdgeBinding {
	return &EdgeBinding{
		VEdge: graph.Attrs{}.SetNum("avgDelay", 100),
		REdge: graph.Attrs{}.SetNum("minDelay", 90).SetNum("maxDelay", 120),
	}
}
