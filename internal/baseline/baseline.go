// Package baseline re-implements the algorithmic cores of the prior
// systems NETEMBED is evaluated against in §II and §VII-F:
//
//   - Annealer: simulated annealing over complete assignments, the
//     optimization engine of Emulab's assign [13];
//   - Genetic: a genetic algorithm over permutations, as in wanassign
//     [10], whose published evaluations covered only tens of nodes;
//   - NaiveDFS: brute-force permutation-tree search with constraint checks
//     but neither filter matrices nor Lemma-1 ordering — the ablation that
//     isolates the value of NETEMBED's pruning machinery;
//   - Sword: a SWORD-style [17] two-phase matcher (group candidates, then
//     bounded combination search with candidate pruning), which trades
//     completeness for speed and can return false negatives;
//   - ZhuAmmar: the stress-based virtual-network assigner of Zhu & Ammar
//     [15], which balances substrate load instead of satisfying
//     constraints — fast, but its assignments rarely pass tight delay
//     windows, and its link-stress accounting presumes a closed network.
//
// All baselines consume the same core.Problem and report core.Result-like
// outcomes so that the experiment harness can compare them head-to-head
// with ECF/RWB/LNS.
package baseline

import (
	"math"
	"math/rand"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// Outcome reports one baseline run.
type Outcome struct {
	Solution   core.Mapping // nil when none found
	Found      bool
	Definitive bool          // true when "not found" proves infeasibility
	Iterations int64         // algorithm-specific work counter
	Elapsed    time.Duration // wall time
}

// cost counts constraint violations of a complete assignment: one unit per
// query edge without a feasible host edge plus one per node-constraint
// violation. Zero cost means a feasible embedding.
func cost(p *core.Problem, m core.Mapping) int {
	c := 0
	for q := range m {
		if !p.NodeFeasible(graph.NodeID(q), m[q]) {
			c++
		}
	}
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		if !p.EdgeFeasible(qe, m[qe.From], m[qe.To]) {
			c++
		}
	}
	return c
}

// AnnealerConfig tunes the simulated-annealing baseline.
type AnnealerConfig struct {
	Steps    int     // total proposal count (default 200k)
	T0       float64 // initial temperature (default 2.0)
	Cooling  float64 // geometric cooling factor per step (default so T ~0.01 at the end)
	Restarts int     // independent restarts (default 3)
	Seed     int64
	Timeout  time.Duration
}

func (c *AnnealerConfig) applyDefaults() {
	if c.Steps == 0 {
		c.Steps = 200_000
	}
	if c.T0 == 0 {
		c.T0 = 2.0
	}
	if c.Cooling == 0 {
		// Reach T≈0.01 by the final step.
		c.Cooling = math.Pow(0.01/c.T0, 1/float64(c.Steps))
	}
	if c.Restarts == 0 {
		c.Restarts = 3
	}
}

// Annealer searches for a zero-cost assignment by simulated annealing, the
// strategy of assign [13]: moves reassign one query node to a fresh host
// node or swap two query nodes' images; worsening moves are accepted with
// probability exp(-Δ/T). Like all annealing approaches it offers no
// completeness guarantee: a "not found" answer is never definitive.
func Annealer(p *core.Problem, cfg AnnealerConfig) Outcome {
	cfg.applyDefaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	var iters int64

	if nq == 0 {
		return Outcome{Solution: core.Mapping{}, Found: true, Definitive: true, Elapsed: time.Since(start)}
	}

	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}

	for restart := 0; restart < cfg.Restarts; restart++ {
		m := core.RandomMapping(p, rng)
		cur := cost(p, m)
		if cur == 0 {
			return Outcome{Solution: m, Found: true, Iterations: iters, Elapsed: time.Since(start)}
		}
		inUse := make([]bool, nr)
		for _, r := range m {
			inUse[r] = true
		}
		temp := cfg.T0
		for step := 0; step < cfg.Steps; step++ {
			iters++
			if !deadline.IsZero() && iters%1024 == 0 && time.Now().After(deadline) {
				return Outcome{Iterations: iters, Elapsed: time.Since(start)}
			}
			q := rng.Intn(nq)
			old := m[q]
			var alt graph.NodeID
			if rng.Intn(2) == 0 && nq >= 2 {
				// Swap with another query node's image.
				q2 := rng.Intn(nq)
				for q2 == q {
					q2 = rng.Intn(nq)
				}
				m[q], m[q2] = m[q2], m[q]
				next := cost(p, m)
				if accept(next-cur, temp, rng) {
					cur = next
				} else {
					m[q], m[q2] = m[q2], m[q]
				}
			} else {
				// Move to an unused host node.
				alt = graph.NodeID(rng.Intn(nr))
				for inUse[alt] {
					alt = graph.NodeID(rng.Intn(nr))
				}
				m[q] = alt
				next := cost(p, m)
				if accept(next-cur, temp, rng) {
					cur = next
					inUse[old] = false
					inUse[alt] = true
				} else {
					m[q] = old
				}
			}
			if cur == 0 {
				return Outcome{Solution: m.Clone(), Found: true, Iterations: iters, Elapsed: time.Since(start)}
			}
			temp *= cfg.Cooling
		}
	}
	return Outcome{Iterations: iters, Elapsed: time.Since(start)}
}

func accept(delta int, temp float64, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-float64(delta)/temp)
}

// GeneticConfig tunes the genetic-algorithm baseline.
type GeneticConfig struct {
	Population  int // default 60
	Generations int // default 400
	TournamentK int // default 3
	MutationPct int // per-individual mutation probability in percent (default 30)
	Seed        int64
	Timeout     time.Duration
}

func (c *GeneticConfig) applyDefaults() {
	if c.Population == 0 {
		c.Population = 60
	}
	if c.Generations == 0 {
		c.Generations = 400
	}
	if c.TournamentK == 0 {
		c.TournamentK = 3
	}
	if c.MutationPct == 0 {
		c.MutationPct = 30
	}
}

// Genetic evolves a population of injective assignments toward zero
// constraint violations, following wanassign [10]: tournament selection,
// a position-preserving crossover repaired to injectivity, and swap/move
// mutations. No completeness guarantee.
func Genetic(p *core.Problem, cfg GeneticConfig) Outcome {
	cfg.applyDefaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	var iters int64

	if nq == 0 {
		return Outcome{Solution: core.Mapping{}, Found: true, Definitive: true, Elapsed: time.Since(start)}
	}

	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}

	pop := make([]core.Mapping, cfg.Population)
	costs := make([]int, cfg.Population)
	for i := range pop {
		pop[i] = core.RandomMapping(p, rng)
		costs[i] = cost(p, pop[i])
		if costs[i] == 0 {
			return Outcome{Solution: pop[i], Found: true, Iterations: iters, Elapsed: time.Since(start)}
		}
	}

	pick := func() int {
		best := rng.Intn(cfg.Population)
		for k := 1; k < cfg.TournamentK; k++ {
			c := rng.Intn(cfg.Population)
			if costs[c] < costs[best] {
				best = c
			}
		}
		return best
	}

	child := make(core.Mapping, nq)
	usedBy := make([]int32, nr) // host -> child query node + 1, 0 = free
	for gen := 0; gen < cfg.Generations; gen++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		next := make([]core.Mapping, 0, cfg.Population)
		nextCosts := make([]int, 0, cfg.Population)
		// Elitism: carry the best individual over.
		bestIdx := 0
		for i := range costs {
			if costs[i] < costs[bestIdx] {
				bestIdx = i
			}
		}
		next = append(next, pop[bestIdx].Clone())
		nextCosts = append(nextCosts, costs[bestIdx])

		for len(next) < cfg.Population {
			iters++
			a, b := pop[pick()], pop[pick()]
			// Uniform crossover with injectivity repair.
			for i := range usedBy {
				usedBy[i] = 0
			}
			for q := 0; q < nq; q++ {
				g := a[q]
				if rng.Intn(2) == 1 {
					g = b[q]
				}
				if usedBy[g] != 0 {
					g = -1 // conflict: repair below
				} else {
					usedBy[g] = int32(q) + 1
				}
				child[q] = g
			}
			for q := 0; q < nq; q++ {
				if child[q] >= 0 {
					continue
				}
				r := graph.NodeID(rng.Intn(nr))
				for usedBy[r] != 0 {
					r = graph.NodeID(rng.Intn(nr))
				}
				child[q] = r
				usedBy[r] = int32(q) + 1
			}
			// Mutation: swap two images or jump to a free host.
			if rng.Intn(100) < cfg.MutationPct {
				if rng.Intn(2) == 0 && nq >= 2 {
					i, j := rng.Intn(nq), rng.Intn(nq)
					child[i], child[j] = child[j], child[i]
				} else {
					q := rng.Intn(nq)
					r := graph.NodeID(rng.Intn(nr))
					for usedBy[r] != 0 {
						r = graph.NodeID(rng.Intn(nr))
					}
					child[q] = r
				}
			}
			c := cost(p, child)
			if c == 0 {
				return Outcome{Solution: child.Clone(), Found: true, Iterations: iters, Elapsed: time.Since(start)}
			}
			next = append(next, child.Clone())
			nextCosts = append(nextCosts, c)
		}
		pop, costs = next, nextCosts
	}
	return Outcome{Iterations: iters, Elapsed: time.Since(start)}
}
