package baseline

import (
	"sort"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// SwordConfig tunes the SWORD-style two-phase matcher.
type SwordConfig struct {
	// KeepTop bounds phase 1: only the KeepTop lowest-penalty candidates
	// per query node survive into phase 2 (SWORD's "top five candidates"
	// style pruning; default 5). Raising it trades speed for recall.
	KeepTop int
	// PhaseTimeout bounds each of the two phases (default 1s each).
	PhaseTimeout time.Duration
}

func (c *SwordConfig) applyDefaults() {
	if c.KeepTop == 0 {
		c.KeepTop = 5
	}
	if c.PhaseTimeout == 0 {
		c.PhaseTimeout = time.Second
	}
}

// SwordResult reports a Sword run.
type SwordResult struct {
	Solution core.Mapping
	Found    bool
	// FalseNegativePossible is always true when Found is false: the
	// per-node candidate pruning may have discarded every feasible
	// combination, so "not found" proves nothing (§II's critique).
	FalseNegativePossible bool
	Elapsed               time.Duration
}

// Sword approximates SWORD's two-phase matcher [17] on a core.Problem.
// Phase 1 scores every (query node, host node) pairing by a penalty — how
// many of the query node's edges could not possibly be realized from that
// host node — and keeps only the KeepTop best candidates per query node.
// Phase 2 searches combinations of the surviving candidates under a
// timeout. The aggressive phase-1 pruning is exactly what makes SWORD fast
// and incomplete.
func Sword(p *core.Problem, cfg SwordConfig) SwordResult {
	cfg.applyDefaults()
	start := time.Now()
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	if nq == 0 {
		return SwordResult{Solution: core.Mapping{}, Found: true, Elapsed: time.Since(start)}
	}

	// Phase 1: per-node candidate scoring.
	phase1Deadline := start.Add(cfg.PhaseTimeout)
	type scored struct {
		r       graph.NodeID
		penalty int
	}
	cands := make([][]scored, nq)
	for q := 0; q < nq; q++ {
		qid := graph.NodeID(q)
		var list []scored
		for r := 0; r < nr; r++ {
			rid := graph.NodeID(r)
			if !p.NodeFeasible(qid, rid) {
				continue
			}
			penalty := 0
			for _, a := range p.Query.Arcs(qid) {
				qe := p.Query.Edge(a.Edge)
				realizable := false
				for _, ha := range p.Host.Arcs(rid) {
					rs, rt := rid, ha.To
					if qe.From != qid {
						rs, rt = ha.To, rid
					}
					if p.EdgeFeasible(qe, rs, rt) {
						realizable = true
						break
					}
				}
				if !realizable {
					penalty++
				}
			}
			list = append(list, scored{rid, penalty})
			if time.Now().After(phase1Deadline) {
				break
			}
		}
		sort.SliceStable(list, func(i, j int) bool { return list[i].penalty < list[j].penalty })
		if len(list) > cfg.KeepTop {
			list = list[:cfg.KeepTop] // the lossy pruning step
		}
		cands[q] = list
	}

	// Phase 2: bounded combination search over the surviving candidates.
	phase2Deadline := time.Now().Add(cfg.PhaseTimeout)
	assign := make(core.Mapping, nq)
	for i := range assign {
		assign[i] = -1
	}
	used := make(map[graph.NodeID]bool, nq)
	var steps int64
	var rec func(q int) bool
	rec = func(q int) bool {
		if q == nq {
			return true
		}
		for _, c := range cands[q] {
			steps++
			if steps%256 == 0 && time.Now().After(phase2Deadline) {
				return false
			}
			if used[c.r] {
				continue
			}
			assign[q] = c.r
			ok := true
			for _, a := range p.Query.Arcs(graph.NodeID(q)) {
				if a.To < graph.NodeID(q) || assign[a.To] >= 0 {
					if assign[a.To] < 0 {
						continue
					}
					qe := p.Query.Edge(a.Edge)
					if !p.EdgeFeasible(qe, assign[qe.From], assign[qe.To]) {
						ok = false
						break
					}
				}
			}
			if ok {
				used[c.r] = true
				if rec(q + 1) {
					return true
				}
				delete(used, c.r)
			}
			assign[q] = -1
		}
		return false
	}
	if rec(0) {
		return SwordResult{Solution: assign, Found: true, Elapsed: time.Since(start)}
	}
	return SwordResult{FalseNegativePossible: true, Elapsed: time.Since(start)}
}
