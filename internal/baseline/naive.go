package baseline

import (
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// NaiveConfig tunes the unpruned exhaustive baseline.
type NaiveConfig struct {
	Timeout      time.Duration
	MaxSolutions int // 0 = all
}

// NaiveResult reports a NaiveDFS run.
type NaiveResult struct {
	Solutions []core.Mapping
	Exhausted bool
	Visited   int64
	Elapsed   time.Duration
}

// NaiveDFS is the ablation baseline: a depth-first search of the
// permutations tree in natural node order that checks constraints on each
// extension, but has neither precomputed filter matrices nor the Lemma-1
// ordering nor candidate intersection — at every level it scans all unused
// host nodes. Complete and correct like ECF, just much slower; the gap
// between the two isolates the value of NETEMBED's machinery.
func NaiveDFS(p *core.Problem, cfg NaiveConfig) NaiveResult {
	start := time.Now()
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	res := NaiveResult{}
	assign := make(core.Mapping, nq)
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, nr)

	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}
	timedOut := false
	stopped := false

	// incident[q] = query edges whose later endpoint is q.
	incident := make([][]graph.EdgeID, nq)
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		later := qe.From
		if qe.To > later {
			later = qe.To
		}
		incident[later] = append(incident[later], graph.EdgeID(i))
	}

	var rec func(q int)
	rec = func(q int) {
		if timedOut || stopped {
			return
		}
		if q == nq {
			res.Solutions = append(res.Solutions, assign.Clone())
			if cfg.MaxSolutions > 0 && len(res.Solutions) >= cfg.MaxSolutions {
				stopped = true
			}
			return
		}
		for r := 0; r < nr; r++ {
			if used[r] {
				continue
			}
			res.Visited++
			if !deadline.IsZero() && res.Visited%512 == 0 && time.Now().After(deadline) {
				timedOut = true
				return
			}
			rid := graph.NodeID(r)
			if !p.NodeFeasible(graph.NodeID(q), rid) {
				continue
			}
			assign[q] = rid
			ok := true
			for _, eid := range incident[q] {
				qe := p.Query.Edge(eid)
				if !p.EdgeFeasible(qe, assign[qe.From], assign[qe.To]) {
					ok = false
					break
				}
			}
			if ok {
				used[r] = true
				rec(q + 1)
				used[r] = false
			}
			assign[q] = -1
			if timedOut || stopped {
				return
			}
		}
	}
	rec(0)
	res.Exhausted = !timedOut && !stopped
	res.Elapsed = time.Since(start)
	return res
}
