package baseline

import (
	"math"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// This file re-implements the algorithmic core of Zhu & Ammar,
// "Algorithms for Assigning Substrate Network Resources to Virtual
// Network Components" (INFOCOM 2006) — the stress-based optimizer §II
// discusses. The algorithm keeps per-substrate-node and per-substrate-
// link stress counters (how many virtual components each carries), maps
// virtual nodes onto lightly stressed substrate nodes near their already-
// placed neighbors, and maps each virtual link onto a stress-weighted
// shortest path. The goal is interference minimization across many
// coexisting virtual networks, not constraint satisfaction — which is
// exactly the contrast §VII-F draws: the §II note that the method "can be
// extended to the constrained version of the problem by filtering out
// infeasible assignments" is realized by the Filter knob, and the §II
// observation that it "requires an accounting of the stress metric on
// every real link" (closed networks only) is what the Stress accumulator
// makes explicit.

// Stress is the running load accounting across successively assigned
// virtual networks. The zero value is an empty substrate; reuse one value
// across ZhuAmmar calls to model coexisting virtual networks.
type Stress struct {
	Node []int // virtual nodes hosted per substrate node
	Link []int // virtual links routed per substrate link
}

// ensure sizes the counters for a host.
func (s *Stress) ensure(host *graph.Graph) {
	if len(s.Node) < host.NumNodes() {
		s.Node = append(s.Node, make([]int, host.NumNodes()-len(s.Node))...)
	}
	if len(s.Link) < host.NumEdges() {
		s.Link = append(s.Link, make([]int, host.NumEdges()-len(s.Link))...)
	}
}

// MaxNode returns the maximum node stress.
func (s *Stress) MaxNode() int {
	m := 0
	for _, v := range s.Node {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxLink returns the maximum link stress.
func (s *Stress) MaxLink() int {
	m := 0
	for _, v := range s.Link {
		if v > m {
			m = v
		}
	}
	return m
}

// ZhuAmmarConfig tunes the stress-based assigner.
type ZhuAmmarConfig struct {
	// Prior carries stress from previously assigned virtual networks;
	// nil starts from an unloaded substrate. On success the counters are
	// updated in place with this network's load.
	Prior *Stress
	// Filter enables the §II constrained variant: substrate nodes
	// failing the problem's node constraint are excluded as candidates.
	Filter bool
	// MaxPathHops bounds the substrate path a virtual link may take
	// (0 = unbounded).
	MaxPathHops int
	// Timeout bounds the run (0 = unbounded).
	Timeout time.Duration
}

// ZhuAmmarResult reports one stress-based assignment.
type ZhuAmmarResult struct {
	// Assignment maps each virtual node to its substrate node; nil when
	// the assigner ran out of candidates.
	Assignment core.Mapping
	// Paths holds, per virtual edge index, the substrate node path
	// realizing that virtual link (length 2 = a direct substrate edge).
	Paths [][]graph.NodeID
	// Assigned reports whether every node and link was placed.
	Assigned bool
	// Feasible reports whether the assignment also satisfies the
	// problem's constraints as a *direct-edge* embedding — every virtual
	// link on a single feasible substrate edge. Stress optimization
	// routinely fails this: it balances load instead of honoring delay
	// windows, the head-to-head contrast of §VII-F.
	Feasible bool
	// MaxNodeStress / MaxLinkStress after this assignment.
	MaxNodeStress int
	MaxLinkStress int
	// AvgPathLen is the mean substrate hops per virtual link.
	AvgPathLen float64
	Iterations int64
	Elapsed    time.Duration
}

// ZhuAmmar runs the VNA-style greedy assignment of p.Query onto p.Host.
// Virtual nodes are placed in decreasing degree order, each onto the
// substrate node minimizing (1+nodeStress) · (1+Σ stress-weighted
// distance to already-placed neighbors); virtual links then follow
// stress-weighted shortest paths, bumping link stress as they go.
func ZhuAmmar(p *core.Problem, cfg ZhuAmmarConfig) ZhuAmmarResult {
	start := time.Now()
	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}
	st := cfg.Prior
	if st == nil {
		st = &Stress{}
	}
	host, query := p.Host, p.Query
	st.ensure(host)

	res := ZhuAmmarResult{}
	defer func() { res.Elapsed = time.Since(start) }()

	// Stress-weighted link cost: heavily loaded links look long, so new
	// virtual links route around them.
	linkCost := func(e graph.EdgeID) float64 { return 1 + float64(st.Link[e]) }

	// Virtual nodes in decreasing degree order (the paper places the
	// most connected components first).
	order := make([]graph.NodeID, query.NumNodes())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && query.Degree(order[j]) > query.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	assign := make(core.Mapping, query.NumNodes())
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, host.NumNodes())

	// Undo logs: a failed assignment must not leave partial load in the
	// shared Prior accumulator.
	var placedNodes []graph.NodeID
	var routedEdges []graph.EdgeID
	rollback := func() {
		for _, r := range placedNodes {
			st.Node[r]--
		}
		for _, e := range routedEdges {
			st.Link[e]--
		}
	}

	for _, v := range order {
		if !deadline.IsZero() && time.Now().After(deadline) {
			rollback()
			return res
		}
		// Distance fields from each already-placed neighbor's host.
		type field struct{ dist []float64 }
		var fields []field
		for _, a := range query.Arcs(v) {
			if assign[a.To] >= 0 {
				fields = append(fields, field{stressDistances(host, assign[a.To], linkCost)})
			}
		}
		if query.Directed() {
			for _, a := range query.InArcs(v) {
				if assign[a.To] >= 0 {
					fields = append(fields, field{stressDistances(host, assign[a.To], linkCost)})
				}
			}
		}
		best := graph.NodeID(-1)
		bestScore := math.Inf(1)
		for r := 0; r < host.NumNodes(); r++ {
			res.Iterations++
			if used[r] {
				continue
			}
			if cfg.Filter && !p.NodeFeasible(v, graph.NodeID(r)) {
				continue
			}
			sum := 0.0
			reachable := true
			for _, f := range fields {
				d := f.dist[r]
				if math.IsInf(d, 1) {
					reachable = false
					break
				}
				sum += d
			}
			if !reachable {
				continue
			}
			score := (1 + float64(st.Node[r])) * (1 + sum)
			if score < bestScore {
				bestScore = score
				best = graph.NodeID(r)
			}
		}
		if best < 0 {
			rollback()
			return res // out of candidates: assignment fails
		}
		assign[v] = best
		used[best] = true
		st.Node[best]++
		placedNodes = append(placedNodes, best)
	}
	res.Assignment = assign

	// Link mapping: stress-weighted shortest paths, updating stress so
	// later links avoid what earlier links loaded.
	totalHops := 0
	feasible := true
	for i := 0; i < query.NumEdges(); i++ {
		qe := query.Edge(graph.EdgeID(i))
		path, ok := host.ShortestPath(assign[qe.From], assign[qe.To], linkCost)
		if !ok || (cfg.MaxPathHops > 0 && len(path.Edges) > cfg.MaxPathHops) {
			res.Paths = append(res.Paths, nil)
			rollback()
			return res
		}
		for _, e := range path.Edges {
			st.Link[e]++
			routedEdges = append(routedEdges, e)
		}
		res.Paths = append(res.Paths, path.Nodes)
		totalHops += len(path.Edges)
		if len(path.Edges) != 1 || !p.EdgeFeasible(qe, assign[qe.From], assign[qe.To]) {
			feasible = false
		}
	}
	res.Assigned = true
	res.Feasible = feasible && p.Verify(assign) == nil
	res.MaxNodeStress = st.MaxNode()
	res.MaxLinkStress = st.MaxLink()
	if query.NumEdges() > 0 {
		res.AvgPathLen = float64(totalHops) / float64(query.NumEdges())
	}
	return res
}

// stressDistances runs one single-source stress-weighted shortest-path
// sweep and returns the distance to every host node (Inf = unreachable).
func stressDistances(host *graph.Graph, src graph.NodeID, cost func(graph.EdgeID) float64) []float64 {
	dist := make([]float64, host.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	// Reuse the graph's Dijkstra per destination would be O(n·m log n);
	// a single relaxation sweep from src covers all of them at once.
	type item struct {
		n graph.NodeID
		d float64
	}
	// Simple binary heap.
	heap := []item{{src, 0}}
	dist[src] = 0
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].d <= heap[i].d {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l].d < heap[small].d {
				small = l
			}
			if r < last && heap[r].d < heap[small].d {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		if it.d > dist[it.n] {
			continue
		}
		for _, a := range host.Arcs(it.n) {
			nd := it.d + cost(a.Edge)
			if nd < dist[a.To] {
				dist[a.To] = nd
				push(item{a.To, nd})
			}
		}
	}
	return dist
}
