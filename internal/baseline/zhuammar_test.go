package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

func zaHost(t *testing.T) *graph.Graph {
	t.Helper()
	return trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(61)))
}

func zaProblem(t *testing.T, host *graph.Graph, n int, seed int64) *core.Problem {
	t.Helper()
	q, _, err := topo.Subgraph(host, n, 2*n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.1)
	prog := expr.MustCompile("rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")
	p, err := core.NewProblem(q, host, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestZhuAmmarAssignsEverything(t *testing.T) {
	host := zaHost(t)
	p := zaProblem(t, host, 8, 1)
	res := ZhuAmmar(p, ZhuAmmarConfig{})
	if !res.Assigned {
		t.Fatal("assignment failed on an easy instance")
	}
	if len(res.Assignment) != p.Query.NumNodes() {
		t.Fatalf("assignment covers %d nodes, want %d", len(res.Assignment), p.Query.NumNodes())
	}
	// Node mapping must be injective (VNA maps one virtual node per
	// substrate node within a VN).
	seen := map[graph.NodeID]bool{}
	for _, r := range res.Assignment {
		if seen[r] {
			t.Fatalf("substrate node %d reused within one VN", r)
		}
		seen[r] = true
	}
	// Every virtual link has a path connecting its endpoints' hosts.
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		path := res.Paths[i]
		if len(path) < 2 {
			t.Fatalf("virtual link %d has no substrate path", i)
		}
		if path[0] != res.Assignment[qe.From] || path[len(path)-1] != res.Assignment[qe.To] {
			t.Fatalf("path endpoints %v do not match assignment (%d,%d)",
				path, res.Assignment[qe.From], res.Assignment[qe.To])
		}
		for j := 0; j+1 < len(path); j++ {
			if !p.Host.HasEdge(path[j], path[j+1]) {
				t.Fatalf("path hop %d-%d is not a substrate edge", path[j], path[j+1])
			}
		}
	}
	if res.AvgPathLen < 1 {
		t.Fatalf("average path length %v < 1", res.AvgPathLen)
	}
}

func TestZhuAmmarStressAccumulatesAndBalances(t *testing.T) {
	host := zaHost(t)
	st := &Stress{}
	// Assign several virtual networks onto the shared substrate.
	for vn := 0; vn < 5; vn++ {
		p := zaProblem(t, host, 6, int64(10+vn))
		res := ZhuAmmar(p, ZhuAmmarConfig{Prior: st})
		if !res.Assigned {
			t.Fatalf("VN %d failed to assign", vn)
		}
	}
	total := 0
	for _, v := range st.Node {
		total += v
	}
	if total != 5*6 {
		t.Fatalf("total node stress %d, want 30", total)
	}
	// Load balancing: 30 virtual nodes on 30 substrate nodes must not
	// pile onto a few hosts. A first-fit assigner would reuse the same
	// low-index nodes every time (max stress 5); the stress objective
	// keeps the maximum far lower.
	if st.MaxNode() > 2 {
		t.Fatalf("max node stress %d — stress objective is not balancing", st.MaxNode())
	}
}

func TestZhuAmmarRollbackOnFailure(t *testing.T) {
	// Two disconnected substrate islands: a query edge spanning nodes
	// whose only candidates sit on different islands cannot route, so the
	// assignment fails — and must leave no residual stress behind.
	host := graph.NewUndirected()
	for i := 0; i < 6; i++ {
		host.AddNode(fmt.Sprintf("h%d", i), nil)
	}
	link := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 10)
	}
	host.MustAddEdge(0, 1, link())
	host.MustAddEdge(1, 2, link())
	host.MustAddEdge(3, 4, link())
	host.MustAddEdge(4, 5, link())

	q := graph.NewUndirected()
	q.AddNode("a", graph.Attrs{}.SetStr("bindTo", "h0"))
	q.AddNode("b", graph.Attrs{}.SetStr("bindTo", "h3"))
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 0).SetNum("maxDelay", 100))

	nodeC := expr.MustCompile("isBoundTo(vNode.bindTo, rNode.name)")
	// Node names are exposed via the "name" attribute by the service; in
	// a bare Problem they are not, so bind by an explicit attribute.
	for i := 0; i < host.NumNodes(); i++ {
		host.Node(graph.NodeID(i)).Attrs = host.Node(graph.NodeID(i)).Attrs.
			SetStr("name", host.Node(graph.NodeID(i)).Name)
	}
	p, err := core.NewProblem(q, host, nil, nodeC)
	if err != nil {
		t.Fatal(err)
	}
	st := &Stress{}
	res := ZhuAmmar(p, ZhuAmmarConfig{Prior: st, Filter: true})
	if res.Assigned {
		t.Fatal("assignment across disconnected islands should fail")
	}
	for i, v := range st.Node {
		if v != 0 {
			t.Fatalf("residual node stress %d on host %d after failure", v, i)
		}
	}
	for i, v := range st.Link {
		if v != 0 {
			t.Fatalf("residual link stress %d on edge %d after failure", v, i)
		}
	}
}

func TestZhuAmmarFilterRestrictsCandidates(t *testing.T) {
	host := zaHost(t)
	// Forbid everything: the filtered variant must fail, the unfiltered
	// one must still assign.
	q, _, err := topo.Subgraph(host, 5, 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	never := expr.MustCompile("1 > 2")
	p, err := core.NewProblem(q, host, nil, never)
	if err != nil {
		t.Fatal(err)
	}
	if res := ZhuAmmar(p, ZhuAmmarConfig{Filter: true}); res.Assigned {
		t.Fatal("filtered assigner ignored the node constraint")
	}
	if res := ZhuAmmar(p, ZhuAmmarConfig{}); !res.Assigned {
		t.Fatal("unfiltered assigner should place nodes regardless")
	}
}

func TestZhuAmmarFeasibilityContrast(t *testing.T) {
	// §VII-F: on tightly delay-constrained queries the stress optimizer
	// assigns quickly but its assignment rarely satisfies the windows,
	// while ECF (complete search) always finds the planted embedding.
	host := zaHost(t)
	feasibleZA, feasibleECF := 0, 0
	const trials = 10
	for i := 0; i < trials; i++ {
		p := zaProblem(t, host, 8, int64(20+i))
		if res := ZhuAmmar(p, ZhuAmmarConfig{}); res.Assigned && res.Feasible {
			feasibleZA++
		}
		if ecf := core.ECF(p, core.Options{MaxSolutions: 1}); len(ecf.Solutions) > 0 {
			feasibleECF++
		}
	}
	if feasibleECF != trials {
		t.Fatalf("ECF found %d/%d planted embeddings", feasibleECF, trials)
	}
	if feasibleZA >= feasibleECF {
		t.Fatalf("stress optimizer matched complete search (%d vs %d) — the §VII-F contrast vanished",
			feasibleZA, feasibleECF)
	}
}

func TestZhuAmmarMaxPathHops(t *testing.T) {
	// A line substrate: nodes at the two ends are 5 hops apart. With
	// MaxPathHops 2 the only valid assignments keep endpoints close.
	host := graph.NewUndirected()
	for i := 0; i < 6; i++ {
		host.AddNode("", nil)
	}
	for i := 0; i+1 < 6; i++ {
		host.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Attrs{}.SetNum("maxDelay", 10))
	}
	q := graph.NewUndirected()
	q.AddNode("", nil)
	q.AddNode("", nil)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("maxDelay", 100))
	p, err := core.NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ZhuAmmar(p, ZhuAmmarConfig{MaxPathHops: 2})
	if res.Assigned {
		for i, path := range res.Paths {
			if len(path)-1 > 2 {
				t.Fatalf("virtual link %d routed over %d hops despite MaxPathHops=2", i, len(path)-1)
			}
		}
	}
}

func TestZhuAmmarTimeout(t *testing.T) {
	host := zaHost(t)
	p := zaProblem(t, host, 10, 7)
	res := ZhuAmmar(p, ZhuAmmarConfig{Timeout: time.Nanosecond})
	if res.Assigned {
		t.Skip("assignment finished before the first deadline check")
	}
	// Must not report feasibility and must leave clean stress.
	if res.Feasible {
		t.Fatal("timed-out run reported feasible")
	}
}

func TestZhuAmmarDeterministic(t *testing.T) {
	host := zaHost(t)
	p := zaProblem(t, host, 8, 9)
	a := ZhuAmmar(p, ZhuAmmarConfig{})
	b := ZhuAmmar(p, ZhuAmmarConfig{})
	if !a.Assigned || !b.Assigned {
		t.Fatal("assignment failed")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("non-deterministic assignment at node %d", i)
		}
	}
}
