package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

var delayWindow = expr.MustCompile(
	"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")

// feasibleProblem builds a planted subgraph query on a small trace host.
func feasibleProblem(t testing.TB, seed int64, nq, eq int) *core.Problem {
	t.Helper()
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 40}, rand.New(rand.NewSource(seed)))
	rng := rand.New(rand.NewSource(seed + 1000))
	q, _, err := topo.Subgraph(host, nq, eq, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.3)
	p, err := core.NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func infeasibleProblem(t testing.TB, seed int64) *core.Problem {
	t.Helper()
	p := feasibleProblem(t, seed, 5, 6)
	rng := rand.New(rand.NewSource(seed))
	topo.MakeInfeasible(p.Query, 2, rng)
	return p
}

func TestAnnealerFindsFeasible(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 5; seed++ {
		p := feasibleProblem(t, seed, 5, 5)
		out := Annealer(p, AnnealerConfig{Seed: seed})
		if out.Found {
			found++
			if err := p.Verify(out.Solution); err != nil {
				t.Fatalf("seed %d: annealer returned invalid mapping: %v", seed, err)
			}
		}
	}
	// Annealing is stochastic; on these easy instances it should succeed
	// most of the time.
	if found < 3 {
		t.Errorf("annealer found %d/5 planted embeddings", found)
	}
}

func TestAnnealerNotDefinitiveOnFailure(t *testing.T) {
	p := infeasibleProblem(t, 2)
	out := Annealer(p, AnnealerConfig{Steps: 5_000, Restarts: 1, Seed: 1})
	if out.Found {
		t.Fatal("annealer found an embedding of an infeasible query")
	}
	if out.Definitive {
		t.Error("annealer must not claim definitive no-match")
	}
	if out.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestAnnealerTimeout(t *testing.T) {
	p := infeasibleProblem(t, 3)
	start := time.Now()
	Annealer(p, AnnealerConfig{Steps: 50_000_000, Restarts: 1, Timeout: 30 * time.Millisecond, Seed: 1})
	if time.Since(start) > 2*time.Second {
		t.Error("timeout not honored")
	}
}

func TestGeneticFindsFeasible(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 5; seed++ {
		p := feasibleProblem(t, seed, 5, 5)
		out := Genetic(p, GeneticConfig{Seed: seed})
		if out.Found {
			found++
			if err := p.Verify(out.Solution); err != nil {
				t.Fatalf("seed %d: genetic returned invalid mapping: %v", seed, err)
			}
		}
	}
	if found < 3 {
		t.Errorf("genetic found %d/5 planted embeddings", found)
	}
}

func TestGeneticInfeasibleDoesNotLie(t *testing.T) {
	p := infeasibleProblem(t, 4)
	out := Genetic(p, GeneticConfig{Generations: 30, Seed: 1})
	if out.Found {
		t.Fatal("genetic found an embedding of an infeasible query")
	}
	if out.Definitive {
		t.Error("genetic must not claim definitive no-match")
	}
}

func TestNaiveDFSMatchesECF(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := feasibleProblem(t, seed, 4, 4)
		naive := NaiveDFS(p, NaiveConfig{})
		if !naive.Exhausted {
			t.Fatalf("seed %d: naive did not finish", seed)
		}
		ecf := core.ECF(p, core.Options{})
		if len(naive.Solutions) != len(ecf.Solutions) {
			t.Errorf("seed %d: naive %d vs ECF %d solutions",
				seed, len(naive.Solutions), len(ecf.Solutions))
		}
		for _, m := range naive.Solutions {
			if err := p.Verify(m); err != nil {
				t.Fatalf("seed %d: naive invalid: %v", seed, err)
			}
		}
	}
}

func TestNaiveDFSVisitsFarMoreNodesThanECF(t *testing.T) {
	p := feasibleProblem(t, 11, 6, 7)
	naive := NaiveDFS(p, NaiveConfig{MaxSolutions: 1})
	ecf := core.ECF(p, core.Options{MaxSolutions: 1})
	if len(naive.Solutions) == 0 || len(ecf.Solutions) == 0 {
		t.Skip("instance unexpectedly infeasible")
	}
	if naive.Visited < ecf.Stats.NodesVisited {
		t.Logf("naive visited %d, ECF visited %d (filters should prune more)",
			naive.Visited, ecf.Stats.NodesVisited)
	}
}

func TestNaiveDFSCapAndTimeout(t *testing.T) {
	p := feasibleProblem(t, 5, 5, 5)
	capped := NaiveDFS(p, NaiveConfig{MaxSolutions: 2})
	if len(capped.Solutions) > 2 {
		t.Errorf("cap ignored: %d", len(capped.Solutions))
	}
	if len(capped.Solutions) == 2 && capped.Exhausted {
		t.Error("capped run claims exhaustion")
	}
	start := time.Now()
	NaiveDFS(feasibleProblem(t, 6, 12, 16), NaiveConfig{Timeout: 20 * time.Millisecond})
	if time.Since(start) > 2*time.Second {
		t.Error("timeout not honored")
	}
}

func TestSwordFindsEasyEmbedding(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 5; seed++ {
		p := feasibleProblem(t, seed, 4, 3)
		out := Sword(p, SwordConfig{KeepTop: 10})
		if out.Found {
			found++
			if err := p.Verify(out.Solution); err != nil {
				t.Fatalf("seed %d: sword invalid: %v", seed, err)
			}
		}
	}
	if found == 0 {
		t.Error("sword found nothing on easy instances")
	}
}

func TestSwordFalseNegative(t *testing.T) {
	// Construct an instance where phase-1 pruning provably discards the
	// only feasible combination: a star query whose leaves all need the
	// same scarce attribute, with KeepTop=1 anchoring every leaf onto the
	// single lowest-penalty host — which collides.
	host := graph.NewUndirected()
	hub := host.AddNode("hub", nil)
	for i := 0; i < 4; i++ {
		leaf := host.AddNode(fmt.Sprintf("leaf%d", i), nil)
		// Identical delay attributes: every leaf scores identically.
		host.MustAddEdge(hub, leaf, graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 20))
	}
	query := topo.Star(3)
	topo.SetDelayWindow(query, 5, 25)
	p, err := core.NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: feasible (ECF proves it).
	if res := core.ECF(p, core.Options{MaxSolutions: 1}); len(res.Solutions) == 0 {
		t.Fatal("instance should be feasible")
	}
	out := Sword(p, SwordConfig{KeepTop: 1})
	if out.Found {
		// KeepTop=1 may still get lucky if penalties order hub first;
		// completeness is only *not guaranteed*, so just require the flag
		// on the failing path.
		return
	}
	if !out.FalseNegativePossible {
		t.Error("failed Sword run must flag possible false negative")
	}
}

func TestSwordInfeasible(t *testing.T) {
	p := infeasibleProblem(t, 7)
	out := Sword(p, SwordConfig{})
	if out.Found {
		t.Error("sword found an embedding of an infeasible query")
	}
}

func TestCostZeroIffVerifies(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := feasibleProblem(t, seed, 4, 4)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			m := core.RandomMapping(p, rng)
			c := cost(p, m)
			err := p.Verify(m)
			if (c == 0) != (err == nil) {
				t.Fatalf("seed %d: cost %d but Verify says %v", seed, c, err)
			}
		}
	}
}

func TestEmptyQueryBaselines(t *testing.T) {
	host := topo.Ring(4)
	empty := graph.NewUndirected()
	p, err := core.NewProblem(empty, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := Annealer(p, AnnealerConfig{}); !out.Found {
		t.Error("annealer failed empty query")
	}
	if out := Genetic(p, GeneticConfig{}); !out.Found {
		t.Error("genetic failed empty query")
	}
	if out := Sword(p, SwordConfig{}); !out.Found {
		t.Error("sword failed empty query")
	}
	if res := NaiveDFS(p, NaiveConfig{}); len(res.Solutions) != 1 {
		t.Error("naive failed empty query")
	}
}
