package service

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// TestEpochAccounting pins the AcquireIndexed/Release bookkeeping: reader
// counts per version, retirement only when the last reader of a
// superseded version departs, and no-op release of unknown versions.
func TestEpochAccounting(t *testing.T) {
	g := applyHost(6, rand.New(rand.NewSource(1)))
	m := NewModel(g)

	_, _, v1 := m.AcquireIndexed()
	_, _, v1b := m.AcquireIndexed()
	if v1 != 1 || v1b != 1 {
		t.Fatalf("acquired versions = %d, %d, want 1", v1, v1b)
	}
	st := m.EpochStats()
	if st.LiveEpochs != 1 || st.LiveReaders != 2 || st.Retired != 0 {
		t.Fatalf("after two acquires: %+v", st)
	}

	// Releasing while the version is still current must not retire it.
	m.Release(v1)
	if st = m.EpochStats(); st.LiveReaders != 1 || st.Retired != 0 {
		t.Fatalf("after first release: %+v", st)
	}

	// Supersede version 1, then drop its last reader: one epoch retires.
	m.Mutate(func(g *graph.Graph) {})
	_, _, v2 := m.AcquireIndexed()
	if v2 != 2 {
		t.Fatalf("acquired version = %d, want 2", v2)
	}
	m.Release(v1)
	st = m.EpochStats()
	if st.LiveEpochs != 1 || st.LiveReaders != 1 || st.Retired != 1 {
		t.Fatalf("after superseded release: %+v", st)
	}

	// Unknown and double releases are no-ops.
	m.Release(99)
	m.Release(v1)
	if got := m.EpochStats(); got.Retired != 1 || got.LiveReaders != 1 {
		t.Fatalf("after bogus releases: %+v", got)
	}
	m.Release(v2)
	if got := m.EpochStats(); got.LiveEpochs != 0 || got.LiveReaders != 0 {
		t.Fatalf("after final release: %+v", got)
	}
}

// TestRetiredSnapshotsAreCollectable is the epoch-retirement soak: embed
// requests race a delta-churning writer (the monitoring pattern), and
// once the requests drain, every superseded (graph, index) snapshot must
// be unreachable — finalizers on the old graph headers all fire after GC,
// so delta churn cannot accumulate old model epochs behind the serve
// path. Run under -race in CI, which also exercises the epoch map's
// locking.
func TestRetiredSnapshotsAreCollectable(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 20}, rand.New(rand.NewSource(3)))
	q, _, err := topo.Subgraph(host, 4, 4, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.5)
	model := NewModel(host)
	model.EnableIndex(index.Config{})
	svc := New(model, Config{})
	host = nil // the test must not pin the initial snapshot itself

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := svc.Embed(Request{Query: q, MaxResults: 1, Timeout: time.Second}); err != nil {
					t.Errorf("embed: %v", err)
					return
				}
			}
		}()
	}

	// Churn: each round snapshots the current graph, marks it with a
	// finalizer, then supersedes it with an attribute-only delta (the
	// copy-on-write patch path monitors publish through).
	var finalized atomic.Int64
	const rounds = 40
	for i := 0; i < rounds; i++ {
		// Hold an epoch on the pre-delta version across the Apply, the way
		// an in-flight request would: releasing it afterwards retires the
		// epoch (deterministically — the concurrent embeds may or may not
		// straddle a version bump on any given run).
		snap, _, v := model.AcquireIndexed()
		runtime.SetFinalizer(snap, func(*graph.Graph) { finalized.Add(1) })
		e := snap.Edge(graph.EdgeID(i % snap.NumEdges()))
		delta := &graph.Delta{SetEdgeAttrs: []graph.EdgeAttrUpdate{{
			Source: snap.Node(e.From).Name,
			Target: snap.Node(e.To).Name,
			Set:    graph.Attrs{}.SetNum("avgDelay", float64(10+i)),
		}}}
		if _, err := model.Apply(delta); err != nil {
			t.Fatalf("apply round %d: %v", i, err)
		}
		model.Release(v)
		time.Sleep(time.Millisecond) // let the embed workers interleave
	}
	close(stop)
	wg.Wait()

	// All "rounds" finalized snapshots are now superseded and, with every
	// request drained, unreachable. Finalizers need a couple of GC cycles
	// (one to queue, one to run).
	deadline := time.Now().Add(10 * time.Second)
	for finalized.Load() < rounds && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := finalized.Load(); got < rounds {
		t.Errorf("only %d/%d superseded snapshots were collected — something pins retired model epochs", got, rounds)
	}

	st := model.EpochStats()
	if st.LiveReaders != 0 || st.LiveEpochs != 0 {
		t.Errorf("drained service still shows live readers: %+v", st)
	}
	if st.Retired < rounds {
		t.Errorf("retired %d epochs across %d churn rounds, want at least %d: %+v",
			st.Retired, rounds, rounds, st)
	}
	if st.Version != rounds+1 {
		t.Errorf("version = %d, want %d", st.Version, rounds+1)
	}
}
