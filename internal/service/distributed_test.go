package service

import (
	"math/rand"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// federationHost builds a host with two well-connected regions joined by
// a few slow links: intra-region delays ~10ms, inter-region ~200ms.
func federationHost() *graph.Graph {
	g := graph.NewUndirected()
	attrs := func(d float64) graph.Attrs {
		return graph.Attrs{}.
			SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.1)
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "west"))
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "east"))
	}
	// Intra-region cliques at ~10ms.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), attrs(10))
			g.MustAddEdge(graph.NodeID(5+a), graph.NodeID(5+b), attrs(10))
		}
	}
	// Sparse inter-region links at ~200ms.
	g.MustAddEdge(0, 5, attrs(200))
	g.MustAddEdge(1, 6, attrs(200))
	return g
}

func TestFederationPartitions(t *testing.T) {
	f, err := NewFederation(federationHost(), "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	shards := f.Shards()
	if len(shards) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if _, err := NewFederation(nil, "region", Config{}); err == nil {
		t.Error("nil host accepted")
	}
	// Nodes without the attribute form the "unassigned" shard.
	h := topo.Ring(3)
	f2, err := NewFederation(h, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Shards(); len(got) != 1 || got[0] != "unassigned" {
		t.Errorf("unattributed shards = %v", got)
	}
}

func TestRemainingBudget(t *testing.T) {
	for _, tc := range []struct {
		timeout, elapsed, want time.Duration
	}{
		{time.Second, 0, time.Second},                                 // nothing consumed: full budget
		{time.Second, 300 * time.Millisecond, 700 * time.Millisecond}, // shard round spent 300ms
		{time.Second, 2 * time.Second, time.Millisecond},              // overrun: token floor
		{400 * time.Millisecond, time.Millisecond, 399 * time.Millisecond},
	} {
		if got := remainingBudget(tc.timeout, tc.elapsed); got != tc.want {
			t.Errorf("remainingBudget(%v, %v) = %v, want %v", tc.timeout, tc.elapsed, got, tc.want)
		}
	}
}

// TestFederationFallbackGetsFullBudget is the regression test for the
// halved fallback budget: with no eligible shard nothing consumes any of
// the timeout, so the global service must get (essentially) all of it.
// The old code handed it a flat timeout/2, so a global search on an
// instance too large to exhaust stopped at half time; the run time of
// the whole Embed call is the observable.
func TestFederationFallbackGetsFullBudget(t *testing.T) {
	// K26 minus a perfect matching, each node its own singleton region:
	// every shard is smaller than the query, so the fallback starts with
	// the budget untouched. Embedding K14 into this host is infeasible
	// but the proof tree is ~5e13 nodes (see core's cancellation
	// fixture), so the global search is guaranteed to run out its full
	// timeout without accumulating solutions.
	const n = 26
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", string(rune('A'+i))))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i%2 == 0 && j == i+1 {
				continue // the removed matching edge
			}
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), nil)
		}
	}
	f, err := NewFederation(g, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	query := topo.Clique(14)
	for _, s := range f.shards {
		if s.svc.mustNodeCount() >= query.NumNodes() {
			t.Fatalf("shard %s unexpectedly eligible", s.name)
		}
	}
	const timeout = 400 * time.Millisecond
	start := time.Now()
	resp, where, err := f.Embed(Request{Query: query, Timeout: timeout})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if where != "global" {
		t.Fatalf("answered by %q, want global", where)
	}
	if resp.Status == core.StatusComplete {
		t.Fatal("instance exhausted early; it no longer exercises the budget")
	}
	// Generous lower bound: well above the timeout/2 the old code
	// granted, well below the timeout plus scheduling slack.
	if elapsed < 300*time.Millisecond {
		t.Errorf("fallback ran %v, want ≥300ms of the %v budget (old code stopped near %v)",
			elapsed, timeout, timeout/2)
	}
	if elapsed > 5*time.Second {
		t.Errorf("fallback ran %v, timeout not honored", elapsed)
	}
}

func TestFederationAnswersLocallyWhenPossible(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A fast triangle fits entirely inside one region.
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 20)
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if where == "global" {
		t.Errorf("regional query answered globally")
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no mapping")
	}
	// The translated mapping must verify against the *global* host.
	prog := expr.MustCompile("rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
	p, err := core.NewProblem(q, host, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(resp.Mappings[0]); err != nil {
		t.Fatalf("shard mapping invalid globally: %v", err)
	}
	// Named mapping uses global node names.
	for _, rName := range resp.Named[0] {
		if _, ok := host.NodeByName(rName); !ok {
			t.Errorf("unknown global node %q in named mapping", rName)
		}
	}
}

func TestFederationFallsBackForCrossRegionQueries(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A query needing one slow (~200ms) link can only span regions.
	q := topo.Line(2)
	topo.SetDelayWindow(q, 150, 250)
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if where != "global" {
		t.Errorf("cross-region query answered by shard %q", where)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("global fallback found nothing")
	}
}

func TestFederationOversizedQuerySkipsShards(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 7 nodes exceed every 5-node region.
	q := topo.Line(7)
	topo.SetDelayWindow(q, 1, 1000)
	_, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if where != "global" {
		t.Errorf("oversized query answered by shard %q", where)
	}
}

func TestFederationReservedGoesGlobal(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 20)
	_, where, err := f.Embed(Request{
		Query:           q,
		EdgeConstraint:  "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:      1,
		ExcludeReserved: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if where != "global" {
		t.Errorf("reservation-aware query answered by shard %q", where)
	}
	if _, _, err := f.Embed(Request{}); err != ErrNoQuery {
		t.Errorf("no query: %v", err)
	}
}

func TestFederationOnSyntheticTrace(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 80}, rand.New(rand.NewSource(1)))
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Shards()) < 4 {
		t.Fatalf("expected several regional shards, got %v", f.Shards())
	}
	// Intra-site delays live in the low range: a small fast star should
	// be answerable within some region.
	q := topo.Star(3)
	topo.SetDelayWindow(q, 1, 60)
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no mapping on trace")
	}
	t.Logf("answered by %s", where)
	prog := expr.MustCompile("rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
	p, err := core.NewProblem(q, host, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(resp.Mappings[0]); err != nil {
		t.Fatalf("federated mapping invalid: %v", err)
	}
}

func TestEmbedSymmetricDedupe(t *testing.T) {
	// Two disjoint feasible triangles: 2 node sets × 3! labelings = 12 raw
	// embeddings; symmetry dedupe keeps one per node set.
	host := graph.NewUndirected()
	host.AddNodes(6)
	attrs := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	host.MustAddEdge(0, 1, attrs())
	host.MustAddEdge(1, 2, attrs())
	host.MustAddEdge(0, 2, attrs())
	host.MustAddEdge(3, 4, attrs())
	host.MustAddEdge(4, 5, attrs())
	host.MustAddEdge(3, 5, attrs())
	svc := New(NewModel(host), Config{})
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 25)

	raw, err := svc.Embed(Request{Query: q, EdgeConstraint: delayWindowSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Mappings) != 12 {
		t.Fatalf("raw embeddings = %d, want 12", len(raw.Mappings))
	}
	deduped, err := svc.Embed(Request{Query: q, EdgeConstraint: delayWindowSrc, DedupeSymmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deduped.Mappings) != 2 {
		t.Fatalf("deduped embeddings = %d, want 2", len(deduped.Mappings))
	}
	if len(deduped.Named) != 2 {
		t.Fatalf("named not rebuilt after dedupe: %d", len(deduped.Named))
	}
}

func TestEmbedWarnsOnUnknownHostAttribute(t *testing.T) {
	host := federationHost()
	svc := New(NewModel(host), Config{})
	q := topo.Line(2)
	topo.SetDelayWindow(q, 1, 1000)
	resp, err := svc.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDeley <= vEdge.maxDelay", // typo: Deley
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Warnings) == 0 {
		t.Error("typo'd attribute produced no warning")
	}
	// A correct constraint warns about nothing.
	resp2, err := svc.Embed(Request{
		Query:          q,
		EdgeConstraint: delayWindowSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", resp2.Warnings)
	}
	// The injected reservation guard must not warn.
	resp3, err := svc.Embed(Request{
		Query:           q,
		EdgeConstraint:  delayWindowSrc,
		ExcludeReserved: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp3.Warnings) != 0 {
		t.Errorf("reservation guard warned: %v", resp3.Warnings)
	}
}
