package service

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// federationHost builds a host with two well-connected regions joined by
// a few slow links: intra-region delays ~10ms, inter-region ~200ms. Nodes
// n0..n4 are west, n5..n9 east; the cut edges are n0-n5 and n1-n6.
func federationHost() *graph.Graph {
	g := graph.NewUndirected()
	attrs := func(d float64) graph.Attrs {
		return graph.Attrs{}.
			SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.1)
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "west"))
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "east"))
	}
	// Intra-region cliques at ~10ms.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), attrs(10))
			g.MustAddEdge(graph.NodeID(5+a), graph.NodeID(5+b), attrs(10))
		}
	}
	// Sparse inter-region links at ~200ms.
	g.MustAddEdge(0, 5, attrs(200))
	g.MustAddEdge(1, 6, attrs(200))
	return g
}

const avgDelayWindowSrc = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

// namedToMapping reconstructs a core.Mapping against the global host from
// a coordinator answer's authoritative named mapping, so it can be
// verified with core.NewProblem(query, host, ...).Verify.
func namedToMapping(t *testing.T, q, host *graph.Graph, named NamedMapping) core.Mapping {
	t.Helper()
	m := make(core.Mapping, q.NumNodes())
	for i := 0; i < q.NumNodes(); i++ {
		qName := q.Node(graph.NodeID(i)).Name
		rName, ok := named[qName]
		if !ok {
			t.Fatalf("named mapping misses query node %q", qName)
		}
		rid, ok := host.NodeByName(rName)
		if !ok {
			t.Fatalf("named mapping targets unknown host node %q", rName)
		}
		m[i] = rid
	}
	return m
}

func TestFederationPartitions(t *testing.T) {
	f, err := NewFederation(federationHost(), "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	shards := f.Shards()
	if len(shards) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if _, err := NewFederation(nil, "region", Config{}); err == nil {
		t.Error("nil host accepted")
	}
	// Nodes without the attribute form the "unassigned" shard.
	h := topo.Ring(3)
	f2, err := NewFederation(h, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Shards(); len(got) != 1 || got[0] != "unassigned" {
		t.Errorf("unattributed shards = %v", got)
	}
	// The coordinator's routing table covers every node; the boundary is
	// exactly the inter-region links; the coordinator holds no graph.
	info := f.Cluster()
	if info.RoutedNodes != 10 {
		t.Errorf("routed nodes = %d, want 10", info.RoutedNodes)
	}
	if info.BoundaryEdges != 2 {
		t.Errorf("boundary edges = %d, want 2", info.BoundaryEdges)
	}
	if info.CoordinatorNodes != 0 {
		t.Errorf("coordinator models %d nodes, want 0 (no global copy)", info.CoordinatorNodes)
	}
	total := 0
	for _, s := range info.Shards {
		total += s.NodeCount
	}
	if total != 10 {
		t.Errorf("shard node counts sum to %d, want 10", total)
	}
}

func TestRemainingBudget(t *testing.T) {
	for _, tc := range []struct {
		timeout, elapsed, want time.Duration
	}{
		{time.Second, 0, time.Second},                                 // nothing consumed: full budget
		{time.Second, 300 * time.Millisecond, 700 * time.Millisecond}, // shard round spent 300ms
		{time.Second, 2 * time.Second, time.Millisecond},              // overrun: token floor
		{400 * time.Millisecond, time.Millisecond, 399 * time.Millisecond},
	} {
		if got := remainingBudget(tc.timeout, tc.elapsed); got != tc.want {
			t.Errorf("remainingBudget(%v, %v) = %v, want %v", tc.timeout, tc.elapsed, got, tc.want)
		}
	}
}

func TestFederationAnswersLocallyWhenPossible(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A fast triangle fits entirely inside one region.
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 20)
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: avgDelayWindowSrc,
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if where != "west" && where != "east" {
		t.Errorf("regional query answered by %q, want a single shard", where)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no mapping")
	}
	// The translated mapping must verify against the *global* host.
	prog := expr.MustCompile(avgDelayWindowSrc)
	p, err := core.NewProblem(q, host, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(resp.Mappings[0]); err != nil {
		t.Fatalf("shard mapping invalid globally: %v", err)
	}
	// Named mapping uses global node names.
	for _, rName := range resp.Named[0] {
		if _, ok := host.NodeByName(rName); !ok {
			t.Errorf("unknown global node %q in named mapping", rName)
		}
	}
}

func TestCoordinatorDecomposesCrossRegionQuery(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A query needing one slow (~200ms) link can only span regions: no
	// shard's partial view contains any qualifying edge, so the answer
	// must come from cut-edge decomposition.
	q := topo.Line(2)
	topo.SetDelayWindow(q, 150, 250)
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: avgDelayWindowSrc,
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(where, "cross:") {
		t.Fatalf("cross-region query answered by %q, want cross:...", where)
	}
	if len(resp.Named) == 0 {
		t.Fatal("decomposition found nothing")
	}
	// The stitched answer must verify edge-by-edge against the global
	// host — the coordinator never saw that graph.
	prog := expr.MustCompile(avgDelayWindowSrc)
	p, err := core.NewProblem(q, host, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(namedToMapping(t, q, host, resp.Named[0])); err != nil {
		t.Fatalf("stitched mapping invalid globally: %v", err)
	}
	if f.Cluster().CrossEmbeds != 1 {
		t.Errorf("crossEmbeds = %d, want 1", f.Cluster().CrossEmbeds)
	}
}

func TestCoordinatorRejectsInfeasibleSpanningQuery(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 7 nodes exceed every 5-node region, and the 1-50ms window rules out
	// the 200ms cut edges — the boundary prescreen must reject every
	// split without burning shard budget.
	q := topo.Line(7)
	topo.SetDelayWindow(q, 1, 50)
	start := time.Now()
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: avgDelayWindowSrc,
		MaxResults:     1,
		Timeout:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if where != "coordinator" {
		t.Errorf("infeasible spanning query answered by %q", where)
	}
	if resp.Status != core.StatusInconclusive {
		t.Errorf("status = %v, want inconclusive", resp.Status)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("prescreen took %v; boundary rejection should not burn the budget", elapsed)
	}
}

func TestCoordinatorSplitCapWarns(t *testing.T) {
	// 26 singleton regions: every shard is smaller than the query and the
	// unlabeled bipartition enumeration is capped well below 14 nodes, so
	// the coordinator must give up quickly — with a warning — instead of
	// enumerating 2^14 splits.
	const n = 26
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", string(rune('A'+i))))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), nil)
		}
	}
	f, err := NewFederation(g, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, where, err := f.Embed(Request{Query: topo.Clique(14), Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if where != "coordinator" {
		t.Fatalf("answered by %q, want coordinator", where)
	}
	if resp.Status != core.StatusInconclusive {
		t.Errorf("status = %v, want inconclusive", resp.Status)
	}
	capped := false
	for _, w := range resp.Warnings {
		if strings.Contains(w, "capped") {
			capped = true
		}
	}
	if !capped {
		t.Errorf("no split-cap warning in %v", resp.Warnings)
	}
}

// failShard implements Shard and fails every Embed — the injected fault
// for the skip-on-error regression test.
type failShard struct {
	name   string
	embeds atomic.Int64
}

func (s *failShard) Name() string      { return s.name }
func (s *failShard) Regions() []string { return []string{s.name} }
func (s *failShard) NodeCount() int    { return 100 }
func (s *failShard) Stats() (ShardStats, error) {
	return ShardStats{Name: s.name, Regions: []string{s.name}, NodeCount: 100, MaxDegree: 99}, nil
}
func (s *failShard) NodeNames() ([]string, uint64, error) { return nil, 1, nil }
func (s *failShard) Embed(req Request) (*Response, error) {
	s.embeds.Add(1)
	return nil, errors.New("injected shard failure")
}
func (s *failShard) ApplyDelta(d *graph.Delta) (uint64, error) {
	return 0, errors.New("injected shard failure")
}

// TestCoordinatorSkipsErroringShard is the regression test for the old
// Federation aborting on the first shard error: a failing shard must be
// skipped (and recorded) while the remaining shards still answer.
func TestCoordinatorSkipsErroringShard(t *testing.T) {
	bad := &failShard{name: "flaky"}
	host := topo.Clique(5)
	topo.SetDelayWindow(host, 5, 20)
	good := NewLocalShard("good", []string{"good"}, New(NewModel(host), Config{}))
	// The failing shard reports the larger view, so routing order tries it
	// first — exactly the case the old code aborted on.
	f, err := NewCoordinator([]Shard{bad, good}, CoordinatorConfig{RegionAttr: "region"})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Shards(); got[0] != "flaky" {
		t.Fatalf("routing order = %v, want flaky first", got)
	}
	q := topo.Clique(3)
	resp, where, err := f.Embed(Request{Query: q, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if where != "good" {
		t.Fatalf("answered by %q, want good", where)
	}
	if len(resp.Named) == 0 {
		t.Fatal("no mapping from the healthy shard")
	}
	var flaky ClusterShardInfo
	for _, s := range f.Cluster().Shards {
		if s.Name == "flaky" {
			flaky = s
		}
	}
	if flaky.Errors == 0 {
		t.Error("shard failure not recorded in the error counter")
	}
	if flaky.LastError == "" {
		t.Error("shard failure detail not recorded")
	}
	// Repeated failures mark the shard unhealthy and stop routing to it.
	for i := 0; i < 5; i++ {
		if _, _, err := f.Embed(Request{Query: q, Timeout: 5 * time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range f.Cluster().Shards {
		if s.Name == "flaky" && s.Healthy {
			t.Error("shard still healthy after repeated failures")
		}
	}
	calls := bad.embeds.Load()
	if _, _, err := f.Embed(Request{Query: q, Timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if bad.embeds.Load() != calls {
		t.Error("unhealthy shard still receives embed traffic")
	}
}

// countingShard wraps a Shard and counts Embed calls.
type countingShard struct {
	Shard
	embeds atomic.Int64
}

func (s *countingShard) Embed(req Request) (*Response, error) {
	s.embeds.Add(1)
	return s.Shard.Embed(req)
}

// TestCoordinatorDegreeScreenSkipsSparseShard pins the eligibility
// screen's degree stratum: a 40-node ring (max degree 2) can never host a
// 4-clique (min degree 3), so the coordinator must not spend any of the
// timeout budget asking it.
func TestCoordinatorDegreeScreenSkipsSparseShard(t *testing.T) {
	sparse := &countingShard{Shard: NewLocalShard("sparse", []string{"sparse"},
		New(NewModel(topo.Ring(40)), Config{}))}
	dense := NewLocalShard("dense", []string{"dense"},
		New(NewModel(topo.Clique(6)), Config{}))
	f, err := NewCoordinator([]Shard{sparse, dense}, CoordinatorConfig{RegionAttr: "region"})
	if err != nil {
		t.Fatal(err)
	}
	// The sparse shard is 40 nodes to dense's 6: it leads the routing
	// order, so only the degree screen keeps it out of the query path.
	if got := f.Shards(); got[0] != "sparse" {
		t.Fatalf("routing order = %v, want sparse first", got)
	}
	resp, where, err := f.Embed(Request{Query: topo.Clique(4), Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if where != "dense" {
		t.Fatalf("answered by %q, want dense", where)
	}
	if len(resp.Named) == 0 {
		t.Fatal("no mapping")
	}
	if n := sparse.embeds.Load(); n != 0 {
		t.Errorf("sparse shard got %d embed calls; the degree screen should skip it", n)
	}
	// The ring still serves queries it could host.
	if _, where, err := f.Embed(Request{Query: topo.Line(12), Timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	} else if where != "sparse" {
		t.Errorf("12-path answered by %q, want sparse", where)
	}
	if sparse.embeds.Load() == 0 {
		t.Error("sparse shard never consulted for a feasible query")
	}
}

func TestCoordinatorDeltaRouting(t *testing.T) {
	f, err := NewFederation(federationHost(), "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]uint64{}
	for _, s := range f.Cluster().Shards {
		baseline[s.Name] = s.ModelVersion
	}

	// An attribute touch on a west node must reach the west shard only.
	versions, err := f.ApplyDelta(&graph.Delta{
		SetNodeAttrs: []graph.NodeAttrUpdate{{Node: "n2", Set: graph.Attrs{}.SetNum("cpu", 4)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("delta touched shards %v, want west only", versions)
	}
	if v, ok := versions["west"]; !ok || v <= baseline["west"] {
		t.Fatalf("west version = %v (baseline %d)", versions, baseline["west"])
	}
	for _, s := range f.Cluster().Shards {
		if s.Name == "east" && s.ModelVersion != baseline["east"] {
			t.Errorf("east version moved to %d on a west-only delta", s.ModelVersion)
		}
	}

	// A labeled node addition routes by region; a labeled edge between two
	// east nodes stays in east.
	versions, err = f.ApplyDelta(&graph.Delta{
		AddNodes: []graph.NodeSpec{{Name: "n10", Attrs: graph.Attrs{}.SetStr("region", "east")}},
		AddEdges: []graph.EdgeSpec{{Source: "n10", Target: "n7", Attrs: graph.Attrs{}.SetNum("avgDelay", 10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := versions["east"]; !ok || len(versions) != 1 {
		t.Fatalf("east-labeled addition touched %v", versions)
	}
	if got := f.Cluster().RoutedNodes; got != 11 {
		t.Errorf("routed nodes = %d, want 11", got)
	}

	// A new inter-region edge lands in the coordinator's boundary set, not
	// in any shard.
	before := f.Cluster().BoundaryEdges
	versions, err = f.ApplyDelta(&graph.Delta{
		AddEdges: []graph.EdgeSpec{{Source: "n2", Target: "n7", Attrs: graph.Attrs{}.SetNum("avgDelay", 180)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 0 {
		t.Errorf("cut-edge addition propagated to shards %v", versions)
	}
	if got := f.Cluster().BoundaryEdges; got != before+1 {
		t.Errorf("boundary edges = %d, want %d", got, before+1)
	}
	// ... and removing it shrinks the boundary again.
	if _, err := f.ApplyDelta(&graph.Delta{
		RemoveEdges: []graph.EdgeRef{{Source: "n2", Target: "n7"}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := f.Cluster().BoundaryEdges; got != before {
		t.Errorf("boundary edges = %d after cut removal, want %d", got, before)
	}

	// Unknown names are the 409 class.
	if _, err := f.ApplyDelta(&graph.Delta{RemoveNodes: []string{"ghost"}}); !errors.Is(err, ErrStaleRouting) {
		t.Errorf("unrouted name: err = %v, want ErrStaleRouting", err)
	}
}

// TestCoordinatorEmbedDeltaRace interleaves Embed traffic with delta
// propagation under -race (mirroring model_apply_test.go): every answer
// must be consistent with either the pre- or the post-delta snapshot —
// never a torn mix.
func TestCoordinatorEmbedDeltaRace(t *testing.T) {
	host := federationHost()
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 20)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var applied atomic.Int64

	wg.Add(1)
	go func() { // delta writer: retunes one west edge in and out of range
		defer wg.Done()
		fast := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			delay := 500.0 // out of every query window
			if fast {
				delay = 10
			}
			_, err := f.ApplyDelta(&graph.Delta{
				SetEdgeAttrs: []graph.EdgeAttrUpdate{{
					Source: "n2", Target: "n3",
					Set: graph.Attrs{}.SetNum("avgDelay", delay),
				}},
			})
			if err != nil {
				t.Error(err)
				return
			}
			fast = !fast
			applied.Add(1)
		}
	}()

	prog := expr.MustCompile(avgDelayWindowSrc)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // embed readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, _, err := f.Embed(Request{
					Query:          q,
					EdgeConstraint: avgDelayWindowSrc,
					MaxResults:     1,
					Timeout:        time.Second,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(resp.Named) == 0 {
					continue
				}
				// Any answer must verify against SOME consistent host state:
				// the mapping either avoids the retuned edge or uses it at a
				// legal delay. Both host variants are checked; a torn answer
				// (constraint held mid-apply but on no snapshot) fails both.
				mapping := namedToMapping(t, q, host, resp.Named[0])
				okOnSome := false
				for _, delay := range []float64{10, 500, 200} {
					variant := host.Clone()
					u, _ := variant.NodeByName("n2")
					v, _ := variant.NodeByName("n3")
					if e, ok := variant.EdgeBetween(u, v); ok {
						variant.Edge(e).Attrs = variant.Edge(e).Attrs.SetNum("avgDelay", delay)
					}
					p, err := core.NewProblem(q, variant, prog, nil)
					if err != nil {
						t.Error(err)
						return
					}
					if p.Verify(mapping) == nil {
						okOnSome = true
						break
					}
				}
				if !okOnSome {
					t.Errorf("answer %v consistent with no delta snapshot", resp.Named[0])
					return
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if applied.Load() == 0 {
		t.Error("no deltas applied during the race window")
	}
}

func TestFederationOnSyntheticTrace(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 80}, rand.New(rand.NewSource(1)))
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Shards()) < 4 {
		t.Fatalf("expected several regional shards, got %v", f.Shards())
	}
	// Intra-site delays live in the low range: a small fast star should
	// be answerable within some region.
	q := topo.Star(3)
	topo.SetDelayWindow(q, 1, 60)
	resp, where, err := f.Embed(Request{
		Query:          q,
		EdgeConstraint: avgDelayWindowSrc,
		MaxResults:     1,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Named) == 0 {
		t.Fatal("no mapping on trace")
	}
	t.Logf("answered by %s", where)
	prog := expr.MustCompile(avgDelayWindowSrc)
	p, err := core.NewProblem(q, host, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(namedToMapping(t, q, host, resp.Named[0])); err != nil {
		t.Fatalf("federated mapping invalid: %v", err)
	}
}

func TestEmbedSymmetricDedupe(t *testing.T) {
	// Two disjoint feasible triangles: 2 node sets × 3! labelings = 12 raw
	// embeddings; symmetry dedupe keeps one per node set.
	host := graph.NewUndirected()
	host.AddNodes(6)
	attrs := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	host.MustAddEdge(0, 1, attrs())
	host.MustAddEdge(1, 2, attrs())
	host.MustAddEdge(0, 2, attrs())
	host.MustAddEdge(3, 4, attrs())
	host.MustAddEdge(4, 5, attrs())
	host.MustAddEdge(3, 5, attrs())
	svc := New(NewModel(host), Config{})
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 25)

	raw, err := svc.Embed(Request{Query: q, EdgeConstraint: delayWindowSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Mappings) != 12 {
		t.Fatalf("raw embeddings = %d, want 12", len(raw.Mappings))
	}
	deduped, err := svc.Embed(Request{Query: q, EdgeConstraint: delayWindowSrc, DedupeSymmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deduped.Mappings) != 2 {
		t.Fatalf("deduped embeddings = %d, want 2", len(deduped.Mappings))
	}
	if len(deduped.Named) != 2 {
		t.Fatalf("named not rebuilt after dedupe: %d", len(deduped.Named))
	}
}

func TestEmbedWarnsOnUnknownHostAttribute(t *testing.T) {
	host := federationHost()
	svc := New(NewModel(host), Config{})
	q := topo.Line(2)
	topo.SetDelayWindow(q, 1, 1000)
	resp, err := svc.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDeley <= vEdge.maxDelay", // typo: Deley
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Warnings) == 0 {
		t.Error("typo'd attribute produced no warning")
	}
	// A correct constraint warns about nothing.
	resp2, err := svc.Embed(Request{
		Query:          q,
		EdgeConstraint: delayWindowSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", resp2.Warnings)
	}
	// The injected reservation guard must not warn.
	resp3, err := svc.Embed(Request{
		Query:           q,
		EdgeConstraint:  delayWindowSrc,
		ExcludeReserved: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp3.Warnings) != 0 {
		t.Errorf("reservation guard warned: %v", resp3.Warnings)
	}
}
