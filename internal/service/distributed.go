package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"netembed/internal/graph"
)

// This file realizes the hierarchical deployment sketched in §VIII as a
// real distributed tier: per-region shard services answer queries against
// their partial views, and a Coordinator routes requests, propagates
// deltas to the owning shards, and negotiates cross-shard embeddings —
// without ever holding a copy of the full hosting graph. The only global
// state the coordinator owns is the routing table (node name → shard) and
// the boundary set: the inter-region edges that belong to no shard's
// induced subgraph.

// ShardStats is the shard-side summary the coordinator routes by.
type ShardStats struct {
	Name      string   `json:"name"`
	Regions   []string `json:"regions"`
	NodeCount int      `json:"nodeCount"`
	// MaxDegree is the shard host's largest node degree — the top rung of
	// the shard index's degree strata ladder — used by the coordinator's
	// eligibility screen.
	MaxDegree    int    `json:"maxDegree"`
	ModelVersion uint64 `json:"modelVersion"`
}

// Shard is one member of the distributed tier: a mapping service over a
// partial view of the hosting network. LocalShard wraps an in-process
// *Service; RemoteShard (internal/service/httpapi) speaks the
// /internal/shard/* peer protocol to another netembedd.
type Shard interface {
	// Name identifies the shard in routing tables and answers.
	Name() string
	// Regions lists the region labels this shard administers.
	Regions() []string
	// NodeCount is the last known size of the shard's partial view.
	NodeCount() int
	// Stats fetches the shard's current routing summary.
	Stats() (ShardStats, error)
	// NodeNames lists the shard's hosting-node names with the model
	// version they reflect — the coordinator's routing-table feed.
	NodeNames() ([]string, uint64, error)
	// Embed answers an embedding request against the shard's view.
	Embed(req Request) (*Response, error)
	// ApplyDelta applies the shard's slice of a model delta and returns
	// the shard's new model version.
	ApplyDelta(d *graph.Delta) (uint64, error)
}

// LocalShard adapts an in-process *Service to the Shard interface —
// single-process federation (NewFederation) and tests run entirely on
// these.
type LocalShard struct {
	name    string
	regions []string
	svc     *Service
	// back, when non-nil, translates the shard's local node IDs to the
	// parent graph's IDs in raw mappings (NewFederation sets it so
	// Response.Mappings stay meaningful against the original host).
	back []graph.NodeID
}

// NewLocalShard wraps a service as a shard of the distributed tier.
func NewLocalShard(name string, regions []string, svc *Service) *LocalShard {
	return &LocalShard{name: name, regions: regions, svc: svc}
}

// Name implements Shard.
func (s *LocalShard) Name() string { return s.name }

// Regions implements Shard.
func (s *LocalShard) Regions() []string { return s.regions }

// Service exposes the wrapped in-process service.
func (s *LocalShard) Service() *Service { return s.svc }

// NodeCount implements Shard.
func (s *LocalShard) NodeCount() int { return s.svc.mustNodeCount() }

// Stats implements Shard.
func (s *LocalShard) Stats() (ShardStats, error) {
	g, idx, version := s.svc.model.SnapshotIndexed()
	maxDeg := 0
	if idx != nil {
		maxDeg = idx.MaxDegree()
	} else {
		for i := 0; i < g.NumNodes(); i++ {
			if d := g.Degree(graph.NodeID(i)); d > maxDeg {
				maxDeg = d
			}
		}
	}
	return ShardStats{
		Name:         s.name,
		Regions:      s.regions,
		NodeCount:    g.NumNodes(),
		MaxDegree:    maxDeg,
		ModelVersion: version,
	}, nil
}

// NodeNames implements Shard.
func (s *LocalShard) NodeNames() ([]string, uint64, error) {
	g, version := s.svc.model.Snapshot()
	names := make([]string, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		names[i] = g.Node(graph.NodeID(i)).Name
	}
	return names, version, nil
}

// Embed implements Shard.
func (s *LocalShard) Embed(req Request) (*Response, error) {
	resp, err := s.svc.Embed(req)
	if err != nil {
		return nil, err
	}
	if s.back != nil {
		for _, m := range resp.Mappings {
			for q, local := range m {
				m[q] = s.back[local]
			}
		}
	}
	return resp, nil
}

// ApplyDelta implements Shard.
func (s *LocalShard) ApplyDelta(d *graph.Delta) (uint64, error) {
	return s.svc.model.Apply(d)
}

// ErrStaleRouting marks a delta that referenced names the coordinator's
// routing table (or a shard's model) no longer resolves — the 409 class.
// The coordinator reacts by refreshing its routing table from the shards.
var ErrStaleRouting = errors.New("service: stale routing table")

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// RegionAttr is the node attribute queries and deltas are routed by.
	RegionAttr string
	// DefaultTimeout applies when a Request carries none (default 30s).
	DefaultTimeout time.Duration
	// TopK is how many boundary placements each shard proposes per query
	// fragment during cross-shard negotiation (default 8).
	TopK int
	// MaxSplitNodes caps the query size for unlabeled cross-shard
	// bipartition enumeration (default 10).
	MaxSplitNodes int
	// Boundary seeds the coordinator's cut-edge set: the hosting edges
	// between shards, which no shard's partial view contains.
	Boundary []graph.CutEdge
	// Directed declares the hosting network's orientation (cut-edge
	// matching is order-sensitive only when true).
	Directed bool
	// UnhealthyAfter is how many consecutive failures mark a shard
	// unhealthy (default 3).
	UnhealthyAfter int
}

// Coordinator is the routing tier over a set of shards. It keeps no copy
// of the hosting graph: queries are routed by region labels (answer
// locally first), spanning queries are decomposed at cut edges and
// negotiated via candidate exchange (decompose.go), and deltas are split
// and propagated to the owning shards only.
type Coordinator struct {
	regionAttr     string
	defaultTimeout time.Duration
	topK           int
	maxSplitNodes  int
	directed       bool
	unhealthyAfter int

	// byName is immutable after construction (the shard set is fixed).
	byName map[string]*coordShard

	mu     sync.RWMutex
	shards []*coordShard // routing order: largest first
	// routes and boundary are copy-on-write: readers grab the reference
	// under mu and use it lock-free; writers install fresh values.
	routes       map[string]string
	boundary     []graph.CutEdge
	byRegion     map[string]*coordShard
	ring         *hashRing
	routeVersion uint64
	crossEmbeds  uint64
}

// coordShard is the coordinator's bookkeeping for one shard. All mutable
// fields are guarded by Coordinator.mu; the Shard itself is called
// outside the lock.
type coordShard struct {
	shard       Shard
	healthy     bool
	consecFails int
	errs        uint64
	lastErr     string
	embeds      uint64
	deltas      uint64
	nodeCount   int
	maxDegree   int
	regions     []string
	version     uint64
}

// NewCoordinator builds the routing tier over a fixed set of shards,
// interrogating each for its stats and node names to seed the routing
// table. A shard that cannot be reached at boot is marked unhealthy (and
// owns no routes) until a later RefreshRoutes succeeds.
func NewCoordinator(shards []Shard, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("service: coordinator needs at least one shard")
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 8
	}
	if cfg.MaxSplitNodes <= 0 {
		cfg.MaxSplitNodes = 10
	}
	if cfg.UnhealthyAfter <= 0 {
		cfg.UnhealthyAfter = 3
	}
	c := &Coordinator{
		regionAttr:     cfg.RegionAttr,
		defaultTimeout: cfg.DefaultTimeout,
		topK:           cfg.TopK,
		maxSplitNodes:  cfg.MaxSplitNodes,
		directed:       cfg.Directed,
		unhealthyAfter: cfg.UnhealthyAfter,
		byName:         make(map[string]*coordShard, len(shards)),
		boundary:       append([]graph.CutEdge(nil), cfg.Boundary...),
	}
	for _, s := range shards {
		if _, dup := c.byName[s.Name()]; dup {
			return nil, fmt.Errorf("service: duplicate shard name %q", s.Name())
		}
		cs := &coordShard{shard: s, healthy: true}
		c.byName[s.Name()] = cs
		c.shards = append(c.shards, cs)
	}
	c.mu.Lock()
	c.refreshLocked()
	c.mu.Unlock()
	return c, nil
}

// NewFederation partitions the hosting network by the values of the given
// node attribute (e.g. "region") into per-region LocalShards under a
// Coordinator. Nodes without the attribute are assigned by consistent
// hashing over the region shards; when no node carries the attribute at
// all, everything lands in a single shard named "unassigned". The
// coordinator keeps only the routing table and the cut edges between
// regions — no global model.
func NewFederation(host *graph.Graph, regionAttr string, cfg Config) (*Coordinator, error) {
	if host == nil {
		return nil, fmt.Errorf("service: federation needs a hosting network")
	}
	regions := map[string]bool{}
	for i := 0; i < host.NumNodes(); i++ {
		if label, ok := host.Node(graph.NodeID(i)).Attrs.Text(regionAttr); ok && label != "" {
			regions[label] = true
		}
	}
	var part *graph.PartitionResult
	var err error
	if len(regions) == 0 {
		part, err = graph.PartitionByAttr(host, regionAttr, "unassigned", nil)
	} else {
		names := make([]string, 0, len(regions))
		for name := range regions {
			names = append(names, name)
		}
		ring := newHashRing(names)
		part, err = graph.PartitionByAttr(host, regionAttr, "", ring.owner)
	}
	if err != nil {
		return nil, err
	}
	shards := make([]Shard, 0, len(part.Parts))
	labels := make([]string, 0, len(part.Parts))
	for label := range part.Parts {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		shards = append(shards, &LocalShard{
			name:    label,
			regions: []string{label},
			svc:     New(NewModel(part.Parts[label]), cfg),
			back:    part.Back[label],
		})
	}
	return NewCoordinator(shards, CoordinatorConfig{
		RegionAttr:     regionAttr,
		DefaultTimeout: cfg.DefaultTimeout,
		Boundary:       part.Cuts,
		Directed:       host.Directed(),
	})
}

// refreshLocked re-interrogates every shard for stats and node names and
// rebuilds the routing table, region map, hash ring and routing order.
// Callers hold c.mu.
func (c *Coordinator) refreshLocked() {
	routes := make(map[string]string)
	byRegion := make(map[string]*coordShard)
	names := make([]string, 0, len(c.shards))
	for _, cs := range c.shards {
		name := cs.shard.Name()
		names = append(names, name)
		st, err := cs.shard.Stats()
		if err != nil {
			c.failLocked(cs, err)
			continue
		}
		nodes, version, err := cs.shard.NodeNames()
		if err != nil {
			c.failLocked(cs, err)
			continue
		}
		cs.healthy = true
		cs.consecFails = 0
		cs.nodeCount = st.NodeCount
		cs.maxDegree = st.MaxDegree
		cs.regions = st.Regions
		if version > cs.version {
			cs.version = version
		}
		for _, region := range st.Regions {
			if _, taken := byRegion[region]; !taken {
				byRegion[region] = cs
			}
		}
		for _, node := range nodes {
			routes[node] = name
		}
	}
	c.routes = routes
	c.byRegion = byRegion
	c.ring = newHashRing(names)
	c.routeVersion++
	sort.SliceStable(c.shards, func(i, j int) bool {
		if c.shards[i].nodeCount != c.shards[j].nodeCount {
			return c.shards[i].nodeCount > c.shards[j].nodeCount
		}
		return c.shards[i].shard.Name() < c.shards[j].shard.Name()
	})
}

// RefreshRoutes re-resolves the routing table from the shards — the
// recovery step after a stale-name (409) delta rejection.
func (c *Coordinator) RefreshRoutes() {
	c.mu.Lock()
	c.refreshLocked()
	c.mu.Unlock()
}

// Shards lists the shard names in routing order (largest view first).
func (c *Coordinator) Shards() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.shards))
	for i, cs := range c.shards {
		out[i] = cs.shard.Name()
	}
	return out
}

// failLocked records one shard failure; callers hold c.mu.
func (c *Coordinator) failLocked(cs *coordShard, err error) {
	cs.errs++
	cs.consecFails++
	cs.lastErr = err.Error()
	if cs.consecFails >= c.unhealthyAfter {
		cs.healthy = false
	}
}

func (c *Coordinator) recordFailure(cs *coordShard, err error) {
	c.mu.Lock()
	c.failLocked(cs, err)
	c.mu.Unlock()
}

func (c *Coordinator) recordSuccess(cs *coordShard, version uint64) {
	c.mu.Lock()
	cs.consecFails = 0
	cs.healthy = true
	if version > cs.version {
		cs.version = version
	}
	c.mu.Unlock()
}

// minQueryDegree is the smallest node degree in the query — the weakest
// per-node adjacency demand an injective embedding places on the host.
func minQueryDegree(q *graph.Graph) int {
	if q.NumNodes() == 0 {
		return 0
	}
	min := q.Degree(0)
	for i := 1; i < q.NumNodes(); i++ {
		if d := q.Degree(graph.NodeID(i)); d < min {
			min = d
		}
	}
	return min
}

// eligibleLocked decides whether a shard can possibly answer the request
// locally. Callers hold c.mu (read).
func (c *Coordinator) eligibleLocked(cs *coordShard, req Request) bool {
	switch req.Algorithm {
	case AlgoConsolidate:
		// Many-to-one: a shard smaller than the query can still host it.
		return true
	case AlgoPathEmbed:
		// Query edges ride multi-hop paths, so the single-edge degree
		// screen below is unsound here.
		return cs.nodeCount >= req.Query.NumNodes()
	}
	if cs.nodeCount < req.Query.NumNodes() {
		return false
	}
	// Degree-strata screen: an injective embedding maps every query node
	// onto a host node of at least its degree, so a shard whose densest
	// node is sparser than the query's sparsest can never answer — don't
	// burn its slice of the timeout budget.
	return cs.maxDegree >= minQueryDegree(req.Query)
}

// Embed routes a request through the distributed tier: each eligible
// shard gets a slice of the time budget against its regional view (answer
// locally first); a shard error is recorded against its health and the
// remaining shards still run; if no region answers, the query is
// decomposed at cut edges and negotiated across shards with whatever
// budget remains. The second return names where the answer came from: a
// shard name, or "cross:a+b" for a stitched answer.
func (c *Coordinator) Embed(req Request) (*Response, string, error) {
	if req.Query == nil {
		return nil, "", ErrNoQuery
	}
	// Validate the request shape once up front: a malformed constraint or
	// unknown algorithm fails identically on every shard and must not
	// count against shard health.
	edgeProg, _, err := compilePrograms(req.EdgeConstraint, req.NodeConstraint, req.ExcludeReserved)
	if err != nil {
		return nil, "", err
	}
	switch req.Algorithm {
	case AlgoECF, AlgoRWB, AlgoLNS, AlgoParallelECF, AlgoConsolidate, AlgoPathEmbed, "":
	default:
		return nil, "", fmt.Errorf("%w %q", ErrUnknownAlgorithm, req.Algorithm)
	}

	start := time.Now()
	timeout := req.Timeout
	if timeout == 0 {
		timeout = c.defaultTimeout
	}

	c.mu.RLock()
	eligible := make([]*coordShard, 0, len(c.shards))
	for _, cs := range c.shards {
		if cs.healthy && c.eligibleLocked(cs, req) {
			eligible = append(eligible, cs)
		}
	}
	c.mu.RUnlock()

	if len(eligible) > 0 {
		shardBudget := timeout / 2 / time.Duration(len(eligible))
		if shardBudget <= 0 {
			shardBudget = time.Millisecond
		}
		for _, cs := range eligible {
			sreq := req
			sreq.Timeout = shardBudget
			resp, err := cs.shard.Embed(sreq)
			if err != nil {
				// A failing shard is recorded and skipped; the remaining
				// shards and the cross-shard fallback still run.
				c.recordFailure(cs, err)
				continue
			}
			c.recordSuccess(cs, resp.ModelVersion)
			if len(resp.Named) > 0 {
				c.mu.Lock()
				cs.embeds++
				c.mu.Unlock()
				return resp, cs.shard.Name(), nil
			}
		}
	}

	dreq := req
	dreq.Timeout = remainingBudget(timeout, time.Since(start))
	return c.embedAcrossShards(dreq, edgeProg)
}

// remainingBudget is the cross-shard round's slice of the request
// timeout: the full budget minus what the local round actually spent,
// floored at a millisecond so an overrun still gets a token attempt.
func remainingBudget(timeout, elapsed time.Duration) time.Duration {
	remaining := timeout - elapsed
	if remaining < time.Millisecond {
		remaining = time.Millisecond
	}
	return remaining
}

// ApplyDelta splits a model delta by ownership and propagates each piece
// to its owning shard only; cut edges (endpoints in different shards) are
// applied to the coordinator's own boundary set, which no shard sees. The
// result maps each shard that received a piece to the model version it
// reported (the version stamp /cluster converges on). Names the routing
// table cannot resolve make the whole delta fail with ErrStaleRouting
// after one refresh-and-retry; cross-shard deltas are not atomic — a
// shard failure mid-propagation leaves the other shards applied and is
// reported in the error.
func (c *Coordinator) ApplyDelta(d *graph.Delta) (map[string]uint64, error) {
	if d.Empty() {
		return map[string]uint64{}, nil
	}
	versions, err := c.applyDeltaOnce(d, true)
	if errors.Is(err, ErrStaleRouting) && len(versions) == 0 {
		// Nothing was propagated: safe to re-resolve the routing table and
		// retry the whole delta once.
		c.RefreshRoutes()
		versions, err = c.applyDeltaOnce(d, false)
	}
	return versions, err
}

// splitState is one delta's decomposition: per-shard sub-deltas plus the
// boundary and routing-table mutations to commit coordinator-side.
type splitState struct {
	perShard map[string]*graph.Delta
	order    []string // deterministic propagation order

	dropBoundary  map[int]bool           // boundary indices removed
	patchBoundary map[int]*graph.CutEdge // boundary indices replaced
	addBoundary   []graph.CutEdge
	routeDel      []string
	routeAdd      map[string]string
}

func (sp *splitState) shardDelta(name string) *graph.Delta {
	d, ok := sp.perShard[name]
	if !ok {
		d = &graph.Delta{}
		sp.perShard[name] = d
		sp.order = append(sp.order, name)
	}
	return d
}

// applyDeltaOnce performs one split-and-propagate round. retryable marks
// whether a split-time stale error may still be retried by the caller.
func (c *Coordinator) applyDeltaOnce(d *graph.Delta, retryable bool) (map[string]uint64, error) {
	c.mu.RLock()
	routes := c.routes
	boundary := c.boundary
	byRegion := c.byRegion
	ring := c.ring
	c.mu.RUnlock()

	sp, err := c.splitDelta(d, routes, boundary, byRegion, ring)
	if err != nil {
		return nil, err
	}

	versions := make(map[string]uint64, len(sp.order))
	var failures []string
	stale := false
	for _, name := range sp.order {
		cs := c.byName[name]
		version, err := cs.shard.ApplyDelta(sp.perShard[name])
		if err != nil {
			c.recordFailure(cs, err)
			if isStaleErr(err) {
				stale = true
			}
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		c.mu.Lock()
		cs.consecFails = 0
		cs.healthy = true
		cs.deltas++
		if version > cs.version {
			cs.version = version
		}
		c.mu.Unlock()
		versions[name] = version
	}

	c.commitSplit(sp)

	if len(failures) > 0 {
		err := fmt.Errorf("service: delta propagation failed on %s", strings.Join(failures, "; "))
		if stale {
			// Shard-side stale names: the routing table has drifted.
			// Re-resolve so the next delta routes correctly; the failed
			// pieces were not applied and the caller sees which.
			if retryable && len(versions) == 0 {
				return versions, fmt.Errorf("%w: %v", ErrStaleRouting, err)
			}
			c.RefreshRoutes()
			return versions, fmt.Errorf("%w: %v", ErrStaleRouting, err)
		}
		return versions, err
	}
	return versions, nil
}

// splitDelta decomposes d by ownership against a routing-table snapshot.
func (c *Coordinator) splitDelta(d *graph.Delta, routes map[string]string, boundary []graph.CutEdge, byRegion map[string]*coordShard, ring *hashRing) (*splitState, error) {
	sp := &splitState{
		perShard:      map[string]*graph.Delta{},
		dropBoundary:  map[int]bool{},
		patchBoundary: map[int]*graph.CutEdge{},
		routeAdd:      map[string]string{},
	}
	bIdx := boundaryIndex(boundary, c.directed)
	pending := map[string]string{} // names added by this delta → owner
	owner := func(name string) (string, bool) {
		if s, ok := pending[name]; ok {
			return s, true
		}
		s, ok := routes[name]
		return s, ok
	}

	for _, ref := range d.RemoveEdges {
		su, okU := owner(ref.Source)
		sv, okV := owner(ref.Target)
		if !okU || !okV {
			return nil, fmt.Errorf("%w: remove-edge %q-%q references unrouted node", ErrStaleRouting, ref.Source, ref.Target)
		}
		if su == sv {
			sd := sp.shardDelta(su)
			sd.RemoveEdges = append(sd.RemoveEdges, ref)
			continue
		}
		i, ok := bIdx.lookup(ref.Source, ref.Target)
		if !ok {
			return nil, fmt.Errorf("%w: remove-edge %q-%q crosses shards but is not a known cut edge", ErrStaleRouting, ref.Source, ref.Target)
		}
		sp.dropBoundary[i] = true
	}
	for _, name := range d.RemoveNodes {
		s, ok := owner(name)
		if !ok {
			return nil, fmt.Errorf("%w: remove-node %q is unrouted", ErrStaleRouting, name)
		}
		sd := sp.shardDelta(s)
		sd.RemoveNodes = append(sd.RemoveNodes, name)
		sp.routeDel = append(sp.routeDel, name)
		// Cut edges incident to the node leave with it.
		for i, cut := range boundary {
			if cut.Source == name || cut.Target == name {
				sp.dropBoundary[i] = true
			}
		}
	}
	for _, spec := range d.AddNodes {
		target := ""
		if region, ok := spec.Attrs.Text(c.regionAttr); ok && region != "" {
			if cs, known := byRegion[region]; known {
				target = cs.shard.Name()
			}
		}
		if target == "" {
			// Unlabeled (or unknown-region) nodes are placed by consistent
			// hashing so additions don't reshuffle existing routes.
			target = ring.owner(spec.Name)
		}
		sd := sp.shardDelta(target)
		sd.AddNodes = append(sd.AddNodes, spec)
		pending[spec.Name] = target
		sp.routeAdd[spec.Name] = target
	}
	for _, spec := range d.AddEdges {
		su, okU := owner(spec.Source)
		sv, okV := owner(spec.Target)
		if !okU || !okV {
			return nil, fmt.Errorf("%w: add-edge %q-%q references unrouted node", ErrStaleRouting, spec.Source, spec.Target)
		}
		if su == sv {
			sd := sp.shardDelta(su)
			sd.AddEdges = append(sd.AddEdges, spec)
			continue
		}
		// A new inter-shard link: coordinator-owned. Endpoint attribute
		// bags are only known for nodes added in this same delta; for
		// pre-existing endpoints they stay empty (constraints reading
		// rSource/rTarget on such cut edges evaluate unknown → reject).
		cut := graph.CutEdge{
			Source: spec.Source, Target: spec.Target,
			SourcePart: su, TargetPart: sv,
			Attrs: spec.Attrs.Clone(),
		}
		for _, added := range d.AddNodes {
			if added.Name == spec.Source {
				cut.SourceAttrs = added.Attrs.Clone()
			}
			if added.Name == spec.Target {
				cut.TargetAttrs = added.Attrs.Clone()
			}
		}
		sp.addBoundary = append(sp.addBoundary, cut)
	}
	for _, up := range d.SetNodeAttrs {
		s, ok := owner(up.Node)
		if !ok {
			return nil, fmt.Errorf("%w: set-node-attrs %q is unrouted", ErrStaleRouting, up.Node)
		}
		sd := sp.shardDelta(s)
		sd.SetNodeAttrs = append(sd.SetNodeAttrs, up)
		// Keep the boundary's endpoint-attribute snapshots current.
		for i, cut := range boundary {
			if cut.Source != up.Node && cut.Target != up.Node {
				continue
			}
			patched := sp.patchedCut(i, cut)
			if patched.Source == up.Node {
				patched.SourceAttrs = patchBag(patched.SourceAttrs, up.Set, up.Unset)
			}
			if patched.Target == up.Node {
				patched.TargetAttrs = patchBag(patched.TargetAttrs, up.Set, up.Unset)
			}
		}
	}
	for _, up := range d.SetEdgeAttrs {
		su, okU := owner(up.Source)
		sv, okV := owner(up.Target)
		if !okU || !okV {
			return nil, fmt.Errorf("%w: set-edge-attrs %q-%q references unrouted node", ErrStaleRouting, up.Source, up.Target)
		}
		if su == sv {
			sd := sp.shardDelta(su)
			sd.SetEdgeAttrs = append(sd.SetEdgeAttrs, up)
			continue
		}
		i, ok := bIdx.lookup(up.Source, up.Target)
		if !ok {
			return nil, fmt.Errorf("%w: set-edge-attrs %q-%q crosses shards but is not a known cut edge", ErrStaleRouting, up.Source, up.Target)
		}
		patched := sp.patchedCut(i, boundary[i])
		patched.Attrs = patchBag(patched.Attrs, up.Set, up.Unset)
	}
	return sp, nil
}

// patchedCut returns the mutable copy of boundary[i] staged in the split,
// creating it on first touch.
func (sp *splitState) patchedCut(i int, cut graph.CutEdge) *graph.CutEdge {
	if p, ok := sp.patchBoundary[i]; ok {
		return p
	}
	cp := cut
	sp.patchBoundary[i] = &cp
	return &cp
}

// patchBag applies set/unset edits to a cloned attribute bag.
func patchBag(old, set graph.Attrs, unset []string) graph.Attrs {
	out := old.Clone()
	for name, v := range set {
		out = out.Set(name, v)
	}
	for _, name := range unset {
		delete(out, name)
	}
	return out
}

// commitSplit installs the staged boundary and routing-table mutations
// (copy-on-write: readers keep using the snapshots they grabbed).
func (c *Coordinator) commitSplit(sp *splitState) {
	if len(sp.dropBoundary) == 0 && len(sp.patchBoundary) == 0 && len(sp.addBoundary) == 0 &&
		len(sp.routeDel) == 0 && len(sp.routeAdd) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(sp.dropBoundary) > 0 || len(sp.patchBoundary) > 0 || len(sp.addBoundary) > 0 {
		next := make([]graph.CutEdge, 0, len(c.boundary)+len(sp.addBoundary))
		for i, cut := range c.boundary {
			if sp.dropBoundary[i] {
				continue
			}
			if p, ok := sp.patchBoundary[i]; ok {
				next = append(next, *p)
				continue
			}
			next = append(next, cut)
		}
		next = append(next, sp.addBoundary...)
		c.boundary = next
	}
	if len(sp.routeDel) > 0 || len(sp.routeAdd) > 0 {
		next := make(map[string]string, len(c.routes)+len(sp.routeAdd))
		for name, s := range c.routes {
			next[name] = s
		}
		for _, name := range sp.routeDel {
			delete(next, name)
		}
		for name, s := range sp.routeAdd {
			next[name] = s
		}
		c.routes = next
	}
	c.routeVersion++
}

// isStaleErr classifies a shard-side apply failure as the 409 class:
// either the wrapped sentinel (RemoteShard) or a name-resolution failure
// from graph.ApplyDelta (LocalShard).
func isStaleErr(err error) bool {
	if errors.Is(err, ErrStaleRouting) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "unknown") || strings.Contains(msg, "missing")
}

// ClusterShardInfo is one shard's row in the operator-facing cluster view.
type ClusterShardInfo struct {
	Name         string   `json:"name"`
	Regions      []string `json:"regions"`
	NodeCount    int      `json:"nodeCount"`
	MaxDegree    int      `json:"maxDegree"`
	ModelVersion uint64   `json:"modelVersion"`
	Healthy      bool     `json:"healthy"`
	Errors       uint64   `json:"errors"`
	LastError    string   `json:"lastError,omitempty"`
	Embeds       uint64   `json:"embeds"`
	Deltas       uint64   `json:"deltas"`
}

// ClusterInfo is the operator-facing state of the distributed tier
// (GET /cluster).
type ClusterInfo struct {
	RegionAttr    string             `json:"regionAttr"`
	Shards        []ClusterShardInfo `json:"shards"`
	RoutedNodes   int                `json:"routedNodes"`
	BoundaryEdges int                `json:"boundaryEdges"`
	RouteVersion  uint64             `json:"routeVersion"`
	CrossEmbeds   uint64             `json:"crossShardEmbeds"`
	// CoordinatorNodes is the number of hosting nodes the coordinator
	// itself models: always 0 — the coordinator holds no graph copy.
	// Kept explicit so operators and the e2e smoke can assert it.
	CoordinatorNodes int `json:"coordinatorNodes"`
}

// Cluster reports shard health, versions and the routing table summary.
func (c *Coordinator) Cluster() ClusterInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	info := ClusterInfo{
		RegionAttr:    c.regionAttr,
		RoutedNodes:   len(c.routes),
		BoundaryEdges: len(c.boundary),
		RouteVersion:  c.routeVersion,
		CrossEmbeds:   c.crossEmbeds,
	}
	for _, cs := range c.shards {
		info.Shards = append(info.Shards, ClusterShardInfo{
			Name:         cs.shard.Name(),
			Regions:      append([]string(nil), cs.regions...),
			NodeCount:    cs.nodeCount,
			MaxDegree:    cs.maxDegree,
			ModelVersion: cs.version,
			Healthy:      cs.healthy,
			Errors:       cs.errs,
			LastError:    cs.lastErr,
			Embeds:       cs.embeds,
			Deltas:       cs.deltas,
		})
	}
	return info
}

// boundaryIndexMap resolves cut edges by endpoint names.
type boundaryIndexMap struct {
	directed bool
	idx      map[string]int
}

func boundaryKey(source, target string) string { return source + "\x00" + target }

func boundaryIndex(boundary []graph.CutEdge, directed bool) *boundaryIndexMap {
	m := &boundaryIndexMap{directed: directed, idx: make(map[string]int, len(boundary))}
	for i, cut := range boundary {
		m.idx[boundaryKey(cut.Source, cut.Target)] = i
	}
	return m
}

func (m *boundaryIndexMap) lookup(source, target string) (int, bool) {
	if i, ok := m.idx[boundaryKey(source, target)]; ok {
		return i, true
	}
	if !m.directed {
		if i, ok := m.idx[boundaryKey(target, source)]; ok {
			return i, true
		}
	}
	return 0, false
}

// hashRing is a consistent-hash ring over shard names: unlabeled nodes
// are owned by the first virtual point clockwise of their name's hash, so
// node additions don't reshuffle existing assignments while the shard set
// is stable.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard string
}

const ringReplicas = 64

func newHashRing(shards []string) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(shards)*ringReplicas)}
	for _, shard := range shards {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash:  fnvHash(fmt.Sprintf("%s#%d", shard, i)),
				shard: shard,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func (r *hashRing) owner(name string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnvHash(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mustNodeCount returns the node count of the service's current model.
func (s *Service) mustNodeCount() int {
	g, _ := s.model.Snapshot()
	return g.NumNodes()
}
