package service

import (
	"fmt"
	"sort"
	"time"

	"netembed/internal/graph"
)

// Federation realizes the hierarchical deployment sketched in §VIII:
// for truly large hosting networks no single authority holds the whole
// model, so per-region shard services answer queries against their
// partial views first, and only queries that no region can satisfy fall
// through to the global service. A mapping found inside one region is
// trivially valid globally, because a region's model is the subgraph the
// region's authority actually administers.
type Federation struct {
	shards []*shard
	global *Service
}

// shard is one regional mapping service plus the translation of its local
// node IDs back to the global model.
type shard struct {
	name string
	svc  *Service
	back []graph.NodeID // local -> global node IDs
}

// NewFederation partitions the hosting network by the values of the given
// node attribute (e.g. "region") into per-region shard services, plus a
// global fallback service over the full model. Nodes without the
// attribute land in a shard named "unassigned".
func NewFederation(host *graph.Graph, regionAttr string, cfg Config) (*Federation, error) {
	if host == nil {
		return nil, fmt.Errorf("service: federation needs a hosting network")
	}
	groups := map[string][]graph.NodeID{}
	for i := 0; i < host.NumNodes(); i++ {
		id := graph.NodeID(i)
		region, ok := host.Node(id).Attrs.Text(regionAttr)
		if !ok {
			region = "unassigned"
		}
		groups[region] = append(groups[region], id)
	}
	f := &Federation{global: New(NewModel(host), cfg)}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	// Largest regions first: they satisfy the most queries locally.
	sort.Slice(names, func(i, j int) bool {
		if len(groups[names[i]]) != len(groups[names[j]]) {
			return len(groups[names[i]]) > len(groups[names[j]])
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		sub, back, err := host.InducedSubgraph(groups[name])
		if err != nil {
			return nil, err
		}
		f.shards = append(f.shards, &shard{
			name: name,
			svc:  New(NewModel(sub), cfg),
			back: back,
		})
	}
	return f, nil
}

// Shards lists the shard names in routing order.
func (f *Federation) Shards() []string {
	out := make([]string, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.name
	}
	return out
}

// Global exposes the fallback service (for reservations etc.).
func (f *Federation) Global() *Service { return f.global }

// Embed routes a request: each shard large enough for the query gets a
// slice of the time budget against its regional view; the first shard
// returning a mapping wins, and its node IDs are translated back to the
// global model. If no region can host the query, the global service
// answers with the full view. The second return names where the answer
// came from.
//
// Reservation-aware requests (ExcludeReserved) go straight to the global
// service, whose ledger is authoritative.
func (f *Federation) Embed(req Request) (*Response, string, error) {
	if req.Query == nil {
		return nil, "", ErrNoQuery
	}
	if req.ExcludeReserved {
		resp, err := f.global.Embed(req)
		return resp, "global", err
	}
	// Budget: half the timeout split across eligible shards, and the
	// global fallback gets whatever actually remains — not a flat
	// timeout/2, which silently halved the budget when no shard was
	// eligible (or when the shards answered quickly) even though nothing
	// had consumed the first half.
	start := time.Now()
	timeout := req.Timeout
	if timeout == 0 {
		timeout = f.global.defaultTimeout
	}
	eligible := 0
	for _, s := range f.shards {
		if s.svc.mustNodeCount() >= req.Query.NumNodes() {
			eligible++
		}
	}
	if eligible > 0 {
		shardBudget := timeout / 2 / time.Duration(eligible)
		if shardBudget <= 0 {
			shardBudget = time.Millisecond
		}
		for _, s := range f.shards {
			if s.svc.mustNodeCount() < req.Query.NumNodes() {
				continue
			}
			sreq := req
			sreq.Timeout = shardBudget
			resp, err := s.svc.Embed(sreq)
			if err != nil {
				return nil, "", fmt.Errorf("service: shard %s: %w", s.name, err)
			}
			if len(resp.Mappings) > 0 {
				s.translate(resp)
				return resp, s.name, nil
			}
		}
	}
	greq := req
	greq.Timeout = remainingBudget(timeout, time.Since(start))
	resp, err := f.global.Embed(greq)
	return resp, "global", err
}

// remainingBudget is the fallback's slice of the request timeout: the
// full budget minus what the shard round actually spent, floored at a
// millisecond so an overrun still gets a token attempt rather than the
// service default.
func remainingBudget(timeout, elapsed time.Duration) time.Duration {
	remaining := timeout - elapsed
	if remaining < time.Millisecond {
		remaining = time.Millisecond
	}
	return remaining
}

// translate rewrites a shard response's mappings into global node IDs.
// Named mappings already use node names, which are global.
func (s *shard) translate(resp *Response) {
	for _, m := range resp.Mappings {
		for q, local := range m {
			m[q] = s.back[local]
		}
	}
}

// mustNodeCount returns the node count of the service's current model.
func (s *Service) mustNodeCount() int {
	g, _ := s.model.Snapshot()
	return g.NumNodes()
}
