// Package service implements the NETEMBED service model of Fig. 1: a
// network model kept current by a monitoring feed, the mapping service
// that applications query for feasible embeddings, an optional reservation
// system that tracks allocated resources, a windowed scheduler (the
// §VIII scheduling extension), and min-cost selection among feasible
// mappings (the §VIII optimization extension).
package service

import (
	"math/rand"
	"sync"
	"time"

	"netembed/internal/graph"
)

// Model holds the authoritative description of the hosting network. It is
// a copy-on-write snapshot holder: readers take immutable *graph.Graph
// snapshots and never block writers; updates swap in a whole new graph and
// bump the version. This is what lets embedding queries run concurrently
// with monitoring updates without locks in the search path.
type Model struct {
	mu      sync.RWMutex
	g       *graph.Graph
	version uint64
}

// NewModel wraps an initial hosting network. The graph must not be
// mutated by the caller afterwards.
func NewModel(g *graph.Graph) *Model {
	return &Model{g: g, version: 1}
}

// Snapshot returns the current hosting network and its version. The graph
// is shared and must be treated as immutable.
func (m *Model) Snapshot() (*graph.Graph, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.g, m.version
}

// Version returns the current model version.
func (m *Model) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Update replaces the hosting network and returns the new version.
func (m *Model) Update(g *graph.Graph) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.g = g
	m.version++
	return m.version
}

// UpdateIf replaces the hosting network only when the model still holds
// the given version, returning the new version and whether the swap
// happened. It is the optimistic-concurrency primitive for writers that
// prepare an expensive successor graph outside the model lock (for
// instance coordinate-based completion) and must not clobber concurrent
// monitor updates.
func (m *Model) UpdateIf(g *graph.Graph, version uint64) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.version != version {
		return m.version, false
	}
	m.g = g
	m.version++
	return m.version, true
}

// Mutate clones the current snapshot, applies fn to the clone, swaps it in
// and returns the new version. This is the update path used by monitors.
func (m *Model) Mutate(fn func(*graph.Graph)) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.g.Clone()
	fn(next)
	m.g = next
	m.version++
	return m.version
}

// MonitorConfig shapes the simulated measurement feed.
type MonitorConfig struct {
	// JitterPct is the maximum relative delay drift per step (default 5%).
	JitterPct float64
	// EdgeFraction is the share of edges refreshed per step (default 10%).
	EdgeFraction float64
	// Interval is the period of Run (default 1s).
	Interval time.Duration
	// Seed drives the perturbation.
	Seed int64
}

func (c *MonitorConfig) applyDefaults() {
	if c.JitterPct == 0 {
		c.JitterPct = 0.05
	}
	if c.EdgeFraction == 0 {
		c.EdgeFraction = 0.10
	}
	if c.Interval == 0 {
		c.Interval = time.Second
	}
}

// Monitor simulates the monitoring infrastructure of Fig. 1 (a CoMon/
// all-pairs-ping stand-in): each step it re-measures a fraction of links,
// drifting their delay attributes, and publishes a new model version.
type Monitor struct {
	model *Model
	cfg   MonitorConfig
	rng   *rand.Rand
	steps int
}

// NewMonitor builds a monitor feeding the given model.
func NewMonitor(model *Model, cfg MonitorConfig) *Monitor {
	cfg.applyDefaults()
	return &Monitor{model: model, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Steps returns how many measurement rounds have been published.
func (mo *Monitor) Steps() int { return mo.steps }

// Step publishes one measurement round and returns the new model version.
func (mo *Monitor) Step() uint64 {
	mo.steps++
	// Pre-draw the randomness so the mutation closure stays deterministic
	// regardless of how Mutate schedules it.
	type drift struct {
		edge   graph.EdgeID
		factor float64
	}
	g, _ := mo.model.Snapshot()
	n := g.NumEdges()
	count := int(float64(n) * mo.cfg.EdgeFraction)
	if count < 1 && n > 0 {
		count = 1
	}
	drifts := make([]drift, 0, count)
	for i := 0; i < count; i++ {
		drifts = append(drifts, drift{
			edge:   graph.EdgeID(mo.rng.Intn(n)),
			factor: 1 + (mo.rng.Float64()*2-1)*mo.cfg.JitterPct,
		})
	}
	return mo.model.Mutate(func(g *graph.Graph) {
		for _, d := range drifts {
			attrs := g.Edge(d.edge).Attrs
			for _, name := range []string{"minDelay", "avgDelay", "maxDelay"} {
				if v, ok := attrs.Float(name); ok {
					attrs.SetNum(name, v*d.factor)
				}
			}
		}
	})
}

// Run publishes rounds every Interval until stop is closed.
func (mo *Monitor) Run(stop <-chan struct{}) {
	ticker := time.NewTicker(mo.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			mo.Step()
		}
	}
}
