// Package service implements the NETEMBED service model of Fig. 1: a
// network model kept current by a monitoring feed, the mapping service
// that applications query for feasible embeddings, an optional reservation
// system that tracks allocated resources, a windowed scheduler (the
// §VIII scheduling extension), and min-cost selection among feasible
// mappings (the §VIII optimization extension).
package service

import (
	"math/rand"
	"sync"
	"time"

	"netembed/internal/graph"
	"netembed/internal/index"
)

// Model holds the authoritative description of the hosting network. It is
// a copy-on-write snapshot holder: readers take immutable *graph.Graph
// snapshots and never block writers; updates swap in a whole new graph and
// bump the version. This is what lets embedding queries run concurrently
// with monitoring updates without locks in the search path.
//
// A model can additionally maintain a host-capability index
// (internal/index) kept in lockstep with the graph: every publish swaps
// in a matching index snapshot, and Apply — the delta path monitors
// should prefer — patches it incrementally instead of rebuilding.
// Readers take (graph, index) pairs atomically via SnapshotIndexed.
type Model struct {
	mu      sync.RWMutex
	g       *graph.Graph
	version uint64
	idx     *index.Index // nil unless EnableIndex was called
	idxCfg  index.Config

	// epochs tracks in-flight readers per published version so the serve
	// path can prove superseded (graph, index) snapshots are released —
	// and therefore collectable — once their last reader departs. It has
	// its own mutex; it is never taken while holding m.mu (AcquireIndexed
	// reads the triple under m.mu first, then registers the reader).
	epochs epochState
}

// epochState is the reader-tracking side of the model's copy-on-write
// snapshots. Each AcquireIndexed registers one reader against the version
// it read; Release unregisters it. When the last reader of a version that
// has since been superseded departs, nothing in the service pins that
// snapshot any longer and retired is bumped — the observable signal that
// delta churn is not accumulating old graphs behind slow requests.
type epochState struct {
	mu      sync.Mutex
	readers map[uint64]int
	retired uint64
}

// NewModel wraps an initial hosting network. The graph must not be
// mutated by the caller afterwards.
func NewModel(g *graph.Graph) *Model {
	return &Model{g: g, version: 1}
}

// EnableIndex attaches a host-capability index to the model and keeps it
// current across every subsequent publish: whole-graph swaps rebuild it,
// deltas patch it copy-on-write. Idempotent; safe to call on a live
// model.
func (m *Model) EnableIndex(cfg index.Config) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.idx == nil {
		m.idxCfg = cfg
		m.idx = index.Build(m.g, m.version, cfg)
	}
}

// Indexed reports whether the model maintains a capability index.
func (m *Model) Indexed() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.idx != nil
}

// Snapshot returns the current hosting network and its version. The graph
// is shared and must be treated as immutable.
func (m *Model) Snapshot() (*graph.Graph, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.g, m.version
}

// SnapshotIndexed returns the current hosting network, its capability
// index (nil when indexing is disabled) and the version, as one
// consistent triple. Both structures are shared and immutable.
func (m *Model) SnapshotIndexed() (*graph.Graph, *index.Index, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.g, m.idx, m.version
}

// AcquireIndexed is SnapshotIndexed plus epoch registration: the caller
// is counted as a live reader of the returned version until it calls
// Release(version). Long-running searches should prefer this pair over
// SnapshotIndexed so EpochStats can distinguish "old snapshot pinned by
// an in-flight request" from a leak. Acquire/Release are cheap (one
// mutex, no allocation on the steady path) and panic-safe via defer.
func (m *Model) AcquireIndexed() (*graph.Graph, *index.Index, uint64) {
	m.mu.RLock()
	g, idx, v := m.g, m.idx, m.version
	m.mu.RUnlock()
	m.epochs.mu.Lock()
	if m.epochs.readers == nil {
		m.epochs.readers = make(map[uint64]int)
	}
	m.epochs.readers[v]++
	m.epochs.mu.Unlock()
	return g, idx, v
}

// Release unregisters one reader acquired via AcquireIndexed. When the
// departing reader is the last on a version the model has since moved
// past, that epoch is retired: the service holds no remaining reference
// to its snapshot. Releasing a version with no registered reader is a
// no-op.
func (m *Model) Release(version uint64) {
	m.epochs.mu.Lock()
	// The version must be read inside the epoch critical section: read
	// earlier, a releaser that stalls before the lock can perform the
	// final delete against a stale "current" and a superseded epoch
	// would vanish without being counted retired. epochs.mu is never
	// taken with m.mu held, so the nested RLock cannot deadlock.
	cur := m.Version()
	switch n := m.epochs.readers[version]; {
	case n > 1:
		m.epochs.readers[version] = n - 1
	case n == 1:
		delete(m.epochs.readers, version)
		if version < cur {
			m.epochs.retired++
		}
	}
	m.epochs.mu.Unlock()
}

// EpochStats describes the model's snapshot-retirement state: the current
// version, how many distinct versions still have in-flight readers, the
// total reader count, and how many superseded epochs have been fully
// released since the model was built.
type EpochStats struct {
	Version     uint64 `json:"version"`
	LiveEpochs  int    `json:"liveEpochs"`
	LiveReaders int    `json:"liveReaders"`
	Retired     uint64 `json:"retiredEpochs"`
}

// EpochStats returns the current snapshot-retirement gauges.
func (m *Model) EpochStats() EpochStats {
	v := m.Version()
	m.epochs.mu.Lock()
	defer m.epochs.mu.Unlock()
	st := EpochStats{Version: v, LiveEpochs: len(m.epochs.readers), Retired: m.epochs.retired}
	for _, n := range m.epochs.readers {
		st.LiveReaders += n
	}
	return st
}

// Version returns the current model version.
func (m *Model) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// reindex refreshes the index (if enabled) after a whole-graph swap.
// Callers hold m.mu.
func (m *Model) reindex() {
	if m.idx != nil {
		m.idx = index.Build(m.g, m.version, m.idxCfg)
	}
}

// Update replaces the hosting network and returns the new version.
func (m *Model) Update(g *graph.Graph) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.g = g
	m.version++
	m.reindex()
	return m.version
}

// UpdateIf replaces the hosting network only when the model still holds
// the given version, returning the new version and whether the swap
// happened. It is the optimistic-concurrency primitive for writers that
// prepare an expensive successor graph outside the model lock (for
// instance coordinate-based completion) and must not clobber concurrent
// monitor updates.
func (m *Model) UpdateIf(g *graph.Graph, version uint64) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.version != version {
		return m.version, false
	}
	m.g = g
	m.version++
	m.reindex()
	return m.version, true
}

// Mutate clones the current snapshot, applies fn to the clone, swaps it in
// and returns the new version. Prefer Apply for changes expressible as a
// Delta: Mutate cannot know what fn touched, so an attached index is
// rebuilt from scratch.
func (m *Model) Mutate(fn func(*graph.Graph)) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.g.Clone()
	fn(next)
	m.g = next
	m.version++
	m.reindex()
	return m.version
}

// Apply publishes an incremental change: the graph is patched
// copy-on-write (attribute-only deltas share all structure with the
// previous snapshot) and an attached index is patched rather than
// rebuilt. This is the delta-native update path monitors should publish
// through. On error — and for an empty delta, which changes nothing and
// must not invalidate version-keyed caches — the model is unchanged and
// the current version is returned.
func (m *Model) Apply(d *graph.Delta) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d.Empty() {
		return m.version, nil
	}
	next, err := m.g.ApplyDelta(d)
	if err != nil {
		return m.version, err
	}
	prev := m.g
	m.g = next
	m.version++
	if m.idx != nil {
		m.idx = m.idx.Apply(prev, next, d, m.version)
	}
	return m.version, nil
}

// MonitorConfig shapes the simulated measurement feed.
type MonitorConfig struct {
	// JitterPct is the maximum relative delay drift per step (default 5%).
	JitterPct float64
	// EdgeFraction is the share of edges refreshed per step (default 10%).
	EdgeFraction float64
	// Interval is the period of Run (default 1s).
	Interval time.Duration
	// Seed drives the perturbation.
	Seed int64
}

func (c *MonitorConfig) applyDefaults() {
	if c.JitterPct == 0 {
		c.JitterPct = 0.05
	}
	if c.EdgeFraction == 0 {
		c.EdgeFraction = 0.10
	}
	if c.Interval == 0 {
		c.Interval = time.Second
	}
}

// Monitor simulates the monitoring infrastructure of Fig. 1 (a CoMon/
// all-pairs-ping stand-in): each step it re-measures a fraction of links,
// drifting their delay attributes, and publishes a new model version.
type Monitor struct {
	model *Model
	cfg   MonitorConfig
	rng   *rand.Rand
	steps int
}

// NewMonitor builds a monitor feeding the given model.
func NewMonitor(model *Model, cfg MonitorConfig) *Monitor {
	cfg.applyDefaults()
	return &Monitor{model: model, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Steps returns how many measurement rounds have been published.
func (mo *Monitor) Steps() int { return mo.steps }

// Step publishes one measurement round — as a Delta, the way a real
// monitoring feed republishes only the links it re-measured — and returns
// the new model version. The drifted values are computed against the
// snapshot current at the start of the step; the monitor is expected to
// be the only writer of the delay attributes it owns.
func (mo *Monitor) Step() uint64 {
	mo.steps++
	// The monitor is not the only writer: a POST /deltas can remove an
	// edge between the snapshot and Apply, failing the whole (atomic)
	// round. Re-measure against a fresh snapshot instead of silently
	// dropping the round; give up only if writer churn wins repeatedly.
	for attempt := 0; ; attempt++ {
		g, _ := mo.model.Snapshot()
		version, err := mo.model.Apply(mo.measure(g))
		if err == nil {
			return version
		}
		if attempt == 2 {
			return mo.model.Version()
		}
	}
}

// measure samples a fraction of g's edges and returns the delta drifting
// their delay attributes.
func (mo *Monitor) measure(g *graph.Graph) *graph.Delta {
	n := g.NumEdges()
	count := int(float64(n) * mo.cfg.EdgeFraction)
	if count < 1 && n > 0 {
		count = 1
	}
	var delta graph.Delta
	for i := 0; i < count; i++ {
		e := g.Edge(graph.EdgeID(mo.rng.Intn(n)))
		factor := 1 + (mo.rng.Float64()*2-1)*mo.cfg.JitterPct
		var set graph.Attrs
		for _, name := range []string{"minDelay", "avgDelay", "maxDelay"} {
			if v, ok := e.Attrs.Float(name); ok {
				set = set.SetNum(name, v*factor)
			}
		}
		if set == nil {
			continue
		}
		delta.SetEdgeAttrs = append(delta.SetEdgeAttrs, graph.EdgeAttrUpdate{
			Source: g.Node(e.From).Name,
			Target: g.Node(e.To).Name,
			Set:    set,
		})
	}
	return &delta
}

// Run publishes rounds every Interval until stop is closed.
func (mo *Monitor) Run(stop <-chan struct{}) {
	ticker := time.NewTicker(mo.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			mo.Step()
		}
	}
}
