package service

import (
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/topo"
)

// negotiationHost: a triangle whose links sit at exactly 50ms.
func negotiationHost() *graph.Graph {
	g := topo.Clique(3)
	for i := 0; i < g.NumEdges(); i++ {
		g.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.SetNum("avgDelay", 50)
	}
	return g
}

const avgWindowSrc = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

func TestNegotiateFeasibleImmediately(t *testing.T) {
	svc := New(NewModel(negotiationHost()), Config{})
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 40, 60) // already contains 50ms
	resp, err := svc.Negotiate(NegotiateRequest{
		Request: Request{Query: q, EdgeConstraint: avgWindowSrc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", resp.Rounds)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no mapping")
	}
}

func TestNegotiateRelaxesUntilFeasible(t *testing.T) {
	svc := New(NewModel(negotiationHost()), Config{})
	q := topo.Clique(3)
	// [10, 20]ms is far from the 50ms links: the window re-centers on its
	// midpoint each round and clamps at zero, reaching hi >= 50 after six
	// widenings ([7.5,22.5] → [3.75,26.25] → [0,31.9] → [0,39.8] →
	// [0,49.8] → [0,62.3]).
	topo.SetDelayWindow(q, 10, 20)
	resp, err := svc.Negotiate(NegotiateRequest{
		Request:   Request{Query: q, EdgeConstraint: avgWindowSrc},
		MaxRounds: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rounds != 6 {
		t.Errorf("rounds = %d, want 6", resp.Rounds)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no mapping after relaxation")
	}
	// The relaxed query's window must now contain 50.
	lo, _ := resp.RelaxedQuery.Edge(0).Attrs.Float("minDelay")
	hi, _ := resp.RelaxedQuery.Edge(0).Attrs.Float("maxDelay")
	if lo > 50 || hi < 50 {
		t.Errorf("relaxed window [%v,%v] does not contain 50", lo, hi)
	}
	// The caller's query is untouched.
	origLo, _ := q.Edge(0).Attrs.Float("minDelay")
	origHi, _ := q.Edge(0).Attrs.Float("maxDelay")
	if origLo != 10 || origHi != 20 {
		t.Errorf("original query mutated: [%v,%v]", origLo, origHi)
	}
}

func TestNegotiateGivesUp(t *testing.T) {
	svc := New(NewModel(negotiationHost()), Config{})
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 10, 20)
	_, err := svc.Negotiate(NegotiateRequest{
		Request:   Request{Query: q, EdgeConstraint: avgWindowSrc},
		MaxRounds: 2, // not enough widening to reach 50ms
	})
	if err != ErrNegotiationFailed {
		t.Errorf("err = %v, want ErrNegotiationFailed", err)
	}
	if _, err := svc.Negotiate(NegotiateRequest{}); err != ErrNoQuery {
		t.Errorf("no query: %v", err)
	}
}

func TestNegotiateTopologyInfeasibleNeverSucceeds(t *testing.T) {
	// A 4-clique cannot embed into a 3-node host no matter the windows.
	svc := New(NewModel(negotiationHost()), Config{DefaultTimeout: 2 * time.Second})
	q := topo.Clique(4)
	topo.SetDelayWindow(q, 10, 20)
	if _, err := svc.Negotiate(NegotiateRequest{
		Request:   Request{Query: q, EdgeConstraint: avgWindowSrc},
		MaxRounds: 3,
	}); err == nil {
		t.Error("topologically impossible negotiation succeeded")
	}
}

func TestRelaxWindowsPointWindow(t *testing.T) {
	g := topo.Line(2)
	g.Edge(0).Attrs = graph.Attrs{}.SetNum("minDelay", 30).SetNum("maxDelay", 30)
	out := relaxWindows(g, "minDelay", "maxDelay", 1.5)
	lo, _ := out.Edge(0).Attrs.Float("minDelay")
	hi, _ := out.Edge(0).Attrs.Float("maxDelay")
	if !(lo < 30 && hi > 30) {
		t.Errorf("point window not opened: [%v,%v]", lo, hi)
	}
	// Windowless edges pass through untouched.
	g2 := topo.Line(2)
	out2 := relaxWindows(g2, "minDelay", "maxDelay", 2)
	if out2.Edge(0).Attrs.Has("minDelay") {
		t.Error("windowless edge gained attributes")
	}
	// The low end clamps at zero.
	g3 := topo.Line(2)
	g3.Edge(0).Attrs = graph.Attrs{}.SetNum("minDelay", 1).SetNum("maxDelay", 3)
	out3 := relaxWindows(g3, "minDelay", "maxDelay", 10)
	lo3, _ := out3.Edge(0).Attrs.Float("minDelay")
	if lo3 < 0 {
		t.Errorf("low end went negative: %v", lo3)
	}
}
