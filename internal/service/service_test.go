package service

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

const delayWindowSrc = "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay"

func testHost(t testing.TB, sites int, seed int64) *graph.Graph {
	t.Helper()
	return trace.SyntheticPlanetLab(trace.Config{Sites: sites}, rand.New(rand.NewSource(seed)))
}

func testQuery(t testing.TB, host *graph.Graph, n, e int, seed int64) *graph.Graph {
	t.Helper()
	q, _, err := topo.Subgraph(host, n, e, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.2)
	return q
}

func TestModelSnapshotAndUpdate(t *testing.T) {
	g := topo.Ring(4)
	m := NewModel(g)
	snap, v := m.Snapshot()
	if snap != g || v != 1 {
		t.Fatalf("initial snapshot %v v%d", snap, v)
	}
	g2 := topo.Ring(5)
	if v2 := m.Update(g2); v2 != 2 {
		t.Errorf("version after update = %d", v2)
	}
	snap2, _ := m.Snapshot()
	if snap2.NumNodes() != 5 {
		t.Error("update not visible")
	}
	v3 := m.Mutate(func(g *graph.Graph) {
		g.Node(0).Attrs = g.Node(0).Attrs.SetNum("cpu", 8)
	})
	if v3 != 3 {
		t.Errorf("version after mutate = %d", v3)
	}
	// Mutate must not touch the previous snapshot.
	if snap2.Node(0).Attrs.Has("cpu") {
		t.Error("Mutate modified an old snapshot")
	}
	if m.Version() != 3 {
		t.Errorf("Version() = %d", m.Version())
	}
}

func TestMonitorDriftsDelays(t *testing.T) {
	host := testHost(t, 30, 1)
	model := NewModel(host)
	mon := NewMonitor(model, MonitorConfig{Seed: 7, EdgeFraction: 0.5, JitterPct: 0.2})
	before, v0 := model.Snapshot()
	if v := mon.Step(); v != v0+1 {
		t.Errorf("version after step = %d", v)
	}
	after, _ := model.Snapshot()
	changed := 0
	for i := 0; i < before.NumEdges(); i++ {
		b, _ := before.Edge(graph.EdgeID(i)).Attrs.Float("avgDelay")
		a, _ := after.Edge(graph.EdgeID(i)).Attrs.Float("avgDelay")
		if a != b {
			changed++
		}
	}
	if changed == 0 {
		t.Error("monitor step changed nothing")
	}
	if mon.Steps() != 1 {
		t.Errorf("Steps = %d", mon.Steps())
	}
	// Run loop integration: a couple of ticks then stop.
	mon2 := NewMonitor(model, MonitorConfig{Seed: 8, Interval: time.Millisecond})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { mon2.Run(stop); close(done) }()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	<-done
	if mon2.Steps() == 0 {
		t.Error("Run produced no steps")
	}
}

func TestEmbedAllAlgorithms(t *testing.T) {
	host := testHost(t, 40, 2)
	model := NewModel(host)
	svc := New(model, Config{})
	query := testQuery(t, host, 6, 8, 3)

	for _, algo := range []Algorithm{AlgoECF, AlgoRWB, AlgoLNS, AlgoParallelECF, ""} {
		resp, err := svc.Embed(Request{
			Query:          query,
			EdgeConstraint: delayWindowSrc,
			Algorithm:      algo,
			MaxResults:     1,
			Timeout:        10 * time.Second,
		})
		if err != nil {
			t.Fatalf("algo %q: %v", algo, err)
		}
		if len(resp.Mappings) == 0 {
			t.Fatalf("algo %q found nothing", algo)
		}
		if resp.ModelVersion != 1 {
			t.Errorf("algo %q model version %d", algo, resp.ModelVersion)
		}
		if len(resp.Named) != len(resp.Mappings) {
			t.Fatalf("algo %q named size mismatch", algo)
		}
		for qName, rName := range resp.Named[0] {
			if _, ok := query.NodeByName(qName); !ok {
				t.Errorf("algo %q: unknown query node %q", algo, qName)
			}
			if _, ok := host.NodeByName(rName); !ok {
				t.Errorf("algo %q: unknown host node %q", algo, rName)
			}
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	host := testHost(t, 20, 4)
	svc := New(NewModel(host), Config{})
	if _, err := svc.Embed(Request{}); err != ErrNoQuery {
		t.Errorf("no query: %v", err)
	}
	q := topo.Ring(3)
	if _, err := svc.Embed(Request{Query: q, Algorithm: "quantum"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := svc.Embed(Request{Query: q, EdgeConstraint: "1 +"}); err == nil ||
		!strings.Contains(err.Error(), "edge constraint") {
		t.Errorf("bad edge constraint: %v", err)
	}
	if _, err := svc.Embed(Request{Query: q, NodeConstraint: "1 +"}); err == nil ||
		!strings.Contains(err.Error(), "node constraint") {
		t.Errorf("bad node constraint: %v", err)
	}
	// Constraint in the wrong context.
	if _, err := svc.Embed(Request{Query: q, EdgeConstraint: "vNode.cpu > 1"}); err == nil {
		t.Error("node-context program accepted as edge constraint")
	}
}

func TestLedgerAllocateRelease(t *testing.T) {
	l := NewLedger()
	id, err := l.Allocate(core.Mapping{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.ReservedNodes()); got != 3 {
		t.Errorf("reserved = %d", got)
	}
	if l.ActiveLeases() != 1 {
		t.Errorf("active = %d", l.ActiveLeases())
	}
	if _, err := l.Allocate(core.Mapping{3, 4}); err == nil {
		t.Error("overlapping allocation accepted")
	}
	if _, err := l.Allocate(core.Mapping{4, 4}); err == nil {
		t.Error("duplicate-node mapping accepted")
	}
	lease, ok := l.Lease(id)
	if !ok || len(lease.Nodes) != 3 {
		t.Errorf("Lease() = %+v, %v", lease, ok)
	}
	if err := l.Release(id); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(id); err != ErrLeaseNotFound {
		t.Errorf("double release: %v", err)
	}
	if got := len(l.ReservedNodes()); got != 0 {
		t.Errorf("reserved after release = %d", got)
	}
}

func TestLedgerWindows(t *testing.T) {
	l := NewLedger()
	base := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return base })

	// Lease tomorrow 10:00-11:00.
	start := base.Add(22 * time.Hour)
	end := start.Add(time.Hour)
	if _, err := l.AllocateWindow(core.Mapping{5}, start, end); err != nil {
		t.Fatal(err)
	}
	if n := len(l.ReservedNodes()); n != 0 {
		t.Errorf("future lease active now: %d nodes", n)
	}
	if n := len(l.ReservedNodesAt(start.Add(time.Minute))); n != 1 {
		t.Errorf("lease not active in window: %d", n)
	}
	// Non-overlapping window on the same node is fine.
	if _, err := l.AllocateWindow(core.Mapping{5}, end, end.Add(time.Hour)); err != nil {
		t.Errorf("adjacent window rejected: %v", err)
	}
	// Overlapping window conflicts.
	if _, err := l.AllocateWindow(core.Mapping{5}, start.Add(30*time.Minute), end.Add(time.Hour)); err == nil {
		t.Error("overlapping window accepted")
	}
	// Open-ended lease conflicts with everything.
	if _, err := l.AllocateWindow(core.Mapping{5}, time.Time{}, time.Time{}); err == nil {
		t.Error("open-ended lease over busy node accepted")
	}
	// Degenerate window.
	if _, err := l.AllocateWindow(core.Mapping{6}, end, end); err == nil {
		t.Error("empty window accepted")
	}
}

func TestLedgerCapacity(t *testing.T) {
	l := NewLedger()
	l.SetCapacity(func(r graph.NodeID) int {
		if r == 7 {
			return 2
		}
		return 1
	})
	// Node 7 holds two concurrent leases; the third conflicts.
	a, err := l.Allocate(core.Mapping{7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Allocate(core.Mapping{7}); err != nil {
		t.Fatalf("second slot rejected: %v", err)
	}
	if _, err := l.Allocate(core.Mapping{7}); err == nil {
		t.Fatal("third lease on a 2-slot node accepted")
	}
	// Single-slot node still conflicts immediately.
	if _, err := l.Allocate(core.Mapping{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Allocate(core.Mapping{3}); err == nil {
		t.Fatal("second lease on a 1-slot node accepted")
	}
	// Saturation: node 7 saturated (2/2), node 3 saturated (1/1).
	sat := l.SaturatedNodes()
	if len(sat) != 2 {
		t.Fatalf("saturated = %v", sat)
	}
	// Releasing one of node 7's leases frees a slot.
	if err := l.Release(a); err != nil {
		t.Fatal(err)
	}
	sat = l.SaturatedNodes()
	if len(sat) != 1 || sat[0] != 3 {
		t.Fatalf("saturated after release = %v", sat)
	}
	if _, err := l.Allocate(core.Mapping{7}); err != nil {
		t.Fatalf("freed slot rejected: %v", err)
	}
	// SetCapacity(nil) restores single-slot semantics for new checks.
	l.SetCapacity(nil)
	if _, err := l.Allocate(core.Mapping{9}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Allocate(core.Mapping{9}); err == nil {
		t.Fatal("nil capacity did not restore single-slot")
	}
}

func TestServiceCapacityFromSlotsAttr(t *testing.T) {
	// One feasible triangle whose nodes each carry 2 slots: two identical
	// embeddings may coexist, a third is excluded.
	host := graph.NewUndirected()
	for i := 0; i < 3; i++ {
		host.AddNode("", graph.Attrs{}.SetNum(SlotsAttr, 2))
	}
	attrs := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	host.MustAddEdge(0, 1, attrs())
	host.MustAddEdge(1, 2, attrs())
	host.MustAddEdge(0, 2, attrs())
	svc := New(NewModel(host), Config{})
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 25)
	req := Request{Query: q, EdgeConstraint: delayWindowSrc, MaxResults: 1, ExcludeReserved: true}

	for i := 0; i < 2; i++ {
		resp, err := svc.Embed(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Mappings) == 0 {
			t.Fatalf("embedding %d found nothing", i+1)
		}
		if _, err := svc.Ledger().Allocate(resp.Mappings[0]); err != nil {
			t.Fatalf("allocation %d: %v", i+1, err)
		}
	}
	// All slots used: the third request must come up empty.
	resp, err := svc.Embed(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) != 0 {
		t.Fatalf("third embedding placed despite exhausted slots: %v", resp.Mappings)
	}
}

func TestEmbedExcludeReserved(t *testing.T) {
	// Host: two disjoint feasible triangles; reserve one, expect the other.
	host := graph.NewUndirected()
	for i := 0; i < 6; i++ {
		host.AddNode("", nil)
	}
	attrs := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	host.MustAddEdge(0, 1, attrs())
	host.MustAddEdge(1, 2, attrs())
	host.MustAddEdge(0, 2, attrs())
	host.MustAddEdge(3, 4, attrs())
	host.MustAddEdge(4, 5, attrs())
	host.MustAddEdge(3, 5, attrs())
	svc := New(NewModel(host), Config{})

	query := topo.Clique(3)
	topo.SetDelayWindow(query, 5, 25)

	if _, err := svc.Ledger().Allocate(core.Mapping{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Embed(Request{
		Query:           query,
		EdgeConstraint:  delayWindowSrc,
		ExcludeReserved: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Mappings {
		for _, r := range m {
			if r <= 2 {
				t.Fatalf("embedding used reserved node %d", r)
			}
		}
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no embedding despite free triangle")
	}
	// Without exclusion both triangles are eligible.
	resp2, err := svc.Embed(Request{Query: query, EdgeConstraint: delayWindowSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Mappings) <= len(resp.Mappings) {
		t.Error("exclusion did not shrink the solution set")
	}
}

func TestSchedule(t *testing.T) {
	// Host with exactly one feasible triangle: concurrent leases force the
	// scheduler to find a later window.
	host := graph.NewUndirected()
	for i := 0; i < 3; i++ {
		host.AddNode("", nil)
	}
	attrs := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	host.MustAddEdge(0, 1, attrs())
	host.MustAddEdge(1, 2, attrs())
	host.MustAddEdge(0, 2, attrs())
	svc := New(NewModel(host), Config{})

	query := topo.Clique(3)
	topo.SetDelayWindow(query, 5, 25)

	now := time.Date(2026, 6, 11, 9, 0, 0, 0, time.UTC)
	svc.Ledger().SetClock(func() time.Time { return now })

	// Existing lease holds the triangle for the first hour.
	if _, err := svc.Ledger().AllocateWindow(core.Mapping{0, 1, 2}, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	resp, err := svc.Schedule(ScheduleRequest{
		Request:  Request{Query: query, EdgeConstraint: delayWindowSrc},
		Duration: 30 * time.Minute,
		Horizon:  4 * time.Hour,
		Step:     15 * time.Minute,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Start.Before(now.Add(time.Hour)) {
		t.Errorf("scheduled inside the busy hour: %v", resp.Start)
	}
	if resp.WindowsTried < 2 {
		t.Errorf("WindowsTried = %d", resp.WindowsTried)
	}
	if _, ok := svc.Ledger().Lease(resp.Lease); !ok {
		t.Error("schedule did not take out a lease")
	}

	// A second identical request must land after the first one's window.
	resp2, err := svc.Schedule(ScheduleRequest{
		Request:  Request{Query: query, EdgeConstraint: delayWindowSrc},
		Duration: 30 * time.Minute,
		Horizon:  6 * time.Hour,
		Step:     15 * time.Minute,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Start.Before(resp.Start.Add(30 * time.Minute)) {
		t.Errorf("second window %v overlaps first %v", resp2.Start, resp.Start)
	}

	// An impossible query never finds a window.
	impossible := topo.Clique(3)
	topo.SetDelayWindow(impossible, -5, -1)
	if _, err := svc.Schedule(ScheduleRequest{
		Request:  Request{Query: impossible, EdgeConstraint: delayWindowSrc},
		Duration: time.Hour,
		Horizon:  time.Hour,
		Step:     30 * time.Minute,
	}, now); err != ErrNoWindow {
		t.Errorf("impossible schedule: %v", err)
	}
}

func TestScheduleValidation(t *testing.T) {
	svc := New(NewModel(topo.Ring(3)), Config{})
	if _, err := svc.Schedule(ScheduleRequest{}, time.Now()); err != ErrNoQuery {
		t.Errorf("no query: %v", err)
	}
	if _, err := svc.Schedule(ScheduleRequest{
		Request: Request{Query: topo.Ring(3)},
	}, time.Now()); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestSelectBestAndCosts(t *testing.T) {
	host := testHost(t, 30, 5)
	model := NewModel(host)
	svc := New(model, Config{})
	query := testQuery(t, host, 5, 6, 6)
	resp, err := svc.Embed(Request{
		Query:          query,
		EdgeConstraint: delayWindowSrc,
		MaxResults:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) < 2 {
		t.Skip("not enough mappings to compare")
	}
	costFn := TotalEdgeAttrCost("avgDelay")
	best, bestCost, err := SelectBest(query, host, resp.Mappings, costFn)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Mappings {
		if c := costFn(query, host, m); c < bestCost {
			t.Errorf("SelectBest missed cheaper mapping: %v < %v", c, bestCost)
		}
	}
	_ = best

	if worst := MaxEdgeAttrCost("avgDelay")(query, host, resp.Mappings[0]); worst <= 0 {
		t.Errorf("MaxEdgeAttrCost = %v", worst)
	}
	if spread := SpreadCost("region")(query, host, resp.Mappings[0]); spread >= 0 {
		t.Errorf("SpreadCost should be negative, got %v", spread)
	}
	if _, _, err := SelectBest(query, host, nil, costFn); err != ErrNoMappings {
		t.Errorf("empty SelectBest: %v", err)
	}
}

func TestConcurrentEmbedsAndMonitor(t *testing.T) {
	host := testHost(t, 40, 7)
	model := NewModel(host)
	svc := New(model, Config{})
	mon := NewMonitor(model, MonitorConfig{Seed: 9})
	query := testQuery(t, host, 5, 6, 8)

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(seed int64) {
			_, err := svc.Embed(Request{
				Query:          query,
				EdgeConstraint: delayWindowSrc,
				Algorithm:      AlgoRWB,
				Seed:           seed,
				MaxResults:     1,
			})
			done <- err
		}(int64(i))
	}
	for i := 0; i < 4; i++ {
		mon.Step()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestObjectiveAttrWarnings pins the optimizing-request warning pass: a
// typo'd objective attribute silently degenerates the objective to a
// constant (every term its missing-attribute fallback), so the service
// must flag it exactly like constraint-program attribute typos — while a
// defined attribute and energy's implicit cold-fleet default stay silent.
func TestObjectiveAttrWarnings(t *testing.T) {
	host := testHost(t, 12, 3)
	svc := New(NewModel(host), Config{})
	q := testQuery(t, host, 3, 2, 4)

	embed := func(o core.Objective) *Response {
		t.Helper()
		resp, err := svc.Embed(Request{
			Query: q, EdgeConstraint: delayWindowSrc,
			Optimize: true, Objective: o,
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	typo := embed(core.Objective{Kind: core.ObjectiveAttrCost, Attr: "prise"})
	if !warningsContain(typo.Warnings, "prise") {
		t.Errorf("no warning for typo'd objective attr in %v", typo.Warnings)
	}
	defined := embed(core.Objective{Kind: core.ObjectiveAttrCost, Attr: "cpu"})
	if warningsContain(defined.Warnings, "objective reads") {
		t.Errorf("defined objective attr warned: %v", defined.Warnings)
	}
	// Load balance defaults to "slots", which PlanetLab hosts never
	// define: every term clamps to Weight/1 — constant, so warn.
	lb := embed(core.Objective{Kind: core.ObjectiveLoadBalance})
	if !warningsContain(lb.Warnings, "slots") {
		t.Errorf("no warning for missing slots attr in %v", lb.Warnings)
	}
	// Energy's implicit "active" default on a host with no active marks
	// is the documented cold-fleet mode (every used host powers on).
	energy := embed(core.Objective{Kind: core.ObjectiveEnergy})
	if warningsContain(energy.Warnings, "objective reads") {
		t.Errorf("energy cold-fleet default warned: %v", energy.Warnings)
	}
	// ...but an explicitly named energy attribute nothing defines is a
	// typo like any other.
	energyTypo := embed(core.Objective{Kind: core.ObjectiveEnergy, Attr: "actve"})
	if !warningsContain(energyTypo.Warnings, "actve") {
		t.Errorf("no warning for typo'd energy attr in %v", energyTypo.Warnings)
	}
}
