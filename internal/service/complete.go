package service

import (
	"math/rand"

	"netembed/internal/coords"
)

// CompletionConfig drives coordinate-based completion of a partially
// measured hosting network (the open-network case of §II: no monitor of
// the Internet or a PlanetLab overlay ever sees an all-pairs delay
// characterization).
type CompletionConfig struct {
	// Embed tunes the Vivaldi deployment simulated over the measured
	// edges of the current model snapshot.
	Embed coords.EmbedConfig
	// Densify tunes how predictions become delay windows on synthesized
	// edges.
	Densify coords.DensifyConfig
	// Seed drives the gossip sampling (default 1).
	Seed int64
}

// CompletionReport describes the outcome of one model completion.
type CompletionReport struct {
	Added   int               // synthesized edges installed
	Fit     coords.ErrorStats // coordinate fit over the measured edges
	Version uint64            // model version carrying the completed graph
}

// Complete embeds the model's current snapshot into a Vivaldi coordinate
// space, synthesizes an edge for every unmeasured node pair with the
// coordinate-predicted delay window, and publishes the densified graph as
// a new model version. Synthesized edges carry the Densify mark attribute
// ("predicted" by default) so constraint expressions can exclude them —
// e.g. "!has(rEdge.predicted)" restricts a query to measured links.
//
// The original sparse snapshot is untouched; completion prepares the
// densified successor on a clone outside the model lock and installs it
// with an optimistic compare-and-swap, retrying against fresh snapshots
// if a concurrent monitor update wins the race. Nothing partial is ever
// published.
func Complete(m *Model, cfg CompletionConfig) (CompletionReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	for {
		snap, version := m.Snapshot()
		rng := rand.New(rand.NewSource(cfg.Seed))
		sys, _, err := coords.Embed(snap, cfg.Embed, rng)
		if err != nil {
			return CompletionReport{}, err
		}
		fit := coords.Errors(sys, snap, cfg.Embed.Attr)

		next := snap.Clone()
		added, err := coords.Densify(next, sys, cfg.Densify)
		if err != nil {
			return CompletionReport{}, err
		}
		if newVersion, ok := m.UpdateIf(next, version); ok {
			return CompletionReport{Added: added, Fit: fit, Version: newVersion}, nil
		}
		// A monitor published while we embedded; redo against the fresh
		// snapshot so its measurements are not lost.
	}
}
