package service

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"netembed/internal/coords"
	"netembed/internal/graph"
	"netembed/internal/topo"
)

// sparseMetricHost builds an undirected host whose measured edges are a
// random partial sample of a planar metric: the workload model for an
// open network where most pairs were never probed.
func sparseMetricHost(n, degree int, rng *rand.Rand) *graph.Graph {
	g := graph.NewUndirected()
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
		g.AddNode("", nil)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < degree; k++ {
			j := rng.Intn(n)
			if j == i || g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				continue
			}
			dx, dy := pts[i][0]-pts[j][0], pts[i][1]-pts[j][1]
			d := math.Hypot(dx, dy) + 1
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), graph.Attrs{}.
				SetNum("minDelay", d*0.95).
				SetNum("avgDelay", d).
				SetNum("maxDelay", d*1.05))
		}
	}
	return g
}

func TestUpdateIf(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNodes(2)
	m := NewModel(g)
	_, v1 := m.Snapshot()

	next := g.Clone()
	if v2, ok := m.UpdateIf(next, v1); !ok || v2 != v1+1 {
		t.Fatalf("UpdateIf on current version: ok=%v v=%d", ok, v2)
	}
	// Stale version must be rejected and report the winner.
	if v, ok := m.UpdateIf(g.Clone(), v1); ok || v != v1+1 {
		t.Fatalf("UpdateIf on stale version: ok=%v v=%d", ok, v)
	}
}

func TestUpdateIfConcurrentWritersLoseNoVersion(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNodes(2)
	m := NewModel(g)

	const writers = 8
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				snap, v := m.Snapshot()
				if _, ok := m.UpdateIf(snap.Clone(), v); ok {
					mu.Lock()
					wins++
					done := wins >= 50
					mu.Unlock()
					if done {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Version(); got < 51 {
		t.Fatalf("version %d after >= 50 successful swaps", got)
	}
}

func TestCompleteDensifiesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	host := sparseMetricHost(40, 5, rng)
	sparseEdges := host.NumEdges()
	m := NewModel(host)

	rep, err := Complete(m, CompletionConfig{
		Embed: coords.EmbedConfig{Rounds: 60, Config: coords.Config{Dim: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	full := 40 * 39 / 2
	if rep.Added != full-sparseEdges {
		t.Fatalf("Complete added %d edges, want %d", rep.Added, full-sparseEdges)
	}
	snap, v := m.Snapshot()
	if v != rep.Version {
		t.Fatalf("snapshot version %d, report says %d", v, rep.Version)
	}
	if snap.NumEdges() != full {
		t.Fatalf("completed model has %d edges, want %d", snap.NumEdges(), full)
	}
	if rep.Fit.Median > 0.2 {
		t.Fatalf("fit median error %.3f on planar metric, want <= 0.2", rep.Fit.Median)
	}
	// The original snapshot must be untouched (copy-on-write contract).
	if host.NumEdges() != sparseEdges {
		t.Fatalf("original graph mutated: %d edges", host.NumEdges())
	}
}

func TestCompleteRetriesPastConcurrentMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	host := sparseMetricHost(25, 4, rng)
	m := NewModel(host)
	mon := NewMonitor(m, MonitorConfig{Seed: 5})
	// Interleave monitor rounds with the completion; UpdateIf retries
	// must converge and land on a version above the monitor's.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			mon.Step()
		}
	}()
	rep, err := Complete(m, CompletionConfig{
		Embed: coords.EmbedConfig{Rounds: 20, Config: coords.Config{Dim: 2}},
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added == 0 {
		t.Fatal("completion added nothing")
	}
	snap, _ := m.Snapshot()
	if snap.NumEdges() < host.NumEdges()+rep.Added {
		t.Fatalf("final model lost edges: %d", snap.NumEdges())
	}
}

func TestCompleteErrorsOnUnmeasuredModel(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNodes(5)
	g.MustAddEdge(0, 1, nil) // no delay attribute anywhere
	if _, err := Complete(NewModel(g), CompletionConfig{}); err == nil {
		t.Fatal("Complete accepted a model without measurements")
	}
}

// TestCompleteUnblocksQueries is the end-to-end motivation: a query that
// is infeasible on the sparse measured host becomes feasible once
// coordinate completion fills in the unmeasured pairs, and the predicted
// mark lets constraints opt back into measured-only links.
func TestCompleteUnblocksQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	host := sparseMetricHost(30, 3, rng)
	m := NewModel(host)
	svc := New(m, Config{})

	// A clique query needs host cliques; the sparse measured graph
	// (mean degree ~5) has essentially none of size 5.
	q := topo.Clique(5)
	topo.SetDelayWindow(q, 1, 1e6)
	req := Request{
		Query:          q,
		EdgeConstraint: "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
		MaxResults:     1,
	}
	before, err := svc.Embed(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Mappings) != 0 {
		t.Skip("sparse host accidentally contains a 5-clique; seed needs adjusting")
	}

	if _, err := Complete(m, CompletionConfig{
		Embed: coords.EmbedConfig{Rounds: 40, Config: coords.Config{Dim: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	after, err := svc.Embed(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Mappings) == 0 {
		t.Fatal("query still infeasible after completion")
	}

	// Restricting to measured links brings the infeasibility back.
	measuredOnly := req
	measuredOnly.EdgeConstraint += " && !has(rEdge.predicted)"
	strict, err := svc.Embed(measuredOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Mappings) != 0 {
		t.Fatal("predicted-link exclusion did not restore the sparse semantics")
	}
}
