package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// TestLedgerConcurrentInterleavings hammers one multi-slot host (and a few
// single-slot neighbors) with every mutating ledger operation at once. Run
// under -race it pins the concurrency-safety claim; the final capacity
// audit pins that no interleaving ever oversubscribed a slot.
func TestLedgerConcurrentInterleavings(t *testing.T) {
	l := NewLedger()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	var nowMu sync.Mutex
	now := base
	l.SetClock(func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	})
	advance := func(d time.Duration) {
		nowMu.Lock()
		now = now.Add(d)
		nowMu.Unlock()
	}

	// Node 0 is the contended multi-slot host; 1..4 are single-slot.
	slots := func(r graph.NodeID) int {
		if r == 0 {
			return 3
		}
		return 1
	}
	l.SetCapacity(slots)

	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []LeaseID
			for i := 0; i < rounds; i++ {
				target := core.Mapping{0, graph.NodeID(1 + (w+i)%4)}
				switch (w + i) % 6 {
				case 0:
					if id, err := l.Allocate(core.Mapping{0}); err == nil {
						mine = append(mine, id)
					} else if !errors.Is(err, ErrConflict) {
						t.Errorf("allocate: %v", err)
					}
				case 1:
					start := l.Now()
					if id, err := l.AllocateWindow(target, start, start.Add(time.Minute)); err == nil {
						mine = append(mine, id)
					} else if !errors.Is(err, ErrConflict) {
						t.Errorf("allocate window: %v", err)
					}
				case 2:
					if len(mine) > 0 {
						id := mine[0]
						mine = mine[1:]
						if err := l.Release(id); err != nil && !errors.Is(err, ErrLeaseNotFound) {
							t.Errorf("release: %v", err)
						}
					}
				case 3:
					l.Prune(l.Now())
					advance(time.Second)
				case 4:
					// Flip the contended host between 2 and 3 slots; the
					// audit below uses the final value.
					n := 2 + (w+i)%2
					l.SetCapacity(func(r graph.NodeID) int {
						if r == 0 {
							return n
						}
						return 1
					})
				case 5:
					if len(mine) > 0 {
						id := mine[len(mine)-1]
						err := l.Renew(id, l.Now().Add(time.Hour))
						switch {
						case err == nil,
							errors.Is(err, ErrConflict),
							errors.Is(err, ErrLeaseNotFound),
							errors.Is(err, ErrNotWindowed):
						default:
							t.Errorf("renew: %v", err)
						}
					}
				}
				// Read paths race alongside the mutations.
				l.SaturatedNodes()
				l.ActiveLeases()
			}
			for _, id := range mine {
				_ = l.Release(id)
			}
		}()
	}
	wg.Wait()

	// Audit: whatever interleaving happened, active holds never exceed the
	// capacity in force now (SetCapacity landed on 2 or 3 for node 0; count
	// against the generous bound plus the single-slot rule elsewhere).
	l.SetCapacity(slots)
	holds := map[graph.NodeID]int{}
	at := l.Now()
	for _, r := range l.ReservedNodesAt(at) {
		_ = r // reachability of the read path under -race
	}
	for id := LeaseID(1); id <= LeaseID(workers*rounds); id++ {
		lease, ok := l.Lease(id)
		if !ok || !lease.active(at) {
			continue
		}
		for _, r := range lease.Nodes {
			holds[r]++
		}
	}
	for r, n := range holds {
		if r == 0 {
			if n > 3 {
				t.Errorf("multi-slot host oversubscribed: %d holds", n)
			}
		} else if n > 1 {
			t.Errorf("single-slot host %d oversubscribed: %d holds", r, n)
		}
	}
}

// TestLedgerConcurrentReplace races migration commits against allocations
// targeting the same nodes: every Replace either lands fully or leaves the
// lease untouched, and the winner of each node is exclusive.
func TestLedgerConcurrentReplace(t *testing.T) {
	l := NewLedger()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return base })

	id, err := l.Allocate(core.Mapping{0})
	if err != nil {
		t.Fatal(err)
	}
	const attackers = 8
	var wg sync.WaitGroup
	stolen := make([]LeaseID, attackers)
	for w := 0; w < attackers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half try to steal node 1, half migrate the lease onto it.
			if w%2 == 0 {
				if sid, err := l.Allocate(core.Mapping{1}); err == nil {
					stolen[w] = sid
				}
			} else {
				err := l.Replace(id, core.Mapping{1})
				if err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("replace: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	holders := 0
	for _, sid := range stolen {
		if sid != 0 {
			holders++
		}
	}
	lease, ok := l.Lease(id)
	if !ok {
		t.Fatal("migrating lease vanished")
	}
	if len(lease.Nodes) == 1 && lease.Nodes[0] == 1 {
		holders++
	} else if lease.Nodes[0] != 0 {
		t.Fatalf("lease on unexpected node %v", lease.Nodes)
	}
	if holders != 1 {
		t.Fatalf("node 1 has %d holders, want exactly 1", holders)
	}
}
