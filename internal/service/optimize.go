package service

import (
	"errors"
	"math"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// CostFn scores a feasible embedding; lower is better. This realizes the
// paper's note (§II, §VIII) that once the constraint-satisfaction stage
// yields multiple feasible embeddings, an application-specific objective
// can pick among them — the objective stays outside the mapping service
// proper.
type CostFn func(query, host *graph.Graph, m core.Mapping) float64

// TotalEdgeAttrCost sums a numeric attribute (e.g. "avgDelay") over the
// hosting edges an embedding uses: a latency-minimizing objective for
// overlay trees. Missing attributes count as zero.
func TotalEdgeAttrCost(attr string) CostFn {
	return func(query, host *graph.Graph, m core.Mapping) float64 {
		total := 0.0
		for i := 0; i < query.NumEdges(); i++ {
			qe := query.Edge(graph.EdgeID(i))
			if reID, ok := host.EdgeBetween(m[qe.From], m[qe.To]); ok {
				if v, ok := host.Edge(reID).Attrs.Float(attr); ok {
					total += v
				}
			}
		}
		return total
	}
}

// MaxEdgeAttrCost scores an embedding by its worst hosting edge — a
// bottleneck objective (minimize the maximum link delay).
func MaxEdgeAttrCost(attr string) CostFn {
	return func(query, host *graph.Graph, m core.Mapping) float64 {
		worst := 0.0
		for i := 0; i < query.NumEdges(); i++ {
			qe := query.Edge(graph.EdgeID(i))
			if reID, ok := host.EdgeBetween(m[qe.From], m[qe.To]); ok {
				if v, ok := host.Edge(reID).Attrs.Float(attr); ok && v > worst {
					worst = v
				}
			}
		}
		return worst
	}
}

// SpreadCost counts how many distinct host *regions* (string attribute on
// nodes) an embedding touches, negated so that maximizing spread ranks
// first — a fault-tolerance objective for monitoring placements.
func SpreadCost(regionAttr string) CostFn {
	return func(query, host *graph.Graph, m core.Mapping) float64 {
		regions := map[string]bool{}
		for _, r := range m {
			if name, ok := host.Node(r).Attrs.Text(regionAttr); ok {
				regions[name] = true
			}
		}
		return -float64(len(regions))
	}
}

// ErrNoMappings is returned by SelectBest on an empty candidate set.
var ErrNoMappings = errors.New("service: no mappings to select from")

// SelectBest returns the minimum-cost embedding among candidates and its
// cost.
func SelectBest(query, host *graph.Graph, candidates []core.Mapping, cost CostFn) (core.Mapping, float64, error) {
	if len(candidates) == 0 {
		return nil, 0, ErrNoMappings
	}
	best := -1
	bestCost := math.Inf(1)
	for i, m := range candidates {
		if c := cost(query, host, m); c < bestCost {
			best, bestCost = i, c
		}
	}
	return candidates[best], bestCost, nil
}
