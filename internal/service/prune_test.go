package service

import (
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// TestLedgerPrune pins the expiry sweep: a host saturated by a windowed
// lease frees up once the window ends, and Prune actually drops the
// expired record instead of leaving it to accumulate.
func TestLedgerPrune(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{0, 1}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	open, err := l.Allocate(core.Mapping{2}) // open-ended: must survive every prune
	if err != nil {
		t.Fatal(err)
	}

	if got := len(l.SaturatedNodes()); got != 3 {
		t.Fatalf("during window: %d saturated nodes, want 3", got)
	}
	if pruned := l.Prune(now); len(pruned) != 0 {
		t.Fatalf("prune before expiry removed %v, want none", pruned)
	}
	if _, ok := l.Lease(id); !ok {
		t.Fatal("live windowed lease pruned")
	}

	// The window ends: the hosts free up and the sweep drops the record.
	now = end
	if got := l.SaturatedNodes(); len(got) != 1 || got[0] != graph.NodeID(2) {
		t.Fatalf("after window: saturated = %v, want just node 2", got)
	}
	if pruned := l.Prune(now); len(pruned) != 1 || pruned[0] != id {
		t.Fatalf("prune after expiry removed %v, want [%d]", pruned, id)
	}
	if _, ok := l.Lease(id); ok {
		t.Fatal("expired lease still present after Prune")
	}
	if _, ok := l.Lease(open); !ok {
		t.Fatal("open-ended lease wrongly pruned")
	}

	// The freed hosts are allocatable again.
	if _, err := l.AllocateWindow(core.Mapping{0, 1}, now, now.Add(time.Hour)); err != nil {
		t.Fatalf("re-allocating freed hosts: %v", err)
	}
}

// TestLedgerPruneIdempotent pins that repeated sweeps are safe and that
// prune counts accumulate one per expired lease.
func TestLedgerPruneIdempotent(t *testing.T) {
	l := NewLedger()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		win := base.Add(time.Duration(i) * time.Minute)
		if _, err := l.AllocateWindow(core.Mapping{graph.NodeID(i)}, win, win.Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Prune(base.Add(3 * time.Minute)); len(got) != 3 {
		t.Fatalf("first sweep pruned %v, want 3 leases", got)
	}
	if got := l.Prune(base.Add(3 * time.Minute)); len(got) != 0 {
		t.Fatalf("second sweep pruned %v, want none", got)
	}
	if got := l.Prune(base.Add(time.Hour)); len(got) != 2 {
		t.Fatalf("final sweep pruned %v, want 2 leases", got)
	}
}
