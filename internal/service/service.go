package service

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/index"
)

// Algorithm names a mapping algorithm exposed by the service.
type Algorithm string

// The mapping algorithms of §V plus the parallel driver and the §VIII
// many-to-one extensions (node consolidation and link-to-path mapping).
const (
	AlgoECF         Algorithm = "ecf"
	AlgoRWB         Algorithm = "rwb"
	AlgoLNS         Algorithm = "lns"
	AlgoParallelECF Algorithm = "parallel-ecf"
	AlgoConsolidate Algorithm = "consolidate"
	// AlgoPathEmbed is the §VIII link-to-path extension: query edges ride
	// multi-hop hosting paths under composed metric windows instead of
	// single hosting edges. Tuned by Request.Path; witness paths come
	// back in Response.Paths.
	AlgoPathEmbed Algorithm = "path"
)

// PathRequestOptions shapes an AlgoPathEmbed request: the hop bound and
// the metric windows witness paths must satisfy. The zero value asks for
// the defaults (MaxHops from the service config, additive avgDelay
// bounded by the query edges' minDelay/maxDelay attributes).
type PathRequestOptions struct {
	// MaxHops bounds witness path length in edges (0 = service default;
	// negative values are rejected with ErrBadPathOptions).
	MaxHops int
	// DelayAttr / WindowLo / WindowHi rename the default single-metric
	// delay window (see core.PathOptions).
	DelayAttr string
	WindowLo  string
	WindowHi  string
	// Metrics, when non-empty, replaces the delay window with a
	// conjunction of composed-metric constraints.
	Metrics []core.MetricSpec
}

// Request is one embedding query submitted to the service.
type Request struct {
	// Query is the virtual network to embed.
	Query *graph.Graph
	// EdgeConstraint/NodeConstraint are constraint-language sources
	// (empty = unconstrained beyond topology).
	EdgeConstraint string
	NodeConstraint string
	// Algorithm selects the search strategy (default AlgoECF).
	Algorithm Algorithm
	// Timeout bounds the search; 0 means the service default.
	Timeout time.Duration
	// MaxResults caps returned embeddings (0 = all feasible).
	MaxResults int
	// Seed drives AlgoRWB.
	Seed int64
	// ExcludeReserved hides hosts with active reservations.
	ExcludeReserved bool
	// DedupeSymmetric collapses embeddings equivalent up to a query
	// automorphism (the Considine-Byers symmetry reduction, §II): a ring
	// query rotated around the same hosting nodes counts once.
	DedupeSymmetric bool
	// Consolidate tunes AlgoConsolidate (capacity/demand attribute names,
	// loopback semantics); ignored by the injective algorithms.
	Consolidate core.ConsolidateOptions
	// Path tunes AlgoPathEmbed (hop bound, metric windows); ignored by
	// the other algorithms.
	Path PathRequestOptions
	// Stop, when non-nil, is the cooperative-cancellation hook threaded
	// into core.Options.Stop: the search polls it on the deadline-check
	// cadence and halts early when it returns true. The async job engine
	// wires job cancellation through here.
	Stop func() bool
	// Objective selects the cost function an optimizing request minimizes
	// (ignored unless Optimize is set; see core.Objective).
	Objective core.Objective
	// Optimize turns the search into branch-and-bound: the response
	// carries the single minimum-Objective embedding plus its cost in
	// ObjectiveCost, with StatusComplete doubling as the optimality
	// proof. Supported by the injective search algorithms (ecf, rwb,
	// parallel-ecf); the others answer with a warning and ignore it.
	Optimize bool
	// OnImprove, when non-nil, receives every incumbent improvement of an
	// optimizing search by names — the anytime hook the job engine wires
	// to surface best-so-far on GET /jobs/{id}. Must be safe for
	// concurrent use (parallel-ecf improves from several workers).
	OnImprove func(NamedMapping, float64)
}

// NamedMapping renders an embedding by node names: query node name ->
// hosting node name.
type NamedMapping map[string]string

// PathWitness renders one query edge's witness hosting path by names:
// the query edge's endpoints, the hosting nodes the path crosses in
// order, and the first metric's composed value along it.
type PathWitness struct {
	Source string
	Target string
	Path   []string
	Cost   float64
}

// Response is the service's answer to a Request.
type Response struct {
	// Status classifies the result set per §VII-E: complete, partial or
	// inconclusive.
	Status core.Status
	// Mappings holds the embeddings found, as raw index mappings.
	Mappings []core.Mapping
	// Named holds the same embeddings keyed by node names.
	Named []NamedMapping
	// Paths holds, for AlgoPathEmbed answers, each mapping's witness
	// hosting paths (parallel to Mappings, one witness per query edge,
	// ordered by query edge ID). Nil for the other algorithms.
	Paths [][]PathWitness
	// ModelVersion identifies the hosting-network snapshot answered
	// against.
	ModelVersion uint64
	// Stats carries the search effort counters.
	Stats core.Stats
	// ObjectiveCost is the objective value of Mappings[0] when the
	// request optimized and a feasible embedding was found; nil otherwise.
	ObjectiveCost *float64
	// Elapsed is the end-to-end service time for the request.
	Elapsed time.Duration
	// Warnings flags suspicious-but-legal requests, e.g. a constraint
	// referencing a hosting-side attribute the model never defines.
	Warnings []string
}

// Service is the NETEMBED mapping service: it owns a network model,
// compiles constraint programs, dispatches to the §V algorithms and
// classifies results. It is safe for concurrent use.
type Service struct {
	model           *Model
	ledger          *Ledger
	defaultTimeout  time.Duration
	defaultPathHops int
}

// Config tunes a Service.
type Config struct {
	// DefaultTimeout applies when a Request carries none (default 30s).
	DefaultTimeout time.Duration
	// DefaultPathHops is the witness hop bound for AlgoPathEmbed requests
	// that carry none (default 3, the core default).
	DefaultPathHops int
}

// SlotsAttr is the hosting-node attribute carrying multi-tenant capacity:
// a node with slots=k can hold k concurrent reservations (default 1).
const SlotsAttr = "slots"

// New builds a Service around a model. Node capacities come live from the
// model's SlotsAttr attribute.
func New(model *Model, cfg Config) *Service {
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	s := &Service{
		model:           model,
		ledger:          NewLedger(),
		defaultTimeout:  cfg.DefaultTimeout,
		defaultPathHops: cfg.DefaultPathHops,
	}
	s.ledger.SetCapacity(func(r graph.NodeID) int {
		g, _ := model.Snapshot()
		if int(r) < g.NumNodes() {
			if slots, ok := g.Node(r).Attrs.Float(SlotsAttr); ok {
				return int(slots)
			}
		}
		return 1
	})
	return s
}

// Model exposes the underlying network model.
func (s *Service) Model() *Model { return s.model }

// Ledger exposes the reservation ledger.
func (s *Service) Ledger() *Ledger { return s.ledger }

// Request validation errors.
var (
	ErrNoQuery          = errors.New("service: request has no query network")
	ErrUnknownAlgorithm = errors.New("service: unknown algorithm")
	// ErrBadPathOptions rejects malformed AlgoPathEmbed tuning — today a
	// negative MaxHops, which must never reach the searcher (it used to
	// disable the hop bound entirely).
	ErrBadPathOptions = errors.New("service: bad path options")
)

// ReservedAttr marks hosts hidden from requests with ExcludeReserved; the
// lifecycle manager stamps it on saturated hosts when searching repair
// plans so migrations avoid other tenants.
const ReservedAttr = "netembedReserved"

// Embed answers one embedding request against the current model snapshot.
// The snapshot is acquired as an epoch (Model.AcquireIndexed) and released
// when the request finishes, so superseded snapshots retire as soon as
// their last in-flight request drains.
func (s *Service) Embed(req Request) (*Response, error) {
	host, idx, version := s.model.AcquireIndexed()
	defer s.model.Release(version)
	return s.embedOn(host, idx, version, req)
}

// BatchResult pairs one EmbedBatch item's answer with its error; exactly
// one of the fields is set.
type BatchResult struct {
	Response *Response
	Err      error
}

// EmbedBatch answers several embedding requests against one consistent
// model snapshot: the hosting network, capability index and version are
// taken once and shared by every item, so a batch of queries amortizes
// the snapshot (and the index the filters intersect) instead of racing
// the monitoring feed between items. Items run sequentially in order;
// per-item failures land in the matching BatchResult without aborting
// the rest. The shared version is returned alongside the results.
func (s *Service) EmbedBatch(reqs []Request) ([]BatchResult, uint64) {
	host, idx, version := s.model.AcquireIndexed()
	defer s.model.Release(version)
	out := make([]BatchResult, len(reqs))
	for i, req := range reqs {
		resp, err := s.embedOn(host, idx, version, req)
		out[i] = BatchResult{Response: resp, Err: err}
	}
	return out, version
}

// embedOn answers one request against a fixed (host, index, version)
// snapshot. The index may be nil (indexing disabled); when present it is
// threaded into core.Options so BuildFilters intersects strata instead
// of rescanning the host.
//
// keycomplete holds this function to core.Options: every Options field
// must be set here from fingerprinted request state (or be marked
// cachekey:ignore on its declaration), so an option that shapes answers
// cannot bypass the engine cache's request fingerprint.
//
//keycomplete:fingerprint core.Options
func (s *Service) embedOn(host *graph.Graph, idx *index.Index, version uint64, req Request) (*Response, error) {
	start := time.Now()
	if req.Query == nil {
		return nil, ErrNoQuery
	}
	edgeProg, nodeProg, err := compilePrograms(req.EdgeConstraint, req.NodeConstraint, req.ExcludeReserved)
	if err != nil {
		return nil, err
	}

	if req.ExcludeReserved {
		// Reservation marks only add node attributes — the structure the
		// index describes (degrees, adjacency) is untouched, so the index
		// stays valid for the marked clone.
		host = s.withReservationMarks(host)
	}

	if req.Algorithm == AlgoPathEmbed {
		return s.embedPath(host, idx, version, req, edgeProg, nodeProg, start)
	}

	newProblem := core.NewProblem
	if req.Algorithm == AlgoConsolidate {
		newProblem = core.NewConsolidatedProblem
	}
	p, err := newProblem(req.Query, host, edgeProg, nodeProg)
	if err != nil {
		return nil, err
	}

	opt := core.Options{
		Timeout:      req.Timeout,
		MaxSolutions: req.MaxResults,
		Seed:         req.Seed,
		Stop:         req.Stop,
		Index:        idx,
		Objective:    req.Objective,
		Optimize:     req.Optimize,
	}
	if opt.Timeout == 0 {
		opt.Timeout = s.defaultTimeout
	}
	var optWarnings []string
	optimizing := req.Optimize && req.Objective.Enabled()
	switch {
	case req.Optimize && !req.Objective.Enabled():
		optWarnings = append(optWarnings,
			"optimize requested without an objective; running plain enumeration")
	case optimizing && (req.Algorithm == AlgoLNS || req.Algorithm == AlgoConsolidate):
		optWarnings = append(optWarnings,
			fmt.Sprintf("algorithm %q does not support optimizing search; objective ignored", req.Algorithm))
		opt.Optimize, opt.Objective, optimizing = false, core.Objective{}, false
	}
	if optimizing {
		optWarnings = append(optWarnings, objectiveAttrWarnings(host, req.Objective)...)
	}
	if optimizing && req.OnImprove != nil {
		onImprove := req.OnImprove
		opt.OnImprove = func(m core.Mapping, cost float64) {
			onImprove(nameMapping(req.Query, host, m), cost)
		}
	}

	var res *core.Result
	switch req.Algorithm {
	case AlgoECF, "":
		res = core.ECF(p, opt)
	case AlgoRWB:
		res = core.RWB(p, opt)
	case AlgoLNS:
		res = core.LNS(p, opt)
	case AlgoParallelECF:
		res = core.ParallelECF(p, opt)
	case AlgoConsolidate:
		res = core.Consolidate(p, opt, req.Consolidate)
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownAlgorithm, req.Algorithm)
	}

	resp := &Response{
		Status:       res.Status,
		Mappings:     res.Solutions,
		ModelVersion: version,
		Stats:        res.Stats,
		Elapsed:      time.Since(start),
		Warnings:     append(optWarnings, attrWarnings(host, edgeProg, nodeProg)...),
	}
	if optimizing && len(res.Solutions) > 0 {
		cost := res.Cost
		resp.ObjectiveCost = &cost
	}
	if req.DedupeSymmetric && len(resp.Mappings) > 1 {
		autos, complete := core.AutomorphismsBounded(req.Query, core.Options{
			Timeout:      2 * time.Second,
			MaxSolutions: 5000,
			Stop:         req.Stop, // canceled jobs skip the dedupe pass too
		})
		if complete {
			resp.Mappings = core.CanonicalSolutions(resp.Mappings, autos)
		} else {
			resp.Warnings = append(resp.Warnings,
				"symmetry dedupe skipped: automorphism group too large to enumerate")
		}
	}
	resp.Named = make([]NamedMapping, len(resp.Mappings))
	for i, m := range resp.Mappings {
		resp.Named[i] = nameMapping(req.Query, host, m)
	}
	return resp, nil
}

// embedPath answers an AlgoPathEmbed request: query edges map onto
// hosting paths of at most MaxHops edges whose composed metrics satisfy
// the query edge's windows (§VIII link-to-path). The capability index, if
// present, supplies the hop-bounded reachability oracle; witness paths
// come back in Response.Paths, by names, one per query edge and ordered
// by query edge ID.
//
//keycomplete:fingerprint core.PathOptions
func (s *Service) embedPath(host *graph.Graph, idx *index.Index, version uint64, req Request, edgeProg, nodeProg *expr.Program, start time.Time) (*Response, error) {
	if req.Path.MaxHops < 0 {
		return nil, fmt.Errorf("%w: MaxHops %d is negative", ErrBadPathOptions, req.Path.MaxHops)
	}
	p, err := core.NewProblem(req.Query, host, nil, nodeProg)
	if err != nil {
		return nil, err
	}
	popt := core.PathOptions{
		MaxHops:      req.Path.MaxHops,
		DelayAttr:    req.Path.DelayAttr,
		WindowLo:     req.Path.WindowLo,
		WindowHi:     req.Path.WindowHi,
		Metrics:      req.Path.Metrics,
		Timeout:      req.Timeout,
		MaxSolutions: req.MaxResults,
		Stop:         req.Stop,
		Index:        idx,
	}
	if popt.MaxHops == 0 {
		popt.MaxHops = s.defaultPathHops // 0 falls through to the core default
	}
	if popt.Timeout == 0 {
		popt.Timeout = s.defaultTimeout
	}
	res := core.PathEmbed(p, popt)

	resp := &Response{
		Status:       res.Status,
		ModelVersion: version,
		Stats:        res.Stats,
		Elapsed:      time.Since(start),
		Warnings:     attrWarnings(host, nodeProg),
	}
	resp.Warnings = append(resp.Warnings, pathAttrWarnings(host, req.Query, req.Path, popt.EffectiveMetrics())...)
	if edgeProg != nil {
		resp.Warnings = append(resp.Warnings,
			"path mode does not consult the edge constraint: witness acceptance is defined by the metric windows")
	}
	if req.DedupeSymmetric {
		resp.Warnings = append(resp.Warnings,
			"symmetry dedupe is not applied in path mode")
	}
	if req.Optimize {
		resp.Warnings = append(resp.Warnings,
			"path mode does not support optimizing search; objective ignored")
	}
	resp.Mappings = make([]core.Mapping, len(res.Solutions))
	resp.Named = make([]NamedMapping, len(res.Solutions))
	resp.Paths = make([][]PathWitness, len(res.Solutions))
	for i, sol := range res.Solutions {
		resp.Mappings[i] = sol.Nodes
		resp.Named[i] = nameMapping(req.Query, host, sol.Nodes)
		witnesses := make([]PathWitness, 0, len(sol.Paths))
		for e := 0; e < req.Query.NumEdges(); e++ {
			path, ok := sol.Paths[graph.EdgeID(e)]
			if !ok {
				continue
			}
			qe := req.Query.Edge(graph.EdgeID(e))
			w := PathWitness{
				Source: req.Query.Node(qe.From).Name,
				Target: req.Query.Node(qe.To).Name,
				Path:   make([]string, len(path.Nodes)),
				Cost:   path.Cost,
			}
			for j, r := range path.Nodes {
				w.Path[j] = host.Node(r).Name
			}
			witnesses = append(witnesses, w)
		}
		resp.Paths[i] = witnesses
	}
	return resp, nil
}

// pathAttrWarnings flags path-metric attribute names that nothing
// defines — the same silent-rejection footgun attrWarnings surfaces for
// constraint programs: a typo'd composed attribute (avgDeley) makes
// every hosting edge contribute MissingEdge, and a typo'd window name
// leaves the spec vacuously unconstrained. Window names are only
// checked when the caller set them explicitly; absent windows on the
// default spec legitimately mean "any path within MaxHops".
func pathAttrWarnings(host, query *graph.Graph, opts PathRequestOptions, specs []core.MetricSpec) []string {
	var warnings []string
	edgeHas := func(g *graph.Graph, attr string) bool {
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(graph.EdgeID(i)).Attrs.Has(attr) {
				return true
			}
		}
		return g.NumEdges() == 0
	}
	for _, spec := range specs {
		if !edgeHas(host, spec.Attr) {
			warnings = append(warnings,
				fmt.Sprintf("path metric composes rEdge.%s but no hosting edge defines %q", spec.Attr, spec.Attr))
		}
	}
	explicit := map[string]bool{}
	for _, name := range []string{opts.WindowLo, opts.WindowHi} {
		if name != "" {
			explicit[name] = true
		}
	}
	for _, spec := range opts.Metrics {
		for _, name := range []string{spec.LoAttr, spec.HiAttr} {
			if name != "" {
				explicit[name] = true
			}
		}
	}
	names := make([]string, 0, len(explicit))
	for name := range explicit {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !edgeHas(query, name) {
			warnings = append(warnings,
				fmt.Sprintf("path window reads vEdge.%s but no query edge defines %q", name, name))
		}
	}
	return warnings
}

// attrWarnings flags hosting-side attribute references that no node or
// edge of the model defines: under three-valued logic a typo like
// rEdge.avgDeley silently rejects every pairing, so surface it.
func attrWarnings(host *graph.Graph, progs ...*expr.Program) []string {
	var warnings []string
	edgeHas := func(attr string) bool {
		for i := 0; i < host.NumEdges(); i++ {
			if host.Edge(graph.EdgeID(i)).Attrs.Has(attr) {
				return true
			}
		}
		return host.NumEdges() == 0
	}
	nodeHas := func(attr string) bool { return hostNodeDefines(host, attr) }
	for _, prog := range progs {
		if prog == nil {
			continue
		}
		for _, ref := range prog.Refs() {
			switch ref.Object {
			case expr.ObjREdge:
				if !edgeHas(ref.Attr) {
					warnings = append(warnings,
						fmt.Sprintf("constraint references %s but no hosting edge defines %q", ref, ref.Attr))
				}
			case expr.ObjRSource, expr.ObjRTarget, expr.ObjRNode:
				if ref.Attr == ReservedAttr {
					continue // injected by ExcludeReserved
				}
				if !nodeHas(ref.Attr) {
					warnings = append(warnings,
						fmt.Sprintf("constraint references %s but no hosting node defines %q", ref, ref.Attr))
				}
			}
		}
	}
	return warnings
}

// hostNodeDefines reports whether any hosting node carries attr
// (vacuously true on an empty host, matching the constraint-warning
// convention: nothing to contradict).
func hostNodeDefines(host *graph.Graph, attr string) bool {
	for i := 0; i < host.NumNodes(); i++ {
		if host.Node(graph.NodeID(i)).Attrs.Has(attr) {
			return true
		}
	}
	return host.NumNodes() == 0
}

// objectiveAttrWarnings flags an optimizing request whose objective reads
// a host-node attribute nothing defines — the same silent footgun
// attrWarnings surfaces for constraint programs: a typo ("prise" for
// "price") degenerates every term to its missing-attribute fallback, so
// the objective is constant and the 'optimal' mapping arbitrary. The one
// legitimate silence is energy with its implicit "active" default: no
// active marks anywhere is the documented consolidate-from-cold mode
// (every used host counts), so only an explicitly named attribute warns.
func objectiveAttrWarnings(host *graph.Graph, obj core.Objective) []string {
	norm := obj.Normalized()
	if norm.Kind == core.ObjectiveEnergy && obj.Attr == "" {
		return nil
	}
	if hostNodeDefines(host, norm.Attr) {
		return nil
	}
	return []string{fmt.Sprintf(
		"objective reads rNode.%s but no hosting node defines %q", norm.Attr, norm.Attr)}
}

// compilePrograms compiles the request's constraint sources, appending the
// reservation guard to the node constraint when requested.
func compilePrograms(edgeSrc, nodeSrc string, excludeReserved bool) (*expr.Program, *expr.Program, error) {
	var edgeProg, nodeProg *expr.Program
	if strings.TrimSpace(edgeSrc) != "" {
		p, err := expr.Compile(edgeSrc)
		if err != nil {
			return nil, nil, fmt.Errorf("service: edge constraint: %w", err)
		}
		edgeProg = p
	}
	if excludeReserved {
		guard := "!has(rNode." + ReservedAttr + ")"
		if strings.TrimSpace(nodeSrc) != "" {
			nodeSrc = "(" + nodeSrc + ") && " + guard
		} else {
			nodeSrc = guard
		}
	}
	if strings.TrimSpace(nodeSrc) != "" {
		p, err := expr.Compile(nodeSrc)
		if err != nil {
			return nil, nil, fmt.Errorf("service: node constraint: %w", err)
		}
		nodeProg = p
	}
	return edgeProg, nodeProg, nil
}

// withReservationMarks returns a host snapshot where every node whose
// slots are all leased carries the reservation attribute.
func (s *Service) withReservationMarks(host *graph.Graph) *graph.Graph {
	reserved := s.ledger.SaturatedNodes()
	if len(reserved) == 0 {
		return host
	}
	marked := host.Clone()
	for _, r := range reserved {
		if int(r) < marked.NumNodes() {
			marked.Node(r).Attrs = marked.Node(r).Attrs.SetBool(ReservedAttr, true)
		}
	}
	return marked
}

func nameMapping(query, host *graph.Graph, m core.Mapping) NamedMapping {
	out := make(NamedMapping, len(m))
	for q, r := range m {
		out[query.Node(graph.NodeID(q)).Name] = host.Node(r).Name
	}
	return out
}
