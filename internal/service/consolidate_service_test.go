package service

import (
	"fmt"
	"testing"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
)

// clusterHost is a triangle of machines with capacity 3 and 10ms links.
func clusterHost() *graph.Graph {
	g := graph.NewUndirected()
	for i := 0; i < 3; i++ {
		g.AddNode(fmt.Sprintf("machine%d", i), graph.Attrs{}.SetNum("capacity", 3))
	}
	link := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 9).SetNum("avgDelay", 10).SetNum("maxDelay", 11)
	}
	g.MustAddEdge(0, 1, link())
	g.MustAddEdge(1, 2, link())
	g.MustAddEdge(0, 2, link())
	return g
}

func ringQuery(n int) *graph.Graph {
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i), graph.Attrs{}.SetNum("demand", 1))
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), graph.Attrs{}.SetNum("maxDelay", 40))
	}
	return g
}

func TestServiceConsolidateAlgorithm(t *testing.T) {
	svc := New(NewModel(clusterHost()), Config{})
	// A 7-node ring cannot embed injectively into a 3-host triangle, but
	// fits with consolidation (capacity 3×3 = 9 >= 7).
	resp, err := svc.Embed(Request{
		Query:          ringQuery(7),
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      AlgoConsolidate,
		MaxResults:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no consolidated embedding via the service")
	}
	host, _ := svc.Model().Snapshot()
	p, err := core.NewConsolidatedProblem(ringQuery(7), host,
		mustEdgeProg(t, "rEdge.maxDelay <= vEdge.maxDelay"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Mappings {
		if err := p.VerifyConsolidated(m, core.ConsolidateOptions{}); err != nil {
			t.Fatalf("service-returned consolidated mapping invalid: %v", err)
		}
	}
	// Named mappings must cover all seven query nodes.
	if len(resp.Named[0]) != 7 {
		t.Fatalf("named mapping has %d entries, want 7", len(resp.Named[0]))
	}
}

func TestServiceInjectiveRejectsOversizedQuery(t *testing.T) {
	svc := New(NewModel(clusterHost()), Config{})
	_, err := svc.Embed(Request{
		Query:          ringQuery(7),
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      AlgoECF,
	})
	if err == nil {
		t.Fatal("injective algorithm accepted an oversized query")
	}
}

func TestServiceConsolidateCustomAttrs(t *testing.T) {
	host := clusterHost()
	for i := 0; i < 3; i++ {
		host.Node(graph.NodeID(i)).Attrs = host.Node(graph.NodeID(i)).Attrs.SetNum("slots", 2)
	}
	q := ringQuery(5)
	for i := 0; i < 5; i++ {
		q.Node(graph.NodeID(i)).Attrs = q.Node(graph.NodeID(i)).Attrs.SetNum("vcpus", 1)
	}
	svc := New(NewModel(host), Config{})
	resp, err := svc.Embed(Request{
		Query:          q,
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      AlgoConsolidate,
		MaxResults:     1,
		Consolidate:    core.ConsolidateOptions{CapacityAttr: "slots", DemandAttr: "vcpus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no embedding under renamed capacity attributes")
	}
	// Count load per host: no machine may exceed 2 slots.
	load := map[graph.NodeID]int{}
	for _, r := range resp.Mappings[0] {
		load[r]++
	}
	for r, n := range load {
		if n > 2 {
			t.Fatalf("host %d packed %d nodes over its 2 slots", r, n)
		}
	}
}

func mustEdgeProg(t *testing.T, src string) *expr.Program {
	t.Helper()
	prog, _, err := compilePrograms(src, "", false)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
