package service

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/topo"
)

func applyHost(n int, rng *rand.Rand) *graph.Graph {
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("h%d", i), graph.Attrs{}.SetNum("cpu", float64(1+rng.Intn(4))))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.4 {
				g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.SetNum("avgDelay", rng.Float64()*100))
			}
		}
	}
	return g
}

func TestModelApply(t *testing.T) {
	g := applyHost(8, rand.New(rand.NewSource(1)))
	m := NewModel(g)
	m.EnableIndex(index.Config{})
	if !m.Indexed() {
		t.Fatal("EnableIndex did not attach an index")
	}

	v, err := m.Apply(&graph.Delta{
		SetNodeAttrs: []graph.NodeAttrUpdate{{Node: "h0", Set: graph.Attrs{}.SetNum("cpu", 9)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}
	g2, idx, v2 := m.SnapshotIndexed()
	if v2 != 2 || idx == nil || idx.Version() != 2 {
		t.Fatalf("snapshot (v=%d, idx=%v) out of lockstep", v2, idx)
	}
	if cpu, _ := g2.Node(0).Attrs.Float("cpu"); cpu != 9 {
		t.Fatalf("cpu = %v, want 9", cpu)
	}
	if !idx.AttrAtLeast("cpu", 9).Has(0) {
		t.Error("index did not absorb the attribute delta")
	}
	// The pre-delta snapshot is untouched.
	if cpu, _ := g.Node(0).Attrs.Float("cpu"); cpu != 1+0 && cpu == 9 {
		t.Error("delta mutated the old snapshot")
	}

	// A failing delta leaves version and graph alone.
	if _, err := m.Apply(&graph.Delta{RemoveNodes: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown node")
	}
	if m.Version() != 2 {
		t.Error("failed Apply bumped the version")
	}

	// An empty delta is a no-op: same version back, no cache-invalidating
	// bump, index untouched.
	for _, d := range []*graph.Delta{nil, {}} {
		v, err := m.Apply(d)
		if err != nil || v != 2 {
			t.Fatalf("Apply(empty) = (%d, %v), want (2, nil)", v, err)
		}
	}
	if _, idx, v := m.SnapshotIndexed(); v != 2 || idx.Version() != 2 {
		t.Errorf("empty delta moved the snapshot to v=%d/idx=%d", v, idx.Version())
	}
}

// TestMonitorStepRetriesPastConcurrentDelta pins Monitor.Step's behavior
// when another writer invalidates its snapshot mid-round: the round is
// re-measured against a fresh snapshot, not silently discarded.
func TestMonitorStepRetriesPastConcurrentDelta(t *testing.T) {
	m := NewModel(applyHost(8, rand.New(rand.NewSource(3))))
	mo := NewMonitor(m, MonitorConfig{Seed: 3, EdgeFraction: 1})

	// Race one structural delta against monitor rounds: whichever
	// interleaving happens, every Step must land its measurements.
	g, _ := m.Snapshot()
	e := g.Edge(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Apply(&graph.Delta{RemoveEdges: []graph.EdgeRef{{
			Source: g.Node(e.From).Name, Target: g.Node(e.To).Name,
		}}})
	}()
	vBefore := m.Version()
	for i := 0; i < 5; i++ {
		if v := mo.Step(); v <= vBefore {
			t.Fatalf("step %d published nothing (version %d after %d)", i, v, vBefore)
		} else {
			vBefore = v
		}
	}
	<-done
}

// TestConcurrentApplySnapshotUpdateIf races every Model writer against
// snapshot readers under -race: Apply publishing attribute and edge
// deltas, Mutate cloning, UpdateIf doing optimistic swaps, and readers
// asserting the (graph, index, version) triple stays in lockstep.
func TestConcurrentApplySnapshotUpdateIf(t *testing.T) {
	m := NewModel(applyHost(16, rand.New(rand.NewSource(2))))
	m.EnableIndex(index.Config{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var applied, swapped atomic.Int64

	wg.Add(1)
	go func() { // delta writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := &graph.Delta{SetNodeAttrs: []graph.NodeAttrUpdate{{
				Node: fmt.Sprintf("h%d", rng.Intn(16)),
				Set:  graph.Attrs{}.SetNum("cpu", float64(1+rng.Intn(8))),
			}}}
			if _, err := m.Apply(d); err != nil {
				t.Error(err)
				return
			}
			applied.Add(1)
		}
	}()

	wg.Add(1)
	go func() { // structural delta writer: toggles one edge
		defer wg.Done()
		g0, _ := m.Snapshot()
		u0, _ := g0.NodeByName("h0")
		v0, _ := g0.NodeByName("h1")
		present := g0.HasEdge(u0, v0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var d graph.Delta
			if present {
				d.RemoveEdges = []graph.EdgeRef{{Source: "h0", Target: "h1"}}
			} else {
				d.AddEdges = []graph.EdgeSpec{{Source: "h0", Target: "h1"}}
			}
			if _, err := m.Apply(&d); err != nil {
				t.Error(err)
				return
			}
			present = !present
		}
	}()

	var swapTries atomic.Int64
	wg.Add(1)
	go func() { // optimistic whole-graph swapper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g, v := m.Snapshot()
			clone := g.Clone()
			swapTries.Add(1)
			if _, ok := m.UpdateIf(clone, v); ok {
				swapped.Add(1)
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, idx, v := m.SnapshotIndexed()
				if idx.Version() != v {
					t.Errorf("index version %d != model version %d", idx.Version(), v)
					return
				}
				if idx.NumNodes() != g.NumNodes() {
					t.Errorf("index universe %d != graph %d", idx.NumNodes(), g.NumNodes())
					return
				}
				// The snapshot graph must stay self-consistent even while
				// writers publish successors.
				if err := g.Validate(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	// The optimistic swapper may be starved by the delta writers while
	// they run (losing every version race is legal); it must at least
	// have been attempting, and must succeed once the contention stops.
	if applied.Load() == 0 || swapTries.Load() == 0 {
		t.Fatalf("writers made no progress (applied=%d, swap attempts=%d)", applied.Load(), swapTries.Load())
	}
	g, v := m.Snapshot()
	if _, ok := m.UpdateIf(g.Clone(), v); !ok {
		t.Fatal("uncontended UpdateIf failed")
	}
	if _, idx, v2 := m.SnapshotIndexed(); idx.Version() != v2 {
		t.Fatal("index out of lockstep after UpdateIf")
	}
	t.Logf("applied=%d swapAttempts=%d swapWins=%d", applied.Load(), swapTries.Load(), swapped.Load())
}

// TestDeltaMidSearchKeepsSnapshot pins the copy-on-write guarantee end to
// end: a search that began on version v answers against version v's graph
// even when deltas land mid-search; its mappings verify against the
// retained historical snapshot, never the moving head.
func TestDeltaMidSearchKeepsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewModel(applyHost(20, rng))
	m.EnableIndex(index.Config{})
	svc := New(m, Config{})

	// Retain every published graph so responses can be checked against
	// the exact snapshot they claim to have answered.
	history := map[uint64]*graph.Graph{}
	var histMu sync.Mutex
	g, v := m.Snapshot()
	history[v] = g

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // monitor hammering deltas mid-search
		defer wg.Done()
		r := rand.New(rand.NewSource(8))
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := &graph.Delta{SetNodeAttrs: []graph.NodeAttrUpdate{{
				Node: fmt.Sprintf("h%d", r.Intn(20)),
				Set:  graph.Attrs{}.SetNum("cpu", float64(1+r.Intn(8))),
			}}}
			histMu.Lock()
			if _, err := m.Apply(d); err != nil {
				histMu.Unlock()
				t.Error(err)
				return
			}
			ng, nv := m.Snapshot()
			history[nv] = ng
			histMu.Unlock()
			time.Sleep(100 * time.Microsecond) // bound the history growth
		}
	}()

	for i := 0; i < 30; i++ {
		resp, err := svc.Embed(Request{
			Query:          topo.Ring(5),
			NodeConstraint: "rNode.cpu >= 1",
			MaxResults:     20,
		})
		if err != nil {
			t.Fatal(err)
		}
		histMu.Lock()
		snap := history[resp.ModelVersion]
		histMu.Unlock()
		if snap == nil {
			t.Fatalf("response claims unknown model version %d", resp.ModelVersion)
		}
		p, err := core.NewProblem(topo.Ring(5), snap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, mp := range resp.Mappings {
			if err := p.Verify(mp); err != nil {
				t.Fatalf("mapping does not verify against its own snapshot: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
