package service

import (
	"errors"
	"time"

	"netembed/internal/graph"
)

// NegotiateRequest drives the interactive adjustment loop of §III: "an
// interactive service would facilitate the adjustment (negotiation) of
// the requirements if the query cannot be satisfied". Starting from the
// caller's (possibly over-constrained) query, each round widens the delay
// windows on every query edge by Factor and retries, until an embedding
// appears or MaxRounds is exhausted.
type NegotiateRequest struct {
	Request
	// LoAttr/HiAttr name the window attributes to relax (defaults
	// "minDelay"/"maxDelay").
	LoAttr, HiAttr string
	// Factor scales the window half-width per round (default 1.5): the
	// window [lo, hi] becomes [mid - f·w/2, hi' = mid + f·w/2], clamped
	// below at zero.
	Factor float64
	// MaxRounds bounds the relaxation (default 5).
	MaxRounds int
}

// NegotiateResponse reports the embedding and how much relaxation it
// took.
type NegotiateResponse struct {
	Response
	// Rounds counts relaxations applied: 0 means the original query was
	// feasible as submitted.
	Rounds int
	// RelaxedQuery is the query actually satisfied (the caller's own
	// query is never mutated).
	RelaxedQuery *graph.Graph
}

// ErrNegotiationFailed is returned when no relaxation level within
// MaxRounds admits an embedding.
var ErrNegotiationFailed = errors.New("service: query infeasible even after relaxation")

// Negotiate runs the §III negotiation loop. The per-round search reuses
// the request's algorithm and splits its timeout across rounds.
func (s *Service) Negotiate(req NegotiateRequest) (*NegotiateResponse, error) {
	if req.Query == nil {
		return nil, ErrNoQuery
	}
	if req.LoAttr == "" {
		req.LoAttr = "minDelay"
	}
	if req.HiAttr == "" {
		req.HiAttr = "maxDelay"
	}
	if req.Factor == 0 {
		req.Factor = 1.5
	}
	if req.MaxRounds == 0 {
		req.MaxRounds = 5
	}
	if req.MaxResults == 0 {
		req.MaxResults = 1
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.defaultTimeout
	}
	perRound := timeout / time.Duration(req.MaxRounds+1)
	if perRound <= 0 {
		perRound = time.Millisecond
	}

	current := req.Query
	for round := 0; round <= req.MaxRounds; round++ {
		r := req.Request
		r.Query = current
		r.Timeout = perRound
		resp, err := s.Embed(r)
		if err != nil {
			return nil, err
		}
		if len(resp.Mappings) > 0 {
			return &NegotiateResponse{
				Response:     *resp,
				Rounds:       round,
				RelaxedQuery: current,
			}, nil
		}
		if round == req.MaxRounds {
			break
		}
		current = relaxWindows(current, req.LoAttr, req.HiAttr, req.Factor)
	}
	return nil, ErrNegotiationFailed
}

// relaxWindows clones q and widens every [lo, hi] window around its
// midpoint by factor, clamping the low end at zero.
func relaxWindows(q *graph.Graph, loAttr, hiAttr string, factor float64) *graph.Graph {
	out := q.Clone()
	for i := 0; i < out.NumEdges(); i++ {
		attrs := out.Edge(graph.EdgeID(i)).Attrs
		lo, okLo := attrs.Float(loAttr)
		hi, okHi := attrs.Float(hiAttr)
		if !okLo || !okHi || hi < lo {
			continue
		}
		mid := (lo + hi) / 2
		half := (hi - lo) / 2 * factor
		if half == 0 {
			half = mid * (factor - 1) // degenerate point window: open it up
		}
		newLo := mid - half
		if newLo < 0 {
			newLo = 0
		}
		attrs.SetNum(loAttr, newLo)
		attrs.SetNum(hiAttr, mid+half)
	}
	return out
}
