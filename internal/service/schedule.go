package service

import (
	"errors"
	"time"

	"netembed/internal/core"
)

// ScheduleRequest asks for the earliest time window in which an embedding
// becomes feasible — the §VIII "integrated mapping and scheduling"
// extension: resources already leased to other embeddings are unavailable
// within their windows, so the scheduler slides a candidate window across
// the horizon until the query fits.
type ScheduleRequest struct {
	Request
	// Duration is how long the embedding will hold its resources.
	Duration time.Duration
	// Horizon bounds how far into the future to search (default 24h).
	Horizon time.Duration
	// Step is the window-sliding granularity (default 10m).
	Step time.Duration
}

// ScheduleResponse reports the first feasible window.
type ScheduleResponse struct {
	// Start is when the embedding can begin.
	Start time.Time
	// Mapping is a feasible embedding during [Start, Start+Duration).
	Mapping core.Mapping
	Named   NamedMapping
	// Lease is the reservation taken out for the window.
	Lease LeaseID
	// WindowsTried counts how many candidate windows were examined.
	WindowsTried int
}

// ErrNoWindow is returned when no feasible window exists in the horizon.
var ErrNoWindow = errors.New("service: no feasible window within the horizon")

// Schedule finds the earliest window of the requested duration in which
// the query can be embedded given existing leases, reserves it, and
// returns the mapping plus lease. The request's algorithm/constraints are
// honored; ExcludeReserved is implied (that is the point).
func (s *Service) Schedule(req ScheduleRequest, now time.Time) (*ScheduleResponse, error) {
	if req.Query == nil {
		return nil, ErrNoQuery
	}
	if req.Duration <= 0 {
		return nil, errors.New("service: schedule needs a positive duration")
	}
	if req.Horizon == 0 {
		req.Horizon = 24 * time.Hour
	}
	if req.Step == 0 {
		req.Step = 10 * time.Minute
	}

	edgeProg, nodeProg, err := compilePrograms(req.EdgeConstraint, req.NodeConstraint, true)
	if err != nil {
		return nil, err
	}

	host, _ := s.model.Snapshot()
	tried := 0
	for offset := time.Duration(0); offset <= req.Horizon; offset += req.Step {
		start := now.Add(offset)
		end := start.Add(req.Duration)
		tried++

		// Nodes with no free slot at any point of the candidate window are
		// hidden from the search.
		busy := s.ledger.SaturatedInWindow(start, end)
		snapshot := host
		if len(busy) > 0 {
			snapshot = host.Clone()
			for _, r := range busy {
				snapshot.Node(r).Attrs = snapshot.Node(r).Attrs.SetBool(ReservedAttr, true)
			}
		}

		p, err := core.NewProblem(req.Query, snapshot, edgeProg, nodeProg)
		if err != nil {
			return nil, err
		}
		opt := core.Options{Timeout: req.Timeout, MaxSolutions: 1, Seed: req.Seed}
		if opt.Timeout == 0 {
			opt.Timeout = s.defaultTimeout
		}
		var res *core.Result
		switch req.Algorithm {
		case AlgoLNS:
			res = core.LNS(p, opt)
		case AlgoRWB:
			res = core.RWB(p, opt)
		default:
			res = core.ECF(p, opt)
		}
		if len(res.Solutions) == 0 {
			continue
		}
		m := res.Solutions[0]
		lease, err := s.ledger.AllocateWindow(m, start, end)
		if err != nil {
			// Raced with a concurrent allocation: try the next window.
			continue
		}
		return &ScheduleResponse{
			Start:        start,
			Mapping:      m,
			Named:        nameMapping(req.Query, snapshot, m),
			Lease:        lease,
			WindowsTried: tried,
		}, nil
	}
	return nil, ErrNoWindow
}
