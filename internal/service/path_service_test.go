package service

import (
	"errors"
	"strings"
	"testing"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/index"
)

// pathServiceHost builds a line host h0-h1-h2-h3 with 10ms hops — the
// minimal topology where a windowed query edge must ride a 2-hop path.
func pathServiceHost() *graph.Graph {
	g := graph.NewUndirected()
	for _, name := range []string{"h0", "h1", "h2", "h3"} {
		g.AddNode(name, nil)
	}
	for i := 0; i < 3; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Attrs{}.SetNum("avgDelay", 10))
	}
	return g
}

// pathServiceQuery is a single query edge a-b demanding 15..25ms: no
// single 10ms hop qualifies, any 2-hop path (20ms) does.
func pathServiceQuery() *graph.Graph {
	q := graph.NewUndirected()
	q.AddNode("a", nil)
	q.AddNode("b", nil)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25))
	return q
}

func TestServicePathEmbedEndToEnd(t *testing.T) {
	model := NewModel(pathServiceHost())
	model.EnableIndex(index.Config{})
	svc := New(model, Config{})
	resp, err := svc.Embed(Request{
		Query:     pathServiceQuery(),
		Algorithm: AlgoPathEmbed,
		Path:      PathRequestOptions{MaxHops: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != core.StatusComplete || len(resp.Mappings) == 0 {
		t.Fatalf("status %v, %d mappings", resp.Status, len(resp.Mappings))
	}
	if len(resp.Paths) != len(resp.Mappings) {
		t.Fatalf("paths %d not parallel to mappings %d", len(resp.Paths), len(resp.Mappings))
	}
	for i, witnesses := range resp.Paths {
		if len(witnesses) != 1 {
			t.Fatalf("solution %d has %d witnesses, want 1", i, len(witnesses))
		}
		w := witnesses[0]
		if w.Source != "a" || w.Target != "b" {
			t.Errorf("witness endpoints %s->%s", w.Source, w.Target)
		}
		if len(w.Path) != 3 {
			t.Errorf("witness path %v, want 2 hops (3 nodes)", w.Path)
		}
		if w.Cost != 20 {
			t.Errorf("witness cost %v, want 20", w.Cost)
		}
		if w.Path[0] != resp.Named[i]["a"] || w.Path[len(w.Path)-1] != resp.Named[i]["b"] {
			t.Errorf("witness %v does not join the named mapping %v", w.Path, resp.Named[i])
		}
	}
	if resp.Stats.WitnessProbes == 0 {
		t.Error("path-mode stats did not reach the response")
	}
}

func TestServicePathEmbedRejectsNegativeMaxHops(t *testing.T) {
	svc := New(NewModel(pathServiceHost()), Config{})
	_, err := svc.Embed(Request{
		Query:     pathServiceQuery(),
		Algorithm: AlgoPathEmbed,
		Path:      PathRequestOptions{MaxHops: -1},
	})
	if !errors.Is(err, ErrBadPathOptions) {
		t.Fatalf("err = %v, want ErrBadPathOptions", err)
	}
}

func TestServicePathEmbedDefaultHopsConfig(t *testing.T) {
	// The query needs 2 hops; a service configured with DefaultPathHops 1
	// must find nothing for a request that leaves MaxHops unset, and a
	// hops-2 service must succeed.
	for _, tc := range []struct {
		hops int
		want bool
	}{{1, false}, {2, true}, {0, true}} { // 0 = core default 3, also enough
		svc := New(NewModel(pathServiceHost()), Config{DefaultPathHops: tc.hops})
		resp, err := svc.Embed(Request{Query: pathServiceQuery(), Algorithm: AlgoPathEmbed})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(resp.Mappings) > 0; got != tc.want {
			t.Errorf("DefaultPathHops=%d: feasible=%v, want %v", tc.hops, got, tc.want)
		}
	}
}

func TestServicePathEmbedWarnsOnEdgeConstraint(t *testing.T) {
	svc := New(NewModel(pathServiceHost()), Config{})
	resp, err := svc.Embed(Request{
		Query:          pathServiceQuery(),
		Algorithm:      AlgoPathEmbed,
		EdgeConstraint: "rEdge.avgDelay <= vEdge.maxDelay",
		Path:           PathRequestOptions{MaxHops: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range resp.Warnings {
		if strings.Contains(w, "edge constraint") {
			found = true
		}
	}
	if !found {
		t.Errorf("no edge-constraint warning in %v", resp.Warnings)
	}
	// The constraint must not have filtered anything.
	if len(resp.Mappings) == 0 {
		t.Error("path search found nothing despite valid windows")
	}
}

// TestServicePathEmbedWarnsOnTypoedMetricAttrs pins the silent-rejection
// guard: metric attribute names that nothing defines produce warnings,
// while the default windowless behavior stays quiet.
func TestServicePathEmbedWarnsOnTypoedMetricAttrs(t *testing.T) {
	svc := New(NewModel(pathServiceHost()), Config{})
	// Typo'd composed attribute: every hosting edge contributes
	// MissingEdge, windows silently reject everything.
	resp, err := svc.Embed(Request{
		Query:     pathServiceQuery(),
		Algorithm: AlgoPathEmbed,
		Path:      PathRequestOptions{MaxHops: 2, DelayAttr: "avgDeley"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warningsContain(resp.Warnings, "avgDeley") {
		t.Errorf("no warning for typo'd delay attr in %v", resp.Warnings)
	}
	// Explicitly-set window name no query edge carries.
	resp, err = svc.Embed(Request{
		Query:     pathServiceQuery(),
		Algorithm: AlgoPathEmbed,
		Path:      PathRequestOptions{MaxHops: 2, WindowHi: "maxDeley"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warningsContain(resp.Warnings, "maxDeley") {
		t.Errorf("no warning for typo'd window attr in %v", resp.Warnings)
	}
	// A clean default request warns about nothing: the query edges carry
	// the default window names and the host edges the composed attr.
	resp, err = svc.Embed(Request{
		Query:     pathServiceQuery(),
		Algorithm: AlgoPathEmbed,
		Path:      PathRequestOptions{MaxHops: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Warnings) != 0 {
		t.Errorf("clean path request produced warnings %v", resp.Warnings)
	}
}

func warningsContain(warnings []string, substr string) bool {
	for _, w := range warnings {
		if strings.Contains(w, substr) {
			return true
		}
	}
	return false
}

func TestServicePathEmbedMultiMetric(t *testing.T) {
	host := pathServiceHost()
	// Give the middle hop low bandwidth so the bottleneck floor rejects
	// paths crossing it.
	e, _ := host.EdgeBetween(1, 2)
	host.Edge(e).Attrs = host.Edge(e).Attrs.SetNum("bandwidth", 5)
	e01, _ := host.EdgeBetween(0, 1)
	host.Edge(e01).Attrs = host.Edge(e01).Attrs.SetNum("bandwidth", 100)
	e23, _ := host.EdgeBetween(2, 3)
	host.Edge(e23).Attrs = host.Edge(e23).Attrs.SetNum("bandwidth", 100)

	q := pathServiceQuery()
	q.Edge(0).Attrs = q.Edge(0).Attrs.SetNum("minBandwidth", 50)

	svc := New(NewModel(host), Config{})
	resp, err := svc.Embed(Request{
		Query:     q,
		Algorithm: AlgoPathEmbed,
		Path: PathRequestOptions{
			MaxHops: 2,
			Metrics: []core.MetricSpec{
				core.DefaultDelaySpec("avgDelay", "minDelay", "maxDelay"),
				{Attr: "bandwidth", Rule: core.Bottleneck, LoAttr: "minBandwidth", MissingFails: true},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every witness must avoid the 5-bandwidth middle hop — but every
	// 2-hop path on the line crosses it, so the instance is infeasible.
	if len(resp.Mappings) != 0 || resp.Status != core.StatusComplete {
		t.Fatalf("bottleneck floor not enforced: %d mappings, %v", len(resp.Mappings), resp.Status)
	}
}

// TestServicePathEmbedFederation routes a path request through the
// hierarchical deployment: the algorithm rides the same shard-then-global
// logic as the one-to-one searches.
func TestServicePathEmbedFederation(t *testing.T) {
	host := pathServiceHost()
	for i := 0; i < host.NumNodes(); i++ {
		host.Node(graph.NodeID(i)).Attrs = host.Node(graph.NodeID(i)).Attrs.SetStr("region", "core")
	}
	f, err := NewFederation(host, "region", Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, where, err := f.Embed(Request{
		Query:     pathServiceQuery(),
		Algorithm: AlgoPathEmbed,
		Path:      PathRequestOptions{MaxHops: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if where != "core" || len(resp.Mappings) == 0 {
		t.Fatalf("answered by %q with %d mappings", where, len(resp.Mappings))
	}
}
