package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/lifecycle"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// lifecycleFixture is an HTTP server over a 6-node cpu clique with the
// lifecycle manager attached, plus the handles the tests mutate
// directly: the model (to publish breaking deltas) and the ledger (to
// steal repair targets).
type lifecycleFixture struct {
	ts    *httptest.Server
	model *service.Model
	svc   *service.Service
	mgr   *lifecycle.Manager
}

func newLifecycleFixture(t *testing.T, cfg lifecycle.Config) *lifecycleFixture {
	t.Helper()
	host := topo.Clique(6)
	for i := 0; i < 6; i++ {
		host.Node(graph.NodeID(i)).Attrs = graph.Attrs{}.SetNum("cpu", 10)
	}
	model := service.NewModel(host)
	svc := service.New(model, service.Config{})
	srv := New(svc)
	mgr := lifecycle.NewManager(svc, cfg)
	srv.AttachLifecycle(mgr)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &lifecycleFixture{ts: ts, model: model, svc: svc, mgr: mgr}
}

func (f *lifecycleFixture) place(t *testing.T) lifecycle.Info {
	t.Helper()
	ml, err := graphml.EncodeString(topo.Line(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, f.ts.URL+"/embeddings", PlaceEmbeddingRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   ml,
			NodeConstraint: "rNode.cpu >= 5",
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("place status %d: %s", resp.StatusCode, body)
	}
	var info lifecycle.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func (f *lifecycleFixture) get(t *testing.T, id string) lifecycle.Info {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/embeddings/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	var info lifecycle.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func (f *lifecycleFixture) breakNode(t *testing.T, name string) {
	t.Helper()
	if _, err := f.model.Apply(&graph.Delta{SetNodeAttrs: []graph.NodeAttrUpdate{
		{Node: name, Set: graph.Attrs{}.SetNum("cpu", 1)},
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestEmbeddingLifecycleHTTP walks the full loop over the wire:
// place → degrade (model delta) → migrate → release, checking the /stats
// fold along the way.
func TestEmbeddingLifecycleHTTP(t *testing.T) {
	f := newLifecycleFixture(t, lifecycle.Config{})
	info := f.place(t)
	if info.Health != lifecycle.Healthy || info.ID == "" {
		t.Fatalf("placed: %+v", info)
	}

	// Degrade: the host of the query's middle node loses its cpu.
	f.breakNode(t, info.Mapping["n1"])
	f.mgr.CheckAll()
	got := f.get(t, info.ID)
	if got.Health != lifecycle.Degraded || got.Detail == "" {
		t.Fatalf("after delta: %+v", got)
	}

	// List carries the degraded record and the gauges.
	resp, err := http.Get(f.ts.URL + "/embeddings")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Embeddings []lifecycle.Info `json:"embeddings"`
		Stats      lifecycle.Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Embeddings) != 1 || list.Stats.Degraded != 1 {
		t.Fatalf("list = %+v", list)
	}

	// Migrate over the wire: one node moves, the embedding heals.
	resp, body := postJSON(t, f.ts.URL+"/embeddings/"+info.ID+"/migrate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, body)
	}
	var healed lifecycle.Info
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Health != lifecycle.Healthy || healed.Repairs != 1 || healed.MigratedNodes != 1 {
		t.Fatalf("after migrate: %+v", healed)
	}
	if healed.Mapping["n1"] == info.Mapping["n1"] {
		t.Error("migrate kept the broken host")
	}

	// /stats folds the lifecycle counters next to the engine's.
	resp, err = http.Get(f.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for key, want := range map[string]float64{
		"embeddingsActive":        1,
		"embeddingsRepaired":      1,
		"embeddingsMigratedNodes": 1,
	} {
		if got, ok := stats[key].(float64); !ok || got != want {
			t.Errorf("stats[%s] = %v, want %v", key, stats[key], want)
		}
	}
	if _, ok := stats["jobsDone"]; !ok {
		// The exact engine counter names live in engine.Stats; any one of
		// them proves the engine half of the fold survived the merge.
		found := false
		for key := range stats {
			if !strings.HasPrefix(key, "embeddings") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("engine counters missing from folded stats: %v", stats)
		}
	}

	// Release drops the record and frees the lease.
	req, _ := http.NewRequest(http.MethodDelete, f.ts.URL+"/embeddings/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release status %d", resp.StatusCode)
	}
	if _, ok := f.svc.Ledger().Lease(info.LeaseID); ok {
		t.Error("release left the lease allocated")
	}
	if resp, _ := http.Get(f.ts.URL + "/embeddings/" + info.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("released embedding still answers %d", resp.StatusCode)
	}
}

// TestEmbeddingMigrateRollbackHTTP pins the conflict path over the wire:
// a concurrent allocation steals every repair target between plan and
// commit, the migrate answers 200 with the still-Degraded record, and
// the old placement stays leased.
func TestEmbeddingMigrateRollbackHTTP(t *testing.T) {
	var f *lifecycleFixture
	var stolen []service.LeaseID
	steal := true
	f = newLifecycleFixture(t, lifecycle.Config{BeforeCommit: func(id string) {
		if !steal {
			return
		}
		for _, r := range []graph.NodeID{0, 1, 2, 3, 4, 5} {
			if lid, err := f.svc.Ledger().Allocate(core.Mapping{r}); err == nil {
				stolen = append(stolen, lid)
			}
		}
	}})
	info := f.place(t)
	f.breakNode(t, info.Mapping["n1"])

	resp, body := postJSON(t, f.ts.URL+"/embeddings/"+info.ID+"/migrate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, body)
	}
	var got lifecycle.Info
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Health != lifecycle.Degraded || !strings.Contains(got.Detail, "rolled back") {
		t.Fatalf("stolen target: %+v", got)
	}
	// The old placement survived the rollback byte-for-byte.
	if got.Mapping["n1"] != info.Mapping["n1"] {
		t.Fatalf("rollback changed the mapping: %v -> %v", info.Mapping, got.Mapping)
	}
	if _, ok := f.svc.Ledger().Lease(info.LeaseID); !ok {
		t.Fatal("rollback dropped the lease")
	}

	// Free the stolen nodes; the retry lands.
	steal = false
	for _, lid := range stolen {
		f.svc.Ledger().Release(lid)
	}
	resp, body = postJSON(t, f.ts.URL+"/embeddings/"+info.ID+"/migrate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Health != lifecycle.Healthy || got.Repairs != 1 {
		t.Fatalf("retry: %+v", got)
	}
}

// TestEmbeddingEndpointErrors pins the HTTP error mapping.
func TestEmbeddingEndpointErrors(t *testing.T) {
	f := newLifecycleFixture(t, lifecycle.Config{})
	if resp, _ := http.Get(f.ts.URL + "/embeddings/e999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown get: %d", resp.StatusCode)
	}
	resp, _ := postJSON(t, f.ts.URL+"/embeddings/e999/migrate", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown migrate: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, f.ts.URL+"/embeddings", PlaceEmbeddingRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty place: %d", resp.StatusCode)
	}
	ml, _ := graphml.EncodeString(topo.Line(3))
	resp, _ = postJSON(t, f.ts.URL+"/embeddings", PlaceEmbeddingRequest{
		EmbedRequest: EmbedRequest{QueryGraphML: ml, NodeConstraint: "rNode.cpu >= 1000"},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible place: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, f.ts.URL+"/embeddings", PlaceEmbeddingRequest{
		EmbedRequest: EmbedRequest{QueryGraphML: ml},
		TTLMs:        -5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative ttl: %d", resp.StatusCode)
	}
}
