package httpapi

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"netembed/internal/index"
	"netembed/internal/service"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// newIndexedServer is newTestServer with the capability index enabled,
// the configuration netembedd deploys by default.
func newIndexedServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(1)))
	model := service.NewModel(host)
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	ts := httptest.NewServer(New(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func TestDeltasAttrPatch(t *testing.T) {
	ts, svc := newIndexedServer(t)
	host, _ := svc.Model().Snapshot()
	name := host.Node(0).Name

	resp, body := postJSON(t, ts.URL+"/deltas", DeltaRequest{
		SetNodeAttrs: []DeltaNodeAttrs{{
			Node:  name,
			Attrs: map[string]any{"slots": 4.0, "tag": "edge-pop", "ready": true},
		}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DeltaResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 || out.Structural {
		t.Fatalf("got %+v, want version 2, non-structural", out)
	}

	g, idx, v := svc.Model().SnapshotIndexed()
	if v != 2 || idx.Version() != 2 {
		t.Fatalf("model/index version %d/%d, want 2/2", v, idx.Version())
	}
	id, _ := g.NodeByName(name)
	if slots, _ := g.Node(id).Attrs.Float("slots"); slots != 4 {
		t.Errorf("slots = %v, want 4", slots)
	}
	if tag, _ := g.Node(id).Attrs.Text("tag"); tag != "edge-pop" {
		t.Errorf("tag = %q", tag)
	}
	if !idx.AttrAtLeast("slots", 4).Has(id) {
		t.Error("index missed the patched capacity")
	}

	// Null removes the attribute.
	resp, body = postJSON(t, ts.URL+"/deltas", DeltaRequest{
		SetNodeAttrs: []DeltaNodeAttrs{{Node: name, Attrs: map[string]any{"tag": nil}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	g, _, _ = svc.Model().SnapshotIndexed()
	id, _ = g.NodeByName(name)
	if g.Node(id).Attrs.Has("tag") {
		t.Error("null attribute value should unset")
	}
}

func TestDeltasStructuralAndErrors(t *testing.T) {
	ts, svc := newIndexedServer(t)
	host, _ := svc.Model().Snapshot()
	a, b := host.Node(0).Name, host.Node(1).Name

	resp, body := postJSON(t, ts.URL+"/deltas", DeltaRequest{
		AddNodes: []DeltaNode{{Name: "newpop", Attrs: map[string]any{"slots": 2.0}}},
		AddEdges: []DeltaEdge{{Source: "newpop", Target: a, Attrs: map[string]any{"avgDelay": 3.0}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DeltaResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Structural {
		t.Error("node addition should report structural")
	}
	g, idx, _ := svc.Model().SnapshotIndexed()
	if _, ok := g.NodeByName("newpop"); !ok {
		t.Fatal("added node missing from model")
	}
	if idx.NumNodes() != g.NumNodes() {
		t.Fatal("index universe did not follow the rebuild")
	}

	// Unknown names answer 409 (stale client view), leaving the model alone.
	vBefore := svc.Model().Version()
	resp, _ = postJSON(t, ts.URL+"/deltas", DeltaRequest{RemoveNodes: []string{"ghost"}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	if svc.Model().Version() != vBefore {
		t.Error("failed delta bumped the version")
	}

	// Requests that can never succeed — malformed attribute payloads,
	// nameless/duplicate additions, self-loops — answer 400, not 409:
	// refreshing the model view and retrying would loop forever.
	for name, req := range map[string]DeltaRequest{
		"unsupported attr payload": {
			SetEdgeAttrs: []DeltaEdgeAttrs{{Source: a, Target: b, Attrs: map[string]any{"x": []any{1}}}},
		},
		"nameless node":  {AddNodes: []DeltaNode{{Name: ""}}},
		"duplicate node": {AddNodes: []DeltaNode{{Name: "twice"}, {Name: "twice"}}},
		"self-loop":      {AddEdges: []DeltaEdge{{Source: a, Target: a}}},
	} {
		resp, _ = postJSON(t, ts.URL+"/deltas", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// An empty delta is a no-op: 200, but the version must not move (a
	// bump would invalidate every version-keyed cache entry for nothing).
	vBefore = svc.Model().Version()
	resp, body = postJSON(t, ts.URL+"/deltas", DeltaRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty delta: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != vBefore || svc.Model().Version() != vBefore {
		t.Errorf("empty delta moved the version: %d -> %d", vBefore, svc.Model().Version())
	}
}

func TestEmbedBatch(t *testing.T) {
	ts, svc := newIndexedServer(t)
	version := svc.Model().Version()

	req := BatchEmbedRequest{Requests: []EmbedRequest{
		{QueryGraphML: mustGraphML(t, topo.Line(2)), MaxResults: 1},
		{QueryGraphML: mustGraphML(t, topo.Ring(3)), MaxResults: 2},
		{QueryGraphML: "<not-graphml>"}, // malformed item fails alone
		{QueryGraphML: mustGraphML(t, topo.Line(2)), Algorithm: "no-such-algo"},
	}}
	resp, body := postJSON(t, ts.URL+"/embed/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchEmbedResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ModelVersion != version {
		t.Errorf("batch version %d, want %d", out.ModelVersion, version)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	for i := 0; i < 2; i++ {
		if out.Results[i].Result == nil || out.Results[i].Error != "" {
			t.Fatalf("item %d should succeed: %+v", i, out.Results[i])
		}
		if out.Results[i].Result.ModelVersion != version {
			t.Errorf("item %d answered version %d, want the shared snapshot %d",
				i, out.Results[i].Result.ModelVersion, version)
		}
		if len(out.Results[i].Result.Mappings) == 0 {
			t.Errorf("item %d found no embeddings", i)
		}
	}
	if out.Results[2].Error == "" || out.Results[2].Result != nil {
		t.Error("malformed item should fail alone")
	}
	if out.Results[3].Error == "" {
		t.Error("unknown algorithm item should fail alone")
	}
}

func TestEmbedBatchValidation(t *testing.T) {
	ts, _ := newIndexedServer(t)
	resp, _ := postJSON(t, ts.URL+"/embed/batch", BatchEmbedRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	big := BatchEmbedRequest{Requests: make([]EmbedRequest, maxBatchItems+1)}
	resp, _ = postJSON(t, ts.URL+"/embed/batch", big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}
