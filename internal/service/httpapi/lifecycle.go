package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"netembed/internal/engine"
	"netembed/internal/lifecycle"
	"netembed/internal/service"
)

// AttachLifecycle mounts the embedding-lifecycle endpoints over mgr:
//
//	POST   /embeddings              place and adopt a managed embedding
//	                                (JSON body = PlaceEmbeddingRequest)
//	GET    /embeddings              list all managed embeddings with health
//	GET    /embeddings/{id}         one embedding's health snapshot
//	POST   /embeddings/{id}/migrate force a verify + repair round now
//	DELETE /embeddings/{id}         release the embedding and its lease
//
// Attaching also upgrades GET /stats: the lifecycle counters are folded
// into the engine's flat payload. Call before serving; the mux is not
// safe for concurrent registration.
func (s *Server) AttachLifecycle(mgr *lifecycle.Manager) {
	s.lc = mgr
	s.mux.HandleFunc("POST /embeddings", s.handleEmbeddingPlace)
	s.mux.HandleFunc("GET /embeddings", s.handleEmbeddingList)
	s.mux.HandleFunc("GET /embeddings/{id}", s.handleEmbeddingGet)
	s.mux.HandleFunc("POST /embeddings/{id}/migrate", s.handleEmbeddingMigrate)
	s.mux.HandleFunc("DELETE /embeddings/{id}", s.handleEmbeddingRelease)
}

// Lifecycle exposes the attached manager (nil before AttachLifecycle).
func (s *Server) Lifecycle() *lifecycle.Manager { return s.lc }

// PlaceEmbeddingRequest is the JSON body of POST /embeddings: an
// embedding query plus the lease TTL.
type PlaceEmbeddingRequest struct {
	EmbedRequest
	// TTLMs windows the lease to [now, now+TTL) milliseconds; 0 holds
	// until released.
	TTLMs int64 `json:"ttlMs,omitempty"`
}

func (s *Server) handleEmbeddingPlace(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		writeError(w, http.StatusNotFound, errors.New("lifecycle not enabled"))
		return
	}
	var req PlaceEmbeddingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.TTLMs < 0 {
		writeError(w, http.StatusBadRequest, errors.New("ttlMs is negative"))
		return
	}
	sreq, err := s.decodeEmbedRequest(&req.EmbedRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.lc.Place(lifecycle.PlaceRequest{
		Request: sreq,
		TTL:     time.Duration(req.TTLMs) * time.Millisecond,
	})
	switch {
	case errors.Is(err, lifecycle.ErrNoPlacement):
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case errors.Is(err, lifecycle.ErrConsolidate),
		errors.Is(err, service.ErrNoQuery),
		errors.Is(err, service.ErrBadPathOptions):
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleEmbeddingList(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		writeError(w, http.StatusNotFound, errors.New("lifecycle not enabled"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"embeddings": s.lc.List(),
		"stats":      s.lc.Stats(),
	})
}

func (s *Server) handleEmbeddingGet(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		writeError(w, http.StatusNotFound, errors.New("lifecycle not enabled"))
		return
	}
	info, ok := s.lc.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, lifecycle.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEmbeddingMigrate(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		writeError(w, http.StatusNotFound, errors.New("lifecycle not enabled"))
		return
	}
	info, err := s.lc.Migrate(r.PathValue("id"))
	switch {
	case errors.Is(err, lifecycle.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, lifecycle.ErrExpired):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEmbeddingRelease(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		writeError(w, http.StatusNotFound, errors.New("lifecycle not enabled"))
		return
	}
	if err := s.lc.Release(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"released": true})
}

// lifecycleStatsJSON is the /stats payload with a lifecycle manager
// attached: the engine's flat counters plus the embedding gauges, all at
// the top level so dashboards keep one namespace.
type lifecycleStatsJSON struct {
	engine.Stats
	EmbeddingsActive         int64 `json:"embeddingsActive"`
	EmbeddingsDegraded       int64 `json:"embeddingsDegraded"`
	EmbeddingsBroken         int64 `json:"embeddingsBroken"`
	EmbeddingsExpired        int64 `json:"embeddingsExpired"`
	EmbeddingsRepaired       int64 `json:"embeddingsRepaired"`
	EmbeddingsMigratedNodes  int64 `json:"embeddingsMigratedNodes"`
	EmbeddingsRepairFailures int64 `json:"embeddingsRepairFailures"`
}

// foldLifecycleStats merges the lifecycle counters next to the engine's
// for the /stats reply.
//
//statsthread:fold lifecycle.Stats
func foldLifecycleStats(es engine.Stats, ls lifecycle.Stats) lifecycleStatsJSON {
	return lifecycleStatsJSON{
		Stats:                    es,
		EmbeddingsActive:         ls.Active,
		EmbeddingsDegraded:       ls.Degraded,
		EmbeddingsBroken:         ls.Broken,
		EmbeddingsExpired:        ls.Expired,
		EmbeddingsRepaired:       ls.Repaired,
		EmbeddingsMigratedNodes:  ls.MigratedNodes,
		EmbeddingsRepairFailures: ls.RepairFailures,
	}
}
