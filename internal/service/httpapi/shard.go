// Distributed-tier peer protocol. A federated netembedd exposes its
// shard to the coordinator under /internal/shard/*:
//
//	POST /internal/shard/embed    embed a query fragment against the
//	                              shard's partial view (EmbedRequest)
//	POST /internal/shard/delta    apply the shard's slice of a model
//	                              delta; stale names answer 409
//	GET  /internal/shard/stats    routing summary (service.ShardStats)
//	GET  /internal/shard/nodes    hosting-node names + model version —
//	                              the coordinator's routing-table feed
//	GET  /internal/shard/version  current model snapshot version
//
// RemoteShard is the matching client: it implements service.Shard over
// these endpoints with per-peer timeouts and retry-with-backoff, so a
// Coordinator can federate real processes. ClusterServer fronts a
// Coordinator with the operator-facing API (/embed, /deltas, /cluster).
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/service"
)

// registerShard wires the peer endpoints. Embed and delta reuse the
// public handlers (same wire forms, same engine-backed execution and 409
// semantics); the read-side endpoints answer from the shard identity.
func (s *Server) registerShard() {
	s.mux.HandleFunc("POST /internal/shard/embed", s.handleEmbed)
	s.mux.HandleFunc("POST /internal/shard/delta", s.handleDeltas)
	s.mux.HandleFunc("GET /internal/shard/stats", s.handleShardStats)
	s.mux.HandleFunc("GET /internal/shard/nodes", s.handleShardNodes)
	s.mux.HandleFunc("GET /internal/shard/version", s.handleShardVersion)
}

// ConfigureShard sets the identity this server reports to coordinators
// (netembedd's -shard-name/-shard-region flags). Without it the server
// still answers the peer protocol under an empty name.
func (s *Server) ConfigureShard(name string, regions []string) {
	s.identity = service.NewLocalShard(name, regions, s.svc)
}

func (s *Server) shardIdentity() *service.LocalShard {
	if s.identity == nil {
		s.identity = service.NewLocalShard("", nil, s.svc)
	}
	return s.identity
}

func (s *Server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.shardIdentity().Stats()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// ShardNodesResponse is the JSON reply of GET /internal/shard/nodes.
type ShardNodesResponse struct {
	Names   []string `json:"names"`
	Version uint64   `json:"version"`
}

func (s *Server) handleShardNodes(w http.ResponseWriter, r *http.Request) {
	names, version, err := s.shardIdentity().NodeNames()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, ShardNodesResponse{Names: names, Version: version})
}

func (s *Server) handleShardVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]uint64{"version": s.svc.Model().Version()})
}

// RemoteShardConfig tunes one peer client.
type RemoteShardConfig struct {
	// Name overrides the shard name (default: the peer's host:port).
	Name string
	// Timeout bounds each HTTP round trip beyond the embed budget
	// (default 10s).
	Timeout time.Duration
	// Retries is how many times an idempotent request is retried after a
	// transport failure (default 2).
	Retries int
	// Backoff is the first retry's delay, doubled per attempt
	// (default 100ms).
	Backoff time.Duration
	// Client overrides the HTTP client (tests inject httptest here).
	Client *http.Client
}

// RemoteShard implements service.Shard over the /internal/shard/* peer
// protocol of another netembedd process.
type RemoteShard struct {
	base    string
	name    string
	client  *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration

	mu        sync.Mutex
	regions   []string
	nodeCount int
}

// NewRemoteShard builds the client for one peer. The peer is not
// contacted here: an unreachable peer boots unhealthy in the coordinator
// and joins on the first successful refresh.
func NewRemoteShard(baseURL string, cfg RemoteShardConfig) (*RemoteShard, error) {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("httpapi: bad peer URL %q", baseURL)
	}
	if cfg.Name == "" {
		cfg.Name = u.Host
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &RemoteShard{
		base:    strings.TrimSuffix(u.String(), "/"),
		name:    cfg.Name,
		client:  client,
		timeout: cfg.Timeout,
		retries: cfg.Retries,
		backoff: cfg.Backoff,
	}, nil
}

// Name implements service.Shard.
func (rs *RemoteShard) Name() string { return rs.name }

// Regions implements service.Shard (last fetched; empty before the first
// successful Stats).
func (rs *RemoteShard) Regions() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.regions...)
}

// NodeCount implements service.Shard (last fetched).
func (rs *RemoteShard) NodeCount() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.nodeCount
}

// do runs one HTTP exchange with the peer. Transport failures are retried
// with exponential backoff when retry is true (idempotent calls); HTTP
// error statuses are never retried — the peer answered.
func (rs *RemoteShard) do(method, path string, body []byte, timeout time.Duration, retry bool, out interface{}) error {
	if timeout <= 0 {
		timeout = rs.timeout
	}
	attempts := 1
	if retry {
		attempts += rs.retries
	}
	var lastErr error
	backoff := rs.backoff
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, rs.base+path, rd)
		if err != nil {
			cancel()
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := rs.client.Do(req)
		if err != nil {
			cancel()
			lastErr = fmt.Errorf("httpapi: peer %s: %w", rs.name, err)
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("httpapi: peer %s: %w", rs.name, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(data, &e)
			if e.Error == "" {
				e.Error = strings.TrimSpace(string(data))
			}
			if resp.StatusCode == http.StatusConflict {
				// The peer resolved our names against a newer model: the
				// coordinator's routing table is stale.
				return fmt.Errorf("%w: peer %s: %s", service.ErrStaleRouting, rs.name, e.Error)
			}
			return fmt.Errorf("httpapi: peer %s answered %d: %s", rs.name, resp.StatusCode, e.Error)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("httpapi: peer %s: bad response JSON: %v", rs.name, err)
			}
		}
		return nil
	}
	return lastErr
}

// Stats implements service.Shard.
func (rs *RemoteShard) Stats() (service.ShardStats, error) {
	var st service.ShardStats
	if err := rs.do(http.MethodGet, "/internal/shard/stats", nil, 0, true, &st); err != nil {
		return service.ShardStats{}, err
	}
	rs.mu.Lock()
	rs.regions = append([]string(nil), st.Regions...)
	rs.nodeCount = st.NodeCount
	rs.mu.Unlock()
	return st, nil
}

// NodeNames implements service.Shard.
func (rs *RemoteShard) NodeNames() ([]string, uint64, error) {
	var out ShardNodesResponse
	if err := rs.do(http.MethodGet, "/internal/shard/nodes", nil, 0, true, &out); err != nil {
		return nil, 0, err
	}
	rs.mu.Lock()
	rs.nodeCount = len(out.Names)
	rs.mu.Unlock()
	return out.Names, out.Version, nil
}

// Embed implements service.Shard: the request travels as the public
// /embed wire form (query re-encoded to GraphML) and the named mappings
// come back; raw index mappings do not cross processes.
func (rs *RemoteShard) Embed(req service.Request) (*service.Response, error) {
	wire, err := encodeEmbedRequest(req)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	// The HTTP deadline wraps the peer's search budget with slack for
	// transport and queueing.
	timeout := req.Timeout + rs.timeout
	var out EmbedResponse
	if err := rs.do(http.MethodPost, "/internal/shard/embed", body, timeout, true, &out); err != nil {
		return nil, err
	}
	return decodeEmbedResponse(&out)
}

// ApplyDelta implements service.Shard. Deltas are not idempotent, so
// transport failures are not retried; a 409 surfaces as ErrStaleRouting.
func (rs *RemoteShard) ApplyDelta(d *graph.Delta) (uint64, error) {
	body, err := json.Marshal(encodeDelta(d))
	if err != nil {
		return 0, err
	}
	var out DeltaResponse
	if err := rs.do(http.MethodPost, "/internal/shard/delta", body, 0, false, &out); err != nil {
		return 0, err
	}
	return out.Version, nil
}

// encodeEmbedRequest renders a service.Request in the /embed wire form.
func encodeEmbedRequest(req service.Request) (*EmbedRequest, error) {
	if req.Query == nil {
		return nil, service.ErrNoQuery
	}
	queryML, err := graphml.EncodeString(req.Query)
	if err != nil {
		return nil, err
	}
	wire := &EmbedRequest{
		QueryGraphML:    queryML,
		EdgeConstraint:  req.EdgeConstraint,
		NodeConstraint:  req.NodeConstraint,
		Algorithm:       string(req.Algorithm),
		TimeoutMs:       int(req.Timeout / time.Millisecond),
		MaxResults:      req.MaxResults,
		Seed:            req.Seed,
		ExcludeReserved: req.ExcludeReserved,
		DedupeSymmetric: req.DedupeSymmetric,
		CapacityAttr:    req.Consolidate.CapacityAttr,
		DemandAttr:      req.Consolidate.DemandAttr,
		MaxHops:         req.Path.MaxHops,
		DelayAttr:       req.Path.DelayAttr,
		WindowLo:        req.Path.WindowLo,
		WindowHi:        req.Path.WindowHi,
	}
	for _, m := range req.Path.Metrics {
		rule := "additive"
		switch m.Rule {
		case core.Bottleneck:
			rule = "bottleneck"
		case core.Multiplicative:
			rule = "multiplicative"
		}
		wire.Metrics = append(wire.Metrics, MetricSpecJSON{
			Attr: m.Attr, Rule: rule, LoAttr: m.LoAttr, HiAttr: m.HiAttr,
			MissingEdge: m.MissingEdge, MissingFails: m.MissingFails,
		})
	}
	if req.Optimize {
		kind := ""
		switch req.Objective.Kind {
		case core.ObjectiveAttrCost:
			kind = "attr-cost"
		case core.ObjectiveLoadBalance:
			kind = "load-balance"
		case core.ObjectiveEnergy:
			kind = "energy"
		}
		wire.Objective = &ObjectiveJSON{Kind: kind, Attr: req.Objective.Attr, Weight: req.Objective.Weight}
	}
	return wire, nil
}

// decodeEmbedResponse translates the wire reply back into a
// service.Response. Raw index mappings are process-local and stay empty;
// the named mappings are the authoritative cross-process answer.
func decodeEmbedResponse(out *EmbedResponse) (*service.Response, error) {
	resp := &service.Response{
		ModelVersion: out.ModelVersion,
		Elapsed:      time.Duration(out.ElapsedMs * float64(time.Millisecond)),
		Warnings:     out.Warnings,
	}
	switch out.Status {
	case "complete":
		resp.Status = core.StatusComplete
	case "partial":
		resp.Status = core.StatusPartial
	case "inconclusive":
		resp.Status = core.StatusInconclusive
	default:
		return nil, fmt.Errorf("httpapi: unknown status %q in peer response", out.Status)
	}
	for _, m := range out.Mappings {
		resp.Named = append(resp.Named, service.NamedMapping(m))
	}
	for _, ws := range out.Paths {
		row := make([]service.PathWitness, len(ws))
		for i, w := range ws {
			row[i] = service.PathWitness{Source: w.Source, Target: w.Target, Path: w.Path, Cost: w.Cost}
		}
		resp.Paths = append(resp.Paths, row)
	}
	resp.ObjectiveCost = out.ObjectiveCost
	resp.Stats = statsFromJSON(out.Stats)
	return resp, nil
}

// statsFromJSON recovers the search counters from the wire stats map.
//
//statsthread:fold core.Stats except FilterEntries
func statsFromJSON(m map[string]interface{}) core.Stats {
	n := func(key string) int64 {
		v, _ := m[key].(float64)
		return int64(v)
	}
	var st core.Stats
	st.NodesVisited = n("nodesVisited")
	st.Backtracks = n("backtracks")
	st.EdgePairsEval = n("edgePairsEval")
	st.ConstraintChk = n("constraintChk")
	st.PruneOps = n("pruneOps")
	st.Wipeouts = n("wipeouts")
	st.WipeoutDepthSum = n("wipeoutDepthSum")
	st.Backjumps = n("backjumps")
	st.Steals = n("steals")
	st.WitnessProbes = n("witnessProbes")
	st.WitnessHits = n("witnessHits")
	st.ReachPrunes = n("reachPrunes")
	st.BoundCuts = n("boundCuts")
	st.IncumbentUpdates = n("incumbentUpdates")
	st.BoundProbes = n("boundProbes")
	if ms, ok := m["timeToFirstMs"].(float64); ok {
		st.TimeToFirst = time.Duration(ms * float64(time.Millisecond))
	}
	return st
}

// encodeDelta renders a graph.Delta in the /deltas wire form.
func encodeDelta(d *graph.Delta) *DeltaRequest {
	req := &DeltaRequest{RemoveNodes: d.RemoveNodes}
	for _, ref := range d.RemoveEdges {
		req.RemoveEdges = append(req.RemoveEdges, DeltaEdgeRef{Source: ref.Source, Target: ref.Target})
	}
	for _, n := range d.AddNodes {
		req.AddNodes = append(req.AddNodes, DeltaNode{Name: n.Name, Attrs: attrsJSON(n.Attrs, nil)})
	}
	for _, e := range d.AddEdges {
		req.AddEdges = append(req.AddEdges, DeltaEdge{Source: e.Source, Target: e.Target, Attrs: attrsJSON(e.Attrs, nil)})
	}
	for _, up := range d.SetNodeAttrs {
		req.SetNodeAttrs = append(req.SetNodeAttrs, DeltaNodeAttrs{Node: up.Node, Attrs: attrsJSON(up.Set, up.Unset)})
	}
	for _, up := range d.SetEdgeAttrs {
		req.SetEdgeAttrs = append(req.SetEdgeAttrs, DeltaEdgeAttrs{Source: up.Source, Target: up.Target, Attrs: attrsJSON(up.Set, up.Unset)})
	}
	return req
}

// attrsJSON renders a typed attribute bag (plus explicit removals) as the
// wire's JSON attribute map.
func attrsJSON(set graph.Attrs, unset []string) map[string]any {
	if len(set) == 0 && len(unset) == 0 {
		return nil
	}
	out := make(map[string]any, len(set)+len(unset))
	for name, v := range set {
		if f, ok := v.Float(); ok {
			out[name] = f
		} else if s, ok := v.Text(); ok {
			out[name] = s
		} else if b, ok := v.Truth(); ok {
			out[name] = b
		}
	}
	for _, name := range unset {
		out[name] = nil
	}
	return out
}

// ClusterServer fronts a service.Coordinator with HTTP: the operator API
// of a federated netembedd.
//
//	GET  /healthz   liveness probe
//	POST /embed     route an embedding query through the tier; the
//	                X-Netembed-Answered-By header names the answering
//	                shard (or cross:a+b for stitched answers)
//	POST /deltas    split and propagate a model delta to the owning
//	                shards; stale names answer 409 after a refresh
//	GET  /cluster   shard health, versions, routing-table summary
type ClusterServer struct {
	coord   *service.Coordinator
	mux     *http.ServeMux
	queries *queryCache
}

// AnsweredByHeader names the shard that answered a coordinator /embed.
const AnsweredByHeader = "X-Netembed-Answered-By"

// NewClusterServer builds the operator front end for a coordinator.
func NewClusterServer(coord *service.Coordinator) *ClusterServer {
	s := &ClusterServer{coord: coord, mux: http.NewServeMux(), queries: newQueryCache(0)}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	s.mux.HandleFunc("POST /embed", s.handleEmbed)
	s.mux.HandleFunc("POST /deltas", s.handleDeltas)
	s.mux.HandleFunc("GET /cluster", s.handleCluster)
	return s
}

// ServeHTTP implements http.Handler.
func (s *ClusterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *ClusterServer) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req EmbedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	sreq, err := decodeEmbedRequestCached(s.queries, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if sreq.Stop == nil {
		sreq.Stop = func() bool { return ctx.Err() != nil }
	}
	resp, where, err := s.coord.Embed(sreq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set(AnsweredByHeader, where)
	writeJSON(w, http.StatusOK, embedResponseJSON(resp))
}

// ClusterDeltaResponse is the JSON reply of the coordinator's /deltas:
// the model version each owning shard reported for its slice.
type ClusterDeltaResponse struct {
	Versions map[string]uint64 `json:"versions"`
}

func (s *ClusterServer) handleDeltas(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	d, err := decodeDelta(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	versions, err := s.coord.ApplyDelta(d)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, service.ErrStaleRouting) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, ClusterDeltaResponse{Versions: versions})
}

func (s *ClusterServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Cluster())
}
