package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// extendedServer hosts a triangle of 50ms links so negotiation behavior
// is exactly predictable.
func extendedServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	host := topo.Clique(3)
	for i := 0; i < host.NumEdges(); i++ {
		host.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.SetNum("avgDelay", 50)
	}
	svc := service.New(service.NewModel(host), service.Config{})
	ts := httptest.NewServer(New(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func cliqueQueryML(t *testing.T, lo, hi float64) string {
	t.Helper()
	q := topo.Clique(3)
	topo.SetDelayWindow(q, lo, hi)
	ml, err := graphml.EncodeString(q)
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

const avgConstraint = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

func TestNegotiateEndpoint(t *testing.T) {
	ts, _ := extendedServer(t)
	resp, body := postJSON(t, ts.URL+"/negotiate", NegotiateHTTPRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   cliqueQueryML(t, 30, 40), // misses 50ms: one round fixes it
			EdgeConstraint: avgConstraint,
		},
		MaxRounds: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out NegotiateHTTPResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rounds < 1 {
		t.Errorf("rounds = %d, want >= 1", out.Rounds)
	}
	if len(out.Mappings) == 0 {
		t.Error("no mapping after negotiation")
	}
	relaxed, err := graphml.DecodeString(out.RelaxedQuery)
	if err != nil {
		t.Fatalf("relaxed query invalid GraphML: %v", err)
	}
	hi, _ := relaxed.Edge(0).Attrs.Float("maxDelay")
	if hi < 50 {
		t.Errorf("relaxed maxDelay = %v, want >= 50", hi)
	}
}

func TestNegotiateEndpointFailure(t *testing.T) {
	ts, _ := extendedServer(t)
	// Far-off window with too few rounds => 409.
	resp, _ := postJSON(t, ts.URL+"/negotiate", NegotiateHTTPRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   cliqueQueryML(t, 1, 2),
			EdgeConstraint: avgConstraint,
		},
		MaxRounds: 1,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("status = %d, want 409", resp.StatusCode)
	}
	// Bad request shapes.
	resp2, _ := postJSON(t, ts.URL+"/negotiate", NegotiateHTTPRequest{})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d", resp2.StatusCode)
	}
	r3, err := http.Post(ts.URL+"/negotiate", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d", r3.StatusCode)
	}
	r4, err := http.Get(ts.URL + "/negotiate")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", r4.StatusCode)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	ts, svc := extendedServer(t)
	resp, body := postJSON(t, ts.URL+"/schedule", ScheduleHTTPRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   cliqueQueryML(t, 40, 60),
			EdgeConstraint: avgConstraint,
		},
		DurationMs: 60_000,
		HorizonMs:  3_600_000,
		StepMs:     600_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ScheduleHTTPResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.LeaseID == 0 {
		t.Error("no lease taken")
	}
	if len(out.Mapping) != 3 {
		t.Errorf("mapping size = %d", len(out.Mapping))
	}
	if _, ok := svc.Ledger().Lease(service.LeaseID(out.LeaseID)); !ok {
		t.Error("lease not present in ledger")
	}

	// The single triangle is now booked: an identical request must find a
	// later window, not fail.
	resp2, body2 := postJSON(t, ts.URL+"/schedule", ScheduleHTTPRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   cliqueQueryML(t, 40, 60),
			EdgeConstraint: avgConstraint,
		},
		DurationMs: 60_000,
		HorizonMs:  3_600_000,
		StepMs:     60_000,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second schedule status %d: %s", resp2.StatusCode, body2)
	}
	var out2 ScheduleHTTPResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Start == out.Start {
		t.Error("second schedule overlaps the first")
	}
}

func TestScheduleEndpointErrors(t *testing.T) {
	ts, _ := extendedServer(t)
	// Zero duration.
	resp, _ := postJSON(t, ts.URL+"/schedule", ScheduleHTTPRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   cliqueQueryML(t, 40, 60),
			EdgeConstraint: avgConstraint,
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero duration status = %d", resp.StatusCode)
	}
	// Impossible query within the horizon => 409 (no window).
	resp2, _ := postJSON(t, ts.URL+"/schedule", ScheduleHTTPRequest{
		EmbedRequest: EmbedRequest{
			QueryGraphML:   cliqueQueryML(t, 1, 2),
			EdgeConstraint: avgConstraint,
			TimeoutMs:      1000,
		},
		DurationMs: 60_000,
		HorizonMs:  120_000,
		StepMs:     60_000,
	})
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("no-window status = %d", resp2.StatusCode)
	}
	// Method check.
	r, err := http.Get(ts.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", r.StatusCode)
	}
}
