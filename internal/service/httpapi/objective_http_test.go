package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"netembed/internal/engine"
	"netembed/internal/graph"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// pricedClique returns K_n with a "price" attribute on every host node.
func pricedClique(n int, price func(i int) float64) *graph.Graph {
	g := topo.Clique(n)
	for i := 0; i < n; i++ {
		nd := g.Node(graph.NodeID(i))
		nd.Attrs = nd.Attrs.SetNum("price", price(i))
	}
	return g
}

// TestEmbedObjectiveCost drives an optimizing query over the wire: the
// response carries exactly one mapping and its objectiveCost, and the
// cost is the true optimum (the two cheapest hosts of a clique).
func TestEmbedObjectiveCost(t *testing.T) {
	host := pricedClique(6, func(i int) float64 { return float64([]int{9, 4, 7, 2, 8, 6}[i]) })
	svc := service.New(service.NewModel(host), service.Config{})
	ts := httptest.NewServer(New(svc))
	t.Cleanup(ts.Close)

	body := EmbedRequest{
		QueryGraphML: mustGraphML(t, topo.Line(2)),
		Objective:    &ObjectiveJSON{Kind: "attr-cost", Attr: "price"},
	}
	resp, raw := postJSON(t, ts.URL+"/embed", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /embed: %d %s", resp.StatusCode, raw)
	}
	var er EmbedResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Mappings) != 1 {
		t.Fatalf("optimize returned %d mappings, want exactly 1: %s", len(er.Mappings), raw)
	}
	if er.ObjectiveCost == nil {
		t.Fatalf("optimize response missing objectiveCost: %s", raw)
	}
	if want := 2.0 + 4.0; *er.ObjectiveCost != want {
		t.Fatalf("objectiveCost = %v, want %v (two cheapest hosts)", *er.ObjectiveCost, want)
	}
	if n, _ := er.Stats["incumbentUpdates"].(float64); n == 0 {
		t.Fatalf("optimize run reports zero incumbent updates: %s", raw)
	}

	// The non-optimizing twin must not share a cache line with the
	// optimizing request (objective is part of the fingerprint).
	plain := EmbedRequest{QueryGraphML: body.QueryGraphML}
	if _, raw := postJSON(t, ts.URL+"/embed", plain); func() bool {
		var r EmbedResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		return r.ObjectiveCost != nil
	}() {
		t.Fatal("plain embed leaked an objectiveCost")
	}
}

// TestEmbedObjectiveBadKind pins the validation edge: an unknown
// objective kind answers 400, not a silent plain search.
func TestEmbedObjectiveBadKind(t *testing.T) {
	ts, _ := newTestServer(t)
	body := EmbedRequest{
		QueryGraphML: mustGraphML(t, topo.Line(2)),
		Objective:    &ObjectiveJSON{Kind: "warp"},
	}
	resp, raw := postJSON(t, ts.URL+"/embed", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown objective kind: %d %s, want 400", resp.StatusCode, raw)
	}
}

// TestEmbedObjectiveMissingAttr pins the other validation edge: attr-cost
// has no default attribute, so omitting it answers 400 instead of
// silently optimizing the constant-zero objective.
func TestEmbedObjectiveMissingAttr(t *testing.T) {
	ts, _ := newTestServer(t)
	body := EmbedRequest{
		QueryGraphML: mustGraphML(t, topo.Line(2)),
		Objective:    &ObjectiveJSON{Kind: "attr-cost"},
	}
	resp, raw := postJSON(t, ts.URL+"/embed", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("attr-cost without attr: %d %s, want 400", resp.StatusCode, raw)
	}
}

// TestJobAnytimeBestSoFar is the acceptance-criterion test: polling a
// running optimizing job returns the feasible best-so-far mapping with
// its cost. The fixture makes the first incumbent both immediate and
// optimal (ascending prices, so the lexicographically first solution is
// the cheapest) while the proof of optimality takes essentially forever
// on a K_40 host — the job stays running, serving its incumbent, until
// the test cancels it.
func TestJobAnytimeBestSoFar(t *testing.T) {
	host := pricedClique(40, func(i int) float64 { return float64(i + 1) })
	svc := service.New(service.NewModel(host), service.Config{})
	srv := NewWithEngine(svc, engine.New(svc, engine.Config{Workers: 1}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	body := EmbedRequest{
		QueryGraphML: mustGraphML(t, topo.Clique(12)),
		TimeoutMs:    60_000,
		Objective:    &ObjectiveJSON{Kind: "attr-cost", Attr: "price"},
	}
	resp, raw := postJSON(t, ts.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}
	id := decodeJob(t, raw).ID

	js := pollJob(t, ts, id, 10*time.Second, func(j JobStatus) bool {
		return j.State == "running" && j.BestSoFar != nil
	})
	if js.Result != nil {
		t.Fatalf("running job carries a final result: %+v", js)
	}
	if len(js.BestSoFar) != 12 {
		t.Fatalf("bestSoFar maps %d nodes, want 12: %+v", len(js.BestSoFar), js)
	}
	seen := make(map[string]bool)
	for q, r := range js.BestSoFar {
		if q == "" || r == "" || seen[r] {
			t.Fatalf("bestSoFar is not an injective mapping: %+v", js.BestSoFar)
		}
		seen[r] = true
	}
	if js.BestCost == nil {
		t.Fatalf("bestSoFar without bestCost: %+v", js)
	}
	// Ascending prices make hosts 1..12 the optimum: 1+2+...+12.
	if want := 78.0; *js.BestCost != want {
		t.Fatalf("bestCost = %v, want %v", *js.BestCost, want)
	}

	if resp, _ := doRequest(t, http.MethodDelete, ts.URL+"/jobs/"+id); resp.StatusCode != http.StatusOK {
		t.Fatalf("cleanup DELETE: %d", resp.StatusCode)
	}
}
