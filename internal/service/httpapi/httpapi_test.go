package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netembed/internal/graphml"
	"netembed/internal/service"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

const delayWindowSrc = "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay"

func newTestServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(1)))
	svc := service.New(service.NewModel(host), service.Config{})
	ts := httptest.NewServer(New(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestGetModel(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if v := resp.Header.Get(VersionHeader); v != "1" {
		t.Errorf("version header = %q", v)
	}
	g, err := graphml.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 30 {
		t.Errorf("model nodes = %d", g.NumNodes())
	}
}

func TestPutModel(t *testing.T) {
	ts, svc := newTestServer(t)
	newModel, err := graphml.EncodeString(topo.Ring(5))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/model", strings.NewReader(newModel))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	g, version := svc.Model().Snapshot()
	if g.NumNodes() != 5 || version != 2 {
		t.Errorf("model after PUT: %v v%d", g, version)
	}

	// Invalid body rejected.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/model", strings.NewReader("not xml"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status %d", resp2.StatusCode)
	}
}

func TestEmbedEndpoint(t *testing.T) {
	ts, svc := newTestServer(t)
	host, _ := svc.Model().Snapshot()
	q, _, err := topo.Subgraph(host, 4, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.2)
	queryML, err := graphml.EncodeString(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML:   queryML,
		EdgeConstraint: delayWindowSrc,
		Algorithm:      "lns",
		MaxResults:     1,
		TimeoutMs:      5000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EmbedResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Mappings) != 1 {
		t.Fatalf("mappings = %d", len(out.Mappings))
	}
	if out.Status != "partial" && out.Status != "complete" {
		t.Errorf("status = %q", out.Status)
	}
	for qName, rName := range out.Mappings[0] {
		if _, ok := q.NodeByName(qName); !ok {
			t.Errorf("unknown query node %q", qName)
		}
		if _, ok := host.NodeByName(rName); !ok {
			t.Errorf("unknown host node %q", rName)
		}
	}
}

func TestEmbedEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/embed", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status %d", resp.StatusCode)
	}
	// Missing query.
	resp2, _ := postJSON(t, ts.URL+"/embed", EmbedRequest{})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status %d", resp2.StatusCode)
	}
	// Bad GraphML.
	resp3, _ := postJSON(t, ts.URL+"/embed", EmbedRequest{QueryGraphML: "junk"})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad graphml status %d", resp3.StatusCode)
	}
	// Bad constraint.
	ml, _ := graphml.EncodeString(topo.Ring(3))
	resp4, _ := postJSON(t, ts.URL+"/embed", EmbedRequest{QueryGraphML: ml, EdgeConstraint: "1 +"})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad constraint status %d", resp4.StatusCode)
	}
	// GET not allowed.
	resp5, err := http.Get(ts.URL + "/embed")
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /embed status %d", resp5.StatusCode)
	}
}

func TestReserveLifecycle(t *testing.T) {
	ts, svc := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/reserve", ReserveRequest{
		HostNodes: []string{"site001", "site002"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reserve status %d: %s", resp.StatusCode, body)
	}
	var out map[string]int64
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	lease := out["leaseId"]
	if lease == 0 {
		t.Fatal("no lease id")
	}
	if got := len(svc.Ledger().ReservedNodes()); got != 2 {
		t.Errorf("reserved = %d", got)
	}

	// Conflicting reservation.
	resp2, _ := postJSON(t, ts.URL+"/reserve", ReserveRequest{HostNodes: []string{"site002"}})
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("conflict status %d", resp2.StatusCode)
	}
	// Unknown node.
	resp3, _ := postJSON(t, ts.URL+"/reserve", ReserveRequest{HostNodes: []string{"nowhere"}})
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown node status %d", resp3.StatusCode)
	}
	// Empty list.
	resp4, _ := postJSON(t, ts.URL+"/reserve", ReserveRequest{})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("empty list status %d", resp4.StatusCode)
	}

	// Release.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/reserve?id=%d", ts.URL, lease), nil)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK {
		t.Errorf("release status %d", resp5.StatusCode)
	}
	if got := len(svc.Ledger().ReservedNodes()); got != 0 {
		t.Errorf("reserved after release = %d", got)
	}
	// Double release.
	resp6, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp6.Body.Close()
	if resp6.StatusCode != http.StatusNotFound {
		t.Errorf("double release status %d", resp6.StatusCode)
	}
	// Bad id.
	req7, _ := http.NewRequest(http.MethodDelete, ts.URL+"/reserve?id=abc", nil)
	resp7, err := http.DefaultClient.Do(req7)
	if err != nil {
		t.Fatal(err)
	}
	resp7.Body.Close()
	if resp7.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp7.StatusCode)
	}
}
