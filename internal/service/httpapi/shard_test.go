package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/service"
	"netembed/internal/topo"
)

const avgDelayWindowSrc = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

// twoRegionHost builds the canonical distributed-tier fixture: two 5-node
// cliques (west: n0..n4, east: n5..n9) at ~10ms intra-region, joined by
// two ~200ms cut edges n0-n5 and n1-n6.
func twoRegionHost() *graph.Graph {
	g := graph.NewUndirected()
	attrs := func(d float64) graph.Attrs {
		return graph.Attrs{}.
			SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.1)
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "west"))
	}
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.Attrs{}.SetStr("region", "east"))
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), attrs(10))
			g.MustAddEdge(graph.NodeID(5+a), graph.NodeID(5+b), attrs(10))
		}
	}
	g.MustAddEdge(0, 5, attrs(200))
	g.MustAddEdge(1, 6, attrs(200))
	return g
}

func TestShardPeerEndpoints(t *testing.T) {
	host := twoRegionHost()
	svc := service.New(service.NewModel(host), service.Config{})
	srv := New(svc)
	srv.ConfigureShard("west", []string{"west"})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var st service.ShardStats
	resp, err := http.Get(ts.URL + "/internal/shard/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Name != "west" || st.NodeCount != 10 || st.MaxDegree < 5 {
		t.Errorf("stats = %+v", st)
	}

	var nodes ShardNodesResponse
	resp, err = http.Get(ts.URL + "/internal/shard/nodes")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nodes.Names) != 10 || nodes.Version != 1 {
		t.Errorf("nodes = %d names v%d", len(nodes.Names), nodes.Version)
	}

	// A delta naming an unknown node is the 409 stale class on the peer
	// protocol, exactly like the public /deltas.
	resp, _ = postJSON(t, ts.URL+"/internal/shard/delta", DeltaRequest{
		RemoveNodes: []string{"ghost"},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale delta answered %d, want 409", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/internal/shard/delta", DeltaRequest{
		SetNodeAttrs: []DeltaNodeAttrs{{Node: "n0", Attrs: map[string]any{"cpu": 8.0}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta answered %d: %s", resp.StatusCode, body)
	}

	var ver map[string]uint64
	resp, err = http.Get(ts.URL + "/internal/shard/version")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ver); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ver["version"] != 2 {
		t.Errorf("version = %d, want 2 after one delta", ver["version"])
	}
}

// remoteTier partitions the host by region and boots one real HTTP shard
// server per part, returning a coordinator over RemoteShard clients.
func remoteTier(t *testing.T, host *graph.Graph) *service.Coordinator {
	t.Helper()
	part, err := graph.PartitionByAttr(host, "region", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, 0, len(part.Parts))
	for label := range part.Parts {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	shards := make([]service.Shard, 0, len(labels))
	for _, label := range labels {
		svc := service.New(service.NewModel(part.Parts[label]), service.Config{})
		srv := New(svc)
		srv.ConfigureShard(label, []string{label})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		rs, err := NewRemoteShard(ts.URL, RemoteShardConfig{Name: label, Client: ts.Client()})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, rs)
	}
	coord, err := service.NewCoordinator(shards, service.CoordinatorConfig{
		RegionAttr: "region",
		Boundary:   part.Cuts,
		Directed:   host.Directed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestCoordinatorEquivalence is the distributed tier's acceptance
// property: on a partitioned host, the coordinator over LocalShards and
// the coordinator over loopback-HTTP RemoteShards both find a mapping iff
// the single-process global Service does — including a query whose only
// solutions span a cut edge — and region-local queries get identical
// named mappings from both tiers.
func TestCoordinatorEquivalence(t *testing.T) {
	host := twoRegionHost()
	global := service.New(service.NewModel(host), service.Config{})
	local, err := service.NewFederation(host, "region", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	remote := remoteTier(t, host)

	cases := []struct {
		name     string
		lo, hi   float64
		queryGen func() *graph.Graph
		spanning bool
	}{
		{"region-local triangle", 5, 20, func() *graph.Graph { return topo.Clique(3) }, false},
		{"cut-spanning pair", 150, 250, func() *graph.Graph { return topo.Line(2) }, true},
		{"infeasible window", 300, 400, func() *graph.Graph { return topo.Line(2) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.queryGen()
			topo.SetDelayWindow(q, tc.lo, tc.hi)
			req := service.Request{
				Query:          q,
				EdgeConstraint: avgDelayWindowSrc,
				MaxResults:     1,
				Timeout:        10 * time.Second,
			}
			gresp, err := global.Embed(req)
			if err != nil {
				t.Fatal(err)
			}
			globalFound := len(gresp.Named) > 0

			lresp, lwhere, err := local.Embed(req)
			if err != nil {
				t.Fatal(err)
			}
			rresp, rwhere, err := remote.Embed(req)
			if err != nil {
				t.Fatal(err)
			}
			if found := len(lresp.Named) > 0; found != globalFound {
				t.Errorf("local tier found=%v, global found=%v", found, globalFound)
			}
			if found := len(rresp.Named) > 0; found != globalFound {
				t.Errorf("remote tier found=%v, global found=%v", found, globalFound)
			}
			if tc.spanning && globalFound {
				if !strings.HasPrefix(lwhere, "cross:") || !strings.HasPrefix(rwhere, "cross:") {
					t.Errorf("spanning query answered by %q / %q, want cross:*", lwhere, rwhere)
				}
			}
			if !tc.spanning && globalFound {
				// Region-local answers must be identical across the tiers:
				// same shard, same named mapping.
				if lwhere != rwhere {
					t.Errorf("answered by %q locally, %q remotely", lwhere, rwhere)
				}
				if len(lresp.Named) != len(rresp.Named) {
					t.Fatalf("local %d mappings, remote %d", len(lresp.Named), len(rresp.Named))
				}
				for qName, rName := range lresp.Named[0] {
					if rresp.Named[0][qName] != rName {
						t.Errorf("named mapping diverges at %q: local %q, remote %q",
							qName, rName, rresp.Named[0][qName])
					}
				}
			}
			// Every found mapping must verify edge-by-edge on the global
			// host via names.
			for _, resp := range []*service.Response{lresp, rresp} {
				if len(resp.Named) == 0 {
					continue
				}
				assertNamedValid(t, q, host, resp.Named[0])
			}
		})
	}
}

// assertNamedValid checks a named mapping's adjacency and delay windows
// against the global host by names.
func assertNamedValid(t *testing.T, q, host *graph.Graph, named service.NamedMapping) {
	t.Helper()
	for e := 0; e < q.NumEdges(); e++ {
		ed := q.Edge(graph.EdgeID(e))
		hu, ok1 := host.NodeByName(named[q.Node(ed.From).Name])
		hv, ok2 := host.NodeByName(named[q.Node(ed.To).Name])
		if !ok1 || !ok2 {
			t.Fatalf("named mapping references unknown hosts: %v", named)
		}
		he, ok := host.EdgeBetween(hu, hv)
		if !ok {
			t.Fatalf("query edge %d mapped to non-adjacent hosts %v-%v", e, hu, hv)
		}
		avg, _ := host.Edge(he).Attrs.Float("avgDelay")
		lo, _ := ed.Attrs.Float("minDelay")
		hi, _ := ed.Attrs.Float("maxDelay")
		if avg < lo || avg > hi {
			t.Errorf("query edge %d rides a %vms host edge outside [%v, %v]", e, avg, lo, hi)
		}
	}
}

func TestRemoteShardTransport(t *testing.T) {
	// Retry-with-backoff: the first two attempts hit a dead socket; the
	// peer protocol client must absorb transport failures on idempotent
	// calls. (A dead server forever exhausts retries and errors.)
	rs, err := NewRemoteShard("127.0.0.1:1", RemoteShardConfig{
		Timeout: 200 * time.Millisecond,
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Stats(); err == nil {
		t.Error("dead peer produced no error")
	}
	if rs.Name() != "127.0.0.1:1" {
		t.Errorf("default name = %q", rs.Name())
	}
	if _, err := NewRemoteShard("://", RemoteShardConfig{}); err == nil {
		t.Error("bad URL accepted")
	}

	// A live peer: stats round-trip updates the cached routing facts.
	host := topo.Clique(4)
	svc := service.New(service.NewModel(host), service.Config{})
	srv := New(svc)
	srv.ConfigureShard("solo", []string{"solo"})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	live, err := NewRemoteShard(ts.URL, RemoteShardConfig{Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := live.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "solo" || st.NodeCount != 4 || st.MaxDegree != 3 {
		t.Errorf("stats = %+v", st)
	}
	if live.NodeCount() != 4 {
		t.Errorf("cached node count = %d", live.NodeCount())
	}
	if got := live.Regions(); len(got) != 1 || got[0] != "solo" {
		t.Errorf("cached regions = %v", got)
	}

	// Deltas round-trip; a stale name surfaces as ErrStaleRouting.
	v, err := live.ApplyDelta(&graph.Delta{
		SetNodeAttrs: []graph.NodeAttrUpdate{{Node: "n0", Set: graph.Attrs{}.SetNum("cpu", 2)}},
	})
	if err != nil || v != 2 {
		t.Fatalf("ApplyDelta = (%d, %v), want (2, nil)", v, err)
	}
	if _, err := live.ApplyDelta(&graph.Delta{RemoveNodes: []string{"ghost"}}); err == nil {
		t.Error("stale delta produced no error")
	} else if !strings.Contains(err.Error(), service.ErrStaleRouting.Error()) {
		t.Errorf("stale delta error = %v, want ErrStaleRouting class", err)
	}
}

func TestClusterServer(t *testing.T) {
	host := twoRegionHost()
	coord, err := service.NewFederation(host, "region", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewClusterServer(coord))
	t.Cleanup(ts.Close)

	// A region-local query routes to one shard.
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 5, 20)
	queryML, err := graphml.EncodeString(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML:   queryML,
		EdgeConstraint: avgDelayWindowSrc,
		MaxResults:     1,
		TimeoutMs:      10000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embed answered %d: %s", resp.StatusCode, body)
	}
	if by := resp.Header.Get(AnsweredByHeader); by != "west" && by != "east" {
		t.Errorf("answered by %q, want a single shard", by)
	}
	var er EmbedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Mappings) == 0 {
		t.Fatal("no mapping over HTTP")
	}

	// A spanning query comes back stitched.
	q2 := topo.Line(2)
	topo.SetDelayWindow(q2, 150, 250)
	queryML2, err := graphml.EncodeString(q2)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML:   queryML2,
		EdgeConstraint: avgDelayWindowSrc,
		MaxResults:     1,
		TimeoutMs:      10000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embed answered %d: %s", resp.StatusCode, body)
	}
	if by := resp.Header.Get(AnsweredByHeader); !strings.HasPrefix(by, "cross:") {
		t.Errorf("spanning query answered by %q", by)
	}

	// A delta routes to its owning shard only; /cluster reports the new
	// version and the routing summary.
	resp, body = postJSON(t, ts.URL+"/deltas", DeltaRequest{
		SetNodeAttrs: []DeltaNodeAttrs{{Node: "n7", Attrs: map[string]any{"cpu": 4.0}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta answered %d: %s", resp.StatusCode, body)
	}
	var dr ClusterDeltaResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Versions) != 1 {
		t.Errorf("delta touched %v, want the east shard only", dr.Versions)
	}
	if _, ok := dr.Versions["east"]; !ok {
		t.Errorf("delta versions = %v, want east", dr.Versions)
	}

	resp, _ = postJSON(t, ts.URL+"/deltas", DeltaRequest{RemoveNodes: []string{"ghost"}})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale delta answered %d, want 409", resp.StatusCode)
	}

	var info service.ClusterInfo
	hresp, err := http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if len(info.Shards) != 2 || info.RoutedNodes != 10 || info.BoundaryEdges != 2 {
		t.Errorf("cluster = %+v", info)
	}
	if info.CoordinatorNodes != 0 {
		t.Errorf("coordinator models %d nodes, want 0", info.CoordinatorNodes)
	}
	if info.CrossEmbeds == 0 {
		t.Error("cross-shard embed not counted")
	}
	for _, s := range info.Shards {
		if s.Name == "east" && s.ModelVersion < 2 {
			t.Errorf("east version = %d, want ≥2 after the delta", s.ModelVersion)
		}
	}
}
