// Serve-path performance layer: the request-side allocation sinks that
// profiling BenchmarkServePath surfaced live here.
//
// Two sinks dominate a warm /embed request. First, every handler decodes
// the query network from its GraphML wire form — ~1800 allocations for a
// small query, ~80% of the request's total — even though load generators
// and monitoring loops resubmit the same handful of query shapes
// verbatim. queryCache memoizes raw GraphML text → decoded *graph.Graph
// under a small LRU; decoded graphs are immutable by the service's
// copy-on-write discipline (Negotiate clones before relaxing windows, and
// no handler mutates a decoded query), so one decode can serve every
// subsequent request that carries byte-identical GraphML. Second, every
// JSON reply allocated a fresh encoder buffer; writeJSON now rents
// buffers from a sync.Pool (see httpapi.go).
//
// GET /stats additionally reports the serve-path gauges defined here:
// runtime memory counters, the model's snapshot-retirement epochs and the
// query-cache hit ratio, nested beside the flat engine counters.
package httpapi

import (
	"bytes"
	"container/list"
	"runtime"
	"sync"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/service"
)

// defaultQueryCacheCap bounds the decoded-query LRU. Steady workloads
// cycle a few dozen query shapes; 256 keeps the worst-case footprint
// (256 small query graphs plus their GraphML keys) in the low megabytes.
const defaultQueryCacheCap = 256

// queryCache is a mutex-guarded LRU from raw GraphML text to the decoded
// query graph. Values are shared across requests and MUST be treated as
// immutable by every caller.
type queryCache struct {
	mu     sync.Mutex
	cap    int
	m      map[string]*list.Element
	l      list.List // front = most recently used
	hits   uint64
	misses uint64
}

type queryCacheEntry struct {
	key string
	g   *graph.Graph
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = defaultQueryCacheCap
	}
	c := &queryCache{cap: capacity, m: make(map[string]*list.Element)}
	c.l.Init()
	return c
}

// decode returns the parsed query for raw, serving repeats from the LRU.
// Decode errors are returned without caching (malformed documents are not
// worth an entry). Concurrent misses on the same key may decode twice;
// the last insert wins, which is harmless because decoded graphs of the
// same text are interchangeable.
func (c *queryCache) decode(raw string) (*graph.Graph, error) {
	c.mu.Lock()
	if el, ok := c.m[raw]; ok {
		c.l.MoveToFront(el)
		c.hits++
		g := el.Value.(*queryCacheEntry).g
		c.mu.Unlock()
		return g, nil
	}
	c.misses++
	c.mu.Unlock()

	g, err := graphml.DecodeString(raw)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if el, ok := c.m[raw]; ok {
		// Lost the decode race; keep the incumbent so repeated lookups
		// return a stable pointer.
		c.l.MoveToFront(el)
		g = el.Value.(*queryCacheEntry).g
	} else {
		c.m[raw] = c.l.PushFront(&queryCacheEntry{key: raw, g: g})
		if c.l.Len() > c.cap {
			oldest := c.l.Back()
			c.l.Remove(oldest)
			delete(c.m, oldest.Value.(*queryCacheEntry).key)
		}
	}
	c.mu.Unlock()
	return g, nil
}

func (c *queryCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.l.Len()
}

// responseBufPool recycles the JSON encoding buffers writeJSON rents.
// Buffers that grew past maxPooledResponseBuf (a giant /embed answer with
// thousands of mappings) are dropped instead of pinned.
var responseBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledResponseBuf = 1 << 20

// serveStatsJSON nests the serve-path gauges beside the flat engine
// counters on GET /stats: runtime memory state, the model's
// snapshot-retirement epochs and the query-decode cache ratio. It is
// embedded (untagged) so the engine fields stay at the top level for
// existing clients.
type serveStatsJSON struct {
	Model   service.EpochStats `json:"model"`
	Runtime runtimeStatsJSON   `json:"runtime"`
	API     apiStatsJSON       `json:"api"`
}

// runtimeStatsJSON is the slice of runtime.MemStats the load harness
// diffs across a run to report server-side allocation behavior.
type runtimeStatsJSON struct {
	HeapAllocBytes  uint64 `json:"heapAllocBytes"`
	HeapObjects     uint64 `json:"heapObjects"`
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	Mallocs         uint64 `json:"mallocs"`
	Frees           uint64 `json:"frees"`
	NumGC           uint32 `json:"numGC"`
	PauseTotalNs    uint64 `json:"pauseTotalNs"`
	NumGoroutine    int    `json:"numGoroutine"`
}

type apiStatsJSON struct {
	QueryCacheHits    uint64 `json:"queryCacheHits"`
	QueryCacheMisses  uint64 `json:"queryCacheMisses"`
	QueryCacheEntries int    `json:"queryCacheEntries"`
}

func (s *Server) serveSections() serveStatsJSON {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	hits, misses, entries := s.queries.stats()
	return serveStatsJSON{
		Model: s.svc.Model().EpochStats(),
		Runtime: runtimeStatsJSON{
			HeapAllocBytes:  ms.HeapAlloc,
			HeapObjects:     ms.HeapObjects,
			TotalAllocBytes: ms.TotalAlloc,
			Mallocs:         ms.Mallocs,
			Frees:           ms.Frees,
			NumGC:           ms.NumGC,
			PauseTotalNs:    ms.PauseTotalNs,
			NumGoroutine:    runtime.NumGoroutine(),
		},
		API: apiStatsJSON{
			QueryCacheHits:    hits,
			QueryCacheMisses:  misses,
			QueryCacheEntries: entries,
		},
	}
}
