package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"testing"

	"netembed/internal/engine"
	"netembed/internal/graphml"
	"netembed/internal/index"
	"netembed/internal/service"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// Steady-state allocation budgets for the serve path, pinned after the
// PR-8 pooling work (search-state sync.Pool in core, query-decode LRU
// and response-buffer reuse here). Before that work a warm /embed ran
// ~2300 allocs; pooling plus the decode cache brought it under 200. The
// budgets leave slack for runtime noise (background engine goroutines
// allocate on their own schedule) while still catching a regression that
// reintroduces per-request GraphML decoding (~1800 allocs) or per-search
// filter construction (~350 allocs).
const (
	warmEmbedAllocBudget    = 700
	cachedSubmitAllocBudget = 700
)

func newAllocServer(t *testing.T, cacheCap int) (*Server, []byte) {
	t.Helper()
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(1)))
	q, _, err := topo.Subgraph(host, 6, 8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	queryXML, err := graphml.EncodeString(q)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]interface{}{"query": queryXML, "maxResults": 1})
	if err != nil {
		t.Fatal(err)
	}
	model := service.NewModel(host)
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	eng := engine.New(svc, engine.Config{Workers: 1, QueueDepth: 64, CacheCapacity: cacheCap})
	t.Cleanup(func() { eng.Close(context.Background()) })
	return NewWithEngine(svc, eng), body
}

// TestWarmEmbedAllocBudget pins the steady-state allocation count of a
// warm POST /embed that runs a real search every time (result cache
// disabled): pooled searcher + filters, cached query decode, pooled
// response buffer. Blowing the budget means one of those reuse layers
// regressed.
func TestWarmEmbedAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	api, body := newAllocServer(t, -1)
	do := func() {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest("POST", "/embed", bytes.NewReader(body)))
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	for i := 0; i < 5; i++ {
		do() // prime pools and the query-decode cache
	}
	avg := testing.AllocsPerRun(50, do)
	t.Logf("warm /embed: %.1f allocs/op (budget %d)", avg, warmEmbedAllocBudget)
	if avg > warmEmbedAllocBudget {
		t.Errorf("warm /embed allocates %.1f/op, budget %d — a serve-path reuse layer regressed",
			avg, warmEmbedAllocBudget)
	}
}

// TestCachedJobSubmitAllocBudget pins the allocation count of submitting
// a job whose answer is served from the engine's model-versioned result
// cache and polling it to completion — the cheapest full round trip the
// API offers, and the one the load harness leans on hardest.
func TestCachedJobSubmitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	api, body := newAllocServer(t, 64)
	submit := func() string {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", bytes.NewReader(body)))
		if rec.Code != 202 && rec.Code != 200 {
			t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
		}
		var st JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}
	poll := func(id string) {
		// AllocsPerRun pins GOMAXPROCS to 1, so the loop must yield or the
		// engine worker goroutine never gets scheduled to finish the job.
		for i := 0; i < 10000; i++ {
			runtime.Gosched()
			rec := httptest.NewRecorder()
			api.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+id, nil))
			var st JobStatus
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			if st.State == "done" || st.State == "failed" {
				return
			}
		}
		t.Fatal("job never finished")
	}
	for i := 0; i < 5; i++ {
		poll(submit()) // fill the result cache, prime pools
	}
	avg := testing.AllocsPerRun(50, func() { poll(submit()) })
	t.Logf("cached job submit+poll: %.1f allocs/op (budget %d)", avg, cachedSubmitAllocBudget)
	if avg > cachedSubmitAllocBudget {
		t.Errorf("cached job submit+poll allocates %.1f/op, budget %d — the cached serve path regressed",
			avg, cachedSubmitAllocBudget)
	}
}
