package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"netembed/internal/engine"
)

// registerJobs wires the asynchronous job endpoints backed by the engine:
//
//	POST   /jobs        submit an embedding job (JSON body = EmbedRequest)
//	GET    /jobs/{id}   poll a job's lifecycle state and, when done, result
//	DELETE /jobs/{id}   cancel a queued or running job
//	GET    /stats       engine counters (queue, cache, rejections)
func (s *Server) registerJobs() {
	s.mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /stats", s.handleStats)
}

// JobStatus is the JSON representation of a job on every /jobs reply.
type JobStatus struct {
	// ID names the job for polling and cancellation.
	ID string `json:"id"`
	// State is one of queued, running, done, failed, canceled.
	State string `json:"state"`
	// Cached is true when the result was served from the engine's
	// model-versioned result cache instead of a fresh search.
	Cached bool `json:"cached,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt are RFC 3339; the latter two
	// are omitted until the job reaches that point.
	SubmittedAt string `json:"submittedAt"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	// Error carries the failure (or cancellation) reason.
	Error string `json:"error,omitempty"`
	// Result is the embedding answer, present once State is done.
	Result *EmbedResponse `json:"result,omitempty"`
	// BestSoFar / BestCost expose a running optimizing job's current
	// incumbent — a feasible embedding and its objective value — so
	// anytime callers can act before the search proves optimality. They
	// appear only while an optimizing job runs (Result supersedes them).
	BestSoFar map[string]string `json:"bestSoFar,omitempty"`
	BestCost  *float64          `json:"bestCost,omitempty"`
}

func jobStatusJSON(info engine.Info) JobStatus {
	out := JobStatus{
		ID:          string(info.ID),
		State:       string(info.State),
		Cached:      info.FromCache,
		SubmittedAt: info.Submitted.Format(time.RFC3339Nano),
	}
	if !info.Started.IsZero() {
		out.StartedAt = info.Started.Format(time.RFC3339Nano)
	}
	if !info.Finished.IsZero() {
		out.FinishedAt = info.Finished.Format(time.RFC3339Nano)
	}
	if info.Err != nil {
		out.Error = info.Err.Error()
	}
	if info.Response != nil {
		r := embedResponseJSON(info.Response)
		r.Cached = info.FromCache
		out.Result = &r
	} else if info.BestSoFar != nil {
		out.BestSoFar = map[string]string(info.BestSoFar)
		cost := info.BestCost
		out.BestCost = &cost
	}
	return out
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req EmbedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	sreq, err := s.decodeEmbedRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.eng.Submit(sreq)
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, engine.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+string(job.ID()))
	writeJSON(w, http.StatusAccepted, jobStatusJSON(job.Info()))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(engine.JobID(r.PathValue("id")))
	if !ok {
		writeError(w, http.StatusNotFound, engine.ErrJobNotFound)
		return
	}
	writeJSON(w, http.StatusOK, jobStatusJSON(job.Info()))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.eng.Cancel(engine.JobID(r.PathValue("id")))
	switch {
	case errors.Is(err, engine.ErrJobNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, engine.ErrJobFinished):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobStatusJSON(info))
}

// statsJSON is the GET /stats reply: the flat engine counters (top level,
// as always) plus the nested serve-path sections (model epochs, runtime
// memory, query cache). lifecycleStatsEnvelope is the same shape when a
// lifecycle manager is attached.
type statsJSON struct {
	engine.Stats
	serveStatsJSON
}

type lifecycleStatsEnvelope struct {
	lifecycleStatsJSON
	serveStatsJSON
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sections := s.serveSections()
	if s.lc != nil {
		writeJSON(w, http.StatusOK, lifecycleStatsEnvelope{
			lifecycleStatsJSON: foldLifecycleStats(s.eng.Stats(), s.lc.Stats()),
			serveStatsJSON:     sections,
		})
		return
	}
	writeJSON(w, http.StatusOK, statsJSON{Stats: s.eng.Stats(), serveStatsJSON: sections})
}
