package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/index"
	"netembed/internal/service"
)

// getJSON issues a GET and returns the response plus its body.
func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// pathTestServer serves a line host h0-h1-h2-h3 with 10ms hops.
func pathTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	host := graph.NewUndirected()
	for _, name := range []string{"h0", "h1", "h2", "h3"} {
		host.AddNode(name, nil)
	}
	for i := 0; i < 3; i++ {
		host.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Attrs{}.
			SetNum("avgDelay", 10).SetNum("bandwidth", 100))
	}
	model := service.NewModel(host)
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	ts := httptest.NewServer(New(svc))
	t.Cleanup(ts.Close)
	return ts
}

// pathQueryGraphML is a single query edge a-b demanding a 15..25ms
// composed delay — satisfiable only by 2-hop witnesses on the test host.
func pathQueryGraphML(t *testing.T) string {
	t.Helper()
	q := graph.NewUndirected()
	q.AddNode("a", nil)
	q.AddNode("b", nil)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25))
	ml, err := graphml.EncodeString(q)
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

func TestEmbedPathMode(t *testing.T) {
	ts := pathTestServer(t)
	resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML: pathQueryGraphML(t),
		Algorithm:    "path",
		MaxHops:      2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EmbedResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "complete" || len(out.Mappings) == 0 {
		t.Fatalf("status %s, %d mappings", out.Status, len(out.Mappings))
	}
	if len(out.Paths) != len(out.Mappings) {
		t.Fatalf("paths %d not parallel to mappings %d", len(out.Paths), len(out.Mappings))
	}
	for i, witnesses := range out.Paths {
		if len(witnesses) != 1 || len(witnesses[0].Path) != 3 || witnesses[0].Cost != 20 {
			t.Fatalf("solution %d witnesses = %+v", i, witnesses)
		}
		if witnesses[0].Path[0] != out.Mappings[i]["a"] || witnesses[0].Path[2] != out.Mappings[i]["b"] {
			t.Fatalf("solution %d witness %v does not join mapping %v", i, witnesses[0].Path, out.Mappings[i])
		}
	}
	probes, ok := out.Stats["witnessProbes"].(float64)
	if !ok || probes <= 0 {
		t.Errorf("stats witnessProbes = %v, want > 0", out.Stats["witnessProbes"])
	}
}

func TestEmbedPathModeMetricsAndJobs(t *testing.T) {
	ts := pathTestServer(t)
	req := EmbedRequest{
		QueryGraphML: pathQueryGraphML(t),
		Algorithm:    "path",
		MaxHops:      2,
		Metrics: []MetricSpecJSON{
			{Attr: "avgDelay", Rule: "additive", LoAttr: "minDelay", HiAttr: "maxDelay"},
			{Attr: "bandwidth", Rule: "bottleneck", LoAttr: "minBandwidth", MissingFails: true},
		},
	}
	// Through the asynchronous job lifecycle: submit, then poll.
	resp, body := postJSON(t, ts.URL+"/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var job JobStatus
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	var final JobStatus
	for i := 0; i < 200; i++ {
		getResp, getBody := getJSON(t, ts.URL+"/jobs/"+job.ID)
		if getResp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", getResp.StatusCode, getBody)
		}
		if err := json.Unmarshal(getBody, &final); err != nil {
			t.Fatal(err)
		}
		if final.State == "done" || final.State == "failed" || final.State == "canceled" {
			break
		}
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if len(final.Result.Mappings) == 0 || len(final.Result.Paths) != len(final.Result.Mappings) {
		t.Fatalf("job result: %d mappings, %d paths", len(final.Result.Mappings), len(final.Result.Paths))
	}

	// The cumulative engine counters surface on /stats.
	statsResp, statsBody := getJSON(t, ts.URL+"/stats")
	if statsResp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", statsResp.StatusCode)
	}
	var stats map[string]any
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if probes, _ := stats["searchWitnessProbes"].(float64); probes <= 0 {
		t.Errorf("/stats searchWitnessProbes = %v, want > 0", stats["searchWitnessProbes"])
	}
}

func TestEmbedPathModeBadRequests(t *testing.T) {
	ts := pathTestServer(t)
	for name, req := range map[string]EmbedRequest{
		"negative maxHops": {
			QueryGraphML: pathQueryGraphML(t),
			Algorithm:    "path",
			MaxHops:      -2,
		},
		"unknown metric rule": {
			QueryGraphML: pathQueryGraphML(t),
			Algorithm:    "path",
			Metrics:      []MetricSpecJSON{{Attr: "avgDelay", Rule: "geometric"}},
		},
		"metric without attr": {
			QueryGraphML: pathQueryGraphML(t),
			Algorithm:    "path",
			Metrics:      []MetricSpecJSON{{Rule: "additive"}},
		},
	} {
		resp, body := postJSON(t, ts.URL+"/embed", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
}

// TestEmbedPathModeCacheFingerprint pins that path tuning reaches the
// result cache: the same query at different hop bounds must not share an
// answer.
func TestEmbedPathModeCacheFingerprint(t *testing.T) {
	ts := pathTestServer(t)
	run := func(maxHops int) (EmbedResponse, bool) {
		resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
			QueryGraphML: pathQueryGraphML(t),
			Algorithm:    "path",
			MaxHops:      maxHops,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out EmbedResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out, out.Cached
	}
	withTwo, _ := run(2)
	if len(withTwo.Mappings) == 0 {
		t.Fatal("2-hop run found nothing")
	}
	withOne, cached := run(1)
	if cached {
		t.Fatal("different maxHops served from the cache")
	}
	if len(withOne.Mappings) != 0 {
		t.Fatalf("1-hop run found %d mappings, want none (no single hop satisfies the window)", len(withOne.Mappings))
	}
	// Identical resubmission is a cache hit.
	again, cached := run(2)
	if !cached || len(again.Mappings) != len(withTwo.Mappings) {
		t.Fatalf("identical path request not served from cache (cached=%v)", cached)
	}
	if !strings.HasPrefix(again.Status, "complete") {
		t.Fatalf("cached status %s", again.Status)
	}
}
