package httpapi

import (
	"encoding/json"
	"testing"

	"netembed/internal/graph"
)

// FuzzDeltaDecode drives arbitrary JSON through the /deltas wire
// decoder and, when a delta survives validation, applies it to a small
// model graph. The invariants: decodeDelta never panics on any decoded
// DeltaRequest, a delta it accepts never breaks ApplyDelta's
// all-or-nothing contract (nil result iff error), and an applied delta
// leaves the original graph untouched (the copy-on-write contract the
// monitor pipeline relies on).
func FuzzDeltaDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"removeNodes":["a"]}`))
	f.Add([]byte(`{"addNodes":[{"name":"x","attrs":{"capacity":3}}],"addEdges":[{"source":"x","target":"a"}]}`))
	f.Add([]byte(`{"setNodeAttrs":[{"node":"a","attrs":{"capacity":null,"zone":"east"}}]}`))
	f.Add([]byte(`{"removeEdges":[{"source":"a","target":"b"}],"setEdgeAttrs":[{"source":"b","target":"c","attrs":{"avgDelay":2.5}}]}`))
	f.Add([]byte(`{"addNodes":[{"name":""}]}`))
	f.Add([]byte(`{"addNodes":[{"name":"a","attrs":{"bad":[1,2]}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req DeltaRequest
		if json.Unmarshal(data, &req) != nil {
			t.Skip("not a DeltaRequest")
		}
		d, err := decodeDelta(&req)
		if err != nil {
			return // rejected as malformed: the handler's 400 path
		}
		if d == nil {
			t.Fatal("decodeDelta returned nil delta with nil error")
		}

		g := graph.NewUndirected()
		a := g.AddNode("a", graph.Attrs{}.SetNum("capacity", 2))
		b := g.AddNode("b", nil)
		c := g.AddNode("c", nil)
		g.MustAddEdge(a, b, graph.Attrs{}.SetNum("avgDelay", 1))
		g.MustAddEdge(b, c, nil)

		next, err := g.ApplyDelta(d)
		if (next == nil) != (err != nil) {
			t.Fatalf("ApplyDelta all-or-nothing contract broken: next=%v err=%v", next, err)
		}
		// The original graph must be untouched whatever happened.
		if g.NumNodes() != 3 || g.NumEdges() != 2 {
			t.Fatalf("ApplyDelta mutated the receiver: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
		if id, ok := g.NodeByName("a"); !ok {
			t.Fatal("ApplyDelta dropped node a from the receiver")
		} else if v, ok := g.Node(id).Attrs.Float("capacity"); !ok || v != 2 {
			t.Fatalf("ApplyDelta mutated node a's attrs in the receiver: capacity=%v ok=%v", v, ok)
		}
	})
}
