package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"netembed/internal/graph"
	"netembed/internal/service"
)

// registerDeltas wires the delta-native model update path and the batch
// embedding endpoint:
//
//	POST /deltas       publish an incremental model change (JSON body =
//	                   DeltaRequest); the model graph is patched
//	                   copy-on-write and an attached capability index is
//	                   patched instead of rebuilt
//	POST /embed/batch  answer several embedding queries against one
//	                   consistent model snapshot (JSON body =
//	                   BatchEmbedRequest)
func (s *Server) registerDeltas() {
	s.mux.HandleFunc("POST /deltas", s.handleDeltas)
	s.mux.HandleFunc("POST /embed/batch", s.handleEmbedBatch)
}

// DeltaRequest is the JSON body of POST /deltas. All elements are
// addressed by name; attribute values may be numbers, strings or
// booleans, and an explicit null removes the attribute. Operations apply
// in the documented graph.Delta order: edge/node removals, node/edge
// additions, then attribute edits.
type DeltaRequest struct {
	RemoveEdges  []DeltaEdgeRef   `json:"removeEdges,omitempty"`
	RemoveNodes  []string         `json:"removeNodes,omitempty"`
	AddNodes     []DeltaNode      `json:"addNodes,omitempty"`
	AddEdges     []DeltaEdge      `json:"addEdges,omitempty"`
	SetNodeAttrs []DeltaNodeAttrs `json:"setNodeAttrs,omitempty"`
	SetEdgeAttrs []DeltaEdgeAttrs `json:"setEdgeAttrs,omitempty"`
}

// DeltaNode adds one named node.
type DeltaNode struct {
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// DeltaEdge adds one edge between named nodes.
type DeltaEdge struct {
	Source string         `json:"source"`
	Target string         `json:"target"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// DeltaEdgeRef removes one edge by endpoint names.
type DeltaEdgeRef struct {
	Source string `json:"source"`
	Target string `json:"target"`
}

// DeltaNodeAttrs edits one node's attributes (null value = remove).
type DeltaNodeAttrs struct {
	Node  string         `json:"node"`
	Attrs map[string]any `json:"attrs"`
}

// DeltaEdgeAttrs edits one edge's attributes (null value = remove).
type DeltaEdgeAttrs struct {
	Source string         `json:"source"`
	Target string         `json:"target"`
	Attrs  map[string]any `json:"attrs"`
}

// DeltaResponse is the JSON reply of POST /deltas.
type DeltaResponse struct {
	// Version is the model version the delta published.
	Version uint64 `json:"version"`
	// Structural is true when the delta changed the topology (IDs were
	// renumbered and any capability index was rebuilt rather than
	// patched).
	Structural bool `json:"structural"`
}

// jsonAttrs splits a JSON attribute map into a typed set bag and the
// names explicitly nulled out.
func jsonAttrs(m map[string]any) (graph.Attrs, []string, error) {
	var set graph.Attrs
	var unset []string
	for name, v := range m {
		switch x := v.(type) {
		case nil:
			unset = append(unset, name)
		case float64:
			set = set.SetNum(name, x)
		case string:
			set = set.SetStr(name, x)
		case bool:
			set = set.SetBool(name, x)
		default:
			return nil, nil, fmt.Errorf("attribute %q has unsupported JSON type %T", name, v)
		}
	}
	return set, unset, nil
}

// decodeDelta converts the wire format into a graph.Delta. Requests that
// can never succeed against any model — malformed attribute values,
// nameless or duplicated additions, self-loops — are rejected here so the
// handler answers 400; only name resolution against the live model (a
// staleness question) is left to Model.Apply and its 409.
func decodeDelta(req *DeltaRequest) (*graph.Delta, error) {
	d := &graph.Delta{RemoveNodes: req.RemoveNodes}
	for _, ref := range req.RemoveEdges {
		d.RemoveEdges = append(d.RemoveEdges, graph.EdgeRef{Source: ref.Source, Target: ref.Target})
	}
	addedNode := make(map[string]bool, len(req.AddNodes))
	for _, n := range req.AddNodes {
		if n.Name == "" {
			return nil, fmt.Errorf("addNodes: node without a name")
		}
		if addedNode[n.Name] {
			return nil, fmt.Errorf("addNodes: node %q added twice", n.Name)
		}
		addedNode[n.Name] = true
		attrs, unset, err := jsonAttrs(n.Attrs)
		if err != nil {
			return nil, fmt.Errorf("addNodes %q: %v", n.Name, err)
		}
		if len(unset) > 0 {
			return nil, fmt.Errorf("addNodes %q: null attribute values are not allowed on additions", n.Name)
		}
		d.AddNodes = append(d.AddNodes, graph.NodeSpec{Name: n.Name, Attrs: attrs})
	}
	for _, e := range req.AddEdges {
		if e.Source == e.Target {
			return nil, fmt.Errorf("addEdges %q-%q: self-loops are not allowed", e.Source, e.Target)
		}
		attrs, unset, err := jsonAttrs(e.Attrs)
		if err != nil {
			return nil, fmt.Errorf("addEdges %q-%q: %v", e.Source, e.Target, err)
		}
		if len(unset) > 0 {
			return nil, fmt.Errorf("addEdges %q-%q: null attribute values are not allowed on additions", e.Source, e.Target)
		}
		d.AddEdges = append(d.AddEdges, graph.EdgeSpec{Source: e.Source, Target: e.Target, Attrs: attrs})
	}
	for _, up := range req.SetNodeAttrs {
		set, unset, err := jsonAttrs(up.Attrs)
		if err != nil {
			return nil, fmt.Errorf("setNodeAttrs %q: %v", up.Node, err)
		}
		d.SetNodeAttrs = append(d.SetNodeAttrs, graph.NodeAttrUpdate{Node: up.Node, Set: set, Unset: unset})
	}
	for _, up := range req.SetEdgeAttrs {
		set, unset, err := jsonAttrs(up.Attrs)
		if err != nil {
			return nil, fmt.Errorf("setEdgeAttrs %q-%q: %v", up.Source, up.Target, err)
		}
		d.SetEdgeAttrs = append(d.SetEdgeAttrs, graph.EdgeAttrUpdate{Source: up.Source, Target: up.Target, Set: set, Unset: unset})
	}
	return d, nil
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	d, err := decodeDelta(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	version, err := s.svc.Model().Apply(d)
	if err != nil {
		// decodeDelta already rejected requests that are malformed in
		// themselves; what remains is name resolution against the live
		// model — unknown/missing names or an addition colliding with an
		// existing element — i.e. the client's view is stale.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, DeltaResponse{Version: version, Structural: d.Structural()})
}

// BatchEmbedRequest is the JSON body of POST /embed/batch.
type BatchEmbedRequest struct {
	Requests []EmbedRequest `json:"requests"`
}

// BatchEmbedResult is one item's outcome; exactly one field is set.
type BatchEmbedResult struct {
	Result *EmbedResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// BatchEmbedResponse is the JSON reply of POST /embed/batch.
type BatchEmbedResponse struct {
	// ModelVersion is the single snapshot every item was answered
	// against.
	ModelVersion uint64             `json:"modelVersion"`
	Results      []BatchEmbedResult `json:"results"`
}

// maxBatchItems bounds one /embed/batch request; larger batches answer
// 400 so a single call cannot monopolize the handler goroutine
// indefinitely.
const maxBatchItems = 256

func (s *Server) handleEmbedBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchEmbedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no requests"))
		return
	}
	if len(req.Requests) > maxBatchItems {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has %d requests, limit is %d", len(req.Requests), maxBatchItems))
		return
	}

	// Decode every item first; malformed items fail individually without
	// aborting the batch. The searches themselves run synchronously on
	// this handler against one model snapshot (they bypass the job
	// queue; clients needing backpressure semantics should submit /jobs
	// instead), and a client disconnect stops the remaining items.
	sreqs := make([]service.Request, len(req.Requests))
	decodeErrs := make([]error, len(req.Requests))
	for i := range req.Requests {
		sreqs[i], decodeErrs[i] = s.decodeEmbedRequest(&req.Requests[i])
		if decodeErrs[i] == nil && sreqs[i].Stop == nil {
			ctx := r.Context()
			sreqs[i].Stop = func() bool { return ctx.Err() != nil }
		}
	}

	results, version := s.svc.EmbedBatch(sreqs)
	out := BatchEmbedResponse{ModelVersion: version, Results: make([]BatchEmbedResult, len(results))}
	for i, res := range results {
		switch {
		case decodeErrs[i] != nil:
			out.Results[i].Error = decodeErrs[i].Error()
		case res.Err != nil:
			out.Results[i].Error = res.Err.Error()
		default:
			r := embedResponseJSON(res.Response)
			out.Results[i] = BatchEmbedResult{Result: &r}
		}
	}
	writeJSON(w, http.StatusOK, out)
}
