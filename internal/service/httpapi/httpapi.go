// Package httpapi exposes the NETEMBED service over HTTP/JSON, making the
// mapping service consumable by remote applications the way §III
// envisions. Networks travel as GraphML documents; everything else is
// JSON. Built exclusively on net/http.
//
// Endpoints:
//
//	GET    /healthz          liveness probe
//	GET    /model            current hosting network as GraphML
//	PUT    /model            replace the hosting network (GraphML body)
//	POST   /deltas           publish an incremental model change (JSON body,
//	                         see DeltaRequest) — the monitor's patch path
//	POST   /embed            run an embedding query (JSON body, see EmbedRequest)
//	POST   /embed/batch      run several queries against one model snapshot
//	                         (JSON body, see BatchEmbedRequest)
//	POST   /jobs             submit an asynchronous embedding job
//	GET    /jobs/{id}        poll a job's status and result
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /stats            job-engine counters
//	POST   /reserve          reserve host nodes (JSON body, see ReserveRequest)
//	DELETE /reserve?id=N     release a lease
//	POST   /negotiate        constraint-relaxation loop (§III negotiation)
//	POST   /schedule         earliest-window scheduling (§VIII extension)
//
// Every embedding query — the synchronous /embed included — flows
// through the asynchronous job engine (internal/engine), which provides
// the bounded queue, worker pool, cancellation and the model-versioned
// result cache. /embed is a thin submit-and-wait wrapper; under queue
// saturation it answers 429 exactly like /jobs.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"netembed/internal/engine"
	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/lifecycle"
	"netembed/internal/service"
)

// Server adapts a service.Service to HTTP. It implements http.Handler.
type Server struct {
	svc       *service.Service
	eng       *engine.Engine
	ownEngine bool
	mux       *http.ServeMux
	// lc is the embedding-lifecycle manager, mounted via AttachLifecycle
	// (nil when the daemon runs without lifecycle management).
	lc *lifecycle.Manager
	// queries memoizes GraphML query decoding across requests (perf.go).
	queries *queryCache
	// identity is the shard identity this server answers /internal/shard/*
	// with (shard.go); defaults to an anonymous single-shard identity.
	identity *service.LocalShard
}

// New builds the HTTP front end for svc around a private job engine with
// default tuning. The engine starts its goroutines lazily on the first
// embedding request; Close releases them.
func New(svc *service.Service) *Server {
	s := NewWithEngine(svc, engine.New(svc, engine.Config{}))
	s.ownEngine = true
	return s
}

// NewWithEngine builds the HTTP front end over a caller-owned engine
// (the daemon uses this so it can drain the engine during graceful
// shutdown). The engine must wrap the same svc.
func NewWithEngine(svc *service.Service, eng *engine.Engine) *Server {
	s := &Server{svc: svc, eng: eng, mux: http.NewServeMux(), queries: newQueryCache(0)}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/embed", s.handleEmbed)
	s.mux.HandleFunc("/reserve", s.handleReserve)
	s.registerJobs()
	s.registerDeltas()
	s.registerExtended()
	s.registerShard()
	return s
}

// Engine exposes the job engine behind the API.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Close drains the server's engine when the server owns it (built via
// New); engines passed to NewWithEngine stay the caller's to close.
func (s *Server) Close(ctx context.Context) error {
	if !s.ownEngine {
		return nil
	}
	return s.eng.Close(ctx)
}

// ServeHTTP dispatches to the API endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// VersionHeader carries the model version on /model responses.
const VersionHeader = "X-Netembed-Model-Version"

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		g, version := s.svc.Model().Snapshot()
		w.Header().Set("Content-Type", "application/xml")
		w.Header().Set(VersionHeader, strconv.FormatUint(version, 10))
		if err := graphml.Encode(w, g); err != nil {
			// Headers are gone; best effort.
			fmt.Fprintf(w, "<!-- encode error: %v -->", err)
		}
	case http.MethodPut:
		g, err := graphml.Decode(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		version := s.svc.Model().Update(g)
		writeJSON(w, http.StatusOK, map[string]uint64{"version": version})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// EmbedRequest is the JSON body of POST /embed.
type EmbedRequest struct {
	// QueryGraphML is the virtual network as a GraphML document.
	QueryGraphML string `json:"query"`
	// EdgeConstraint / NodeConstraint are constraint-language sources.
	EdgeConstraint string `json:"edgeConstraint,omitempty"`
	NodeConstraint string `json:"nodeConstraint,omitempty"`
	// Algorithm is one of ecf, rwb, lns, parallel-ecf, consolidate, path
	// (default ecf). "path" is the §VIII link-to-path extension: query
	// edges ride multi-hop hosting paths under composed metric windows,
	// tuned by the maxHops/delayAttr/windowLo/windowHi/metrics fields;
	// witness paths come back in the response's "paths".
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMs bounds the search in milliseconds.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MaxResults caps the number of returned embeddings.
	MaxResults int `json:"maxResults,omitempty"`
	// Seed drives the rwb algorithm.
	Seed int64 `json:"seed,omitempty"`
	// ExcludeReserved hides hosts with active leases.
	ExcludeReserved bool `json:"excludeReserved,omitempty"`
	// DedupeSymmetric collapses embeddings equivalent up to query
	// automorphism.
	DedupeSymmetric bool `json:"dedupeSymmetric,omitempty"`
	// CapacityAttr / DemandAttr rename the attributes the consolidate
	// algorithm packs against (defaults "capacity" / "demand"); ignored
	// by the injective algorithms.
	CapacityAttr string `json:"capacityAttr,omitempty"`
	DemandAttr   string `json:"demandAttr,omitempty"`
	// MaxHops bounds witness path length for the path algorithm (0 = the
	// daemon default; negative values answer 400).
	MaxHops int `json:"maxHops,omitempty"`
	// DelayAttr / WindowLo / WindowHi rename the path algorithm's default
	// single-metric delay window.
	DelayAttr string `json:"delayAttr,omitempty"`
	WindowLo  string `json:"windowLo,omitempty"`
	WindowHi  string `json:"windowHi,omitempty"`
	// Metrics, when non-empty, replaces the delay window with a
	// conjunction of composed-metric constraints for the path algorithm.
	Metrics []MetricSpecJSON `json:"metrics,omitempty"`
	// Objective, when present, switches the search from enumeration to
	// branch-and-bound optimization: the answer is the single cheapest
	// embedding under the objective, with its cost in objectiveCost.
	Objective *ObjectiveJSON `json:"objective,omitempty"`
}

// ObjectiveJSON is the wire form of an optimization objective.
type ObjectiveJSON struct {
	// Kind is one of attr-cost, load-balance, energy.
	Kind string `json:"kind"`
	// Attr names the hosting-node attribute the objective reads
	// (required for attr-cost; defaults: "slots" for load-balance,
	// "active" for energy).
	Attr string `json:"attr,omitempty"`
	// Weight scales each term (default 1).
	Weight float64 `json:"weight,omitempty"`
}

// MetricSpecJSON is the wire form of one composed-metric constraint for
// path-mode requests.
type MetricSpecJSON struct {
	// Attr is the hosting-edge attribute to compose.
	Attr string `json:"attr"`
	// Rule is one of additive, bottleneck, multiplicative.
	Rule string `json:"rule"`
	// LoAttr / HiAttr name the query-edge attributes bounding the
	// composed value; either may be empty (unbounded on that side).
	LoAttr string `json:"loAttr,omitempty"`
	HiAttr string `json:"hiAttr,omitempty"`
	// MissingEdge substitutes for a hosting edge lacking Attr;
	// MissingFails instead disqualifies paths crossing such an edge.
	MissingEdge  float64 `json:"missingEdge,omitempty"`
	MissingFails bool    `json:"missingFails,omitempty"`
}

// PathWitnessJSON renders one query edge's witness hosting path.
type PathWitnessJSON struct {
	// Source / Target are the query edge's endpoint node names.
	Source string `json:"source"`
	Target string `json:"target"`
	// Path lists the hosting node names the witness crosses, in order.
	Path []string `json:"path"`
	// Cost is the first metric's composed value along the witness.
	Cost float64 `json:"cost"`
}

// EmbedResponse is the JSON reply of POST /embed (and the result payload
// of a finished job).
type EmbedResponse struct {
	Status   string              `json:"status"`
	Mappings []map[string]string `json:"mappings"`
	// Paths holds, for path-algorithm answers, each mapping's witness
	// hosting paths (parallel to Mappings, one per query edge).
	Paths        [][]PathWitnessJSON    `json:"paths,omitempty"`
	ModelVersion uint64                 `json:"modelVersion"`
	ElapsedMs    float64                `json:"elapsedMs"`
	Stats        map[string]interface{} `json:"stats"`
	// Cached is true when the answer came from the engine's result cache
	// (same query fingerprint, same model version) without a new search.
	Cached bool `json:"cached,omitempty"`
	// ObjectiveCost is the objective value of Mappings[0] for optimizing
	// requests; absent otherwise.
	ObjectiveCost *float64 `json:"objectiveCost,omitempty"`
	// Warnings flags suspicious-but-legal requests (unknown attribute
	// names, objectives on algorithms that ignore them).
	Warnings []string `json:"warnings,omitempty"`
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req EmbedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	sreq, err := s.decodeEmbedRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Submit-and-wait over the engine: the blocking contract is kept, but
	// the search runs on the worker pool with backpressure and the result
	// cache in front, and a client disconnect cancels the search.
	job, err := s.eng.Submit(sreq)
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, engine.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.eng.Wait(r.Context(), job.ID())
	if err != nil {
		_, _ = s.eng.Cancel(job.ID())
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if info.State != engine.StateDone {
		switch {
		case errors.Is(info.Err, engine.ErrShuttingDown):
			// Failed by the graceful drain: a server-side condition, not
			// a client error.
			writeError(w, http.StatusServiceUnavailable, info.Err)
		case info.State == engine.StateCanceled:
			// Someone canceled the backing job out from under the
			// blocking caller (DELETE /jobs/{id} or a drain cut short).
			writeError(w, http.StatusConflict, info.Err)
		default:
			writeError(w, http.StatusBadRequest, info.Err)
		}
		return
	}
	out := embedResponseJSON(info.Response)
	out.Cached = info.FromCache
	writeJSON(w, http.StatusOK, out)
}

// ReserveRequest is the JSON body of POST /reserve.
type ReserveRequest struct {
	// HostNodes lists hosting node names to reserve.
	HostNodes []string `json:"hostNodes"`
}

func (s *Server) handleReserve(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req ReserveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
			return
		}
		if len(req.HostNodes) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("no host nodes given"))
			return
		}
		host, _ := s.svc.Model().Snapshot()
		ids := make([]graph.NodeID, 0, len(req.HostNodes))
		for _, name := range req.HostNodes {
			id, ok := host.NodeByName(name)
			if !ok {
				writeError(w, http.StatusNotFound, fmt.Errorf("unknown host node %q", name))
				return
			}
			ids = append(ids, id)
		}
		lease, err := s.svc.Ledger().Allocate(ids)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int64{"leaseId": int64(lease)})
	case http.MethodDelete:
		idStr := r.URL.Query().Get("id")
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad lease id %q", idStr))
			return
		}
		if err := s.svc.Ledger().Release(service.LeaseID(id)); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"released": true})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	buf := responseBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Nothing was written yet, so the error can still travel as JSON.
		buf.Reset()
		buf.WriteString(`{"error":"response encoding failed"}` + "\n")
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledResponseBuf {
		responseBufPool.Put(buf)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
