package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"netembed/internal/core"
	"netembed/internal/graphml"
	"netembed/internal/service"
)

// registerExtended wires the §VIII extension endpoints:
//
//	POST /negotiate   constraint-relaxation loop (see NegotiateHTTPRequest)
//	POST /schedule    earliest-window scheduling (see ScheduleHTTPRequest)
func (s *Server) registerExtended() {
	s.mux.HandleFunc("/negotiate", s.handleNegotiate)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
}

// NegotiateHTTPRequest is the JSON body of POST /negotiate.
type NegotiateHTTPRequest struct {
	EmbedRequest
	// Factor scales the window half-width per relaxation round.
	Factor float64 `json:"factor,omitempty"`
	// MaxRounds bounds the relaxation loop.
	MaxRounds int `json:"maxRounds,omitempty"`
}

// NegotiateHTTPResponse is the JSON reply of POST /negotiate.
type NegotiateHTTPResponse struct {
	EmbedResponse
	// Rounds counts relaxations applied (0 = feasible as submitted).
	Rounds int `json:"rounds"`
	// RelaxedQuery is the GraphML of the query actually satisfied.
	RelaxedQuery string `json:"relaxedQuery"`
}

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req NegotiateHTTPRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	base, err := s.decodeEmbedRequest(&req.EmbedRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.svc.Negotiate(service.NegotiateRequest{
		Request:   base,
		Factor:    req.Factor,
		MaxRounds: req.MaxRounds,
	})
	if err == service.ErrNegotiationFailed {
		writeError(w, http.StatusConflict, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	relaxedML, err := graphml.EncodeString(resp.RelaxedQuery)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := NegotiateHTTPResponse{
		EmbedResponse: embedResponseJSON(&resp.Response),
		Rounds:        resp.Rounds,
		RelaxedQuery:  relaxedML,
	}
	writeJSON(w, http.StatusOK, out)
}

// ScheduleHTTPRequest is the JSON body of POST /schedule.
type ScheduleHTTPRequest struct {
	EmbedRequest
	// DurationMs is how long the embedding holds its resources.
	DurationMs int `json:"durationMs"`
	// HorizonMs bounds the search into the future (default 24h).
	HorizonMs int `json:"horizonMs,omitempty"`
	// StepMs is the window-sliding granularity (default 10min).
	StepMs int `json:"stepMs,omitempty"`
}

// ScheduleHTTPResponse is the JSON reply of POST /schedule.
type ScheduleHTTPResponse struct {
	Start        string            `json:"start"` // RFC 3339
	Mapping      map[string]string `json:"mapping"`
	LeaseID      int64             `json:"leaseId"`
	WindowsTried int               `json:"windowsTried"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req ScheduleHTTPRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	base, err := s.decodeEmbedRequest(&req.EmbedRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.svc.Schedule(service.ScheduleRequest{
		Request:  base,
		Duration: time.Duration(req.DurationMs) * time.Millisecond,
		Horizon:  time.Duration(req.HorizonMs) * time.Millisecond,
		Step:     time.Duration(req.StepMs) * time.Millisecond,
	}, time.Now())
	if err == service.ErrNoWindow {
		writeError(w, http.StatusConflict, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ScheduleHTTPResponse{
		Start:        resp.Start.Format(time.RFC3339),
		Mapping:      map[string]string(resp.Named),
		LeaseID:      int64(resp.Lease),
		WindowsTried: resp.WindowsTried,
	})
}

// decodeEmbedRequest translates the wire form into a service.Request.
func (s *Server) decodeEmbedRequest(req *EmbedRequest) (service.Request, error) {
	return decodeEmbedRequestCached(s.queries, req)
}

// decodeEmbedRequestCached is decodeEmbedRequest for any handler owning a
// query cache (the per-shard Server and the coordinator's ClusterServer).
func decodeEmbedRequestCached(queries *queryCache, req *EmbedRequest) (service.Request, error) {
	if strings.TrimSpace(req.QueryGraphML) == "" {
		return service.Request{}, fmt.Errorf("missing query GraphML")
	}
	// Decoding dominates warm-request allocations; repeats of the same
	// GraphML text come from the shared LRU. The decoded graph is shared
	// across requests and must never be mutated downstream.
	query, err := queries.decode(req.QueryGraphML)
	if err != nil {
		return service.Request{}, err
	}
	if req.MaxHops < 0 {
		return service.Request{}, fmt.Errorf("maxHops %d is negative", req.MaxHops)
	}
	metrics, err := decodeMetricSpecs(req.Metrics)
	if err != nil {
		return service.Request{}, err
	}
	objective, optimize, err := decodeObjective(req.Objective)
	if err != nil {
		return service.Request{}, err
	}
	return service.Request{
		Query:           query,
		EdgeConstraint:  req.EdgeConstraint,
		NodeConstraint:  req.NodeConstraint,
		Algorithm:       service.Algorithm(req.Algorithm),
		Timeout:         time.Duration(req.TimeoutMs) * time.Millisecond,
		MaxResults:      req.MaxResults,
		Seed:            req.Seed,
		ExcludeReserved: req.ExcludeReserved,
		DedupeSymmetric: req.DedupeSymmetric,
		Consolidate: core.ConsolidateOptions{
			CapacityAttr: req.CapacityAttr,
			DemandAttr:   req.DemandAttr,
		},
		Path: service.PathRequestOptions{
			MaxHops:   req.MaxHops,
			DelayAttr: req.DelayAttr,
			WindowLo:  req.WindowLo,
			WindowHi:  req.WindowHi,
			Metrics:   metrics,
		},
		Objective: objective,
		Optimize:  optimize,
	}, nil
}

// decodeObjective translates the wire objective, rejecting unknown kinds
// up front so the handler answers 400 instead of the searcher silently
// enumerating. Presence of the objective implies optimization.
func decodeObjective(o *ObjectiveJSON) (core.Objective, bool, error) {
	if o == nil {
		return core.Objective{}, false, nil
	}
	var kind core.ObjectiveKind
	switch o.Kind {
	case "attr-cost":
		kind = core.ObjectiveAttrCost
		if o.Attr == "" {
			// No sensible default exists (unlike load-balance/energy): an
			// empty attr reads 0 on every host, degenerating the search
			// into 'optimizing' a constant — reject like a missing metrics
			// attr instead.
			return core.Objective{}, false, fmt.Errorf("objective: attr-cost requires attr")
		}
	case "load-balance":
		kind = core.ObjectiveLoadBalance
	case "energy":
		kind = core.ObjectiveEnergy
	default:
		return core.Objective{}, false, fmt.Errorf("objective: unknown kind %q (want attr-cost, load-balance or energy)", o.Kind)
	}
	return core.Objective{Kind: kind, Attr: o.Attr, Weight: o.Weight}, true, nil
}

// decodeMetricSpecs translates the wire metric constraints, rejecting
// unknown composition rules and empty attributes up front so the handler
// answers 400 instead of the searcher silently matching nothing.
func decodeMetricSpecs(specs []MetricSpecJSON) ([]core.MetricSpec, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make([]core.MetricSpec, len(specs))
	for i, s := range specs {
		if s.Attr == "" {
			return nil, fmt.Errorf("metrics[%d]: missing attr", i)
		}
		var rule core.Compose
		switch s.Rule {
		case "additive", "":
			rule = core.Additive
		case "bottleneck":
			rule = core.Bottleneck
		case "multiplicative":
			rule = core.Multiplicative
		default:
			return nil, fmt.Errorf("metrics[%d]: unknown rule %q (want additive, bottleneck or multiplicative)", i, s.Rule)
		}
		out[i] = core.MetricSpec{
			Attr:         s.Attr,
			Rule:         rule,
			LoAttr:       s.LoAttr,
			HiAttr:       s.HiAttr,
			MissingEdge:  s.MissingEdge,
			MissingFails: s.MissingFails,
		}
	}
	return out, nil
}

// embedResponseJSON renders a service response in the wire form.
//
//statsthread:fold core.Stats
func embedResponseJSON(resp *service.Response) EmbedResponse {
	out := EmbedResponse{
		Status:       resp.Status.String(),
		Mappings:     make([]map[string]string, len(resp.Named)),
		ModelVersion: resp.ModelVersion,
		ElapsedMs:    float64(resp.Elapsed) / float64(time.Millisecond),
		Stats: map[string]interface{}{
			"nodesVisited":     resp.Stats.NodesVisited,
			"backtracks":       resp.Stats.Backtracks,
			"edgePairsEval":    resp.Stats.EdgePairsEval,
			"filterEntries":    resp.Stats.FilterEntries,
			"constraintChk":    resp.Stats.ConstraintChk,
			"pruneOps":         resp.Stats.PruneOps,
			"wipeouts":         resp.Stats.Wipeouts,
			"wipeoutDepthSum":  resp.Stats.WipeoutDepthSum,
			"backjumps":        resp.Stats.Backjumps,
			"steals":           resp.Stats.Steals,
			"witnessProbes":    resp.Stats.WitnessProbes,
			"witnessHits":      resp.Stats.WitnessHits,
			"reachPrunes":      resp.Stats.ReachPrunes,
			"boundCuts":        resp.Stats.BoundCuts,
			"incumbentUpdates": resp.Stats.IncumbentUpdates,
			"boundProbes":      resp.Stats.BoundProbes,
			"timeToFirstMs":    float64(resp.Stats.TimeToFirst) / float64(time.Millisecond),
		},
		ObjectiveCost: resp.ObjectiveCost,
		Warnings:      resp.Warnings,
	}
	for i, nm := range resp.Named {
		out.Mappings[i] = map[string]string(nm)
	}
	if len(resp.Paths) > 0 {
		out.Paths = make([][]PathWitnessJSON, len(resp.Paths))
		for i, witnesses := range resp.Paths {
			out.Paths[i] = make([]PathWitnessJSON, len(witnesses))
			for j, w := range witnesses {
				out.Paths[i][j] = PathWitnessJSON{Source: w.Source, Target: w.Target, Path: w.Path, Cost: w.Cost}
			}
		}
	}
	return out
}
