package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/service"
)

// newClusterServer serves a 3-machine triangle with capacity 3 each.
func newClusterServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := graph.NewUndirected()
	for i := 0; i < 3; i++ {
		g.AddNode(fmt.Sprintf("machine%d", i), graph.Attrs{}.SetNum("capacity", 3))
	}
	link := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 9).SetNum("avgDelay", 10).SetNum("maxDelay", 11)
	}
	g.MustAddEdge(0, 1, link())
	g.MustAddEdge(1, 2, link())
	g.MustAddEdge(0, 2, link())
	svc := service.New(service.NewModel(g), service.Config{})
	ts := httptest.NewServer(New(svc))
	t.Cleanup(ts.Close)
	return ts
}

func ringGraphML(t *testing.T, n int) string {
	t.Helper()
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i), graph.Attrs{}.SetNum("demand", 1))
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), graph.Attrs{}.SetNum("maxDelay", 40))
	}
	var sb strings.Builder
	if err := graphml.Encode(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestHTTPConsolidate(t *testing.T) {
	ts := newClusterServer(t)
	resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML:   ringGraphML(t, 6),
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      "consolidate",
		MaxResults:     3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EmbedResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Mappings) == 0 {
		t.Fatal("no consolidated embeddings over HTTP")
	}
	// Every query node must be mapped, to one of the three machines.
	for _, m := range out.Mappings {
		if len(m) != 6 {
			t.Fatalf("mapping covers %d nodes, want 6", len(m))
		}
		for q, r := range m {
			if !strings.HasPrefix(r, "machine") {
				t.Fatalf("query node %s mapped to unexpected host %s", q, r)
			}
		}
	}
}

func TestHTTPConsolidateOversizedInjectiveFails(t *testing.T) {
	ts := newClusterServer(t)
	resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML:   ringGraphML(t, 6),
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      "ecf",
	})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("injective embed of an oversized query returned 200: %s", body)
	}
}

func TestHTTPConsolidateCustomAttrs(t *testing.T) {
	ts := newClusterServer(t)
	// The host graph has no "slots" attribute, so every machine falls
	// back to DefaultCapacity 1 and a 6-node ring cannot fit.
	resp, body := postJSON(t, ts.URL+"/embed", EmbedRequest{
		QueryGraphML:   ringGraphML(t, 6),
		EdgeConstraint: "rEdge.maxDelay <= vEdge.maxDelay",
		Algorithm:      "consolidate",
		CapacityAttr:   "slots",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EmbedResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Mappings) != 0 {
		t.Fatalf("found %d embeddings without capacity headroom", len(out.Mappings))
	}
	if out.Status != "complete" {
		t.Fatalf("status %q, want definitive no-match (complete)", out.Status)
	}
}
