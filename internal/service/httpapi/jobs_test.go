package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netembed/internal/engine"
	"netembed/internal/graph"
	"netembed/internal/graphml"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// hardHostJobs returns K_n minus a matching covering every vertex, the
// cancellation fixture: embedding K_{n-2} is infeasible but searching
// the space takes essentially forever, so only DELETE (or the generous
// timeout) ends such a job.
func hardHostJobs(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	skip := make(map[[2]int]bool)
	for i := 0; i+1 < n; i += 2 {
		skip[[2]int{i, i + 1}] = true
	}
	if n%2 == 1 {
		skip[[2]int{n - 2, n - 1}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if skip[[2]int{i, j}] {
				continue
			}
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), nil)
		}
	}
	return g
}

// newJobsServer serves the API over an engine with the given tuning.
func newJobsServer(t *testing.T, cfg engine.Config) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.NewModel(hardHostJobs(26)), service.Config{})
	srv := NewWithEngine(svc, engine.New(svc, cfg))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, svc
}

func mustGraphML(t *testing.T, g *graph.Graph) string {
	t.Helper()
	s, err := graphml.EncodeString(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// slowJobBody cannot finish inside the test; fastJobBody finishes in
// microseconds (seed only differentiates cache fingerprints).
func slowJobBody(t *testing.T) EmbedRequest {
	return EmbedRequest{QueryGraphML: mustGraphML(t, topo.Clique(14)), TimeoutMs: 60_000}
}

func fastJobBody(t *testing.T, seed int64) EmbedRequest {
	return EmbedRequest{QueryGraphML: mustGraphML(t, topo.Line(2)), MaxResults: 1, Seed: seed}
}

func decodeJob(t *testing.T, raw []byte) JobStatus {
	t.Helper()
	var js JobStatus
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatalf("bad job JSON %s: %v", raw, err)
	}
	return js
}

func doRequest(t *testing.T, method, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// pollJob GETs /jobs/{id} until pred is satisfied.
func pollJob(t *testing.T, ts *httptest.Server, id string, within time.Duration, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	var last JobStatus
	for time.Now().Before(deadline) {
		resp, raw := doRequest(t, http.MethodGet, ts.URL+"/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", id, resp.StatusCode, raw)
		}
		last = decodeJob(t, raw)
		if pred(last) {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the expected state (last: %+v)", id, last)
	return last
}

// TestJobLifecycle drives the happy path: submit, poll to done, read the
// result, and check it matches what the synchronous path returns.
func TestJobLifecycle(t *testing.T) {
	ts, _ := newJobsServer(t, engine.Config{Workers: 2})

	resp, raw := postJSON(t, ts.URL+"/jobs", fastJobBody(t, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}
	js := decodeJob(t, raw)
	if js.ID == "" {
		t.Fatalf("no job id in %s", raw)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+js.ID {
		t.Fatalf("Location header %q, want /jobs/%s", loc, js.ID)
	}

	final := pollJob(t, ts, js.ID, 10*time.Second, func(j JobStatus) bool { return j.State == "done" })
	if final.Result == nil || len(final.Result.Mappings) != 1 {
		t.Fatalf("done job carries no result: %+v", final)
	}
	if final.SubmittedAt == "" || final.FinishedAt == "" {
		t.Fatalf("missing timestamps: %+v", final)
	}

	// The synchronous wrapper agrees (and is served from the cache now).
	resp, raw = postJSON(t, ts.URL+"/embed", fastJobBody(t, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /embed: %d %s", resp.StatusCode, raw)
	}
	var er EmbedResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Cached {
		t.Fatalf("/embed after identical job should be a cache hit: %s", raw)
	}
	if len(er.Mappings) != 1 || fmt.Sprint(er.Mappings[0]) != fmt.Sprint(final.Result.Mappings[0]) {
		t.Fatalf("sync and async answers disagree: %v vs %v", er.Mappings, final.Result.Mappings)
	}

	if resp, _ := doRequest(t, http.MethodGet, ts.URL+"/jobs/999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestJobCancelStopsRunningSearch is the acceptance-criterion test over
// HTTP: DELETE a running job, get canceled back, and see the engine's
// running gauge drain long before the job's 60s timeout.
func TestJobCancelStopsRunningSearch(t *testing.T) {
	ts, _ := newJobsServer(t, engine.Config{Workers: 1})

	resp, raw := postJSON(t, ts.URL+"/jobs", slowJobBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}
	id := decodeJob(t, raw).ID
	pollJob(t, ts, id, 10*time.Second, func(j JobStatus) bool { return j.State == "running" })

	canceledAt := time.Now()
	resp, raw = doRequest(t, http.MethodDelete, ts.URL+"/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s: %d %s", id, resp.StatusCode, raw)
	}
	if js := decodeJob(t, raw); js.State != "canceled" {
		t.Fatalf("DELETE returned state %q, want canceled", js.State)
	}

	// /stats proves the worker stopped searching well before the timeout.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, raw := doRequest(t, http.MethodGet, ts.URL+"/stats")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /stats: %d", resp.StatusCode)
		}
		var st engine.Stats
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.Running == 0 {
			if st.Canceled != 1 {
				t.Fatalf("stats after cancel: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("search still running %v after DELETE", time.Since(canceledAt))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A second DELETE is idempotent; DELETE on a done job conflicts.
	if resp, _ := doRequest(t, http.MethodDelete, ts.URL+"/jobs/"+id); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-DELETE: %d, want 200", resp.StatusCode)
	}
	resp, raw = postJSON(t, ts.URL+"/jobs", fastJobBody(t, 5))
	done := decodeJob(t, raw)
	pollJob(t, ts, done.ID, 10*time.Second, func(j JobStatus) bool { return j.State == "done" })
	if resp, _ := doRequest(t, http.MethodDelete, ts.URL+"/jobs/"+done.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE done job: %d, want 409", resp.StatusCode)
	}
}

// TestJobsBackpressure429 saturates a 1-worker/1-slot engine and checks
// both /jobs and /embed answer 429 instead of queuing unboundedly.
func TestJobsBackpressure429(t *testing.T) {
	ts, _ := newJobsServer(t, engine.Config{Workers: 1, QueueDepth: 1})

	resp, raw := postJSON(t, ts.URL+"/jobs", slowJobBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST /jobs: %d %s", resp.StatusCode, raw)
	}
	running := decodeJob(t, raw).ID
	pollJob(t, ts, running, 10*time.Second, func(j JobStatus) bool { return j.State == "running" })

	resp, raw = postJSON(t, ts.URL+"/jobs", slowJobBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST /jobs: %d %s", resp.StatusCode, raw)
	}
	queued := decodeJob(t, raw).ID

	if resp, raw := postJSON(t, ts.URL+"/jobs", slowJobBody(t)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST /jobs: %d %s, want 429", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts.URL+"/embed", slowJobBody(t)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST /embed: %d %s, want 429", resp.StatusCode, raw)
	}

	for _, id := range []string{queued, running} {
		if resp, _ := doRequest(t, http.MethodDelete, ts.URL+"/jobs/"+id); resp.StatusCode != http.StatusOK {
			t.Fatalf("cleanup DELETE %s: %d", id, resp.StatusCode)
		}
	}
}

// TestJobsCacheAcrossModelVersions pins cache semantics end to end: an
// identical resubmission is served cached at the same model version, and
// a PUT /model invalidates it.
func TestJobsCacheAcrossModelVersions(t *testing.T) {
	ts, svc := newJobsServer(t, engine.Config{Workers: 2})

	body := fastJobBody(t, 9)
	_, raw := postJSON(t, ts.URL+"/jobs", body)
	first := pollJob(t, ts, decodeJob(t, raw).ID, 10*time.Second,
		func(j JobStatus) bool { return j.State == "done" })
	if first.Cached {
		t.Fatal("first run must not be cached")
	}

	resp, raw := postJSON(t, ts.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, raw)
	}
	hit := decodeJob(t, raw)
	if hit.State != "done" || !hit.Cached {
		t.Fatalf("resubmit at same version: state %s cached %v, want instant cache hit", hit.State, hit.Cached)
	}
	if hit.Result.ModelVersion != first.Result.ModelVersion {
		t.Fatal("cache hit reports a different model version")
	}

	// Publish a new snapshot over the API; the cached answer must die.
	host, _ := svc.Model().Snapshot()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/model",
		strings.NewReader(mustGraphML(t, host.Clone())))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /model: %d", putResp.StatusCode)
	}

	_, raw = postJSON(t, ts.URL+"/jobs", body)
	fresh := pollJob(t, ts, decodeJob(t, raw).ID, 10*time.Second,
		func(j JobStatus) bool { return j.State == "done" })
	if fresh.Cached {
		t.Fatal("model update did not invalidate the cached answer")
	}
	if fresh.Result.ModelVersion == first.Result.ModelVersion {
		t.Fatal("post-update answer carries the stale model version")
	}
}

// TestJobsBadRequests covers the validation edges of the async API.
func TestJobsBadRequests(t *testing.T) {
	ts, _ := newJobsServer(t, engine.Config{Workers: 1})

	resp, _ := postJSON(t, ts.URL+"/jobs", EmbedRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submit: %d, want 400", resp.StatusCode)
	}
	r, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d, want 400", r.StatusCode)
	}
	if resp, _ := doRequest(t, http.MethodDelete, ts.URL+"/jobs/42"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", resp.StatusCode)
	}
	// Method routing: PUT on /jobs/{id} is not a thing.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/jobs/1", nil)
	pr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /jobs/1: %d, want 405", pr.StatusCode)
	}
}
