package service

import (
	"errors"
	"testing"
	"time"

	"netembed/internal/core"
)

func TestLedgerRenewExtends(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{0, 1}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	newEnd := end.Add(time.Hour)
	if err := l.Renew(id, newEnd); err != nil {
		t.Fatalf("renew: %v", err)
	}
	lease, ok := l.Lease(id)
	if !ok || !lease.End.Equal(newEnd) {
		t.Fatalf("lease end = %v, want %v", lease.End, newEnd)
	}
	// The original expiry must no longer prune it.
	if pruned := l.Prune(end); len(pruned) != 0 {
		t.Fatalf("renewed lease pruned at old expiry: %v", pruned)
	}
	if pruned := l.Prune(newEnd); len(pruned) != 1 || pruned[0] != id {
		t.Fatalf("renewed lease not pruned at new expiry: %v", pruned)
	}
}

func TestLedgerRenewErrors(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	open, err := l.Allocate(core.Mapping{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(open, now.Add(time.Hour)); !errors.Is(err, ErrNotWindowed) {
		t.Fatalf("renew open-ended lease: %v, want ErrNotWindowed", err)
	}
	if err := l.Renew(LeaseID(999), now.Add(time.Hour)); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("renew unknown lease: %v, want ErrLeaseNotFound", err)
	}

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{1}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(id, time.Time{}); err == nil {
		t.Fatal("renew with zero expiry accepted")
	}
	if err := l.Renew(id, end); err == nil {
		t.Fatal("renew to the unchanged expiry accepted")
	}
	if err := l.Renew(id, end.Add(-time.Minute)); err == nil {
		t.Fatal("renew that shrinks the window accepted")
	}
	if lease, _ := l.Lease(id); !lease.End.Equal(end) {
		t.Fatalf("failed renews mutated the lease: end = %v", lease.End)
	}
}

func TestLedgerRenewConflict(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{0}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	// Another tenant booked node 0 right after this lease's window — the
	// very placement renew-by-release-and-reallocate would have clobbered.
	if _, err := l.AllocateWindow(core.Mapping{0}, end, end.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(id, end.Add(30*time.Minute)); !errors.Is(err, ErrConflict) {
		t.Fatalf("renew over a booked slot: %v, want ErrConflict", err)
	}
	if lease, _ := l.Lease(id); !lease.End.Equal(end) {
		t.Fatalf("conflicted renew mutated the lease: end = %v", lease.End)
	}
}

// TestLedgerRenewPastExpiry pins revival semantics: a lapsed-but-unpruned
// lease can be renewed, and only holds overlapping the *future* coverage
// conflict — bookings that came and went entirely during the lapse don't.
func TestLedgerRenewPastExpiry(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{0}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	// A booking entirely inside the lapse [end, end+2h): gone by renew time.
	if _, err := l.AllocateWindow(core.Mapping{0}, end, end.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}

	now = end.Add(3 * time.Hour) // the lease lapsed 3h ago, never pruned
	if err := l.Renew(id, now.Add(time.Hour)); err != nil {
		t.Fatalf("reviving a lapsed lease past a finished booking: %v", err)
	}
	lease, _ := l.Lease(id)
	if !lease.End.Equal(now.Add(time.Hour)) {
		t.Fatalf("revived lease end = %v", lease.End)
	}

	// But a booking active over the future coverage still wins.
	id2, err := l.AllocateWindow(core.Mapping{1}, now.Add(-time.Hour).Add(-time.Hour), now.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	_ = id2 // lapsed as well
	now = now.Add(2 * time.Hour)
	if _, err := l.AllocateWindow(core.Mapping{0}, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(id, now.Add(30*time.Minute)); !errors.Is(err, ErrConflict) {
		t.Fatalf("revival over an active booking: %v, want ErrConflict", err)
	}
}

func TestLedgerReplaceSwapsAtomically(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{0, 1}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	// Migrate node 0 → 2 while keeping node 1: the kept node must not
	// conflict with the lease's own hold.
	if err := l.Replace(id, core.Mapping{2, 1}); err != nil {
		t.Fatalf("replace: %v", err)
	}
	lease, _ := l.Lease(id)
	if len(lease.Nodes) != 2 || lease.Nodes[0] != 2 || lease.Nodes[1] != 1 {
		t.Fatalf("lease nodes = %v, want [2 1]", lease.Nodes)
	}
	if !lease.End.Equal(end) {
		t.Fatalf("replace clobbered the window: end = %v", lease.End)
	}
	// Node 0 is free again, node 2 is not.
	if _, err := l.AllocateWindow(core.Mapping{0}, now, end); err != nil {
		t.Fatalf("freed node not allocatable: %v", err)
	}
	if _, err := l.AllocateWindow(core.Mapping{2}, now, end); !errors.Is(err, ErrConflict) {
		t.Fatalf("migrated-to node still allocatable: %v", err)
	}
}

func TestLedgerReplaceConflictIsNoop(t *testing.T) {
	l := NewLedger()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return now })

	end := now.Add(time.Hour)
	id, err := l.AllocateWindow(core.Mapping{0}, now, end)
	if err != nil {
		t.Fatal(err)
	}
	// A concurrent placement steals the migration target before commit.
	if _, err := l.AllocateWindow(core.Mapping{5}, now, end); err != nil {
		t.Fatal(err)
	}
	if err := l.Replace(id, core.Mapping{5}); !errors.Is(err, ErrConflict) {
		t.Fatalf("replace onto stolen target: %v, want ErrConflict", err)
	}
	lease, _ := l.Lease(id)
	if len(lease.Nodes) != 1 || lease.Nodes[0] != 0 {
		t.Fatalf("conflicted replace mutated the lease: %v", lease.Nodes)
	}
	if err := l.Replace(id, core.Mapping{3, 3}); err == nil {
		t.Fatal("replace with duplicate nodes accepted")
	}
	if err := l.Replace(LeaseID(999), core.Mapping{4}); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("replace unknown lease: %v, want ErrLeaseNotFound", err)
	}
}
