package service

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/sets"
)

// Cross-shard query decomposition (the Esposito/Matta-style architecture
// NETEMBED §VIII gestures at): a query no single region can satisfy is
// split at cut edges into per-shard fragments; every shard embeds its
// fragment against its own partial view and proposes up to TopK boundary
// placements; the coordinator joins the candidate sets by checking each
// query cut edge against its boundary set — the inter-region hosting
// edges no shard's view contains. Path-mode queries get their cut edges
// stitched with witness paths over the boundary graph, pre-screened by
// the hop-bounded reachability oracle (index.BuildReach).

// maxCrossAssignments bounds how many fragment assignments one request
// may try; the request deadline is checked between assignments too.
const maxCrossAssignments = 128

// maxJoinCombos bounds the candidate-exchange join per assignment.
const maxJoinCombos = 4096

// shardSnap is a consistent snapshot of one shard's routing facts, taken
// under the coordinator lock so decomposition never races delta traffic.
type shardSnap struct {
	cs        *coordShard
	name      string
	nodeCount int
	maxDegree int
}

// fragResult is one shard's answer for its query fragment: up to TopK
// named candidate placements the coordinator joins across shards.
type fragResult struct {
	shard *coordShard
	name  string
	resp  *Response
}

// addStats folds one shard response's search counters into the
// coordinator-side accumulator for a cross-shard request.
//
//statsthread:fold core.Stats
func addStats(dst, src *core.Stats) {
	dst.FilterBuild += src.FilterBuild
	dst.EdgePairsEval += src.EdgePairsEval
	dst.FilterEntries += src.FilterEntries
	dst.NodesVisited += src.NodesVisited
	dst.Backtracks += src.Backtracks
	dst.ConstraintChk += src.ConstraintChk
	dst.PruneOps += src.PruneOps
	dst.Wipeouts += src.Wipeouts
	dst.WipeoutDepthSum += src.WipeoutDepthSum
	dst.Backjumps += src.Backjumps
	dst.Steals += src.Steals
	dst.WitnessProbes += src.WitnessProbes
	dst.WitnessHits += src.WitnessHits
	dst.ReachPrunes += src.ReachPrunes
	dst.BoundCuts += src.BoundCuts
	dst.IncumbentUpdates += src.IncumbentUpdates
	dst.BoundProbes += src.BoundProbes
	dst.TimeToFirst += src.TimeToFirst
	dst.Elapsed += src.Elapsed
}

// embedAcrossShards answers a request no single shard satisfied by
// decomposing the query across shards. req.Timeout is the remaining
// budget. The returned location is "cross:a+b" on success, "coordinator"
// for a no-answer.
func (c *Coordinator) embedAcrossShards(req Request, edgeProg *expr.Program) (*Response, string, error) {
	start := time.Now()
	deadline := start.Add(req.Timeout)
	var warnings []string
	var stats core.Stats

	give := func(warning string) (*Response, string, error) {
		return &Response{
			Status:   core.StatusInconclusive,
			Stats:    stats,
			Elapsed:  time.Since(start),
			Warnings: append(warnings, warning),
		}, "coordinator", nil
	}

	if req.Algorithm == AlgoConsolidate {
		return give("no shard answered locally; cross-shard decomposition does not support consolidate")
	}
	if req.Optimize {
		warnings = append(warnings, "cross-shard answers are feasibility-only; objective ignored")
	}

	c.mu.RLock()
	snaps := make([]shardSnap, 0, len(c.shards))
	for _, cs := range c.shards {
		if cs.healthy {
			snaps = append(snaps, shardSnap{
				cs:        cs,
				name:      cs.shard.Name(),
				nodeCount: cs.nodeCount,
				maxDegree: cs.maxDegree,
			})
		}
	}
	boundary := c.boundary
	byRegion := c.byRegion
	c.mu.RUnlock()

	if len(snaps) < 2 {
		return give("no shard answered locally and fewer than two shards are healthy")
	}
	if len(boundary) == 0 {
		return give("no shard answered locally and the tier has no cut edges to decompose across")
	}

	assignments, aw := c.crossAssignments(req.Query, snaps, boundary, byRegion)
	warnings = append(warnings, aw...)
	if len(assignments) == 0 {
		return give("no shard answered locally and no cross-shard split is possible")
	}

	bv := newBoundaryView(boundary, c.directed)
	expired := func() bool {
		return !time.Now().Before(deadline) || (req.Stop != nil && req.Stop())
	}
	for _, assign := range assignments {
		if expired() {
			break
		}
		resp, where, found := c.tryAssignment(req, assign, edgeProg, bv, deadline, &stats, warnings)
		if found {
			resp.Elapsed = time.Since(start)
			return resp, where, nil
		}
	}
	return give("no shard answered locally and cross-shard decomposition found no join")
}

// crossAssignments produces the fragment assignments (query node index →
// shard name) worth trying, cheapest cut first. Fully region-labeled
// queries yield exactly their pinned assignment; otherwise bipartitions
// across boundary-connected shard pairs are enumerated up to
// MaxSplitNodes query nodes.
func (c *Coordinator) crossAssignments(q *graph.Graph, snaps []shardSnap, boundary []graph.CutEdge, byRegion map[string]*coordShard) ([][]string, []string) {
	n := q.NumNodes()
	if n == 0 {
		return nil, nil
	}
	var warnings []string
	pinned := make([]string, n)
	allPinned := true
	pinnedShards := map[string]bool{}
	snapByName := make(map[string]shardSnap, len(snaps))
	for _, sn := range snaps {
		snapByName[sn.name] = sn
	}
	for i := 0; i < n; i++ {
		label, ok := q.Node(graph.NodeID(i)).Attrs.Text(c.regionAttr)
		if !ok || label == "" {
			allPinned = false
			continue
		}
		cs, known := byRegion[label]
		if !known {
			allPinned = false
			warnings = append(warnings,
				fmt.Sprintf("query node %q pins unknown region %q; treating it as unlabeled", q.Node(graph.NodeID(i)).Name, label))
			continue
		}
		name := cs.shard.Name()
		if _, healthy := snapByName[name]; !healthy {
			allPinned = false
			warnings = append(warnings,
				fmt.Sprintf("query node %q pins unhealthy shard %q; treating it as unlabeled", q.Node(graph.NodeID(i)).Name, name))
			continue
		}
		pinned[i] = name
		pinnedShards[name] = true
	}
	if allPinned {
		if len(pinnedShards) < 2 {
			// Purely local: the shard round already tried (and failed) it.
			return nil, warnings
		}
		return [][]string{pinned}, warnings
	}
	if n > c.maxSplitNodes {
		warnings = append(warnings,
			fmt.Sprintf("query has %d nodes; unlabeled cross-shard splitting is capped at %d", n, c.maxSplitNodes))
		return nil, warnings
	}

	// Shard pairs connected by at least one cut edge.
	pairSeen := map[string]bool{}
	var pairs [][2]shardSnap
	for _, cut := range boundary {
		a, okA := byRegion[cut.SourcePart]
		b, okB := byRegion[cut.TargetPart]
		if !okA || !okB || a == b {
			continue
		}
		n1, n2 := a.shard.Name(), b.shard.Name()
		if n2 < n1 {
			n1, n2 = n2, n1
		}
		s1, ok1 := snapByName[n1]
		s2, ok2 := snapByName[n2]
		if !ok1 || !ok2 {
			continue
		}
		key := n1 + "\x00" + n2
		if pairSeen[key] {
			continue
		}
		pairSeen[key] = true
		pairs = append(pairs, [2]shardSnap{s1, s2})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0].name != pairs[j][0].name {
			return pairs[i][0].name < pairs[j][0].name
		}
		return pairs[i][1].name < pairs[j][1].name
	})

	type cand struct {
		assign []string
		cuts   int
	}
	var cands []cand
	for _, pair := range pairs {
		a, b := pair[0], pair[1]
		for mask := 1; mask < 1<<n-1 && len(cands) < maxCrossAssignments; mask++ {
			assign := make([]string, n)
			sizeA := 0
			ok := true
			for i := 0; i < n; i++ {
				shard := b.name
				if mask>>i&1 == 1 {
					shard = a.name
					sizeA++
				}
				if pinned[i] != "" && pinned[i] != shard {
					ok = false
					break
				}
				assign[i] = shard
			}
			if !ok || sizeA > a.nodeCount || n-sizeA > b.nodeCount {
				continue
			}
			cuts := 0
			for e := 0; e < q.NumEdges(); e++ {
				ed := q.Edge(graph.EdgeID(e))
				if (mask>>ed.From)&1 != (mask>>ed.To)&1 {
					cuts++
				}
			}
			cands = append(cands, cand{assign: assign, cuts: cuts})
		}
	}
	// Cheapest cut first: fewer boundary negotiations, likelier joins.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].cuts < cands[j].cuts })
	out := make([][]string, len(cands))
	for i, cd := range cands {
		out[i] = cd.assign
	}
	return out, warnings
}

// tryAssignment embeds the query's fragments per shard and joins the
// candidate boundary placements. It returns found=false when any
// fragment has no candidates or no combination satisfies the cut edges.
func (c *Coordinator) tryAssignment(req Request, assign []string, edgeProg *expr.Program, bv *boundaryView, deadline time.Time, stats *core.Stats, warnings []string) (*Response, string, bool) {
	part, err := graph.Partition(req.Query, func(id graph.NodeID) string { return assign[id] })
	if err != nil || len(part.Parts) < 2 {
		return nil, "", false
	}
	names := make([]string, 0, len(part.Parts))
	for name := range part.Parts {
		names = append(names, name)
	}
	sort.Strings(names)

	pathMode := req.Algorithm == AlgoPathEmbed
	var specs []core.MetricSpec
	maxHops := 0
	if pathMode {
		specs = core.PathOptions{
			MaxHops:   req.Path.MaxHops,
			DelayAttr: req.Path.DelayAttr,
			WindowLo:  req.Path.WindowLo,
			WindowHi:  req.Path.WindowHi,
			Metrics:   req.Path.Metrics,
		}.EffectiveMetrics()
		maxHops = req.Path.MaxHops
		if maxHops <= 0 {
			maxHops = 3
		}
		bv.ensurePathState(maxHops)
	} else if !bv.prescreen(part.Cuts, edgeProg) {
		// No boundary edge can carry some query cut edge under the
		// constraint — don't spend shard budget on this split.
		return nil, "", false
	}

	// Candidate exchange: every fragment comes back with up to TopK
	// feasible placements from its shard.
	frags := make([]fragResult, 0, len(names))
	remaining := time.Until(deadline)
	if remaining < time.Millisecond {
		remaining = time.Millisecond
	}
	fragBudget := remaining / time.Duration(len(names)+1)
	if fragBudget < time.Millisecond {
		fragBudget = time.Millisecond
	}
	for _, name := range names {
		cs := c.byName[name]
		if cs == nil {
			return nil, "", false
		}
		sreq := req
		sreq.Query = part.Parts[name]
		sreq.Timeout = fragBudget
		sreq.MaxResults = c.topK
		sreq.Optimize = false
		sreq.Objective = core.Objective{}
		sreq.OnImprove = nil
		resp, err := cs.shard.Embed(sreq)
		if err != nil {
			c.recordFailure(cs, err)
			return nil, "", false
		}
		c.recordSuccess(cs, resp.ModelVersion)
		addStats(stats, &resp.Stats)
		if len(resp.Named) == 0 {
			return nil, "", false
		}
		frags = append(frags, fragResult{shard: cs, name: name, resp: resp})
	}

	// Join: walk the cartesian product of fragment candidates, first
	// combination whose cut edges all land on acceptable boundary edges
	// (or stitched boundary paths) wins.
	counts := make([]int, len(frags))
	for i, f := range frags {
		counts[i] = len(f.resp.Named)
	}
	pick := make([]int, len(frags))
	combos := 0
	for {
		if combos >= maxJoinCombos || !time.Now().Before(deadline) {
			return nil, "", false
		}
		combos++
		merged, witnesses, ok := c.joinCombo(part.Cuts, frags, pick, edgeProg, bv, specs, maxHops, pathMode)
		if ok {
			shardNames := make([]string, len(frags))
			versions := make([]string, len(frags))
			c.mu.Lock()
			c.crossEmbeds++
			for i, f := range frags {
				f.shard.embeds++
				shardNames[i] = f.name
				versions[i] = fmt.Sprintf("%s=%d", f.name, f.resp.ModelVersion)
			}
			c.mu.Unlock()
			resp := &Response{
				Status: core.StatusPartial,
				Named:  []NamedMapping{merged},
				Stats:  *stats,
				Warnings: append(append([]string(nil), warnings...),
					"cross-shard answer: named mappings are authoritative (raw IDs do not span shards)",
					"answer spans shard versions "+strings.Join(versions, " ")),
			}
			if pathMode {
				resp.Paths = [][]PathWitness{witnesses}
			}
			return resp, "cross:" + strings.Join(shardNames, "+"), true
		}
		// odometer
		i := len(pick) - 1
		for ; i >= 0; i-- {
			pick[i]++
			if pick[i] < counts[i] {
				break
			}
			pick[i] = 0
		}
		if i < 0 {
			return nil, "", false
		}
	}
}

// joinCombo validates one candidate combination: merges the fragment
// mappings and checks every query cut edge against the boundary.
func (c *Coordinator) joinCombo(cuts []graph.CutEdge, frags []fragResult, pick []int, edgeProg *expr.Program, bv *boundaryView, specs []core.MetricSpec, maxHops int, pathMode bool) (NamedMapping, []PathWitness, bool) {
	merged := NamedMapping{}
	used := map[string]bool{}
	for i, f := range frags {
		for q, r := range f.resp.Named[pick[i]] {
			if used[r] {
				// Host names are globally unique, so this only trips if two
				// shards ever report overlapping views — reject, injectivity
				// would be silently violated.
				return nil, nil, false
			}
			used[r] = true
			merged[q] = r
		}
	}
	// Fragment witnesses first; cut-edge witnesses stitched below.
	var witnesses []PathWitness
	if pathMode {
		for i, f := range frags {
			if pick[i] < len(f.resp.Paths) {
				witnesses = append(witnesses, f.resp.Paths[pick[i]]...)
			}
		}
	}
	for _, qcut := range cuts {
		hu, okU := merged[qcut.Source]
		hv, okV := merged[qcut.Target]
		if !okU || !okV {
			return nil, nil, false
		}
		if pathMode {
			w, ok := bv.stitchWitness(hu, hv, qcut.Attrs, specs, maxHops)
			if !ok {
				return nil, nil, false
			}
			w.Source, w.Target = qcut.Source, qcut.Target
			witnesses = append(witnesses, w)
			continue
		}
		if !bv.matchEdge(hu, hv, qcut, edgeProg) {
			return nil, nil, false
		}
	}
	return merged, witnesses, true
}

// boundaryView wraps the coordinator's cut-edge snapshot with the lookup
// and stitching machinery one cross-shard request needs.
type boundaryView struct {
	cuts     []graph.CutEdge
	directed bool
	idx      *boundaryIndexMap

	// Path-mode stitching state, built on demand: the boundary graph
	// (nodes = cut endpoints, edges = cut edges) and its hop-bounded
	// reachability oracle.
	bg   *graph.Graph
	ids  map[string]graph.NodeID
	fwd  []sets.Bitset
	hops int
}

func newBoundaryView(cuts []graph.CutEdge, directed bool) *boundaryView {
	return &boundaryView{
		cuts:     cuts,
		directed: directed,
		idx:      boundaryIndex(cuts, directed),
	}
}

// prescreen checks that every query cut edge has at least one boundary
// edge it could ride under the edge constraint, so hopeless assignments
// are rejected before any shard budget is spent.
func (bv *boundaryView) prescreen(cuts []graph.CutEdge, prog *expr.Program) bool {
	for _, qcut := range cuts {
		ok := false
		for i := range bv.cuts {
			if bv.acceptEdge(i, qcut, prog, false) || (!bv.directed && bv.acceptEdge(i, qcut, prog, true)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// acceptEdge evaluates the edge constraint for one query cut edge riding
// boundary edge i (optionally reversed, for undirected hosts).
func (bv *boundaryView) acceptEdge(i int, qcut graph.CutEdge, prog *expr.Program, reversed bool) bool {
	if prog == nil {
		return true
	}
	cut := bv.cuts[i]
	bind := expr.EdgeBinding{
		VEdge:   qcut.Attrs,
		VSource: qcut.SourceAttrs,
		VTarget: qcut.TargetAttrs,
		REdge:   cut.Attrs,
		RSource: cut.SourceAttrs,
		RTarget: cut.TargetAttrs,
	}
	if reversed {
		bind.RSource, bind.RTarget = cut.TargetAttrs, cut.SourceAttrs
	}
	return prog.EvalEdge(&bind)
}

// matchEdge finds a boundary edge carrying one query cut edge between the
// chosen hosting nodes and evaluates the edge constraint on it.
func (bv *boundaryView) matchEdge(hu, hv string, qcut graph.CutEdge, prog *expr.Program) bool {
	i, ok := bv.idx.lookup(hu, hv)
	if !ok {
		return false
	}
	reversed := bv.cuts[i].Source != hu
	return bv.acceptEdge(i, qcut, prog, reversed)
}

// ensurePathState builds the boundary graph and its reachability oracle
// for path-mode stitching.
func (bv *boundaryView) ensurePathState(maxHops int) {
	if bv.bg != nil && bv.hops == maxHops {
		return
	}
	bg := graph.New(bv.directed)
	ids := map[string]graph.NodeID{}
	node := func(name string, attrs graph.Attrs) graph.NodeID {
		if id, ok := ids[name]; ok {
			return id
		}
		id := bg.AddNode(name, attrs.Clone())
		ids[name] = id
		return id
	}
	for _, cut := range bv.cuts {
		u := node(cut.Source, cut.SourceAttrs)
		v := node(cut.Target, cut.TargetAttrs)
		if _, err := bg.AddEdge(u, v, cut.Attrs.Clone()); err != nil {
			continue // duplicate cut edge rows collapse to the first
		}
	}
	fwd, _ := index.BuildReach(bg, maxHops)
	bv.bg, bv.ids, bv.fwd, bv.hops = bg, ids, fwd, maxHops
}

// stitchWitness finds a witness path for one query cut edge across the
// boundary graph: at most maxHops boundary edges whose composed metrics
// satisfy the query edge's windows. The reachability oracle screens out
// unreachable pairs before the DFS runs.
func (bv *boundaryView) stitchWitness(hu, hv string, qAttrs graph.Attrs, specs []core.MetricSpec, maxHops int) (PathWitness, bool) {
	bu, okU := bv.ids[hu]
	bv2, okV := bv.ids[hv]
	if !okU || !okV {
		return PathWitness{}, false
	}
	if int(bu) < len(bv.fwd) && !bv.fwd[bu].Has(int32(bv2)) {
		return PathWitness{}, false
	}
	visited := make(map[graph.NodeID]bool, maxHops+1)
	visited[bu] = true
	pathNodes := []graph.NodeID{bu}
	var pathEdges []graph.EdgeID
	var found *PathWitness
	var dfs func(u graph.NodeID, depth int) bool
	dfs = func(u graph.NodeID, depth int) bool {
		if u == bv2 && depth > 0 {
			if cost, ok := bv.composedOK(pathEdges, qAttrs, specs); ok {
				names := make([]string, len(pathNodes))
				for i, id := range pathNodes {
					names[i] = bv.bg.Node(id).Name
				}
				found = &PathWitness{Path: names, Cost: cost}
				return true
			}
			return false
		}
		if depth == maxHops {
			return false
		}
		for _, arc := range bv.bg.Arcs(u) {
			if visited[arc.To] {
				continue
			}
			visited[arc.To] = true
			pathNodes = append(pathNodes, arc.To)
			pathEdges = append(pathEdges, arc.Edge)
			if dfs(arc.To, depth+1) {
				return true
			}
			visited[arc.To] = false
			pathNodes = pathNodes[:len(pathNodes)-1]
			pathEdges = pathEdges[:len(pathEdges)-1]
		}
		return false
	}
	if !dfs(bu, 0) {
		return PathWitness{}, false
	}
	return *found, true
}

// composedOK folds each metric spec along the boundary path and checks
// the query edge's window. The first spec's composed value is the
// witness cost (matching core.PathEmbed's convention).
func (bv *boundaryView) composedOK(edges []graph.EdgeID, qAttrs graph.Attrs, specs []core.MetricSpec) (float64, bool) {
	cost := 0.0
	for si, spec := range specs {
		var acc float64
		switch spec.Rule {
		case core.Multiplicative:
			acc = 1
		default:
			acc = 0
		}
		for i, e := range edges {
			v, ok := bv.bg.Edge(e).Attrs.Float(spec.Attr)
			if !ok {
				if spec.MissingFails {
					return 0, false
				}
				v = spec.MissingEdge
			}
			switch spec.Rule {
			case core.Bottleneck:
				if i == 0 || v < acc {
					acc = v
				}
			case core.Multiplicative:
				acc *= v
			default:
				acc += v
			}
		}
		if spec.LoAttr != "" {
			if lo, ok := qAttrs.Float(spec.LoAttr); ok && acc < lo {
				return 0, false
			}
		}
		if spec.HiAttr != "" {
			if hi, ok := qAttrs.Float(spec.HiAttr); ok && acc > hi {
				return 0, false
			}
		}
		if si == 0 {
			cost = acc
		}
	}
	return cost, true
}
