package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
)

// LeaseID identifies an active reservation.
type LeaseID int64

// Lease records one allocated embedding: the hosting nodes it occupies and
// an optional validity window (zero times mean "until released"). Windowed
// leases power the §VIII scheduling extension.
type Lease struct {
	ID    LeaseID
	Nodes []graph.NodeID
	Start time.Time
	End   time.Time
}

// active reports whether the lease holds resources at time t.
func (l Lease) active(t time.Time) bool {
	if l.Start.IsZero() && l.End.IsZero() {
		return true
	}
	if !l.Start.IsZero() && t.Before(l.Start) {
		return false
	}
	if !l.End.IsZero() && !t.Before(l.End) {
		return false
	}
	return true
}

// Ledger is the reservation system of Fig. 1: it tracks which hosting
// nodes are allocated to embeddings so subsequent queries can exclude
// them. Nodes default to a single slot; SetCapacity lets multi-tenant
// hosts (a node attribute like "slots") carry several concurrent leases.
// Safe for concurrent use.
type Ledger struct {
	mu       sync.Mutex
	leases   map[LeaseID]Lease
	next     LeaseID
	clock    func() time.Time
	capacity func(graph.NodeID) int
}

// NewLedger returns an empty reservation ledger with single-slot nodes.
func NewLedger() *Ledger {
	return &Ledger{
		leases:   make(map[LeaseID]Lease),
		clock:    time.Now,
		capacity: func(graph.NodeID) int { return 1 },
	}
}

// SetCapacity installs the per-node slot count used by allocation checks
// and saturation queries. A nil function restores single-slot semantics;
// non-positive capacities count as 1.
func (l *Ledger) SetCapacity(capacity func(graph.NodeID) int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if capacity == nil {
		capacity = func(graph.NodeID) int { return 1 }
	}
	l.capacity = capacity
}

func (l *Ledger) capLocked(r graph.NodeID) int {
	if c := l.capacity(r); c > 1 {
		return c
	}
	return 1
}

// SetClock injects a time source (tests and the scheduler use this).
func (l *Ledger) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// Now reads the ledger's clock — time.Now unless SetClock injected a
// source. Periodic maintenance (the engine tick) passes this to Prune so
// simulated clocks never see wall-time deleting their live leases.
func (l *Ledger) Now() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.clock()
}

// Ledger errors.
var (
	ErrLeaseNotFound = errors.New("service: lease not found")
	ErrConflict      = errors.New("service: reservation conflict")
	// ErrNotWindowed rejects Renew on an open-ended lease: it never
	// expires, so there is nothing to extend.
	ErrNotWindowed = errors.New("service: lease has no expiry window")
)

// Allocate reserves the hosting nodes of m indefinitely. It fails with
// ErrConflict if any node already has an active overlapping lease.
func (l *Ledger) Allocate(m core.Mapping) (LeaseID, error) {
	return l.AllocateWindow(m, time.Time{}, time.Time{})
}

// AllocateWindow reserves the hosting nodes of m for [start, end). Zero
// times make the lease open-ended on that side.
func (l *Ledger) AllocateWindow(m core.Mapping, start, end time.Time) (LeaseID, error) {
	if !start.IsZero() && !end.IsZero() && !start.Before(end) {
		return 0, fmt.Errorf("service: empty lease window [%v, %v)", start, end)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	want := make(map[graph.NodeID]bool, len(m))
	for _, r := range m {
		if want[r] {
			return 0, fmt.Errorf("service: mapping reserves host node %d twice", r)
		}
		want[r] = true
	}
	// Count overlapping holds per wanted node; a node conflicts only when
	// its slot capacity is exhausted.
	holds := make(map[graph.NodeID]int, len(m))
	for _, lease := range l.leases {
		if !windowsOverlap(lease.Start, lease.End, start, end) {
			continue
		}
		for _, r := range lease.Nodes {
			if want[r] {
				holds[r]++
			}
		}
	}
	for r, n := range holds {
		if n+1 > l.capLocked(r) {
			return 0, fmt.Errorf("%w: host node %d has all %d slot(s) leased", ErrConflict, r, l.capLocked(r))
		}
	}
	l.next++
	id := l.next
	nodes := make([]graph.NodeID, len(m))
	copy(nodes, m)
	l.leases[id] = Lease{ID: id, Nodes: nodes, Start: start, End: end}
	return id, nil
}

// windowsOverlap reports whether two [start, end) windows intersect, with
// zero times meaning unbounded.
func windowsOverlap(aStart, aEnd, bStart, bEnd time.Time) bool {
	startsBefore := func(s, e time.Time) bool { // s < e, honoring zero = -inf/+inf
		return e.IsZero() || s.IsZero() || s.Before(e)
	}
	return startsBefore(aStart, bEnd) && startsBefore(bStart, aEnd)
}

// Prune removes leases whose validity windows ended at or before now,
// returning the IDs it dropped so owners of long-lived state keyed by
// lease — the embedding lifecycle registry — can mark the affected
// records Expired instead of discovering the loss lazily. Expired
// windowed leases no longer hold resources (active() already excludes
// them from saturation queries) but their records otherwise accumulate
// forever; the job engine calls this from its periodic tick so
// long-lived services stay lean.
func (l *Ledger) Prune(now time.Time) []LeaseID {
	l.mu.Lock()
	defer l.mu.Unlock()
	var removed []LeaseID
	for id, lease := range l.leases {
		if !lease.End.IsZero() && !now.Before(lease.End) {
			delete(l.leases, id)
			removed = append(removed, id)
		}
	}
	return removed
}

// Renew extends a windowed lease to end at newEnd instead of its current
// expiry, holding the lease's nodes continuously — no release window in
// which a concurrent placement can steal a slot, which is exactly the
// race release + re-allocate invites. Open-ended leases fail with
// ErrNotWindowed (nothing expires); newEnd must lie strictly after the
// current expiry. The extension is conflict-checked like an allocation:
// if any of the lease's nodes has every slot held by other leases
// overlapping the added coverage, Renew fails with ErrConflict and the
// lease is unchanged. A lease whose window already lapsed (but which
// Prune has not yet swept) can be revived the same way — the added
// coverage then starts at the current clock, so placements made after
// the lapse are honored, not clobbered.
func (l *Ledger) Renew(id LeaseID, newEnd time.Time) error {
	if newEnd.IsZero() {
		return fmt.Errorf("service: renew needs a concrete new expiry")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lease, ok := l.leases[id]
	if !ok {
		return ErrLeaseNotFound
	}
	if lease.End.IsZero() {
		return ErrNotWindowed
	}
	if !newEnd.After(lease.End) {
		return fmt.Errorf("service: renew expiry %v does not extend current expiry %v", newEnd, lease.End)
	}
	// The coverage the renewal adds: [End, newEnd), pushed forward to the
	// present when the lease already lapsed — holds that came and went
	// entirely during the lapse cannot conflict with the future.
	cover := lease.End
	if now := l.clock(); now.After(cover) {
		cover = now
	}
	want := make(map[graph.NodeID]bool, len(lease.Nodes))
	for _, r := range lease.Nodes {
		want[r] = true
	}
	holds := make(map[graph.NodeID]int, len(lease.Nodes))
	for oid, other := range l.leases {
		if oid == id || !windowsOverlap(other.Start, other.End, cover, newEnd) {
			continue
		}
		for _, r := range other.Nodes {
			if want[r] {
				holds[r]++
			}
		}
	}
	for r, n := range holds {
		if n+1 > l.capLocked(r) {
			return fmt.Errorf("%w: host node %d has all %d slot(s) leased over the extension", ErrConflict, r, l.capLocked(r))
		}
	}
	lease.End = newEnd
	l.leases[id] = lease
	return nil
}

// Replace atomically swaps the node set of a live lease — the commit
// primitive for migration plans. Semantically it is allocate-new-then-
// release-old executed under one ledger lock: the replacement mapping is
// conflict-checked against every *other* lease overlapping this lease's
// window (the lease's own holds are excluded, so nodes kept across the
// migration never double-count), and only if every node has a free slot
// does the lease's node set change. On ErrConflict — a concurrent
// allocation stole a migration target between planning and commit — the
// lease is untouched and the caller keeps the old placement: rollback is
// the no-op. The lease's ID and validity window survive the swap.
func (l *Ledger) Replace(id LeaseID, m core.Mapping) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	lease, ok := l.leases[id]
	if !ok {
		return ErrLeaseNotFound
	}
	want := make(map[graph.NodeID]bool, len(m))
	for _, r := range m {
		if want[r] {
			return fmt.Errorf("service: mapping reserves host node %d twice", r)
		}
		want[r] = true
	}
	holds := make(map[graph.NodeID]int, len(m))
	for oid, other := range l.leases {
		if oid == id || !windowsOverlap(other.Start, other.End, lease.Start, lease.End) {
			continue
		}
		for _, r := range other.Nodes {
			if want[r] {
				holds[r]++
			}
		}
	}
	for r, n := range holds {
		if n+1 > l.capLocked(r) {
			return fmt.Errorf("%w: host node %d has all %d slot(s) leased", ErrConflict, r, l.capLocked(r))
		}
	}
	nodes := make([]graph.NodeID, len(m))
	copy(nodes, m)
	lease.Nodes = nodes
	l.leases[id] = lease
	return nil
}

// Release frees a lease.
func (l *Ledger) Release(id LeaseID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.leases[id]; !ok {
		return ErrLeaseNotFound
	}
	delete(l.leases, id)
	return nil
}

// Lease returns a lease by ID.
func (l *Ledger) Lease(id LeaseID) (Lease, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lease, ok := l.leases[id]
	return lease, ok
}

// ReservedNodes lists hosting nodes with a lease active right now.
func (l *Ledger) ReservedNodes() []graph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reservedAtLocked(l.clock())
}

// ReservedNodesAt lists hosting nodes with a lease active at time t.
func (l *Ledger) ReservedNodesAt(t time.Time) []graph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reservedAtLocked(t)
}

func (l *Ledger) reservedAtLocked(t time.Time) []graph.NodeID {
	var out []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, lease := range l.leases {
		if !lease.active(t) {
			continue
		}
		for _, r := range lease.Nodes {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// SaturatedNodes lists hosting nodes whose every slot is held by a lease
// active right now — the set ExcludeReserved hides from new queries.
// With default single-slot capacity this equals ReservedNodes.
func (l *Ledger) SaturatedNodes() []graph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock()
	holds := map[graph.NodeID]int{}
	for _, lease := range l.leases {
		if !lease.active(now) {
			continue
		}
		for _, r := range lease.Nodes {
			holds[r]++
		}
	}
	var out []graph.NodeID
	for r, n := range holds {
		if n >= l.capLocked(r) {
			out = append(out, r)
		}
	}
	return out
}

// SaturatedInWindow lists hosting nodes with no free slot at any point of
// the [start, end) window (zero times = unbounded), used by the windowed
// scheduler.
func (l *Ledger) SaturatedInWindow(start, end time.Time) []graph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	holds := map[graph.NodeID]int{}
	for _, lease := range l.leases {
		if !windowsOverlap(lease.Start, lease.End, start, end) {
			continue
		}
		for _, r := range lease.Nodes {
			holds[r]++
		}
	}
	var out []graph.NodeID
	for r, n := range holds {
		if n >= l.capLocked(r) {
			out = append(out, r)
		}
	}
	return out
}

// ActiveLeases counts leases active right now.
func (l *Ledger) ActiveLeases() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	now := l.clock()
	for _, lease := range l.leases {
		if lease.active(now) {
			n++
		}
	}
	return n
}
