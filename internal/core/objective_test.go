package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// These tests pin the branch-and-bound tentpole: for every built-in
// objective, representation, orientation and engine, the optimizing
// search returns a feasible embedding whose cost equals the exhaustive
// enumerate-and-argmin oracle's — the bounds only prune, never lose the
// optimum.

// objectiveProblem builds a random instance whose hosts carry the
// attributes all three objectives read: "price" (attr-cost), "cpu"
// (load-balance strata) and "active" on roughly half the hosts (energy).
func objectiveProblem(t *testing.T, seed int64, directed bool) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	host := graph.New(directed)
	nr := 6 + rng.Intn(4)
	for i := 0; i < nr; i++ {
		attrs := graph.Attrs{}.
			SetNum("price", float64(1+rng.Intn(20))).
			SetNum("cpu", float64(1+rng.Intn(4)))
		if rng.Float64() < 0.5 {
			attrs = attrs.SetNum("active", 1)
		}
		host.AddNode("", attrs)
	}
	for u := 0; u < nr; u++ {
		for v := 0; v < nr; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if rng.Float64() < 0.5 {
				d := 1 + rng.Float64()*99
				host.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.
					SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.2))
			}
		}
	}
	query := graph.New(directed)
	nq := 2 + rng.Intn(3)
	for i := 0; i < nq; i++ {
		query.AddNode("", nil)
	}
	for i := 1; i < nq; i++ {
		lo, hi := rng.Float64()*40, 60+rng.Float64()*80
		query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), graph.Attrs{}.
			SetNum("minDelay", lo).SetNum("maxDelay", hi))
	}
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testObjectives is the matrix every equivalence test sweeps: the three
// kinds plus negative-weight variants of each — attr-cost exercises the
// descending postings walk, load balance the max composition over
// all-negative terms (the -Inf cost seed), and energy the
// non-monotone additive full fold.
var testObjectives = []Objective{
	{Kind: ObjectiveAttrCost, Attr: "price"},
	{Kind: ObjectiveAttrCost, Attr: "price", Weight: -1},
	{Kind: ObjectiveLoadBalance, Attr: "cpu"},
	{Kind: ObjectiveLoadBalance, Attr: "cpu", Weight: -1},
	{Kind: ObjectiveEnergy},
	{Kind: ObjectiveEnergy, Weight: -1},
}

func objLabel(o Objective) string {
	return fmt.Sprintf("kind%d/%s/w%g", o.Kind, o.Attr, o.Weight)
}

// argminOracle enumerates every embedding without optimization and
// evaluates the objective canonically — the reference the B&B cost must
// hit exactly (modulo float summation order).
func argminOracle(p *Problem, o Objective) (best float64, n int) {
	res := ECF(p, Options{})
	if len(res.Solutions) == 0 {
		return 0, 0
	}
	best = o.Cost(p.Host, res.Solutions[0])
	for _, m := range res.Solutions[1:] {
		if c := o.Cost(p.Host, m); c < best {
			best = c
		}
	}
	return best, len(res.Solutions)
}

func closeCost(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// checkOptimum asserts one optimizing result against the oracle: status
// complete, exactly one feasible solution, and the reported cost both
// matches the canonical evaluation of the returned mapping and the
// oracle's optimum.
func checkOptimum(t *testing.T, label string, p *Problem, o Objective, res *Result, want float64) {
	t.Helper()
	if res.Status != StatusComplete || !res.Exhausted {
		t.Fatalf("%s: status %v exhausted %v", label, res.Status, res.Exhausted)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("%s: %d solutions, want exactly the incumbent", label, len(res.Solutions))
	}
	m := res.Solutions[0]
	if err := p.Verify(m); err != nil {
		t.Fatalf("%s: optimum infeasible: %v", label, err)
	}
	if c := o.Cost(p.Host, m); !closeCost(c, res.Cost) {
		t.Fatalf("%s: reported cost %v but mapping evaluates to %v", label, res.Cost, c)
	}
	if !closeCost(res.Cost, want) {
		t.Fatalf("%s: optimum %v, oracle argmin %v", label, res.Cost, want)
	}
}

// TestObjectiveCostSemantics pins the canonical evaluator: additive
// attr-cost with missing-attribute zeros and negative weights, max-
// composed load balance with the <1 slot clamp, and energy counting only
// inactive hosts.
func TestObjectiveCostSemantics(t *testing.T) {
	host := graph.NewUndirected()
	host.AddNode("a", graph.Attrs{}.SetNum("price", 4).SetNum("slots", 2).SetNum("active", 1))
	host.AddNode("b", graph.Attrs{}.SetNum("price", 10).SetNum("slots", 0.25))
	host.AddNode("c", nil) // no attributes at all
	m := Mapping{0, 1, 2}

	if c := (Objective{}).Cost(host, m); c != 0 {
		t.Errorf("disabled objective cost = %v", c)
	}
	if c := (Objective{Kind: ObjectiveAttrCost, Attr: "price"}).Cost(host, m); c != 14 {
		t.Errorf("attr-cost = %v, want 14 (missing attr = 0)", c)
	}
	if c := (Objective{Kind: ObjectiveAttrCost, Attr: "price", Weight: -2}).Cost(host, m); c != -28 {
		t.Errorf("weighted attr-cost = %v, want -28", c)
	}
	// Load balance: max(1/2, 1/1, 1/1) — b's 0.25 slots and c's missing
	// attribute both clamp to 1.
	if c := (Objective{Kind: ObjectiveLoadBalance}).Cost(host, m); c != 1 {
		t.Errorf("load-balance = %v, want 1", c)
	}
	// Energy: a is active, b and c are not.
	if c := (Objective{Kind: ObjectiveEnergy}).Cost(host, m); c != 2 {
		t.Errorf("energy = %v, want 2", c)
	}
}

// TestBnBOptimumMatchesExhaustive is the central property: across
// objectives, representations, orientations and all three optimizing
// engines (FC static, FC dynamic, chronological argmin), the optimizing
// search's cost equals the exhaustive oracle's argmin.
func TestBnBOptimumMatchesExhaustive(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 12; seed++ {
			p := objectiveProblem(t, seed, directed)
			for _, o := range testObjectives {
				want, n := argminOracle(p, o)
				if n == 0 {
					continue // infeasible instance: nothing to optimize
				}
				for _, repr := range []Repr{ReprSlice, ReprBitset} {
					label := fmt.Sprintf("dir=%v seed=%d %s repr=%v", directed, seed, objLabel(o), repr)
					opt := Options{Optimize: true, Objective: o, Repr: repr}
					checkOptimum(t, label+" fc", p, o, ECF(p, opt), want)
					checkOptimum(t, label+" dynamic", p, o, DynamicECF(p, opt), want)
					chOpt := opt
					chOpt.Engine = SearchChrono
					checkOptimum(t, label+" chrono", p, o, ECF(p, chOpt), want)
				}
			}
		}
	}
}

// TestBnBWithIndexAfterDeltaChain pins the index-strata lower bounds
// against stale-postings bugs: an index patched through a chain of
// attribute edits and edge removals must still bound admissibly, so the
// optimum matches the oracle computed on the final graph without any
// index.
func TestBnBWithIndexAfterDeltaChain(t *testing.T) {
	var totalProbes int64
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		p := objectiveProblem(t, 40+seed, false)
		host := p.Host
		idx := index.Build(host, 1, index.Config{})
		for step := 0; step < 4; step++ {
			d := &graph.Delta{}
			// Reprice a couple of hosts: the attr-cost postings must follow.
			for k := 0; k < 2; k++ {
				r := graph.NodeID(rng.Intn(host.NumNodes()))
				d.SetNodeAttrs = append(d.SetNodeAttrs, graph.NodeAttrUpdate{
					Node: host.Node(r).Name,
					Set:  graph.Attrs{}.SetNum("price", float64(1+rng.Intn(20))),
				})
			}
			if host.NumEdges() > 1 && rng.Float64() < 0.5 {
				e := host.Edge(graph.EdgeID(rng.Intn(host.NumEdges())))
				d.RemoveEdges = append(d.RemoveEdges, graph.EdgeRef{
					Source: host.Node(e.From).Name, Target: host.Node(e.To).Name,
				})
			}
			next, err := host.ApplyDelta(d)
			if err != nil {
				t.Fatal(err)
			}
			idx = idx.Apply(host, next, d, uint64(step+2))
			host = next
		}
		p2, err := NewProblem(p.Query, host, delayWindow, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range testObjectives {
			want, n := argminOracle(p2, o)
			if n == 0 {
				continue
			}
			label := fmt.Sprintf("seed=%d %s indexed", seed, objLabel(o))
			res := ECF(p2, Options{Optimize: true, Objective: o, Index: idx})
			checkOptimum(t, label, p2, o, res, want)
			totalProbes += res.Stats.BoundProbes
		}
	}
	// Tiny instances may resolve on prefix cuts alone, but across the
	// sweep the per-node lower bounds must have been consulted.
	if totalProbes == 0 {
		t.Error("no bound probes across the whole sweep — lower bounds never consulted")
	}
}

// TestOptimizeAnytimeOnImprove pins the anytime contract: OnImprove
// fires with strictly decreasing feasible incumbents and the last one is
// the final answer.
func TestOptimizeAnytimeOnImprove(t *testing.T) {
	p := objectiveProblem(t, 7, false)
	o := Objective{Kind: ObjectiveAttrCost, Attr: "price"}
	if _, n := argminOracle(p, o); n < 2 {
		t.Skip("instance too small to observe improvement")
	}
	var costs []float64
	var last Mapping
	res := ECF(p, Options{Optimize: true, Objective: o, OnImprove: func(m Mapping, cost float64) {
		if err := p.Verify(m); err != nil {
			t.Errorf("incumbent %d infeasible: %v", len(costs), err)
		}
		costs = append(costs, cost)
		last = m.Clone()
	}})
	if len(costs) == 0 {
		t.Fatal("OnImprove never fired")
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Fatalf("incumbent costs not strictly decreasing: %v", costs)
		}
	}
	if got := costs[len(costs)-1]; !closeCost(got, res.Cost) {
		t.Fatalf("last improvement %v != final cost %v", got, res.Cost)
	}
	if mappingKey(last) != mappingKey(res.Solutions[0]) {
		t.Fatal("last improved mapping is not the returned optimum")
	}
	if res.Stats.IncumbentUpdates != int64(len(costs)) {
		t.Fatalf("IncumbentUpdates %d but %d improvements observed",
			res.Stats.IncumbentUpdates, len(costs))
	}
}

// TestParallelOptimizeSharedIncumbent runs the work-stealing search in
// optimizing mode on a steal-heavy instance (run under -race in CI): the
// workers must share one incumbent through the atomic bound, still steal
// (Steals > 0), and land on the sequential optimum.
func TestParallelOptimizeSharedIncumbent(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 40}, rand.New(rand.NewSource(16)))
	q, _, err := topo.Subgraph(host, 10, 16, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.15)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := Objective{Kind: ObjectiveAttrCost, Attr: "cpu"}
	want, n := argminOracle(p, o)
	if n == 0 {
		t.Fatal("planted instance infeasible")
	}
	seq := ECF(p, Options{Optimize: true, Objective: o})
	checkOptimum(t, "sequential bnb", p, o, seq, want)

	var improvements int
	par := ParallelECF(p, Options{
		Workers:   8,
		Optimize:  true,
		Objective: o,
		OnImprove: func(m Mapping, cost float64) { improvements++ },
	})
	checkOptimum(t, "parallel bnb", p, o, par, want)
	if par.Stats.Steals == 0 {
		t.Error("optimizing parallel run never stole — shared incumbent untested")
	}
	if par.Stats.IncumbentUpdates == 0 {
		t.Error("no incumbent updates recorded")
	}
	if improvements == 0 {
		t.Error("OnImprove never forwarded from the shared incumbent")
	}

	// The static-shard ablation must agree on the optimum too.
	static := ParallelECF(p, Options{Workers: 4, Engine: SearchChrono, Optimize: true, Objective: o})
	checkOptimum(t, "static shards bnb", p, o, static, want)
}

// TestOptimizeBoundsActuallyCut pins that the machinery is engaged on an
// instance where it must be: with an informative additive objective the
// optimizing run records bound cuts and visits no more nodes than plain
// enumeration.
func TestOptimizeBoundsActuallyCut(t *testing.T) {
	o := Objective{Kind: ObjectiveAttrCost, Attr: "price"}
	var p *Problem
	for seed := int64(1); seed <= 30; seed++ {
		cand := objectiveProblem(t, seed, false)
		if _, n := argminOracle(cand, o); n >= 8 {
			p = cand
			break
		}
	}
	if p == nil {
		t.Fatal("no seed produced a solution-rich instance")
	}
	plain := ECF(p, Options{})
	bnb := ECF(p, Options{Optimize: true, Objective: o})
	if bnb.Stats.BoundCuts == 0 {
		t.Error("no bound cuts on a multi-solution instance")
	}
	if bnb.Stats.NodesVisited > plain.Stats.NodesVisited {
		t.Errorf("optimizing search visited %d nodes, enumeration only %d",
			bnb.Stats.NodesVisited, plain.Stats.NodesVisited)
	}
}
