package core

import (
	"fmt"
	"time"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/sets"
)

// PathOptions tunes PathEmbed, the many-to-one extension of §VIII: a
// query edge may ride on a hosting *path* instead of a single hosting
// edge.
type PathOptions struct {
	// MaxHops bounds witness path length in edges (default 3).
	MaxHops int
	// DelayAttr is the numeric edge attribute accumulated along a path
	// (default "avgDelay").
	DelayAttr string
	// WindowLo/WindowHi name the query-edge attributes bounding the
	// accumulated delay (defaults "minDelay"/"maxDelay"). A query edge
	// without the attributes accepts any path within MaxHops.
	WindowLo, WindowHi string
	// Metrics, when non-empty, replaces the single delay window with a
	// conjunction of composed-metric constraints (additive delay,
	// bottleneck bandwidth, multiplicative availability, ...). The
	// DelayAttr/WindowLo/WindowHi fields are then ignored.
	Metrics []MetricSpec
	// Timeout bounds the search (0 = none).
	Timeout time.Duration
	// MaxSolutions caps returned embeddings (0 = all).
	MaxSolutions int
	// Stop, when non-nil, is polled alongside the deadline; returning
	// true cancels the search (see Options.Stop). The hook reaches all
	// the way into the per-pair witness DFS, so cancellation latency is
	// bounded even mid-enumeration on dense hosts.
	Stop func() bool
	// Index, when non-nil, supplies the hop-bounded reachability oracle
	// from a prebuilt host-capability index (internal/index), cached
	// across runs and invalidated by structural deltas. It must describe
	// the Problem's host — same node universe, same orientation — or it
	// is ignored and the rows are computed per run.
	Index *index.Index
	// Engine selects the searcher: SearchFC (default) is the indexed
	// forward-checking engine with reachability-pruned domains, witness
	// memoization and optimistic metric bounds; SearchChrono keeps the
	// chronological scan that re-runs a witness DFS per candidate pair —
	// the property-test oracle and ablation baseline. Both enumerate
	// identical solution sequences.
	Engine SearchEngine // cachekey:ignore both engines provably enumerate identical solutions
}

func (o *PathOptions) applyDefaults() {
	// MaxHops <= 0 is clamped to the default: zero is "unset", and a
	// negative bound used to slip through to PathsWithin, whose old
	// `len == maxHops` guard then never fired — an unbounded enumeration
	// of every simple host path.
	if o.MaxHops <= 0 {
		o.MaxHops = 3
	}
	if o.DelayAttr == "" {
		o.DelayAttr = "avgDelay"
	}
	if o.WindowLo == "" {
		o.WindowLo = "minDelay"
	}
	if o.WindowHi == "" {
		o.WindowHi = "maxDelay"
	}
	if len(o.Metrics) == 0 {
		o.Metrics = []MetricSpec{DefaultDelaySpec(o.DelayAttr, o.WindowLo, o.WindowHi)}
	}
}

// EffectiveMetrics returns the metric specs a PathEmbed run with these
// options will enforce, with defaults applied: the single delay window
// (DelayAttr bounded by WindowLo/WindowHi) when Metrics is empty. The
// service layer uses it to surface typo'd attribute names.
func (o PathOptions) EffectiveMetrics() []MetricSpec {
	o.applyDefaults()
	return o.Metrics
}

// PathSolution is one many-to-one embedding: an injective node mapping
// plus, for every query edge, the witness hosting path carrying it.
// Intermediate path nodes may be shared between paths and with mapped
// nodes (standard VNE link-mapping semantics); only the endpoint images
// are injective.
type PathSolution struct {
	Nodes Mapping
	Paths map[graph.EdgeID]graph.Path
}

// PathResult reports a PathEmbed run.
type PathResult struct {
	Solutions []PathSolution
	Status    Status
	Exhausted bool
	Elapsed   time.Duration
	// Stats carries the search effort counters; path mode additionally
	// fills WitnessProbes, WitnessHits and ReachPrunes.
	Stats Stats
}

// PathEmbed searches for embeddings where query edges map to hosting
// paths of at most MaxHops edges whose accumulated delay lies within the
// query edge's window. The node constraint of the Problem applies to node
// images; the edge constraint program is not consulted (path acceptance
// is defined by the window attributes). Solutions enumerate node
// mappings; each carries one witness path per query edge.
//
// The default engine (SearchFC, pathfc.go) precomputes a hop-bounded
// reachability oracle, forward-prunes candidate domains with it, rejects
// witness probes whose best-possible composed metrics already violate the
// window, and memoizes witness lookups. PathOptions.Engine = SearchChrono
// selects the chronological scan instead; both enumerate the same
// solution sequence.
func PathEmbed(p *Problem, opt PathOptions) *PathResult {
	opt.applyDefaults()
	if opt.Engine == SearchChrono {
		return pathEmbedChrono(p, opt)
	}
	return pathEmbedFC(p, opt)
}

// pathEmbedChrono is the chronological path searcher: a host-node scan
// per depth that re-runs a witness DFS for every candidate pair. Kept as
// the property-test oracle and ablation baseline for the FC engine.
func pathEmbedChrono(p *Problem, opt PathOptions) *PathResult {
	start := time.Now()
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()

	res := &PathResult{}
	var clk stopClock
	clk.arm(start, opt.Timeout, opt.Stop)
	stopped := false

	// Order query nodes by descending degree (LNS heuristic 1) but keep
	// each node adjacent to at least one predecessor when possible.
	order := pathOrder(p.Query)
	pos := make([]int, nq)
	for i, q := range order {
		pos[q] = i
	}

	assign := make(Mapping, nq)
	for i := range assign {
		assign[i] = -1
	}
	used := sets.NewBitset(nr)
	paths := map[graph.EdgeID]graph.Path{}

	// witnessPath finds a path from rs to rt satisfying every composed
	// metric window of query edge qe, or ok=false. The run's stop clock
	// is threaded into the enumeration itself: a canceled or timed-out
	// search must not keep burning CPU inside a large path DFS.
	witnessPath := func(qe *graph.Edge, rs, rt graph.NodeID) (graph.Path, bool) {
		var found graph.Path
		ok := false
		res.Stats.WitnessProbes++
		p.Host.PathsWithinStop(rs, rt, opt.MaxHops, clk.checkDeadline, func(path graph.Path) bool {
			if !pathMetricsOK(p.Host, qe, path.Edges, opt.Metrics) {
				return true
			}
			// Cost records the first metric's composed value (the
			// accumulated delay under the default spec).
			path.Cost, _ = opt.Metrics[0].composeAlong(p.Host, path.Edges)
			found, ok = path, true
			return false // first witness suffices
		})
		return found, ok
	}

	var rec func(d int)
	rec = func(d int) {
		if clk.timedOut || stopped {
			return
		}
		if d == nq {
			sol := PathSolution{Nodes: assign.Clone(), Paths: make(map[graph.EdgeID]graph.Path, len(paths))}
			for k, v := range paths {
				sol.Paths[k] = v
			}
			res.Solutions = append(res.Solutions, sol)
			if opt.MaxSolutions > 0 && len(res.Solutions) >= opt.MaxSolutions {
				stopped = true
			}
			return
		}
		q := order[d]
		for r := graph.NodeID(0); int(r) < nr; r++ {
			if clk.checkDeadline() || stopped {
				return
			}
			if used.Has(r) || !p.nodeOK(q, r) {
				continue
			}
			res.Stats.NodesVisited++
			// Every edge to an already-assigned neighbor needs a witness.
			type chosen struct {
				edge graph.EdgeID
				path graph.Path
			}
			var witnesses []chosen
			ok := true
			visit := func(a graph.Arc, qeFromQ bool) {
				if !ok || assign[a.To] < 0 {
					return
				}
				qe := p.Query.Edge(a.Edge)
				rs, rt := r, assign[a.To]
				if !qeFromQ {
					rs, rt = assign[a.To], r
				}
				if path, found := witnessPath(qe, rs, rt); found {
					witnesses = append(witnesses, chosen{a.Edge, path})
				} else {
					ok = false
				}
			}
			for _, a := range p.Query.Arcs(q) {
				visit(a, p.Query.Edge(a.Edge).From == q)
			}
			if p.Query.Directed() {
				for _, a := range p.Query.InArcs(q) {
					visit(a, false)
				}
			}
			if !ok {
				continue
			}
			assign[q] = r
			used.Set(r)
			for _, w := range witnesses {
				paths[w.edge] = w.path
			}
			rec(d + 1)
			for _, w := range witnesses {
				delete(paths, w.edge)
			}
			used.Clear(r)
			assign[q] = -1
		}
	}
	rec(0)

	res.Exhausted = !clk.timedOut && !stopped
	res.Status = classify(res.Exhausted, len(res.Solutions))
	res.Elapsed = time.Since(start)
	res.Stats.Elapsed = res.Elapsed
	return res
}

// pathOrder orders query nodes by descending degree, then keeps the
// sequence connected when possible so witnesses are checked early.
func pathOrder(q *graph.Graph) []graph.NodeID {
	nq := q.NumNodes()
	order := make([]graph.NodeID, 0, nq)
	picked := make([]bool, nq)
	for len(order) < nq {
		best := graph.NodeID(-1)
		bestDeg := -1
		connected := false
		for i := 0; i < nq; i++ {
			if picked[i] {
				continue
			}
			id := graph.NodeID(i)
			conn := false
			for _, a := range q.Arcs(id) {
				if picked[a.To] {
					conn = true
					break
				}
			}
			if !conn && q.Directed() {
				for _, a := range q.InArcs(id) {
					if picked[a.To] {
						conn = true
						break
					}
				}
			}
			deg := q.Degree(id)
			if (conn && !connected) || (conn == connected && deg > bestDeg) {
				best, bestDeg, connected = id, deg, conn
			}
		}
		picked[best] = true
		order = append(order, best)
	}
	return order
}

// VerifyPathSolution checks a PathSolution independently: injective
// endpoint images, node constraints, and per-edge witness paths that are
// real host walks within the delay window.
func VerifyPathSolution(p *Problem, opt PathOptions, sol PathSolution) error {
	opt.applyDefaults()
	if err := verifyNodesOnly(p, sol.Nodes); err != nil {
		return err
	}
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		path, ok := sol.Paths[graph.EdgeID(i)]
		if !ok {
			return errMissingPath(i)
		}
		if len(path.Nodes) < 2 ||
			path.Nodes[0] != sol.Nodes[qe.From] ||
			path.Nodes[len(path.Nodes)-1] != sol.Nodes[qe.To] {
			return errBadPathEndpoints(i)
		}
		if len(path.Edges) > opt.MaxHops {
			return errPathTooLong(i, len(path.Edges), opt.MaxHops)
		}
		for j, e := range path.Edges {
			u, v := path.Nodes[j], path.Nodes[j+1]
			id, ok := p.Host.EdgeBetween(u, v)
			if !ok || id != e {
				return errBadPathEdge(i, j)
			}
		}
		// Evaluate the specs one by one so the error names the spec that
		// actually failed — reporting Metrics[0]'s composed value when a
		// different spec tripped pointed debugging at the wrong metric.
		for _, spec := range opt.Metrics {
			composed, ok := spec.composeAlong(p.Host, path.Edges)
			if !ok {
				return errPathMissingAttr(i, spec.Attr)
			}
			if !spec.withinWindow(qe, composed) {
				return errPathWindow(i, spec.Attr, composed)
			}
		}
	}
	return nil
}

// verifyNodesOnly checks injectivity, ranges and node constraints without
// requiring single-edge adjacency (paths provide it instead).
func verifyNodesOnly(p *Problem, m Mapping) error {
	if len(m) != p.Query.NumNodes() {
		return errMappingSize(len(m), p.Query.NumNodes())
	}
	seen := map[graph.NodeID]bool{}
	for q, r := range m {
		if r < 0 || int(r) >= p.Host.NumNodes() {
			return errMappingRange(q, r)
		}
		if seen[r] {
			return errMappingDup(r)
		}
		seen[r] = true
		if !p.nodeOK(graph.NodeID(q), r) {
			return errMappingNode(q, r)
		}
	}
	return nil
}

// Error constructors for path-solution verification.
func errMissingPath(edge int) error {
	return fmt.Errorf("core: query edge %d has no witness path", edge)
}

func errBadPathEndpoints(edge int) error {
	return fmt.Errorf("core: witness path for query edge %d does not join the mapped endpoints", edge)
}

func errPathTooLong(edge, hops, max int) error {
	return fmt.Errorf("core: witness path for query edge %d has %d hops, max %d", edge, hops, max)
}

func errBadPathEdge(edge, step int) error {
	return fmt.Errorf("core: witness path for query edge %d is not a host walk at step %d", edge, step)
}

func errPathWindow(edge int, attr string, total float64) error {
	return fmt.Errorf("core: witness path for query edge %d has composed %s %.2f outside the window", edge, attr, total)
}

func errPathMissingAttr(edge int, attr string) error {
	return fmt.Errorf("core: witness path for query edge %d crosses an edge without required attribute %q", edge, attr)
}

func errMappingSize(got, want int) error {
	return fmt.Errorf("core: mapping has %d entries, query has %d nodes", got, want)
}

func errMappingRange(q int, r graph.NodeID) error {
	return fmt.Errorf("core: query node %d mapped to invalid host node %d", q, r)
}

func errMappingDup(r graph.NodeID) error {
	return fmt.Errorf("core: host node %d assigned twice", r)
}

func errMappingNode(q int, r graph.NodeID) error {
	return fmt.Errorf("core: node constraint rejects %d -> %d", q, r)
}
