package core

import (
	"sync"

	"netembed/internal/sets"
)

// This file is the recycling layer behind the steady-state serve path:
// every ECF/RWB/DynamicECF/ParallelECF call used to allocate its full
// per-search state (live-domain bitsets, trail, arena, conflict sets,
// scratch buffers) and a fresh set of filter matrices, all of which die
// the moment the result is built. Under sustained request load that is
// the dominant allocator traffic, so both structures are pooled: a
// search acquires recycled state, re-shapes it to the problem's (nq, nr)
// geometry — allocating only when the recycled capacity is too small —
// and releases it once the Result (which holds only cloned mappings and
// value-typed stats) has been extracted.
//
// Release discipline: only state that provably does not escape into the
// Result or to the caller is pooled. Searchers built by the public
// entry points release themselves; Filters release only at the
// BuildFilters call sites inside this package — filters handed in by
// callers (ECFWithFilters/RWBWithFilters) are caller-owned and are
// never pooled. release clears every reference that could pin caller
// memory (problem, filters, option closures, the solutions slice that
// escaped into the Result) before returning the carcass to the pool.

// poolingEnabled gates the recycling globally. The equivalence tests
// flip it off (no concurrent searches running) to obtain from-scratch
// allocations when pinning that a recycled search is byte-identical to
// a fresh one.
var poolingEnabled = true

// grow returns s with length n, reusing the backing array when capacity
// allows. Surviving elements keep their old values (so slice-of-slice
// slots retain reusable sub-capacity); callers overwrite what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

var fcPool = sync.Pool{New: func() any { return new(fcSearcher) }}

func acquireFCSearcher() *fcSearcher { return fcPool.Get().(*fcSearcher) }

// release returns the searcher's backing storage to the pool. The
// solutions slice escaped into the Result and the option closures
// (Stop/OnSolution) belong to the caller, so both are dropped rather
// than recycled.
func (s *fcSearcher) release() {
	if !poolingEnabled || s == nil {
		return
	}
	s.p = nil
	s.f = nil
	s.opt = Options{}
	s.rng = nil
	s.solutions = nil
	s.obj = nil      // holds the caller's index postings
	s.bbShared = nil // points into ParallelECF's shared state
	s.stopClock = stopClock{}
	fcPool.Put(s)
}

var filtersPool = sync.Pool{New: func() any { return new(Filters) }}

func acquireFilters() *Filters { return filtersPool.Get().(*Filters) }

// release returns the filter matrices to the pool. Call only on filters
// this package built and whose rows provably do not outlive the search
// that used them; caller-supplied filters are never released.
func (f *Filters) release() {
	if !poolingEnabled || f == nil {
		return
	}
	f.p = nil
	filtersPool.Put(f)
}

// rowArena is one recycled MakeBitsets allocation: the row headers and
// their shared backing words, re-shaped per build by nextArena.
type rowArena struct {
	rows    []sets.Bitset
	backing []uint64
}

// nextArena hands out the build's next row arena, recycling positionally:
// the i-th fill of this build reuses the storage of the i-th fill of the
// build that previously owned this Filters, which under a steady
// workload has the same geometry. Rows are fully overwritten by the
// indexed fill (CopyFrom then IntersectWith), so recycled words need no
// zeroing beyond what ReuseBitsets performs.
func (f *Filters) nextArena(n int) []sets.Bitset {
	if f.arenaNext >= len(f.arenas) {
		f.arenas = append(f.arenas, rowArena{})
	}
	a := &f.arenas[f.arenaNext]
	f.arenaNext++
	a.rows, a.backing = sets.ReuseBitsets(a.rows, a.backing, f.nr, n)
	return a.rows
}

// appendTableB appends one dense table of nr nil rows, recycling the row
// slice the previous owner of this Filters had at the same position
// (spare slices survive between len and cap across the [:0] reset).
func appendTableB(ts [][]*sets.Bitset, nr int) [][]*sets.Bitset {
	if n := len(ts); n < cap(ts) {
		ts = ts[: n+1 : cap(ts)]
		rows := ts[n]
		if cap(rows) < nr {
			rows = make([]*sets.Bitset, nr)
		} else {
			rows = rows[:nr]
			clear(rows) // nil row = empty: stale rows must not leak through
		}
		ts[n] = rows
		return ts
	}
	return append(ts, make([]*sets.Bitset, nr))
}

// appendTable is appendTableB for the sparse representation.
func appendTable(ts [][]sets.Set, nr int) [][]sets.Set {
	if n := len(ts); n < cap(ts) {
		ts = ts[: n+1 : cap(ts)]
		rows := ts[n]
		if cap(rows) < nr {
			rows = make([]sets.Set, nr)
		} else {
			rows = rows[:nr]
			clear(rows)
		}
		ts[n] = rows
		return ts
	}
	return append(ts, make([]sets.Set, nr))
}
