package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/index"
)

// randomPathHost builds a random attributed host for path-mode testing:
// edges carry avgDelay, most carry bandwidth and availability (some
// deliberately lack bandwidth to exercise MissingFails).
func randomPathHost(rng *rand.Rand, directed bool, n int, density float64) *graph.Graph {
	g := graph.New(directed)
	for i := 0; i < n; i++ {
		attrs := graph.Attrs{}
		if rng.Float64() < 0.5 {
			attrs = attrs.SetNum("cpu", float64(1+rng.Intn(4)))
		}
		g.AddNode(fmt.Sprintf("h%d", i), attrs)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if rng.Float64() >= density {
				continue
			}
			attrs := graph.Attrs{}.SetNum("avgDelay", 5+rng.Float64()*10)
			if rng.Float64() < 0.85 {
				attrs = attrs.SetNum("bandwidth", 10+rng.Float64()*90)
			}
			attrs = attrs.SetNum("availability", 0.9+rng.Float64()*0.1)
			g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), attrs)
		}
	}
	return g
}

// randomPathQuery builds a small connected query whose edges carry
// multi-hop-friendly delay windows plus occasional bandwidth and
// availability floors.
func randomPathQuery(rng *rand.Rand, directed bool, nq int) *graph.Graph {
	q := graph.New(directed)
	for i := 0; i < nq; i++ {
		q.AddNode(fmt.Sprintf("q%d", i), nil)
	}
	window := func() graph.Attrs {
		attrs := graph.Attrs{}
		// Windows spanning 1-3 hop composed delays of the 5..15ms host
		// edges; occasionally lower-bounded so single hops are excluded.
		lo := rng.Float64() * 20
		attrs = attrs.SetNum("minDelay", lo).SetNum("maxDelay", lo+10+rng.Float64()*30)
		if rng.Float64() < 0.4 {
			attrs = attrs.SetNum("minBandwidth", 10+rng.Float64()*40)
		}
		if rng.Float64() < 0.3 {
			attrs = attrs.SetNum("minAvailability", 0.8+rng.Float64()*0.1)
		}
		return attrs
	}
	for i := 1; i < nq; i++ {
		u, v := graph.NodeID(rng.Intn(i)), graph.NodeID(i)
		if directed && rng.Float64() < 0.5 {
			u, v = v, u
		}
		q.MustAddEdge(u, v, window())
	}
	if nq > 2 && rng.Float64() < 0.5 {
		q.AddEdge(0, graph.NodeID(nq-1), window())
	}
	return q
}

// pathMetricVariants returns the metric-spec sets the equivalence suite
// sweeps: the default single delay window, and a three-way conjunction
// adding bottleneck bandwidth (missing attribute disqualifies) and
// multiplicative availability.
func pathMetricVariants() [][]MetricSpec {
	return [][]MetricSpec{
		nil, // default: additive avgDelay in [minDelay, maxDelay]
		{
			DefaultDelaySpec("avgDelay", "minDelay", "maxDelay"),
			{Attr: "bandwidth", Rule: Bottleneck, LoAttr: "minBandwidth", MissingFails: true},
			{Attr: "availability", Rule: Multiplicative, LoAttr: "minAvailability", MissingEdge: 1},
		},
	}
}

// samePathResults asserts the two engines produced identical solution
// sequences: node mappings AND witness paths, element by element.
func samePathResults(t *testing.T, label string, want, got *PathResult) {
	t.Helper()
	if want.Status != got.Status || want.Exhausted != got.Exhausted {
		t.Fatalf("%s: status %v/%v vs %v/%v", label, want.Status, want.Exhausted, got.Status, got.Exhausted)
	}
	if len(want.Solutions) != len(got.Solutions) {
		t.Fatalf("%s: %d vs %d solutions", label, len(want.Solutions), len(got.Solutions))
	}
	for i := range want.Solutions {
		ws, gs := want.Solutions[i], got.Solutions[i]
		if fmt.Sprint(ws.Nodes) != fmt.Sprint(gs.Nodes) {
			t.Fatalf("%s: solution %d nodes %v vs %v", label, i, ws.Nodes, gs.Nodes)
		}
		if len(ws.Paths) != len(gs.Paths) {
			t.Fatalf("%s: solution %d has %d vs %d witness paths", label, i, len(ws.Paths), len(gs.Paths))
		}
		for e, wp := range ws.Paths {
			gp, ok := gs.Paths[e]
			if !ok || fmt.Sprint(wp.Nodes) != fmt.Sprint(gp.Nodes) {
				t.Fatalf("%s: solution %d edge %d witness %v vs %v", label, i, e, wp.Nodes, gp.Nodes)
			}
		}
	}
}

// checkPathEquivalence runs both engines over one (problem, options)
// point, pins sequence equality, and verifies every FC solution
// independently.
func checkPathEquivalence(t *testing.T, label string, p *Problem, opt PathOptions) {
	t.Helper()
	chrono := opt
	chrono.Engine = SearchChrono
	chrono.Index = nil
	want := PathEmbed(p, chrono)
	fc := opt
	fc.Engine = SearchFC
	got := PathEmbed(p, fc)
	samePathResults(t, label, want, got)
	for i, sol := range got.Solutions {
		if err := VerifyPathSolution(p, opt, sol); err != nil {
			t.Fatalf("%s: FC solution %d invalid: %v", label, i, err)
		}
	}
}

// TestPathFCEquivalenceRandom is the headline property test: across
// random directed and undirected instances, hop bounds, metric-spec
// conjunctions and MaxSolutions caps, the FC engine enumerates exactly
// the seed searcher's solution sequence.
func TestPathFCEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 18
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		directed := trial%3 == 2
		host := randomPathHost(rng, directed, 8+rng.Intn(10), 0.25+rng.Float64()*0.3)
		query := randomPathQuery(rng, directed, 2+rng.Intn(3))
		p, err := NewProblem(query, host, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, metrics := range pathMetricVariants() {
			for _, maxHops := range []int{1, 2, 3} {
				for _, cap := range []int{0, 3} {
					opt := PathOptions{MaxHops: maxHops, Metrics: metrics, MaxSolutions: cap}
					label := fmt.Sprintf("trial=%d dir=%v hops=%d cap=%d metrics=%d",
						trial, directed, maxHops, cap, len(metrics))
					checkPathEquivalence(t, label, p, opt)
				}
			}
		}
	}
}

// TestPathFCEquivalenceWithNodeConstraint adds a node-constraint program
// so the FC base domains actually filter.
func TestPathFCEquivalenceWithNodeConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		host := randomPathHost(rng, false, 10+rng.Intn(6), 0.35)
		query := randomPathQuery(rng, false, 3)
		query.Node(0).Attrs = query.Node(0).Attrs.SetNum("cpu", 2)
		nodeC := expr.MustCompile("!has(vNode.cpu) || (has(rNode.cpu) && rNode.cpu >= vNode.cpu)")
		p, err := NewProblem(query, host, nil, nodeC)
		if err != nil {
			t.Fatal(err)
		}
		checkPathEquivalence(t, fmt.Sprintf("nodeC trial=%d", trial), p, PathOptions{MaxHops: 2})
	}
}

// TestPathFCEquivalenceAcrossDeltas pins the reachability oracle's
// invalidation: the index snapshot is patched through a chain of
// structural and attribute deltas, and after each publish the FC engine
// (reading the patched index's reach rows) must still match the seed
// searcher run against the same new graph.
func TestPathFCEquivalenceAcrossDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	host := randomPathHost(rng, false, 12, 0.3)
	query := randomPathQuery(rng, false, 3)
	ix := index.Build(host, 1, index.Config{})

	deltas := []*graph.Delta{
		{AddEdges: []graph.EdgeSpec{{Source: "h0", Target: "h7",
			Attrs: graph.Attrs{}.SetNum("avgDelay", 6).SetNum("bandwidth", 80).SetNum("availability", 0.99)}}},
		{SetEdgeAttrs: []graph.EdgeAttrUpdate{{Source: "h0", Target: "h7",
			Set: graph.Attrs{}.SetNum("avgDelay", 25)}}},
		{RemoveEdges: []graph.EdgeRef{{Source: "h0", Target: "h7"}}},
	}
	version := uint64(1)
	for step := -1; step < len(deltas); step++ {
		if step >= 0 {
			next, err := host.ApplyDelta(deltas[step])
			if err != nil {
				// The random host may already hold edge h0-h7; retarget by
				// skipping the add (the remaining steps still exercise
				// attr and removal invalidation).
				t.Logf("delta %d skipped: %v", step, err)
				continue
			}
			version++
			ix = ix.Apply(host, next, deltas[step], version)
			host = next
		}
		p, err := NewProblem(query, host, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, maxHops := range []int{2, 3} {
			opt := PathOptions{MaxHops: maxHops, Index: ix}
			checkPathEquivalence(t, fmt.Sprintf("delta step=%d hops=%d", step, maxHops), p, opt)
		}
	}
}

// TestPathFCEquivalenceNegativeMetricValues pins the bound tiers'
// soundness guard: clamped floors/distances are not lower bounds when an
// edge carries a negative metric value, so the FC engine must disable
// them (not prune) and still match the oracle exactly.
func TestPathFCEquivalenceNegativeMetricValues(t *testing.T) {
	host := graph.NewUndirected()
	host.AddNodes(4)
	host.MustAddEdge(0, 1, graph.Attrs{}.SetNum("avgDelay", -2))
	host.MustAddEdge(1, 2, graph.Attrs{}.SetNum("avgDelay", 3))
	host.MustAddEdge(2, 3, graph.Attrs{}.SetNum("avgDelay", -4))
	q := graph.NewUndirected()
	q.AddNodes(2)
	// Window entirely below zero: only negative compositions qualify,
	// which a clamped-at-zero bound would "prove" impossible.
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("maxDelay", -1))
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxHops := range []int{1, 2, 3} {
		checkPathEquivalence(t, fmt.Sprintf("negative hops=%d", maxHops), p, PathOptions{MaxHops: maxHops})
	}
	res := PathEmbed(p, PathOptions{MaxHops: 1})
	if len(res.Solutions) == 0 {
		t.Fatal("negative-delay witnesses must be found (bounds wrongly engaged)")
	}
}

// TestPathEmbedHugeMaxHops pins the reachability oracle's fixed-point
// convergence: an absurd client-supplied hop bound must neither allocate
// per-hop tables nor change the answer beyond the n-1 simple-path limit.
func TestPathEmbedHugeMaxHops(t *testing.T) {
	host := pathHost()
	q := graph.NewUndirected()
	q.AddNodes(2)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 25).SetNum("maxDelay", 35))
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := PathEmbed(p, PathOptions{MaxHops: 3})
	done := make(chan *PathResult, 1)
	go func() { done <- PathEmbed(p, PathOptions{MaxHops: 1 << 30}) }()
	select {
	case got := <-done:
		samePathResults(t, "huge MaxHops", want, got)
	case <-time.After(30 * time.Second):
		t.Fatal("huge MaxHops did not converge")
	}
}

// TestPathEmbedNegativeMaxHopsClamped pins the MaxHops validation fix: a
// negative bound used to slip past applyDefaults (only == 0 was
// defaulted) into an unbounded enumeration; it must now behave exactly
// like the default.
func TestPathEmbedNegativeMaxHopsClamped(t *testing.T) {
	host := pathHost()
	q := graph.NewUndirected()
	q.AddNodes(2)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 25).SetNum("maxDelay", 35))
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := PathEmbed(p, PathOptions{MaxHops: 3})
	for _, engine := range []SearchEngine{SearchFC, SearchChrono} {
		got := PathEmbed(p, PathOptions{MaxHops: -4, Engine: engine})
		if len(got.Solutions) != len(want.Solutions) || got.Status != want.Status {
			t.Errorf("engine %v: negative MaxHops: %d solutions (%v), want default behavior %d (%v)",
				engine, len(got.Solutions), got.Status, len(want.Solutions), want.Status)
		}
		for _, sol := range got.Solutions {
			if err := VerifyPathSolution(p, PathOptions{MaxHops: 3}, sol); err != nil {
				t.Errorf("engine %v: %v", engine, err)
			}
		}
	}
}

// adversarialDenseHost is a large clique whose per-pair simple-path
// enumeration is combinatorially huge — the worst case for a witness DFS
// that cannot be canceled mid-flight.
func adversarialDenseHost(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.SetNum("avgDelay", 10))
		}
	}
	return g
}

// TestPathEmbedCancellationLatency is the regression test for the
// uncancellable inner DFS: on a dense host where a single witness
// enumeration visits hundreds of millions of paths, flipping the Stop
// hook must return the search promptly — the old code only polled the
// clock *between* witness probes and kept burning CPU inside the
// enumeration, violating the job engine's cancellation guarantee.
func TestPathEmbedCancellationLatency(t *testing.T) {
	host := adversarialDenseHost(40)
	q := graph.NewUndirected()
	q.AddNodes(2)
	// Unsatisfiable window: every path is enumerated, none accepted.
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 1e9).SetNum("maxDelay", 2e9))
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []SearchEngine{SearchChrono, SearchFC} {
		var stop atomic.Bool
		done := make(chan *PathResult, 1)
		go func() {
			done <- PathEmbed(p, PathOptions{
				MaxHops: 6, // ~38*37*36*35*34 ≈ 6e7 simple paths per pair probe
				Engine:  engine,
				Stop:    stop.Load,
			})
		}()
		time.Sleep(50 * time.Millisecond)
		canceledAt := time.Now()
		stop.Store(true)
		select {
		case res := <-done:
			if latency := time.Since(canceledAt); latency > 2*time.Second {
				t.Errorf("engine %v: cancellation latency %v, want well under 2s", engine, latency)
			}
			if res.Exhausted || len(res.Solutions) != 0 {
				t.Errorf("engine %v: canceled run reported %v/%d solutions", engine, res.Exhausted, len(res.Solutions))
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("engine %v: canceled search never returned — inner DFS is not cancellable", engine)
		}
	}
}

// TestPathFCStatsCounters checks the new observability counters fire on a
// workload shaped to hit each layer: shared windows (memo hits), an
// unreachable far side (reach prunes) and real enumerations (probes).
func TestPathFCStatsCounters(t *testing.T) {
	// Two 4-cliques joined by nothing: cross-component pairs are pruned
	// by reachability alone.
	g := graph.NewUndirected()
	g.AddNodes(8)
	for base := 0; base < 8; base += 4 {
		for u := base; u < base+4; u++ {
			for v := u + 1; v < base+4; v++ {
				g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.SetNum("avgDelay", 10))
			}
		}
	}
	q := graph.NewUndirected()
	q.AddNodes(3)
	win := graph.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25)
	q.MustAddEdge(0, 1, win)
	q.MustAddEdge(1, 2, win)
	p, err := NewProblem(q, g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := PathEmbed(p, PathOptions{MaxHops: 2})
	if len(res.Solutions) == 0 {
		t.Fatal("expected 2-hop solutions inside each clique")
	}
	st := res.Stats
	if st.WitnessProbes == 0 || st.WitnessHits == 0 || st.PruneOps == 0 {
		t.Errorf("stats = probes %d, hits %d, pruneOps %d; want all > 0",
			st.WitnessProbes, st.WitnessHits, st.PruneOps)
	}
	for _, sol := range res.Solutions {
		if err := VerifyPathSolution(p, PathOptions{MaxHops: 2}, sol); err != nil {
			t.Error(err)
		}
	}

	// A query edge whose delay floor exceeds any reachable composition:
	// the optimistic bound rejects every pair... the floor is a lower
	// bound, which the Dijkstra bound does not cover, so use a ceiling
	// below the cheapest edge instead.
	q2 := graph.NewUndirected()
	q2.AddNodes(2)
	q2.MustAddEdge(0, 1, graph.Attrs{}.SetNum("maxDelay", 5))
	p2, err := NewProblem(q2, g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2 := PathEmbed(p2, PathOptions{MaxHops: 2})
	if len(res2.Solutions) != 0 {
		t.Fatal("sub-floor window should be infeasible")
	}
	if res2.Stats.ReachPrunes == 0 {
		t.Errorf("bound/reach prunes = %d, want > 0", res2.Stats.ReachPrunes)
	}
	if res2.Stats.WitnessProbes != 0 {
		t.Errorf("witness probes = %d, want 0 (every pair bound-pruned)", res2.Stats.WitnessProbes)
	}
}

// TestVerifyPathSolutionReportsFailingSpec pins the error-reporting fix:
// when a non-first metric spec fails, the error names that spec's
// attribute and composed value instead of Metrics[0]'s.
func TestVerifyPathSolutionReportsFailingSpec(t *testing.T) {
	host := graph.NewUndirected()
	host.AddNodes(2)
	host.MustAddEdge(0, 1, graph.Attrs{}.SetNum("avgDelay", 10).SetNum("bandwidth", 5))
	q := graph.NewUndirected()
	q.AddNodes(2)
	q.MustAddEdge(0, 1, graph.Attrs{}.
		SetNum("minDelay", 5).SetNum("maxDelay", 15). // delay window satisfied
		SetNum("minBandwidth", 50))                   // bandwidth floor violated
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := PathOptions{
		MaxHops: 1,
		Metrics: []MetricSpec{
			DefaultDelaySpec("avgDelay", "minDelay", "maxDelay"),
			{Attr: "bandwidth", Rule: Bottleneck, LoAttr: "minBandwidth", MissingFails: true},
		},
	}
	sol := PathSolution{
		Nodes: Mapping{0, 1},
		Paths: map[graph.EdgeID]graph.Path{0: {Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}}},
	}
	err = VerifyPathSolution(p, opt, sol)
	if err == nil {
		t.Fatal("bandwidth-violating witness accepted")
	}
	if !strings.Contains(err.Error(), "bandwidth") || !strings.Contains(err.Error(), "5.00") {
		t.Errorf("error %q does not name the failing spec's attribute and value", err)
	}
	if strings.Contains(err.Error(), "avgDelay") {
		t.Errorf("error %q blames the passing first spec", err)
	}
}
