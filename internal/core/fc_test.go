package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// These tests pin the tentpole property of the FC-CBJ engine: the
// forward-checking searcher with conflict-directed backjumping (fc.go)
// enumerates exactly the solution sets — and, where enumeration is
// deterministic, the solution sequences — of the chronological oracle
// (Options.Engine = SearchChrono), across representations, orderings,
// orientations, caps and cancellation.

// engines runs the same problem under both engines and hands the two
// results to check.
func withBothEngines(p *Problem, opt Options, run func(*Problem, Options) *Result) (fc, chrono *Result) {
	fcOpt, chOpt := opt, opt
	fcOpt.Engine = SearchFC
	chOpt.Engine = SearchChrono
	return run(p, fcOpt), run(p, chOpt)
}

func assertSameSequence(t *testing.T, label string, fc, chrono *Result) {
	t.Helper()
	sameSolutionSets(t, label, fc.Solutions, chrono.Solutions)
	if len(fc.Solutions) == len(chrono.Solutions) {
		for i := range fc.Solutions {
			if mappingKey(fc.Solutions[i]) != mappingKey(chrono.Solutions[i]) {
				t.Fatalf("%s: solution %d out of sequence", label, i)
			}
		}
	}
	if fc.Status != chrono.Status || fc.Exhausted != chrono.Exhausted {
		t.Fatalf("%s: outcome classification differs: fc %v/%v chrono %v/%v",
			label, fc.Status, fc.Exhausted, chrono.Status, chrono.Exhausted)
	}
}

func TestFCMatchesChronoECF(t *testing.T) {
	orders := []OrderMode{OrderAscending, OrderNatural, OrderDescending, OrderUnconnected}
	reprs := []Repr{ReprSlice, ReprBitset}
	for seed := int64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		for _, repr := range reprs {
			for _, order := range orders {
				opt := Options{Repr: repr, Order: order}
				fc, chrono := withBothEngines(p, opt, ECF)
				assertSameSequence(t,
					fmt.Sprintf("seed %d repr %v order %v", seed, repr, order), fc, chrono)
			}
		}
	}
}

func TestFCMatchesChronoMaxSolutions(t *testing.T) {
	// Capped runs must return the identical solution prefix: both engines
	// enumerate candidates ascending and the FC engine only skips
	// provably solution-free subtrees.
	for seed := int64(1); seed <= 15; seed++ {
		p := smallProblem(t, seed)
		for _, cap := range []int{1, 2, 3, 7} {
			fc, chrono := withBothEngines(p, Options{MaxSolutions: cap}, ECF)
			assertSameSequence(t, fmt.Sprintf("seed %d cap %d", seed, cap), fc, chrono)
		}
	}
}

func TestFCMatchesChronoDirected(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		host := graph.NewDirected()
		nr := 4 + rng.Intn(4)
		host.AddNodes(nr)
		for u := 0; u < nr; u++ {
			for v := 0; v < nr; v++ {
				if u != v && rng.Float64() < 0.4 {
					host.AddEdge(graph.NodeID(u), graph.NodeID(v), nil)
				}
			}
		}
		query := graph.NewDirected()
		nq := 2 + rng.Intn(3)
		query.AddNodes(nq)
		for i := 1; i < nq; i++ {
			if rng.Intn(2) == 0 {
				query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), nil)
			} else {
				query.MustAddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), nil)
			}
		}
		p, err := NewProblem(query, host, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc, chrono := withBothEngines(p, Options{}, ECF)
		assertSameSequence(t, fmt.Sprintf("seed %d directed", seed), fc, chrono)
		fcD, chronoD := withBothEngines(p, Options{}, DynamicECF)
		sameSolutionSets(t, fmt.Sprintf("seed %d directed dynamic", seed), fcD.Solutions, chronoD.Solutions)
	}
}

func TestFCMatchesChronoRWBAndDynamic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		// RWB to exhaustion: the shuffle sequences diverge (the FC engine
		// skips subtrees the oracle descends into), so only the sets must
		// coincide.
		fcR, chR := withBothEngines(p, Options{MaxSolutions: 1 << 30, Seed: seed}, RWB)
		sameSolutionSets(t, fmt.Sprintf("seed %d RWB", seed), fcR.Solutions, chR.Solutions)
		fcD, chD := withBothEngines(p, Options{}, DynamicECF)
		sameSolutionSets(t, fmt.Sprintf("seed %d DynamicECF", seed), fcD.Solutions, chD.Solutions)
	}
}

func TestFCMatchesChronoLNSAndConsolidate(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		fcL, chL := withBothEngines(p, Options{}, LNS)
		sameSolutionSets(t, fmt.Sprintf("seed %d LNS", seed), fcL.Solutions, chL.Solutions)
	}
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		host := graph.NewUndirected()
		nh := 5 + rng.Intn(3)
		for i := 0; i < nh; i++ {
			host.AddNode("", graph.Attrs{}.SetNum("capacity", float64(1+rng.Intn(3))))
		}
		for u := 0; u < nh; u++ {
			for v := u + 1; v < nh; v++ {
				if rng.Float64() < 0.6 {
					host.MustAddEdge(graph.NodeID(u), graph.NodeID(v), nil)
				}
			}
		}
		query := graph.NewUndirected()
		nq := 4 + rng.Intn(2)
		for i := 0; i < nq; i++ {
			query.AddNode("", graph.Attrs{}.SetNum("demand", float64(1+i%2)))
		}
		for i := 1; i < nq; i++ {
			query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), nil)
		}
		p, err := NewConsolidatedProblem(query, host, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		run := func(p *Problem, opt Options) *Result { return Consolidate(p, opt, ConsolidateOptions{}) }
		fc, chrono := withBothEngines(p, Options{}, run)
		assertSameSequence(t, fmt.Sprintf("seed %d consolidate", seed), fc, chrono)
	}
}

func TestWorkStealingParallelMatchesSequential(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 50}, rand.New(rand.NewSource(14)))
	q, _, err := topo.Subgraph(host, 8, 12, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.1)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := ECF(p, Options{})
	if len(seq.Solutions) == 0 {
		t.Fatal("planted query not found")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par := ParallelECF(p, Options{Workers: workers})
		sameSolutionSets(t, fmt.Sprintf("steal workers=%d", workers), par.Solutions, seq.Solutions)
		if par.Status != StatusComplete {
			t.Errorf("workers=%d status %v", workers, par.Status)
		}
	}
	// The static-shard ablation must agree too.
	static := ParallelECF(p, Options{Workers: 4, Engine: SearchChrono})
	sameSolutionSets(t, "static shards", static.Solutions, seq.Solutions)
	// Capped runs respect the global budget.
	if len(seq.Solutions) > 3 {
		capped := ParallelECF(p, Options{Workers: 4, MaxSolutions: 3})
		if len(capped.Solutions) != 3 {
			t.Errorf("parallel cap: %d solutions", len(capped.Solutions))
		}
		for _, m := range capped.Solutions {
			if err := p.Verify(m); err != nil {
				t.Error(err)
			}
		}
	}
}

// TestWorkStealingActuallySteals pins that the deque is exercised: a
// query whose first-level candidate count is far below the worker count
// forces idle workers onto published second-level subtrees.
func TestWorkStealingActuallySteals(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 40}, rand.New(rand.NewSource(16)))
	q, _, err := topo.Subgraph(host, 10, 16, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.15)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := ECF(p, Options{})
	par := ParallelECF(p, Options{Workers: 8})
	sameSolutionSets(t, "steal-heavy", par.Solutions, seq.Solutions)
	if par.Stats.Steals == 0 {
		t.Error("expected at least one steal on a skewed instance with 8 workers")
	}
}

// backjumpProblem wraps topo.BackjumpAdversary (see its doc: a
// triangle-free host whose pendant-triangle query is jointly infeasible
// but locally satisfiable everywhere) into a Problem.
func backjumpProblem(t testing.TB, nA, nM, mid int) *Problem {
	t.Helper()
	q, g, err := topo.BackjumpAdversary(nA, nM, mid)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(q, g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBackjumpingPrunesAndAgrees: on the adversarial instance the FC
// engine must (a) agree with the oracle that there is no match, (b)
// actually backjump, and (c) expand far fewer nodes.
func TestBackjumpingPrunesAndAgrees(t *testing.T) {
	p := backjumpProblem(t, 32, 96, 3)
	// OrderNatural pins the adversarial order (middle before the
	// triangle); the ascending heuristic would sort the conflict first,
	// which is exactly what a hostile instance avoids.
	opt := Options{Order: OrderNatural}
	fc, chrono := withBothEngines(p, opt, ECF)
	assertSameSequence(t, "backjump nomatch", fc, chrono)
	if len(fc.Solutions) != 0 || fc.Status != StatusComplete {
		t.Fatalf("instance unexpectedly feasible: %d solutions, %v", len(fc.Solutions), fc.Status)
	}
	if fc.Stats.Backjumps == 0 {
		t.Error("FC engine never backjumped on the adversarial instance")
	}
	if fc.Stats.Wipeouts == 0 || fc.Stats.PruneOps == 0 || fc.Stats.WipeoutDepthSum == 0 {
		t.Errorf("FC counters not populated: %+v", fc.Stats)
	}
	if fc.Stats.NodesVisited*4 > chrono.Stats.NodesVisited {
		t.Errorf("FC visited %d nodes, oracle %d — expected ≥4x pruning",
			fc.Stats.NodesVisited, chrono.Stats.NodesVisited)
	}
	if chrono.Stats.Backjumps != 0 || chrono.Stats.PruneOps != 0 {
		t.Errorf("oracle reported FC counters: %+v", chrono.Stats)
	}
}

// TestFCStopCancellation extends the cancellation suite to the FC paths:
// the engine and the work-stealing pool must halt via the Stop hook well
// before the defensive timeout, mid-search.
func TestFCStopCancellation(t *testing.T) {
	p := hardProblem(t)
	for name, run := range map[string]func(*Problem, Options) *Result{
		"ECF-fc":        ECF,
		"DynamicECF-fc": DynamicECF,
		"LNS-fc":        LNS,
	} {
		t.Run(name, func(t *testing.T) {
			var polls atomic.Int64
			opt := Options{
				Timeout: 30 * time.Second,
				Stop:    func() bool { return polls.Add(1) > 40 },
			}
			start := time.Now()
			res := run(p, opt)
			assertCanceled(t, name, res, time.Since(start), 5*time.Second)
		})
	}
	t.Run("ParallelECF-steal", func(t *testing.T) {
		var cancel atomic.Bool
		opt := Options{Timeout: 30 * time.Second, Workers: 8, Stop: cancel.Load}
		go func() {
			time.Sleep(100 * time.Millisecond)
			cancel.Store(true)
		}()
		start := time.Now()
		res := ParallelECF(p, opt)
		assertCanceled(t, "ParallelECF-steal", res, time.Since(start), 5*time.Second)
	})
}

// TestParallelFutileStaysExhausted regression-tests the futile-flag
// path: a query whose infeasibility is independent of the root (a
// triangle pinned by node constraint to a triangle-free host pool,
// disjoint from the pool the root edge maps into) makes a worker's
// conflict analysis return jump -1 and raise the futile flag. The pool
// must still report sequential ECF's definitive answer — zero
// solutions, exhausted, StatusComplete — not a truncated/inconclusive
// search (the flag used to ride the Stop hook, which the stopClock
// records as a timeout).
func TestParallelFutileStaysExhausted(t *testing.T) {
	host := graph.NewUndirected()
	const nA, nB = 10, 64
	for i := 0; i < nA; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("pool", 1))
	}
	for i := 0; i < nB; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("pool", 2))
	}
	for u := 0; u < nA; u++ {
		for v := u + 1; v < nA; v++ {
			host.MustAddEdge(graph.NodeID(u), graph.NodeID(v), nil)
		}
	}
	// Pool 2: a {1,5}-circulant — triangle-free (no a+b=c over ±{1,5}).
	for i := 0; i < nB; i++ {
		host.MustAddEdge(graph.NodeID(nA+i), graph.NodeID(nA+(i+1)%nB), nil)
		host.MustAddEdge(graph.NodeID(nA+i), graph.NodeID(nA+(i+5)%nB), nil)
	}
	q := graph.NewUndirected()
	q.AddNode("", graph.Attrs{}.SetNum("pool", 1))
	q.AddNode("", graph.Attrs{}.SetNum("pool", 1))
	for i := 0; i < 3; i++ {
		q.AddNode("", graph.Attrs{}.SetNum("pool", 2))
	}
	q.MustAddEdge(0, 1, nil) // root component: satisfiable in pool 1
	q.MustAddEdge(2, 3, nil) // triangle: impossible in triangle-free pool 2
	q.MustAddEdge(3, 4, nil)
	q.MustAddEdge(2, 4, nil)
	p, err := NewProblem(q, host, nil, expr.MustCompile("vNode.pool == rNode.pool"))
	if err != nil {
		t.Fatal(err)
	}
	seq := ECF(p, Options{Order: OrderNatural})
	if len(seq.Solutions) != 0 || !seq.Exhausted || seq.Status != StatusComplete {
		t.Fatalf("sequential baseline wrong: %d solutions, exhausted=%v status=%v",
			len(seq.Solutions), seq.Exhausted, seq.Status)
	}
	for _, workers := range []int{1, 4, 8} {
		for i := 0; i < 5; i++ { // scheduling-sensitive: repeat
			res := ParallelECF(p, Options{Workers: workers, Order: OrderNatural})
			if len(res.Solutions) != 0 || !res.Exhausted || res.Status != StatusComplete {
				t.Fatalf("workers=%d run %d: got %d solutions, exhausted=%v status=%v, want definitive no-match",
					workers, i, len(res.Solutions), res.Exhausted, res.Status)
			}
		}
	}
}
