package core

import (
	"testing"

	"netembed/internal/graph"
	"netembed/internal/topo"
)

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"ring5", topo.Ring(5), 10},           // dihedral group: 2n
		{"ring6", topo.Ring(6), 12},           // 2n
		{"star5", topo.Star(5), factorial(4)}, // leaves permute freely
		{"clique4", topo.Clique(4), factorial(4)},
		{"line4", topo.Line(4), 2}, // identity + reversal
		{"single", singleNode(), 1},
	}
	for _, c := range cases {
		autos := Automorphisms(c.g)
		if len(autos) != c.want {
			t.Errorf("%s: %d automorphisms, want %d", c.name, len(autos), c.want)
		}
		// Every automorphism must be a valid permutation preserving
		// adjacency (spot-check via the problem verifier).
		p := &Problem{Query: c.g, Host: c.g}
		for _, a := range autos {
			if err := p.Verify(a); err != nil {
				t.Errorf("%s: invalid automorphism %v: %v", c.name, a, err)
			}
		}
	}
}

func singleNode() *graph.Graph {
	g := graph.NewUndirected()
	g.AddNode("only", nil)
	return g
}

func TestAutomorphismsRespectAttributes(t *testing.T) {
	// A triangle with one distinguished node: only the swap of the two
	// identical nodes (plus identity) survives.
	g := topo.Clique(3)
	g.Node(0).Attrs = graph.Attrs{}.SetStr("role", "hub")
	autos := Automorphisms(g)
	if len(autos) != 2 {
		t.Fatalf("attributed triangle: %d automorphisms, want 2", len(autos))
	}
	for _, a := range autos {
		if a[0] != 0 {
			t.Errorf("automorphism moved the distinguished node: %v", a)
		}
	}

	// Distinguishing an edge also breaks symmetry: of ring4's 8
	// automorphisms only those mapping the marked edge onto itself
	// survive — the identity and the reflection swapping its endpoints.
	r := topo.Ring(4)
	r.Edge(0).Attrs = graph.Attrs{}.SetNum("special", 1)
	autos = Automorphisms(r)
	for _, a := range autos {
		e := r.Edge(0)
		img, ok := r.EdgeBetween(a[e.From], a[e.To])
		if !ok || !r.Edge(img).Attrs.Has("special") {
			t.Errorf("automorphism does not preserve the special edge: %v", a)
		}
	}
	if len(autos) != 2 {
		t.Errorf("edge-marked ring4: %d automorphisms, want 2", len(autos))
	}
}

func TestAutomorphismsEmptyGraph(t *testing.T) {
	autos := Automorphisms(graph.NewUndirected())
	if len(autos) != 1 || len(autos[0]) != 0 {
		t.Errorf("empty graph autos = %v", autos)
	}
}

func TestCanonicalSolutionsTriangleInK4(t *testing.T) {
	query := topo.Clique(3)
	host := topo.Clique(4)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ECF(p, Options{})
	// 4 choose 3 node sets × 3! labelings = 24 raw embeddings.
	if len(res.Solutions) != 24 {
		t.Fatalf("raw embeddings = %d, want 24", len(res.Solutions))
	}
	autos := Automorphisms(query)
	if len(autos) != 6 {
		t.Fatalf("triangle autos = %d, want 6", len(autos))
	}
	canon := CanonicalSolutions(res.Solutions, autos)
	if len(canon) != 4 {
		t.Fatalf("canonical embeddings = %d, want 4 (one per node set)", len(canon))
	}
	if got := OrbitCount(res.Solutions, autos); got != 4 {
		t.Errorf("OrbitCount = %d, want 4", got)
	}
	// Representatives must be valid embeddings and pairwise distinct as
	// node sets.
	sets := map[string]bool{}
	for _, m := range canon {
		if err := p.Verify(m); err != nil {
			t.Errorf("canonical rep invalid: %v", err)
		}
		s := m.Clone()
		SortMappings([]Mapping{}) // no-op sanity
		sortIDs(s)
		sets[mapKey(s)] = true
	}
	if len(sets) != 4 {
		t.Errorf("canonical reps cover %d node sets, want 4", len(sets))
	}
}

func sortIDs(m Mapping) {
	for i := 1; i < len(m); i++ {
		for j := i; j > 0 && m[j-1] > m[j]; j-- {
			m[j-1], m[j] = m[j], m[j-1]
		}
	}
}

func TestCanonicalSolutionsNoAutosPassThrough(t *testing.T) {
	sols := []Mapping{{1, 2}, {2, 1}}
	out := CanonicalSolutions(sols, []Mapping{{0, 1}}) // identity only
	if len(out) != 2 {
		t.Errorf("identity-only dedupe changed the set: %v", out)
	}
	out = CanonicalSolutions(sols, nil)
	if len(out) != 2 {
		t.Errorf("nil autos dedupe changed the set: %v", out)
	}
}

func TestCanonicalRepresentativeIsOrbitMinimum(t *testing.T) {
	// Ring4 into clique5: group the 5·4·3·2/... embeddings and check that
	// each representative is <= every member of its orbit.
	query := topo.Ring(4)
	host := topo.Clique(5)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ECF(p, Options{})
	autos := Automorphisms(query)
	canon := CanonicalSolutions(res.Solutions, autos)
	for _, rep := range canon {
		for _, sigma := range autos {
			composed := make(Mapping, len(rep))
			for q := range composed {
				composed[q] = rep[sigma[q]]
			}
			if lexLess(composed, rep) {
				t.Fatalf("representative %v not minimal: %v is smaller", rep, composed)
			}
		}
	}
	// Orbit sizes must sum back to the raw count.
	if len(res.Solutions)%len(canon) != 0 {
		t.Logf("note: orbits of unequal size (fine when stabilizers differ)")
	}
	if got := OrbitCount(res.Solutions, autos); got != len(canon) {
		t.Errorf("OrbitCount %d != canonical count %d", got, len(canon))
	}
}

func TestSortMappingsExported(t *testing.T) {
	ms := []Mapping{{3, 1}, {1, 5}, {1, 2}}
	SortMappings(ms)
	if !lexLess(ms[0], ms[1]) || !lexLess(ms[1], ms[2]) {
		t.Errorf("not sorted: %v", ms)
	}
}
