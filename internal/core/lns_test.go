package core

import (
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/topo"
)

// newLNS builds an initialized LNS searcher for white-box heuristic tests.
func newLNS(t *testing.T, q, h *graph.Graph) *lnsSearcher {
	t.Helper()
	p, err := NewProblem(q, h, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &lnsSearcher{
		p:       p,
		opt:     Options{},
		nq:      q.NumNodes(),
		nr:      h.NumNodes(),
		started: time.Now(),
	}
	s.init()
	return s
}

// TestLNSSeedIsMaxDegree verifies paper heuristic 1: the first vertex
// moved to Covered is the largest-degree query node.
func TestLNSSeedIsMaxDegree(t *testing.T) {
	q := topo.Star(5) // hub 0 has degree 4
	h := topo.Clique(6)
	s := newLNS(t, q, h)
	seed, isSeed := s.pickNext()
	if !isSeed {
		t.Fatal("first pick not flagged as seed")
	}
	if seed != 0 {
		t.Errorf("seed = %d, want the hub 0", seed)
	}
}

// TestLNSPickNextPrefersMostCoveredLinks verifies paper heuristic 2: the
// next vertex is the neighbor with the most links into the covered set.
func TestLNSPickNextPrefersMostCoveredLinks(t *testing.T) {
	// Query: nodes 0,1 covered; node 2 adjacent to both; node 3 adjacent
	// to only one.
	q := graph.NewUndirected()
	q.AddNodes(4)
	q.MustAddEdge(0, 1, nil)
	q.MustAddEdge(0, 2, nil)
	q.MustAddEdge(1, 2, nil)
	q.MustAddEdge(1, 3, nil)
	h := topo.Clique(6)
	s := newLNS(t, q, h)

	undo0 := s.cover(0, 0)
	undo1 := s.cover(1, 1)
	next, isSeed := s.pickNext()
	if isSeed {
		t.Fatal("pick after covering should not be a seed")
	}
	if next != 2 {
		t.Errorf("next = %d, want 2 (two links to covered vs one)", next)
	}
	undo1()
	// With only node 0 covered, nodes 1 and 2 tie on links (1 each);
	// the higher-degree node 1 (degree 3) wins over node 2 (degree 2).
	next, _ = s.pickNext()
	if next != 1 {
		t.Errorf("after undo, next = %d, want 1 (degree tiebreak)", next)
	}
	undo0()
	// Fully undone: seeding again from scratch.
	if _, isSeed := s.pickNext(); !isSeed {
		t.Error("after full undo pickNext should reseed")
	}
}

// TestLNSCoverUndoRestoresState: cover/undo is an exact inverse on the
// frontier bookkeeping.
func TestLNSCoverUndoRestoresState(t *testing.T) {
	q := topo.Ring(5)
	h := topo.Clique(7)
	s := newLNS(t, q, h)

	snapshotLinks := append([]int(nil), s.links...)
	snapshotState := append([]lnsState(nil), s.state...)

	undo2 := s.cover(2, 4)
	if s.state[2] != lnsCovered || s.assign[2] != 4 || !s.used.Has(4) {
		t.Fatal("cover did not apply")
	}
	if s.state[1] != lnsNeighbor || s.state[3] != lnsNeighbor {
		t.Fatal("neighbors not promoted")
	}
	if s.links[1] != 1 || s.links[3] != 1 {
		t.Fatalf("links = %v", s.links)
	}
	undo3 := s.cover(3, 5)
	if s.links[2] != 1 || s.links[4] != 1 {
		t.Fatalf("links after second cover = %v", s.links)
	}
	undo3()
	undo2()

	for i := range snapshotLinks {
		if s.links[i] != snapshotLinks[i] {
			t.Fatalf("links not restored: %v", s.links)
		}
		if s.state[i] != snapshotState[i] {
			t.Fatalf("state not restored: %v", s.state)
		}
	}
	if s.used.Count() != 0 || s.covered != 0 {
		t.Fatal("used/covered not restored")
	}
	for _, a := range s.assign {
		if a != -1 {
			t.Fatal("assign not restored")
		}
	}
}

// TestLNSCandidateAnchorUsesSmallestDegreeImage: candidates for a
// non-seed node enumerate the host neighbors of the covered image with
// the fewest arcs.
func TestLNSCandidateAnchorUsesSmallestDegreeImage(t *testing.T) {
	q := topo.Line(3) // 0-1-2
	// Host: node 0 has degree 1 (only to 1); node 1 has high degree.
	h := graph.NewUndirected()
	h.AddNodes(6)
	h.MustAddEdge(0, 1, nil)
	h.MustAddEdge(1, 2, nil)
	h.MustAddEdge(1, 3, nil)
	h.MustAddEdge(1, 4, nil)
	h.MustAddEdge(1, 5, nil)
	s := newLNS(t, q, h)

	// Cover query 0 -> host 0 (degree 1) and query 2 -> host 2. Query 1
	// is adjacent to both; the anchor must be host 0 (fewest arcs), so
	// the only candidate enumerated is host 1.
	s.cover(0, 0)
	s.cover(2, 2)
	var seen []graph.NodeID
	s.candidateHosts(1, false, func(r graph.NodeID) bool {
		seen = append(seen, r)
		return true
	})
	if len(seen) != 1 || seen[0] != 1 {
		t.Errorf("candidates = %v, want [1]", seen)
	}
}

// TestLNSTimeToFirstExcludesNoBuildPhase: LNS has no filter-construction
// phase, so its first solution on an easy instance arrives in
// microseconds — the Fig 13b/14 advantage.
func TestLNSTimeToFirstIsImmediate(t *testing.T) {
	host := topo.Clique(30)
	q := topo.Ring(4)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := LNS(p, Options{MaxSolutions: 1})
	if len(res.Solutions) != 1 {
		t.Fatal("no solution")
	}
	if res.Stats.TimeToFirst > 50*time.Millisecond {
		t.Errorf("LNS first took %v, expected near-immediate", res.Stats.TimeToFirst)
	}
	if res.Stats.FilterBuild != 0 {
		t.Errorf("LNS reported filter build time %v", res.Stats.FilterBuild)
	}
}
