package core

import (
	"math/rand"
	"testing"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// pathHost builds a line host 0-1-2-3 with 10ms per hop.
func pathHost() *graph.Graph {
	h := topo.Line(4)
	for i := 0; i < h.NumEdges(); i++ {
		h.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.SetNum("avgDelay", 10)
	}
	return h
}

func TestPathEmbedMapsEdgeToPath(t *testing.T) {
	host := pathHost()
	// Query: single edge demanding 15..25ms — no single 10ms hop
	// qualifies, but any 2-hop path (20ms) does.
	q := topo.Line(2)
	q.Edge(0).Attrs = graph.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Plain one-to-one embedding must fail: every host edge is 10ms.
	avgWin := mustEdgeWindowProblem(t, q, host)
	if res := ECF(avgWin, Options{}); len(res.Solutions) != 0 {
		t.Fatalf("single-edge embedding unexpectedly feasible: %v", res.Solutions)
	}

	res := PathEmbed(p, PathOptions{MaxHops: 2})
	if len(res.Solutions) == 0 {
		t.Fatal("path embedding found nothing")
	}
	if res.Status != StatusComplete {
		t.Errorf("status = %v", res.Status)
	}
	for _, sol := range res.Solutions {
		if err := VerifyPathSolution(p, PathOptions{MaxHops: 2}, sol); err != nil {
			t.Errorf("invalid path solution: %v", err)
		}
		path := sol.Paths[0]
		if len(path.Edges) != 2 {
			t.Errorf("witness path hops = %d, want 2", len(path.Edges))
		}
	}
}

func mustEdgeWindowProblem(t *testing.T, q, host *graph.Graph) *Problem {
	t.Helper()
	p, err := NewProblem(q, host, avgWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPathEmbedHopLimit(t *testing.T) {
	host := pathHost()
	q := topo.Line(2)
	// 25..35ms needs a 3-hop path; MaxHops 2 must fail, 3 must succeed.
	q.Edge(0).Attrs = graph.Attrs{}.SetNum("minDelay", 25).SetNum("maxDelay", 35)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := PathEmbed(p, PathOptions{MaxHops: 2}); len(res.Solutions) != 0 {
		t.Error("2-hop limit should make the query infeasible")
	}
	res := PathEmbed(p, PathOptions{MaxHops: 3})
	if len(res.Solutions) == 0 {
		t.Fatal("3-hop path embedding found nothing")
	}
	for _, sol := range res.Solutions {
		if err := VerifyPathSolution(p, PathOptions{MaxHops: 3}, sol); err != nil {
			t.Error(err)
		}
	}
}

func TestPathEmbedWindowlessEdgeAcceptsAnyPath(t *testing.T) {
	host := pathHost()
	q := topo.Line(2) // no window attributes at all
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := PathEmbed(p, PathOptions{MaxHops: 1})
	// With MaxHops=1 this degenerates to ordinary unconstrained edge
	// embedding: 3 host edges × 2 orientations.
	if len(res.Solutions) != 6 {
		t.Errorf("solutions = %d, want 6", len(res.Solutions))
	}
}

func TestPathEmbedRespectsNodeConstraintAndInjectivity(t *testing.T) {
	host := pathHost()
	host.Node(0).Attrs = graph.Attrs{}.SetStr("osType", "linux")
	q := topo.Line(2)
	q.Node(0).Attrs = graph.Attrs{}.SetStr("osType", "linux")
	nodeC := expr.MustCompile("isBoundTo(vNode.osType, rNode.osType)")
	p, err := NewProblem(q, host, nil, nodeC)
	if err != nil {
		t.Fatal(err)
	}
	res := PathEmbed(p, PathOptions{MaxHops: 2})
	for _, sol := range res.Solutions {
		if sol.Nodes[0] != 0 {
			t.Errorf("node constraint violated: %v", sol.Nodes)
		}
		if sol.Nodes[0] == sol.Nodes[1] {
			t.Errorf("injectivity violated: %v", sol.Nodes)
		}
	}
	if len(res.Solutions) == 0 {
		t.Error("constrained path embedding found nothing")
	}
}

func TestPathEmbedTimeoutAndCap(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(1)))
	q := topo.Ring(4)
	topo.SetDelayWindow(q, 1, 10000)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	capped := PathEmbed(p, PathOptions{MaxHops: 2, MaxSolutions: 5})
	if len(capped.Solutions) != 5 {
		t.Errorf("cap: %d solutions", len(capped.Solutions))
	}
	if capped.Status != StatusPartial {
		t.Errorf("capped status = %v", capped.Status)
	}
	start := time.Now()
	PathEmbed(p, PathOptions{MaxHops: 3, Timeout: 30 * time.Millisecond})
	if time.Since(start) > 5*time.Second {
		t.Error("timeout not honored")
	}
}

func TestVerifyPathSolutionRejectsBadWitness(t *testing.T) {
	host := pathHost()
	q := topo.Line(2)
	q.Edge(0).Attrs = graph.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := PathEmbed(p, PathOptions{MaxHops: 2})
	if len(res.Solutions) == 0 {
		t.Fatal("need a solution to corrupt")
	}
	sol := res.Solutions[0]

	// Missing path.
	broken := PathSolution{Nodes: sol.Nodes.Clone(), Paths: map[graph.EdgeID]graph.Path{}}
	if err := VerifyPathSolution(p, PathOptions{MaxHops: 2}, broken); err == nil {
		t.Error("missing witness accepted")
	}
	// Wrong endpoints.
	bad := sol.Paths[0]
	badPath := graph.Path{Nodes: append([]graph.NodeID(nil), bad.Nodes...), Edges: append([]graph.EdgeID(nil), bad.Edges...)}
	badPath.Nodes[0] = badPath.Nodes[0] + 1%4
	broken.Paths[0] = badPath
	if err := VerifyPathSolution(p, PathOptions{MaxHops: 2}, broken); err == nil {
		t.Error("bad endpoints accepted")
	}
	// Hop limit.
	if err := VerifyPathSolution(p, PathOptions{MaxHops: 1}, sol); err == nil {
		t.Error("over-length witness accepted")
	}
	// Non-injective node mapping.
	dup := PathSolution{Nodes: Mapping{1, 1}, Paths: sol.Paths}
	if err := VerifyPathSolution(p, PathOptions{MaxHops: 2}, dup); err == nil {
		t.Error("non-injective mapping accepted")
	}
}
