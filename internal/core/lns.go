package core

import (
	"time"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// LNS is Lazy Neighborhood Search (§V-C). Instead of precomputing filter
// matrices, it maintains three sets of query nodes — Covered (already
// matched), Neighbors (adjacent to a covered node) and External — and
// grows a valid partial match one neighbor at a time, evaluating
// constraints on demand only for the edges that connect the chosen
// neighbor to the covered set. It keeps no filter tables, trading that
// space for repeated constraint evaluations.
//
// Heuristics (as in the paper): the seed vertex is the largest-degree
// query node, and each step expands the neighbor with the most links into
// the covered set, maximizing the conjunction of constraints that prunes
// candidates.
//
// With the default SearchFC engine the cover loop forward-checks: every
// uncovered query node carries a live domain bitset (admissible hosts ∩
// host-adjacency of all covered neighbors ∩ unused), pruned via the
// shared trail when a node is covered and restored on backtrack, with an
// early wipeout check that rejects a cover before descending. The
// domains add O(|Q|·|R|/64) words of working memory but change neither
// the solution set nor the lazy constraint evaluation. Candidates are
// materialized in ascending host-ID order, whereas the chronological
// path visits the anchor's arc-insertion order — full enumerations are
// identical, but a MaxSolutions-capped run may surface a different
// (equally valid) member of the set. Options.Engine = SearchChrono
// keeps the anchor-neighbor candidate generation as the oracle.
func LNS(p *Problem, opt Options) *Result {
	start := time.Now()
	s := &lnsSearcher{
		p:       p,
		opt:     opt,
		nq:      p.Query.NumNodes(),
		nr:      p.Host.NumNodes(),
		started: start,
	}
	s.init()
	s.search()
	res := &Result{
		Solutions: s.solutions,
		Exhausted: !s.timedOut && !s.stopped,
		Stats:     s.stats,
	}
	res.Status = classify(res.Exhausted, s.nSol)
	res.Stats.Elapsed = time.Since(start)
	return res
}

// lnsState is the per-query-node frontier state.
type lnsState uint8

const (
	lnsExternal lnsState = iota
	lnsNeighbor
	lnsCovered
)

type lnsSearcher struct {
	p   *Problem
	opt Options
	nq  int
	nr  int

	state   []lnsState
	links   []int // links[q] = edges from q into the covered set
	assign  Mapping
	used    *sets.Bitset
	covered int

	nodePass []*sets.Bitset // admissible hosts per query node
	avail    *sets.Bitset   // scratch: candidate accumulator / dedupe marks
	scratch  [][]int32      // per-depth candidate buffers (indexed by covered)

	// Forward-checking state (SearchFC engine only).
	fc  bool
	ds  *domains // live domains per uncovered query node
	adj *hostAdj // lazy host adjacency rows

	stopClock
	stopped bool

	started   time.Time
	solutions []Mapping
	nSol      int
	stats     Stats
}

func (s *lnsSearcher) init() {
	s.state = make([]lnsState, s.nq)
	s.links = make([]int, s.nq)
	s.assign = make(Mapping, s.nq)
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.used = sets.NewBitset(s.nr)
	s.avail = sets.NewBitset(s.nr)
	s.scratch = make([][]int32, s.nq)
	s.arm(s.started, s.opt.Timeout, s.opt.Stop)
	// Node admissibility bitmaps: the only precomputation LNS performs.
	s.nodePass = make([]*sets.Bitset, s.nq)
	useDegree := !s.opt.NoDegreeFilter
	for q := 0; q < s.nq; q++ {
		qid := graph.NodeID(q)
		b := sets.NewBitset(s.nr)
		degQ := s.p.Query.Degree(qid)
		outQ := s.p.Query.OutDegree(qid)
		for r := 0; r < s.nr; r++ {
			rid := graph.NodeID(r)
			if useDegree && (s.p.Host.Degree(rid) < degQ || s.p.Host.OutDegree(rid) < outQ) {
				continue
			}
			if !s.p.nodeOK(qid, rid) {
				continue
			}
			b.Set(rid)
		}
		s.nodePass[q] = b
	}
	s.fc = s.opt.Engine != SearchChrono
	if s.fc {
		s.ds = newDomains(s.nr, s.nq)
		for q := 0; q < s.nq; q++ {
			s.ds.dom[q].CopyFrom(s.nodePass[q])
			s.ds.count[q] = int32(s.nodePass[q].Count())
		}
		s.adj = newHostAdj(s.p.Host, false)
	}
}

// fcPrune propagates covering q at r into the uncovered domains:
// injectivity clears r everywhere, and every uncovered query neighbor of
// q intersects with r's host adjacency. It reports false on the first
// wipeout; the caller undoes via its trail mark.
func (s *lnsSearcher) fcPrune(q graph.NodeID, r graph.NodeID) bool {
	for e := 0; e < s.nq; e++ {
		eid := graph.NodeID(e)
		if eid == q || s.state[e] == lnsCovered {
			continue
		}
		if s.ds.clear(eid, r) == 0 {
			s.wipeout()
			return false
		}
	}
	row := s.adj.row(r)
	ok := true
	s.queryNeighbors(q, func(nbr graph.NodeID) {
		if !ok || nbr == q || s.state[nbr] == lnsCovered {
			return
		}
		s.stats.PruneOps++
		if s.ds.intersect(nbr, row) == 0 {
			ok = false
		}
	})
	if !ok {
		s.wipeout()
	}
	return ok
}

func (s *lnsSearcher) wipeout() {
	s.stats.Wipeouts++
	s.stats.WipeoutDepthSum += int64(s.covered)
}

// queryNeighbors visits every query node adjacent to q (both directions
// when directed).
func (s *lnsSearcher) queryNeighbors(q graph.NodeID, visit func(nbr graph.NodeID)) {
	for _, a := range s.p.Query.Arcs(q) {
		visit(a.To)
	}
	if s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			visit(a.To)
		}
	}
}

// cover moves q into the covered set mapped to r and updates the frontier;
// it returns an undo closure restoring the previous states.
func (s *lnsSearcher) cover(q graph.NodeID, r graph.NodeID) func() {
	prevState := s.state[q]
	s.state[q] = lnsCovered
	s.assign[q] = r
	s.used.Set(r)
	s.covered++
	var promoted []graph.NodeID
	s.queryNeighbors(q, func(nbr graph.NodeID) {
		s.links[nbr]++
		if s.state[nbr] == lnsExternal {
			s.state[nbr] = lnsNeighbor
			promoted = append(promoted, nbr)
		}
	})
	return func() {
		s.queryNeighbors(q, func(nbr graph.NodeID) {
			s.links[nbr]--
		})
		for _, nbr := range promoted {
			s.state[nbr] = lnsExternal
		}
		s.state[q] = prevState
		s.assign[q] = -1
		s.used.Clear(r)
		s.covered--
	}
}

// pickNext selects the next query node to match: the neighbor with the
// most links into the covered set (paper heuristic 2), falling back to the
// highest-degree external node when the frontier is empty (fresh seed, or
// a new connected component of a disconnected query).
func (s *lnsSearcher) pickNext() (graph.NodeID, bool) {
	best := graph.NodeID(-1)
	bestLinks := -1
	for q := 0; q < s.nq; q++ {
		if s.state[q] != lnsNeighbor {
			continue
		}
		qid := graph.NodeID(q)
		if s.links[q] > bestLinks ||
			(s.links[q] == bestLinks && s.p.Query.Degree(qid) > s.p.Query.Degree(best)) {
			best, bestLinks = qid, s.links[q]
		}
	}
	if best >= 0 {
		return best, false
	}
	// Frontier empty: seed (paper heuristic 1: largest degree first).
	bestDeg := -1
	for q := 0; q < s.nq; q++ {
		if s.state[q] != lnsExternal {
			continue
		}
		qid := graph.NodeID(q)
		if d := s.p.Query.Degree(qid); d > bestDeg {
			best, bestDeg = qid, d
		}
	}
	return best, true
}

// connOK verifies every edge between query node q (about to be placed at
// host node r) and its covered neighbors: host adjacency in the correct
// orientation plus the edge constraint (paper step 7).
func (s *lnsSearcher) connOK(q graph.NodeID, r graph.NodeID) bool {
	ok := true
	check := func(qe *graph.Edge, rs, rt graph.NodeID) {
		if !ok {
			return
		}
		reID, exists := s.p.Host.EdgeBetween(rs, rt)
		if !exists {
			ok = false
			return
		}
		s.stats.ConstraintChk++
		if !s.p.edgeOK(qe, s.p.Host.Edge(reID), rs, rt) {
			ok = false
		}
	}
	for _, a := range s.p.Query.Arcs(q) {
		if s.state[a.To] == lnsCovered {
			qe := s.p.Query.Edge(a.Edge)
			if qe.From == q {
				check(qe, r, s.assign[a.To])
			} else {
				check(qe, s.assign[a.To], r)
			}
			if !ok {
				return false
			}
		}
	}
	if s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			if s.state[a.To] == lnsCovered {
				qe := s.p.Query.Edge(a.Edge)
				check(qe, s.assign[a.To], r)
				if !ok {
					return false
				}
			}
		}
	}
	return ok
}

// candidateHosts materializes the plausible host nodes for q into the
// current depth's scratch buffer: when q has covered neighbors, the host
// neighbors of the covered image with the smallest degree (every valid
// image must be adjacent to all covered images); otherwise every
// admissible host node. Candidates are collected with bitset operations
// before any is visited, so the shared accumulator is free for the
// recursive calls visit makes.
func (s *lnsSearcher) candidateHosts(q graph.NodeID, isSeed bool, visit func(r graph.NodeID) bool) {
	buf := s.scratch[s.covered][:0]
	if s.fc {
		// The live domain already folds together admissibility, the host
		// adjacency of every covered neighbor (not just the smallest-degree
		// anchor) and the in-use marks; materialize it ascending.
		buf = s.ds.dom[q].AppendTo(buf)
		s.scratch[s.covered] = buf
		for _, r := range buf {
			if !visit(r) {
				return
			}
		}
		return
	}
	if isSeed {
		// Admissible ∧ unused, word-wise, materialized ascending — the
		// same order the per-host scan produced.
		s.avail.CopyFrom(s.nodePass[q])
		if s.avail.AndNotWith(s.used) {
			buf = s.avail.AppendTo(buf)
		}
	} else {
		// Anchor on the covered neighbor whose image has fewest host arcs.
		anchor := graph.NodeID(-1)
		bestDeg := int(^uint(0) >> 1)
		consider := func(nbr graph.NodeID) {
			if s.state[nbr] != lnsCovered {
				return
			}
			img := s.assign[nbr]
			d := len(s.p.Host.Arcs(img))
			if s.p.Host.Directed() {
				d += len(s.p.Host.InArcs(img))
			}
			if d < bestDeg {
				anchor, bestDeg = img, d
			}
		}
		s.queryNeighbors(q, consider)
		// avail doubles as the dedupe marks; arc order is preserved.
		s.avail.Reset()
		emit := func(r graph.NodeID) {
			if s.avail.Has(r) || s.used.Has(r) || !s.nodePass[q].Has(r) {
				return
			}
			s.avail.Set(r)
			buf = append(buf, r)
		}
		for _, a := range s.p.Host.Arcs(anchor) {
			emit(a.To)
		}
		if s.p.Host.Directed() {
			for _, a := range s.p.Host.InArcs(anchor) {
				emit(a.To)
			}
		}
	}
	s.scratch[s.covered] = buf
	for _, r := range buf {
		if !visit(r) {
			return
		}
	}
}

func (s *lnsSearcher) search() {
	if s.timedOut || s.stopped {
		return
	}
	if s.covered == s.nq {
		s.record()
		return
	}
	q, isSeed := s.pickNext()
	found := false
	s.candidateHosts(q, isSeed, func(r graph.NodeID) bool {
		if s.checkDeadline() || s.stopped {
			return false
		}
		s.stats.NodesVisited++
		if !s.connOK(q, r) {
			return true
		}
		found = true
		if s.fc {
			mark, amark := s.ds.mark()
			if !s.fcPrune(q, r) {
				// Some uncovered node lost its last host: reject before
				// descending.
				s.ds.undoTo(mark, amark)
				return true
			}
			undo := s.cover(q, r)
			s.search()
			undo()
			s.ds.undoTo(mark, amark)
			return !s.timedOut && !s.stopped
		}
		undo := s.cover(q, r)
		s.search()
		undo()
		return !s.timedOut && !s.stopped
	})
	if !found {
		s.stats.Backtracks++
	}
}

func (s *lnsSearcher) record() {
	if s.nSol == 0 {
		s.stats.TimeToFirst = time.Since(s.started)
	}
	s.nSol++
	if s.opt.OnSolution != nil {
		if !s.opt.OnSolution(s.assign) {
			s.stopped = true
		}
	} else {
		s.solutions = append(s.solutions, s.assign.Clone())
	}
	if s.opt.MaxSolutions > 0 && s.nSol >= s.opt.MaxSolutions {
		s.stopped = true
	}
}
