package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/sets"
	"netembed/internal/topo"
)

// windowProg accepts host edges whose d attribute falls inside the query
// edge's [lo, hi] window.
var windowProg = expr.MustCompile("rEdge.d >= vEdge.lo && rEdge.d <= vEdge.hi")

func TestFilterRowsAreSortedSets(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		f := BuildFilters(p, &Options{Repr: ReprSlice})
		if f.Dense() {
			t.Fatal("ReprSlice produced dense filters")
		}
		for _, table := range f.tables {
			for r, row := range table {
				if !sets.IsSet(row) {
					t.Fatalf("seed %d: row %d not a sorted set: %v", seed, r, row)
				}
			}
		}
		for q, base := range f.base {
			if !sets.IsSet(base) {
				t.Fatalf("seed %d: base[%d] not a sorted set: %v", seed, q, base)
			}
		}
	}
}

// TestDenseFiltersMatchSparse: both representations must hold exactly the
// same filter contents — every table row and every base set.
func TestDenseFiltersMatchSparse(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		p := smallProblem(t, seed)
		sparse := BuildFilters(p, &Options{Repr: ReprSlice})
		dense := BuildFilters(p, &Options{Repr: ReprBitset})
		if !dense.Dense() {
			t.Fatal("ReprBitset produced sparse filters")
		}
		if len(sparse.tables) != len(dense.tablesB) {
			t.Fatalf("seed %d: table counts differ", seed)
		}
		for ti := range sparse.tables {
			for r := range sparse.tables[ti] {
				var got sets.Set
				if row := dense.tablesB[ti][r]; row != nil {
					got = row.AppendTo(nil)
				}
				if !sets.Equal(got, sparse.tables[ti][r]) {
					t.Fatalf("seed %d: table %d row %d differs: %v vs %v",
						seed, ti, r, got, sparse.tables[ti][r])
				}
			}
		}
		for q := 0; q < p.Query.NumNodes(); q++ {
			qid := graph.NodeID(q)
			if !sets.Equal(sparse.Base(qid), dense.Base(qid)) {
				t.Fatalf("seed %d: base[%d] differs: %v vs %v",
					seed, q, dense.Base(qid), sparse.Base(qid))
			}
			if !sets.Equal(dense.baseB[q].AppendTo(nil), dense.Base(qid)) {
				t.Fatalf("seed %d: baseB[%d] disagrees with base", seed, q)
			}
		}
		if sparse.Stats().EdgePairsEval != dense.Stats().EdgePairsEval ||
			sparse.Stats().FilterEntries != dense.Stats().FilterEntries {
			t.Fatalf("seed %d: stats differ across representations", seed)
		}
	}
}

// TestFilterCompleteness: every embedding found by the naive reference
// must be consistent with the filters — each node's image in its base
// set, and each edge's image in the corresponding filter row. This is the
// "prunes only infeasible regions" completeness claim of §V-A.
func TestFilterCompleteness(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		p := smallProblem(t, seed)
		f := BuildFilters(p, &Options{})
		for _, m := range naiveEmbeddings(p) {
			for q, r := range m {
				if !sets.Contains(f.Base(graph.NodeID(q)), r) {
					t.Fatalf("seed %d: feasible image %d of node %d missing from base set %v",
						seed, r, q, f.Base(graph.NodeID(q)))
				}
			}
			for i := 0; i < p.Query.NumEdges(); i++ {
				qe := p.Query.Edge(graph.EdgeID(i))
				rows := f.CandidatesGiven(qe.From, qe.To, m[qe.From])
				if len(rows) == 0 {
					t.Fatalf("seed %d: no filter table for query edge %d", seed, i)
				}
				for _, row := range rows {
					if !sets.Contains(row, m[qe.To]) {
						t.Fatalf("seed %d: feasible edge image missing from filter row", seed)
					}
				}
			}
		}
	}
}

func TestLooseRootIsSupersetOfTight(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		tight := BuildFilters(p, &Options{})
		loose := BuildFilters(p, &Options{LooseRoot: true})
		for q := 0; q < p.Query.NumNodes(); q++ {
			tb, lb := tight.Base(graph.NodeID(q)), loose.Base(graph.NodeID(q))
			for _, r := range tb {
				if !sets.Contains(lb, r) {
					t.Fatalf("seed %d: tight base of %d has %d missing from loose base", seed, q, r)
				}
			}
		}
	}
}

func TestDegreeFilterPreservesPlantedSolutions(t *testing.T) {
	// With and without the degree filter, solution sets coincide (the
	// filter only removes provably impossible candidates).
	for seed := int64(30); seed <= 40; seed++ {
		p := smallProblem(t, seed)
		with := ECF(p, Options{})
		without := ECF(p, Options{NoDegreeFilter: true})
		sameSolutionSets(t, "degree filter", with.Solutions, without.Solutions)
		// The filtered base sets are never larger.
		fw := BuildFilters(p, &Options{})
		fo := BuildFilters(p, &Options{NoDegreeFilter: true})
		for q := 0; q < p.Query.NumNodes(); q++ {
			if len(fw.Base(graph.NodeID(q))) > len(fo.Base(graph.NodeID(q))) {
				t.Fatalf("seed %d: degree filter grew a base set", seed)
			}
		}
	}
}

func TestSearchOrderModes(t *testing.T) {
	p := smallProblem(t, 5)
	f := BuildFilters(p, &Options{})

	// The literal (unconnected) Lemma-1 sort is monotone in base size.
	unc := searchOrder(f, OrderUnconnected)
	for i := 1; i < len(unc); i++ {
		if len(f.Base(unc[i-1])) > len(f.Base(unc[i])) {
			t.Errorf("unconnected ascending order violated at %d: %d > %d",
				i, len(f.Base(unc[i-1])), len(f.Base(unc[i])))
		}
	}
	desc := searchOrder(f, OrderDescending)
	for i := 1; i < len(desc); i++ {
		if len(f.Base(desc[i-1])) < len(f.Base(desc[i])) {
			t.Errorf("descending order violated at %d", i)
		}
	}
	nat := searchOrder(f, OrderNatural)
	for i, q := range nat {
		if q != graph.NodeID(i) {
			t.Errorf("natural order not identity: %v", nat)
		}
	}
	asc := searchOrder(f, OrderAscending)
	// All orders are permutations.
	for _, order := range [][]graph.NodeID{asc, unc, desc, nat} {
		seen := map[graph.NodeID]bool{}
		for _, q := range order {
			if seen[q] {
				t.Fatalf("order has duplicates: %v", order)
			}
			seen[q] = true
		}
		if len(seen) != p.Query.NumNodes() {
			t.Fatalf("order incomplete: %v", order)
		}
	}
}

// TestConnectedOrderKeepsPrefixConnected: for connected queries, every
// node after the seed must touch the prefix — the property whose absence
// makes the pure Lemma-1 sort blow up on large queries.
func TestConnectedOrderKeepsPrefixConnected(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		p := smallProblem(t, seed)
		if !p.Query.IsConnected() {
			continue
		}
		f := BuildFilters(p, &Options{})
		order := searchOrder(f, OrderAscending)
		placed := map[graph.NodeID]bool{order[0]: true}
		for _, q := range order[1:] {
			touches := false
			for _, a := range p.Query.Arcs(q) {
				if placed[a.To] {
					touches = true
					break
				}
			}
			if !touches {
				t.Fatalf("seed %d: node %d placed with no edge into prefix %v",
					seed, q, order)
			}
			placed[q] = true
		}
		// The seed is a globally most-constrained node.
		for i := 0; i < p.Query.NumNodes(); i++ {
			if len(f.Base(graph.NodeID(i))) < len(f.Base(order[0])) {
				t.Fatalf("seed %d: order seed %d is not minimal", seed, order[0])
			}
		}
	}
}

func TestPreArcsCoverEveryEdgeExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		f := BuildFilters(p, &Options{})
		order := searchOrder(f, OrderAscending)
		pre := buildPreArcs(p, f, order)
		covered := map[int32]bool{}
		for _, pas := range pre {
			for _, pa := range pas {
				if covered[pa.table] {
					t.Fatalf("seed %d: filter table %d used at two depths", seed, pa.table)
				}
				covered[pa.table] = true
			}
		}
		// Exactly one direction of each query edge's two tables fires.
		if got, want := len(covered), p.Query.NumEdges(); got != want {
			t.Fatalf("seed %d: %d tables covered, want %d (one per edge)", seed, got, want)
		}
	}
}

func TestFilterStatsCounters(t *testing.T) {
	p := smallProblem(t, 2)
	f := BuildFilters(p, &Options{})
	st := f.Stats()
	if p.Query.NumEdges() > 0 && st.EdgePairsEval == 0 {
		t.Error("EdgePairsEval = 0")
	}
	if st.FilterBuild <= 0 {
		t.Error("FilterBuild not recorded")
	}
	// Entries are paired (forward + backward insert per match).
	if st.FilterEntries%2 != 0 {
		t.Errorf("FilterEntries = %d, want even", st.FilterEntries)
	}
}

// TestQuickECFMatchesNaive drives random instances through testing/quick:
// for any seed, ECF and the unpruned reference enumerate identical
// solution sets.
func TestQuickECFMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		host := graph.NewUndirected()
		nr := 4 + r.Intn(4)
		for i := 0; i < nr; i++ {
			host.AddNode("", graph.Attrs{}.SetNum("cap", float64(r.Intn(3))))
		}
		for u := 0; u < nr; u++ {
			for v := u + 1; v < nr; v++ {
				if r.Float64() < 0.55 {
					host.MustAddEdge(graph.NodeID(u), graph.NodeID(v),
						graph.Attrs{}.SetNum("d", 1+r.Float64()*99))
				}
			}
		}
		query := graph.NewUndirected()
		nq := 2 + r.Intn(3)
		query.AddNodes(nq)
		for i := 1; i < nq; i++ {
			query.MustAddEdge(graph.NodeID(r.Intn(i)), graph.NodeID(i),
				graph.Attrs{}.SetNum("lo", r.Float64()*50).SetNum("hi", 50+r.Float64()*50))
		}
		p, err := NewProblem(query, host, windowProg, nil)
		if err != nil {
			return false
		}
		want := naiveEmbeddings(p)
		got := ECF(p, Options{})
		return len(solutionSet(got.Solutions)) == len(solutionSet(want)) &&
			len(got.Solutions) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestParallelFilterBuildMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		for _, repr := range []Repr{ReprSlice, ReprBitset} {
			serial := BuildFilters(p, &Options{Repr: repr})
			parallel := BuildFilters(p, &Options{Workers: 4, Repr: repr})
			nt := len(serial.tables) + len(serial.tablesB)
			if nt != len(parallel.tables)+len(parallel.tablesB) {
				t.Fatalf("seed %d repr %d: table counts differ", seed, repr)
			}
			for ti := 0; ti < nt; ti++ {
				for r := 0; r < p.Host.NumNodes(); r++ {
					if !sets.Equal(rowAsSlice(serial, int32(ti), graph.NodeID(r)),
						rowAsSlice(parallel, int32(ti), graph.NodeID(r))) {
						t.Fatalf("seed %d repr %d: table %d row %d differs",
							seed, repr, ti, r)
					}
				}
			}
			for q := 0; q < p.Query.NumNodes(); q++ {
				if !sets.Equal(serial.Base(graph.NodeID(q)), parallel.Base(graph.NodeID(q))) {
					t.Fatalf("seed %d repr %d: base[%d] differs", seed, repr, q)
				}
			}
			if serial.Stats().EdgePairsEval != parallel.Stats().EdgePairsEval ||
				serial.Stats().FilterEntries != parallel.Stats().FilterEntries {
				t.Fatalf("seed %d repr %d: stats differ: %+v vs %+v",
					seed, repr, serial.Stats(), parallel.Stats())
			}
		}
	}
}

// rowAsSlice materializes one filter row as a sorted slice regardless of
// the representation the filters carry.
func rowAsSlice(f *Filters, t int32, r graph.NodeID) sets.Set {
	if f.Dense() {
		if row := f.tablesB[t][r]; row != nil {
			return row.AppendTo(nil)
		}
		return nil
	}
	return f.tables[t][r]
}

func TestParallelFilterBuildSolutionsAgree(t *testing.T) {
	for seed := int64(50); seed <= 56; seed++ {
		p := smallProblem(t, seed)
		serial := ECF(p, Options{})
		parallel := ECF(p, Options{Workers: 8})
		sameSolutionSets(t, "parallel filter build", parallel.Solutions, serial.Solutions)
	}
}

func TestCandidatesGivenUnrelatedNodes(t *testing.T) {
	p := smallProblem(t, 3)
	f := BuildFilters(p, &Options{})
	// Two query nodes with no edge between them have no filter tables.
	q := p.Query
	for a := graph.NodeID(0); int(a) < q.NumNodes(); a++ {
		for b := graph.NodeID(0); int(b) < q.NumNodes(); b++ {
			if a == b || q.HasEdge(a, b) {
				continue
			}
			if rows := f.CandidatesGiven(a, b, 0); rows != nil {
				t.Fatalf("non-adjacent pair (%d,%d) has filter rows", a, b)
			}
		}
	}
}

func TestIsolatedQueryNodeBaseUsesNodePass(t *testing.T) {
	host := topo.Clique(4)
	for i := 0; i < host.NumNodes(); i++ {
		host.Node(graph.NodeID(i)).Attrs = graph.Attrs{}.SetNum("cpu", float64(i))
	}
	query := graph.NewUndirected()
	query.AddNode("lonely", graph.Attrs{}.SetNum("cpu", 2))
	nodeC := expr.MustCompile("vNode.cpu <= rNode.cpu")
	p, err := NewProblem(query, host, nil, nodeC)
	if err != nil {
		t.Fatal(err)
	}
	f := BuildFilters(p, &Options{})
	base := f.Base(0)
	// cpu >= 2: hosts {2,3}.
	if !sets.Equal(base, sets.Set{2, 3}) {
		t.Errorf("isolated base = %v, want [2 3]", base)
	}
}
