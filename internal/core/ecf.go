package core

import (
	"math/rand"
	"sort"
	"time"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// ECF is Exhaustive Search with Constraint Filtering (§V-A): it builds the
// filter matrices, orders the query nodes by ascending candidate count
// (Lemma 1), and runs a depth-first search of the permutations tree where
// each node's candidates come from intersecting the filter rows of its
// already-placed neighbors (formula (2)). ECF enumerates every feasible
// embedding unless Options caps or times the run.
func ECF(p *Problem, opt Options) *Result {
	start := time.Now()
	f := BuildFilters(p, &opt)
	res := searchWithFilters(p, f, opt, nil, start)
	res.Stats.Elapsed = time.Since(start)
	f.release()
	return res
}

// ECFWithFilters runs the ECF search against prebuilt filter matrices,
// letting callers amortize one BuildFilters across repeated searches —
// the same query re-embedded as options vary, or benchmarks isolating
// the search hot path from filter construction. The filter-shaping knobs
// in opt (LooseRoot, NoDegreeFilter, Repr, Workers) have no effect here;
// they were fixed when f was built. The returned stats inherit f's
// filter-build counters.
func ECFWithFilters(f *Filters, opt Options) *Result {
	start := time.Now()
	res := searchWithFilters(f.p, f, opt, nil, start)
	res.Stats.Elapsed = time.Since(start)
	return res
}

// RWBWithFilters is ECFWithFilters with RWB's randomized candidate order
// and first-solution default.
func RWBWithFilters(f *Filters, opt Options) *Result {
	if opt.MaxSolutions == 0 {
		opt.MaxSolutions = 1
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := searchWithFilters(f.p, f, opt, rng, start)
	res.Stats.Elapsed = time.Since(start)
	return res
}

// RWB is Random Walk search with Backtracking (§V-B): the same filters and
// pruning as ECF, but candidates at every level are tried in random order
// and the search stops at the first embedding (unless Options.MaxSolutions
// asks for more). With no feasible embedding it backtracks exhaustively to
// a definitive no-match answer, exactly like ECF.
func RWB(p *Problem, opt Options) *Result {
	if opt.MaxSolutions == 0 {
		opt.MaxSolutions = 1 // the paper's RWB returns the first solution
	}
	start := time.Now()
	f := BuildFilters(p, &opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	res := searchWithFilters(p, f, opt, rng, start)
	res.Stats.Elapsed = time.Since(start)
	f.release()
	return res
}

// preArc names one filter table constraining the node at some depth, fed
// by an earlier-placed neighbor.
type preArc struct {
	tail  graph.NodeID // the already-placed query neighbor
	table int32
}

// searcher carries the state of one filter-driven DFS.
type searcher struct {
	p   *Problem
	f   *Filters
	opt Options
	rng *rand.Rand // nil for ECF, set for RWB

	order   []graph.NodeID // order[d] = query node expanded at depth d
	preArcs [][]preArc     // preArcs[d] = filters from earlier neighbors

	assign Mapping
	used   *sets.Bitset

	scratch   [][]int32 // per-depth candidate buffers
	interBuf  sets.Set
	interBuf2 sets.Set
	rows      []sets.Set
	interBits *sets.Bitset // dense-mode intersection accumulator

	stopClock
	stopped bool

	started   time.Time
	solutions []Mapping
	nSol      int
	stats     Stats
}

// searchWithFilters runs the shared ECF/RWB search. The start time
// anchors both TimeToFirst and the timeout deadline, so filter
// construction counts toward the query's budget, exactly as the paper's
// end-to-end response times do. The default engine is the
// forward-checking searcher with conflict-directed backjumping (fc.go);
// Options.Engine = SearchChrono selects the chronological
// recompute-per-visit DFS below, kept as the property-test oracle and
// ablation baseline. Both enumerate identical solution sequences.
func searchWithFilters(p *Problem, f *Filters, opt Options, rng *rand.Rand, start time.Time) *Result {
	optimize := opt.Optimize && opt.Objective.Enabled()
	if optimize {
		// Optimality requires the exhausted tree, so a solution cap cannot
		// apply; OnSolution streams enumerations, not incumbents, and is
		// superseded by OnImprove here.
		opt.MaxSolutions = 0
		opt.OnSolution = nil
	}
	if opt.Engine == SearchChrono {
		// The chronological engine has no bound machinery: enumerate
		// everything, then take the argmin — the oracle semantics the B&B
		// property tests pin against.
		s := newSearcher(p, f, opt, rng, start)
		s.search(0)
		res := s.result()
		if optimize {
			reduceToArgmin(p.Host, opt.Objective, res)
		}
		return res
	}
	s := newFCSearcher(p, f, opt, rng, start, false)
	s.run()
	res := s.result()
	s.release()
	return res
}

// reduceToArgmin collapses an enumerated Result to its single cheapest
// solution under obj (first minimum wins, matching the strict-<
// incumbent rule of the B&B engine) and records the cost. A Result with
// no solutions is left untouched.
func reduceToArgmin(host *graph.Graph, obj Objective, res *Result) {
	if len(res.Solutions) == 0 {
		return
	}
	bestI, bestC := 0, obj.Cost(host, res.Solutions[0])
	for i := 1; i < len(res.Solutions); i++ {
		if c := obj.Cost(host, res.Solutions[i]); c < bestC {
			bestI, bestC = i, c
		}
	}
	res.Solutions = []Mapping{res.Solutions[bestI]}
	res.Cost = bestC
}

func newSearcher(p *Problem, f *Filters, opt Options, rng *rand.Rand, start time.Time) *searcher {
	nq := p.Query.NumNodes()
	s := &searcher{
		p:       p,
		f:       f,
		opt:     opt,
		rng:     rng,
		assign:  make(Mapping, nq),
		used:    sets.NewBitset(p.Host.NumNodes()),
		scratch: make([][]int32, nq),
		started: start,
		stats:   f.Stats(),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	if f.Dense() {
		s.interBits = sets.NewBitset(p.Host.NumNodes())
	}
	s.arm(s.started, opt.Timeout, opt.Stop)
	s.order = searchOrder(f, opt.Order)
	s.preArcs = buildPreArcs(p, f, s.order)
	return s
}

// searchOrder realizes Lemma 1: examining query nodes in ascending order
// of candidate count minimizes the permutations tree. The default mode
// additionally keeps the ordered prefix connected so that every placement
// after the seed intersects at least one filter row (see OrderAscending).
func searchOrder(f *Filters, mode OrderMode) []graph.NodeID {
	return searchOrderInto(nil, f, mode)
}

// searchOrderInto is searchOrder writing into dst's backing array, so
// pooled searchers recompute their order without reallocating it.
func searchOrderInto(dst []graph.NodeID, f *Filters, mode OrderMode) []graph.NodeID {
	nq := f.nq
	order := grow(dst, nq)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	switch mode {
	case OrderNatural:
		return order
	case OrderDescending:
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := len(f.base[order[a]]), len(f.base[order[b]])
			if ca != cb {
				return ca > cb
			}
			return f.p.Query.Degree(order[a]) > f.p.Query.Degree(order[b])
		})
		return order
	case OrderUnconnected:
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := len(f.base[order[a]]), len(f.base[order[b]])
			if ca != cb {
				return ca < cb
			}
			return f.p.Query.Degree(order[a]) > f.p.Query.Degree(order[b])
		})
		return order
	default:
		return connectedAscendingOrder(order[:0], f)
	}
}

// connectedAscendingOrder grows the order greedily into the provided
// buffer: seed with the globally most-constrained node, then repeatedly
// take the node with the most edges into the ordered prefix, breaking
// ties by fewer base candidates and then higher query degree.
// Disconnected queries restart the seed rule per component.
func connectedAscendingOrder(order []graph.NodeID, f *Filters) []graph.NodeID {
	q := f.p.Query
	nq := f.nq
	picked := make([]bool, nq)
	prefixEdges := make([]int, nq) // edges from node into the ordered prefix

	better := func(i, best graph.NodeID) bool {
		if best < 0 {
			return true
		}
		ci, cb := prefixEdges[i] > 0, prefixEdges[best] > 0
		if ci != cb {
			return ci // connected to the prefix wins
		}
		if ci && prefixEdges[i] != prefixEdges[best] {
			return prefixEdges[i] > prefixEdges[best] // tighter intersection
		}
		if len(f.base[i]) != len(f.base[best]) {
			return len(f.base[i]) < len(f.base[best]) // Lemma 1
		}
		return q.Degree(i) > q.Degree(best)
	}

	for len(order) < nq {
		best := graph.NodeID(-1)
		for i := graph.NodeID(0); int(i) < nq; i++ {
			if !picked[i] && better(i, best) {
				best = i
			}
		}
		picked[best] = true
		order = append(order, best)
		for _, a := range q.Arcs(best) {
			prefixEdges[a.To]++
		}
		if q.Directed() {
			for _, a := range q.InArcs(best) {
				prefixEdges[a.To]++
			}
		}
	}
	return order
}

// buildPreArcs precomputes, for each depth, the filter tables fed by
// neighbors that the order places earlier. Every query edge appears at
// exactly one depth: the one where its later endpoint is expanded, which
// is where adjacency and the edge constraint get enforced. Deduplication
// uses one reusable generation-stamped mask over table IDs instead of a
// fresh map per query node — this runs inside every ECFWithFilters call,
// including the warm-cache engine paths.
func buildPreArcs(p *Problem, f *Filters, order []graph.NodeID) [][]preArc {
	pos := make([]int, len(order))
	for d, q := range order {
		pos[q] = d
	}
	seen := newTableStamp(len(f.tables) + len(f.tablesB))
	pre := make([][]preArc, len(order))
	for d, q := range order {
		seen.next()
		add := func(nbr graph.NodeID) {
			if pos[nbr] >= d {
				return
			}
			for _, t := range f.arcTables[arcKey(nbr, q)] {
				if seen.mark(t) {
					pre[d] = append(pre[d], preArc{tail: nbr, table: t})
				}
			}
		}
		for _, a := range p.Query.Arcs(q) {
			add(a.To)
		}
		if p.Query.Directed() {
			for _, a := range p.Query.InArcs(q) {
				add(a.To)
			}
		}
	}
	return pre
}

// candidates computes formula (2) for the node at depth d: the
// intersection of the filter rows selected by every earlier-placed
// neighbor, minus hosts already in use. Nodes with no earlier neighbors
// fall back to their base candidate set (formula (1)). The result is
// materialized into the depth's scratch buffer from whichever
// representation the filters carry.
func (s *searcher) candidates(d int) []int32 {
	node := s.order[d]
	buf := s.scratch[d][:0]
	pres := s.preArcs[d]
	if s.f.Dense() {
		// Bitset path: AND the rows into the accumulator, subtract the
		// in-use marks word-wise, and materialize ascending — the same
		// order the sorted-slice path produces.
		bb := s.interBits
		if len(pres) == 0 {
			bb.CopyFrom(s.f.baseB[node])
		} else {
			row := s.f.tablesB[pres[0].table][s.assign[pres[0].tail]]
			if row == nil {
				s.scratch[d] = buf
				return buf
			}
			bb.CopyFrom(row)
			for _, pa := range pres[1:] {
				row := s.f.tablesB[pa.table][s.assign[pa.tail]]
				if row == nil || !bb.IntersectWith(row) {
					s.scratch[d] = buf
					return buf
				}
			}
		}
		if bb.AndNotWith(s.used) {
			buf = bb.AppendTo(buf)
		}
		s.scratch[d] = buf
		return buf
	}
	if len(pres) == 0 {
		for _, r := range s.f.base[node] {
			if !s.used.Has(r) {
				buf = append(buf, r)
			}
		}
		s.scratch[d] = buf
		return buf
	}
	s.rows = s.rows[:0]
	for _, pa := range pres {
		row := s.f.tables[pa.table][s.assign[pa.tail]]
		if len(row) == 0 {
			s.scratch[d] = buf
			return buf
		}
		s.rows = append(s.rows, row)
	}
	// Intersect all rows, ping-ponging between two owned buffers so that
	// the buffer being written never aliases the current intersection.
	cur := s.rows[0]
	a, b := s.interBuf, s.interBuf2
	for i := 1; i < len(s.rows) && len(cur) > 0; i++ {
		a = sets.IntersectInto(a[:0], cur, s.rows[i])
		cur = a
		a, b = b, a
	}
	s.interBuf, s.interBuf2 = a, b
	for _, r := range cur {
		if !s.used.Has(r) {
			buf = append(buf, r)
		}
	}
	s.scratch[d] = buf
	return buf
}

func (s *searcher) search(d int) {
	if s.timedOut || s.stopped {
		return
	}
	if d == len(s.order) {
		s.record()
		return
	}
	cands := s.candidates(d)
	if len(cands) == 0 {
		s.stats.Backtracks++
		return
	}
	if s.rng != nil {
		s.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	node := s.order[d]
	for _, r := range cands {
		if s.checkDeadline() || s.stopped {
			return
		}
		s.stats.NodesVisited++
		s.assign[node] = r
		s.used.Set(r)
		s.search(d + 1)
		s.used.Clear(r)
		s.assign[node] = -1
	}
}

func (s *searcher) record() {
	if s.nSol == 0 {
		s.stats.TimeToFirst = time.Since(s.started)
	}
	s.nSol++
	if s.opt.OnSolution != nil {
		if !s.opt.OnSolution(s.assign) {
			s.stopped = true
		}
	} else {
		s.solutions = append(s.solutions, s.assign.Clone())
	}
	if s.opt.MaxSolutions > 0 && s.nSol >= s.opt.MaxSolutions {
		s.stopped = true
	}
}

func (s *searcher) result() *Result {
	exhausted := !s.timedOut && !s.stopped
	res := &Result{
		Solutions: s.solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, s.nSol),
		Stats:     s.stats,
	}
	res.Stats.Elapsed = time.Since(s.started)
	return res
}
