package core

import (
	"fmt"

	"netembed/internal/graph"
)

// Compose names how a link metric accumulates along a hosting path. The
// paper's introduction lists delay, bandwidth, loss rate and jitter as
// the link characteristics applications constrain; each composes
// differently over multi-hop paths.
type Compose int

// Metric composition rules.
const (
	// Additive metrics sum along the path (delay, jitter, hop cost).
	Additive Compose = iota
	// Bottleneck metrics take the minimum along the path (bandwidth).
	Bottleneck
	// Multiplicative metrics compose as products (availability, or
	// 1-loss when the attribute stores success probability).
	Multiplicative
)

func (c Compose) String() string {
	switch c {
	case Additive:
		return "additive"
	case Bottleneck:
		return "bottleneck"
	case Multiplicative:
		return "multiplicative"
	default:
		return fmt.Sprintf("Compose(%d)", int(c))
	}
}

// MetricSpec constrains one composed metric of a witness path: the hosting
// edges' Attr values, composed by Rule, must land within the window given
// by the query edge's LoAttr/HiAttr attributes (either may be absent on a
// query edge, leaving that side unbounded).
type MetricSpec struct {
	// Attr is the hosting-edge attribute to compose (e.g. "avgDelay",
	// "bandwidth", "availability").
	Attr string
	// Rule selects the composition.
	Rule Compose
	// LoAttr/HiAttr name the query-edge attributes bounding the composed
	// value (e.g. "minDelay"/"maxDelay", "minBandwidth"/"").
	LoAttr, HiAttr string
	// MissingEdge is the value assumed when a hosting edge lacks Attr:
	// for Additive metrics the neutral 0 is typical; for Bottleneck a
	// missing bandwidth should usually disqualify (set MissingFails).
	MissingEdge float64
	// MissingFails rejects paths containing an edge without Attr.
	MissingFails bool
}

// composeAlong folds the metric over the path's edges. The second result
// is false when MissingFails tripped.
func (m MetricSpec) composeAlong(host *graph.Graph, edges []graph.EdgeID) (float64, bool) {
	var acc float64
	switch m.Rule {
	case Bottleneck:
		acc = 0 // replaced by the first edge's value below
	case Multiplicative:
		acc = 1
	default:
		acc = 0
	}
	for i, e := range edges {
		v, ok := host.Edge(e).Attrs.Float(m.Attr)
		if !ok {
			if m.MissingFails {
				return 0, false
			}
			v = m.MissingEdge
		}
		switch m.Rule {
		case Additive:
			acc += v
		case Bottleneck:
			if i == 0 || v < acc {
				acc = v
			}
		case Multiplicative:
			acc *= v
		}
	}
	return acc, true
}

// withinWindow checks the composed value against the query edge's window
// attributes; absent attributes leave that side unbounded.
func (m MetricSpec) withinWindow(qe *graph.Edge, v float64) bool {
	if m.LoAttr != "" {
		if lo, ok := qe.Attrs.Float(m.LoAttr); ok && v < lo {
			return false
		}
	}
	if m.HiAttr != "" {
		if hi, ok := qe.Attrs.Float(m.HiAttr); ok && v > hi {
			return false
		}
	}
	return true
}

// pathMetricsOK evaluates every spec over a candidate witness path.
func pathMetricsOK(host *graph.Graph, qe *graph.Edge, edges []graph.EdgeID, specs []MetricSpec) bool {
	for _, spec := range specs {
		v, ok := spec.composeAlong(host, edges)
		if !ok || !spec.withinWindow(qe, v) {
			return false
		}
	}
	return true
}

// DefaultDelaySpec is the single-metric behavior of PathEmbed before
// multi-metric support: additive delay bounded by minDelay/maxDelay.
func DefaultDelaySpec(delayAttr, loAttr, hiAttr string) MetricSpec {
	return MetricSpec{
		Attr:   delayAttr,
		Rule:   Additive,
		LoAttr: loAttr,
		HiAttr: hiAttr,
	}
}
