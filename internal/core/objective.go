package core

import (
	"math"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/sets"
)

// This file is the objective layer behind Options.Optimize: three
// built-in cost functions over complete mappings, a canonical evaluator
// (the enumerate-and-argmin oracle and the repair tie-break both use
// it), and the compiled per-search form the branch-and-bound engine in
// fc.go consults on its hot path — precomputed per-host terms, plus
// admissible per-node lower bounds derived from the live candidate
// domains via the index's sorted attribute postings.

// ObjectiveKind names a built-in objective function.
type ObjectiveKind int

// The built-in objectives.
const (
	// ObjectiveNone is the zero value: no objective, plain enumeration.
	ObjectiveNone ObjectiveKind = iota
	// ObjectiveAttrCost minimizes the weighted sum of a numeric host
	// attribute (Attr, e.g. a per-node price) over the assigned hosts.
	// Hosts lacking the attribute cost 0. Additive.
	ObjectiveAttrCost
	// ObjectiveLoadBalance minimizes the worst per-host slot utilization:
	// the cost is max over assigned hosts of Weight/slots(r), with slots
	// read from Attr (default "slots", missing or <1 reads as 1). Since
	// the search is injective each host carries one query node, so
	// utilization is 1/slots and the optimum packs the embedding onto the
	// roomiest hosts. Max-composed.
	ObjectiveLoadBalance
	// ObjectiveEnergy minimizes the hosts a plan must power on: every
	// distinct assigned host that is not already active (Attr, default
	// "active", ≥ 1) costs Weight. Consolidating onto the powered-on
	// fleet — LNS/Consolidate's goal — becomes the search objective; with
	// no host marked active every used host counts, i.e. the cost is the
	// number of distinct hosts used. Additive.
	ObjectiveEnergy
)

// Objective selects and parameterizes an optimizing search's cost
// function. It is a pure value (no closures) so it can join the engine's
// request fingerprint byte-for-byte.
type Objective struct {
	// Kind picks the built-in; ObjectiveNone disables optimization.
	Kind ObjectiveKind
	// Attr is the host attribute the objective reads. Defaults per kind:
	// required for ObjectiveAttrCost, "slots" for ObjectiveLoadBalance,
	// "active" for ObjectiveEnergy.
	Attr string
	// Weight scales every term (default 1). ObjectiveAttrCost accepts
	// negative weights (maximize the attribute sum).
	Weight float64
}

// Enabled reports whether the objective selects a real cost function.
func (o Objective) Enabled() bool { return o.Kind != ObjectiveNone }

// Normalized returns the objective with the per-kind Attr/Weight
// defaults applied — the exact form the search evaluates, so callers
// (e.g. the service layer's attribute-typo warnings) can inspect which
// attribute a request will actually read.
func (o Objective) Normalized() Objective {
	if o.Weight == 0 {
		o.Weight = 1
	}
	if o.Attr == "" {
		switch o.Kind {
		case ObjectiveLoadBalance:
			o.Attr = "slots"
		case ObjectiveEnergy:
			o.Attr = "active"
		}
	}
	return o
}

// additive reports the composition: additive objectives sum their
// per-assignment terms, the rest (load balance) take the maximum.
func (o Objective) additive() bool { return o.Kind != ObjectiveLoadBalance }

// termOn evaluates one assignment's contribution on host node r. The
// receiver must be normalized.
func (o Objective) termOn(host *graph.Graph, r graph.NodeID) float64 {
	switch o.Kind {
	case ObjectiveAttrCost:
		v, _ := host.Node(r).Attrs.Float(o.Attr) // missing = 0
		return o.Weight * v
	case ObjectiveLoadBalance:
		slots, ok := host.Node(r).Attrs.Float(o.Attr)
		if !ok || slots < 1 {
			slots = 1
		}
		return o.Weight / slots
	case ObjectiveEnergy:
		if v, ok := host.Node(r).Attrs.Float(o.Attr); ok && v >= 1 {
			return 0
		}
		return o.Weight
	default:
		return 0
	}
}

// Cost evaluates the objective over a complete mapping on host. It is
// the canonical (order-independent for the built-ins) evaluation every
// layer agrees on: the B&B incumbent's reported cost, the exhaustive
// enumerate-and-argmin oracle, and SeededRepair's tie-break all call it.
func (o Objective) Cost(host *graph.Graph, m Mapping) float64 {
	o = o.Normalized()
	if !o.Enabled() {
		return 0
	}
	cost := 0.0
	for i, r := range m {
		t := o.termOn(host, r)
		if o.additive() {
			cost += t
		} else if i == 0 || t > cost {
			cost = t
		}
	}
	return cost
}

// objectiveEval is the compiled per-search form: per-host terms
// materialized once, the composition mode resolved, and — when the
// options carry a matching index — the sorted postings that answer
// "cheapest term still in this domain" without scanning it.
type objectiveEval struct {
	obj      Objective // normalized
	additive bool
	// terms[r] is the objective contribution of assigning any query node
	// to host r.
	terms []float64
	// postings, when non-nil, fully covers the host (Len == len(terms)),
	// so an ascending/descending walk probing domain membership yields
	// the exact domain minimum; ascending is true when terms grow with
	// the posted attribute value (AttrCost, Weight ≥ 0).
	postings  *index.Postings
	ascending bool
	// active, for ObjectiveEnergy, is the powered-on host set: a domain
	// intersecting it has lower bound 0, otherwise Weight.
	active *sets.Bitset
	// monotone is true when folding further terms can never lower a
	// partial bound — max composition, or additive with no negative term.
	// Only then is a prefix cost itself a valid lower bound on its
	// completions, letting the search cut before folding every remaining
	// node; with negative terms in play the comparison must wait for the
	// full fold.
	monotone bool
}

// compileObjective materializes the evaluator for one search run.
// ix may be nil (or describe another graph — callers pass the options
// index only when it matches the host).
func compileObjective(o Objective, host *graph.Graph, ix *index.Index) *objectiveEval {
	o = o.Normalized()
	nr := host.NumNodes()
	e := &objectiveEval{obj: o, additive: o.additive(), terms: make([]float64, nr)}
	e.monotone = true
	for r := 0; r < nr; r++ {
		e.terms[r] = o.termOn(host, graph.NodeID(r))
		if e.additive && e.terms[r] < 0 {
			e.monotone = false
		}
	}
	switch o.Kind {
	case ObjectiveAttrCost, ObjectiveLoadBalance:
		if o.Kind == ObjectiveLoadBalance && o.Weight < 0 {
			// Negative-weight load balance inverts the term's monotonicity
			// in the posted attribute; only the domain scan is admissible.
			break
		}
		if ix != nil && ix.NumNodes() == nr {
			if pp := ix.AttrPostings(o.Attr); pp != nil && pp.Len() == nr {
				// Full coverage: every host is posted, so the walk's first
				// domain member is the true domain extremum. Partial
				// coverage would miss the implicit terms of unposted hosts
				// (0 for AttrCost, Weight for LoadBalance) and the walk
				// could overestimate — fall back to the domain scan there.
				e.postings = pp
				e.ascending = o.Kind == ObjectiveAttrCost && o.Weight >= 0
			}
		}
	case ObjectiveEnergy:
		if o.Weight < 0 {
			// Negative weight flips the extremum: the cheapest term is an
			// inactive host's, which the intersects-active probe cannot
			// see — only the domain scan is admissible.
			break
		}
		e.active = sets.NewBitset(nr)
		for r := 0; r < nr; r++ {
			if e.terms[r] == 0 {
				e.active.Set(graph.NodeID(r))
			}
		}
	}
	return e
}

// combine folds one term into a partial cost under the composition.
func (e *objectiveEval) combine(partial, term float64) float64 {
	if e.additive {
		return partial + term
	}
	return math.Max(partial, term)
}

// lowerBound computes an admissible bound on the term any completion can
// contribute for a query node whose live domain is dom: the minimum term
// over the domain. Injectivity only shrinks the usable domain, so the
// unrestricted minimum stays a valid lower bound. probes reports the
// membership tests spent (the BoundProbes counter's currency).
func (e *objectiveEval) lowerBound(dom *sets.Bitset) (lb float64, probes int64) {
	switch {
	case e.active != nil:
		// Energy: any still-reachable active host zeroes the term.
		if dom.Intersects(e.active) {
			return 0, 1
		}
		return e.obj.Weight, 1
	case e.postings != nil:
		var (
			v  float64
			n  int
			ok bool
		)
		if e.ascending {
			v, n, ok = e.postings.MinWhere(dom.Has)
		} else {
			v, n, ok = e.postings.MaxWhere(dom.Has)
		}
		if !ok {
			// Empty domain: the caller is about to wipe out anyway.
			return 0, int64(n)
		}
		switch e.obj.Kind {
		case ObjectiveLoadBalance:
			if v < 1 {
				v = 1
			}
			return e.obj.Weight / v, int64(n)
		default:
			return e.obj.Weight * v, int64(n)
		}
	default:
		v, ok := dom.MinOver(e.terms)
		if !ok {
			return 0, 1
		}
		return v, 1
	}
}
